package repro

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// Timeline events: the public, typed form of the dynamic-network scenario
// vocabulary (internal/scenario). A timeline passed to WithTimeline layers
// crash waves, rejoins, loss changes and rumor injections under an execution
// as its rounds advance; a timeline that injects at least one rumor runs the
// steppable multi-rumor driver, any other timeline composes with the closed
// broadcast algorithms unchanged. Rounds are 1-based; an event at round r
// fires before any communication of round r.

// TimelineEvent is one timeline entry. The concrete types are CrashAt,
// JoinAt, LossAt and InjectRumor; the interface is sealed.
type TimelineEvent interface {
	// event converts to the internal representation (sealed).
	event() (scenario.Event, error)
}

// CrashAt fails the listed node indexes at the start of round At. Crashed
// nodes stop initiating, stop responding and drop everything addressed to
// them; per the live-participant rule they are charged nothing from then on.
type CrashAt struct {
	At    int
	Nodes []int
}

func (e CrashAt) event() (scenario.Event, error) {
	return scenario.CrashAt{At: e.At, Nodes: e.Nodes}, nil
}

// JoinAt revives (or late-starts) the listed node indexes at the start of
// round At. Under a multi-rumor workload a joining node starts uninformed;
// under a closed algorithm it rejoins with the protocol state it had (a
// process that was partitioned away rather than restarted).
type JoinAt struct {
	At    int
	Nodes []int
}

func (e JoinAt) event() (scenario.Event, error) {
	return scenario.JoinAt{At: e.At, Nodes: e.Nodes}, nil
}

// LossAt sets the oblivious per-call drop probability from round At on.
// Rate 0 switches loss off again; Seed drives the drop decisions
// independently of the execution seed.
type LossAt struct {
	At   int
	Rate float64
	Seed uint64
}

func (e LossAt) event() (scenario.Event, error) {
	return scenario.Loss{At: e.At, Rate: e.Rate, Seed: e.Seed}, nil
}

// InjectRumor hands rumor Rumor (an ID in [0, 64)) to node Node at the start
// of round At. Injecting at least one rumor switches the execution to the
// steppable multi-rumor driver (push, pull, push-pull), which needs an
// explicit round budget (WithRounds).
type InjectRumor struct {
	At    int
	Node  int
	Rumor int
}

func (e InjectRumor) event() (scenario.Event, error) {
	if e.Rumor < 0 || e.Rumor >= phonecall.MaxRumors {
		return nil, fmt.Errorf("%w: rumor id %d outside [0,%d)", ErrInvalidConfig, e.Rumor, phonecall.MaxRumors)
	}
	return scenario.InjectRumor{At: e.At, Node: e.Node, Rumor: phonecall.RumorID(e.Rumor)}, nil
}

// PickRandomNodes selects count distinct node indexes of a network of n
// nodes, uniformly at random from seed — the oblivious adversary's choice
// (Section 8), reusable for building CrashAt/JoinAt waves by hand.
func PickRandomNodes(n, count int, seed uint64) []int {
	return failure.Random{Count: count, Seed: seed}.Select(n)
}

// PeriodicChurn generates a steady churn timeline: starting at round start,
// every period rounds a fresh random set of count nodes crashes and rejoins
// downFor rounds later, until horizon. Seed drives the node choices.
func PeriodicChurn(n, start, period, count, downFor, horizon int, seed uint64) []TimelineEvent {
	return fromScenarioEvents(scenario.PeriodicChurn(n, start, period, count, downFor, horizon, seed))
}

// fromScenarioEvents maps internal events back onto the public types (used
// by the generator wrappers).
func fromScenarioEvents(evs []scenario.Event) []TimelineEvent {
	out := make([]TimelineEvent, 0, len(evs))
	for _, ev := range evs {
		switch e := ev.(type) {
		case scenario.CrashAt:
			out = append(out, CrashAt{At: e.At, Nodes: e.Nodes})
		case scenario.JoinAt:
			out = append(out, JoinAt{At: e.At, Nodes: e.Nodes})
		case scenario.Loss:
			out = append(out, LossAt{At: e.At, Rate: e.Rate, Seed: e.Seed})
		case scenario.InjectRumor:
			out = append(out, InjectRumor{At: e.At, Node: e.Node, Rumor: int(e.Rumor)})
		}
	}
	return out
}
