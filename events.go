package repro

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// Timeline events: the public, typed form of the dynamic-network scenario
// vocabulary (internal/scenario). A timeline passed to WithTimeline layers
// crash waves, rejoins, loss changes, rumor injections and Byzantine
// corruptions under an execution as its rounds advance; a timeline that
// injects at least one rumor runs the steppable multi-rumor driver, any other
// timeline composes with the closed broadcast algorithms unchanged. Rounds
// are 1-based; an event at round r fires before any communication of round r.

// TimelineEvent is one timeline entry. The concrete types are CrashAt,
// JoinAt, LossAt, InjectRumor, CorruptAt and — on topology-attributed runs
// (WithTopology) — ZoneOutageAt, ZoneHealAt, PartitionAt and HealPartitionAt;
// the interface is sealed.
type TimelineEvent interface {
	// event converts to the internal representation (sealed).
	event() (scenario.Event, error)
}

// CrashAt fails the listed node indexes at the start of round At. Crashed
// nodes stop initiating, stop responding and drop everything addressed to
// them; per the live-participant rule they are charged nothing from then on.
type CrashAt struct {
	At    int
	Nodes []int
}

func (e CrashAt) event() (scenario.Event, error) {
	return scenario.CrashAt{At: e.At, Nodes: e.Nodes}, nil
}

// JoinAt revives (or late-starts) the listed node indexes at the start of
// round At. Under a multi-rumor workload a joining node starts uninformed;
// under a closed algorithm it rejoins with the protocol state it had (a
// process that was partitioned away rather than restarted).
type JoinAt struct {
	At    int
	Nodes []int
}

func (e JoinAt) event() (scenario.Event, error) {
	return scenario.JoinAt{At: e.At, Nodes: e.Nodes}, nil
}

// LossAt sets the oblivious per-call drop probability from round At on.
// Rate 0 switches loss off again; Seed drives the drop decisions
// independently of the execution seed.
type LossAt struct {
	At   int
	Rate float64
	Seed uint64
}

func (e LossAt) event() (scenario.Event, error) {
	return scenario.Loss{At: e.At, Rate: e.Rate, Seed: e.Seed}, nil
}

// InjectRumor hands rumor Rumor to node Node at the start of round At.
// Injecting at least one rumor switches the execution to the steppable
// multi-rumor driver (push, pull, push-pull), which needs an explicit round
// budget (WithRounds). Rumor is an ID in the uint32 space: IDs below 64 run
// on the compact bitmask path, and any larger ID (or WithMaxInFlight) selects
// the scalable wide rumor-set path on the simulator.
type InjectRumor struct {
	At    int
	Node  int
	Rumor int
}

func (e InjectRumor) event() (scenario.Event, error) {
	if e.Rumor < 0 || int64(e.Rumor) > int64(^uint32(0)) {
		return nil, fmt.Errorf("%w: rumor id %d outside the uint32 ID space", ErrInvalidConfig, e.Rumor)
	}
	return scenario.InjectRumor{At: e.At, Node: e.Node, Rumor: phonecall.RumorID(e.Rumor)}, nil
}

// Adversary names a Byzantine misbehavior from the library (see CorruptAt).
type Adversary string

// The misbehavior library. Each rewrites only the corrupted node's own
// outgoing traffic — its calls and its pull answers — so the model's
// per-round accounting contracts keep holding; what breaks is the honest
// spreading the protocols rely on.
const (
	// AdversaryLiar advertises wrong holdings: it hides a pseudo-random
	// subset of its true rumor bits and forges bits no real rumor owns
	// (honest receivers discard the forgeries, so the lie wastes bandwidth
	// and slows the spread without ever mis-informing anyone).
	AdversaryLiar Adversary = "liar"
	// AdversarySpammer replaces its protocol traffic with junk pushes and
	// junk pull-answers at a configurable per-round rate (Rate; 0 means
	// always). The one-call-per-round model caps the flood by construction.
	AdversarySpammer Adversary = "spammer"
	// AdversaryEclipse silently drops all traffic between the corrupted node
	// and a victim set (Victims): calls that would reach a victim become
	// silence, and the node stops answering pulls entirely. Corrupting every
	// non-victim with the same eclipse cuts the victims off completely.
	AdversaryEclipse Adversary = "eclipse"
	// AdversaryStale answers with the holdings it had when it was corrupted,
	// forever — mute when it held nothing. It keeps learning; it just never
	// tells anyone anything new.
	AdversaryStale Adversary = "stale"
)

// Adversaries lists the misbehavior library in presentation order.
func Adversaries() []Adversary {
	return []Adversary{AdversaryLiar, AdversarySpammer, AdversaryEclipse, AdversaryStale}
}

// CorruptAt installs the Behavior misbehavior on the listed node indexes at
// the start of round At. Corrupted nodes keep running — they initiate,
// answer and receive — but their outgoing traffic is rewritten by the
// behavior, identically on all three engines. Corruption composes with the
// other events (a corrupted node can crash later; a rejoined node stays
// corrupted) and corrupting a node again replaces its behavior.
type CorruptAt struct {
	At    int
	Nodes []int
	// Behavior selects the misbehavior.
	Behavior Adversary
	// Rate is the spammer's per-round spam probability in [0,1]; 0 defaults
	// to 1 (always spam). Ignored by the other behaviors.
	Rate float64
	// Seed drives the liar's and spammer's deterministic misbehavior streams.
	Seed uint64
	// Victims is the eclipse dropper's target set. Ignored by the other
	// behaviors.
	Victims []int
}

func (e CorruptAt) event() (scenario.Event, error) {
	switch e.Behavior {
	case AdversaryLiar, AdversarySpammer, AdversaryEclipse, AdversaryStale:
	default:
		return nil, fmt.Errorf("%w: unknown adversary %q (have liar, spammer, eclipse, stale)", ErrInvalidConfig, e.Behavior)
	}
	return scenario.CorruptAt{
		At:    e.At,
		Nodes: e.Nodes,
		Adversary: scenario.AdversarySpec{
			Kind:    scenario.AdversaryKind(e.Behavior),
			Rate:    e.Rate,
			Seed:    e.Seed,
			Victims: e.Victims,
		},
	}, nil
}

// PickRandomNodes selects count distinct node indexes of a network of n
// nodes, uniformly at random from seed — the oblivious adversary's choice
// (Section 8), reusable for building CrashAt/JoinAt waves by hand.
func PickRandomNodes(n, count int, seed uint64) []int {
	return failure.Random{Count: count, Seed: seed}.Select(n)
}

// PeriodicChurn generates a steady churn timeline: starting at round start,
// every period rounds a fresh random set of count nodes crashes and rejoins
// downFor rounds later, until horizon. Seed drives the node choices.
func PeriodicChurn(n, start, period, count, downFor, horizon int, seed uint64) []TimelineEvent {
	return fromScenarioEvents(scenario.PeriodicChurn(n, start, period, count, downFor, horizon, seed))
}

// Infiltrate generates escalating corruption waves: wave k (k = 0, 1, …)
// corrupts count fresh random nodes at round start + k·gap with the given
// behavior (rate tunes the spammer; the other behaviors ignore it). Seed
// drives both the node choices and the behaviors' misbehavior streams.
func Infiltrate(n, start, gap, waves, count int, behavior Adversary, rate float64, seed uint64) []TimelineEvent {
	adv := scenario.AdversarySpec{Kind: scenario.AdversaryKind(behavior), Rate: rate, Seed: seed}
	return fromScenarioEvents(scenario.Infiltrate(n, start, gap, waves, count, adv, seed))
}

// fromScenarioEvents maps internal events back onto the public types (used
// by the generator wrappers).
func fromScenarioEvents(evs []scenario.Event) []TimelineEvent {
	out := make([]TimelineEvent, 0, len(evs))
	for _, ev := range evs {
		switch e := ev.(type) {
		case scenario.CrashAt:
			out = append(out, CrashAt{At: e.At, Nodes: e.Nodes})
		case scenario.JoinAt:
			out = append(out, JoinAt{At: e.At, Nodes: e.Nodes})
		case scenario.Loss:
			out = append(out, LossAt{At: e.At, Rate: e.Rate, Seed: e.Seed})
		case scenario.InjectRumor:
			out = append(out, InjectRumor{At: e.At, Node: e.Node, Rumor: int(e.Rumor)})
		case scenario.CorruptAt:
			out = append(out, CorruptAt{
				At:       e.At,
				Nodes:    e.Nodes,
				Behavior: Adversary(e.Adversary.Kind),
				Rate:     e.Adversary.Rate,
				Seed:     e.Adversary.Seed,
				Victims:  e.Adversary.Victims,
			})
		case scenario.ZoneOutage:
			out = append(out, ZoneOutageAt{At: e.At, Zone: e.Zone})
		case scenario.ZoneHeal:
			out = append(out, ZoneHealAt{At: e.At, Zone: e.Zone})
		case scenario.Partition:
			out = append(out, PartitionAt{At: e.At})
		case scenario.HealPartition:
			out = append(out, HealPartitionAt{At: e.At})
		}
	}
	return out
}
