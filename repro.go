// Package repro is the public facade of the reproduction of "Optimal Gossip
// with Direct Addressing" (Haeupler & Malkhi, PODC 2014).
//
// It exposes the paper's gossip algorithms (Cluster1, Cluster2,
// ClusterPUSH-PULL with a Δ-clustering) and the prior-work baselines they are
// compared against, all running on an exact simulation of the random phone
// call model with direct addressing. The facade covers the common tasks —
// broadcasting a rumor, bounding per-round communication, injecting failures,
// querying the lower bounds, and regenerating the experiment tables — while
// the internal packages hold the full machinery (see DESIGN.md).
//
// Quick start:
//
//	result, err := repro.Broadcast(repro.Config{N: 100_000, Algorithm: repro.AlgoCluster2})
//	if err != nil { ... }
//	fmt.Println(result.Rounds, result.MessagesPerNode)
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/harness"
	"repro/internal/lowerbound"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// Algorithm selects one of the implemented gossip algorithms.
type Algorithm string

// The available algorithms. The paper's contributions are AlgoCluster1
// (Algorithm 1), AlgoCluster2 (Algorithm 2, the main result) and
// AlgoClusterPushPull (Algorithms 3+4, bounded per-round communication); the
// rest are the prior-work baselines.
const (
	AlgoPush            Algorithm = Algorithm(harness.AlgoPush)
	AlgoPull            Algorithm = Algorithm(harness.AlgoPull)
	AlgoPushPull        Algorithm = Algorithm(harness.AlgoPushPull)
	AlgoKarp            Algorithm = Algorithm(harness.AlgoKarp)
	AlgoAddressBook     Algorithm = Algorithm(harness.AlgoAddressBook)
	AlgoNameDropper     Algorithm = Algorithm(harness.AlgoNameDropper)
	AlgoCluster1        Algorithm = Algorithm(harness.AlgoCluster1)
	AlgoCluster2        Algorithm = Algorithm(harness.AlgoCluster2)
	AlgoClusterPushPull Algorithm = Algorithm(harness.AlgoClusterPushPull)
)

// Algorithms lists every available algorithm in comparison order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(harness.Algorithms()))
	for _, a := range harness.Algorithms() {
		out = append(out, Algorithm(a))
	}
	return out
}

// Config describes one broadcast execution.
type Config struct {
	// N is the number of nodes (required, at least 2).
	N int
	// Algorithm selects the protocol; it defaults to AlgoCluster2.
	Algorithm Algorithm
	// Seed makes the execution reproducible. Different seeds give independent
	// executions.
	Seed uint64
	// PayloadBits is the rumor size b in bits (default 256).
	PayloadBits int
	// Workers is the number of engine shards (goroutines) used per simulated
	// round; values <= 0 default to runtime.GOMAXPROCS(0). Results are
	// identical for any value.
	Workers int
	// Delta bounds per-round communications for AlgoClusterPushPull
	// (default 1024, minimum 8).
	Delta int
	// Failures is the number of nodes an oblivious adversary fails before the
	// execution starts (Section 8 of the paper).
	Failures int
	// FailureSeed drives the adversary's choice; it is independent of Seed.
	FailureSeed uint64
	// FailureRound, when > 1, defers the adversary to a timed crash wave
	// that strikes at the start of that engine round — mid-execution churn
	// instead of the paper's start-time failures (internal/scenario).
	FailureRound int
	// LossRate, when positive, drops every call independently with this
	// probability (oblivious per-call loss, charged per the live-participant
	// rule); LossSeed drives the drop decisions independently of Seed.
	LossRate float64
	LossSeed uint64
}

// Phase is the cost of one named phase of an execution.
type Phase struct {
	Name     string
	Rounds   int
	Messages int64
	Bits     int64
}

// Result reports the outcome and complexity of a broadcast execution.
type Result struct {
	Algorithm string
	N         int
	Seed      uint64

	// Rounds is the total number of synchronous rounds executed;
	// CompletionRound is the first round by which every live node knew the
	// rumor (baselines with a fixed round budget keep running afterwards).
	Rounds          int
	CompletionRound int

	// Messages counts rumor/payload messages, ControlMessages counts empty
	// requests; MessagesPerNode averages both over the nodes. Bits is the
	// total bit complexity. MaxCommsPerRound is the paper's Δ: the largest
	// number of communications any node took part in during one round.
	Messages         int64
	ControlMessages  int64
	Bits             int64
	MessagesPerNode  float64
	MaxCommsPerRound int

	// Live is the number of non-failed nodes, Informed how many of them ended
	// up with the rumor.
	Live        int
	Informed    int
	AllInformed bool

	Phases []Phase
}

// UninformedSurvivors returns the number of live nodes that did not learn the
// rumor (the paper's fault-tolerance measure is that this is o(F)).
func (r Result) UninformedSurvivors() int { return r.Live - r.Informed }

// Broadcast runs one gossip execution described by cfg.
func Broadcast(cfg Config) (Result, error) {
	if cfg.N < 2 {
		return Result{}, fmt.Errorf("repro: config needs N >= 2 (got %d)", cfg.N)
	}
	algo := cfg.Algorithm
	if algo == "" {
		algo = AlgoCluster2
	}
	opts := harness.Options{
		PayloadBits: cfg.PayloadBits,
		Workers:     cfg.Workers,
		Delta:       cfg.Delta,
		LossRate:    cfg.LossRate,
		LossSeed:    cfg.LossSeed,
	}
	if cfg.Failures > 0 {
		adv := failure.Random{Count: cfg.Failures, Seed: cfg.FailureSeed}
		if cfg.FailureRound > 1 {
			wave := failure.Timed{Round: cfg.FailureRound, Adversary: adv}
			opts.Events = []scenario.Event{scenario.FromTimed(wave, cfg.N)}
		} else {
			opts.Adversary = adv
		}
	}
	res, err := harness.Run(harness.Algorithm(algo), cfg.N, cfg.Seed, opts)
	if err != nil {
		return Result{}, err
	}
	return fromTrace(res), nil
}

// MinPossibleRounds simulates the knowledge-graph lower bound of Theorem 3
// for one random draw of per-round contacts: no algorithm in the model can
// inform all n nodes in fewer rounds on those contacts.
func MinPossibleRounds(n int, seed uint64) int {
	minT, _ := lowerbound.MinRounds(n, seed)
	return minT
}

// TheoreticalLowerBound returns the analytic 0.99·log₂ log₂ n round lower
// bound of Theorem 3.
func TheoreticalLowerBound(n int) float64 { return lowerbound.TheoreticalMinRounds(n) }

// DeltaLowerBound returns the log n / log Δ round lower bound of Lemma 16 for
// executions in which no node communicates with more than delta nodes per
// round.
func DeltaLowerBound(n, delta int) float64 { return lowerbound.DeltaBound(n, delta) }

// MinDelta is the smallest supported per-round communication bound for
// AlgoClusterPushPull.
const MinDelta = core.MinDelta

// Experiment regenerates one of the paper-reproduction tables (E1–E9, see
// DESIGN.md and EXPERIMENTS.md) over the given network sizes and seeds and
// returns it rendered as text. Empty slices select the default sweep.
func Experiment(id string, sizes []int, seeds []uint64) (string, error) {
	cfg := harness.DefaultSweep()
	if len(sizes) > 0 {
		cfg.Sizes = sizes
	}
	if len(seeds) > 0 {
		cfg.Seeds = seeds
	}
	table, err := harness.RunExperiment(id, cfg)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

// ExperimentIDs lists the reproducible experiment tables.
func ExperimentIDs() []string { return harness.ExperimentIDs() }

// fromTrace converts the internal result representation to the public one.
func fromTrace(res trace.Result) Result {
	out := Result{
		Algorithm:        res.Algorithm,
		N:                res.N,
		Seed:             res.Seed,
		Rounds:           res.Rounds,
		CompletionRound:  res.CompletionRound,
		Messages:         res.Messages,
		ControlMessages:  res.ControlMessages,
		Bits:             res.Bits,
		MessagesPerNode:  res.MessagesPerNode,
		MaxCommsPerRound: res.MaxCommsPerRound,
		Live:             res.Live,
		Informed:         res.Informed,
		AllInformed:      res.AllInformed,
	}
	for _, p := range res.Phases {
		out.Phases = append(out.Phases, Phase(p))
	}
	return out
}
