// Package repro is the public facade of the reproduction of "Optimal Gossip
// with Direct Addressing" (Haeupler & Malkhi, PODC 2014).
//
// It exposes the paper's gossip algorithms (Cluster1, Cluster2,
// ClusterPUSH-PULL with a Δ-clustering) and the prior-work baselines they are
// compared against, running on three interchangeable engines: an exact
// sharded simulation of the random phone call model with direct addressing,
// a goroutine-per-node lock-step runtime that is bit-identical to the
// simulator, and a free-running live runtime with local round clocks.
//
// The single entry point is Run, a context-aware, composable execution API
// built from functional options:
//
//	report, err := repro.Run(ctx, 100_000,
//	    repro.WithAlgorithm(repro.AlgoCluster2),
//	    repro.WithSeed(7),
//	    repro.WithObserver(func(r repro.RoundInfo) { fmt.Println(r.Round, r.Messages) }),
//	)
//
// Everything composes: failures and loss (WithFailures, WithLoss), dynamic
// timelines and multi-rumor workloads (WithTimeline, WithRumors,
// WithScenarioSpec), engine selection (OnSimulator, OnLockStep,
// OnFreeRunning), and streaming per-round statistics (WithObserver).
// Invalid combinations are rejected at the boundary with errors satisfying
// errors.Is(err, ErrInvalidConfig). Broadcast remains as the one-shot
// struct-config veteran; it is a thin wrapper over Run's machinery and
// returns bit-identical results for identical configs and seeds.
package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lowerbound"
	"repro/internal/run"
)

// Algorithm selects one of the implemented gossip algorithms.
type Algorithm string

// The available algorithms. The paper's contributions are AlgoCluster1
// (Algorithm 1), AlgoCluster2 (Algorithm 2, the main result) and
// AlgoClusterPushPull (Algorithms 3+4, bounded per-round communication); the
// rest are the prior-work baselines. AlgoPush, AlgoPull and AlgoPushPull
// double as the steppable multi-rumor protocols of timeline workloads and
// the free-running engine.
const (
	AlgoPush            Algorithm = Algorithm(harness.AlgoPush)
	AlgoPull            Algorithm = Algorithm(harness.AlgoPull)
	AlgoPushPull        Algorithm = Algorithm(harness.AlgoPushPull)
	AlgoKarp            Algorithm = Algorithm(harness.AlgoKarp)
	AlgoAddressBook     Algorithm = Algorithm(harness.AlgoAddressBook)
	AlgoNameDropper     Algorithm = Algorithm(harness.AlgoNameDropper)
	AlgoCluster1        Algorithm = Algorithm(harness.AlgoCluster1)
	AlgoCluster2        Algorithm = Algorithm(harness.AlgoCluster2)
	AlgoClusterPushPull Algorithm = Algorithm(harness.AlgoClusterPushPull)
)

// Algorithms lists every available algorithm in comparison order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(harness.Algorithms()))
	for _, a := range harness.Algorithms() {
		out = append(out, Algorithm(a))
	}
	return out
}

// AlgorithmNames lists every available algorithm name in comparison order —
// the strings ParseAlgorithm accepts.
func AlgorithmNames() []string {
	names := make([]string, 0, len(harness.Algorithms()))
	for _, a := range harness.Algorithms() {
		names = append(names, string(a))
	}
	return names
}

// ParseAlgorithm resolves an algorithm name (as the CLIs accept it) to an
// Algorithm, rejecting unknown names with an ErrInvalidConfig error.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("%w: unknown algorithm %q (have %s)",
		ErrInvalidConfig, name, strings.Join(AlgorithmNames(), ", "))
}

// ErrInvalidConfig is wrapped by every configuration-validation error this
// package returns; test for it with errors.Is. The message names the first
// violated constraint.
var ErrInvalidConfig = run.ErrInvalidConfig

// Config describes one broadcast execution (see Broadcast; Run is the
// composable superset).
type Config struct {
	// N is the number of nodes (required, at least 2).
	N int
	// Algorithm selects the protocol; it defaults to AlgoCluster2.
	Algorithm Algorithm
	// Seed makes the execution reproducible. Different seeds give independent
	// executions.
	Seed uint64
	// PayloadBits is the rumor size b in bits (default 256).
	PayloadBits int
	// Workers is the number of engine shards (goroutines) used per simulated
	// round; values <= 0 default to runtime.GOMAXPROCS(0). Results are
	// identical for any value.
	Workers int
	// Delta bounds per-round communications for AlgoClusterPushPull
	// (default 1024, minimum 8).
	Delta int
	// Failures is the number of nodes an oblivious adversary fails before the
	// execution starts (Section 8 of the paper).
	Failures int
	// FailureSeed drives the adversary's choice; it is independent of Seed.
	FailureSeed uint64
	// FailureRound, when > 1, defers the adversary to a timed crash wave
	// that strikes at the start of that engine round — mid-execution churn
	// instead of the paper's start-time failures (internal/scenario).
	FailureRound int
	// LossRate, when positive, drops every call independently with this
	// probability (oblivious per-call loss, charged per the live-participant
	// rule); LossSeed drives the drop decisions independently of Seed.
	LossRate float64
	LossSeed uint64
}

// Phase is the cost of one named phase of an execution.
type Phase struct {
	Name     string
	Rounds   int
	Messages int64
	Bits     int64
}

// Result reports the outcome and complexity of a broadcast execution.
type Result struct {
	Algorithm string
	N         int
	Seed      uint64

	// Rounds is the total number of synchronous rounds executed;
	// CompletionRound is the first round by which every live node knew the
	// rumor (baselines with a fixed round budget keep running afterwards).
	Rounds          int
	CompletionRound int

	// Messages counts rumor/payload messages, ControlMessages counts empty
	// requests; MessagesPerNode averages both over the nodes. Bits is the
	// total bit complexity. MaxCommsPerRound is the paper's Δ: the largest
	// number of communications any node took part in during one round.
	Messages         int64
	ControlMessages  int64
	Bits             int64
	MessagesPerNode  float64
	MaxCommsPerRound int

	// Live is the number of non-failed nodes, Informed how many of them ended
	// up with the rumor.
	Live        int
	Informed    int
	AllInformed bool

	Phases []Phase
}

// UninformedSurvivors returns the number of live nodes that did not learn the
// rumor (the paper's fault-tolerance measure is that this is o(F)).
func (r Result) UninformedSurvivors() int { return r.Live - r.Informed }

// Broadcast runs one gossip execution described by cfg on the simulator
// engine. It is a thin wrapper over the same execution layer Run uses and
// returns bit-identical results for identical configs and seeds (locked by
// the golden tests); Run is the composable superset with engine selection,
// timelines, observers and context cancellation.
func Broadcast(cfg Config) (Result, error) {
	out, err := run.Execute(context.Background(), run.Spec{
		N:            cfg.N,
		Algorithm:    string(cfg.Algorithm),
		Seed:         cfg.Seed,
		PayloadBits:  cfg.PayloadBits,
		Workers:      cfg.Workers,
		Delta:        cfg.Delta,
		Failures:     cfg.Failures,
		FailureSeed:  cfg.FailureSeed,
		FailureRound: cfg.FailureRound,
		LossRate:     cfg.LossRate,
		LossSeed:     cfg.LossSeed,
	})
	if err != nil {
		return Result{}, err
	}
	return fromOutcome(out).Result, nil
}

// MinPossibleRounds simulates the knowledge-graph lower bound of Theorem 3
// for one random draw of per-round contacts: no algorithm in the model can
// inform all n nodes in fewer rounds on those contacts.
func MinPossibleRounds(n int, seed uint64) int {
	minT, _ := lowerbound.MinRounds(n, seed)
	return minT
}

// Feasibility is one row of the knowledge-graph feasibility trace behind
// MinPossibleRounds: whether broadcast within T rounds is possible at all on
// the drawn contacts (Lemma 14: every node must be within distance 2^T =
// Reach of the source in the union of the first T contact graphs).
type Feasibility struct {
	T            int
	Eccentricity int
	Reach        int
	Possible     bool
}

// LowerBoundTrace returns the Theorem 3 knowledge-graph bound together with
// its per-T feasibility trace for one random draw of contacts.
func LowerBoundTrace(n int, seed uint64) (int, []Feasibility) {
	minT, tr := lowerbound.MinRounds(n, seed)
	out := make([]Feasibility, 0, len(tr))
	for _, f := range tr {
		out = append(out, Feasibility(f))
	}
	return minT, out
}

// TheoreticalLowerBound returns the analytic 0.99·log₂ log₂ n round lower
// bound of Theorem 3.
func TheoreticalLowerBound(n int) float64 { return lowerbound.TheoreticalMinRounds(n) }

// DeltaLowerBound returns the log n / log Δ round lower bound of Lemma 16 for
// executions in which no node communicates with more than delta nodes per
// round.
func DeltaLowerBound(n, delta int) float64 { return lowerbound.DeltaBound(n, delta) }

// MinDelta is the smallest supported per-round communication bound for
// AlgoClusterPushPull.
const MinDelta = core.MinDelta
