package repro

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/run"
)

// Table is one reproduction experiment result in typed form: consumers can
// render it (Render), serialize it (MarshalJSON) or walk the rows directly,
// instead of re-parsing pre-rendered text.
type Table struct {
	// ID is the experiment identifier (E1..E10); Title its one-line
	// description.
	ID    string
	Title string
	// Header names the columns; every row has one cell per column.
	Header []string
	Rows   [][]string
	// Notes carry the reading guide recorded under the table.
	Notes []string
}

// Render formats the table as aligned plain text — the format recorded in
// EXPERIMENTS.md.
func (t Table) Render() string {
	return harness.Table(t).Render()
}

// MarshalJSON serializes the table with stable lower-case keys.
func (t Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// Experiment regenerates one of the paper-reproduction tables (E1–E10, see
// DESIGN.md and EXPERIMENTS.md) over the given network sizes and seeds and
// returns it as a typed Table. Empty slices select the default sweep; the
// options may tune PayloadBits, Workers and Delta for the sweep's runs.
func Experiment(id string, sizes []int, seeds []uint64, opts ...Option) (Table, error) {
	cfg := harness.DefaultSweep()
	if len(sizes) > 0 {
		cfg.Sizes = sizes
	}
	if len(seeds) > 0 {
		cfg.Seeds = seeds
	}
	s := settings{}
	for _, o := range opts {
		if o.apply != nil {
			o.apply(&s)
		}
	}
	if s.err != nil {
		return Table{}, s.err
	}
	if err := s.sweepOptions(); err != nil {
		return Table{}, err
	}
	cfg.Opts.PayloadBits = s.spec.PayloadBits
	cfg.Opts.Workers = s.spec.Workers
	cfg.Opts.Delta = s.spec.Delta
	table, err := harness.RunExperiment(id, cfg)
	if err != nil {
		return Table{}, err
	}
	return Table(table), nil
}

// ExperimentIDs lists the reproducible experiment tables.
func ExperimentIDs() []string { return harness.ExperimentIDs() }

// sweepOptions checks that the applied options make sense for an experiment
// sweep: only the sweep-tunable knobs (payload size, workers, Δ) may be
// set, and their values must pass the same boundary validation Run applies.
// Anything else — algorithms, seeds, timelines, engines — is fixed by the
// experiment definitions themselves, and silently ignoring such an option
// would misreport what the sweep ran.
func (s *settings) sweepOptions() error {
	sp := s.spec
	if sp.PayloadBits < 0 {
		return fmt.Errorf("%w: negative PayloadBits %d", ErrInvalidConfig, sp.PayloadBits)
	}
	if sp.Delta != 0 && sp.Delta < MinDelta {
		return fmt.Errorf("%w: Delta %d below the minimum %d", ErrInvalidConfig, sp.Delta, MinDelta)
	}
	sp.PayloadBits, sp.Workers, sp.Delta = 0, 0, 0
	if sp.Algorithm != "" || sp.Seed != 0 || sp.Failures != 0 || sp.FailureSeed != 0 ||
		sp.FailureRound != 0 || sp.LossRate != 0 || sp.LossSeed != 0 ||
		len(sp.Events) != 0 || sp.Rounds != 0 || sp.ScenarioName != "" ||
		sp.Engine != run.EngineSimulator || sp.Transport != "" || sp.MaxSkew != 0 ||
		sp.Drop != 0 || sp.DropSeed != 0 || sp.Latency != 0 || sp.Jitter != 0 ||
		sp.Observer != nil || s.specN != 0 {
		return fmt.Errorf("%w: Experiment only takes the sweep-tunable options (WithPayloadBits, WithWorkers, WithDelta); algorithms, seeds, timelines and engines are fixed by the experiment definitions", ErrInvalidConfig)
	}
	return nil
}
