// Comparison: run every implemented gossip algorithm — the paper's Cluster1,
// Cluster2 and ClusterPUSH-PULL(Δ) plus the prior-work baselines — on the
// same network size and print a side-by-side complexity table (the scenario
// of the paper's introduction: how much can direct addressing buy over the
// classical random phone call protocols?).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	nFlag := flag.Int("n", 50_000, "network size")
	flag.Parse()
	n := *nFlag
	ctx := context.Background()

	fmt.Printf("%-22s %10s %12s %12s %14s %8s\n",
		"algorithm", "rounds", "done@round", "msgs/node", "bits/node", "maxΔ")
	for _, algo := range repro.Algorithms() {
		size := n
		if algo == repro.AlgoNameDropper && size > 1000 {
			size = 1000 // the resource-discovery baseline keeps Θ(n) state per node
		}
		res, err := repro.Run(ctx, size,
			repro.WithAlgorithm(algo), repro.WithSeed(3), repro.WithDelta(1024))
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		name := string(algo)
		if size != n {
			name = fmt.Sprintf("%s (n=%d)", algo, size)
		}
		fmt.Printf("%-22s %10d %12d %12.2f %14.1f %8d\n",
			name, res.Rounds, res.CompletionRound, res.MessagesPerNode,
			float64(res.Bits)/float64(res.N), res.MaxCommsPerRound)
		if !res.AllInformed {
			log.Fatalf("%s failed to inform everyone", algo)
		}
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" * push/pull/push-pull complete in ~log n rounds and spend ~log n messages per node;")
	fmt.Println(" * karp-median-counter keeps the rounds but cuts messages to ~log log n per node;")
	fmt.Println(" * cluster1/cluster2 (this paper) keep both rounds and messages per node flat as n grows;")
	fmt.Println(" * clusterpushpull additionally caps how many requests a single node answers per round.")
}
