// Gossip under churn: the paper's model is static — an oblivious adversary
// picks its victims before round 0 — but real gossip deployments live under
// continuous crash/join churn and message loss. This walkthrough composes
// public timeline events (repro.WithTimeline) to put the classical protocols
// under exactly those dynamics and shows why robustness, not just speed,
// separates them:
//
//  1. a crash wave mid-broadcast, with rejoining (uninformed) nodes,
//  2. steady periodic churn plus 5% per-call loss,
//
// comparing push, pull and push-pull on identical timelines. The JSON twin
// of scenario 1 lives in spec.json — run it with
// `go run ./cmd/scenario -spec examples/churn/spec.json`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	nFlag := flag.Int("n", 20_000, "network size")
	flag.Parse()
	n := *nFlag

	fmt.Println("=== 1. crash wave at round 10, rejoin at round 24 (5% loss) ===")
	fmt.Println()
	crashed := repro.PickRandomNodes(n, n/5, 11)
	wave := []repro.TimelineEvent{
		repro.InjectRumor{At: 1, Node: 0, Rumor: 0},
		repro.LossAt{At: 1, Rate: 0.05, Seed: 7},
		repro.CrashAt{At: 10, Nodes: crashed},
		repro.JoinAt{At: 24, Nodes: crashed},
	}
	compare(n, wave)

	fmt.Println()
	fmt.Println("=== 2. steady churn: 1% of the network flaps every 6 rounds (5% loss) ===")
	fmt.Println()
	churn := append(
		repro.PeriodicChurn(n, 5, 6, n/100, 4, 44, 21),
		repro.InjectRumor{At: 1, Node: 0, Rumor: 0},
		repro.LossAt{At: 1, Rate: 0.05, Seed: 7},
	)
	compare(n, churn)

	fmt.Println()
	fmt.Println("Push stalls when its informed frontier crashes; pull recovers joiners but")
	fmt.Println("pays control traffic forever; push-pull re-informs every rejoiner quickly.")
	fmt.Println("The per-phase view of the crash-wave timeline is one command away:")
	fmt.Println("  go run ./cmd/scenario -spec examples/churn/spec.json")
}

// compare runs the same timeline under every steppable protocol.
func compare(n int, timeline []repro.TimelineEvent) {
	fmt.Printf("%-10s %10s %14s %12s %14s\n", "algorithm", "informed", "completed", "msgs/node", "final live")
	for _, algo := range []repro.Algorithm{repro.AlgoPush, repro.AlgoPull, repro.AlgoPushPull} {
		rep, err := repro.Run(context.Background(), n,
			repro.WithAlgorithm(algo),
			repro.WithSeed(1),
			repro.WithRounds(44),
			repro.WithTimeline(timeline...),
		)
		if err != nil {
			log.Fatal(err)
		}
		out := rep.Rumors[0]
		completed := "never"
		if out.CompletionRound > 0 {
			completed = fmt.Sprintf("round %d", out.CompletionRound)
		}
		fmt.Printf("%-10s %9.1f%% %14s %12.1f %14d\n",
			algo, 100*out.LiveFraction, completed, rep.MessagesPerNode, rep.Live)
	}
}
