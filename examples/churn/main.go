// Gossip under churn: the paper's model is static — an oblivious adversary
// picks its victims before round 0 — but real gossip deployments live under
// continuous crash/join churn and message loss. This walkthrough uses the
// scenario subsystem (internal/scenario) to put the classical protocols
// under exactly those dynamics and shows why robustness, not just speed,
// separates them:
//
//  1. a crash wave mid-broadcast, with rejoining (uninformed) nodes,
//  2. steady periodic churn plus 5% per-call loss,
//
// comparing push, pull and push-pull on identical timelines. The JSON twin
// of scenario 1 lives in spec.json — run it with
// `go run ./cmd/scenario -spec examples/churn/spec.json`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/failure"
	"repro/internal/scenario"
)

func main() {
	nFlag := flag.Int("n", 20_000, "network size")
	flag.Parse()
	n := *nFlag
	fmt.Println("=== 1. crash wave at round 10, rejoin at round 24 (5% loss) ===")
	fmt.Println()
	wave := failure.Timed{Round: 10, Adversary: failure.Random{Count: n / 5, Seed: 11}}
	crash := scenario.FromTimed(wave, n)
	events := []scenario.Event{
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
		scenario.Loss{At: 1, Rate: 0.05, Seed: 7},
		crash,
		scenario.JoinAt{At: 24, Nodes: crash.Nodes},
	}
	compare(scenario.Scenario{Name: "crash wave", N: n, Rounds: 44, Events: events})

	fmt.Println()
	fmt.Println("=== 2. steady churn: 1% of the network flaps every 6 rounds (5% loss) ===")
	fmt.Println()
	churn := append(
		scenario.PeriodicChurn(n, 5, 6, n/100, 4, 44, 21),
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
		scenario.Loss{At: 1, Rate: 0.05, Seed: 7},
	)
	compare(scenario.Scenario{Name: "steady churn", N: n, Rounds: 44, Events: churn})

	fmt.Println()
	fmt.Println("Push stalls when its informed frontier crashes; pull recovers joiners but")
	fmt.Println("pays control traffic forever; push-pull re-informs every rejoiner quickly.")
	fmt.Println("The per-phase view of the crash-wave timeline is one command away:")
	fmt.Println("  go run ./cmd/scenario -spec examples/churn/spec.json")
}

// compare runs the same timeline under every steppable protocol.
func compare(sc scenario.Scenario) {
	fmt.Printf("%-10s %10s %14s %12s %14s\n", "algorithm", "informed", "completed", "msgs/node", "final live")
	for _, algo := range scenario.Algorithms() {
		s := sc
		s.Algorithm = algo
		res, err := scenario.Run(s, scenario.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		out := res.Rumors[0]
		completed := "never"
		if out.CompletionRound > 0 {
			completed = fmt.Sprintf("round %d", out.CompletionRound)
		}
		fmt.Printf("%-10s %9.1f%% %14s %12.1f %14d\n",
			algo, 100*out.LiveFraction, completed, res.MessagesPerNode, res.Live)
	}
}
