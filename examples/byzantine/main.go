// Byzantine fault injection: what gossip survives, and what kills it.
//
// The paper's guarantees assume honest (if crash-prone) participants. This
// walkthrough probes the boundary with the adversary library twice over:
//
//  1. Random corruption. A 5% minority of liars — nodes that hide a random
//     subset of their true holdings and forge rumor bits no real rumor owns —
//     slows push-pull down but cannot stop it: honest receivers discard the
//     forgeries, and the honest majority's random calls route around the
//     misinformation. The program asserts full convergence.
//
//  2. Targeted corruption. An eclipse attack corrupts every node EXCEPT a
//     three-node victim set: each dropper silently discards calls that would
//     reach a victim and answers no pulls. No amount of honest protocol
//     helps — the victims' whole horizon lies — and the rumor provably never
//     crosses into the victim set. The program asserts exactly that residual.
//
// The contrast is the point: epidemic gossip is extraordinarily robust to
// how MANY nodes misbehave and extraordinarily fragile to WHICH ones do.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"os"

	"repro"
)

// n is the network size, overridable with -n.
var n = 20_000

// liarFraction is the random-corruption minority of part 1.
const liarFraction = 0.05

// victims is the eclipse target set of part 2: small enough that the
// residual uninformed count identifies the isolated nodes exactly.
var victims = []int{7, 8, 9}

// budget is the round budget: generous against honest push-pull's Θ(log n)
// completion, so part 1 measures a slowdown rather than a timeout and part
// 2's non-convergence is meaningful.
func budget() int {
	return 4*bits.Len(uint(n)) + 30
}

// pushPull runs push-pull with rumor 0 injected at node 0 and the given
// extra timeline events.
func pushPull(events ...repro.TimelineEvent) repro.Report {
	timeline := append([]repro.TimelineEvent{
		repro.InjectRumor{At: 1, Node: 0, Rumor: 0},
	}, events...)
	rep, err := repro.Run(context.Background(), n,
		repro.WithAlgorithm(repro.AlgoPushPull),
		repro.WithSeed(7),
		repro.WithRounds(budget()),
		repro.WithTimeline(timeline...),
	)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

// liarMinority picks the 5% liars, never the source (the attack is on the
// spread, not on muting the injection point).
func liarMinority() []int {
	count := int(liarFraction * float64(n))
	picked := make([]int, 0, count)
	for _, i := range repro.PickRandomNodes(n, count+1, 101) {
		if i != 0 && len(picked) < count {
			picked = append(picked, i)
		}
	}
	return picked
}

// eclipseDroppers corrupts everyone but the victims.
func eclipseDroppers() []int {
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}
	droppers := make([]int, 0, n-len(victims))
	for i := 0; i < n; i++ {
		if !isVictim[i] {
			droppers = append(droppers, i)
		}
	}
	return droppers
}

func main() {
	flag.IntVar(&n, "n", n, "network size")
	flag.Parse()
	failed := false

	honest := pushPull()
	fmt.Printf("honest          push-pull: completion round %d, informed %d/%d\n",
		honest.Rumors[0].CompletionRound, honest.Rumors[0].LiveInformed, n)

	liars := pushPull(repro.CorruptAt{
		At: 1, Nodes: liarMinority(), Behavior: repro.AdversaryLiar, Seed: 5,
	})
	lo := liars.Rumors[0]
	fmt.Printf("5%% liars        push-pull: completion round %d, informed %d/%d\n",
		lo.CompletionRound, lo.LiveInformed, n)
	if lo.CompletionRound == 0 || lo.LiveInformed != n {
		fmt.Println("VIOLATION: push-pull failed to converge under a 5% liar minority")
		failed = true
	}

	eclipse := pushPull(repro.CorruptAt{
		At: 1, Nodes: eclipseDroppers(), Behavior: repro.AdversaryEclipse, Victims: victims,
	})
	eo := eclipse.Rumors[0]
	fmt.Printf("total eclipse   push-pull: completion round %d, informed %d/%d (victims dark: %d)\n",
		eo.CompletionRound, eo.LiveInformed, n, n-eo.LiveInformed)
	if eo.CompletionRound != 0 || eo.LiveInformed != n-len(victims) {
		fmt.Printf("VIOLATION: eclipse residual is %d, want exactly the %d victims\n",
			n-eo.LiveInformed, len(victims))
		failed = true
	}

	fmt.Printf("\nsame protocol, same honest majority: %d random liars cost %d extra rounds; %d targeted droppers made %d nodes unreachable forever\n",
		len(liarMinority()), lo.CompletionRound-honest.Rumors[0].CompletionRound,
		n-len(victims), len(victims))
	if failed {
		os.Exit(1)
	}
}
