// Live runtime walkthrough: run the paper's Cluster2 twice — once on the
// sharded simulator engine, once with every node as its own goroutine
// exchanging wire frames over the in-process transport in lock-step — and
// verify the two executions are bit-identical. Then let the same network run
// free (no global barrier, 5% frame loss) and watch the completion monitor
// detect convergence. All three executions go through the one repro.Run
// entry point; only the engine selector changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"reflect"

	"repro"
)

func main() {
	n := flag.Int("n", 2000, "network size (one goroutine per node in the live runs)")
	flag.Parse()
	ctx := context.Background()

	// 1. Simulated vs live lock-step: same seed, same algorithm, two
	// completely different execution substrates.
	sim, err := repro.Run(ctx, *n,
		repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(1), repro.WithWorkers(1),
		repro.OnSimulator(),
	)
	if err != nil {
		log.Fatal(err)
	}
	live, err := repro.Run(ctx, *n,
		repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(1),
		repro.OnLockStep(repro.TransportChannel),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cluster2 over %d nodes\n", *n)
	fmt.Printf("  simulator engine:   %d rounds, %.2f msgs/node, %d bits\n",
		sim.Rounds, sim.MessagesPerNode, sim.Bits)
	fmt.Printf("  live lock-step:     %d rounds, %.2f msgs/node, %d bits\n",
		live.Rounds, live.MessagesPerNode, live.Bits)
	if !reflect.DeepEqual(sim.Result, live.Result) {
		log.Fatalf("conformance violated: traces diverge\n sim:  %+v\n live: %+v", sim.Result, live.Result)
	}
	fmt.Println("  bit-identical:      true (the internal/live conformance guarantee)")

	// 2. Free-running: local round clocks, bounded skew, 5% of all frames
	// dropped by the transport. Push-pull converges anyway.
	free, err := repro.Run(ctx, *n,
		repro.WithSeed(1),
		repro.OnFreeRunning(0, 0),
		repro.WithFrameLoss(0.05, 7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFree-running push-pull under 5%% frame loss\n")
	fmt.Printf("  converged:          %v (%d/%d live nodes informed)\n", free.AllInformed, free.Informed, free.Live)
	fmt.Printf("  completion frontier round %d (furthest clock %d), wall %v\n",
		free.CompletionRound, free.Rounds, free.Wall.Round(1e6))
	fmt.Printf("  traffic:            %d messages, %d frames dropped in transit\n",
		free.Messages+free.ControlMessages, free.Drops)
}
