// Live runtime walkthrough: run the paper's Cluster2 twice — once on the
// sharded simulator engine, once with every node as its own goroutine
// exchanging wire frames over the in-process transport in lock-step — and
// verify the two executions are bit-identical. Then let the same network run
// free (no global barrier, 5% frame loss) and watch the completion monitor
// detect convergence.
package main

import (
	"flag"
	"fmt"
	"log"
	"reflect"

	"repro/internal/harness"
)

func main() {
	n := flag.Int("n", 2000, "network size (one goroutine per node in the live runs)")
	flag.Parse()

	// 1. Simulated vs live lock-step: same seed, same algorithm, two
	// completely different execution substrates.
	sim, err := harness.Run(harness.AlgoCluster2, *n, 1, harness.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	liveRes, err := harness.RunLockStep(harness.AlgoCluster2, *n, 1, harness.Options{}, harness.LiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cluster2 over %d nodes\n", *n)
	fmt.Printf("  simulator engine:   %d rounds, %.2f msgs/node, %d bits\n",
		sim.Rounds, sim.MessagesPerNode, sim.Bits)
	fmt.Printf("  live lock-step:     %d rounds, %.2f msgs/node, %d bits\n",
		liveRes.Rounds, liveRes.MessagesPerNode, liveRes.Bits)
	if !reflect.DeepEqual(sim, liveRes) {
		log.Fatalf("conformance violated: traces diverge\n sim:  %+v\n live: %+v", sim, liveRes)
	}
	fmt.Println("  bit-identical:      true (the internal/live conformance guarantee)")

	// 2. Free-running: local round clocks, bounded skew, 5% of all frames
	// dropped by the transport. Push-pull converges anyway.
	rep, err := harness.RunFreeRunning(*n, 1, "", nil, harness.LiveOptions{Drop: 0.05, DropSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFree-running push-pull under 5%% frame loss\n")
	fmt.Printf("  converged:          %v (%d/%d live nodes informed)\n", rep.AllInformed, rep.Informed, rep.Live)
	fmt.Printf("  completion frontier round %d (budget %d), wall %v\n",
		rep.CompletionFrontier, rep.Rounds, rep.Wall.Round(1e6))
	fmt.Printf("  traffic:            %d messages, %d frames dropped in transit\n",
		rep.Messages+rep.ControlMessages, rep.Drops)
}
