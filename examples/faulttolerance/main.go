// Fault tolerance: an oblivious adversary crashes an increasing fraction of
// the network before the gossip starts (Section 8 of the paper). Theorem 19
// promises that all but o(F) of the surviving nodes still learn the rumor —
// this example measures exactly that ratio.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 50_000

	fmt.Printf("%-10s %-8s %-22s %-14s %-10s\n", "failed F", "F/n", "uninformed survivors", "uninformed/F", "rounds")
	for _, fraction := range []float64{0.01, 0.05, 0.10, 0.20, 0.30} {
		f := int(fraction * n)
		res, err := repro.Broadcast(repro.Config{
			N:           n,
			Algorithm:   repro.AlgoCluster2,
			Seed:        11,
			Failures:    f,
			FailureSeed: 97,
		})
		if err != nil {
			log.Fatal(err)
		}
		uninformed := res.UninformedSurvivors()
		fmt.Printf("%-10d %-8.2f %-22d %-14.4f %-10d\n",
			f, fraction, uninformed, float64(uninformed)/float64(f), res.Rounds)
	}

	fmt.Println("\nThe uninformed/F column stays far below 1 and shrinks with n: the algorithm")
	fmt.Println("informs all but o(F) survivors, matching Theorem 19.")
}
