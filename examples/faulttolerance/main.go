// Fault tolerance: an oblivious adversary crashes an increasing fraction of
// the network (Section 8 of the paper). Theorem 19 promises that all but
// o(F) of the surviving nodes still learn the rumor. This example measures
// that ratio twice: first under the paper's start-time adversary, then —
// through the scenario subsystem's timed-adversary adapter (failure.Timed →
// scenario.FromTimed) — under a crash wave that strikes mid-execution,
// while cluster2's broadcast phases are still running. The program asserts
// the o(F) guarantee (uninformed/F stays far below 1) in both regimes and
// exits non-zero if any configuration violates it. A final contrast row
// shows the one regime where the guarantee genuinely breaks: a wave that
// hits while the initial clustering is still being built.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

// n is the network size, overridable with -n (cluster2's round counts grow
// only like log n, so the round-30 wave stays mid-execution from a few
// thousand nodes up).
var n = 50_000

const (
	// earlyWaveRound strikes during GrowInitialClusters, when the rumor's
	// future path is a sparse half-built structure.
	earlyWaveRound = 5
	// oFBound is the assertion threshold for uninformed/F. Theorem 19's
	// o(F) means the ratio vanishes as n grows; at n=50000 it is observed
	// at 0 start-time and below 0.3 for mid-broadcast waves.
	oFBound = 0.5
)

// midBroadcastRound picks the round for the timed wave: the middle of the
// BoundedClusterPush phase, when the clustering skeleton exists and the
// rumor has started fanning out but the PullJoin / ClusterShare phases are
// still ahead. The phase boundaries move with n, so the round is read off
// an unfailured dry run rather than hardcoded — a fixed round drifts into
// the fragile mid-clustering regime at other sizes (the contrast row below
// shows that regime deliberately).
func midBroadcastRound() int {
	res, err := repro.Run(context.Background(), n,
		repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	rounds := 0
	for _, p := range res.Phases {
		if p.Name == "BoundedClusterPush" {
			return rounds + p.Rounds/2
		}
		rounds += p.Rounds
	}
	return rounds / 2
}

func main() {
	flag.IntVar(&n, "n", n, "network size")
	flag.Parse()
	waveRound := midBroadcastRound()
	violations := 0

	fmt.Println("=== start-time adversary (the paper's Section 8 model) ===")
	violations += measure(0, true)

	fmt.Printf("\n=== timed crash wave at round %d (scenario subsystem, failure.Timed) ===\n", waveRound)
	violations += measure(waveRound, true)

	fmt.Println("\nThe uninformed/F column stays far below 1 in both regimes: the algorithm")
	fmt.Println("informs all but o(F) survivors, matching Theorem 19 — even when the wave")
	fmt.Println("removes informed nodes and in-flight calls mid-broadcast.")

	fmt.Printf("\n=== contrast: wave at round %d, mid-clustering (no assertion) ===\n", earlyWaveRound)
	measure(earlyWaveRound, false)
	fmt.Println("\nA wave during GrowInitialClusters collapses the sparse O(1)-message")
	fmt.Println("structure the rumor would later travel through — the regime the E8 table")
	fmt.Println("(`go run ./cmd/benchtab -experiment E8`) sweeps against robust flooding.")

	if violations > 0 {
		fmt.Printf("\nASSERTION FAILED: %d configuration(s) exceeded uninformed/F = %v\n", violations, oFBound)
		os.Exit(1)
	}
	fmt.Printf("\nassertion held: uninformed/F < %v for every asserted configuration\n", oFBound)
}

// measure runs cluster2 across failure fractions, printing the o(F) ratio.
// failureRound 0 means start-time. When assert is set, violations of oFBound
// are counted and returned.
func measure(failureRound int, assert bool) int {
	violations := 0
	fmt.Printf("%-10s %-8s %-22s %-14s %-10s %-6s\n", "failed F", "F/n", "uninformed survivors", "uninformed/F", "rounds", "o(F)?")
	for _, fraction := range []float64{0.01, 0.05, 0.10, 0.20, 0.30} {
		f := int(fraction * float64(n))
		res, err := repro.Run(context.Background(), n,
			repro.WithAlgorithm(repro.AlgoCluster2),
			repro.WithSeed(11),
			repro.WithFailures(f, 97),
			repro.WithFailureRound(failureRound),
		)
		if err != nil {
			log.Fatal(err)
		}
		uninformed := res.UninformedSurvivors()
		ratio := float64(uninformed) / float64(f)
		ok := ratio < oFBound
		if assert && !ok {
			violations++
		}
		fmt.Printf("%-10d %-8.2f %-22d %-14.4f %-10d %-6v\n",
			f, fraction, uninformed, ratio, res.Rounds, ok)
	}
	return violations
}
