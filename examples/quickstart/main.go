// Quickstart: broadcast a rumor to 100,000 nodes with Cluster2, the paper's
// main algorithm (O(log log n) rounds, O(1) messages per node, O(nb) bits),
// watching the spread live through a streaming observer, then print the
// complexity figures and the per-phase breakdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 100_000, "network size")
	flag.Parse()

	// The observer streams every executed round as it happens — message and
	// bit counts plus the live population — without changing the results.
	fmt.Println("round-by-round (every 8th round):")
	report, err := repro.Run(context.Background(), *n,
		repro.WithAlgorithm(repro.AlgoCluster2),
		repro.WithSeed(1),
		repro.WithPayloadBits(256),
		repro.WithObserver(func(r repro.RoundInfo) {
			if r.Round%8 == 1 {
				fmt.Printf("  round %3d: %8d messages, live %d\n", r.Round, r.Messages, r.Live)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nBroadcast with %s over %d nodes (%s engine)\n", report.Algorithm, report.N, report.Engine)
	fmt.Printf("  all informed:      %v (%d/%d)\n", report.AllInformed, report.Informed, report.Live)
	fmt.Printf("  rounds:            %d\n", report.Rounds)
	fmt.Printf("  messages per node: %.2f\n", report.MessagesPerNode)
	fmt.Printf("  total bits:        %d (%.1f per node)\n", report.Bits, float64(report.Bits)/float64(report.N))
	fmt.Printf("  max Δ per round:   %d\n", report.MaxCommsPerRound)

	fmt.Println("\nPhase breakdown:")
	for _, p := range report.Phases {
		fmt.Printf("  %-24s %3d rounds  %9d messages\n", p.Name, p.Rounds, p.Messages)
	}

	fmt.Printf("\nLower bound check: Theorem 3 says at least %.1f rounds are needed at this size.\n",
		repro.TheoreticalLowerBound(report.N))
}
