// Quickstart: broadcast a rumor to 100,000 nodes with Cluster2, the paper's
// main algorithm (O(log log n) rounds, O(1) messages per node, O(nb) bits),
// and print the complexity figures and the per-phase breakdown.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 100_000, "network size")
	flag.Parse()
	result, err := repro.Broadcast(repro.Config{
		N:           *n,
		Algorithm:   repro.AlgoCluster2,
		Seed:        1,
		PayloadBits: 256,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Broadcast with %s over %d nodes\n", result.Algorithm, result.N)
	fmt.Printf("  all informed:      %v (%d/%d)\n", result.AllInformed, result.Informed, result.Live)
	fmt.Printf("  rounds:            %d\n", result.Rounds)
	fmt.Printf("  messages per node: %.2f\n", result.MessagesPerNode)
	fmt.Printf("  total bits:        %d (%.1f per node)\n", result.Bits, float64(result.Bits)/float64(result.N))
	fmt.Printf("  max Δ per round:   %d\n", result.MaxCommsPerRound)

	fmt.Println("\nPhase breakdown:")
	for _, p := range result.Phases {
		fmt.Printf("  %-24s %3d rounds  %9d messages\n", p.Name, p.Rounds, p.Messages)
	}

	fmt.Printf("\nLower bound check: Theorem 3 says at least %.1f rounds are needed at this size.\n",
		repro.TheoreticalLowerBound(result.N))
}
