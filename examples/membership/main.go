// Membership / coordination: the clustering the paper builds is useful beyond
// broadcast — it gives every node a leader it can route coordination tasks
// through (the "coordination and information dissemination tasks" of the
// paper's introduction). This example builds a Θ(Δ)-clustering over a cluster
// of servers, then uses it as a lightweight membership service: spreading a
// configuration epoch to every node and reporting how the per-leader load
// stays bounded by Δ while new epochs propagate in a handful of rounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	serversFlag := flag.Int("n", 20_000, "number of servers")
	flag.Parse()
	servers := *serversFlag
	const delta = 128
	ctx := context.Background()

	fmt.Printf("membership service over %d servers, per-round fan-in bound Δ=%d\n\n", servers, delta)

	// Each configuration epoch is a b-bit payload broadcast through the
	// clustering; epochs are independent executions over the same cluster
	// size, as a deployment would re-run the gossip for each update.
	for epoch := 1; epoch <= 3; epoch++ {
		res, err := repro.Run(ctx, servers,
			repro.WithAlgorithm(repro.AlgoClusterPushPull),
			repro.WithSeed(uint64(epoch)),
			repro.WithDelta(delta),
			repro.WithPayloadBits(1024), // serialized membership delta
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: delivered to %d/%d servers in %d rounds, "+
			"%.1f msgs/server, max fan-in %d (Δ=%d)\n",
			epoch, res.Informed, res.Live, res.Rounds, res.MessagesPerNode, res.MaxCommsPerRound, delta)
	}

	// A failure wave hits 10% of the fleet between epochs: the next epoch
	// still reaches all but o(F) of the survivors (Theorem 19).
	res, err := repro.Run(ctx, servers,
		repro.WithAlgorithm(repro.AlgoClusterPushPull),
		repro.WithSeed(4),
		repro.WithDelta(delta),
		repro.WithFailures(servers/10, 123),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nepoch 4 (after %d crashes): %d/%d survivors updated, %d left stale\n",
		servers/10, res.Informed, res.Live, res.UninformedSurvivors())
}
