// Bounded communication: most gossip algorithms with direct addressing let a
// single node answer up to n−1 requests in one round. Section 7 of the paper
// bounds this quantity Δ: Cluster3 builds a Θ(Δ)-clustering and
// ClusterPUSH-PULL then broadcasts in O(log n / log Δ) rounds with no node
// answering more than O(Δ) requests. This example sweeps Δ and compares the
// observed maximum fan-in and rounds against the Lemma 16 lower bound and
// against Cluster2 (which does not bound Δ).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	nFlag := flag.Int("n", 50_000, "network size")
	flag.Parse()
	n := *nFlag
	ctx := context.Background()

	fmt.Printf("%-18s %8s %12s %14s %12s\n", "algorithm", "Δ bound", "rounds", "observed maxΔ", "lemma16")
	for _, delta := range []int{16, 64, 256, 1024} {
		res, err := repro.Run(ctx, n,
			repro.WithAlgorithm(repro.AlgoClusterPushPull),
			repro.WithSeed(5),
			repro.WithDelta(delta),
		)
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllInformed {
			log.Fatalf("Δ=%d informed only %d/%d", delta, res.Informed, res.Live)
		}
		fmt.Printf("%-18s %8d %12d %14d %12.1f\n",
			"clusterpushpull", delta, res.Rounds, res.MaxCommsPerRound, repro.DeltaLowerBound(n, delta))
	}

	unbounded, err := repro.Run(ctx, n, repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8s %12d %14d %12s\n", "cluster2", "none", unbounded.Rounds, unbounded.MaxCommsPerRound, "-")

	fmt.Println("\nSmaller Δ keeps every node's per-round load low at the price of more rounds;")
	fmt.Println("the rounds stay above the log n / log Δ bound of Lemma 16, and the unbounded")
	fmt.Println("Cluster2 run shows why the bound matters: its final phases concentrate n-1")
	fmt.Println("requests on the single cluster leader.")
}
