// Gossip across failure domains: the engines address a flat, uniform
// network, but real deployments spread over zones — racks, datacenters,
// regions — that fail together and whose links are not symmetric. This
// walkthrough attributes the nodes with a three-zone topology
// (repro.WithTopology), biases peer selection toward same-zone contacts
// (repro.WithPolicy), and then drives the two zone-level dynamics the
// timeline vocabulary gains with a topology:
//
//  1. a whole zone goes dark mid-broadcast and later heals
//     (ZoneOutageAt / ZoneHealAt) — the walkthrough asserts the revived
//     zone reconverges: every live node informed after the heal,
//  2. the network partitions along zone boundaries and heals
//     (PartitionAt / HealPartitionAt) — while split, the rumor saturates
//     the zones it had already reached and cannot cross into the rest.
//
// Policy-driven selection stays a pure function of (seed, round, initiator),
// so these runs remain bit-identical across engines and worker counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	nFlag := flag.Int("n", 30_000, "network size")
	flag.Parse()
	n := *nFlag

	topo, err := repro.ZonedTopology(n, 3)
	if err != nil {
		log.Fatal(err)
	}
	policy := repro.Policy{
		// Prefer same-zone peers 4:1 — cheap local links do most of the
		// spreading, cross-zone contacts still happen (no hard constraint).
		Weights: repro.PolicyWeights{SameZone: 4},
	}

	fmt.Println("=== 1. zone 2 goes dark at round 6, heals at round 16 ===")
	fmt.Println()
	rep := run(n, topo, policy,
		repro.InjectRumor{At: 1, Node: 0, Rumor: 0},
		repro.ZoneOutageAt{At: 6, Zone: 2},
		repro.ZoneHealAt{At: 16, Zone: 2},
	)
	report(rep)
	// The acceptance assertion of this walkthrough: the healed zone's nodes
	// rejoin uninformed, and gossip must still reconverge — every live node
	// informed by the end of the budget.
	if rep.Live != n || !rep.AllInformed {
		log.Fatalf("zone 2 did not reconverge after the heal: %d/%d live informed",
			rep.Informed, rep.Live)
	}
	fmt.Printf("reconverged: all %d nodes informed after zone 2 healed\n", rep.Live)

	fmt.Println()
	fmt.Println("=== 2. partition along zone boundaries at round 4, heal at round 12 ===")
	fmt.Println()
	rep = run(n, topo, policy,
		repro.InjectRumor{At: 1, Node: 0, Rumor: 0}, // node 0 lives in zone 0
		repro.PartitionAt{At: 4},
		repro.HealPartitionAt{At: 12},
	)
	report(rep)
	if !rep.AllInformed {
		log.Fatalf("broadcast did not complete after the partition healed: %d/%d",
			rep.Informed, rep.Live)
	}
	fmt.Println("while split, gossip saturated only the zones the rumor had already")
	fmt.Println("reached — the informed count plateaus below the full network until the")
	fmt.Println("heal restores cross-zone contacts and the cut-off zones catch up.")
}

// run executes one push-pull timeline over the zoned, policy-biased network.
func run(n int, topo repro.Topology, policy repro.Policy, timeline ...repro.TimelineEvent) repro.Report {
	rep, err := repro.Run(context.Background(), n,
		repro.WithAlgorithm(repro.AlgoPushPull),
		repro.WithSeed(1),
		repro.WithRounds(40),
		repro.WithTopology(topo),
		repro.WithPolicy(policy),
		repro.WithTimeline(timeline...),
	)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

// report prints the phase trace: how far the rumor had spread when each
// zone event fired.
func report(rep repro.Report) {
	fmt.Printf("%-12s %10s %12s  %s\n", "rounds", "live", "informed", "events")
	for _, p := range rep.ScenarioPhases {
		informed := 0
		if len(p.Informed) > 0 {
			informed = p.Informed[0].LiveInformed
		}
		events := ""
		if len(p.Events) > 0 {
			events = p.Events[0]
		}
		fmt.Printf("[%3d,%3d]    %10d %12d  %s\n", p.FromRound, p.ToRound, p.Live, informed, events)
	}
	out := rep.Rumors[0]
	completed := "never completed"
	if out.CompletionRound > 0 {
		completed = fmt.Sprintf("completed at round %d", out.CompletionRound)
	}
	fmt.Printf("final: %d/%d live informed, %s\n\n", out.LiveInformed, rep.Live, completed)
}
