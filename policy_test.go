package repro

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testPolicy is the zoned policy the determinism tests run under: same-zone
// preference with a latency cap, enough bias to change selection everywhere.
func testPolicy() Policy {
	return Policy{
		Rules:   PolicyRules{MaxLatencyDistance: 200},
		Weights: PolicyWeights{SameZone: 4, Capacity: 1},
	}
}

// TestPolicyDeterministicAcrossWorkers requires policy-driven runs to be
// bit-identical for any engine shard count — the same guarantee the uniform
// contract has, extended to the policy selector (exercised under -race in CI).
func TestPolicyDeterministicAcrossWorkers(t *testing.T) {
	const n = 6000
	topo, err := WanLanTopology(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(workers int) Report {
		t.Helper()
		rep, err := Run(context.Background(), n,
			WithAlgorithm(AlgoCluster2),
			WithSeed(42),
			WithWorkers(workers),
			WithTopology(topo),
			WithPolicy(testPolicy()),
		)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := runWith(1)
	if ref.Informed == 0 {
		t.Fatalf("reference run informed nobody: %+v", ref.Result)
	}
	for _, workers := range []int{2, 8} {
		if rep := runWith(workers); !reflect.DeepEqual(ref.Result, rep.Result) {
			t.Errorf("workers=%d: policy-driven results differ:\n  1: %+v\n  %d: %+v",
				workers, ref.Result, workers, rep.Result)
		}
	}
}

// TestPolicySimVsLockStep requires the policy-driven simulator and lock-step
// engines to stay bit-identical (the internal/live conformance guarantee,
// extended to the policy selector).
func TestPolicySimVsLockStep(t *testing.T) {
	const n = 1500
	topo, err := ZonedTopology(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithAlgorithm(AlgoCluster2), WithSeed(9),
		WithTopology(topo), WithPolicy(testPolicy()),
	}
	sim, err := Run(context.Background(), n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Run(context.Background(), n, append(opts, OnLockStep(TransportChannel))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sim.Result, ls.Result) {
		t.Fatalf("sim and lock-step diverge under policy:\n%+v\n%+v", sim.Result, ls.Result)
	}
}

// TestTopologyAloneChangesNothing locks the pass-through guarantee at the
// facade: attributing nodes without a policy leaves every result byte-
// identical to the plain uniform run — the golden lock that the selector seam
// cannot drift the no-policy path.
func TestTopologyAloneChangesNothing(t *testing.T) {
	const n = 3000
	plain, err := Run(context.Background(), n, WithAlgorithm(AlgoCluster2), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := WanLanTopology(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	attributed, err := Run(context.Background(), n,
		WithAlgorithm(AlgoCluster2), WithSeed(7), WithTopology(topo))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Result, attributed.Result) {
		t.Fatalf("a topology without a policy changed the execution:\n%+v\n%+v",
			plain.Result, attributed.Result)
	}
}

// TestZoneOutageTimeline runs a zone outage plus heal under a zoned policy
// and requires the broadcast to still complete on every live node.
func TestZoneOutageTimeline(t *testing.T) {
	const n = 900
	topo, err := ZonedTopology(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), n,
		WithAlgorithm(AlgoCluster2),
		WithSeed(4),
		WithTopology(topo),
		WithPolicy(Policy{Mode: PolicyPermissive, Weights: PolicyWeights{SameZone: 2}}),
		WithTimeline(ZoneOutageAt{At: 3, Zone: 2}, ZoneHealAt{At: 8, Zone: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live != n {
		t.Fatalf("healed run has %d live nodes, want %d", rep.Live, n)
	}
	if !rep.AllInformed {
		t.Fatalf("broadcast did not complete after zone heal: %+v", rep.Result)
	}
}

// TestPolicyOptionValidation exercises the facade's typed-error boundary for
// the topology surface.
func TestPolicyOptionValidation(t *testing.T) {
	topo, err := ZonedTopology(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		n    int
		opts []Option
	}{
		{"policy without topology", 100, []Option{WithPolicy(testPolicy())}},
		{"empty topology", 100, []Option{WithTopology(Topology{})}},
		{"topology size mismatch", 200, []Option{WithTopology(topo)}},
		{"zone event without topology", 100, []Option{
			WithTimeline(ZoneOutageAt{At: 2, Zone: 0})}},
		{"partition without topology", 100, []Option{
			WithTimeline(PartitionAt{At: 2})}},
		{"zone outside topology", 100, []Option{
			WithTopology(topo), WithTimeline(ZoneHealAt{At: 2, Zone: 9})}},
		{"bad policy mode", 100, []Option{
			WithTopology(topo), WithPolicy(Policy{Mode: "strict"})}},
		{"negative weight", 100, []Option{
			WithTopology(topo), WithPolicy(Policy{Weights: PolicyWeights{SameZone: -1}})}},
		{"missing policy file", 100, []Option{
			WithTopology(topo), WithPolicyFile("/nonexistent/policy.json")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tc.n, tc.opts...); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("err = %v, want ErrInvalidConfig", err)
			}
		})
	}
}

// TestTopologyAndPolicyFiles round-trips the JSON surfaces through the
// facade's file options.
func TestTopologyAndPolicyFiles(t *testing.T) {
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	polPath := filepath.Join(dir, "policy.json")
	if err := os.WriteFile(topoPath, []byte(`{"generator":"zones","zones":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(polPath, []byte(`{"mode":"permissive","weights":{"same_zone":3}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyFromFile(topoPath, 300)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 300 || topo.Zones() != 3 || len(topo.ZoneNodes(0)) != 100 {
		t.Fatalf("loaded topology: len=%d zones=%d", topo.Len(), topo.Zones())
	}
	rep, err := Run(context.Background(), 300,
		WithAlgorithm(AlgoCluster2), WithSeed(1),
		WithTopology(topo), WithPolicyFile(polPath))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("file-configured run did not complete: %+v", rep.Result)
	}
	if _, err := TopologyFromFile(polPath, 300); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("policy file accepted as a topology: %v", err)
	}
}
