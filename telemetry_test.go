package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestTelemetryBitIdentical is the observability purity lock: runs with and
// without WithTelemetry (and a trace writer on top) must produce
// byte-for-byte identical results, at every worker count, on both the closed
// broadcast path and the multi-rumor scenario driver. Telemetry observes the
// engines through the same RoundObserver seam as WithObserver — it can never
// steer an execution.
func TestTelemetryBitIdentical(t *testing.T) {
	workloads := map[string][]Option{
		"closed cluster2": {WithAlgorithm(AlgoCluster2), WithSeed(7)},
		"scenario push-pull": {
			WithAlgorithm(AlgoPushPull), WithSeed(8), WithRounds(60),
			WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0},
				InjectRumor{At: 5, Node: 99, Rumor: 3}),
			WithTimeline(CrashAt{At: 10, Nodes: []int{1, 2, 3}}),
		},
	}
	for name, base := range workloads {
		for _, workers := range []int{1, 2, 8} {
			opts := append(append([]Option(nil), base...), WithWorkers(workers))
			plain, err := Run(context.Background(), 600, opts...)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			instr, err := Run(context.Background(), 600,
				append(opts, WithTelemetry(NewMetricsRegistry()), WithTraceWriter(io.Discard))...)
			if err != nil {
				t.Fatalf("%s workers=%d instrumented: %v", name, workers, err)
			}
			if !reflect.DeepEqual(plain.Result, instr.Result) {
				t.Errorf("%s workers=%d: telemetry changed the result\nplain: %+v\ninstr: %+v",
					name, workers, plain.Result, instr.Result)
			}
			if !reflect.DeepEqual(plain.Rumors, instr.Rumors) {
				t.Errorf("%s workers=%d: telemetry changed the rumor outcomes", name, workers)
			}
		}
	}
}

// sampleValues flattens a snapshot into id -> value, with labels rendered
// in the exposition shape for lookups.
func sampleValues(samples []MetricSample) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		id := s.Name
		if len(s.Labels) > 0 {
			var sb strings.Builder
			sb.WriteString(s.Name)
			sb.WriteString("{")
			// Deterministic because MetricSample labels come from the sorted
			// internal sample; re-render in that order.
			first := true
			for _, k := range []string{"algo", "engine", "le", "node"} {
				if v, ok := s.Labels[k]; ok {
					if !first {
						sb.WriteString(",")
					}
					first = false
					sb.WriteString(k + `="` + v + `"`)
				}
			}
			sb.WriteString("}")
			id = sb.String()
		}
		out[id] = s.Value
	}
	return out
}

// TestTelemetrySnapshotValues checks the collected series against the run's
// own report: rounds and traffic must agree exactly, and the rumor-tracking
// gauge only exists on runs that track rumors.
func TestTelemetrySnapshotValues(t *testing.T) {
	reg := NewMetricsRegistry()
	rep, err := Run(context.Background(), 2000,
		WithAlgorithm(AlgoCluster2), WithSeed(7), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	got := sampleValues(rep.Snapshot())
	if v := got[`repro_rounds_total{algo="cluster2",engine="simulator"}`]; v != float64(rep.Rounds) {
		t.Errorf("repro_rounds_total = %v, want %d", v, rep.Rounds)
	}
	wantMsgs := float64(rep.Messages + rep.ControlMessages)
	if v := got[`repro_messages_total{algo="cluster2",engine="simulator"}`]; v != wantMsgs {
		t.Errorf("repro_messages_total = %v, want %v", v, wantMsgs)
	}
	if v := got[`repro_bits_total{algo="cluster2",engine="simulator"}`]; v != float64(rep.Bits) {
		t.Errorf("repro_bits_total = %v, want %d", v, rep.Bits)
	}
	if v := got[`repro_live_nodes`]; v != float64(rep.Live) {
		t.Errorf("repro_live_nodes = %v, want %d", v, rep.Live)
	}
	if v := got[`repro_round_duration_seconds_count`]; v != float64(rep.Rounds) {
		t.Errorf("duration histogram count = %v, want %d", v, rep.Rounds)
	}
	if _, ok := got[`repro_informed_nodes`]; ok {
		t.Error("closed algorithm exported repro_informed_nodes (tracks no rumor)")
	}

	// The scenario driver binds its rumor tracker, turning the gauge on.
	reg2 := NewMetricsRegistry()
	rep2, err := Run(context.Background(), 500,
		WithAlgorithm(AlgoPushPull), WithSeed(3), WithRounds(60),
		WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0}), WithTelemetry(reg2))
	if err != nil {
		t.Fatal(err)
	}
	got2 := sampleValues(rep2.Snapshot())
	if v, ok := got2[`repro_informed_nodes`]; !ok || v != float64(rep2.Informed) {
		t.Errorf("repro_informed_nodes = %v (present=%v), want %d", v, ok, rep2.Informed)
	}
}

// TestTraceRoundTrip locks the JSONL schema: header first, result last, one
// round record per executed round, and the per-round traffic summing exactly
// to the report's totals — the invariant that makes E-table aggregation from
// traces trustworthy (EXPERIMENTS.md).
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Run(context.Background(), 1500,
		WithAlgorithm(AlgoCluster2), WithSeed(9), WithTraceWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var recs []TraceRecord
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var r TraceRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("undecodable trace line: %v", err)
		}
		recs = append(recs, r)
	}
	if len(recs) < 3 {
		t.Fatalf("trace has only %d records", len(recs))
	}
	head, tail := recs[0], recs[len(recs)-1]
	if head.Type != "run" || head.Engine != "simulator" || head.Algorithm != "cluster2" || head.N != 1500 {
		t.Fatalf("bad run header: %+v", head)
	}
	if tail.Type != "result" || tail.Rounds != rep.Rounds || tail.Messages != rep.Messages ||
		tail.ControlMessages != rep.ControlMessages || !tail.AllInformed {
		t.Fatalf("result record %+v disagrees with report %+v", tail, rep.Result)
	}
	var rounds int
	var msgs, bits int64
	phases := 0
	for _, r := range recs[1 : len(recs)-1] {
		switch r.Type {
		case "round":
			rounds++
			if r.Round != rounds {
				t.Fatalf("round records out of order: got %d at position %d", r.Round, rounds)
			}
			msgs += r.Messages
			bits += r.Bits
			if r.Informed != -1 {
				t.Errorf("closed algorithm round %d reports informed=%d, want -1", r.Round, r.Informed)
			}
		case "phase":
			phases++
		default:
			t.Fatalf("unexpected mid-trace record %+v", r)
		}
	}
	if rounds != rep.Rounds {
		t.Errorf("%d round records for %d executed rounds", rounds, rep.Rounds)
	}
	if want := rep.Messages + rep.ControlMessages; msgs != want {
		t.Errorf("per-round messages sum to %d, want %d", msgs, want)
	}
	if bits != rep.Bits {
		t.Errorf("per-round bits sum to %d, want %d", bits, rep.Bits)
	}
	if phases != len(rep.Phases) {
		t.Errorf("%d phase records for %d phases", phases, len(rep.Phases))
	}
}

// TestTraceWriterErrorSurfaces pins the error contract: a failing writer
// does not abort the run but surfaces from it.
func TestTraceWriterErrorSurfaces(t *testing.T) {
	_, err := Run(context.Background(), 300,
		WithAlgorithm(AlgoCluster2), WithSeed(1), WithTraceWriter(failingWriter{}))
	if err == nil || !strings.Contains(err.Error(), "trace export") {
		t.Fatalf("trace write failure did not surface: %v", err)
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestMetricsHandlerMidRunScrape serves a registry over HTTP and scrapes it
// from inside a run (via the observer, a few rounds in): the exposition must
// parse and already carry moving series — the live-scrape property the
// -metrics-addr endpoint relies on.
func TestMetricsHandlerMidRunScrape(t *testing.T) {
	reg := NewMetricsRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	var midRun string
	scraped := false
	_, err := Run(context.Background(), 2000,
		WithAlgorithm(AlgoCluster2), WithSeed(7), WithTelemetry(reg),
		WithObserver(func(ri RoundInfo) {
			if scraped || ri.Round < 5 {
				return
			}
			scraped = true
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Errorf("mid-run scrape: %v", err)
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
				t.Errorf("content type %q", ct)
			}
			b, _ := io.ReadAll(resp.Body)
			midRun = string(b)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("observer never scraped")
	}
	for _, want := range []string{
		`# TYPE repro_messages_total counter`,
		`repro_messages_total{algo="cluster2",engine="simulator"} `,
		`repro_rounds_total{algo="cluster2",engine="simulator"} `,
	} {
		if !strings.Contains(midRun, want) {
			t.Errorf("mid-run exposition missing %q:\n%s", want, midRun)
		}
	}
	// Every exposition line must be a comment or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSuffix(midRun, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}
