// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The simulation must be exactly reproducible from a single 64-bit seed, and
// it must be possible to derive independent per-node and per-round streams so
// that rounds can be executed in parallel without changing the results. The
// generators here are based on SplitMix64 (for seed derivation and stateless
// hashing) and xoshiro256**-style state advancement (for sequential streams).
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fmix64 is the SplitMix64 output finalizer; it has full avalanche, so a
// one-bit change in z flips each output bit with probability about 1/2.
func fmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes an arbitrary sequence of 64-bit values into a single
// well-distributed 64-bit value. It is used to derive independent seeds for
// sub-streams (for example per-node or per-round streams) from a master seed.
// Every absorbed word passes through a full finalizer so that each input
// word independently avalanches into the result. Mix is defined in terms of
// MixPrefix/Finalize so the incremental API below cannot drift from it.
func Mix(values ...uint64) uint64 {
	return MixPrefix(values...).Finalize(len(values))
}

// Source is a deterministic pseudo-random number generator. The zero value is
// not usable; construct one with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream identified by seed.
func (r *Source) Reseed(seed uint64) {
	state := seed
	for i := range r.s {
		r.s[i] = splitmix64(&state)
	}
	// Avoid the (astronomically unlikely) all-zero state which is a fixed
	// point of xoshiro-style generators.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0;
// callers control n and a non-positive bound is always a programming error.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Unit maps 64 random bits onto a uniformly distributed float64 in [0, 1)
// with 53-bit precision. It is the single definition of the hash→[0,1)
// mapping the stateless decision contracts (per-call loss, transport drop
// and jitter injection) are documented against; the reference oracle
// deliberately re-implements it rather than sharing this code.
func Unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return Unit(r.Uint64())
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1] are
// clamped.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// BoundedUint64 returns a stateless pseudo-random value in [0, n) derived from
// the given key values. It is used where parallel workers need per-item
// randomness that does not depend on evaluation order.
func BoundedUint64(n uint64, keys ...uint64) uint64 {
	return Bounded(Mix(keys...), n)
}

// MixState is a partially absorbed Mix computation. Hot paths that hash many
// values sharing a common prefix (for example the round engine, which hashes
// (seed, tag, round, initiator, attempt) once per node per round) absorb the
// prefix once and reuse the state; the result is bit-identical to calling Mix
// with the full key sequence.
type MixState uint64

// MixPrefix absorbs the given values and returns the intermediate state.
func MixPrefix(values ...uint64) MixState {
	state := uint64(0x243f6a8885a308d3) // pi fraction, arbitrary non-zero constant
	for _, v := range values {
		state = fmix64(state ^ fmix64(v))
	}
	return MixState(state)
}

// Absorb returns the state after absorbing one more value.
func (s MixState) Absorb(v uint64) MixState {
	return MixState(fmix64(uint64(s) ^ fmix64(v)))
}

// Finalize completes the hash. totalWords is the total number of absorbed
// words (prefix plus Absorb calls), matching Mix's length suffix.
func (s MixState) Finalize(totalWords int) uint64 {
	return fmix64(uint64(s) ^ uint64(totalWords))
}

// Bounded maps a finalized hash uniformly onto [0, n).
func Bounded(hash, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	hi, _ := bits.Mul64(hash, n)
	return hi
}

// NormalApprox returns an approximately standard-normal sample using the sum
// of twelve uniforms. It is only used for non-critical jitter in workloads.
func (r *Source) NormalApprox() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += r.Float64()
	}
	return sum - 6
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of trials until first success, >= 1). Returns
// math.MaxInt32 for degenerate p.
func (r *Source) Geometric(p float64) int {
	if p <= 0 {
		return math.MaxInt32
	}
	if p >= 1 {
		return 1
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}
