package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const buckets = 10
	const samples = 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	want := samples / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d has %d samples, want about %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const p = 0.3
	const samples = 200000
	hits := 0
	for i := 0; i < samples; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / samples
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Fatal("Mix should be order sensitive")
	}
}

func TestBoundedUint64ImageVariesAcrossKeys(t *testing.T) {
	// Regression test: with a weak mixer the image of the map
	// initiator -> BoundedUint64(n, seed, round, initiator) was almost the same
	// set for every round, which froze the set of nodes reachable by "random"
	// contacts in the simulator. The union over several rounds must cover
	// nearly the whole range.
	const n = 5000
	union := make(map[uint64]bool, n)
	for round := uint64(1); round <= 10; round++ {
		for init := uint64(0); init < n; init++ {
			union[BoundedUint64(n, 1, 0xc0ffee, round, init, 0)] = true
		}
	}
	if len(union) < n*95/100 {
		t.Fatalf("10 rounds of n draws cover only %d of %d values", len(union), n)
	}
}

func TestMixSingleBitAvalanche(t *testing.T) {
	base := Mix(1, 2, 3)
	diffBits := 0
	v := base ^ Mix(1, 2, 2)
	for ; v != 0; v &= v - 1 {
		diffBits++
	}
	if diffBits < 16 {
		t.Fatalf("flipping one input bit changed only %d output bits", diffBits)
	}
}

func TestBoundedUint64Property(t *testing.T) {
	f := func(n uint64, a, b uint64) bool {
		n = n%100000 + 1
		v := BoundedUint64(n, a, b)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedUint64Zero(t *testing.T) {
	if BoundedUint64(0, 1, 2) != 0 {
		t.Fatal("BoundedUint64(0, ...) should be 0")
	}
}

func TestGeometricBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		k := r.Geometric(0.5)
		if k < 1 {
			t.Fatalf("Geometric returned %d < 1", k)
		}
	}
	if r.Geometric(1) != 1 {
		t.Fatal("Geometric(1) should be 1")
	}
	if r.Geometric(0) != math.MaxInt32 {
		t.Fatal("Geometric(0) should be MaxInt32")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p = 0.25
	const samples = 50000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / samples
	if math.Abs(mean-1/p) > 0.2 {
		t.Fatalf("Geometric(%v) mean %v, want about %v", p, mean, 1/p)
	}
}

func TestNormalApproxMoments(t *testing.T) {
	r := New(31)
	const samples = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		v := r.NormalApprox()
		sum += v
		sumSq += v * v
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Every bit position should be set roughly half the time.
	r := New(41)
	const samples = 20000
	counts := make([]int, 64)
	for i := 0; i < samples; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if math.Abs(float64(c)-samples/2) > 0.03*samples {
			t.Fatalf("bit %d set %d times out of %d", b, c, samples)
		}
	}
}
