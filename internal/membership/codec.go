package membership

import (
	"encoding/binary"
	"fmt"
)

// The membership wire codec. One datagram is one frame:
//
//	[type:1][msgid:8 LE][from id:8 LE][from addr len:uvarint][from addr]…
//
// followed by the type-specific body:
//
//	PING, PONG    — nothing (liveness only)
//	FIND_NODE     — [target id:8 LE]
//	FOUND_NODES   — [target id:8 LE][count:uvarint][contact…]
//
// where contact is [id:8 LE][addr len:uvarint][addr]. Every frame carries the
// sender's full Contact (ID + announce address), so any received frame —
// request or response — is routing-table evidence; MsgID correlates a
// response with the inflight request that caused it (requests draw fresh IDs,
// responses echo them).
//
// Type bytes live in 0x81..0x84: disjoint from the gossip codec's frame types
// (internal/live frameCall=1, frameResp=2), so membership RPCs and gossip
// frames can share one bound socket and be demultiplexed on the first byte
// (IsMembershipFrame).
//
// Decoding is strict — truncated frames, oversized addresses, oversized
// contact lists and trailing bytes are all errors, never best-effort
// acceptance (locked by FuzzMembershipCodec).
const (
	TypePing       byte = 0x81
	TypePong       byte = 0x82
	TypeFindNode   byte = 0x83
	TypeFoundNodes byte = 0x84
)

// MaxContacts bounds a FOUND_NODES contact list: responders never return more
// than k contacts, and a decoder must not allocate on behalf of a hostile
// length prefix.
const MaxContacts = 64

// Frame is one decoded membership frame. Target and Contacts are meaningful
// for the find-node pair only.
type Frame struct {
	Type     byte
	MsgID    uint64
	From     Contact
	Target   ID
	Contacts []Contact
}

// IsMembershipFrame reports whether data is a membership frame by type byte —
// the demultiplexer for transports that share a socket between membership
// RPCs and gossip traffic.
func IsMembershipFrame(data []byte) bool {
	return len(data) > 0 && data[0] >= TypePing && data[0] <= TypeFoundNodes
}

// appendContact encodes one contact.
func appendContact(dst []byte, c Contact) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.ID))
	dst = binary.AppendUvarint(dst, uint64(len(c.Addr)))
	return append(dst, c.Addr...)
}

// AppendFrame encodes fr. The caller is responsible for fr being well-formed
// (valid contacts, ≤ MaxContacts); Encode-side violations are programming
// errors surfaced by the decoder's strictness in tests.
func AppendFrame(dst []byte, fr Frame) []byte {
	dst = append(dst, fr.Type)
	dst = binary.LittleEndian.AppendUint64(dst, fr.MsgID)
	dst = appendContact(dst, fr.From)
	switch fr.Type {
	case TypeFindNode:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(fr.Target))
	case TypeFoundNodes:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(fr.Target))
		dst = binary.AppendUvarint(dst, uint64(len(fr.Contacts)))
		for _, c := range fr.Contacts {
			dst = appendContact(dst, c)
		}
	}
	return dst
}

// decodeContact decodes one contact, returning the bytes consumed.
func decodeContact(data []byte) (Contact, int, error) {
	var c Contact
	if len(data) < 8 {
		return c, 0, fmt.Errorf("membership: truncated contact id")
	}
	c.ID = ID(binary.LittleEndian.Uint64(data))
	rest := data[8:]
	alen, k := binary.Uvarint(rest)
	if k <= 0 {
		return c, 0, fmt.Errorf("membership: bad contact address length")
	}
	if alen == 0 || alen > maxAddrLen {
		return c, 0, fmt.Errorf("membership: contact address length %d out of range [1, %d]", alen, maxAddrLen)
	}
	rest = rest[k:]
	if uint64(len(rest)) < alen {
		return c, 0, fmt.Errorf("membership: truncated contact address (%d of %d bytes)", len(rest), alen)
	}
	c.Addr = string(rest[:alen])
	return c, 8 + k + int(alen), nil
}

// DecodeFrame decodes one membership frame, rejecting anything malformed:
// unknown types, truncation anywhere, out-of-range lengths, trailing bytes.
func DecodeFrame(data []byte) (Frame, error) {
	var fr Frame
	if len(data) < 1 {
		return fr, fmt.Errorf("membership: empty frame")
	}
	fr.Type = data[0]
	if !IsMembershipFrame(data) {
		return fr, fmt.Errorf("membership: unknown frame type %#02x", fr.Type)
	}
	rest := data[1:]
	if len(rest) < 8 {
		return fr, fmt.Errorf("membership: truncated msgid")
	}
	fr.MsgID = binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	from, k, err := decodeContact(rest)
	if err != nil {
		return fr, err
	}
	fr.From = from
	rest = rest[k:]
	switch fr.Type {
	case TypePing, TypePong:
		// body-free
	case TypeFindNode, TypeFoundNodes:
		if len(rest) < 8 {
			return fr, fmt.Errorf("membership: truncated target id")
		}
		fr.Target = ID(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		if fr.Type == TypeFoundNodes {
			count, k := binary.Uvarint(rest)
			if k <= 0 {
				return fr, fmt.Errorf("membership: bad contact count")
			}
			if count > MaxContacts {
				return fr, fmt.Errorf("membership: contact count %d exceeds %d", count, MaxContacts)
			}
			rest = rest[k:]
			if count > 0 {
				fr.Contacts = make([]Contact, 0, count)
				for i := uint64(0); i < count; i++ {
					c, k, err := decodeContact(rest)
					if err != nil {
						return fr, fmt.Errorf("membership: contact %d: %w", i, err)
					}
					fr.Contacts = append(fr.Contacts, c)
					rest = rest[k:]
				}
			}
		}
	}
	if len(rest) != 0 {
		return fr, fmt.Errorf("membership: %d trailing bytes", len(rest))
	}
	return fr, nil
}
