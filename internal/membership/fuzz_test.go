package membership

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzMembershipCodec: the robustness lock on the membership wire codec.
// Arbitrary bytes must either decode into a frame whose re-encoding decodes
// back to the same frame (round-trip stability — in particular the MsgID must
// survive exactly, it is the inflight correlation key), or be rejected with
// an error; truncations of anything decodable and decodable frames with
// trailing bytes must always be rejected. No input may panic or make the
// decoder allocate on behalf of a hostile length prefix.
//
//	go test ./internal/membership -run=NONE -fuzz=FuzzMembershipCodec -fuzztime=30s
func FuzzMembershipCodec(f *testing.F) {
	for _, fr := range []Frame{
		{Type: TypePing, MsgID: 7, From: Contact{ID: 1, Addr: "127.0.0.1:4001"}},
		{Type: TypePong, MsgID: 7, From: Contact{ID: 2, Addr: "seed:4001"}},
		{Type: TypeFindNode, MsgID: 8, From: Contact{ID: 3, Addr: "node2:4001"}, Target: 0xfedc_ba98_7654_3210},
		{Type: TypeFoundNodes, MsgID: 9, From: Contact{ID: 4, Addr: "n:1"}, Target: 5, Contacts: []Contact{
			{ID: 6, Addr: "10.0.0.6:4321"}, {ID: 7, Addr: "node7.gossip.local:4001"},
		}},
	} {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{TypeFoundNodes, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if !IsMembershipFrame(data) {
			t.Fatalf("decoded a frame IsMembershipFrame rejects: %v", data)
		}
		// Round-trip: re-encode and decode again; the frames must agree and
		// the encoding must be canonical enough to decode to itself.
		wire := AppendFrame(nil, fr)
		again, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v\nframe: %+v", err, fr)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("round-trip drift:\n first %+v\nsecond %+v", fr, again)
		}
		if again.MsgID != fr.MsgID {
			t.Fatalf("MsgID drift: %d != %d", again.MsgID, fr.MsgID)
		}
		// A canonical encoding is unique: decoding accepted `data`, so data
		// re-encodes byte-identically unless it used a non-minimal varint.
		if len(wire) > len(data) {
			t.Fatalf("re-encoding grew the frame: %d > %d bytes", len(wire), len(data))
		}
		if bytes.Equal(wire, data) {
			// Strict canonical form: every truncation must fail, and any
			// appended byte must fail (trailing-bytes rule).
			for cut := range data {
				if _, err := DecodeFrame(data[:cut]); err == nil {
					t.Fatalf("truncation to %d/%d bytes decoded cleanly", cut, len(data))
				}
			}
			if _, err := DecodeFrame(append(append([]byte{}, data...), 0)); err == nil {
				t.Fatal("frame with a trailing byte decoded cleanly")
			}
		}
	})
}
