package membership

import (
	"reflect"
	"strings"
	"testing"
)

func sampleFrames() []Frame {
	from := Contact{ID: 0xdead_beef_0000_0001, Addr: "node1:4001"}
	return []Frame{
		{Type: TypePing, MsgID: 1, From: from},
		{Type: TypePong, MsgID: 0xffff_ffff_ffff_ffff, From: from},
		{Type: TypeFindNode, MsgID: 42, From: from, Target: 0x0102_0304_0506_0708},
		{Type: TypeFoundNodes, MsgID: 43, From: from, Target: 7, Contacts: nil},
		{Type: TypeFoundNodes, MsgID: 44, From: from, Target: 7, Contacts: []Contact{
			{ID: 1, Addr: "10.0.0.1:4000"},
			{ID: 2, Addr: "a-very-long-hostname.internal.example.com:65535"},
		}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, fr := range sampleFrames() {
		wire := AppendFrame(nil, fr)
		if !IsMembershipFrame(wire) {
			t.Fatalf("%#02x frame not recognized as membership", fr.Type)
		}
		got, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("decode %#02x: %v", fr.Type, err)
		}
		want := fr
		if want.Contacts != nil && len(want.Contacts) == 0 {
			want.Contacts = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		if got.MsgID != fr.MsgID {
			t.Fatalf("MsgID did not round-trip: %d != %d", got.MsgID, fr.MsgID)
		}
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	for _, fr := range sampleFrames() {
		wire := AppendFrame(nil, fr)
		for cut := 0; cut < len(wire); cut++ {
			if _, err := DecodeFrame(wire[:cut]); err == nil {
				t.Fatalf("%#02x frame truncated to %d/%d bytes decoded cleanly", fr.Type, cut, len(wire))
			}
		}
	}
}

func TestCodecRejectsTrailingBytes(t *testing.T) {
	for _, fr := range sampleFrames() {
		wire := append(AppendFrame(nil, fr), 0x00)
		if _, err := DecodeFrame(wire); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("%#02x frame with a trailing byte: err = %v, want trailing-bytes error", fr.Type, err)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0x7f, 1, 2, 3},
		{0x85},     // one past the membership range
		{TypePing}, // no msgid
		AppendFrame(nil, Frame{Type: TypeFoundNodes, MsgID: 1, From: Contact{ID: 1, Addr: "x:1"}, Contacts: make([]Contact, 0)})[:12],
	}
	for i, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Fatalf("case %d decoded cleanly: %v", i, data)
		}
	}
	if IsMembershipFrame([]byte{0x01, 0x02}) {
		t.Fatal("gossip frame type misclassified as membership")
	}
}

// TestCodecBoundsHostileLengths: a forged contact count or address length
// must be rejected before any allocation on its behalf.
func TestCodecBoundsHostileLengths(t *testing.T) {
	base := Frame{Type: TypeFoundNodes, MsgID: 9, From: Contact{ID: 3, Addr: "n:1"}, Target: 4}
	wire := AppendFrame(nil, base)
	// Patch the contact-count varint (last byte of a contact-free frame) to a
	// hostile value.
	hostile := append(append([]byte{}, wire[:len(wire)-1]...), 0xff, 0xff, 0x7f)
	if _, err := DecodeFrame(hostile); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("hostile contact count: err = %v, want bound error", err)
	}
	long := Contact{ID: 5, Addr: strings.Repeat("a", maxAddrLen+1) + ":1"}
	wire = AppendFrame(nil, Frame{Type: TypePing, MsgID: 1, From: long})
	if _, err := DecodeFrame(wire); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized address: err = %v, want range error", err)
	}
}
