package membership

import (
	"sort"
	"sync"
)

// DefaultK is the k-bucket capacity (and the lookup result width): how many
// contacts each of the 64 distance buckets retains.
const DefaultK = 20

// Table is the k-bucket routing table: 64 buckets indexed by the position of
// the highest bit in which a contact's ID differs from self, each holding up
// to k contacts in least-recently-seen order plus a bounded replacement cache
// of recently seen overflow contacts.
//
// The eviction policy is Kademlia's: a full bucket never drops its
// least-recently-seen entry eagerly — Update reports it as a probe candidate,
// and only an observed liveness failure (Fail, called by the node when the
// probe times out) evicts it, promoting the freshest replacement-cache entry
// in its place. Long-lived contacts are the most likely to stay alive, so the
// table is biased toward them by construction.
//
// Every method is deterministic: the table a node ends up with is a pure
// function of the sequence of Update/Fail calls (locked by
// TestTableDeterministicJoinOrder). Table is safe for concurrent use; no
// method blocks on anything but the table's own mutex, and none performs
// network I/O ("no network under locks" — probing is the caller's job).
type Table struct {
	self ID
	k    int

	mu      sync.Mutex
	buckets [64]bucket
	size    int
}

// bucket holds one distance range's contacts. entries[0] is the
// least-recently-seen contact, the tail the most recently seen; cache is the
// replacement overflow in the same order, capped at k.
type bucket struct {
	entries []Contact
	cache   []Contact
}

// NewTable returns an empty routing table for the node with the given ID.
// k <= 0 takes DefaultK.
func NewTable(self ID, k int) *Table {
	if k <= 0 {
		k = DefaultK
	}
	return &Table{self: self, k: k}
}

// Self returns the table owner's ID.
func (t *Table) Self() ID { return t.self }

// K returns the bucket capacity.
func (t *Table) K() int { return t.k }

// Update records evidence that c is alive (any frame received from it, any
// response to an RPC). A known contact is refreshed: moved to the
// most-recently-seen end, its announce address updated in place. An unknown
// contact joins its bucket when there is room; when the bucket is full the
// contact enters the replacement cache instead and Update returns the
// bucket's least-recently-seen entry with probe=true — the caller should ping
// that entry and call Fail on it if the ping times out. Self and invalid
// contacts are ignored.
func (t *Table) Update(c Contact) (stale Contact, probe bool) {
	if c.ID == t.self || c.Validate() != nil {
		return Contact{}, false
	}
	bi := t.self.BucketIndex(c.ID)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[bi]

	if i := indexOf(b.entries, c.ID); i >= 0 {
		// Known: refresh recency and address.
		e := b.entries[i]
		e.Addr = c.Addr
		b.entries = append(append(b.entries[:i], b.entries[i+1:]...), e)
		return Contact{}, false
	}
	if len(b.entries) < t.k {
		b.entries = append(b.entries, c)
		t.size++
		return Contact{}, false
	}
	// Full bucket: stash the newcomer in the replacement cache (refreshing
	// recency if it is already there) and nominate the LRU entry for a probe.
	if i := indexOf(b.cache, c.ID); i >= 0 {
		b.cache = append(b.cache[:i], b.cache[i+1:]...)
	} else if len(b.cache) >= t.k {
		b.cache = b.cache[1:] // forget the oldest overflow contact
	}
	b.cache = append(b.cache, c)
	return b.entries[0], true
}

// Fail records that id did not answer a liveness probe: the entry is evicted
// and the freshest replacement-cache contact (if any) is promoted into the
// bucket. A cached-but-not-promoted id is dropped from the cache. Returns
// true when a bucket entry was actually evicted.
func (t *Table) Fail(id ID) bool {
	if id == t.self {
		return false
	}
	bi := t.self.BucketIndex(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[bi]
	if i := indexOf(b.entries, id); i >= 0 {
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
		t.size--
		if n := len(b.cache); n > 0 {
			b.entries = append(b.entries, b.cache[n-1])
			b.cache = b.cache[:n-1]
			t.size++
		}
		return true
	}
	if i := indexOf(b.cache, id); i >= 0 {
		b.cache = append(b.cache[:i], b.cache[i+1:]...)
	}
	return false
}

// AddrOf returns the announce address stored for id — the exact-match hit the
// gossip path resolves peers through.
func (t *Table) AddrOf(id ID) (string, bool) {
	if id == t.self {
		return "", false
	}
	bi := t.self.BucketIndex(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[bi]
	if i := indexOf(b.entries, id); i >= 0 {
		return b.entries[i].Addr, true
	}
	return "", false
}

// Closest returns up to count contacts sorted by ascending XOR distance to
// target (ties cannot occur: IDs are unique within the table). It is the
// answer to a FIND_NODE and the seed of an iterative lookup.
func (t *Table) Closest(target ID, count int) []Contact {
	if count <= 0 {
		count = t.k
	}
	t.mu.Lock()
	out := make([]Contact, 0, min(count, t.size))
	for bi := range t.buckets {
		out = append(out, t.buckets[bi].entries...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].ID.Distance(target) < out[j].ID.Distance(target)
	})
	if len(out) > count {
		out = out[:count]
	}
	return out
}

// Len returns the number of contacts held in buckets (the replacement caches
// are not counted; they are candidates, not routable state).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Occupancy reports how many of the 64 buckets hold at least one contact —
// the spread of the node's view across the ID space (exported as the
// repro_membership_buckets_occupied gauge).
func (t *Table) Occupancy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	occ := 0
	for bi := range t.buckets {
		if len(t.buckets[bi].entries) > 0 {
			occ++
		}
	}
	return occ
}

// BucketLen returns bucket bi's entry count (tests and diagnostics).
func (t *Table) BucketLen(bi int) int {
	if bi < 0 || bi >= 64 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets[bi].entries)
}

// CacheLen returns bucket bi's replacement-cache depth (tests).
func (t *Table) CacheLen(bi int) int {
	if bi < 0 || bi >= 64 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets[bi].cache)
}

// Contacts returns a snapshot of every bucket entry, bucket-major and LRU
// order within each bucket (diagnostics and determinism tests).
func (t *Table) Contacts() []Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Contact, 0, t.size)
	for bi := range t.buckets {
		out = append(out, t.buckets[bi].entries...)
	}
	return out
}

// indexOf finds id in a contact slice.
func indexOf(cs []Contact, id ID) int {
	for i := range cs {
		if cs[i].ID == id {
			return i
		}
	}
	return -1
}
