package membership

import (
	"sort"
	"sync"
)

// Lookup runs the iterative node lookup toward target: starting from the k
// table contacts closest to target, it repeatedly queries the alpha closest
// not-yet-queried candidates in parallel with FIND_NODE, folds every returned
// contact into the candidate set, and stops when the k closest known
// candidates have all been queried (or failed). Responders and every learned
// contact flow into the routing table as a side effect — one lookup fills
// buckets along the whole path toward target, which is why the bootstrap
// self-lookup is a warmup for the table, not just for one address.
//
// The k closest contacts found are returned, closest first; an exact match
// for target, when discovered, is necessarily at the front. Contacts that
// time out are reported to the table (Table.Fail) so stale entries do not
// survive on the lookup path either.
func (nd *Node) Lookup(target ID) []Contact {
	if nd.tel != nil {
		nd.tel.lookups.Add(1)
	}
	k := nd.table.K()

	type candidate struct {
		c       Contact
		queried bool
		failed  bool
	}
	seen := make(map[ID]*candidate)
	var order []*candidate // maintained sorted by distance to target

	insert := func(c Contact) {
		if c.ID == nd.self.ID || c.Validate() != nil {
			return
		}
		if prev, ok := seen[c.ID]; ok {
			prev.c.Addr = c.Addr // freshest announce address wins
			return
		}
		cand := &candidate{c: c}
		seen[c.ID] = cand
		i := sort.Search(len(order), func(i int) bool {
			return order[i].c.ID.Distance(target) > c.ID.Distance(target)
		})
		order = append(order, nil)
		copy(order[i+1:], order[i:])
		order[i] = cand
	}
	for _, c := range nd.table.Closest(target, k) {
		insert(c)
	}

	for {
		// The next wave: up to alpha unqueried candidates among the k closest
		// still-standing ones.
		var wave []*candidate
		alive := 0
		for _, cand := range order {
			if cand.failed {
				continue
			}
			alive++
			if !cand.queried && len(wave) < nd.alpha {
				cand.queried = true
				wave = append(wave, cand)
			}
			if alive >= k {
				break
			}
		}
		if len(wave) == 0 {
			break
		}

		results := make([][]Contact, len(wave))
		var wg sync.WaitGroup
		for wi, cand := range wave {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cs, err := nd.FindNode(cand.c, target)
				if err != nil {
					cand.failed = true // written before wg.Done; read after Wait
					if nd.table.Fail(cand.c.ID) {
						nd.logf("membership: evicted %s after lookup timeout", cand.c)
						nd.updateTableGauges()
					}
					return
				}
				results[wi] = cs
			}()
		}
		wg.Wait()
		for _, cs := range results {
			for _, c := range cs {
				insert(c)
				// Learned contacts flow into the routing table too — the
				// gossip path resolves peers through the table, so discovery
				// must land where Resolve looks. A dead or forged address
				// cannot wedge a bucket: overflow probes (observe) and lookup
				// timeouts (Fail above) evict it on first contact.
				nd.observe(c)
			}
		}
	}

	out := make([]Contact, 0, k)
	for _, cand := range order {
		if cand.failed {
			continue
		}
		out = append(out, cand.c)
		if len(out) == k {
			break
		}
	}
	return out
}

// LookupID looks up one exact ID and returns its contact when the lookup
// discovered it.
func (nd *Node) LookupID(target ID) (Contact, bool) {
	for _, c := range nd.Lookup(target) {
		if c.ID == target {
			return c, true
		}
	}
	return Contact{}, false
}
