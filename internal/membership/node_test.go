package membership

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fastConfig returns a config tuned for loopback tests: short RPC timeouts so
// negative-path tests finish quickly.
func fastConfig(self ID) Config {
	return Config{
		Self:       self,
		Bind:       "127.0.0.1:0",
		RPCTimeout: 100 * time.Millisecond,
		Retries:    -1, // one attempt
	}
}

func mustNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	nd, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%016x): %v", uint64(cfg.Self), err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

func TestNodePingRoundTrip(t *testing.T) {
	a := mustNode(t, fastConfig(1))
	b := mustNode(t, fastConfig(2))

	got, err := a.Ping(b.Self().Addr)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got != b.Self() {
		t.Fatalf("ping returned %v, want %v", got, b.Self())
	}
	// Both sides learned the other: a from the pong, b from the ping.
	if addr, ok := a.Table().AddrOf(b.Self().ID); !ok || addr != b.Self().Addr {
		t.Fatalf("a's table after ping: AddrOf(b) = %q, %v", addr, ok)
	}
	if addr, ok := b.Table().AddrOf(a.Self().ID); !ok || addr != a.Self().Addr {
		t.Fatalf("b's table after ping: AddrOf(a) = %q, %v", addr, ok)
	}
}

func TestNodeFindNodeReturnsClosest(t *testing.T) {
	seed := mustNode(t, fastConfig(0x1000))
	var peers []*Node
	for i := uint64(1); i <= 6; i++ {
		p := mustNode(t, fastConfig(ID(0x2000+i)))
		if _, err := p.Ping(seed.Self().Addr); err != nil {
			t.Fatalf("peer %d ping seed: %v", i, err)
		}
		peers = append(peers, p)
	}
	asker := mustNode(t, fastConfig(0x3000))
	target := peers[3].Self().ID
	got, err := asker.FindNode(seed.Self(), target)
	if err != nil {
		t.Fatalf("find_node: %v", err)
	}
	if len(got) == 0 || got[0].ID != target {
		t.Fatalf("FindNode closest = %v, want %016x first", got, uint64(target))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID.Distance(target) >= got[i].ID.Distance(target) {
			t.Fatalf("FindNode result not sorted by distance at %d", i)
		}
	}
}

// TestNodeBootstrapConvergence: N nodes join through one seed knowing nothing
// but the seed's address; after bootstrap every node resolves every other
// through its own routing table (N < k, so full knowledge is the fixed point).
func TestNodeBootstrapConvergence(t *testing.T) {
	const n = 8
	nodes := make([]*Node, n)
	nodes[0] = mustNode(t, fastConfig(ID(0x9e37_79b9_7f4a_7c15))) // seed
	seedAddr := nodes[0].Self().Addr
	for i := 1; i < n; i++ {
		// Spread IDs across the space so the join exercises many buckets.
		nodes[i] = mustNode(t, fastConfig(DeriveID(uint64(i))))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := nodes[i].Bootstrap(ctx, seedAddr); err != nil {
			cancel()
			t.Fatalf("node %d bootstrap: %v", i, err)
		}
		cancel()
	}
	// Late joiners know everyone who joined before them via the seed's table;
	// early joiners may need a lookup to find late ones. Poll with lookups
	// until the directory is complete everywhere.
	deadline := time.Now().Add(5 * time.Second)
	for i, nd := range nodes {
		for j, other := range nodes {
			if i == j {
				continue
			}
			for {
				if addr, ok := nd.Table().AddrOf(other.Self().ID); ok {
					if addr != other.Self().Addr {
						t.Fatalf("node %d resolves node %d to %q, want %q", i, j, addr, other.Self().Addr)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("node %d never discovered node %d", i, j)
				}
				nd.Lookup(other.Self().ID)
			}
		}
	}
	// Resolve (the gossip path) agrees with the table.
	want := nodes[3].BindAddr().AddrPort()
	udp, ok := nodes[5].Resolve(nodes[3].Self().ID)
	if !ok {
		t.Fatal("Resolve missed a contact the table holds")
	}
	if udp.AddrPort().Port() != want.Port() {
		t.Fatalf("Resolve port %d, want %d", udp.AddrPort().Port(), want.Port())
	}
}

// TestNodeRPCTimeout: a silent endpoint exhausts the attempts, the RPC returns
// ErrTimeout, and every unanswered attempt lands in the timeout counter.
func TestNodeRPCTimeout(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := fastConfig(7)
	cfg.RPCTimeout = 30 * time.Millisecond
	cfg.Retries = 1
	cfg.Telemetry = reg
	nd := mustNode(t, cfg)

	// A bound-then-closed socket's port is silent but routable.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.LocalAddr().String()
	dead.Close()

	start := time.Now()
	_, err = nd.Ping(deadAddr)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping to dead endpoint: %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 2*cfg.RPCTimeout {
		t.Fatalf("RPC gave up after %v, want at least %v (2 attempts)", elapsed, 2*cfg.RPCTimeout)
	}
	if got := reg.Counter("repro_membership_rpc_timeouts_total").Value(); got != 2 {
		t.Fatalf("repro_membership_rpc_timeouts_total = %d, want 2", got)
	}
}

// TestNodeStaleEvictionOnPingTimeout: the node-level version of the table's
// LRU contract. A dead contact occupies the only bucket slot; when a live
// newcomer from the same bucket announces itself, the node probes the stale
// entry, the probe times out, and the table evicts it and promotes the
// newcomer — without the caller doing anything.
func TestNodeStaleEvictionOnPingTimeout(t *testing.T) {
	self := ID(0x4000_0000_0000_0000)
	cfg := fastConfig(self)
	cfg.K = 1
	cfg.RPCTimeout = 50 * time.Millisecond
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	a := mustNode(t, cfg)

	// Two peers in the same bucket of a (bucket 40), so the second overflows it.
	deadID := self ^ (1 << 40) ^ 1
	liveID := self ^ (1 << 40) ^ 2
	deadPeer, err := New(fastConfig(deadID))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deadPeer.Ping(a.Self().Addr); err != nil {
		t.Fatalf("dead peer introduction: %v", err)
	}
	deadPeer.Close() // now a's only bucket entry is a corpse

	live := mustNode(t, fastConfig(liveID))
	if _, err := live.Ping(a.Self().Addr); err != nil {
		t.Fatalf("live peer introduction: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		_, deadThere := a.Table().AddrOf(deadID)
		liveAddr, liveThere := a.Table().AddrOf(liveID)
		if !deadThere && liveThere {
			if liveAddr != live.Self().Addr {
				t.Fatalf("promoted contact has addr %q, want %q", liveAddr, live.Self().Addr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale entry never evicted: dead in table=%v, live in table=%v", deadThere, liveThere)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Gauge("repro_membership_table_contacts").Value(); got < 1 {
		t.Fatalf("repro_membership_table_contacts = %d, want >= 1", got)
	}
}

// TestNodeLookupFindsUnknownPeer: a node that only knows the seed locates an
// arbitrary peer by ID through iterative FIND_NODE.
func TestNodeLookupFindsUnknownPeer(t *testing.T) {
	seed := mustNode(t, fastConfig(0x0101))
	var hidden *Node
	for i := uint64(0); i < 10; i++ {
		p := mustNode(t, fastConfig(DeriveID(100+i)))
		if _, err := p.Ping(seed.Self().Addr); err != nil {
			t.Fatalf("peer %d ping: %v", i, err)
		}
		if i == 7 {
			hidden = p
		}
	}
	joiner := mustNode(t, fastConfig(0x0202))
	if _, err := joiner.Ping(seed.Self().Addr); err != nil {
		t.Fatalf("joiner ping: %v", err)
	}
	c, ok := joiner.LookupID(hidden.Self().ID)
	if !ok {
		t.Fatalf("lookup missed %016x", uint64(hidden.Self().ID))
	}
	if c.Addr != hidden.Self().Addr {
		t.Fatalf("lookup resolved %q, want %q", c.Addr, hidden.Self().Addr)
	}
	// The lookup's side effect: the joiner can now Resolve the peer directly.
	if _, ok := joiner.Resolve(hidden.Self().ID); !ok {
		t.Fatal("lookup result did not land in the routing table")
	}
}

// TestNodeGossipPassthrough: non-membership datagrams on the shared socket
// reach OnGossip intact; membership frames do not.
func TestNodeGossipPassthrough(t *testing.T) {
	got := make(chan []byte, 4)
	cfg := fastConfig(11)
	cfg.OnGossip = func(frame []byte) { got <- frame }
	a := mustNode(t, cfg)
	b := mustNode(t, fastConfig(12))

	payload := []byte{0x01, 0xaa, 0xbb, 0xcc} // gossip-typed frame
	udp, err := net.ResolveUDPAddr("udp", a.Self().Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SendRaw(udp, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Ping(a.Self().Addr); err != nil { // membership traffic interleaved
		t.Fatal(err)
	}
	select {
	case frame := <-got:
		if fmt.Sprintf("%x", frame) != fmt.Sprintf("%x", payload) {
			t.Fatalf("OnGossip got % x, want % x", frame, payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("gossip frame never delivered")
	}
	select {
	case frame := <-got:
		t.Fatalf("membership frame leaked to OnGossip: % x", frame)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNodeClosedRPCErrors(t *testing.T) {
	a := mustNode(t, fastConfig(21))
	b := mustNode(t, fastConfig(22))
	addr := b.Self().Addr
	a.Close()
	if _, err := a.Ping(addr); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping on closed node: %v, want ErrClosed", err)
	}
}
