package membership

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// maxDatagram bounds one membership or relayed gossip datagram; it matches
// the live transport's frame bound so the two can share a socket.
const maxDatagram = 60 * 1024

// Config configures one membership endpoint.
type Config struct {
	// Self is this node's membership ID (required, derived from the shared
	// NodeID space via DeriveID).
	Self ID
	// Bind is the UDP listen address ("host:port"; default "127.0.0.1:0").
	// The port may be 0 for an ephemeral bind.
	Bind string
	// Announce is the address peers should reach this node at. It travels in
	// every frame's From contact, which is what makes the bind/announce split
	// matter: in a container or behind NAT the bound address ("0.0.0.0:4001")
	// is not reachable, the announced one ("node3:4001") is. Empty derives an
	// announce address from the bound socket (loopback when the bind host is
	// unspecified) — right for single-host runs only.
	Announce string
	// K is the bucket capacity and lookup width (default DefaultK).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// RPCTimeout is the per-attempt response wait (default 500ms); Retries is
	// the number of re-sends after the first attempt (default 2).
	RPCTimeout time.Duration
	Retries    int
	// Telemetry, when non-nil, receives the membership series:
	// repro_membership_lookups_total, repro_membership_rpc_timeouts_total,
	// repro_membership_table_contacts and repro_membership_buckets_occupied.
	Telemetry *telemetry.Registry
	// OnGossip, when non-nil, receives every non-membership datagram the
	// socket reads (the gossip frames of a shared-socket deployment). The
	// slice is the receiver's to keep. Nil drops them.
	OnGossip func(frame []byte)
	// Logf, when non-nil, receives debug lines (bootstrap progress, probe
	// evictions).
	Logf func(format string, args ...any)
}

// ErrTimeout is returned when an RPC's every attempt went unanswered.
var ErrTimeout = errors.New("membership: rpc timed out")

// ErrClosed is returned by RPCs on a closed node.
var ErrClosed = errors.New("membership: node closed")

// Node is one membership endpoint: a bound UDP socket, its routing table, the
// read loop demultiplexing membership RPCs from gossip frames, and the
// MsgID-correlated inflight map RPC responses are delivered through.
type Node struct {
	cfg     Config
	self    Contact
	table   *Table
	conn    *net.UDPConn
	alpha   int
	timeout time.Duration
	retries int

	msgID atomic.Uint64

	mu       sync.Mutex
	inflight map[uint64]chan Frame
	probing  map[ID]bool // stale-entry probes in flight
	looking  map[ID]bool // async lookups in flight
	resolved map[ID]resolvedAddr
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup

	tel *nodeTelemetry
}

// resolvedAddr caches one contact's parsed announce address; addr is the
// string it was resolved from, so an announce change invalidates the cache.
type resolvedAddr struct {
	addr string
	udp  *net.UDPAddr
}

// nodeTelemetry is the pre-resolved membership instrument set.
type nodeTelemetry struct {
	lookups  *telemetry.Counter
	timeouts *telemetry.Counter
	contacts *telemetry.Gauge
	buckets  *telemetry.Gauge
}

// New binds the endpoint and starts its read loop. The node answers PING and
// FIND_NODE immediately; discovering peers takes a Bootstrap call (or inbound
// traffic from peers bootstrapping off this node — the seed node of a
// deployment never bootstraps, it just listens).
func New(cfg Config) (*Node, error) {
	if cfg.Self == 0 {
		return nil, fmt.Errorf("membership: Self ID is required (derive it with DeriveID)")
	}
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 500 * time.Millisecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	bind, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("membership: bind %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("membership: bind %q: %w", cfg.Bind, err)
	}
	announce := cfg.Announce
	if announce == "" {
		announce = announceFromBound(conn.LocalAddr().(*net.UDPAddr))
	}
	self := Contact{ID: cfg.Self, Addr: announce}
	if err := self.Validate(); err != nil {
		conn.Close()
		return nil, err
	}
	nd := &Node{
		cfg:      cfg,
		self:     self,
		table:    NewTable(cfg.Self, cfg.K),
		conn:     conn,
		alpha:    cfg.Alpha,
		timeout:  cfg.RPCTimeout,
		retries:  cfg.Retries,
		inflight: make(map[uint64]chan Frame),
		probing:  make(map[ID]bool),
		looking:  make(map[ID]bool),
		resolved: make(map[ID]resolvedAddr),
		done:     make(chan struct{}),
	}
	// MsgIDs only need to be unique within this node's inflight window; seed
	// the counter off the self ID so two nodes' debug logs are tellable apart.
	nd.msgID.Store(uint64(cfg.Self) << 20)
	if cfg.Telemetry != nil {
		nd.tel = &nodeTelemetry{
			lookups:  cfg.Telemetry.Counter("repro_membership_lookups_total"),
			timeouts: cfg.Telemetry.Counter("repro_membership_rpc_timeouts_total"),
			contacts: cfg.Telemetry.Gauge("repro_membership_table_contacts"),
			buckets:  cfg.Telemetry.Gauge("repro_membership_buckets_occupied"),
		}
	}
	nd.wg.Add(1)
	go nd.readLoop()
	return nd, nil
}

// announceFromBound derives a single-host announce address from the bound
// socket: an unspecified bind host announces loopback.
func announceFromBound(bound *net.UDPAddr) string {
	ip := bound.IP
	if ip == nil || ip.IsUnspecified() {
		ip = net.IPv4(127, 0, 0, 1)
	}
	return net.JoinHostPort(ip.String(), strconv.Itoa(bound.Port))
}

// Self returns this node's contact (ID + announce address).
func (nd *Node) Self() Contact { return nd.self }

// Table returns the routing table.
func (nd *Node) Table() *Table { return nd.table }

// BindAddr returns the bound socket address (the port matters after a :0
// bind).
func (nd *Node) BindAddr() *net.UDPAddr { return nd.conn.LocalAddr().(*net.UDPAddr) }

// Close tears the endpoint down: the socket closes, the read loop and every
// outstanding RPC and probe unwind.
func (nd *Node) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	close(nd.done)
	nd.mu.Unlock()
	err := nd.conn.Close()
	nd.wg.Wait()
	return err
}

// logf emits a debug line when the config asked for them.
func (nd *Node) logf(format string, args ...any) {
	if nd.cfg.Logf != nil {
		nd.cfg.Logf(format, args...)
	}
}

// readLoop pumps the socket: membership frames are decoded and handled here,
// anything else is copied out of the scratch arena and handed to OnGossip.
// The arena amortizes the per-datagram copy (the same discipline as the live
// UDP transport's read loop): one chunk allocation serves many deliveries.
func (nd *Node) readLoop() {
	defer nd.wg.Done()
	buf := make([]byte, maxDatagram+1)
	var arena []byte
	for {
		k, _, err := nd.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		if k > maxDatagram {
			continue // oversized: drop, like the wire would
		}
		if IsMembershipFrame(buf[:k]) {
			fr, err := DecodeFrame(buf[:k])
			if err != nil {
				nd.logf("membership: drop malformed frame: %v", err)
				continue
			}
			nd.handle(fr)
			continue
		}
		if nd.cfg.OnGossip == nil {
			continue
		}
		if len(arena) < k {
			arena = make([]byte, 64*1024)
		}
		frame := arena[:k:k]
		arena = arena[k:]
		copy(frame, buf[:k])
		nd.cfg.OnGossip(frame)
	}
}

// handle processes one decoded membership frame on the read-loop goroutine.
// Requests are answered inline (one datagram, no blocking); responses are
// delivered to their inflight waiter. Every frame is routing-table evidence.
func (nd *Node) handle(fr Frame) {
	nd.observe(fr.From)
	switch fr.Type {
	case TypePing:
		nd.reply(fr.From, Frame{Type: TypePong, MsgID: fr.MsgID, From: nd.self})
	case TypeFindNode:
		nd.reply(fr.From, Frame{
			Type:     TypeFoundNodes,
			MsgID:    fr.MsgID,
			From:     nd.self,
			Target:   fr.Target,
			Contacts: nd.table.Closest(fr.Target, nd.table.K()),
		})
	case TypePong, TypeFoundNodes:
		nd.mu.Lock()
		ch := nd.inflight[fr.MsgID]
		nd.mu.Unlock()
		if ch != nil {
			select {
			case ch <- fr:
			default: // duplicate response (a retry raced the original answer)
			}
		}
	}
}

// observe feeds a contact into the routing table and, when the table
// nominates a stale entry for it, probes that entry off the read loop ("no
// network under locks"): a dead LRU entry is evicted and the cache promoted
// by Table.Fail, a live one is refreshed by its pong.
func (nd *Node) observe(c Contact) {
	if c.ID == nd.self.ID || c.Validate() != nil {
		return
	}
	stale, probe := nd.table.Update(c)
	nd.updateTableGauges()
	if !probe {
		return
	}
	nd.mu.Lock()
	if nd.closed || nd.probing[stale.ID] {
		nd.mu.Unlock()
		return
	}
	nd.probing[stale.ID] = true
	nd.wg.Add(1) // under mu: Close sets closed before it waits, so no Add races the Wait
	nd.mu.Unlock()
	go func() {
		defer nd.wg.Done()
		defer func() {
			nd.mu.Lock()
			delete(nd.probing, stale.ID)
			nd.mu.Unlock()
		}()
		if _, err := nd.Ping(stale.Addr); err != nil {
			if nd.table.Fail(stale.ID) {
				nd.logf("membership: evicted stale contact %s after probe timeout", stale)
			}
			nd.updateTableGauges()
		}
	}()
}

// updateTableGauges publishes the table's occupancy to telemetry.
func (nd *Node) updateTableGauges() {
	if nd.tel == nil {
		return
	}
	nd.tel.contacts.Set(int64(nd.table.Len()))
	nd.tel.buckets.Set(int64(nd.table.Occupancy()))
}

// reply sends one response frame to a contact's announce address.
func (nd *Node) reply(to Contact, fr Frame) {
	if addr, ok := nd.Resolve(to.ID); ok {
		nd.SendRaw(addr, AppendFrame(nil, fr))
		return
	}
	// Not in the table yet (a full bucket can refuse the requester): resolve
	// the announce address directly for this one response.
	if udp, err := net.ResolveUDPAddr("udp", to.Addr); err == nil {
		nd.SendRaw(udp, AppendFrame(nil, fr))
	}
}

// SendRaw writes one datagram. It is the gossip passthrough of a
// shared-socket deployment: the live transport resolves a peer through the
// routing table and sends its gossip frame from the same socket membership
// RPCs use.
func (nd *Node) SendRaw(addr *net.UDPAddr, frame []byte) error {
	if len(frame) > maxDatagram {
		return fmt.Errorf("membership: %d-byte frame exceeds the %d-byte datagram bound", len(frame), maxDatagram)
	}
	_, err := nd.conn.WriteToUDP(frame, addr)
	return err
}

// Resolve returns the parsed transport address of id: an exact routing-table
// hit plus a resolution cache (announce addresses may be DNS names in a
// container deployment; each is resolved once per address change). The miss
// path is the caller's to handle — the live transport reacts with
// LookupAsync.
func (nd *Node) Resolve(id ID) (*net.UDPAddr, bool) {
	addr, ok := nd.table.AddrOf(id)
	if !ok {
		return nil, false
	}
	nd.mu.Lock()
	if r, ok := nd.resolved[id]; ok && r.addr == addr {
		nd.mu.Unlock()
		return r.udp, true
	}
	nd.mu.Unlock()
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		nd.logf("membership: cannot resolve %q for %016x: %v", addr, uint64(id), err)
		return nil, false
	}
	nd.mu.Lock()
	nd.resolved[id] = resolvedAddr{addr: addr, udp: udp}
	nd.mu.Unlock()
	return udp, true
}

// nextMsgID draws a fresh correlation ID.
func (nd *Node) nextMsgID() uint64 { return nd.msgID.Add(1) }

// call performs one request/response RPC: register the MsgID waiter, send,
// wait out the per-attempt timeout, retry. All attempts share one MsgID (the
// request is idempotent), so a slow answer to the first send still satisfies
// a later wait. Every unanswered attempt counts into
// repro_membership_rpc_timeouts_total.
func (nd *Node) call(addr *net.UDPAddr, req Frame, want byte) (Frame, error) {
	ch := make(chan Frame, 1)
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return Frame{}, ErrClosed
	}
	nd.inflight[req.MsgID] = ch
	nd.mu.Unlock()
	defer func() {
		nd.mu.Lock()
		delete(nd.inflight, req.MsgID)
		nd.mu.Unlock()
	}()

	wire := AppendFrame(nil, req)
	timer := time.NewTimer(nd.timeout)
	defer timer.Stop()
	for attempt := 0; attempt <= nd.retries; attempt++ {
		if err := nd.SendRaw(addr, wire); err != nil {
			// A refused write behaves like a lost datagram: wait, retry.
			nd.logf("membership: send to %v failed: %v", addr, err)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(nd.timeout)
		select {
		case resp := <-ch:
			if resp.Type == want {
				return resp, nil
			}
			return Frame{}, fmt.Errorf("membership: unexpected response type %#02x (want %#02x)", resp.Type, want)
		case <-timer.C:
			if nd.tel != nil {
				nd.tel.timeouts.Add(1)
			}
		case <-nd.done:
			return Frame{}, ErrClosed
		}
	}
	return Frame{}, fmt.Errorf("%w: %#02x to %v after %d attempts", ErrTimeout, req.Type, addr, nd.retries+1)
}

// Ping checks liveness of the node at addr (an address, not a contact: PING
// is how a bootstrapping node introduces itself to a seed it knows only by
// address). The responder's contact is returned and absorbed into the table.
func (nd *Node) Ping(addr string) (Contact, error) {
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return Contact{}, fmt.Errorf("membership: ping %q: %w", addr, err)
	}
	resp, err := nd.call(udp, Frame{Type: TypePing, MsgID: nd.nextMsgID(), From: nd.self}, TypePong)
	if err != nil {
		return Contact{}, err
	}
	return resp.From, nil
}

// FindNode asks contact c for the k contacts it knows closest to target.
func (nd *Node) FindNode(c Contact, target ID) ([]Contact, error) {
	udp, err := net.ResolveUDPAddr("udp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("membership: find_node via %s: %w", c, err)
	}
	resp, err := nd.call(udp, Frame{
		Type: TypeFindNode, MsgID: nd.nextMsgID(), From: nd.self, Target: target,
	}, TypeFoundNodes)
	if err != nil {
		return nil, err
	}
	return resp.Contacts, nil
}

// Bootstrap joins the network through one seed address: ping the seed until
// it answers (containers of one deployment start in arbitrary order, so the
// ping retries with backoff until ctx expires), then run the warmup
// self-lookup that walks FIND_NODE toward this node's own ID and fills
// buckets across the ID space along the way.
func (nd *Node) Bootstrap(ctx context.Context, seedAddr string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := 100 * time.Millisecond
	for {
		seed, err := nd.Ping(seedAddr)
		if err == nil {
			nd.logf("membership: bootstrap seed %s answered", seed)
			break
		}
		if errors.Is(err, ErrClosed) {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("membership: bootstrap via %q: %w (last: %v)", seedAddr, ctx.Err(), err)
		}
		nd.logf("membership: bootstrap ping %q: %v (retrying in %v)", seedAddr, err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return fmt.Errorf("membership: bootstrap via %q: %w (last: %v)", seedAddr, ctx.Err(), err)
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	nd.Lookup(nd.self.ID)
	return nil
}

// LookupAsync starts a background lookup for target unless one is already
// running — the on-miss fallback of the gossip path, which must not block a
// round on discovery traffic.
func (nd *Node) LookupAsync(target ID) {
	nd.mu.Lock()
	if nd.closed || nd.looking[target] {
		nd.mu.Unlock()
		return
	}
	nd.looking[target] = true
	nd.wg.Add(1) // under mu, for the same Close/Wait ordering as the probes
	nd.mu.Unlock()
	go func() {
		defer nd.wg.Done()
		defer func() {
			nd.mu.Lock()
			delete(nd.looking, target)
			nd.mu.Unlock()
		}()
		nd.Lookup(target)
	}()
}
