package membership

import (
	"fmt"
	"reflect"
	"testing"
)

// contactIn builds a contact whose ID lands in bucket bi of self, with lo
// disambiguating contacts within the bucket.
func contactIn(self ID, bi int, lo uint64) Contact {
	id := self ^ (1 << uint(bi)) ^ ID(lo)
	return Contact{ID: id, Addr: fmt.Sprintf("10.0.%d.%d:4000", bi, lo)}
}

func TestBucketIndex(t *testing.T) {
	var a ID = 0x8000_0000_0000_0000
	if got := a.BucketIndex(a); got != -1 {
		t.Fatalf("self distance bucket = %d, want -1", got)
	}
	if got := a.BucketIndex(a ^ 1); got != 0 {
		t.Fatalf("adjacent ID bucket = %d, want 0", got)
	}
	if got := a.BucketIndex(0); got != 63 {
		t.Fatalf("opposite-half bucket = %d, want 63", got)
	}
	if got := a.BucketIndex(a ^ (1 << 40) ^ 0xfff); got != 40 {
		t.Fatalf("bucket = %d, want 40 (highest differing bit wins)", got)
	}
}

// TestTableBucketDistribution: contacts split across buckets by the highest
// bit in which they differ from self; no bucket holds a contact from another
// distance range.
func TestTableBucketDistribution(t *testing.T) {
	self := ID(0x0123_4567_89ab_cdef)
	tab := NewTable(self, 4)
	for bi := 0; bi < 64; bi += 7 {
		for lo := uint64(0); lo < 3; lo++ {
			c := contactIn(self, bi, lo)
			if bi >= 2 && self.BucketIndex(c.ID) != bi {
				t.Fatalf("test contact construction broken for bucket %d", bi)
			}
		}
	}
	for bi := 8; bi < 64; bi += 7 { // bi >= 8 keeps the low disambiguation bits below the bucket bit
		for lo := uint64(0); lo < 3; lo++ {
			tab.Update(contactIn(self, bi, lo))
		}
	}
	for bi := 8; bi < 64; bi += 7 {
		if got := tab.BucketLen(bi); got != 3 {
			t.Fatalf("bucket %d has %d entries, want 3", bi, got)
		}
	}
	if tab.Len() != 3*len(bucketRange(8, 64, 7)) {
		t.Fatalf("table size %d, want %d", tab.Len(), 3*len(bucketRange(8, 64, 7)))
	}
	if occ := tab.Occupancy(); occ != len(bucketRange(8, 64, 7)) {
		t.Fatalf("occupancy %d, want %d", occ, len(bucketRange(8, 64, 7)))
	}
}

func bucketRange(lo, hi, step int) []int {
	var out []int
	for bi := lo; bi < hi; bi += step {
		out = append(out, bi)
	}
	return out
}

// TestTableLRUEviction: a full bucket refuses the newcomer, nominates its
// least-recently-seen entry for a probe, and only Fail actually evicts —
// promoting the freshest replacement-cache contact.
func TestTableLRUEviction(t *testing.T) {
	self := ID(0)
	tab := NewTable(self, 2)
	const bi = 40
	c1, c2, c3 := contactIn(self, bi, 1), contactIn(self, bi, 2), contactIn(self, bi, 3)

	tab.Update(c1)
	tab.Update(c2)
	stale, probe := tab.Update(c3)
	if !probe || stale.ID != c1.ID {
		t.Fatalf("full bucket nominated %v (probe=%v), want LRU %v", stale, probe, c1)
	}
	if got := tab.BucketLen(bi); got != 2 {
		t.Fatalf("bucket grew to %d on overflow, want 2", got)
	}
	if got := tab.CacheLen(bi); got != 1 {
		t.Fatalf("replacement cache has %d entries, want 1", got)
	}
	if _, ok := tab.AddrOf(c3.ID); ok {
		t.Fatalf("cached newcomer %v is routable before promotion", c3)
	}

	// The probe found c1 alive (refresh): c1 moves to the fresh end, and the
	// next overflow nominates c2 instead.
	tab.Update(c1)
	stale, probe = tab.Update(c3)
	if !probe || stale.ID != c2.ID {
		t.Fatalf("after refresh the LRU is %v (probe=%v), want %v", stale, probe, c2)
	}

	// The probe timed out: Fail evicts c2 and promotes the freshest cache
	// entry (c3).
	if !tab.Fail(c2.ID) {
		t.Fatalf("Fail(%v) evicted nothing", c2)
	}
	if _, ok := tab.AddrOf(c2.ID); ok {
		t.Fatal("failed contact still routable")
	}
	if addr, ok := tab.AddrOf(c3.ID); !ok || addr != c3.Addr {
		t.Fatalf("replacement-cache promotion: AddrOf(c3) = %q, %v; want %q", addr, ok, c3.Addr)
	}
	if got := tab.CacheLen(bi); got != 0 {
		t.Fatalf("cache still holds %d entries after promotion", got)
	}
}

// TestTableReplacementCacheRecency: the cache is LRU too — re-seen cached
// contacts refresh, the oldest overflow is forgotten at capacity, and
// promotion takes the freshest.
func TestTableReplacementCacheRecency(t *testing.T) {
	self := ID(0)
	tab := NewTable(self, 2)
	const bi = 40
	in := func(lo uint64) Contact { return contactIn(self, bi, lo) }
	tab.Update(in(1))
	tab.Update(in(2))
	// Overflow contacts 3, 4, 5: cache holds them in recency order.
	tab.Update(in(3))
	tab.Update(in(4))
	tab.Update(in(5))
	tab.Update(in(3)) // refresh 3: now freshest
	if got := tab.CacheLen(bi); got != 2 {
		t.Fatalf("cache depth %d, want 2 (capped at k)", got)
	}
	tab.Fail(in(1).ID)
	if _, ok := tab.AddrOf(in(3).ID); !ok {
		t.Fatal("promotion took a stale cache entry, want the freshest (3)")
	}
}

// TestTableUpdateRefreshesAddr: a known contact re-announcing from a new
// address updates in place (a restarted container keeps its ID, not its IP).
func TestTableUpdateRefreshesAddr(t *testing.T) {
	self := ID(0)
	tab := NewTable(self, 4)
	c := contactIn(self, 40, 1)
	tab.Update(c)
	moved := Contact{ID: c.ID, Addr: "10.9.9.9:4000"}
	tab.Update(moved)
	if addr, _ := tab.AddrOf(c.ID); addr != moved.Addr {
		t.Fatalf("AddrOf after re-announce = %q, want %q", addr, moved.Addr)
	}
	if tab.Len() != 1 {
		t.Fatalf("re-announce duplicated the contact: len %d", tab.Len())
	}
}

// TestTableIgnoresSelfAndInvalid: the table never stores its own node or an
// unroutable contact.
func TestTableIgnoresSelfAndInvalid(t *testing.T) {
	self := ID(7)
	tab := NewTable(self, 4)
	tab.Update(Contact{ID: self, Addr: "10.0.0.1:1"})
	tab.Update(Contact{ID: 9}) // no address
	if tab.Len() != 0 {
		t.Fatalf("table stored self or an invalid contact: len %d", tab.Len())
	}
	if tab.Fail(self) {
		t.Fatal("Fail(self) evicted something")
	}
}

// TestTableClosest: result is sorted by XOR distance to the target and
// truncated to count.
func TestTableClosest(t *testing.T) {
	self := ID(0)
	tab := NewTable(self, 20)
	for bi := 8; bi < 24; bi++ {
		tab.Update(contactIn(self, bi, 1))
	}
	target := contactIn(self, 8, 1).ID
	got := tab.Closest(target, 5)
	if len(got) != 5 {
		t.Fatalf("Closest returned %d contacts, want 5", len(got))
	}
	if got[0].ID != target {
		t.Fatalf("closest to a present ID is %v, want the ID itself", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID.Distance(target) >= got[i].ID.Distance(target) {
			t.Fatalf("Closest not sorted at %d: %x >= %x", i,
				got[i-1].ID.Distance(target), got[i].ID.Distance(target))
		}
	}
}

// TestTableDeterministicJoinOrder: the table is a pure function of its
// Update/Fail sequence — two tables fed the same join order are identical,
// and a different join order is allowed to (and here does) differ.
func TestTableDeterministicJoinOrder(t *testing.T) {
	self := ID(0x55aa_55aa_55aa_55aa)
	var seq []Contact
	for bi := 8; bi < 64; bi += 3 {
		for lo := uint64(0); lo < 5; lo++ {
			seq = append(seq, contactIn(self, bi, lo))
		}
	}
	build := func(order []Contact) *Table {
		tab := NewTable(self, 3)
		for _, c := range order {
			tab.Update(c)
		}
		tab.Fail(seq[0].ID)
		return tab
	}
	a, b := build(seq), build(seq)
	if !reflect.DeepEqual(a.Contacts(), b.Contacts()) {
		t.Fatal("same join order produced different tables")
	}
	rev := make([]Contact, len(seq))
	for i, c := range seq {
		rev[len(seq)-1-i] = c
	}
	c := build(rev)
	if reflect.DeepEqual(a.Contacts(), c.Contacts()) {
		t.Log("reversed join order produced an identical table (legal, but suspicious for LRU state)")
	}
}
