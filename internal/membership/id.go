// Package membership is the decentralized discovery layer: a Kademlia-style
// routing substrate that lets one process find the transport addresses of its
// peers with nothing but a bind address and one bootstrap contact — no shared
// in-memory directory, no out-of-band address list.
//
// The paper's model assumes every node can directly address every other node.
// In-process engines satisfy that assumption trivially (the simulator's array
// indexes, the loopback transport's socket table); a genuinely distributed
// deployment has to earn it. This package earns it the classical way:
//
//   - every node derives a 64-bit membership ID from its phone-call NodeID
//     (DeriveID), so the ID space is shared knowledge given (n, seed);
//   - each node keeps a k-bucket routing table over XOR distance, refreshed by
//     every frame it receives, with LRU eviction guarded by a liveness probe
//     and a replacement cache (table.go);
//   - PING/PONG and FIND_NODE/FOUND_NODES RPCs, correlated by MsgID through an
//     inflight map with per-RPC timeouts and retries (node.go, codec.go);
//   - alpha-parallel iterative lookups that keep stepping toward smaller XOR
//     distance (lookup.go);
//   - a bootstrap sequence — ping the seed contact, then look up the node's
//     own ID — that fills buckets across the ID space (node.go).
//
// internal/live resolves gossip peers through this table (live.PeerTransport)
// and cmd/gossipnode runs one node per process on top of it. See DESIGN.md
// §14 for the layout, the lookup algorithm and the announce-vs-bind contract.
package membership

import (
	"fmt"
	"math/bits"

	"repro/internal/rng"
)

// ID is a node's address in the 64-bit XOR-distance metric space. IDs are
// derived from the phone-call NodeID space (DeriveID), so every process that
// knows the execution's (n, seed) derives the same ID table independently —
// what must be discovered at runtime is only the mapping from ID to transport
// address.
type ID uint64

// deriveSalt separates the membership ID stream from every other consumer of
// the NodeID space; the value is arbitrary but fixed forever (processes with
// different salts would disagree about every peer's ID).
const deriveSalt = 0x6d656d62 // "memb"

// DeriveID maps a phone-call NodeID onto the membership ID space. NodeIDs are
// uniform 63-bit values; the finalizing mix spreads them over all 64 bits so
// XOR-distance buckets fill evenly.
func DeriveID(nodeID uint64) ID { return ID(rng.Mix(deriveSalt, nodeID)) }

// Distance is the Kademlia XOR metric, compared as an unsigned integer.
func (a ID) Distance(b ID) uint64 { return uint64(a ^ b) }

// BucketIndex returns the routing-table bucket that holds b from a's point of
// view: the index of the highest differing bit, 63 (most distant half of the
// ID space) down to 0, or -1 when a == b (a node never stores itself).
func (a ID) BucketIndex(b ID) int {
	d := uint64(a ^ b)
	if d == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(d)
}

// maxAddrLen bounds one contact's transport address on the wire; longer
// addresses are a codec error, not a truncation.
const maxAddrLen = 255

// Contact pairs a membership ID with the transport address the node announces
// — the address peers should send to, which under NAT, containers or
// multi-homed hosts is not the address the node's socket is bound to (the
// announce-vs-bind split; see Config.Announce).
type Contact struct {
	ID   ID
	Addr string
}

// Validate reports whether the contact can travel on the wire.
func (c Contact) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("membership: contact %016x has no address", uint64(c.ID))
	}
	if len(c.Addr) > maxAddrLen {
		return fmt.Errorf("membership: contact address %q exceeds %d bytes", c.Addr, maxAddrLen)
	}
	return nil
}

func (c Contact) String() string { return fmt.Sprintf("%016x@%s", uint64(c.ID), c.Addr) }
