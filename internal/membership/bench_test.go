package membership

import (
	"testing"
	"time"
)

// BenchmarkRoutingLookup measures Table.Closest over a well-populated table —
// the operation on the FIND_NODE answer path and the seed of every iterative
// lookup. It is the routing table's hot read.
func BenchmarkRoutingLookup(b *testing.B) {
	self := ID(0x0123_4567_89ab_cdef)
	tab := NewTable(self, DefaultK)
	n := 0
	for bi := 4; bi < 64; bi++ {
		for lo := uint64(0); lo < 8 && lo < (1<<uint(bi)); lo++ {
			if c := contactIn(self, bi, lo); tab.self.BucketIndex(c.ID) == bi {
				tab.Update(c)
				n++
			}
		}
	}
	if tab.Len() < 200 {
		b.Fatalf("table too small for a meaningful benchmark: %d", tab.Len())
	}
	targets := make([]ID, 256)
	for i := range targets {
		targets[i] = self ^ ID(i*0x9e37_79b9)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tab.Closest(targets[i%len(targets)], DefaultK)
		if len(got) == 0 {
			b.Fatal("empty lookup")
		}
	}
}

// BenchmarkMembershipRPC measures one full PING/PONG round trip over loopback
// UDP: encode, send, demux, decode, handle, reply, correlate. This is the unit
// cost of liveness probing and of each lookup hop.
func BenchmarkMembershipRPC(b *testing.B) {
	a, err := New(Config{Self: 1, RPCTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := New(Config{Self: 2, RPCTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()
	addr := peer.Self().Addr
	if _, err := a.Ping(addr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Ping(addr); err != nil {
			b.Fatal(err)
		}
	}
}
