package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || !almostEqual(s.Mean, 3) || !almostEqual(s.Min, 1) || !almostEqual(s.Max, 5) || !almostEqual(s.Median, 3) {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.StdDev, math.Sqrt(2.5)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if !almostEqual(Percentile(vals, 0), 1) || !almostEqual(Percentile(vals, 1), 5) {
		t.Fatal("extreme percentiles wrong")
	}
	if !almostEqual(Percentile(vals, 0.5), 3) {
		t.Fatalf("median = %v", Percentile(vals, 0.5))
	}
	if !almostEqual(Percentile(vals, 0.25), 2) {
		t.Fatalf("p25 = %v", Percentile(vals, 0.25))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Percentile must not reorder its input.
	if !sort.Float64sAreSorted([]float64{1, 2, 3}) {
		t.Fatal("sanity")
	}
	input := []float64{3, 1, 2}
	Percentile(input, 0.5)
	if input[0] != 3 || input[1] != 1 || input[2] != 2 {
		t.Fatal("Percentile modified its input")
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p = math.Abs(p)
		p -= math.Floor(p)
		got := Percentile(vals, p)
		s := Summarize(vals)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almostEqual(Correlation(xs, []float64{2, 4, 6, 8}), 1) {
		t.Fatal("perfect positive correlation expected")
	}
	if !almostEqual(Correlation(xs, []float64{8, 6, 4, 2}), -1) {
		t.Fatal("perfect negative correlation expected")
	}
	if Correlation(xs, []float64{1, 1, 1, 1}) != 0 {
		t.Fatal("degenerate correlation should be 0")
	}
	if Correlation(xs, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
}

func TestLinearFit(t *testing.T) {
	slope, intercept := LinearFit([]float64{1, 2, 3, 4}, []float64{3, 5, 7, 9})
	if !almostEqual(slope, 2) || !almostEqual(intercept, 1) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	slope, intercept = LinearFit([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || !almostEqual(intercept, 2) {
		t.Fatalf("degenerate fit = %v, %v", slope, intercept)
	}
}

func TestBestModelIdentifiesScaling(t *testing.T) {
	ns := []float64{1e3, 1e4, 1e5, 1e6}
	logLog := make([]float64, len(ns))
	logN := make([]float64, len(ns))
	for i, n := range ns {
		logLog[i] = 10 * math.Log2(math.Log2(n))
		logN[i] = 2 * math.Log2(n)
	}
	if best, _ := BestModel(ns, logLog); best != "log log n" {
		t.Fatalf("log log data identified as %q", best)
	}
	if best, _ := BestModel(ns, logN); best != "log n" {
		t.Fatalf("log n data identified as %q", best)
	}
}

func TestGrowthRatio(t *testing.T) {
	if !almostEqual(GrowthRatio([]float64{2, 4, 8}), 4) {
		t.Fatal("growth ratio wrong")
	}
	if GrowthRatio([]float64{0, 1}) != 0 || GrowthRatio([]float64{1}) != 0 {
		t.Fatal("degenerate growth ratio should be 0")
	}
}

func TestModelsAreMonotone(t *testing.T) {
	for _, m := range Models() {
		if m.F(1e6) <= m.F(1e3) {
			t.Fatalf("model %s is not increasing", m.Name)
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	// A symmetric sample: the interval must be centered on the mean, widen
	// with the confidence level, and shrink as the sample grows.
	sample := []float64{8, 9, 10, 11, 12, 9, 10, 11}
	iv95 := ConfidenceInterval(sample, 0.95)
	if !almostEqual((iv95.Lo+iv95.Hi)/2, Mean(sample)) {
		t.Fatalf("interval %+v not centered on mean %v", iv95, Mean(sample))
	}
	if !iv95.Contains(10) {
		t.Fatalf("interval %+v misses the true center", iv95)
	}
	iv99 := ConfidenceInterval(sample, 0.99)
	if iv99.HalfWidth() <= iv95.HalfWidth() {
		t.Fatalf("99%% interval %+v not wider than 95%% %+v", iv99, iv95)
	}
	doubled := append(append([]float64(nil), sample...), sample...)
	if wide := ConfidenceInterval(doubled, 0.95); wide.HalfWidth() >= iv95.HalfWidth() {
		t.Fatalf("doubling the sample did not shrink the interval: %+v vs %+v", wide, iv95)
	}
	// Degenerate samples collapse to the mean.
	if iv := ConfidenceInterval([]float64{7}, 0.95); iv.Lo != 7 || iv.Hi != 7 {
		t.Fatalf("single-value interval %+v", iv)
	}
	// The 95% z-quantile: half-width = z·s/sqrt(k) with z ≈ 1.96.
	s := Summarize(sample)
	z := iv95.HalfWidth() / (s.StdDev / math.Sqrt(float64(s.Count)))
	if math.Abs(z-1.9599) > 1e-3 {
		t.Fatalf("z-quantile %v, want ≈1.96", z)
	}
}

func TestConfidenceIntervalRejectsBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("percentage-style level accepted without panic")
		}
	}()
	ConfidenceInterval([]float64{1, 2, 3}, 95)
}
