// Package stats provides the small statistical helpers used by the
// experiment harness: summaries over repeated trials and scaling-curve
// comparisons (log n vs √log n vs log log n) for the reproduction tables.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of values. An empty sample yields the zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	varSum := 0.0
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	if len(values) > 1 {
		s.StdDev = math.Sqrt(varSum / float64(len(values)-1))
	}
	s.Median = Percentile(values, 0.5)
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of values using
// nearest-rank interpolation. It does not modify the input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of values (0 for an empty sample).
func Mean(values []float64) float64 { return Summarize(values).Mean }

// Interval is a two-sided confidence interval for a mean.
type Interval struct {
	// Level is the confidence level in (0, 1), e.g. 0.95.
	Level  float64
	Lo, Hi float64
}

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// HalfWidth returns half the interval's width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// ConfidenceInterval returns the normal-approximation confidence interval
// for the mean of values at the given level: mean ± z·s/√k with z the
// two-sided standard-normal quantile. Level is a fraction in (0, 1) — pass
// 0.95, not 95; levels outside that range panic (a silently degenerate
// interval would let assertions built on it pass vacuously). Samples with
// fewer than two values yield the degenerate interval at the mean. The
// replication counts used by internal/check (k ≥ 8) keep the normal
// approximation serviceable for the bounded, light-tailed quantities the
// theorem checks measure.
func ConfidenceInterval(values []float64, level float64) Interval {
	if level <= 0 || level >= 1 {
		panic("stats: confidence level must be a fraction in (0, 1)")
	}
	s := Summarize(values)
	iv := Interval{Level: level, Lo: s.Mean, Hi: s.Mean}
	if s.Count < 2 {
		return iv
	}
	z := math.Sqrt2 * math.Erfinv(level)
	d := z * s.StdDev / math.Sqrt(float64(s.Count))
	iv.Lo, iv.Hi = s.Mean-d, s.Mean+d
	return iv
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// Mismatched or degenerate inputs yield 0.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of ys over xs.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}

// ScalingModel is a candidate growth curve for the round/message scaling
// experiments.
type ScalingModel struct {
	Name string
	F    func(n float64) float64
}

// Models returns the three growth curves the paper distinguishes:
// Θ(log n) (classical gossip), Θ(√log n) (Avin–Elsässer) and Θ(log log n)
// (this paper).
func Models() []ScalingModel {
	return []ScalingModel{
		{Name: "log n", F: func(n float64) float64 { return math.Log2(n) }},
		{Name: "sqrt(log n)", F: func(n float64) float64 { return math.Sqrt(math.Log2(n)) }},
		{Name: "log log n", F: func(n float64) float64 { return math.Log2(math.Log2(n)) }},
	}
}

// BestModel returns the name of the model whose predictions correlate best
// with the measurements ys at sizes ns, together with the per-model
// correlation. Ties favour the earlier (faster-growing) model.
func BestModel(ns []float64, ys []float64) (string, map[string]float64) {
	correlations := make(map[string]float64, 3)
	bestName := ""
	best := math.Inf(-1)
	for _, m := range Models() {
		xs := make([]float64, len(ns))
		for i, n := range ns {
			xs[i] = m.F(n)
		}
		// Compare by how well a proportional fit through the measurements
		// explains the growth: use the relative residual of the least-squares
		// proportional fit, converted to a score.
		score := proportionalFitScore(xs, ys)
		correlations[m.Name] = score
		if score > best {
			best = score
			bestName = m.Name
		}
	}
	return bestName, correlations
}

// proportionalFitScore fits ys ≈ c·xs + d and returns 1 − normalized residual
// (1 means a perfect fit).
func proportionalFitScore(xs, ys []float64) float64 {
	slope, intercept := LinearFit(xs, ys)
	var ss, tot float64
	my := Mean(ys)
	for i := range xs {
		pred := slope*xs[i] + intercept
		ss += (ys[i] - pred) * (ys[i] - pred)
		tot += (ys[i] - my) * (ys[i] - my)
	}
	if tot == 0 {
		return 0
	}
	return 1 - ss/tot
}

// GrowthRatio returns ys[len-1]/ys[0], the end-to-end growth of a measurement
// across the sweep (0 for degenerate input).
func GrowthRatio(ys []float64) float64 {
	if len(ys) < 2 || ys[0] == 0 {
		return 0
	}
	return ys[len(ys)-1] / ys[0]
}
