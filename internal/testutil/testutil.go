// Package testutil holds the small helpers shared by the command-line smoke
// tests.
package testutil

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed alongside fn's error. The CLIs print straight to
// os.Stdout, so their smoke tests swap it for the duration of one run.
func CaptureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}
