package phonecall

import (
	"reflect"
	"testing"
)

// Tests for the engine's dynamic-network semantics: Fail/Revive between
// rounds, oblivious per-call loss, the round-start hook, and the multi-rumor
// tracker. The mid-execution contract under test: a node failed after round r
// is dead from round r+1 on — its intents are never evaluated, in-flight
// pushes addressed to it are dropped, and per the live-participant rule it is
// not charged a communication for dropped calls.

// TestMidRunFailDropsInFlightIntents fails a push target between rounds and
// asserts that deliveries to it stop, that the sender keeps being charged for
// its attempts, and that the dead target is charged nothing from the failure
// round on.
func TestMidRunFailDropsInFlightIntents(t *testing.T) {
	net := newTestNet(t, 8, 1)
	const sender, victim = 0, 3
	delivered := 0
	intent := func(i int) Intent {
		if i != sender {
			return Silent()
		}
		return PushIntent(DirectTarget(net.ID(victim)), Message{Tag: 1, Rumor: true})
	}
	deliver := func(i int, inbox []Message) {
		if i == victim {
			delivered += len(inbox)
		}
	}

	for r := 0; r < 3; r++ {
		rep := net.ExecRound(intent, nil, deliver)
		if rep.MaxComms != 1 {
			t.Fatalf("round %d: maxComms = %d, want 1 (sender and live target)", r, rep.MaxComms)
		}
	}
	if delivered != 3 {
		t.Fatalf("delivered %d messages before failure, want 3", delivered)
	}
	before := net.Metrics()

	net.Fail(victim)
	for r := 0; r < 3; r++ {
		net.ExecRound(intent, nil, deliver)
	}
	after := net.Metrics()

	if delivered != 3 {
		t.Errorf("dead target still received messages: delivered=%d", delivered)
	}
	// The sender is still charged for its attempts (live-participant rule:
	// the initiator attempted the call)...
	if got := after.MessagesSent[sender] - before.MessagesSent[sender]; got != 3 {
		t.Errorf("sender charged %d messages after failure, want 3", got)
	}
	if after.Messages-before.Messages != 3 || after.Bits <= before.Bits {
		t.Errorf("post-failure attempts not charged: Δmessages=%d", after.Messages-before.Messages)
	}
	// ...while the dead target participates in nothing.
	if got := after.MessagesSent[victim]; got != before.MessagesSent[victim] {
		t.Errorf("dead target sent messages: %d -> %d", before.MessagesSent[victim], got)
	}
}

// TestMidRunFailSilencesInitiator asserts that a node failed between rounds
// never has its intent evaluated again.
func TestMidRunFailSilencesInitiator(t *testing.T) {
	net := newTestNet(t, 8, 1)
	evaluated := make([]int, 8)
	intent := func(i int) Intent {
		evaluated[i]++
		return PushIntent(RandomTarget(), Message{Tag: 1})
	}
	net.ExecRound(intent, nil, nil)
	net.Fail(2)
	net.ExecRound(intent, nil, nil)
	net.ExecRound(intent, nil, nil)
	if evaluated[2] != 1 {
		t.Fatalf("failed node's intent evaluated %d times, want 1", evaluated[2])
	}
	if evaluated[0] != 3 {
		t.Fatalf("live node's intent evaluated %d times, want 3", evaluated[0])
	}
}

// TestReviveRestoresLiveCount pins Revive semantics: only failed in-range
// nodes are revived, duplicates and live nodes are ignored, and a revived
// node initiates and receives again.
func TestReviveRestoresLiveCount(t *testing.T) {
	net := newTestNet(t, 10, 1)
	net.Fail(1, 2, 3)
	if net.LiveCount() != 7 {
		t.Fatalf("LiveCount = %d, want 7", net.LiveCount())
	}
	net.Revive(2, 2, 5, -1, 99)
	if net.LiveCount() != 8 {
		t.Fatalf("LiveCount after revive = %d, want 8", net.LiveCount())
	}
	if net.IsFailed(2) || !net.IsFailed(1) || !net.IsFailed(3) {
		t.Fatal("revive touched the wrong nodes")
	}
	got := 0
	net.ExecRound(
		func(i int) Intent {
			if i == 0 {
				return PushIntent(DirectTarget(net.ID(2)), Message{Tag: 1})
			}
			return Silent()
		},
		nil,
		func(i int, inbox []Message) {
			if i == 2 {
				got += len(inbox)
			}
		},
	)
	if got != 1 {
		t.Fatalf("revived node received %d messages, want 1", got)
	}
}

// TestLossDropsAndCharges pins the loss accounting: with rate 1 every call is
// dropped — nothing is delivered, no pull is answered, targets are charged no
// communications — while initiators are still charged for their attempts.
func TestLossDropsAndCharges(t *testing.T) {
	net := newTestNet(t, 16, 1)
	net.SetLoss(1, 7)
	delivered := 0
	responded := 0
	rep := net.ExecRound(
		func(i int) Intent {
			if i%2 == 0 {
				return PushIntent(RandomTarget(), Message{Tag: 1, Rumor: true})
			}
			return PullIntent(RandomTarget())
		},
		func(j int) (Message, bool) {
			responded++
			return Message{Tag: 2, Rumor: true}, true
		},
		func(i int, inbox []Message) { delivered += len(inbox) },
	)
	if delivered != 0 || responded != 0 {
		t.Fatalf("rate-1 loss delivered %d messages, %d responses", delivered, responded)
	}
	if rep.MaxComms != 1 {
		t.Fatalf("maxComms = %d, want 1 (initiator side only)", rep.MaxComms)
	}
	m := net.Metrics()
	if m.Messages != 8 || m.ControlMessages != 8 {
		t.Fatalf("initiators not charged: messages=%d control=%d, want 8/8", m.Messages, m.ControlMessages)
	}

	// Rate 0 disables loss entirely: identical to a lossless run.
	net.SetLoss(0, 7)
	delivered = 0
	net.ExecRound(
		func(i int) Intent { return PushIntent(RandomTarget(), Message{Tag: 1}) },
		nil,
		func(i int, inbox []Message) { delivered += len(inbox) },
	)
	if delivered != 16 {
		t.Fatalf("rate-0 loss delivered %d, want 16", delivered)
	}
}

// TestLossIsObliviousToExecutionSeed asserts that the drop pattern depends on
// the loss seed, not the execution seed, and is reproducible.
func TestLossIsObliviousToExecutionSeed(t *testing.T) {
	countDelivered := func(execSeed, lossSeed uint64) int {
		net, err := New(Config{N: 64, Seed: execSeed})
		if err != nil {
			t.Fatal(err)
		}
		net.SetLoss(0.5, lossSeed)
		delivered := 0
		for r := 0; r < 4; r++ {
			net.ExecRound(
				func(i int) Intent { return PushIntent(DirectTarget(net.ID((i+1)%64)), Message{Tag: 1}) },
				nil,
				func(i int, inbox []Message) { delivered += len(inbox) },
			)
		}
		return delivered
	}
	a := countDelivered(1, 9)
	if b := countDelivered(1, 9); a != b {
		t.Fatalf("loss not reproducible: %d vs %d", a, b)
	}
	// Same execution seed, different loss seed: a different drop pattern.
	// Fixed targets mean any difference comes from the loss process alone.
	if c := countDelivered(1, 10); a == c {
		t.Logf("note: identical delivery count for different loss seeds (%d); pattern may still differ", a)
	}
	if a == 0 || a == 4*64 {
		t.Fatalf("rate-0.5 loss delivered %d of %d — drop decision looks degenerate", a, 4*64)
	}
}

// dynamicWorkload drives a workload with mid-run failures, revives and loss,
// recording the full observable state, to pin worker-count determinism of the
// dynamic paths (the satellite requirement: Fail between rounds stays
// bit-identical across Workers 1/2/8).
type dynamicWorkload struct {
	net     *Network
	tracker *RumorTracker
	log     [][]Message
}

func newDynamicWorkload(t *testing.T, n, workers int) *dynamicWorkload {
	t.Helper()
	net, err := New(Config{N: n, Seed: 123, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	wl := &dynamicWorkload{net: net, tracker: NewRumorTracker(net), log: make([][]Message, n)}
	if err := wl.tracker.Inject(0, 0); err != nil {
		t.Fatal(err)
	}
	return wl
}

func (wl *dynamicWorkload) run(rounds int, onRound func(r int)) {
	net := wl.net
	tr := wl.tracker
	for r := 1; r <= rounds; r++ {
		if onRound != nil {
			onRound(r)
		}
		net.ExecRound(
			func(i int) Intent {
				if tr.Held(i) != 0 {
					return PushIntent(RandomTarget(), Message{Tag: 1, Value: tr.Held(i), Rumor: true})
				}
				return PullIntent(RandomTarget())
			},
			func(j int) (Message, bool) {
				if held := tr.Held(j); held != 0 {
					return Message{Tag: 1, Value: held, Rumor: true}, true
				}
				return Message{}, false
			},
			func(i int, inbox []Message) {
				var mask uint64
				for _, m := range inbox {
					mask |= m.Value
					wl.log[i] = append(wl.log[i], m)
				}
				if mask != 0 {
					tr.MarkSet(i, mask)
				}
			},
		)
	}
}

// TestDynamicDeterministicAcrossWorkers runs a churn+loss workload — Fail
// between rounds, Revive, SetLoss mid-run, a second rumor injected late — for
// Workers ∈ {1, 2, 8} and requires bit-identical metrics, delivery logs,
// holdings and live-informed counters. n is above the sharding threshold so
// the multi-worker runs really execute concurrently (covered by -race in CI).
func TestDynamicDeterministicAcrossWorkers(t *testing.T) {
	const n = 3 * shardMinNodes / 2
	churn := func(wl *dynamicWorkload) func(int) {
		return func(r int) {
			switch r {
			case 3:
				wl.tracker.Fail(1, 2, 3, 4, 100, 2000, n-1)
			case 5:
				wl.net.SetLoss(0.2, 77)
			case 7:
				wl.tracker.Revive(2, 100)
				if err := wl.tracker.Inject(50, 1); err != nil {
					t.Fatal(err)
				}
			case 9:
				wl.tracker.Fail(50)
			}
		}
	}

	ref := newDynamicWorkload(t, n, 1)
	ref.run(12, churn(ref))
	refMetrics := ref.net.Metrics()
	refLive := [2]int{ref.tracker.LiveInformed(0), ref.tracker.LiveInformed(1)}
	if refLive[0] == 0 {
		t.Fatal("reference run informed nobody")
	}

	for _, workers := range []int{2, 8} {
		wl := newDynamicWorkload(t, n, workers)
		wl.run(12, churn(wl))
		if got := wl.net.Metrics(); !reflect.DeepEqual(refMetrics, got) {
			t.Errorf("workers=%d: metrics differ:\n  1: %+v\n  %d: %+v", workers, refMetrics, workers, got)
		}
		if !reflect.DeepEqual(ref.log, wl.log) {
			t.Errorf("workers=%d: delivery logs differ", workers)
		}
		if !reflect.DeepEqual(ref.tracker.held, wl.tracker.held) {
			t.Errorf("workers=%d: rumor holdings differ", workers)
		}
		if got := [2]int{wl.tracker.LiveInformed(0), wl.tracker.LiveInformed(1)}; got != refLive {
			t.Errorf("workers=%d: live-informed counters differ: %v vs %v", workers, refLive, got)
		}
	}
}

// TestOnRoundStartHook pins the hook contract: it fires once per ExecRound
// with the 1-based round number, before intents are evaluated, and its
// Fail/SetLoss mutations take effect in the same round.
func TestOnRoundStartHook(t *testing.T) {
	net := newTestNet(t, 8, 1)
	var hookRounds []int
	net.OnRoundStart(func(r int) {
		hookRounds = append(hookRounds, r)
		if r == 2 {
			net.Fail(1)
		}
	})
	evaluated := 0
	intent := func(i int) Intent {
		if i == 1 {
			evaluated++
		}
		return Silent()
	}
	net.ExecRound(intent, nil, nil)
	net.ExecRound(intent, nil, nil)
	if !reflect.DeepEqual(hookRounds, []int{1, 2}) {
		t.Fatalf("hook rounds = %v, want [1 2]", hookRounds)
	}
	if evaluated != 1 {
		t.Fatalf("node failed by the hook was evaluated %d times, want 1 (round 1 only)", evaluated)
	}
	// Hook also fires on empty rounds, and nil unregisters.
	net.ExecRound(nil, nil, nil)
	if len(hookRounds) != 3 {
		t.Fatalf("hook did not fire on an empty round: %v", hookRounds)
	}
	net.OnRoundStart(nil)
	net.ExecRound(intent, nil, nil)
	if len(hookRounds) != 3 {
		t.Fatal("unregistered hook still fired")
	}
}

// TestRumorTrackerChurn pins the tracker's counter consistency across
// fail/revive cycles: crashes of informed nodes decrement, revives rejoin
// uninformed, and re-marking works.
func TestRumorTrackerChurn(t *testing.T) {
	net := newTestNet(t, 6, 1)
	tr := NewRumorTracker(net)
	if err := tr.Inject(0, 3); err != nil {
		t.Fatal(err)
	}
	tr.Mark(1, 3)
	tr.Mark(1, 3) // idempotent
	tr.Mark(2, 9) // unregistered: ignored
	if got := tr.LiveInformed(3); got != 2 {
		t.Fatalf("LiveInformed = %d, want 2", got)
	}
	if tr.Has(2, 9) || tr.Held(2) != 0 {
		t.Fatal("unregistered rumor was recorded")
	}

	tr.Fail(1)
	if got := tr.LiveInformed(3); got != 1 {
		t.Fatalf("LiveInformed after crash = %d, want 1", got)
	}
	tr.Fail(1) // repeated Fail: no double-decrement
	if got := tr.LiveInformed(3); got != 1 {
		t.Fatalf("LiveInformed after duplicate crash = %d, want 1", got)
	}

	tr.Revive(1)
	if tr.Held(1) != 0 {
		t.Fatal("revived node kept its rumors; JoinAt semantics require an uninformed rejoin")
	}
	if got := tr.LiveInformed(3); got != 1 {
		t.Fatalf("LiveInformed after rejoin = %d, want 1 (node 1 rejoined uninformed)", got)
	}
	tr.Mark(1, 3)
	if got := tr.LiveInformed(3); got != 2 {
		t.Fatalf("LiveInformed after re-mark = %d, want 2", got)
	}

	if err := tr.Register(MaxRumors); err == nil {
		t.Fatal("Register accepted an out-of-range rumor id")
	}
	if err := tr.Inject(-1, 0); err == nil {
		t.Fatal("Inject accepted an out-of-range node")
	}
}
