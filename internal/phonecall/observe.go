package phonecall

// Verification seam: a RoundObserver intercepts everything that flows through
// the engine's callback contract — each evaluated intent, each response, each
// delivered inbox — without changing what the protocol sees. The invariant
// checker (internal/oracle) uses it to validate the per-round model contracts
// of DESIGN.md §2 under any protocol, closed or steppable, while the engine
// runs at full (sharded) speed.
//
// Observer methods for a node are invoked from whichever shard owns that node,
// concurrently with other shards — an observer must be safe for per-node
// concurrent use, exactly like protocol callbacks. BeginRound and EndRound run
// on the coordinator goroutine.

// RoundInfo tells the observer which callbacks the protocol supplied for the
// round, so absent observations ("no responses seen") can be told apart from
// suppressed ones ("responseOf was nil").
type RoundInfo struct {
	HasIntent   bool
	HasResponse bool
	HasDeliver  bool
}

// RoundObserver receives the engine's callback traffic for one round.
type RoundObserver interface {
	// BeginRound opens the round before any intent is evaluated (after the
	// OnRoundStart hook, so churn injected by a timeline is already visible).
	BeginRound(round int, info RoundInfo)
	// ObserveIntent sees node i's evaluated intent. Shard goroutine.
	ObserveIntent(i int, it Intent)
	// ObserveResponse sees node i's response evaluation. Shard goroutine.
	ObserveResponse(i int, m Message, ok bool)
	// ObserveDeliver sees node i's inbox exactly as the protocol does: the
	// slice aliases the engine arena and is only valid during the call.
	ObserveDeliver(i int, inbox []Message)
	// EndRound closes the round with the engine's own report.
	EndRound(rep RoundReport)
}

// NetworkBinder is an optional interface for RoundObservers that want a
// reference to the network they are observing (for example to read the live
// count when a round ends). Drivers that register observers on networks they
// construct internally (internal/harness, internal/scenario) call
// BindNetwork before the first round.
type NetworkBinder interface {
	BindNetwork(net *Network)
}

// TrackerBinder is an optional interface for RoundObservers that want the
// rumor tracker of the run they are observing (for example to assert that
// honest nodes only advertise holdings they actually have). Drivers with a
// tracker (the scenario driver) call BindTracker before the first round;
// tracker-less drivers never do, and such observers must treat an unbound
// tracker as "holdings unknown".
type TrackerBinder interface {
	BindTracker(tr *RumorTracker)
}

// Observe registers an observer on the network (nil unregisters). While an
// observer is registered every round pays three wrapper closures and — so the
// observer can see inboxes even under protocols that pass a nil deliver — the
// delivery pass always runs; results and metrics are unchanged. This is a
// debugging/verification mode, not a production path.
func (net *Network) Observe(obs RoundObserver) { net.observer = obs }

// LossSeed returns the seed driving the oblivious per-call loss process (set
// by SetLoss; meaningful only while LossRate() > 0). Exposed so external
// verifiers can recompute the documented drop decision.
func (net *Network) LossSeed() uint64 { return net.lossSeed }

// ControlBits returns the size in bits the engine charges for a pull request,
// exposed for external verifiers.
func (net *Network) ControlBits() int { return net.controlSize() }

// observedCallbacks wraps the round's callbacks with observer taps. intentOf
// must be non-nil (a nil intentOf means an empty round and is handled before
// wrapping). deliver may be nil: the wrapper still taps the inboxes.
func (net *Network) observedCallbacks(
	obs RoundObserver,
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
	deliver func(i int, inbox []Message),
) (func(i int) Intent, func(i int) (Message, bool), func(i int, inbox []Message)) {
	wrappedIntent := func(i int) Intent {
		it := intentOf(i)
		obs.ObserveIntent(i, it)
		return it
	}
	wrappedResponse := responseOf
	if responseOf != nil {
		wrappedResponse = func(i int) (Message, bool) {
			m, ok := responseOf(i)
			obs.ObserveResponse(i, m, ok)
			return m, ok
		}
	}
	wrappedDeliver := func(i int, inbox []Message) {
		obs.ObserveDeliver(i, inbox)
		if deliver != nil {
			deliver(i, inbox)
		}
	}
	return wrappedIntent, wrappedResponse, wrappedDeliver
}
