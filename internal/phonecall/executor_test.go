package phonecall

import "testing"

// TestRandomPeerMatchesEngine pins the exported model helper against the
// engine's cached-prefix fast path: external executors resolve random
// contacts through RandomPeer, and the two must never drift.
func TestRandomPeerMatchesEngine(t *testing.T) {
	net, err := New(Config{N: 257, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 50; round++ {
		net.round = round
		net.roundMixRound = -1
		net.refreshRoundMix()
		for i := 0; i < net.n; i++ {
			want := net.resolveRandom(i)
			if got := RandomPeer(net.n, net.Seed(), round, i); got != want {
				t.Fatalf("round %d initiator %d: RandomPeer=%d engine=%d", round, i, got, want)
			}
		}
	}
}

// TestCallLostMatchesEngine pins CallLost against the engine's cached loss
// hash for a sweep of rates.
func TestCallLostMatchesEngine(t *testing.T) {
	net, err := New(Config{N: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.01, 0.25, 0.5, 0.99} {
		net.SetLoss(rate, 0xfeed)
		for round := 1; round <= 20; round++ {
			net.round = round
			net.refreshLossMix()
			for i := 0; i < net.n; i++ {
				want := net.dropCall(i)
				if got := CallLost(rate, 0xfeed, round, i); got != want {
					t.Fatalf("rate %v round %d initiator %d: CallLost=%v engine=%v", rate, round, i, got, want)
				}
			}
		}
	}
	if CallLost(0, 1, 1, 1) {
		t.Fatal("rate 0 lost a call")
	}
}

// TestExternalExecutorMerge checks the RoundDelta merge path: metrics,
// round reports and per-node sent counters must reflect exactly what the
// executor accounted, and a nil executor must restore the engine.
func TestExternalExecutorMerge(t *testing.T) {
	net, err := New(Config{N: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net.SetExecutor(fakeExecutor{})
	rep := net.ExecRound(func(int) Intent { return Silent() }, nil, nil)
	if rep.Round != 1 || rep.Messages != 7 || rep.Bits != 99 || rep.MaxComms != 3 {
		t.Fatalf("report not built from the delta: %+v", rep)
	}
	m := net.Metrics()
	if m.Messages != 5 || m.ControlMessages != 2 || m.Bits != 99 || m.MaxCommsPerRound != 3 {
		t.Fatalf("metrics not merged: %+v", m)
	}
	if m.MessagesSent[2] != 4 {
		t.Fatalf("sent vector not merged: %+v", m.MessagesSent)
	}
	// An all-nil round never reaches the executor.
	rep = net.ExecRound(nil, nil, nil)
	if rep.Messages != 0 {
		t.Fatalf("empty round delegated: %+v", rep)
	}
	net.SetExecutor(nil)
	if net.Executor() != nil {
		t.Fatal("executor not uninstalled")
	}
}

type fakeExecutor struct{}

func (fakeExecutor) ExecNetworkRound(
	net *Network, round int,
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
	deliver func(i int, inbox []Message),
) RoundDelta {
	return RoundDelta{Messages: 5, Control: 2, Bits: 99, MaxComms: 3, Sent: []int64{0, 0, 4, 0}}
}
