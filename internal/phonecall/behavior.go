package phonecall

import (
	"math/bits"

	"repro/internal/rng"
)

// Per-node behaviors: the Byzantine seam. A Behavior intercepts a node's
// outgoing traffic — the intent it initiates and the response it would give
// to pullers — and may rewrite either. Honest is the zero value: nodes
// without a behavior run the protocol's callbacks untouched, and a run with
// no behaviors installed takes the exact same code path as before the seam
// existed (bit-identical, allocation-free).
//
// Behaviors rewrite only what a real faulty process could control: its own
// outgoing calls and answers. Delivery stays honest — a corrupted node still
// receives and merges its inbox — and the engine's bookkeeping (charges,
// inbox order, Δ, exactly-once intents) applies to the rewritten traffic,
// so the model invariants of internal/oracle hold under every behavior.
// What breaks is only the honest-node contract (truthful holdings, no
// forged bits), which the oracle asserts exclusively for uncorrupted nodes.
//
// Every library behavior below is a pure function of (round, node) and its
// own frozen configuration, with all randomness drawn from stateless rng
// hashes. That purity is what lets the same behavior run bit-identically on
// the sharded simulator, the lock-step live runtime (which receives the
// wrapped callbacks through the executor seam) and the free-running runtime
// (which applies the same rewrites around its hand-rolled send path).

// TagHoldings marks messages whose Value is a rumor-holdings bitmask (the
// steppable protocols of internal/scenario and the free-running runtime).
// The holdings-directed behaviors (Liar, Stale) rewrite only these.
const TagHoldings uint8 = 111

// Hash stream tags for the behavior library, disjoint from the engine's
// randomTargetTag/lossTag streams.
const (
	liarTag    uint64 = 0x11a4
	spamTagVal uint64 = 0x59a3
)

// Behavior is one node's (mis)behavior. Implementations must be pure: the
// engine invokes them from concurrent shards and the live runtimes from node
// goroutines, and cross-engine conformance relies on the same inputs
// producing the same rewrites.
type Behavior interface {
	// RewriteIntent may replace the intent node i initiates in round r.
	// target is the index the intent's target resolves to (the engine's
	// random-peer contract for random targets, the ID directory for direct
	// ones), or -1 if it resolves to nothing; it lets behaviors act on the
	// destination without re-deriving it.
	RewriteIntent(round, node, target int, it Intent) Intent
	// RewriteResponse may replace the address-oblivious response node i
	// hands to this round's pullers. ok=false suppresses the response.
	RewriteResponse(round, node int, m Message, ok bool) (Message, bool)
}

// SetBehavior installs b as node i's behavior from the next round on (nil
// restores honesty). Coordinator-only, like Fail and SetLoss: call it before
// Run or from an OnRoundStart hook, never from a callback.
func (net *Network) SetBehavior(i int, b Behavior) {
	if i < 0 || i >= net.n {
		return
	}
	if net.behaviors == nil {
		if b == nil {
			return
		}
		net.behaviors = make([]Behavior, net.n)
	}
	if (net.behaviors[i] == nil) != (b == nil) {
		if b == nil {
			net.corrupted--
		} else {
			net.corrupted++
		}
	}
	net.behaviors[i] = b
}

// Corrupted reports whether node i currently has a behavior installed.
func (net *Network) Corrupted(i int) bool {
	return net.behaviors != nil && i >= 0 && i < net.n && net.behaviors[i] != nil
}

// CorruptedCount returns the number of nodes with a behavior installed.
func (net *Network) CorruptedCount() int { return net.corrupted }

// behaviorCallbacks wraps the round's callbacks with the installed
// behaviors. Applied before the observer wrap, so verifiers see the
// post-rewrite traffic (the traffic that is actually charged and delivered),
// and before executor delegation, so the live lock-step runtime inherits
// behaviors without knowing they exist. responseOf may be nil; behaviors
// cannot invent a response stream the protocol does not have.
func (net *Network) behaviorCallbacks(
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
) (func(i int) Intent, func(i int) (Message, bool)) {
	behaviors := net.behaviors
	round := net.round
	index := net.index
	wrappedIntent := func(i int) Intent {
		it := intentOf(i)
		b := behaviors[i]
		if b == nil {
			return it
		}
		target := -1
		if it.Kind != None {
			if it.Target.Random {
				if j, ok := net.RandomContact(round, i); ok {
					target = j
				}
			} else if j, ok := index.get(it.Target.ID); ok && j != i {
				target = j
			}
		}
		return b.RewriteIntent(round, i, target, it)
	}
	if responseOf == nil {
		return wrappedIntent, nil
	}
	wrappedResponse := func(i int) (Message, bool) {
		m, ok := responseOf(i)
		b := behaviors[i]
		if b == nil {
			return m, ok
		}
		return b.RewriteResponse(round, i, m, ok)
	}
	return wrappedIntent, wrappedResponse
}

// behaviorHash is the behaviors' stateless coin: a pure function of the
// behavior's own seed stream, the round and the node.
func behaviorHash(tag, seed uint64, round, node int) uint64 {
	return rng.Mix(seed, tag, uint64(round), uint64(node))
}

// Liar advertises wrong holdings. Every outgoing holdings message
// (TagHoldings) keeps only a pseudo-random subset of the node's true rumor
// bits and gains forged bits confined to the unregistered rumor space —
// honest receivers mask unregistered bits away (RumorTracker.MarkSet), so
// forgeries waste bandwidth and verification effort without ever informing
// anyone, while the hidden true bits slow the spread. Non-holdings traffic
// passes through: the liar speaks the rumor-set vocabulary.
type Liar struct {
	// Seed drives the hide/forge coin stream.
	Seed uint64
	// Registered, when set, returns the currently registered rumor mask;
	// forged bits are drawn outside it. When nil the liar forges nothing
	// (it only withholds).
	Registered func() uint64
}

func (l Liar) rewrite(round, node int, m Message) Message {
	if m.Tag != TagHoldings {
		return m
	}
	h := behaviorHash(liarTag, l.Seed, round, node)
	m.Value &= h // keep a pseudo-random subset of the true bits
	if l.Registered != nil {
		forged := bits.RotateLeft64(h, 17) &^ l.Registered()
		m.Value |= forged
	}
	return m
}

// RewriteIntent implements Behavior.
func (l Liar) RewriteIntent(round, node, target int, it Intent) Intent {
	it.Payload = l.rewrite(round, node, it.Payload)
	return it
}

// RewriteResponse implements Behavior.
func (l Liar) RewriteResponse(round, node int, m Message, ok bool) (Message, bool) {
	if !ok {
		return m, ok
	}
	return l.rewrite(round, node, m), true
}

// Spammer floods the network with junk at a configurable rate: in a spamming
// round it discards whatever the protocol wanted to do and pushes a junk
// rumor-tagged message at a random peer, and it answers pulls with the same
// junk. The model caps initiations at one call per node per round, so the
// flood is rate-bounded by construction; what the spammer costs the network
// is the useful work it replaces plus the bandwidth its junk is charged.
type Spammer struct {
	// Rate is the per-round spamming probability in [0,1]. 0 means always
	// (the zero-value spammer is a full-rate flooder).
	Rate float64
	// Seed drives the spam coin and payload streams.
	Seed uint64
}

// TagSpam marks spammer junk. No protocol interprets it: receivers charge
// and discard it.
const TagSpam uint8 = 90

func (s Spammer) rate() float64 {
	if s.Rate == 0 {
		return 1
	}
	return s.Rate
}

func (s Spammer) spamming(round, node int) bool {
	h := behaviorHash(spamTagVal, s.Seed, round, node)
	return rng.Unit(h) < s.rate()
}

func (s Spammer) junk(round, node int) Message {
	return Message{
		Tag:   TagSpam,
		Value: behaviorHash(spamTagVal+1, s.Seed, round, node),
		Rumor: true, // charged one payload, like a real rumor
	}
}

// RewriteIntent implements Behavior.
func (s Spammer) RewriteIntent(round, node, target int, it Intent) Intent {
	if !s.spamming(round, node) {
		return it
	}
	return PushIntent(RandomTarget(), s.junk(round, node))
}

// RewriteResponse implements Behavior.
func (s Spammer) RewriteResponse(round, node int, m Message, ok bool) (Message, bool) {
	if !s.spamming(round, node) {
		return m, ok
	}
	return s.junk(round, node), true
}

// Eclipse silently drops all traffic between the corrupted node and a victim
// set: outgoing calls that resolve to a victim become silence, and — because
// responses are address-oblivious, one answer handed to every puller — the
// dropper suppresses its response stream entirely rather than leak state to
// a pulling victim. Corrupting every non-victim with the same Eclipse cuts
// the victims off from the rumor completely.
type Eclipse struct {
	victims map[int]bool
}

// NewEclipse builds an eclipse dropper targeting the given victims.
func NewEclipse(victims []int) Eclipse {
	set := make(map[int]bool, len(victims))
	for _, v := range victims {
		set[v] = true
	}
	return Eclipse{victims: set}
}

// Victims returns the victim set (sorted order not guaranteed).
func (e Eclipse) Victims() []int {
	out := make([]int, 0, len(e.victims))
	for v := range e.victims {
		out = append(out, v)
	}
	return out
}

// RewriteIntent implements Behavior.
func (e Eclipse) RewriteIntent(round, node, target int, it Intent) Intent {
	if target >= 0 && e.victims[target] {
		return Silent()
	}
	return it
}

// RewriteResponse implements Behavior.
func (e Eclipse) RewriteResponse(round, node int, m Message, ok bool) (Message, bool) {
	return Message{}, false
}

// Stale answers with outdated state: every outgoing holdings message is
// replaced by the mask frozen at corruption time. A Stale with Frozen == 0
// is mute — it stops pushing holdings and stops answering pulls. Either way
// the node keeps receiving (its tracker keeps advancing); it just never
// tells anyone.
type Stale struct {
	// Frozen is the holdings mask advertised forever after.
	Frozen uint64
}

// RewriteIntent implements Behavior.
func (st Stale) RewriteIntent(round, node, target int, it Intent) Intent {
	if it.Payload.Tag != TagHoldings {
		return it
	}
	if st.Frozen == 0 {
		switch it.Kind {
		case Push:
			return Silent()
		case Exchange:
			// Keep the pull half: the node still wants to learn.
			it.Payload = Message{}
			return it
		}
		return it
	}
	it.Payload.Value = st.Frozen
	return it
}

// RewriteResponse implements Behavior.
func (st Stale) RewriteResponse(round, node int, m Message, ok bool) (Message, bool) {
	if !ok || m.Tag != TagHoldings {
		return m, ok
	}
	if st.Frozen == 0 {
		return Message{}, false
	}
	m.Value = st.Frozen
	return m, true
}
