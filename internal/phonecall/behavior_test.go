package phonecall

import (
	"reflect"
	"testing"
)

// Unit coverage for the Byzantine seam: SetBehavior bookkeeping, the rewrite
// semantics of each library behavior, and the zero-adversary identity that
// the cross-engine conformance locks rely on.

func TestSetBehaviorBookkeeping(t *testing.T) {
	net, err := New(Config{N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.CorruptedCount() != 0 || net.Corrupted(0) {
		t.Fatal("fresh network reports corruption")
	}
	// Out-of-range installs are ignored.
	net.SetBehavior(-1, Spammer{})
	net.SetBehavior(8, Spammer{})
	if net.CorruptedCount() != 0 {
		t.Fatalf("out-of-range install counted: %d", net.CorruptedCount())
	}
	// Removing from an honest network allocates nothing and does nothing.
	net.SetBehavior(3, nil)
	if net.CorruptedCount() != 0 || net.Corrupted(3) {
		t.Fatal("nil install on honest network changed state")
	}

	net.SetBehavior(2, Spammer{Seed: 7})
	net.SetBehavior(5, Liar{Seed: 9})
	if net.CorruptedCount() != 2 || !net.Corrupted(2) || !net.Corrupted(5) || net.Corrupted(4) {
		t.Fatalf("install bookkeeping wrong: count=%d", net.CorruptedCount())
	}
	// Replacing a behavior does not double-count.
	net.SetBehavior(2, Stale{Frozen: 1})
	if net.CorruptedCount() != 2 {
		t.Fatalf("replacement double-counted: %d", net.CorruptedCount())
	}
	// nil restores honesty and decrements exactly once.
	net.SetBehavior(2, nil)
	net.SetBehavior(2, nil)
	if net.CorruptedCount() != 1 || net.Corrupted(2) {
		t.Fatalf("restore bookkeeping wrong: count=%d", net.CorruptedCount())
	}
	if net.Corrupted(-1) || net.Corrupted(8) {
		t.Fatal("out-of-range Corrupted true")
	}
}

func TestLiarRewrite(t *testing.T) {
	registered := uint64(0b1111) // rumors 0..3 exist
	l := Liar{Seed: 42, Registered: func() uint64 { return registered }}

	truth := Message{Tag: TagHoldings, Value: 0b1010, Rumor: true}
	it := l.RewriteIntent(3, 1, 2, PushIntent(RandomTarget(), truth))
	got := it.Payload
	if got.Tag != TagHoldings {
		t.Fatalf("liar changed the tag: %d", got.Tag)
	}
	if extra := got.Value & registered &^ truth.Value; extra != 0 {
		t.Fatalf("liar forged registered bits %b — honest receivers would believe them", extra)
	}
	if got.Value&^registered == 0 {
		t.Fatal("liar with registered space left forged nothing outside it")
	}
	// The same (round, node) always lies the same way: pure function.
	again := l.RewriteIntent(3, 1, 2, PushIntent(RandomTarget(), truth))
	if !reflect.DeepEqual(again.Payload, got) {
		t.Fatal("liar rewrite is not deterministic")
	}

	// Non-holdings traffic passes through untouched.
	ctrl := Message{Tag: 7, Value: 123}
	if out := l.RewriteIntent(3, 1, 2, PushIntent(RandomTarget(), ctrl)); !reflect.DeepEqual(out.Payload, ctrl) {
		t.Fatalf("liar rewrote non-holdings traffic: %+v", out.Payload)
	}
	// A nil Registered hook means withhold-only: no bits appear from nowhere.
	withholder := Liar{Seed: 42}
	if out, ok := withholder.RewriteResponse(3, 1, truth, true); !ok || out.Value&^truth.Value != 0 {
		t.Fatalf("withhold-only liar invented bits: %b", out.Value&^truth.Value)
	}
	// A suppressed response stays suppressed.
	if _, ok := l.RewriteResponse(3, 1, Message{}, false); ok {
		t.Fatal("liar resurrected a suppressed response")
	}
}

func TestSpammerRewrite(t *testing.T) {
	// The zero-value spammer floods every round.
	s := Spammer{Seed: 5}
	honest := ExchangeIntent(RandomTarget(), Message{Tag: TagHoldings, Value: 1, Rumor: true})
	it := s.RewriteIntent(2, 4, 0, honest)
	if it.Kind != Push || !it.Target.Random {
		t.Fatalf("spammer intent is not a random push: %+v", it)
	}
	if it.Payload.Tag != TagSpam || !it.Payload.Rumor || it.Payload.Value == 0 {
		t.Fatalf("spam payload malformed: %+v", it.Payload)
	}
	// Pull answers are junk too, even when the node had nothing to say.
	if m, ok := s.RewriteResponse(2, 4, Message{}, false); !ok || m.Tag != TagSpam {
		t.Fatalf("spammer response not junk: %+v ok=%v", m, ok)
	}

	// A partial rate leaves some rounds honest and some spammed, and the coin
	// is a pure function of (round, node).
	part := Spammer{Rate: 0.5, Seed: 5}
	spammed, honestRounds := 0, 0
	for r := 1; r <= 64; r++ {
		it := part.RewriteIntent(r, 4, 0, honest)
		if it.Payload.Tag == TagSpam {
			spammed++
		} else {
			if !reflect.DeepEqual(it, honest) {
				t.Fatalf("non-spamming round rewrote the intent: %+v", it)
			}
			honestRounds++
		}
		if again := part.RewriteIntent(r, 4, 0, honest); !reflect.DeepEqual(again, it) {
			t.Fatalf("spam coin not deterministic at round %d", r)
		}
	}
	if spammed == 0 || honestRounds == 0 {
		t.Fatalf("rate 0.5 never mixed: %d spam / %d honest", spammed, honestRounds)
	}
}

func TestEclipseRewrite(t *testing.T) {
	e := NewEclipse([]int{2, 5})
	if got := e.Victims(); len(got) != 2 {
		t.Fatalf("Victims() = %v", got)
	}
	pull := PullIntent(RandomTarget())
	// An intent resolving to a victim becomes silence; anything else passes.
	if it := e.RewriteIntent(1, 0, 2, pull); it.Kind != None {
		t.Fatalf("call to victim not dropped: %+v", it)
	}
	if it := e.RewriteIntent(1, 0, 3, pull); !reflect.DeepEqual(it, pull) {
		t.Fatalf("call to non-victim rewritten: %+v", it)
	}
	// Unresolved targets (-1) are not victims.
	if it := e.RewriteIntent(1, 0, -1, pull); !reflect.DeepEqual(it, pull) {
		t.Fatalf("unresolved call dropped: %+v", it)
	}
	// The response stream is suppressed wholesale: answers are address-
	// oblivious, so answering anyone could leak state to a pulling victim.
	if _, ok := e.RewriteResponse(1, 0, Message{Tag: TagHoldings, Value: 1}, true); ok {
		t.Fatal("eclipse dropper answered a pull")
	}
}

func TestStaleRewrite(t *testing.T) {
	frozen := Stale{Frozen: 0b11}
	truth := Message{Tag: TagHoldings, Value: 0b1111, Rumor: true}
	if it := frozen.RewriteIntent(1, 0, 1, PushIntent(RandomTarget(), truth)); it.Payload.Value != 0b11 {
		t.Fatalf("stale push not frozen: %b", it.Payload.Value)
	}
	if m, ok := frozen.RewriteResponse(1, 0, truth, true); !ok || m.Value != 0b11 {
		t.Fatalf("stale response not frozen: %b ok=%v", m.Value, ok)
	}
	// Non-holdings traffic passes through.
	ctrl := Message{Tag: 9, Value: 7}
	if it := frozen.RewriteIntent(1, 0, 1, PushIntent(RandomTarget(), ctrl)); !reflect.DeepEqual(it.Payload, ctrl) {
		t.Fatalf("stale rewrote control traffic: %+v", it.Payload)
	}

	// Frozen == 0 is mute: pushes vanish, exchanges keep only the pull half,
	// pure pulls survive (the node still wants to learn), answers stop.
	mute := Stale{}
	if it := mute.RewriteIntent(1, 0, 1, PushIntent(RandomTarget(), truth)); it.Kind != None {
		t.Fatalf("mute push not silenced: %+v", it)
	}
	ex := mute.RewriteIntent(1, 0, 1, ExchangeIntent(RandomTarget(), truth))
	if ex.Kind != Exchange || ex.Payload.HasContent() {
		t.Fatalf("mute exchange kept its payload: %+v", ex)
	}
	if it := mute.RewriteIntent(1, 0, 1, PullIntent(RandomTarget())); it.Kind != Pull {
		t.Fatalf("mute dropped its pull: %+v", it)
	}
	if _, ok := mute.RewriteResponse(1, 0, truth, true); ok {
		t.Fatal("mute node answered a pull")
	}
}

// TestBehaviorsThroughEngine drives ExecRound with a spammer installed and
// checks the rewrite lands in delivered traffic — the engine-side wiring, not
// just the behavior's own methods.
func TestBehaviorsThroughEngine(t *testing.T) {
	net, err := New(Config{N: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	net.SetBehavior(0, Spammer{Seed: 11})
	spamSeen := false
	for r := 0; r < 8 && !spamSeen; r++ {
		net.ExecRound(
			func(i int) Intent {
				return PushIntent(RandomTarget(), Message{Tag: TagHoldings, Value: uint64(i) + 1, Rumor: true})
			},
			nil,
			func(i int, inbox []Message) {
				for _, m := range inbox {
					if m.Tag == TagSpam {
						spamSeen = true
					}
					if m.From == net.ID(0) && m.Tag == TagHoldings {
						t.Errorf("round %d: corrupted node's honest payload leaked through", r)
					}
				}
			},
		)
	}
	if !spamSeen {
		t.Fatal("full-rate spammer's junk never delivered")
	}
}

// TestZeroBehaviorIdentity pins the conformance-lock guarantee: a network
// that had a behavior installed and removed runs bit-identically to one that
// never saw the seam at all.
func TestZeroBehaviorIdentity(t *testing.T) {
	run := func(touch bool) ([]RoundReport, []uint64) {
		t.Helper()
		net, err := New(Config{N: 64, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewRumorTracker(net)
		if err := tr.Inject(0, 0); err != nil {
			t.Fatal(err)
		}
		if touch {
			net.SetBehavior(5, Liar{Seed: 1, Registered: tr.Registered})
			net.SetBehavior(5, nil)
		}
		var reports []RoundReport
		for r := 0; r < 10; r++ {
			rep := net.ExecRound(
				func(i int) Intent {
					if h := tr.Held(i); h != 0 {
						return PushIntent(RandomTarget(), Message{Tag: TagHoldings, Value: h, Rumor: true})
					}
					return Silent()
				},
				nil,
				func(i int, inbox []Message) {
					for _, m := range inbox {
						if m.Tag == TagHoldings {
							tr.MarkSet(i, m.Value)
						}
					}
				},
			)
			reports = append(reports, rep)
		}
		held := make([]uint64, 64)
		for i := range held {
			held[i] = tr.Held(i)
		}
		return reports, held
	}
	repA, heldA := run(false)
	repB, heldB := run(true)
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("install-then-remove changed round reports:\n%v\n%v", repA, repB)
	}
	if !reflect.DeepEqual(heldA, heldB) {
		t.Fatal("install-then-remove changed the spread")
	}
}
