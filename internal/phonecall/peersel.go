package phonecall

// Peer-selection seam: a Network normally resolves random targets through
// the uniform stateless contract (RandomPeer / resolveRandom), but the
// resolution strategy is pluggable. A PeerSelector replaces the uniform
// draw with its own deterministic choice — internal/policy implements one
// that selects over a heterogeneous attribute topology under hard
// constraints and weighted scoring. The seam sits exactly where the uniform
// hash sat, so every engine that honors the model contracts (the sharded
// engine, the lock-step runtime, the free-running runtime, the reference
// oracle) inherits policy-aware selection without code changes of its own.

// PeerSelector chooses an initiator's random contact for a round.
//
// Implementations must be pure functions of (round, initiator) and their own
// immutable configuration while a round is executing — SelectPeer is invoked
// from concurrent engine shards, and results must not depend on evaluation
// order or worker count. ok=false means the selector admits no peer for this
// initiator: the engine charges the initiator for the attempted call and
// delivers nothing, exactly like a call to an unresolvable direct target.
type PeerSelector interface {
	SelectPeer(round, initiator int) (peer int, ok bool)
}

// SetPeerSelector installs a peer selector; nil restores the uniform
// contract. Must only be called between rounds. With no selector installed
// the engine's random-target path is byte-for-byte the pre-seam uniform
// fast path.
func (net *Network) SetPeerSelector(s PeerSelector) { net.selector = s }

// PeerSelector returns the installed selector (nil when random targets are
// uniform).
func (net *Network) PeerSelector() PeerSelector { return net.selector }

// RandomContact resolves initiator's random contact for a round: the
// installed selector's choice, or the uniform RandomPeer contract when no
// selector is installed. Pure and goroutine-safe like RandomPeer — this is
// the single entry point external executors (internal/live) use, so policy
// selection follows the Network to every engine.
func (net *Network) RandomContact(round, initiator int) (int, bool) {
	if net.selector != nil {
		return net.selector.SelectPeer(round, initiator)
	}
	return RandomPeer(net.n, net.cfg.Seed, round, initiator), true
}
