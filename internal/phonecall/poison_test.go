package phonecall

import (
	"reflect"
	"testing"
)

// TestPoisonEnforcesCopyOutContract proves the documented "callbacks must
// copy retained messages" contract is actually enforced: a callback that
// illegally retains its inbox slice reads PoisonMessage values the moment
// ExecRound returns, instead of silently stale arena contents.
func TestPoisonEnforcesCopyOutContract(t *testing.T) {
	net, err := New(Config{N: 16, Seed: 1, PoisonInbox: true})
	if err != nil {
		t.Fatal(err)
	}
	var retained []Message // the bug under test: aliasing the arena
	var copied []Message   // the documented usage: copying out
	net.ExecRound(
		func(i int) Intent {
			return PushIntent(DirectTarget(net.ID(0)), Message{Tag: 7, Value: uint64(i)})
		},
		nil,
		func(i int, inbox []Message) {
			retained = inbox
			copied = append([]Message(nil), inbox...)
		},
	)
	if len(retained) == 0 {
		t.Fatal("no messages delivered")
	}
	for k, m := range retained {
		if !reflect.DeepEqual(m, PoisonMessage) {
			t.Errorf("retained[%d] = %+v, want the poison value — the arena was not scrubbed", k, m)
		}
	}
	for k, m := range copied {
		if m.Tag != 7 {
			t.Errorf("copied[%d] = %+v, the copy must keep the real message", k, m)
		}
	}
}

// TestPoisonPreservesCompliantResults runs the mixed workload — which copies
// its inboxes, as the contract demands — with poisoning on and off and
// requires bit-identical delivery logs and metrics, single- and multi-shard.
func TestPoisonPreservesCompliantResults(t *testing.T) {
	const n, rounds = 3 * shardMinNodes / 2, 8
	fail := []int{2, 77, n - 3}
	for _, workers := range []int{1, 4} {
		ref := newMixedWorkload(t, n, workers, fail)
		ref.run(rounds)

		net, err := New(Config{N: n, Seed: 99, Workers: workers, PoisonInbox: true})
		if err != nil {
			t.Fatal(err)
		}
		net.Fail(fail...)
		poisoned := &mixedWorkload{net: net, informed: make([]bool, n), log: make([][]Message, n)}
		poisoned.informed[0] = true
		poisoned.run(rounds)

		if !reflect.DeepEqual(ref.net.Metrics(), poisoned.net.Metrics()) {
			t.Errorf("workers=%d: metrics diverge under poisoning", workers)
		}
		if !reflect.DeepEqual(ref.log, poisoned.log) {
			t.Errorf("workers=%d: delivery logs diverge under poisoning", workers)
		}
	}
}
