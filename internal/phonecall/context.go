package phonecall

import "context"

// Cancellation seam: the protocols in this repository drive the engine
// through plain round loops (`for { net.ExecRound(...) }`) that predate any
// notion of a caller deadline, and rewriting every algorithm to check an
// error per round would change the callback contract everywhere. Instead the
// Network itself carries the caller's context: ExecRound checks it before
// any work of the round and, when the context is done, unwinds the whole
// round loop with a typed panic that the run drivers (internal/harness,
// internal/scenario via RecoverAbort) convert back into the context's error.
// The panic never crosses a package boundary uncontrolled — every driver
// that calls SetContext installs RecoverAbort on the same call path.

// execAbort is the typed panic value that unwinds an execution whose bound
// context was cancelled or timed out.
type execAbort struct{ err error }

// SetContext binds ctx to the network. From the next ExecRound on, a done
// context aborts the execution before the round does any work: the round
// counter does not advance, no intent is evaluated, and the abort unwinds to
// the nearest RecoverAbort. A nil ctx unbinds. Must only be called between
// rounds, like Fail and SetLoss.
func (net *Network) SetContext(ctx context.Context) { net.ctx = ctx }

// checkAbort panics with execAbort when the bound context is done.
func (net *Network) checkAbort() {
	if net.ctx != nil {
		if err := net.ctx.Err(); err != nil {
			panic(execAbort{err})
		}
	}
}

// RecoverAbort is the deferred companion of SetContext: it converts a
// context abort unwinding the round loop into the context's error, leaving
// every other panic untouched. Drivers use it as
//
//	func run(ctx context.Context, ...) (res Result, err error) {
//		net.SetContext(ctx)
//		defer phonecall.RecoverAbort(&err)
//		...
//	}
func RecoverAbort(err *error) {
	switch r := recover().(type) {
	case nil:
	case execAbort:
		if *err == nil {
			*err = r.err
		}
	default:
		panic(r)
	}
}
