package phonecall

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// mixedWorkload drives rounds that exercise every engine path: pushes, pulls
// and exchanges, random and direct targets, dead targets and failures. It
// records everything a protocol could observe — the full delivery sequence of
// every node, in order — so runs can be compared bit for bit.
type mixedWorkload struct {
	net      *Network
	informed []bool
	log      [][]Message // per node: every delivered message, in order
}

func newMixedWorkload(t *testing.T, n, workers int, fail []int) *mixedWorkload {
	t.Helper()
	net, err := New(Config{N: n, Seed: 99, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	net.Fail(fail...)
	wl := &mixedWorkload{net: net, informed: make([]bool, n), log: make([][]Message, n)}
	wl.informed[0] = true
	return wl
}

func (wl *mixedWorkload) run(rounds int) {
	net := wl.net
	for r := 0; r < rounds; r++ {
		net.ExecRound(
			func(i int) Intent {
				switch i % 5 {
				case 0:
					return PushIntent(RandomTarget(), Message{Tag: 1, Rumor: wl.informed[i]})
				case 1:
					return PullIntent(RandomTarget())
				case 2:
					// Direct target, sometimes dead or unknown.
					return PushIntent(DirectTarget(net.ID((i+r)%net.N())), Message{Tag: 2, Value: uint64(i)})
				case 3:
					return ExchangeIntent(RandomTarget(), Message{Tag: 3, Rumor: wl.informed[i]})
				default:
					return Silent()
				}
			},
			func(j int) (Message, bool) {
				if !wl.informed[j] {
					return Message{}, false
				}
				return Message{Tag: 4, Rumor: true, Value: uint64(j)}, true
			},
			func(i int, inbox []Message) {
				for _, m := range inbox {
					if m.Rumor {
						wl.informed[i] = true
					}
					// Copy out: inbox messages alias the engine arena.
					wl.log[i] = append(wl.log[i], m)
				}
			},
		)
	}
}

// TestShardedDeterminism asserts that metrics, informed sets and the exact
// per-node delivery order are identical for every worker count, including the
// failure model. n is above shardMinNodes so multi-worker runs really shard.
func TestShardedDeterminism(t *testing.T) {
	const n = 3 * shardMinNodes / 2
	fail := []int{5, 17, 100, n - 1}
	ref := newMixedWorkload(t, n, 1, fail)
	ref.run(12)
	refMetrics := ref.net.Metrics()

	for _, workers := range []int{2, 3, 8} {
		wl := newMixedWorkload(t, n, workers, fail)
		if wl.net.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", wl.net.Workers(), workers)
		}
		wl.run(12)
		if got := wl.net.Metrics(); !reflect.DeepEqual(refMetrics, got) {
			t.Errorf("workers=%d: metrics differ:\n  1: %+v\n  %d: %+v", workers, refMetrics, workers, got)
		}
		if !reflect.DeepEqual(ref.informed, wl.informed) {
			t.Errorf("workers=%d: informed sets differ", workers)
		}
		if !reflect.DeepEqual(ref.log, wl.log) {
			t.Errorf("workers=%d: delivery logs differ", workers)
		}
	}
}

// TestSmallNetworksRunSingleShard pins the shardMinNodes guard: tiny networks
// must not pay pool and barrier overhead.
func TestSmallNetworksRunSingleShard(t *testing.T) {
	net := newTestNet(t, 100, 1)
	if net.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1 for n=100", net.Workers())
	}
	big, err := New(Config{N: shardMinNodes, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4 for n=%d", big.Workers(), shardMinNodes)
	}
}

// TestZeroSteadyStateAllocs locks in the allocation-free round engine: after
// warm-up, executing a round allocates nothing, sequential or sharded.
func TestZeroSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		workers int
	}{
		{"sequential", 1000, 1},
		{"sharded", shardMinNodes, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := New(Config{N: tc.n, Seed: 5, Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}
			msg := Message{Tag: 1, Rumor: true}
			intent := func(i int) Intent {
				if i%3 == 1 {
					return PullIntent(RandomTarget())
				}
				return PushIntent(RandomTarget(), msg)
			}
			respond := func(j int) (Message, bool) { return Message{Tag: 2}, true }
			deliver := func(i int, inbox []Message) {}
			round := func() { net.ExecRound(intent, respond, deliver) }
			for i := 0; i < 5; i++ {
				round() // warm up: arena growth and pool start-up
			}
			if avg := testing.AllocsPerRun(20, round); avg != 0 {
				t.Errorf("steady-state round allocates %.1f times, want 0", avg)
			}
		})
	}
}

// TestFailedTargetsNotChargedComms pins the Δ accounting fix: contacting a
// failed node is a dropped call and must not count as a communication of the
// dead target (it previously inflated MaxCommsPerRound under the Section 8
// failure model).
func TestFailedTargetsNotChargedComms(t *testing.T) {
	net := newTestNet(t, 10, 3)
	net.Fail(4)
	dead := net.ID(4)
	net.ExecRound(
		func(i int) Intent { return PushIntent(DirectTarget(dead), Message{Tag: 1}) },
		nil, nil,
	)
	if m := net.Metrics(); m.MaxCommsPerRound != 1 {
		t.Fatalf("MaxCommsPerRound = %d, want 1 (dead target must not be charged)", m.MaxCommsPerRound)
	}
	// A live target keeps being charged for its fan-in.
	net2 := newTestNet(t, 10, 3)
	alive := net2.ID(4)
	net2.ExecRound(
		func(i int) Intent {
			if i == 4 {
				return Silent()
			}
			return PushIntent(DirectTarget(alive), Message{Tag: 1})
		},
		nil, nil,
	)
	if m := net2.Metrics(); m.MaxCommsPerRound != 9 {
		t.Fatalf("MaxCommsPerRound = %d, want 9 for the live hot spot", m.MaxCommsPerRound)
	}
}

// TestInboxOrderMatchesInitiatorOrder pins the arena ordering contract: a
// node's inbox lists pushes in initiator-index order, with the node's own
// pull response at its initiator position.
func TestInboxOrderMatchesInitiatorOrder(t *testing.T) {
	net := newTestNet(t, 8, 11)
	dst := net.ID(3)
	var got []uint64
	net.ExecRound(
		func(i int) Intent {
			switch i {
			case 0, 1, 6, 7:
				return PushIntent(DirectTarget(dst), Message{Tag: 1, Value: uint64(i)})
			case 3:
				return PullIntent(DirectTarget(net.ID(5)))
			default:
				return Silent()
			}
		},
		func(j int) (Message, bool) { return Message{Tag: 2, Value: 100 + uint64(j)}, true },
		func(i int, inbox []Message) {
			if i != 3 {
				return
			}
			for _, m := range inbox {
				got = append(got, m.Value)
			}
		},
	)
	// Pushes from 0 and 1, then node 3's own pull response (initiator
	// position 3), then pushes from 6 and 7.
	want := []uint64{0, 1, 105, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inbox order = %v, want %v", got, want)
	}
}

// TestResolveRandomMatchesStatelessHash pins resolveRandom's contract: the
// prefix-cached hash must stay bit-identical to the documented stateless
// rng.BoundedUint64(n, seed, 0xc0ffee, round, initiator, attempt) key
// sequence. The determinism tests cannot catch a drift here (it would shift
// every worker count uniformly), but it would silently break seeded
// reproducibility of all recorded results.
func TestResolveRandomMatchesStatelessHash(t *testing.T) {
	net := newTestNet(t, 257, 21)
	for _, round := range []int{0, 1, 7} {
		net.round = round
		net.refreshRoundMix()
		for initiator := 0; initiator < net.n; initiator += 13 {
			got := net.resolveRandom(initiator)
			want := -1
			for attempt := uint64(0); ; attempt++ {
				j := int(rng.BoundedUint64(uint64(net.n), net.cfg.Seed, 0xc0ffee, uint64(round), uint64(initiator), attempt))
				if j != initiator {
					want = j
					break
				}
			}
			if got != want {
				t.Fatalf("round=%d initiator=%d: resolveRandom = %d, BoundedUint64 = %d", round, initiator, got, want)
			}
		}
	}
}

func TestIDTable(t *testing.T) {
	tab := newIDTable(1000)
	for i := 1; i <= 1000; i++ {
		tab.put(NodeID(i*7), i)
	}
	for i := 1; i <= 1000; i++ {
		got, ok := tab.get(NodeID(i * 7))
		if !ok || got != i {
			t.Fatalf("get(%d) = %d, %v", i*7, got, ok)
		}
	}
	if _, ok := tab.get(NodeID(13)); ok {
		t.Fatal("absent key reported present")
	}
	if _, ok := tab.get(NoNode); ok {
		t.Fatal("NoNode must never be present")
	}
}
