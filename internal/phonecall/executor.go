package phonecall

import "repro/internal/rng"

// Execution seam: a Network normally runs its rounds on the built-in sharded
// engine (engine.go), but the round execution strategy is pluggable. An
// external RoundExecutor receives the exact per-node callback triple every
// protocol in this repository is written against and executes the round by
// whatever means it likes — internal/live implements one that runs every node
// as its own goroutine exchanging real messages over a transport. Everything
// the Network owns (membership, the ID directory, loss state, metrics, the
// OnRoundStart hook, the observer seam) keeps working unchanged, which is what
// lets the closed algorithms (Cluster2, ClusterPUSH-PULL, the baselines) run
// on a live message-passing runtime without touching their code.
//
// The model contracts an external executor must honor to stay bit-identical
// to the built-in engine are documented in DESIGN.md §7 (ID assignment,
// random targets, loss, inbox order) and exported below as RandomPeer and
// CallLost so executors share one implementation instead of re-deriving the
// hash shapes.

// RoundDelta is what an external executor accounts for one executed round.
// The Network merges it into its cumulative metrics exactly like the engine
// merges its per-worker stat shards.
type RoundDelta struct {
	// Messages counts payload-carrying messages (push payloads and pull
	// responses); Control counts pull requests; Bits their total size.
	Messages int64
	Control  int64
	Bits     int64
	// MaxComms is the round's Δ: the most communications any single live node
	// participated in.
	MaxComms int
	// Sent holds per-node sent-message deltas (may be nil). The slice is read
	// synchronously during the merge; executors may reuse it across rounds.
	Sent []int64
}

// RoundExecutor executes one synchronous round on behalf of a Network.
//
// ExecNetworkRound is invoked by Network.ExecRound after the round counter
// has advanced, the OnRoundStart hook has run and the observer wrappers have
// been applied; intentOf is never nil (an all-nil round is handled before
// delegation). The executor must uphold the engine's callback contract: the
// callbacks of node i may only be invoked with node i's own state in scope,
// intentOf exactly once per live node, responseOf at most once per live node
// that a live pull reached, deliver once per live node that received at least
// one message with the inbox ordered by initiator index (a puller's own
// response at its initiator position).
type RoundExecutor interface {
	ExecNetworkRound(
		net *Network,
		round int,
		intentOf func(i int) Intent,
		responseOf func(i int) (Message, bool),
		deliver func(i int, inbox []Message),
	) RoundDelta
}

// SetExecutor installs an external round executor; nil restores the built-in
// sharded engine. Must only be called between rounds.
func (net *Network) SetExecutor(ex RoundExecutor) { net.executor = ex }

// Executor returns the installed external executor (nil when the built-in
// engine runs the rounds).
func (net *Network) Executor() RoundExecutor { return net.executor }

// PoisonInbox reports whether the inbox-poisoning debug mode is on, so
// external executors can honor the same copy-out contract the engine
// enforces (overwrite delivered inboxes with PoisonMessage after the
// delivery callback returns).
func (net *Network) PoisonInbox() bool { return net.cfg.PoisonInbox }

// runExternal delegates the round to the installed executor and merges its
// delta into the Network's metrics.
func (net *Network) runExternal(
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
	deliver func(i int, inbox []Message),
) RoundReport {
	d := net.executor.ExecNetworkRound(net, net.round, intentOf, responseOf, deliver)
	net.metrics.Messages += d.Messages
	net.metrics.ControlMessages += d.Control
	net.metrics.Bits += d.Bits
	if d.MaxComms > net.metrics.MaxCommsPerRound {
		net.metrics.MaxCommsPerRound = d.MaxComms
	}
	for i, s := range d.Sent {
		net.metrics.MessagesSent[i] += s
	}
	return RoundReport{
		Round:    net.round,
		Messages: d.Messages + d.Control,
		Bits:     d.Bits,
		MaxComms: d.MaxComms,
	}
}

// Derivation tags of the model's stateless hashes (DESIGN.md §7).
const (
	// randomTargetTag separates the random-contact stream.
	randomTargetTag = 0xc0ffee
	// lossTag separates the oblivious per-call drop stream.
	lossTag = 0x70ca1
)

// RandomPeer returns initiator's uniformly random contact for the round: the
// model's documented contract rng.BoundedUint64(n, seed, 0xc0ffee, round,
// initiator, attempt) with attempt incremented until the result differs from
// the initiator. It is a pure function, safe to evaluate from any goroutine,
// and bit-identical to the engine's cached-prefix fast path (locked in by
// TestRandomPeerMatchesEngine).
func RandomPeer(n int, seed uint64, round, initiator int) int {
	base := rng.MixPrefix(seed, randomTargetTag, uint64(round)).Absorb(uint64(initiator))
	for attempt := uint64(0); ; attempt++ {
		j := int(rng.Bounded(base.Absorb(attempt).Finalize(5), uint64(n)))
		if j != initiator {
			return j
		}
	}
}

// CallLost reports whether initiator's round-r call is dropped under the
// oblivious per-call loss process: the model's documented contract
// float64(rng.Mix(lossSeed, 0x70ca1, round, initiator) >> 11) / 2⁵³ < rate.
// Pure and goroutine-safe, bit-identical to the engine's cached-prefix path.
func CallLost(rate float64, lossSeed uint64, round, initiator int) bool {
	if rate <= 0 {
		return false
	}
	h := rng.Mix(lossSeed, lossTag, uint64(round), uint64(initiator))
	return rng.Unit(h) < rate
}
