package phonecall

// idTable maps NodeID to node index. It is an open-addressing hash table with
// a power-of-two capacity and linear probing, built once at network creation
// and read-only afterwards, which makes it safe to query concurrently from
// every engine shard. Replacing the former map[NodeID]int removes both the
// per-lookup hashing overhead and the map's pointer chasing from the round
// engine's direct-addressing hot path.
//
// The zero NodeID (NoNode) is never inserted, so it doubles as the
// empty-slot sentinel.
type idTable struct {
	mask uint64
	keys []NodeID
	vals []int32
}

// newIDTable returns a table sized for count entries at a load factor of at
// most 1/2, so probe sequences stay short even in the unlucky tail.
func newIDTable(count int) *idTable {
	size := 16
	for size < 2*count {
		size <<= 1
	}
	return &idTable{
		mask: uint64(size - 1),
		keys: make([]NodeID, size),
		vals: make([]int32, size),
	}
}

// hashID mixes a node ID into a table slot. IDs are uniformly random 63-bit
// values already, but one multiply-xor round keeps probe lengths short even
// for externally supplied IDs with correlated low bits.
func (t *idTable) hashID(id NodeID) uint64 {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & t.mask
}

// put inserts id -> idx. The caller guarantees id is non-zero and not yet
// present (network construction checks with get first).
func (t *idTable) put(id NodeID, idx int) {
	slot := t.hashID(id)
	for t.keys[slot] != NoNode {
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = id
	t.vals[slot] = int32(idx)
}

// get returns the index stored for id.
func (t *idTable) get(id NodeID) (int, bool) {
	if id == NoNode {
		return 0, false
	}
	slot := t.hashID(id)
	for {
		k := t.keys[slot]
		if k == id {
			return int(t.vals[slot]), true
		}
		if k == NoNode {
			return 0, false
		}
		slot = (slot + 1) & t.mask
	}
}
