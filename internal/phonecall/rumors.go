package phonecall

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// This file implements per-rumor informed tracking for dynamic, multi-rumor
// workloads (internal/scenario). Static single-rumor executions keep their
// own ad-hoc informed sets; the tracker exists for scenarios where nodes
// crash, rejoin uninformed, and several rumors spread concurrently, so that
// "how many live nodes hold rumor r" stays O(1) to query under churn.

// RumorID identifies one rumor in a multi-rumor workload. The tracker in
// this file handles the small dense range [0, MaxRumors); wider IDs belong to
// the scalable rumor-set layer (internal/rumorset), which this bitmask
// tracker is the small-set specialization of.
type RumorID uint32

// MaxRumors bounds the number of concurrently tracked rumors in the bitmask
// fast path: a node's holdings are one uint64 bitmask, which is also how
// protocols encode "all rumors I hold" in a single message value. Workloads
// with more (or sparser) rumor IDs run on internal/rumorset instead.
const MaxRumors = 64

// RumorTracker tracks which nodes hold which rumors and how many live nodes
// hold each, staying consistent across Fail/Revive churn.
//
// Concurrency contract (mirroring the engine's callback contract): Mark and
// MarkSet for node i may only be invoked from node i's own callbacks — the
// holdings word of a node is written only by its owner, while the live
// counters are atomic and may be bumped from any shard. Everything else
// (Register, Inject, Fail, Revive, LiveInformed, …) is coordinator-only and
// must run between rounds.
type RumorTracker struct {
	net  *Network
	held []uint64 // per node: bitmask of held rumors, written by the owner only
	live [MaxRumors]atomic.Int64
	// used is the bitmask of registered rumor IDs. Registration is
	// coordinator-only, but MarkSet reads the mask from node delivery
	// callbacks, so the word is atomic: a Register interleaved with a running
	// round (legal on the lock-step runtime, whose coordinator phases overlap
	// node goroutine teardown) must not race the mask reads.
	used atomic.Uint64
	// lost counts Inject calls that landed on a currently-failed node: the
	// held bit is set but a later Revive erases it (rejoin-uninformed), so
	// without this counter the event would be a silent no-op. Coordinator-only.
	lost int64
}

// NewRumorTracker returns an empty tracker for the network.
func NewRumorTracker(net *Network) *RumorTracker {
	return &RumorTracker{net: net, held: make([]uint64, net.n)}
}

// Register declares a rumor ID so that marks for it are counted. Registering
// an already-registered ID is a no-op. It returns an error for IDs outside
// [0, MaxRumors).
func (t *RumorTracker) Register(r RumorID) error {
	if r >= MaxRumors {
		return fmt.Errorf("phonecall: rumor id %d outside [0,%d)", r, MaxRumors)
	}
	t.used.Or(1 << r)
	return nil
}

// Registered returns the bitmask of registered rumor IDs.
func (t *RumorTracker) Registered() uint64 { return t.used.Load() }

// Inject registers the rumor and marks the node as holding it (the scenario
// InjectRumor event). Injecting at a currently-failed node still sets the
// held bit (the node knows the rumor until it is restarted) but counts as a
// lost inject, because a Revive erases the bit again. Coordinator-only.
func (t *RumorTracker) Inject(node int, r RumorID) error {
	if node < 0 || node >= t.net.n {
		return fmt.Errorf("phonecall: inject node %d outside [0,%d)", node, t.net.n)
	}
	if err := t.Register(r); err != nil {
		return err
	}
	if t.net.failed[node] {
		t.lost++
	}
	t.Mark(node, r)
	return nil
}

// LostInjects returns the number of Inject calls that landed on a node that
// was failed at injection time — rumors a rejoin-uninformed Revive silently
// forgets. Coordinator-only, like Inject.
func (t *RumorTracker) LostInjects() int64 { return t.lost }

// Mark records that the node holds the rumor. Idempotent; unregistered rumors
// are ignored. Callable from node's own delivery callback.
func (t *RumorTracker) Mark(node int, r RumorID) {
	t.MarkSet(node, 1<<r)
}

// MarkSet records that the node holds every rumor in the bitmask (as decoded
// from a received message). Unregistered bits are ignored. Callable from
// node's own delivery callback.
func (t *RumorTracker) MarkSet(node int, set uint64) {
	set &= t.used.Load()
	fresh := set &^ t.held[node]
	if fresh == 0 {
		return
	}
	t.held[node] |= fresh
	if t.net.failed[node] {
		return
	}
	for fresh != 0 {
		r := bits.TrailingZeros64(fresh)
		fresh &= fresh - 1
		t.live[r].Add(1)
	}
}

// Held returns the bitmask of rumors the node holds.
func (t *RumorTracker) Held(node int) uint64 { return t.held[node] }

// Has reports whether the node holds the rumor.
func (t *RumorTracker) Has(node int, r RumorID) bool { return t.held[node]&(1<<r) != 0 }

// LiveInformed returns the number of live nodes currently holding the rumor.
func (t *RumorTracker) LiveInformed(r RumorID) int {
	if r >= MaxRumors {
		return 0
	}
	return int(t.live[r].Load())
}

// Fail fails the nodes on the underlying network, keeping the live-informed
// counters consistent: an informed node that crashes no longer counts.
// Already-failed and out-of-range indexes are ignored. Coordinator-only.
func (t *RumorTracker) Fail(nodes ...int) {
	for _, i := range nodes {
		if i < 0 || i >= t.net.n || t.net.failed[i] {
			continue
		}
		t.net.Fail(i)
		t.adjust(i, -1)
	}
}

// Revive revives the nodes on the underlying network into the uninformed
// state: a rejoining node forgets every rumor it held (the scenario JoinAt
// semantics — late-started or restarted nodes begin empty). Live and
// out-of-range indexes are ignored. Coordinator-only.
func (t *RumorTracker) Revive(nodes ...int) {
	for _, i := range nodes {
		if i < 0 || i >= t.net.n || !t.net.failed[i] {
			continue
		}
		t.net.Revive(i)
		t.held[i] = 0
	}
}

// adjust adds delta to the live counter of every rumor the node holds.
func (t *RumorTracker) adjust(node int, delta int64) {
	set := t.held[node]
	for set != 0 {
		r := bits.TrailingZeros64(set)
		set &= set - 1
		t.live[r].Add(delta)
	}
}
