package phonecall

import (
	"runtime"
	"sync"
)

// This file implements the sharded, allocation-free round engine behind
// Network.ExecRound. See DESIGN.md ("Round engine") for the full architecture;
// in short, one synchronous round is executed as a fixed pipeline of passes
// over flat arrays, each pass sharded across a persistent worker pool:
//
//	passIntents  (by initiator) evaluate intents, resolve targets, count
//	passMerge    (by target)    merge per-worker counts, compute responses
//	passSelf     (by node)      add pull responses to the receivers' counts
//	  — coordinator: prefix offsets into the shared message arena —
//	passCursor   (by target)    per-(worker,target) write cursors
//	passFill     (by initiator) copy messages into the arena
//	passDeliver  (by target)    invoke the delivery callbacks
//
// Per-node inboxes are contiguous spans of a single []Message arena that is
// reused round after round; after warm-up a round performs no allocations.
// Every cross-shard quantity is either accumulated in per-worker shards that
// are merged behind a barrier or written at indexes owned by exactly one
// worker, so the engine is data-race free and — because random targets come
// from a stateless hash of (seed, round, initiator) and inbox slots are
// ordered by initiator index — produces bit-identical results for every
// worker count.

// shardMinNodes is the network size below which rounds always run on a single
// shard: below it the pass barriers cost more than the work they split.
const shardMinNodes = 4096

// shardMemBudget bounds the per-worker destination-shard state (12 bytes per
// (worker, node)). Every round clears and merges all of it, so past this
// budget extra shards cost more memory bandwidth than their parallelism
// returns; the effective worker count is clamped to stay within it.
const shardMemBudget = 256 << 20

// op classifies a node's intent for the round, after normalization.
type op uint8

const (
	opNone     op = iota
	opPush        // push with payload
	opPull        // pull, or exchange without content: request + response
	opExchange    // exchange with content: payload push + response
)

// noTarget marks an unresolved or dead target in Network.tgt.
const noTarget int32 = -1

// destCell accumulates, per (worker, destination node), what the worker's
// initiators did to that node. After the cursor pass the msgs field is
// recycled as the worker's write cursor into the message arena.
type destCell struct {
	msgs  int32 // messages destined to the node (then: arena write cursor)
	pulls int32 // pulls addressed to the node
	comms int32 // communications the node participates in (Δ accounting)
}

// workerStats is a per-worker metrics shard, merged once per round. Padded to
// a cache line so shards on adjacent indexes do not false-share.
type workerStats struct {
	messages   int64 // payload-carrying messages
	control    int64 // pull requests
	bits       int64
	inboxLen   int64 // messages landing in the worker's node range
	pullEvents int64 // live pulls initiated by the worker's node range
	maxComms   int32
	_          [20]byte
}

// passID names one engine pass for the worker pool.
type passID uint8

const (
	pIntents passID = iota + 1
	pMerge
	pSelf
	pCursor
	pFill
	pDeliver
)

// passReq is one unit of work handed to a pool worker.
type passReq struct {
	net *Network
	p   passID
}

// pool is the persistent worker pool. It deliberately does not reference the
// Network: workers receive it with every request and drop it afterwards, so
// an abandoned Network becomes collectible and its cleanup closes the pool.
type pool struct {
	ch []chan passReq // index 0 belongs to the caller goroutine, unused
	wg sync.WaitGroup
}

func newPool(workers int) *pool {
	pl := &pool{ch: make([]chan passReq, workers)}
	for w := 1; w < workers; w++ {
		ch := make(chan passReq, 1)
		pl.ch[w] = ch
		go func(w int, ch chan passReq) {
			for req := range ch {
				req.net.runPass(req.p, w)
				pl.wg.Done()
			}
		}(w, ch)
	}
	return pl
}

// close terminates the pool's goroutines. Invoked by the Network's runtime
// cleanup once the Network is unreachable.
func (pl *pool) close() {
	for _, ch := range pl.ch {
		if ch != nil {
			close(ch)
		}
	}
}

// initEngine sizes the engine state for n nodes and workers shards and, for
// multi-shard engines, starts the worker pool.
func (net *Network) initEngine(workers int) {
	n := net.n
	if workers < 1 {
		workers = 1
	}
	if n < shardMinNodes {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if cap := shardMemBudget / (12 * n); workers > cap {
		workers = max(cap, 1)
	}
	net.nw = workers

	net.cells = make([][]destCell, workers)
	for w := range net.cells {
		net.cells[w] = make([]destCell, n)
	}
	net.spans = make([][2]int, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		net.spans[w] = [2]int{lo, hi}
	}
	net.wstats = make([]workerStats, workers)
	net.rangeBase = make([]int32, workers)

	net.roundMixRound = -1
	net.ops = make([]op, n)
	net.tgt = make([]int32, n)
	net.staged = make([]Message, n)
	net.resp = make([]Message, n)
	net.respOK = make([]bool, n)
	net.inCount = make([]int32, n)
	net.inOff = make([]int32, n)

	if workers > 1 {
		net.pool = newPool(workers)
		runtime.AddCleanup(net, func(pl *pool) { pl.close() }, net.pool)
	}
}

// runParallel executes one pass on every shard and waits for the barrier.
// Shard 0 runs on the calling goroutine.
func (net *Network) runParallel(p passID) {
	if net.nw == 1 {
		net.runPass(p, 0)
		return
	}
	net.pool.wg.Add(net.nw - 1)
	for w := 1; w < net.nw; w++ {
		net.pool.ch[w] <- passReq{net: net, p: p}
	}
	net.runPass(p, 0)
	net.pool.wg.Wait()
}

func (net *Network) runPass(p passID, w int) {
	lo, hi := net.spans[w][0], net.spans[w][1]
	switch p {
	case pIntents:
		net.passIntents(w, lo, hi)
	case pMerge:
		net.passMerge(w, lo, hi)
	case pSelf:
		net.passSelf(w, lo, hi)
	case pCursor:
		net.passCursor(w, lo, hi)
	case pFill:
		net.passFill(w, lo, hi)
	case pDeliver:
		net.passDeliver(lo, hi)
	}
}

// ExecRound executes one synchronous round.
//
// intentOf is invoked once per live node and returns that node's initiated
// communication. responseOf is invoked at most once per live node that is
// pulled from and returns the node's address-oblivious response (ok=false
// means the node does not respond this round). deliver is invoked once per
// live node that received at least one message, with the node's inbox; inbox
// slices alias the engine's reusable message arena and are only valid during
// the callback — callbacks that retain messages must copy them out.
//
// Any of the callbacks may be nil. The callbacks of a node may only touch
// that node's own state: the engine invokes them from concurrent shards when
// the network is configured with more than one worker.
func (net *Network) ExecRound(
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
	deliver func(i int, inbox []Message),
) RoundReport {
	net.checkAbort()
	net.round++
	if net.roundHook != nil {
		// Scenario hook: may Fail, Revive or SetLoss before this round's
		// intents are evaluated (coordinator goroutine, so those mutations
		// happen-before every pass).
		net.roundHook(net.round)
	}
	obs := net.observer
	if obs != nil {
		obs.BeginRound(net.round, RoundInfo{
			HasIntent:   intentOf != nil,
			HasResponse: responseOf != nil,
			HasDeliver:  deliver != nil,
		})
	}
	if intentOf == nil {
		// No initiator means an empty round: nothing is sent, charged or
		// delivered.
		rep := RoundReport{Round: net.round}
		if obs != nil {
			obs.EndRound(rep)
		}
		return rep
	}
	if net.corrupted > 0 {
		// Byzantine seam: behaviors rewrite outgoing traffic before the
		// observer taps it (verifiers check what is actually sent) and
		// before any executor delegation (the live lock-step runtime
		// inherits behaviors through the wrapped callbacks).
		intentOf, responseOf = net.behaviorCallbacks(intentOf, responseOf)
	}
	if obs != nil {
		intentOf, responseOf, deliver = net.observedCallbacks(obs, intentOf, responseOf, deliver)
	}
	if net.executor != nil {
		// An external executor (internal/live) runs the round; the Network
		// merges its delta exactly like the engine's own worker shards.
		rep := net.runExternal(intentOf, responseOf, deliver)
		if obs != nil {
			obs.EndRound(rep)
		}
		return rep
	}

	net.curIntent = intentOf
	net.curResponse = responseOf
	net.curDeliver = deliver
	net.refreshRoundMix()
	if net.lossRate > 0 {
		net.refreshLossMix()
	}

	net.runParallel(pIntents)
	pulls := int64(0)
	for w := range net.wstats {
		pulls += net.wstats[w].pullEvents
	}
	// Rounds without live pulls (all push traffic — the most common protocol
	// rounds) have no responses: the merge pass computes the final inbox
	// counts directly and the self-response pass is skipped.
	net.noPulls = pulls == 0
	net.runParallel(pMerge)
	if !net.noPulls {
		net.runParallel(pSelf)
	}

	// Coordinator step: per-shard base offsets into the arena, then size it.
	total := int64(0)
	for w := 0; w < net.nw; w++ {
		net.rangeBase[w] = int32(total)
		total += net.wstats[w].inboxLen
	}
	if int(total) > cap(net.slab) {
		net.slab = make([]Message, total)
	}
	net.slab = net.slab[:total]

	net.runParallel(pCursor)
	if total > 0 {
		net.runParallel(pFill)
	}
	if deliver != nil && total > 0 {
		net.runParallel(pDeliver)
	}

	// Merge the per-worker metric shards.
	var msgs, control, bits int64
	maxComms := 0
	for w := range net.wstats {
		st := &net.wstats[w]
		msgs += st.messages
		control += st.control
		bits += st.bits
		if int(st.maxComms) > maxComms {
			maxComms = int(st.maxComms)
		}
		*st = workerStats{}
	}
	net.metrics.Messages += msgs
	net.metrics.ControlMessages += control
	net.metrics.Bits += bits
	if maxComms > net.metrics.MaxCommsPerRound {
		net.metrics.MaxCommsPerRound = maxComms
	}

	net.curIntent = nil
	net.curResponse = nil
	net.curDeliver = nil

	rep := RoundReport{
		Round:    net.round,
		Messages: msgs + control,
		Bits:     bits,
		MaxComms: maxComms,
	}
	if obs != nil {
		obs.EndRound(rep)
	}
	return rep
}

// passIntents evaluates the intents of the shard's initiators, resolves their
// targets and accounts everything the initiator side determines: payload and
// control messages, bits, per-node sent counters and the per-destination
// message/pull/communication counts used by the later passes.
func (net *Network) passIntents(w, lo, hi int) {
	cells := net.cells[w]
	clear(cells)
	st := &net.wstats[w]
	intentOf := net.curIntent
	sent := net.metrics.MessagesSent
	sel := net.selector
	round := net.round

	for i := lo; i < hi; i++ {
		if net.failed[i] {
			net.ops[i] = opNone
			continue
		}
		it := intentOf(i)
		if it.Kind == None {
			net.ops[i] = opNone
			continue
		}
		var j int
		var ok bool
		if it.Target.Random {
			if sel != nil {
				j, ok = sel.SelectPeer(round, i)
			} else {
				j, ok = net.resolveRandom(i), true
			}
		} else {
			j, ok = net.resolveTarget(i, it.Target)
		}
		cells[i].comms++
		// Δ accounting (the paper's MaxCommsPerRound): only live nodes
		// participate in a communication — a failed target drops the call, so
		// it is not charged (Section 8 failure model). A call lost in transit
		// (SetLoss) follows the same rule: the initiator attempted, the
		// target never participated.
		live := ok && !net.failed[j]
		if live && net.lossRate > 0 && net.dropCall(i) {
			live = false
		}
		if live {
			cells[j].comms++
			net.tgt[i] = int32(j)
		} else {
			net.tgt[i] = noTarget
		}
		switch it.Kind {
		case Push:
			msg := it.Payload
			msg.From = net.ids[i]
			st.messages++
			st.bits += int64(net.MessageSize(msg))
			sent[i]++
			if live {
				cells[j].msgs++
			}
			net.ops[i] = opPush
			net.staged[i] = msg
		case Pull, Exchange:
			if it.Kind == Exchange && it.Payload.HasContent() {
				msg := it.Payload
				msg.From = net.ids[i]
				st.messages++
				st.bits += int64(net.MessageSize(msg))
				sent[i]++
				if live {
					cells[j].msgs++
				}
				net.ops[i] = opExchange
				net.staged[i] = msg
			} else {
				st.control++
				st.bits += int64(net.controlSize())
				sent[i]++
				net.ops[i] = opPull
			}
			if live {
				cells[j].pulls++
				st.pullEvents++
			}
		default:
			net.ops[i] = opNone
		}
	}
}

// passMerge merges the per-worker destination counts for the shard's node
// range, computes each pulled node's address-oblivious response (invoking
// responseOf exactly once per pulled node) and accounts the response fan-out.
// In pull-free rounds it also finalizes the shard's inbox length, replacing
// the skipped passSelf.
func (net *Network) passMerge(w, lo, hi int) {
	st := &net.wstats[w]
	respond := net.curResponse
	sent := net.metrics.MessagesSent
	nw := net.nw
	maxComms := st.maxComms

	if net.noPulls {
		total := int64(0)
		for d := lo; d < hi; d++ {
			var msgs, comms int32
			for w2 := 0; w2 < nw; w2++ {
				c := &net.cells[w2][d]
				msgs += c.msgs
				comms += c.comms
			}
			if comms > maxComms {
				maxComms = comms
			}
			net.inCount[d] = msgs
			total += int64(msgs)
		}
		st.inboxLen = total
		st.maxComms = maxComms
		return
	}

	for d := lo; d < hi; d++ {
		var msgs, pulls, comms int32
		for w2 := 0; w2 < nw; w2++ {
			c := &net.cells[w2][d]
			msgs += c.msgs
			pulls += c.pulls
			comms += c.comms
		}
		if comms > maxComms {
			maxComms = comms
		}
		if pulls > 0 {
			// Only live nodes are pulled (passIntents drops dead targets), so
			// d may respond. The single response is handed to every puller
			// and each copy is charged, exactly as in the model.
			ok := false
			if respond != nil {
				m, has := respond(d)
				if has {
					m.From = net.ids[d]
					net.resp[d] = m
					size := int64(net.MessageSize(m))
					st.messages += int64(pulls)
					st.bits += size * int64(pulls)
					sent[d] += int64(pulls)
					ok = true
				}
			}
			net.respOK[d] = ok
		}
		net.inCount[d] = msgs
	}
	st.maxComms = maxComms
}

// passSelf adds each puller's incoming response to its own inbox count. It
// runs after the merge barrier because a puller's target — and hence the
// respOK flag it depends on — can live in any shard.
func (net *Network) passSelf(w, lo, hi int) {
	cells := net.cells[w]
	total := int64(0)
	for i := lo; i < hi; i++ {
		if o := net.ops[i]; o == opPull || o == opExchange {
			if t := net.tgt[i]; t != noTarget && net.respOK[t] {
				cells[i].msgs++
				net.inCount[i]++
			}
		}
		total += int64(net.inCount[i])
	}
	net.wstats[w].inboxLen = total
}

// passCursor turns the per-(worker,destination) counts into write cursors
// into the message arena. A destination's inbox starts at inOff[d]; within it
// worker w's messages start after those of workers < w, and each worker fills
// its span in ascending initiator order, so the concatenation is ordered
// exactly like the sequential engine's append order — by initiator index,
// with a puller's own response sitting at its initiator position.
func (net *Network) passCursor(w, lo, hi int) {
	run := net.rangeBase[w]
	nw := net.nw
	for d := lo; d < hi; d++ {
		net.inOff[d] = run
		cur := run
		for w2 := 0; w2 < nw; w2++ {
			c := &net.cells[w2][d]
			count := c.msgs
			c.msgs = cur
			cur += count
		}
		run += net.inCount[d]
	}
}

// passFill copies the round's messages into the arena: each initiator's
// pushed payload at its target's cursor and each puller's received response
// at its own cursor.
func (net *Network) passFill(w, lo, hi int) {
	cells := net.cells[w]
	for i := lo; i < hi; i++ {
		o := net.ops[i]
		if o == opNone {
			continue
		}
		t := net.tgt[i]
		if o == opPush || o == opExchange {
			if t != noTarget {
				c := &cells[t]
				net.slab[c.msgs] = net.staged[i]
				c.msgs++
			}
		}
		if (o == opPull || o == opExchange) && t != noTarget && net.respOK[t] {
			m := net.resp[t]
			c := &cells[i]
			net.slab[c.msgs] = m
			c.msgs++
		}
	}
}

// PoisonMessage is the value every inbox slot is overwritten with under
// Config.PoisonInbox, as soon as the slot's delivery callback returns. The
// field values are deliberately implausible (the zero From never names a
// node) so an illegally retained message is recognizable at the point of
// misuse rather than reading as plausible stale traffic.
var PoisonMessage = Message{
	From:  NoNode,
	Value: 0xdead_dead_dead_dead,
	Bits:  -1,
	Tag:   0xEF,
}

// passDeliver hands every non-empty inbox to the delivery callback.
func (net *Network) passDeliver(lo, hi int) {
	deliver := net.curDeliver
	poison := net.cfg.PoisonInbox
	for d := lo; d < hi; d++ {
		if c := net.inCount[d]; c > 0 {
			off := net.inOff[d]
			inbox := net.slab[off : off+c : off+c]
			deliver(d, inbox)
			if poison {
				// Enforce the copy-out contract: the span is dead the moment
				// the callback returns.
				for k := range inbox {
					inbox[k] = PoisonMessage
				}
			}
		}
	}
}
