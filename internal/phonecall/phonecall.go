// Package phonecall implements the random phone call model with direct
// addressing used by Haeupler and Malkhi (PODC 2014).
//
// The model (Section 2 of the paper): a complete network of n nodes with
// unique IDs drawn from a polynomially large ID space. Time advances in
// synchronous rounds. In every round each live node may initiate at most one
// communication: it either PUSHes a message to a target or PULLs a message
// from a target, where the target is a uniformly random node or a node whose
// ID the initiator learned earlier (direct addressing). Responses to PULLs
// are address-oblivious: a node exposes a single response per round that is
// handed to every puller.
//
// The Network type is the simulation substrate: it resolves contacts,
// delivers inboxes, injects failures, and accounts rounds, messages, bits and
// the per-round number of communications each node participates in (the
// quantity the paper calls Δ). Protocols are written as per-node callbacks;
// a node's decisions may only depend on its own state and its inbox.
package phonecall

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/rng"
)

// NodeID is a node address from the polynomially large ID space. The zero
// value means "no node" (the paper's follow = ∞).
type NodeID uint64

// NoNode is the absent-node sentinel.
const NoNode NodeID = 0

// Kind describes the communication a node initiates in a round.
type Kind uint8

// Communication kinds. A node that stays silent uses None. Exchange models
// the classical random phone call in which the caller both PUSHes its message
// and PULLs the callee's response over the same connection; it is used by the
// baseline algorithms (uniform PUSH-PULL, Karp et al.), not by the clustering
// algorithms of the paper.
const (
	None Kind = iota
	Push
	Pull
	Exchange
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Push:
		return "push"
	case Pull:
		return "pull"
	case Exchange:
		return "exchange"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Target identifies whom a node contacts: either a uniformly random node or a
// specific node by ID (direct addressing).
type Target struct {
	Random bool
	ID     NodeID
}

// RandomTarget returns a target that the engine resolves to a uniformly
// random other node.
func RandomTarget() Target { return Target{Random: true} }

// DirectTarget returns a direct-addressing target.
func DirectTarget(id NodeID) Target { return Target{ID: id} }

// Message is the unit of communication. Its size in bits is derived from its
// content unless Bits is set explicitly.
type Message struct {
	// Tag is a protocol-defined discriminator.
	Tag uint8
	// From is filled in by the engine with the sender's ID.
	From NodeID
	// Rumor marks that the message carries the b-bit broadcast payload.
	Rumor bool
	// Value carries a counter, size, or coin flip (O(log n) bits).
	Value uint64
	// IDs carries node IDs (each O(log n) bits).
	IDs []NodeID
	// Bits overrides the computed size when non-zero.
	Bits int
}

// Intent is a node's initiated communication for one round.
type Intent struct {
	Kind    Kind
	Target  Target
	Payload Message // used for Push
}

// Silent is the do-nothing intent.
func Silent() Intent { return Intent{Kind: None} }

// PushIntent builds a push intent.
func PushIntent(t Target, m Message) Intent { return Intent{Kind: Push, Target: t, Payload: m} }

// PullIntent builds a pull intent.
func PullIntent(t Target) Intent { return Intent{Kind: Pull, Target: t} }

// ExchangeIntent builds an exchange (simultaneous push and pull) intent. If
// the payload has no content only the pull half takes place.
func ExchangeIntent(t Target, m Message) Intent { return Intent{Kind: Exchange, Target: t, Payload: m} }

// HasContent reports whether the message carries any information (and hence
// is transmitted and charged at all).
func (m Message) HasContent() bool {
	return m.Tag != 0 || m.Rumor || m.Value != 0 || len(m.IDs) > 0 || m.Bits > 0
}

// Config configures a Network.
type Config struct {
	// N is the number of nodes. Required.
	N int
	// Seed drives all randomness of the execution.
	Seed uint64
	// PayloadBits is b, the rumor size in bits. Defaults to DefaultPayloadBits.
	PayloadBits int
	// Workers is the number of goroutines used to evaluate per-node callbacks.
	// Values <= 1 mean sequential execution. Results are identical for any
	// worker count.
	Workers int
}

// DefaultPayloadBits is the default rumor size (b = 256 bits ≈ Ω(log n)).
const DefaultPayloadBits = 256

// Metrics aggregates the complexity measures of an execution.
type Metrics struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Messages counts payload-carrying messages (push payloads and pull
	// responses).
	Messages int64
	// ControlMessages counts pull requests.
	ControlMessages int64
	// Bits is the total number of bits across all messages, including pull
	// requests.
	Bits int64
	// MaxCommsPerRound is the maximum number of communications any single node
	// participated in during any single round (the paper's Δ).
	MaxCommsPerRound int
	// MessagesSent holds, per node index, the number of messages that node sent
	// (push payloads plus pull responses plus pull requests).
	MessagesSent []int64
}

// TotalMessages returns payload plus control messages.
func (m Metrics) TotalMessages() int64 { return m.Messages + m.ControlMessages }

// MessagesPerNode returns the average number of messages sent per node.
func (m Metrics) MessagesPerNode() float64 {
	if len(m.MessagesSent) == 0 {
		return 0
	}
	return float64(m.TotalMessages()) / float64(len(m.MessagesSent))
}

// RoundReport summarizes a single round.
type RoundReport struct {
	Round    int
	Messages int64
	Bits     int64
	MaxComms int
}

// Network is the synchronous random phone call simulator.
type Network struct {
	cfg         Config
	n           int
	ids         []NodeID
	index       map[NodeID]int
	failed      []bool
	liveCount   int
	nodeRNG     []rng.Source
	idBits      int
	counterBits int
	tagBits     int
	round       int

	metrics Metrics

	// scratch buffers reused across rounds
	comms   []int32
	intents []Intent
	inbox   [][]Message
	resp    []Message
	respOK  []bool
	respSet []bool
}

// Validation errors returned by New.
var (
	ErrBadSize = errors.New("phonecall: network needs at least 2 nodes")
)

// New creates a network of cfg.N nodes with unique random IDs.
func New(cfg Config) (*Network, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadSize, cfg.N)
	}
	if cfg.PayloadBits <= 0 {
		cfg.PayloadBits = DefaultPayloadBits
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}

	logN := bits.Len(uint(cfg.N))
	net := &Network{
		cfg:         cfg,
		n:           cfg.N,
		ids:         make([]NodeID, cfg.N),
		index:       make(map[NodeID]int, cfg.N),
		failed:      make([]bool, cfg.N),
		liveCount:   cfg.N,
		nodeRNG:     make([]rng.Source, cfg.N),
		idBits:      max(16, 2*logN),
		counterBits: logN + 1,
		tagBits:     8,
		comms:       make([]int32, cfg.N),
		intents:     make([]Intent, cfg.N),
		inbox:       make([][]Message, cfg.N),
		resp:        make([]Message, cfg.N),
		respOK:      make([]bool, cfg.N),
		respSet:     make([]bool, cfg.N),
	}
	net.metrics.MessagesSent = make([]int64, cfg.N)

	idSource := rng.New(rng.Mix(cfg.Seed, 0x1d5))
	for i := 0; i < cfg.N; i++ {
		for {
			id := NodeID(idSource.Uint64()>>1) + 1 // non-zero, 63-bit space
			if _, taken := net.index[id]; !taken {
				net.ids[i] = id
				net.index[id] = i
				break
			}
		}
		net.nodeRNG[i].Reseed(rng.Mix(cfg.Seed, 0xa11ce, uint64(i)))
	}
	return net, nil
}

// N returns the number of nodes (including failed ones).
func (net *Network) N() int { return net.n }

// LiveCount returns the number of non-failed nodes.
func (net *Network) LiveCount() int { return net.liveCount }

// Seed returns the execution seed.
func (net *Network) Seed() uint64 { return net.cfg.Seed }

// PayloadBits returns b, the rumor size in bits.
func (net *Network) PayloadBits() int { return net.cfg.PayloadBits }

// IDBits returns the number of bits used to encode one node ID.
func (net *Network) IDBits() int { return net.idBits }

// ID returns the ID of the node with the given index.
func (net *Network) ID(i int) NodeID { return net.ids[i] }

// IndexOf returns the index of a node ID.
func (net *Network) IndexOf(id NodeID) (int, bool) {
	i, ok := net.index[id]
	return i, ok
}

// NodeRNG returns the per-node random stream for local coin flips. The stream
// is independent of the streams of other nodes and of the engine's contact
// resolution.
func (net *Network) NodeRNG(i int) *rng.Source { return &net.nodeRNG[i] }

// Fail marks the given node indexes as failed. Failed nodes never initiate,
// never respond, and drop messages addressed to them. Matching the paper's
// oblivious-adversary model, failures should be injected before the protocol
// starts.
func (net *Network) Fail(indexes ...int) {
	for _, i := range indexes {
		if i >= 0 && i < net.n && !net.failed[i] {
			net.failed[i] = true
			net.liveCount--
		}
	}
}

// IsFailed reports whether node i is failed.
func (net *Network) IsFailed(i int) bool { return net.failed[i] }

// Round returns the number of rounds executed so far.
func (net *Network) Round() int { return net.round }

// Metrics returns a copy of the accumulated metrics.
func (net *Network) Metrics() Metrics {
	m := net.metrics
	m.Rounds = net.round
	m.MessagesSent = append([]int64(nil), net.metrics.MessagesSent...)
	return m
}

// MessageSize returns the size in bits of a message under the paper's
// accounting: O(log n) bits for tags/counters/IDs plus the b-bit rumor when
// carried.
func (net *Network) MessageSize(m Message) int {
	if m.Bits > 0 {
		return m.Bits
	}
	size := net.tagBits + net.counterBits + len(m.IDs)*net.idBits
	if m.Rumor {
		size += net.cfg.PayloadBits
	}
	return size
}

// controlSize is the size of a pull request.
func (net *Network) controlSize() int { return net.tagBits + net.idBits }

// ExecRound executes one synchronous round.
//
// intentOf is invoked once per live node and returns that node's initiated
// communication. responseOf is invoked at most once per live node that is
// pulled from and returns the node's address-oblivious response (ok=false
// means the node does not respond this round). deliver is invoked once per
// live node that received at least one message, with the node's inbox; inbox
// slices are only valid during the callback.
//
// Any of the callbacks may be nil.
func (net *Network) ExecRound(
	intentOf func(i int) Intent,
	responseOf func(i int) (Message, bool),
	deliver func(i int, inbox []Message),
) RoundReport {
	net.round++
	roundStartMessages := net.metrics.Messages + net.metrics.ControlMessages
	roundStartBits := net.metrics.Bits

	// Phase 1: collect intents (parallelizable: callbacks touch only node i).
	intents := net.intents
	for i := range intents {
		intents[i] = Intent{}
	}
	if intentOf != nil {
		net.forEachLive(func(i int) { intents[i] = intentOf(i) })
	}

	// Phase 2: resolve contacts, account, and build inboxes (sequential; cheap).
	comms := net.comms
	for i := range comms {
		comms[i] = 0
	}
	inbox := net.inbox
	for i := range inbox {
		inbox[i] = inbox[i][:0]
	}
	for i := range net.resp {
		net.respSet[i] = false
		net.respOK[i] = false
	}

	for i := 0; i < net.n; i++ {
		it := intents[i]
		if it.Kind == None || net.failed[i] {
			continue
		}
		j, ok := net.resolveTarget(i, it.Target)
		comms[i]++
		targetLive := ok && !net.failed[j]
		if ok {
			comms[j]++
		}
		switch it.Kind {
		case Push:
			msg := it.Payload
			msg.From = net.ids[i]
			size := net.MessageSize(msg)
			net.metrics.Messages++
			net.metrics.Bits += int64(size)
			net.metrics.MessagesSent[i]++
			if targetLive {
				inbox[j] = append(inbox[j], msg)
			}
		case Pull, Exchange:
			if it.Kind == Exchange && it.Payload.HasContent() {
				msg := it.Payload
				msg.From = net.ids[i]
				size := net.MessageSize(msg)
				net.metrics.Messages++
				net.metrics.Bits += int64(size)
				net.metrics.MessagesSent[i]++
				if targetLive {
					inbox[j] = append(inbox[j], msg)
				}
			} else {
				net.metrics.ControlMessages++
				net.metrics.Bits += int64(net.controlSize())
				net.metrics.MessagesSent[i]++
			}
			if targetLive && responseOf != nil {
				if !net.respSet[j] {
					net.resp[j], net.respOK[j] = responseOf(j)
					net.respSet[j] = true
				}
				if net.respOK[j] {
					m := net.resp[j]
					m.From = net.ids[j]
					size := net.MessageSize(m)
					net.metrics.Messages++
					net.metrics.Bits += int64(size)
					net.metrics.MessagesSent[j]++
					inbox[i] = append(inbox[i], m)
				}
			}
		}
	}

	maxComms := 0
	for _, c := range comms {
		if int(c) > maxComms {
			maxComms = int(c)
		}
	}
	if maxComms > net.metrics.MaxCommsPerRound {
		net.metrics.MaxCommsPerRound = maxComms
	}

	// Phase 3: deliver inboxes (parallelizable: callbacks touch only node i).
	if deliver != nil {
		net.forEachLive(func(i int) {
			if len(inbox[i]) > 0 {
				deliver(i, inbox[i])
			}
		})
	}

	return RoundReport{
		Round:    net.round,
		Messages: net.metrics.Messages + net.metrics.ControlMessages - roundStartMessages,
		Bits:     net.metrics.Bits - roundStartBits,
		MaxComms: maxComms,
	}
}

// resolveTarget maps a target to a node index. Random targets are resolved
// with a stateless hash of (seed, round, initiator) so that results do not
// depend on iteration order or worker count.
func (net *Network) resolveTarget(initiator int, t Target) (int, bool) {
	if t.Random {
		for attempt := uint64(0); ; attempt++ {
			j := int(rng.BoundedUint64(uint64(net.n), net.cfg.Seed, 0xc0ffee, uint64(net.round), uint64(initiator), attempt))
			if j != initiator {
				return j, true
			}
		}
	}
	if t.ID == NoNode {
		return 0, false
	}
	j, ok := net.index[t.ID]
	if !ok || j == initiator {
		return j, ok && j != initiator
	}
	return j, true
}

// forEachLive runs fn for every live node index, using cfg.Workers goroutines
// when configured. fn must only access state owned by its node.
func (net *Network) forEachLive(fn func(i int)) {
	workers := net.cfg.Workers
	if workers <= 1 || net.n < 4096 {
		for i := 0; i < net.n; i++ {
			if !net.failed[i] {
				fn(i)
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (net.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > net.n {
			hi = net.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if !net.failed[i] {
					fn(i)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
