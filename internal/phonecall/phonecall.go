// Package phonecall implements the random phone call model with direct
// addressing used by Haeupler and Malkhi (PODC 2014).
//
// The model (Section 2 of the paper): a complete network of n nodes with
// unique IDs drawn from a polynomially large ID space. Time advances in
// synchronous rounds. In every round each live node may initiate at most one
// communication: it either PUSHes a message to a target or PULLs a message
// from a target, where the target is a uniformly random node or a node whose
// ID the initiator learned earlier (direct addressing). Responses to PULLs
// are address-oblivious: a node exposes a single response per round that is
// handed to every puller.
//
// The Network type is the simulation substrate: it resolves contacts,
// delivers inboxes, injects failures, and accounts rounds, messages, bits and
// the per-round number of communications each node participates in (the
// quantity the paper calls Δ). Protocols are written as per-node callbacks;
// a node's decisions may only depend on its own state and its inbox.
package phonecall

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/rng"
)

// NodeID is a node address from the polynomially large ID space. The zero
// value means "no node" (the paper's follow = ∞).
type NodeID uint64

// NoNode is the absent-node sentinel.
const NoNode NodeID = 0

// Kind describes the communication a node initiates in a round.
type Kind uint8

// Communication kinds. A node that stays silent uses None. Exchange models
// the classical random phone call in which the caller both PUSHes its message
// and PULLs the callee's response over the same connection; it is used by the
// baseline algorithms (uniform PUSH-PULL, Karp et al.), not by the clustering
// algorithms of the paper.
const (
	None Kind = iota
	Push
	Pull
	Exchange
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Push:
		return "push"
	case Pull:
		return "pull"
	case Exchange:
		return "exchange"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Target identifies whom a node contacts: either a uniformly random node or a
// specific node by ID (direct addressing).
type Target struct {
	Random bool
	ID     NodeID
}

// RandomTarget returns a target that the engine resolves to a uniformly
// random other node.
func RandomTarget() Target { return Target{Random: true} }

// DirectTarget returns a direct-addressing target.
func DirectTarget(id NodeID) Target { return Target{ID: id} }

// Message is the unit of communication. Its size in bits is derived from its
// content unless Bits is set explicitly. The field order groups the two
// single-byte fields so the struct stays at 56 bytes; the engine copies every
// message twice per round (staging and arena), so its size is hot.
type Message struct {
	// From is filled in by the engine with the sender's ID.
	From NodeID
	// Value carries a counter, size, or coin flip (O(log n) bits).
	Value uint64
	// IDs carries node IDs (each O(log n) bits).
	IDs []NodeID
	// Bits overrides the computed size when non-zero.
	Bits int
	// Tag is a protocol-defined discriminator.
	Tag uint8
	// Rumor marks that the message carries the b-bit broadcast payload.
	Rumor bool
}

// Intent is a node's initiated communication for one round.
type Intent struct {
	Kind    Kind
	Target  Target
	Payload Message // used for Push
}

// Silent is the do-nothing intent.
func Silent() Intent { return Intent{Kind: None} }

// PushIntent builds a push intent.
func PushIntent(t Target, m Message) Intent { return Intent{Kind: Push, Target: t, Payload: m} }

// PullIntent builds a pull intent.
func PullIntent(t Target) Intent { return Intent{Kind: Pull, Target: t} }

// ExchangeIntent builds an exchange (simultaneous push and pull) intent. If
// the payload has no content only the pull half takes place.
func ExchangeIntent(t Target, m Message) Intent { return Intent{Kind: Exchange, Target: t, Payload: m} }

// HasContent reports whether the message carries any information (and hence
// is transmitted and charged at all).
func (m Message) HasContent() bool {
	return m.Tag != 0 || m.Rumor || m.Value != 0 || len(m.IDs) > 0 || m.Bits > 0
}

// Config configures a Network.
type Config struct {
	// N is the number of nodes. Required.
	N int
	// Seed drives all randomness of the execution.
	Seed uint64
	// PayloadBits is b, the rumor size in bits. Defaults to DefaultPayloadBits.
	PayloadBits int
	// Workers is the number of engine shards (goroutines) used per round.
	// Values <= 1 mean sequential execution; small networks always run on a
	// single shard. Results are bit-identical for any worker count.
	Workers int
	// PoisonInbox is a debug mode that overwrites each node's inbox span in
	// the message arena with poison values as soon as its delivery callback
	// returns. Inbox slices alias the arena and are only valid during the
	// callback; with poisoning on, a callback that illegally retains its
	// inbox reads PoisonMessage values instead of silently stale (and later
	// silently recycled) data. Compliant protocols produce bit-identical
	// results with poisoning on or off.
	PoisonInbox bool
}

// DefaultPayloadBits is the default rumor size (b = 256 bits ≈ Ω(log n)).
const DefaultPayloadBits = 256

// Metrics aggregates the complexity measures of an execution.
type Metrics struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Messages counts payload-carrying messages (push payloads and pull
	// responses).
	Messages int64
	// ControlMessages counts pull requests.
	ControlMessages int64
	// Bits is the total number of bits across all messages, including pull
	// requests.
	Bits int64
	// MaxCommsPerRound is the maximum number of communications any single node
	// participated in during any single round (the paper's Δ). Only live
	// participants are charged: a call to a failed node is dropped and does
	// not count as a communication of the dead target.
	MaxCommsPerRound int
	// MessagesSent holds, per node index, the number of messages that node sent
	// (push payloads plus pull responses plus pull requests).
	MessagesSent []int64
}

// TotalMessages returns payload plus control messages.
func (m Metrics) TotalMessages() int64 { return m.Messages + m.ControlMessages }

// MessagesPerNode returns the average number of messages sent per node.
func (m Metrics) MessagesPerNode() float64 {
	if len(m.MessagesSent) == 0 {
		return 0
	}
	return float64(m.TotalMessages()) / float64(len(m.MessagesSent))
}

// RoundReport summarizes a single round.
type RoundReport struct {
	Round    int
	Messages int64
	Bits     int64
	MaxComms int
}

// Network is the synchronous random phone call simulator.
type Network struct {
	cfg         Config
	n           int
	ids         []NodeID
	index       *idTable
	failed      []bool
	liveCount   int
	nodeRNG     []rng.Source
	idBits      int
	counterBits int
	tagBits     int
	round       int

	metrics Metrics

	// Sharded round engine state (see engine.go). All buffers are sized once
	// at New and reused across rounds; steady-state rounds do not allocate.
	nw        int          // effective shard count
	spans     [][2]int     // node index range [lo,hi) per shard
	cells     [][]destCell // per-shard destination accounting
	wstats    []workerStats
	rangeBase []int32 // arena base offset per shard's node range
	ops       []op
	tgt       []int32
	staged    []Message // pending push payloads, indexed by initiator
	resp      []Message
	respOK    []bool
	inCount   []int32
	inOff     []int32
	slab      []Message // the inbox arena: one flat span per receiving node
	pool      *pool
	noPulls   bool // this round has no live pulls (fast path)

	// roundMix caches the hash prefix (seed, tag, round) of the stateless
	// random-target hash; refreshed by ExecRound at the start of each round.
	roundMix      rng.MixState
	roundMixRound int

	// Oblivious per-call loss (SetLoss). lossMix caches the (lossSeed, tag,
	// round) hash prefix of the stateless drop decision, like roundMix.
	lossRate     float64
	lossSeed     uint64
	lossMix      rng.MixState
	lossMixRound int

	// roundHook, when set, runs at the start of every ExecRound before any
	// intent is evaluated (OnRoundStart).
	roundHook func(round int)

	// ctx, when set, aborts ExecRound once done (SetContext / RecoverAbort,
	// see context.go).
	ctx context.Context

	// observer, when set, taps the round's callback traffic (Observe).
	observer RoundObserver

	// executor, when set, runs rounds instead of the built-in engine
	// (SetExecutor; see executor.go).
	executor RoundExecutor

	// selector, when set, replaces the uniform random-target contract
	// (SetPeerSelector; see peersel.go).
	selector PeerSelector

	// behaviors, when allocated, holds the per-node Byzantine behaviors
	// (SetBehavior; see behavior.go). nil until the first behavior is
	// installed, so honest runs skip the seam entirely. corrupted counts
	// the non-nil entries.
	behaviors []Behavior
	corrupted int

	// Per-round callbacks, published to the pool workers through the pass
	// channel's happens-before edge.
	curIntent   func(i int) Intent
	curResponse func(i int) (Message, bool)
	curDeliver  func(i int, inbox []Message)
}

// Validation errors returned by New.
var (
	ErrBadSize = errors.New("phonecall: network needs at least 2 nodes")
	ErrTooBig  = errors.New("phonecall: network exceeds the engine's 2^30 node limit")
)

// New creates a network of cfg.N nodes with unique random IDs.
func New(cfg Config) (*Network, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadSize, cfg.N)
	}
	if cfg.N >= 1<<30 {
		// The engine stores targets and arena offsets as int32; an inbox
		// arena holds at most 2 messages per node, so 2N must stay below
		// 2^31.
		return nil, fmt.Errorf("%w (got %d)", ErrTooBig, cfg.N)
	}
	if cfg.PayloadBits <= 0 {
		cfg.PayloadBits = DefaultPayloadBits
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}

	logN := bits.Len(uint(cfg.N))
	net := &Network{
		cfg:         cfg,
		n:           cfg.N,
		ids:         make([]NodeID, cfg.N),
		index:       newIDTable(cfg.N),
		failed:      make([]bool, cfg.N),
		liveCount:   cfg.N,
		nodeRNG:     make([]rng.Source, cfg.N),
		idBits:      max(16, 2*logN),
		counterBits: logN + 1,
		tagBits:     8,
	}
	net.metrics.MessagesSent = make([]int64, cfg.N)

	idSource := rng.New(rng.Mix(cfg.Seed, 0x1d5))
	for i := 0; i < cfg.N; i++ {
		for {
			id := NodeID(idSource.Uint64()>>1) + 1 // non-zero, 63-bit space
			if _, taken := net.index.get(id); !taken {
				net.ids[i] = id
				net.index.put(id, i)
				break
			}
		}
		net.nodeRNG[i].Reseed(rng.Mix(cfg.Seed, 0xa11ce, uint64(i)))
	}
	net.initEngine(cfg.Workers)
	return net, nil
}

// N returns the number of nodes (including failed ones).
func (net *Network) N() int { return net.n }

// LiveCount returns the number of non-failed nodes.
func (net *Network) LiveCount() int { return net.liveCount }

// Seed returns the execution seed.
func (net *Network) Seed() uint64 { return net.cfg.Seed }

// PayloadBits returns b, the rumor size in bits.
func (net *Network) PayloadBits() int { return net.cfg.PayloadBits }

// IDBits returns the number of bits used to encode one node ID.
func (net *Network) IDBits() int { return net.idBits }

// ID returns the ID of the node with the given index.
func (net *Network) ID(i int) NodeID { return net.ids[i] }

// IndexOf returns the index of a node ID.
func (net *Network) IndexOf(id NodeID) (int, bool) {
	return net.index.get(id)
}

// Workers returns the effective number of engine shards.
func (net *Network) Workers() int { return net.nw }

// NodeRNG returns the per-node random stream for local coin flips. The stream
// is independent of the streams of other nodes and of the engine's contact
// resolution.
func (net *Network) NodeRNG(i int) *rng.Source { return &net.nodeRNG[i] }

// Fail marks the given node indexes as failed. Failed nodes never initiate,
// never respond, and drop messages addressed to them. The paper's oblivious
// adversary (Section 8) fails nodes before the protocol starts; dynamic
// scenarios (internal/scenario) may also call Fail between rounds — a node
// failed after round r is dead from round r+1 on: its next-round intent is
// never evaluated and calls addressed to it are dropped without charging it.
// Out-of-range and already-failed indexes are ignored, so duplicate indexes
// decrement the live count only once. Must not be called while a round is
// executing (use an OnRoundStart hook to inject failures between rounds).
func (net *Network) Fail(indexes ...int) {
	for _, i := range indexes {
		if i >= 0 && i < net.n && !net.failed[i] {
			net.failed[i] = true
			net.liveCount--
		}
	}
}

// Revive marks the given failed node indexes as live again. A revived node
// rejoins the network with whatever protocol state it had — dynamic scenarios
// that model rejoin-as-uninformed reset the protocol state separately (see
// RumorTracker.Revive). Out-of-range and live indexes are ignored. Like Fail,
// Revive must only be called between rounds.
func (net *Network) Revive(indexes ...int) {
	for _, i := range indexes {
		if i >= 0 && i < net.n && net.failed[i] {
			net.failed[i] = false
			net.liveCount++
		}
	}
}

// IsFailed reports whether node i is failed.
func (net *Network) IsFailed(i int) bool { return net.failed[i] }

// SetLoss configures oblivious per-call message loss: from the next round on,
// every initiated call is independently dropped with probability rate. A
// dropped call behaves exactly like a call to a failed node (the
// live-participant rule of DESIGN.md §2): the initiator is still charged for
// what it sent, the target never participates — it receives nothing, is not
// charged a communication, and a pull gets no response.
//
// Drops are a stateless hash of (lossSeed, round, initiator), independent of
// the execution seed (the loss process is oblivious to the algorithm's
// randomness) and of the worker count. rate is clamped to [0, 1]; rate 0
// disables loss. Must only be called between rounds.
func (net *Network) SetLoss(rate float64, seed uint64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	net.lossRate = rate
	net.lossSeed = seed
	net.lossMixRound = -1
}

// LossRate returns the per-call drop probability currently in effect.
func (net *Network) LossRate() float64 { return net.lossRate }

// OnRoundStart registers a hook invoked by ExecRound after the round counter
// advances and before any intent is evaluated. The hook runs on the
// coordinator goroutine, so it may safely mutate network state that is
// read-only during passes: Fail, Revive and SetLoss. This is the seam the
// scenario subsystem uses to drive timed churn and loss under any protocol
// without changing the per-node callback contract. A nil hook unregisters.
func (net *Network) OnRoundStart(hook func(round int)) { net.roundHook = hook }

// Round returns the number of rounds executed so far.
func (net *Network) Round() int { return net.round }

// Metrics returns a copy of the accumulated metrics.
func (net *Network) Metrics() Metrics {
	m := net.metrics
	m.Rounds = net.round
	m.MessagesSent = append([]int64(nil), net.metrics.MessagesSent...)
	return m
}

// MessageSize returns the size in bits of a message under the paper's
// accounting: O(log n) bits for tags/counters/IDs plus the b-bit rumor when
// carried.
func (net *Network) MessageSize(m Message) int {
	if m.Bits > 0 {
		return m.Bits
	}
	size := net.tagBits + net.counterBits + len(m.IDs)*net.idBits
	if m.Rumor {
		size += net.cfg.PayloadBits
	}
	return size
}

// controlSize is the size of a pull request.
func (net *Network) controlSize() int { return net.tagBits + net.idBits }

// refreshRoundMix re-derives the cached random-target hash prefix for the
// current round. Single-goroutine (coordinator or test) only: the engine
// passes merely read the cached state.
func (net *Network) refreshRoundMix() {
	if net.roundMixRound != net.round {
		net.roundMix = rng.MixPrefix(net.cfg.Seed, randomTargetTag, uint64(net.round))
		net.roundMixRound = net.round
	}
}

// resolveRandom resolves a uniformly random target for the initiator with a
// stateless hash of (seed, round, initiator), so that results do not depend
// on iteration order or worker count. The output is bit-identical to
// rng.BoundedUint64(n, seed, 0xc0ffee, round, initiator, attempt).
func (net *Network) resolveRandom(initiator int) int {
	base := net.roundMix.Absorb(uint64(initiator))
	for attempt := uint64(0); ; attempt++ {
		j := int(rng.Bounded(base.Absorb(attempt).Finalize(5), uint64(net.n)))
		if j != initiator {
			return j
		}
	}
}

// refreshLossMix re-derives the cached drop-decision hash prefix for the
// current round. Coordinator-only, like refreshRoundMix.
func (net *Network) refreshLossMix() {
	if net.lossMixRound != net.round {
		net.lossMix = rng.MixPrefix(net.lossSeed, lossTag, uint64(net.round))
		net.lossMixRound = net.round
	}
}

// dropCall reports whether the initiator's call this round is lost. The
// decision is a stateless hash of (lossSeed, round, initiator) compared
// against the loss rate with Float64 precision, so it is bit-identical for
// any worker count and evaluation order. Only called when lossRate > 0.
func (net *Network) dropCall(initiator int) bool {
	h := net.lossMix.Absorb(uint64(initiator)).Finalize(4)
	return rng.Unit(h) < net.lossRate
}

// resolveTarget maps a target to a node index.
func (net *Network) resolveTarget(initiator int, t Target) (int, bool) {
	if t.Random {
		if net.selector != nil {
			return net.selector.SelectPeer(net.round, initiator)
		}
		net.refreshRoundMix()
		return net.resolveRandom(initiator), true
	}
	if t.ID == NoNode {
		return 0, false
	}
	j, ok := net.index.get(t.ID)
	if !ok || j == initiator {
		return j, ok && j != initiator
	}
	return j, true
}
