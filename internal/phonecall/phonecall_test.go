package phonecall

import (
	"testing"
	"testing/quick"
)

func newTestNet(t *testing.T, n int, seed uint64) *Network {
	t.Helper()
	net, err := New(Config{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return net
}

func TestNewRejectsTinyNetworks(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if _, err := New(Config{N: n}); err == nil {
			t.Fatalf("New(N=%d) should fail", n)
		}
	}
}

func TestIDsAreUniqueAndNonZero(t *testing.T) {
	net := newTestNet(t, 5000, 1)
	seen := make(map[NodeID]bool, net.N())
	for i := 0; i < net.N(); i++ {
		id := net.ID(i)
		if id == NoNode {
			t.Fatalf("node %d has the NoNode ID", i)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
		back, ok := net.IndexOf(id)
		if !ok || back != i {
			t.Fatalf("IndexOf(ID(%d)) = %d, %v", i, back, ok)
		}
	}
}

func TestPushDeliveryAndAccounting(t *testing.T) {
	net := newTestNet(t, 10, 2)
	dst := net.ID(3)
	received := make(map[int]int)
	report := net.ExecRound(
		func(i int) Intent {
			if i == 0 {
				return PushIntent(DirectTarget(dst), Message{Tag: 7, Value: 42})
			}
			return Silent()
		},
		nil,
		func(i int, inbox []Message) {
			received[i] = len(inbox)
			if inbox[0].Tag != 7 || inbox[0].Value != 42 {
				t.Errorf("unexpected message %+v", inbox[0])
			}
			if inbox[0].From != net.ID(0) {
				t.Errorf("From = %d, want sender ID", inbox[0].From)
			}
		},
	)
	if len(received) != 1 || received[3] != 1 {
		t.Fatalf("received = %v, want only node 3", received)
	}
	m := net.Metrics()
	if m.Messages != 1 || m.ControlMessages != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Rounds != 1 || report.Round != 1 {
		t.Fatalf("round count wrong: %d / %d", m.Rounds, report.Round)
	}
	if report.Messages != 1 {
		t.Fatalf("report.Messages = %d", report.Messages)
	}
	if m.MessagesSent[0] != 1 {
		t.Fatalf("MessagesSent[0] = %d", m.MessagesSent[0])
	}
}

func TestPullResponseAndAddressObliviousness(t *testing.T) {
	net := newTestNet(t, 20, 3)
	target := net.ID(5)
	responseCalls := 0
	gotByPuller := map[int]uint64{}
	net.ExecRound(
		func(i int) Intent {
			if i < 4 {
				return PullIntent(DirectTarget(target))
			}
			return Silent()
		},
		func(i int) (Message, bool) {
			if i != 5 {
				t.Errorf("responseOf called for node %d", i)
			}
			responseCalls++
			return Message{Tag: 1, Value: 99}, true
		},
		func(i int, inbox []Message) {
			gotByPuller[i] = inbox[0].Value
		},
	)
	if responseCalls != 1 {
		t.Fatalf("responseOf called %d times, want 1 (address-oblivious caching)", responseCalls)
	}
	if len(gotByPuller) != 4 {
		t.Fatalf("got %d pullers with responses, want 4", len(gotByPuller))
	}
	for i, v := range gotByPuller {
		if v != 99 {
			t.Fatalf("puller %d got %d", i, v)
		}
	}
	m := net.Metrics()
	if m.ControlMessages != 4 {
		t.Fatalf("ControlMessages = %d, want 4", m.ControlMessages)
	}
	if m.Messages != 4 {
		t.Fatalf("Messages = %d, want 4 responses", m.Messages)
	}
	if m.MaxCommsPerRound < 4 {
		t.Fatalf("MaxCommsPerRound = %d, want >= 4 (node 5 answered 4 pulls)", m.MaxCommsPerRound)
	}
}

func TestPullNoResponse(t *testing.T) {
	net := newTestNet(t, 10, 4)
	delivered := false
	net.ExecRound(
		func(i int) Intent {
			if i == 0 {
				return PullIntent(DirectTarget(net.ID(1)))
			}
			return Silent()
		},
		func(i int) (Message, bool) { return Message{}, false },
		func(i int, inbox []Message) { delivered = true },
	)
	if delivered {
		t.Fatal("no response should be delivered when responder declines")
	}
	if m := net.Metrics(); m.Messages != 0 || m.ControlMessages != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFailedNodesAreSilentAndDrop(t *testing.T) {
	net := newTestNet(t, 10, 5)
	net.Fail(1, 2)
	if net.LiveCount() != 8 {
		t.Fatalf("LiveCount = %d", net.LiveCount())
	}
	if !net.IsFailed(1) || net.IsFailed(3) {
		t.Fatal("IsFailed bookkeeping wrong")
	}
	intentCalls := map[int]bool{}
	delivered := map[int]bool{}
	net.ExecRound(
		func(i int) Intent {
			intentCalls[i] = true
			// everyone pushes to failed node 1 and pulls are not used
			return PushIntent(DirectTarget(net.ID(1)), Message{Tag: 1})
		},
		nil,
		func(i int, inbox []Message) { delivered[i] = true },
	)
	if intentCalls[1] || intentCalls[2] {
		t.Fatal("intentOf called for failed node")
	}
	if len(delivered) != 0 {
		t.Fatalf("messages delivered to failed node: %v", delivered)
	}
	// messages to failed nodes still count as sent
	if m := net.Metrics(); m.Messages != 8 {
		t.Fatalf("Messages = %d, want 8", m.Messages)
	}
}

func TestDoubleFailIsIdempotent(t *testing.T) {
	net := newTestNet(t, 10, 6)
	net.Fail(3)
	net.Fail(3)
	if net.LiveCount() != 9 {
		t.Fatalf("LiveCount = %d, want 9", net.LiveCount())
	}
}

func TestRandomTargetNeverSelf(t *testing.T) {
	net := newTestNet(t, 50, 7)
	for round := 0; round < 200; round++ {
		net.ExecRound(
			func(i int) Intent { return PushIntent(RandomTarget(), Message{Tag: 1}) },
			nil,
			nil,
		)
	}
	// Self-delivery cannot be observed directly; instead verify resolveTarget.
	for i := 0; i < net.N(); i++ {
		j, ok := net.resolveTarget(i, RandomTarget())
		if !ok || j == i {
			t.Fatalf("resolveTarget(%d, random) = %d, %v", i, j, ok)
		}
	}
}

func TestRandomTargetsCoverNetwork(t *testing.T) {
	net := newTestNet(t, 64, 8)
	hit := make([]bool, net.N())
	for round := 0; round < 60; round++ {
		net.ExecRound(
			func(i int) Intent {
				if i == 0 {
					return PushIntent(RandomTarget(), Message{Tag: 1})
				}
				return Silent()
			},
			nil,
			func(i int, inbox []Message) { hit[i] = true },
		)
	}
	count := 0
	for _, h := range hit {
		if h {
			count++
		}
	}
	if count < 25 {
		t.Fatalf("only %d distinct nodes hit by 60 random pushes from one node", count)
	}
}

func TestDirectTargetUnknownIDIsLost(t *testing.T) {
	net := newTestNet(t, 10, 9)
	delivered := false
	net.ExecRound(
		func(i int) Intent {
			if i == 0 {
				return PushIntent(DirectTarget(NodeID(0xdeadbeef)), Message{Tag: 1})
			}
			return Silent()
		},
		nil,
		func(i int, inbox []Message) { delivered = true },
	)
	if delivered {
		t.Fatal("message to unknown ID must be lost")
	}
}

func TestSelfTargetIsDropped(t *testing.T) {
	net := newTestNet(t, 10, 10)
	delivered := false
	net.ExecRound(
		func(i int) Intent {
			if i == 0 {
				return PushIntent(DirectTarget(net.ID(0)), Message{Tag: 1})
			}
			return Silent()
		},
		nil,
		func(i int, inbox []Message) { delivered = true },
	)
	if delivered {
		t.Fatal("self-addressed message must be dropped")
	}
}

func TestMessageSizeAccounting(t *testing.T) {
	net := newTestNet(t, 1000, 11)
	base := net.MessageSize(Message{})
	withID := net.MessageSize(Message{IDs: []NodeID{1}})
	if withID-base != net.IDBits() {
		t.Fatalf("one ID should add %d bits, added %d", net.IDBits(), withID-base)
	}
	withRumor := net.MessageSize(Message{Rumor: true})
	if withRumor-base != net.PayloadBits() {
		t.Fatalf("rumor should add %d bits, added %d", net.PayloadBits(), withRumor-base)
	}
	if net.MessageSize(Message{Bits: 12345}) != 12345 {
		t.Fatal("explicit Bits should override computed size")
	}
}

func TestMetricsSnapshotIsACopy(t *testing.T) {
	net := newTestNet(t, 10, 12)
	m := net.Metrics()
	m.MessagesSent[0] = 999
	if net.Metrics().MessagesSent[0] == 999 {
		t.Fatal("Metrics must return a copy of MessagesSent")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(workers int) Metrics {
		net, err := New(Config{N: 3000, Seed: 77, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		informed := make([]bool, net.N())
		informed[0] = true
		for r := 0; r < 20; r++ {
			net.ExecRound(
				func(i int) Intent {
					if informed[i] {
						return PushIntent(RandomTarget(), Message{Tag: 1, Rumor: true})
					}
					return PullIntent(RandomTarget())
				},
				func(i int) (Message, bool) {
					if informed[i] {
						return Message{Tag: 1, Rumor: true}, true
					}
					return Message{}, false
				},
				func(i int, inbox []Message) {
					for _, m := range inbox {
						if m.Rumor {
							informed[i] = true
						}
					}
				},
			)
		}
		return net.Metrics()
	}
	a, b, c := run(1), run(1), run(8)
	if a.Messages != b.Messages || a.Bits != b.Bits || a.MaxCommsPerRound != b.MaxCommsPerRound {
		t.Fatalf("same-seed sequential runs differ: %+v vs %+v", a, b)
	}
	if a.Messages != c.Messages || a.Bits != c.Bits {
		t.Fatalf("worker count changed results: %+v vs %+v", a, c)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || Push.String() != "push" || Pull.String() != "pull" {
		t.Fatal("Kind.String names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestMessagesPerNode(t *testing.T) {
	m := Metrics{Messages: 30, ControlMessages: 10, MessagesSent: make([]int64, 20)}
	if got := m.MessagesPerNode(); got != 2 {
		t.Fatalf("MessagesPerNode = %v, want 2", got)
	}
	var empty Metrics
	if empty.MessagesPerNode() != 0 {
		t.Fatal("empty metrics should have 0 messages per node")
	}
}

func TestResolveTargetPropertyInRange(t *testing.T) {
	net := newTestNet(t, 257, 13)
	f := func(initiator uint16, useRandom bool, which uint16) bool {
		i := int(initiator) % net.N()
		var tgt Target
		if useRandom {
			tgt = RandomTarget()
		} else {
			tgt = DirectTarget(net.ID(int(which) % net.N()))
		}
		j, ok := net.resolveTarget(i, tgt)
		if !ok {
			return !useRandom // direct self-targets may be rejected
		}
		return j >= 0 && j < net.N() && j != i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsGrowWithMessages(t *testing.T) {
	net := newTestNet(t, 100, 14)
	for r := 0; r < 5; r++ {
		before := net.Metrics().Bits
		net.ExecRound(
			func(i int) Intent { return PushIntent(RandomTarget(), Message{Tag: 1, Rumor: true}) },
			nil, nil,
		)
		after := net.Metrics().Bits
		wantAtLeast := int64(net.N()) * int64(net.PayloadBits())
		if after-before < wantAtLeast {
			t.Fatalf("round added %d bits, want at least %d", after-before, wantAtLeast)
		}
	}
}
