package phonecall_test

// External test package: exercises the sharded engine through the paper's
// full algorithms (which phonecall itself cannot import) and asserts that
// every observable quantity is byte-identical for any worker count.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// algoRun executes one algorithm on a fresh network with the given worker
// count and returns the full result and the network's complete metrics
// (including the per-node MessagesSent vector).
func algoRun(t *testing.T, algo string, n, workers int, fail []int) (trace.Result, phonecall.Metrics) {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 42, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	net.Fail(fail...)
	var res trace.Result
	switch algo {
	case "cluster1":
		res, err = core.Cluster1(net, []int{0}, core.Params{})
	case "cluster2":
		res, err = core.Cluster2(net, []int{0}, core.Params{})
	case "clusterpushpull":
		res, err = core.ClusterPushPull(net, []int{0}, 256, core.Params{})
	default:
		t.Fatalf("unknown algo %q", algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res, net.Metrics()
}

// TestAlgorithmsDeterministicAcrossWorkers runs the paper's algorithms for
// Workers ∈ {1, 2, 8} and requires byte-identical results and metrics. The
// network size is above the engine's sharding threshold so the multi-worker
// runs really execute on concurrent shards (also exercised under -race in CI).
func TestAlgorithmsDeterministicAcrossWorkers(t *testing.T) {
	const n = 6000
	fail := []int{3, 1000, 5999}
	for _, algo := range []string{"cluster1", "cluster2", "clusterpushpull"} {
		t.Run(algo, func(t *testing.T) {
			refRes, refMetrics := algoRun(t, algo, n, 1, fail)
			if refRes.Informed == 0 {
				t.Fatalf("reference run informed nobody: %+v", refRes)
			}
			for _, workers := range []int{2, 8} {
				res, metrics := algoRun(t, algo, n, workers, fail)
				if !reflect.DeepEqual(refRes, res) {
					t.Errorf("workers=%d: results differ:\n  1: %+v\n  %d: %+v", workers, refRes, workers, res)
				}
				if !reflect.DeepEqual(refMetrics, metrics) {
					t.Errorf("workers=%d: metrics differ (MessagesSent or counters)", workers)
				}
			}
		})
	}
}
