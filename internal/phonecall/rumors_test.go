package phonecall

import "testing"

// Direct edge-case coverage for RumorTracker; until now the tracker was only
// exercised through the scenario driver.

func newTrackerNet(t *testing.T, n int) (*Network, *RumorTracker) {
	t.Helper()
	net, err := New(Config{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net, NewRumorTracker(net)
}

// TestRumorIDBoundary pins the MaxRumors boundary: rumor 63 is the last
// valid ID, rumor 64 must be rejected everywhere without corrupting state.
func TestRumorIDBoundary(t *testing.T) {
	_, tr := newTrackerNet(t, 8)
	if err := tr.Register(MaxRumors - 1); err != nil {
		t.Fatalf("rumor %d rejected: %v", MaxRumors-1, err)
	}
	if err := tr.Register(MaxRumors); err == nil {
		t.Fatalf("rumor %d accepted", MaxRumors)
	}
	if err := tr.Inject(0, MaxRumors); err == nil {
		t.Fatal("Inject past the boundary accepted")
	}
	if tr.LiveInformed(MaxRumors) != 0 {
		t.Fatal("out-of-range LiveInformed nonzero")
	}
	tr.Mark(0, MaxRumors-1)
	if !tr.Has(0, MaxRumors-1) || tr.LiveInformed(MaxRumors-1) != 1 {
		t.Fatalf("bit 63 not tracked: held=%b live=%d", tr.Held(0), tr.LiveInformed(MaxRumors-1))
	}
	// MarkSet with unregistered high bits must ignore them.
	tr.MarkSet(1, 1<<62)
	if tr.Held(1) != 0 {
		t.Fatalf("unregistered bit recorded: %b", tr.Held(1))
	}
}

// TestRumorDuplicateInjection checks idempotence: injecting the same rumor
// at the same (or another informed) node must not double-count.
func TestRumorDuplicateInjection(t *testing.T) {
	_, tr := newTrackerNet(t, 8)
	for k := 0; k < 3; k++ {
		if err := tr.Inject(2, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.LiveInformed(5); got != 1 {
		t.Fatalf("duplicate injection counted %d times", got)
	}
	tr.Mark(2, 5) // re-mark through the delivery path too
	if got := tr.LiveInformed(5); got != 1 {
		t.Fatalf("re-mark bumped the live count to %d", got)
	}
	if err := tr.Inject(8, 0); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestRumorInjectOnDeadNode pins the churn-consistency contract: a dead node
// can hold a rumor without counting as live-informed, stops counting when it
// crashes informed, and rejoins uninformed through Revive.
func TestRumorInjectOnDeadNode(t *testing.T) {
	_, tr := newTrackerNet(t, 8)
	tr.Fail(3)
	if err := tr.Inject(3, 1); err != nil {
		t.Fatal(err)
	}
	if !tr.Has(3, 1) {
		t.Fatal("dead node's holdings not recorded")
	}
	if got := tr.LostInjects(); got != 1 {
		t.Fatalf("inject on a failed node not counted as lost (got %d)", got)
	}
	if got := tr.LiveInformed(1); got != 0 {
		t.Fatalf("dead node counted as live-informed (%d)", got)
	}
	// Revive forgets: the rejoining node starts uninformed.
	tr.Revive(3)
	if tr.Has(3, 1) {
		t.Fatal("revived node kept its holdings")
	}
	if got := tr.LiveInformed(1); got != 0 {
		t.Fatalf("revive resurrected the live count (%d)", got)
	}
	// An informed node crashing decrements; duplicate Fail does not double-
	// decrement.
	tr.Inject(4, 1)
	tr.Fail(4)
	tr.Fail(4)
	if got := tr.LiveInformed(1); got != 0 {
		t.Fatalf("crashed informed node still counted (%d)", got)
	}
	tr.Fail(-1)
	tr.Revive(99) // out-of-range churn is ignored
}

// TestRumorForgedBits pins the tracker's defense against the Liar: forged
// holdings bits — rumor IDs at or beyond MaxRumors' registered space — are
// masked away by MarkSet, so a lying advertiser can waste bandwidth but never
// mis-inform the ground truth.
func TestRumorForgedBits(t *testing.T) {
	_, tr := newTrackerNet(t, 8)
	if err := tr.Inject(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Inject(0, 3); err != nil {
		t.Fatal(err)
	}
	l := Liar{Seed: 77, Registered: tr.Registered}
	lie := l.RewriteIntent(4, 0, 1, PushIntent(RandomTarget(),
		Message{Tag: TagHoldings, Value: tr.Held(0), Rumor: true})).Payload
	if lie.Value&^tr.Registered() == 0 {
		t.Fatal("liar forged nothing — the test would be vacuous")
	}
	// An honest receiver merges the lie: only registered truth survives.
	tr.MarkSet(1, lie.Value)
	if got := tr.Held(1) &^ tr.Registered(); got != 0 {
		t.Fatalf("forged bits recorded as holdings: %b", got)
	}
	if got := tr.Held(1) &^ tr.Held(0); got != 0 {
		t.Fatalf("receiver holds bits the sender never had: %b", got)
	}
	// The forged IDs never become registered rumors either.
	for r := RumorID(0); r < MaxRumors; r++ {
		if tr.Registered()&(1<<r) != 0 && r != 0 && r != 3 {
			t.Fatalf("forgery registered rumor %d", r)
		}
	}
}

// TestRumorSpamReinjection pins convergence accounting under spam re-delivery:
// once a rumor has converged, junk re-injections and repeated MarkSets keep
// LiveInformed exactly at n instead of drifting past it.
func TestRumorSpamReinjection(t *testing.T) {
	_, tr := newTrackerNet(t, 8)
	if err := tr.Register(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.Mark(i, 2)
	}
	if got := tr.LiveInformed(2); got != 8 {
		t.Fatalf("converged count = %d, want 8", got)
	}
	// A spammer re-injecting the converged rumor — by Inject, Mark or a full
	// holdings re-advertisement — must not move the counter.
	for i := 0; i < 8; i++ {
		if err := tr.Inject(i, 2); err != nil {
			t.Fatal(err)
		}
		tr.Mark(i, 2)
		tr.MarkSet(i, tr.Held(i))
	}
	if got := tr.LiveInformed(2); got != 8 {
		t.Fatalf("spam re-injection drifted the count to %d", got)
	}
	// Spam junk (TagSpam values) merged as holdings is likewise inert beyond
	// the registered mask.
	junk := Spammer{Seed: 3}.junk(1, 0)
	tr.MarkSet(4, junk.Value)
	if got := tr.Held(4) &^ tr.Registered(); got != 0 {
		t.Fatalf("junk value recorded outside the registered space: %b", got)
	}
}
