package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/phonecall"
)

// churnLossScenario builds the canonical test workload: two rumors, a crash
// wave, loss switched on mid-run, and a partial rejoin. n defaults to 6000 —
// above the engine's sharding threshold, so multi-worker runs really
// execute concurrently.
func churnLossScenario(n int) Scenario {
	crash := failure.Random{Count: n / 5, Seed: 99}.Select(n)
	return Scenario{
		Name:      "churn+loss",
		N:         n,
		Rounds:    24,
		Algorithm: AlgoPushPull,
		Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			Loss{At: 5, Rate: 0.1, Seed: 7},
			CrashAt{At: 8, Nodes: crash},
			InjectRumor{At: 10, Node: 1, Rumor: 1},
			JoinAt{At: 16, Nodes: crash[:len(crash)/2]},
		},
	}
}

// TestScenarioDeterministicAcrossWorkers is the acceptance determinism test:
// a churn+loss scenario must produce bit-identical results — totals, phase
// traces, rumor outcomes — for Workers ∈ {1, 2, 8}.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	sc := churnLossScenario(6000)
	ref, err := Run(context.Background(), sc, Config{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rumors[0].LiveInformed == 0 {
		t.Fatalf("reference run informed nobody: %+v", ref)
	}
	for _, workers := range []int{2, 8} {
		res, err := Run(context.Background(), sc, Config{Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: results differ:\n  1: %+v\n  %d: %+v", workers, ref, workers, res)
		}
	}
}

// TestScenarioAllAlgorithmsSpread sanity-checks every steppable protocol on
// a static scenario: a single rumor reaches everyone within the budget.
func TestScenarioAllAlgorithmsSpread(t *testing.T) {
	for _, algo := range Algorithms() {
		sc := Scenario{
			N:         500,
			Rounds:    40,
			Algorithm: algo,
			Events:    []Event{InjectRumor{At: 1, Node: 0, Rumor: 0}},
		}
		res, err := Run(context.Background(), sc, Config{Seed: 3, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		out := res.Rumors[0]
		if out.LiveFraction != 1 {
			t.Errorf("%s: informed fraction %.3f, want 1", algo, out.LiveFraction)
		}
		if out.CompletionRound == 0 {
			t.Errorf("%s: no completion round within %d rounds", algo, sc.Rounds)
		}
	}
}

// TestCrashStopsSpreading pins the crash semantics end-to-end: crashing
// every informed node right after injection leaves the rumor dead.
func TestCrashStopsSpreading(t *testing.T) {
	sc := Scenario{
		N:         100,
		Rounds:    20,
		Algorithm: AlgoPush,
		Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			// Crash the only source before round 1 even runs.
			CrashAt{At: 1, Nodes: []int{0}},
		},
	}
	res, err := Run(context.Background(), sc, Config{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rumors[0].LiveInformed; got != 0 {
		t.Fatalf("rumor spread from a crashed source: %d live informed", got)
	}
}

// TestJoinRestartsUninformed pins the JoinAt semantics under the driver: a
// crashed-then-rejoined node comes back empty and can be re-informed.
func TestJoinRestartsUninformed(t *testing.T) {
	sc := Scenario{
		N:         300,
		Rounds:    50,
		Algorithm: AlgoPushPull,
		Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			CrashAt{At: 12, Nodes: []int{5, 6, 7}},
			JoinAt{At: 20, Nodes: []int{5, 6, 7}},
		},
	}
	res, err := Run(context.Background(), sc, Config{Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// By round 12 the rumor has long saturated n=300; the rejoiners come
	// back uninformed, and push-pull re-informs them well within 30 rounds.
	if got := res.Rumors[0].LiveFraction; got != 1 {
		t.Fatalf("rejoined nodes not re-informed: fraction %.3f", got)
	}
	// The rejoin opens a phase whose live count is back to n.
	last := res.Phases[len(res.Phases)-1]
	if last.Live != 300 {
		t.Fatalf("final phase live = %d, want 300", last.Live)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3 (inject, crash, join)", len(res.Phases))
	}
}

// TestLossSlowsSpreading checks the loss path end-to-end: heavy loss must
// strictly reduce how far a push broadcast gets in a fixed round budget.
func TestLossSlowsSpreading(t *testing.T) {
	base := Scenario{
		N:         2000,
		Rounds:    8,
		Algorithm: AlgoPush,
		Events:    []Event{InjectRumor{At: 1, Node: 0, Rumor: 0}},
	}
	clean, err := Run(context.Background(), base, Config{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.Events = append([]Event{Loss{At: 1, Rate: 0.6, Seed: 9}}, lossy.Events...)
	dropped, err := Run(context.Background(), lossy, Config{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Rumors[0].LiveInformed >= clean.Rumors[0].LiveInformed {
		t.Fatalf("60%% loss did not slow spreading: %d vs %d informed",
			dropped.Rumors[0].LiveInformed, clean.Rumors[0].LiveInformed)
	}
}

// TestMultiRumorOutcomes checks that independently injected rumors are
// tracked independently and report their injection rounds.
func TestMultiRumorOutcomes(t *testing.T) {
	sc := Scenario{
		N:         400,
		Rounds:    40,
		Algorithm: AlgoPushPull,
		Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			InjectRumor{At: 15, Node: 7, Rumor: 3},
		},
	}
	res, err := Run(context.Background(), sc, Config{Seed: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rumors) != 2 {
		t.Fatalf("got %d rumor outcomes, want 2", len(res.Rumors))
	}
	if res.Rumors[0].Rumor != 0 || res.Rumors[1].Rumor != 3 {
		t.Fatalf("rumor outcomes out of order: %+v", res.Rumors)
	}
	if res.Rumors[0].InjectRound != 1 || res.Rumors[1].InjectRound != 15 {
		t.Fatalf("inject rounds wrong: %+v", res.Rumors)
	}
	for _, ro := range res.Rumors {
		if ro.LiveFraction != 1 || ro.CompletionRound == 0 {
			t.Fatalf("rumor %d did not complete: %+v", ro.Rumor, ro)
		}
	}
	if res.Rumors[1].CompletionRound <= res.Rumors[0].CompletionRound {
		t.Fatalf("late rumor completed before the early one: %+v", res.Rumors)
	}
}

// TestTimelineUnderClosedProtocol exercises Timeline.Attach: the same churn
// events, applied under a hand-rolled closed push loop through the engine
// hook, must fail and revive nodes at the right rounds.
func TestTimelineUnderClosedProtocol(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(
		CrashAt{At: 3, Nodes: []int{1, 2}},
		Loss{At: 4, Rate: 1, Seed: 1},
		JoinAt{At: 6, Nodes: []int{1}},
	)
	tl.Attach(net)
	liveAt := map[int]int{}
	for r := 1; r <= 6; r++ {
		net.ExecRound(func(i int) phonecall.Intent {
			return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1})
		}, nil, nil)
		liveAt[r] = net.LiveCount()
	}
	if tl.Err() != nil {
		t.Fatal(tl.Err())
	}
	if liveAt[2] != 50 || liveAt[3] != 48 || liveAt[6] != 49 {
		t.Fatalf("timeline live counts wrong: %v", liveAt)
	}
	if tl.Remaining() != 0 {
		t.Fatalf("%d events never fired", tl.Remaining())
	}
	if net.LossRate() != 1 {
		t.Fatalf("loss rate = %v, want 1", net.LossRate())
	}
}

// TestTimelineInjectWithoutTrackerErrs pins the one unsupported combination:
// InjectRumor under a closed protocol reports an error instead of silently
// doing nothing.
func TestTimelineInjectWithoutTrackerErrs(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(InjectRumor{At: 1, Node: 0, Rumor: 0})
	tl.Attach(net)
	net.ExecRound(func(i int) phonecall.Intent { return phonecall.Silent() }, nil, nil)
	if tl.Err() == nil {
		t.Fatal("InjectRumor without tracker should error")
	}
}

// TestFromTimed checks the adversary adapter: a timed Section 8 adversary
// becomes a CrashAt event with the same oblivious selection.
func TestFromTimed(t *testing.T) {
	timed := failure.Timed{Round: 9, Adversary: failure.Random{Count: 5, Seed: 2}}
	ev := FromTimed(timed, 100)
	if ev.At != 9 {
		t.Fatalf("At = %d, want 9", ev.At)
	}
	if want := (failure.Random{Count: 5, Seed: 2}).Select(100); !reflect.DeepEqual(ev.Nodes, want) {
		t.Fatalf("Nodes = %v, want %v", ev.Nodes, want)
	}
}

// TestValidate covers the scenario validation paths.
func TestValidate(t *testing.T) {
	inject := InjectRumor{At: 1, Node: 0, Rumor: 0}
	for _, tc := range []struct {
		name string
		sc   Scenario
		ok   bool
	}{
		{"valid", Scenario{N: 10, Rounds: 5, Events: []Event{inject}}, true},
		{"tiny n", Scenario{N: 1, Rounds: 5, Events: []Event{inject}}, false},
		{"no rounds", Scenario{N: 10, Rounds: 0, Events: []Event{inject}}, false},
		{"no inject", Scenario{N: 10, Rounds: 5}, false},
		{"bad algo", Scenario{N: 10, Rounds: 5, Algorithm: "gossip9000", Events: []Event{inject}}, false},
		{"crash out of range", Scenario{N: 10, Rounds: 5, Events: []Event{inject, CrashAt{At: 2, Nodes: []int{10}}}}, false},
		{"join out of range", Scenario{N: 10, Rounds: 5, Events: []Event{inject, JoinAt{At: 2, Nodes: []int{-1}}}}, false},
		{"loss rate", Scenario{N: 10, Rounds: 5, Events: []Event{inject, Loss{At: 1, Rate: 1.5}}}, false},
		{"inject node", Scenario{N: 10, Rounds: 5, Events: []Event{InjectRumor{At: 1, Node: 99, Rumor: 0}}}, false},
		{"wide rumor id", Scenario{N: 10, Rounds: 5, Events: []Event{InjectRumor{At: 1, Node: 0, Rumor: 64}}}, true},
		{"wide forced by window", Scenario{N: 10, Rounds: 5, MaxInFlight: 4, Events: []Event{inject}}, true},
		{"negative window", Scenario{N: 10, Rounds: 5, MaxInFlight: -1, Events: []Event{inject}}, false},
		{"wide rejects corrupt", Scenario{N: 10, Rounds: 5, Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 9999},
			CorruptAt{At: 2, Nodes: []int{1}, Adversary: AdversarySpec{Kind: AdvLiar, Seed: 1}},
		}}, false},
	} {
		err := tc.sc.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestGenerators pins the shapes the generators emit.
func TestGenerators(t *testing.T) {
	t.Run("periodic churn", func(t *testing.T) {
		evs := PeriodicChurn(1000, 5, 10, 50, 4, 30, 1)
		// Crashes at 5, 15, 25; rejoins at 9, 19, 29.
		if len(evs) != 6 {
			t.Fatalf("got %d events: %+v", len(evs), evs)
		}
		crash, join := 0, 0
		for _, ev := range evs {
			switch e := ev.(type) {
			case CrashAt:
				crash++
				if len(e.Nodes) != 50 {
					t.Fatalf("crash batch size %d, want 50", len(e.Nodes))
				}
			case JoinAt:
				join++
			}
		}
		if crash != 3 || join != 3 {
			t.Fatalf("crash=%d join=%d, want 3/3", crash, join)
		}
		// A crash batch rejoins as the same node set.
		c, j := evs[0].(CrashAt), evs[1].(JoinAt)
		if j.At != c.At+4 || !reflect.DeepEqual(c.Nodes, j.Nodes) {
			t.Fatalf("rejoin does not mirror its crash: %+v vs %+v", c, j)
		}
		// Deterministic.
		again := PeriodicChurn(1000, 5, 10, 50, 4, 30, 1)
		if !reflect.DeepEqual(evs, again) {
			t.Fatal("PeriodicChurn not deterministic")
		}
	})

	t.Run("flap", func(t *testing.T) {
		nodes := []int{1, 2, 3}
		evs := Flap(nodes, 2, 3, 5, 18)
		// Down at 2, 10, 18; up at 5, 13 (21 is past horizon).
		if len(evs) != 5 {
			t.Fatalf("got %d events: %+v", len(evs), evs)
		}
		if c, ok := evs[0].(CrashAt); !ok || c.At != 2 || !reflect.DeepEqual(c.Nodes, nodes) {
			t.Fatalf("first flap event wrong: %+v", evs[0])
		}
		if j, ok := evs[1].(JoinAt); !ok || j.At != 5 {
			t.Fatalf("second flap event wrong: %+v", evs[1])
		}
	})

	t.Run("waves", func(t *testing.T) {
		evs := Waves(1000, 4, 3, 3, 100, 2, 1)
		if len(evs) != 3 {
			t.Fatalf("got %d events", len(evs))
		}
		sizes := []int{}
		for k, ev := range evs {
			c := ev.(CrashAt)
			if c.At != 4+3*k {
				t.Fatalf("wave %d at round %d, want %d", k, c.At, 4+3*k)
			}
			sizes = append(sizes, len(c.Nodes))
		}
		if !reflect.DeepEqual(sizes, []int{100, 200, 400}) {
			t.Fatalf("wave sizes = %v, want [100 200 400]", sizes)
		}
	})
}

// TestRunScenarioWithGeneratedChurn runs a generator-built scenario
// end-to-end: periodic churn with rejoin under push-pull keeps a large
// majority informed.
func TestRunScenarioWithGeneratedChurn(t *testing.T) {
	events := append(
		PeriodicChurn(2000, 6, 8, 100, 4, 36, 21),
		InjectRumor{At: 1, Node: 0, Rumor: 0},
		Loss{At: 1, Rate: 0.05, Seed: 5},
	)
	sc := Scenario{Name: "generated churn", N: 2000, Rounds: 40, Events: events}
	res, err := Run(context.Background(), sc, Config{Seed: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.Rumors[0].LiveFraction; frac < 0.95 {
		t.Fatalf("push-pull under mild churn informed only %.3f of live nodes", frac)
	}
	if len(res.Phases) < 4 {
		t.Fatalf("expected several phases, got %d", len(res.Phases))
	}
}

// TestEclipseIsolatesVictims pins the eclipse dropper's two-sided physics.
// With every non-victim corrupted by the same eclipse, a rumor injected at a
// dropper spreads through the whole non-victim population but never crosses
// into the victim set: calls to victims become silence and droppers answer no
// pulls. A rumor injected AT a victim, though, still escapes — delivery stays
// honest, so the droppers learn it the moment the victim pushes at them.
func TestEclipseIsolatesVictims(t *testing.T) {
	const n = 300
	victims := []int{7, 8, 9}
	droppers := make([]int, 0, n-len(victims))
	for i := 0; i < n; i++ {
		if i != 7 && i != 8 && i != 9 {
			droppers = append(droppers, i)
		}
	}
	sc := Scenario{
		Name:      "total eclipse",
		N:         n,
		Rounds:    40,
		Algorithm: AlgoPushPull,
		Events: []Event{
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			InjectRumor{At: 1, Node: 7, Rumor: 1},
			CorruptAt{At: 1, Nodes: droppers, Adversary: AdversarySpec{Kind: AdvEclipse, Victims: victims}},
		},
	}
	res, err := Run(context.Background(), sc, Config{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rumor 0 (from a dropper): everyone except the victims, exactly.
	if got := res.Rumors[0].LiveInformed; got != n-len(victims) {
		t.Errorf("eclipsed rumor reached %d nodes, want exactly %d", got, n-len(victims))
	}
	if res.Rumors[0].CompletionRound != 0 {
		t.Error("eclipsed rumor reported completion despite dark victims")
	}
	// Rumor 1 (injected at the eclipsed node 7): the victim's own pushes carry
	// it out, so at least the whole non-victim population learns it.
	if got := res.Rumors[1].LiveInformed; got < n-len(victims) {
		t.Errorf("victim-injected rumor reached only %d nodes, want ≥ %d", got, n-len(victims))
	}
}

// TestSpammerSlowsConvergence compares the same push-pull run honest and with
// a fifth of the network spamming: with everything else fixed, convergence
// must be strictly later (or lost) under the flood.
func TestSpammerSlowsConvergence(t *testing.T) {
	const n = 500
	base := Scenario{
		N:         n,
		Rounds:    60,
		Algorithm: AlgoPushPull,
		Events:    []Event{InjectRumor{At: 1, Node: 0, Rumor: 0}},
	}
	honest, err := Run(context.Background(), base, Config{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if honest.Rumors[0].CompletionRound == 0 {
		t.Fatal("honest run did not converge — budget too tight for the comparison")
	}

	spammers := failure.Random{Count: n / 5, Seed: 21}.Select(n)
	picked := spammers[:0]
	for _, i := range spammers {
		if i != 0 {
			picked = append(picked, i)
		}
	}
	corrupt := base
	corrupt.Events = append([]Event{
		CorruptAt{At: 1, Nodes: picked, Adversary: AdversarySpec{Kind: AdvSpammer, Seed: 31}},
	}, base.Events...)
	attacked, err := Run(context.Background(), corrupt, Config{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := attacked.Rumors[0].CompletionRound
	if got != 0 && got <= honest.Rumors[0].CompletionRound {
		t.Errorf("spammed run converged at round %d, honest at %d — spam did not slow the spread",
			got, honest.Rumors[0].CompletionRound)
	}
}
