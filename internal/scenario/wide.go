package scenario

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/phonecall"
	"repro/internal/policy"
	"repro/internal/rumorset"
)

// The wide path: the same steppable push/pull/push-pull protocols over the
// scalable rumor-set ledger (internal/rumorset) instead of the uint64
// holdings bitmask. A message carries the sorted rumor IDs the sender holds
// in its IDs field and is charged the digest bytes plus one payload per
// carried rumor; converged rumors are retired between rounds (GC), so the
// in-flight window — not the total stream length — bounds per-node state and
// message size. Workloads that fit the bitmask (≤64 dense IDs, no explicit
// window) never come here, keeping the legacy path bit-identical.

// wideProtocol binds one steppable protocol to a network and a rumor set.
// Per-node scratch buffers keep the round loop allocation-light; intent and
// response use separate buffers because both messages stay referenced until
// the engine's delivery phase.
type wideProtocol struct {
	algo     Algorithm
	net      *phonecall.Network
	set      *rumorset.Set
	overhead int // bits charged for the non-payload, non-digest part
	scratch  []wideBufs
}

type wideBufs struct {
	ids    []rumorset.ID      // AppendHeld scratch (sorted holdings)
	intent []phonecall.NodeID // backing array of the intent message's IDs
	resp   []phonecall.NodeID // backing array of the response message's IDs
	merge  []rumorset.ID      // deliver-side decode scratch
}

func newWideProtocol(algo Algorithm, net *phonecall.Network, set *rumorset.Set) *wideProtocol {
	return &wideProtocol{
		algo:     algo,
		net:      net,
		set:      set,
		overhead: net.MessageSize(phonecall.Message{Tag: tagRumorSet}),
		scratch:  make([]wideBufs, set.Nodes()),
	}
}

// message encodes a holdings digest: the sorted rumor IDs (already converted
// into dst) plus the accounting — overhead, the summary encoding's bytes, and
// one b-bit payload per carried rumor.
func (p *wideProtocol) message(ids []phonecall.NodeID, sorted []rumorset.ID) phonecall.Message {
	return phonecall.Message{
		Tag:   tagRumorSet,
		Rumor: true,
		IDs:   ids,
		Bits:  p.overhead + rumorset.SummarySize(sorted)*8 + len(sorted)*p.net.PayloadBits(),
	}
}

// held fills the node's sorted holdings into b.ids and converts them into the
// given NodeID buffer (the wire carries rumor IDs in the message's IDs
// field).
func (p *wideProtocol) held(i int, out *[]phonecall.NodeID) []rumorset.ID {
	b := &p.scratch[i]
	b.ids = p.set.AppendHeld(b.ids[:0], i)
	buf := (*out)[:0]
	for _, id := range b.ids {
		buf = append(buf, phonecall.NodeID(id))
	}
	*out = buf
	return b.ids
}

// intent implements the per-node initiation, mirroring the bitmask
// protocol's shape: push stays silent when empty, pull stays silent when the
// node holds every in-flight rumor, push-pull always exchanges.
func (p *wideProtocol) intent(i int) phonecall.Intent {
	b := &p.scratch[i]
	switch p.algo {
	case AlgoPush:
		sorted := p.held(i, &b.intent)
		if len(sorted) == 0 {
			return phonecall.Silent()
		}
		return phonecall.PushIntent(phonecall.RandomTarget(), p.message(b.intent, sorted))
	case AlgoPull:
		if p.set.HeldCount(i) == p.set.Active() {
			// Holds every in-flight rumor: nothing left to ask for.
			return phonecall.Silent()
		}
		return phonecall.PullIntent(phonecall.RandomTarget())
	default: // AlgoPushPull
		sorted := p.held(i, &b.intent)
		if len(sorted) == 0 {
			return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
		}
		return phonecall.ExchangeIntent(phonecall.RandomTarget(), p.message(b.intent, sorted))
	}
}

// response answers pulls with the responder's holdings digest.
func (p *wideProtocol) response(j int) (phonecall.Message, bool) {
	if p.algo == AlgoPush {
		return phonecall.Message{}, false
	}
	b := &p.scratch[j]
	sorted := p.held(j, &b.resp)
	if len(sorted) == 0 {
		return phonecall.Message{}, false
	}
	return p.message(b.resp, sorted), true
}

// deliver merges every received digest into the receiver's ledger row. IDs
// that expired while the message was in flight fail the ledger lookup and
// are dropped (the slot-reuse ABA guard).
func (p *wideProtocol) deliver(i int, inbox []phonecall.Message) {
	b := &p.scratch[i]
	b.merge = b.merge[:0]
	for _, m := range inbox {
		if m.Tag != tagRumorSet {
			continue
		}
		for _, id := range m.IDs {
			b.merge = append(b.merge, rumorset.ID(id))
		}
	}
	if len(b.merge) > 0 {
		p.set.MarkIDs(i, b.merge)
	}
}

// wideFate is the coordinator's per-rumor ledger entry on the wide path.
type wideFate struct {
	injectRound     int
	completionRound int // round the rumor converged and was retired (0: never)
	informedAtEnd   int // live-informed when retired or when the budget ran out
}

// applyWide routes one timeline event to the network and the rumor-set
// ledger (the wide analogue of Event.Apply over the bitmask tracker).
func applyWide(ev Event, net *phonecall.Network, set *rumorset.Set) error {
	switch e := ev.(type) {
	case CrashAt:
		set.Fail(e.Nodes...)
		net.Fail(e.Nodes...)
	case JoinAt:
		set.Revive(e.Nodes...)
		net.Revive(e.Nodes...)
	case Loss:
		net.SetLoss(e.Rate, e.Seed)
	case InjectRumor:
		if err := set.Inject(e.Node, rumorset.ID(e.Rumor)); err != nil {
			return fmt.Errorf("scenario: round %d: %w", e.EventRound(), err)
		}
	case ZoneOutage:
		tv, err := topology(net, "zone outage")
		if err != nil {
			return err
		}
		if e.Zone < 0 || e.Zone >= tv.Zones() {
			return fmt.Errorf("scenario: zone %d outside the topology's [0,%d)", e.Zone, tv.Zones())
		}
		members := tv.ZoneMembers(e.Zone)
		set.Fail(members...)
		net.Fail(members...)
	case ZoneHeal:
		tv, err := topology(net, "zone heal")
		if err != nil {
			return err
		}
		if e.Zone < 0 || e.Zone >= tv.Zones() {
			return fmt.Errorf("scenario: zone %d outside the topology's [0,%d)", e.Zone, tv.Zones())
		}
		members := tv.ZoneMembers(e.Zone)
		set.Revive(members...)
		net.Revive(members...)
	case Partition, HealPartition:
		// Pure selector toggles; the ledger is untouched.
		return ev.Apply(net, nil)
	default:
		// Validate rejects everything else (CorruptAt) on the wide path.
		return fmt.Errorf("%w: event %T unsupported on the wide rumor-set path", ErrSpec, ev)
	}
	return nil
}

// wideInformed snapshots the live-informed count of every in-flight rumor,
// ordered by rumor ID (expired rumors no longer appear — their fate lives in
// the coordinator ledger).
func wideInformed(set *rumorset.Set, ids []rumorset.ID) ([]RumorCount, []rumorset.ID) {
	ids = set.ActiveIDs(ids[:0])
	out := make([]RumorCount, 0, len(ids))
	for _, id := range ids {
		out = append(out, RumorCount{Rumor: phonecall.RumorID(id), LiveInformed: set.LiveInformed(id)})
	}
	return out, ids
}

// runWide executes the scenario over the rumor-set ledger. Structure mirrors
// Run; the differences are the ledger (slots instead of bitmasks), the
// between-rounds GC retiring converged rumors, and the per-rumor fate ledger
// that remembers retired rumors after their slots are reused.
func runWide(ctx context.Context, sc Scenario, cfg Config, algo Algorithm, workers int) (res Result, err error) {
	window := sc.MaxInFlight
	if window == 0 {
		window = distinctRumors(sc.Events)
	}
	net, err := phonecall.New(phonecall.Config{
		N:           sc.N,
		Seed:        cfg.Seed,
		PayloadBits: cfg.PayloadBits,
		Workers:     workers,
	})
	if err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	if _, err := policy.Install(net, cfg.Topology, cfg.Policy); err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	set, err := rumorset.New(sc.N, window)
	if err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	if ctx != nil {
		net.SetContext(ctx)
		defer phonecall.RecoverAbort(&err)
	}
	if cfg.Observer != nil {
		if b, ok := cfg.Observer.(phonecall.NetworkBinder); ok {
			b.BindNetwork(net)
		}
		// TrackerBinder observers (the oracle's honest-node invariants) are
		// bitmask-path only; the wide path has no RumorTracker to bind.
		net.Observe(cfg.Observer)
	}
	proto := newWideProtocol(algo, net, set)
	events := sortEvents(sc.Events)

	res = Result{Scenario: sc.Name, Algorithm: algo, N: sc.N, Seed: cfg.Seed, Rounds: sc.Rounds}
	fates := map[rumorset.ID]*wideFate{}
	var scanIDs, retire []rumorset.ID

	next := 0
	cur := PhaseReport{FromRound: 1}
	closePhase := func(to int) {
		cur.ToRound = to
		cur.Live = net.LiveCount()
		cur.Informed, scanIDs = wideInformed(set, scanIDs)
		res.Phases = append(res.Phases, cur)
	}

	for r := 1; r <= sc.Rounds; r++ {
		if next < len(events) && events[next].EventRound() <= r && r > cur.FromRound {
			closePhase(r - 1)
			cur = PhaseReport{FromRound: r}
		}
		for next < len(events) && events[next].EventRound() <= r {
			ev := events[next]
			if err := applyWide(ev, net, set); err != nil {
				return Result{}, err
			}
			if inj, ok := ev.(InjectRumor); ok {
				if f := fates[rumorset.ID(inj.Rumor)]; f == nil {
					fates[rumorset.ID(inj.Rumor)] = &wideFate{injectRound: r}
				} else if f.completionRound > 0 {
					// Re-injection of a retired rumor opens a new epoch.
					f.completionRound, f.informedAtEnd = 0, 0
				}
			}
			cur.Events = append(cur.Events, ev.Describe())
			next++
		}

		rep := net.ExecRound(proto.intent, proto.response, proto.deliver)
		cur.Messages += rep.Messages
		cur.Bits += rep.Bits
		if rep.MaxComms > cur.MaxComms {
			cur.MaxComms = rep.MaxComms
		}

		// GC: retire every rumor the whole live population now holds,
		// recording its fate first (the slot is reused afterwards). Mirrors
		// the bitmask path's completion rule — later churn does not clear a
		// recorded completion — but additionally frees the slot.
		if live := net.LiveCount(); live > 0 {
			scanIDs = set.ActiveIDs(scanIDs[:0])
			retire = retire[:0]
			for _, id := range scanIDs {
				if li := set.LiveInformed(id); li >= live {
					f := fates[id]
					f.completionRound = r
					f.informedAtEnd = li
					retire = append(retire, id)
				}
			}
			set.Retire(retire...)
		}
	}
	closePhase(sc.Rounds)

	m := net.Metrics()
	st := set.Snapshot()
	res.Live = net.LiveCount()
	res.LostInjects = st.Lost
	res.RumorsExpired = st.Expired
	res.Messages = m.Messages
	res.ControlMessages = m.ControlMessages
	res.Bits = m.Bits
	res.MessagesPerNode = m.MessagesPerNode()
	res.MaxCommsPerRound = m.MaxCommsPerRound

	ordered := make([]rumorset.ID, 0, len(fates))
	for id := range fates {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, id := range ordered {
		f := fates[id]
		out := RumorOutcome{
			Rumor:           phonecall.RumorID(id),
			InjectRound:     f.injectRound,
			CompletionRound: f.completionRound,
		}
		if f.completionRound > 0 {
			// Retired: converged over the then-live population.
			out.LiveInformed = f.informedAtEnd
			out.LiveFraction = 1
		} else {
			out.LiveInformed = set.LiveInformed(id)
			if res.Live > 0 {
				out.LiveFraction = float64(out.LiveInformed) / float64(res.Live)
			}
		}
		res.Rumors = append(res.Rumors, out)
	}
	return res, nil
}
