package scenario

import (
	"errors"
	"fmt"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// Adversarial timeline events: CorruptAt installs a Byzantine behavior
// (internal/phonecall's Behavior seam) on a node set at a scheduled round,
// exactly like CrashAt fails one. Corruption composes with the crash/join/
// loss events — a corrupted node can later crash, a rejoined node stays
// corrupted — and, because behaviors are pure rewrites of outgoing traffic,
// the same CorruptAt runs unchanged on the simulator, the lock-step live
// runtime (through the wrapped engine callbacks) and the free-running
// runtime (which applies the same rewrites around its send path).

// ErrSpec marks scenario specification errors: malformed events, unknown
// kinds, out-of-range parameters. errors.Is-able through every Build and
// Validate path.
var ErrSpec = errors.New("invalid scenario")

// AdversaryKind names a misbehavior from the library.
type AdversaryKind string

// The misbehavior library (see internal/phonecall/behavior.go for the exact
// semantics of each).
const (
	// AdvLiar advertises wrong holdings: hides true rumor bits, forges bits
	// in the unregistered rumor space.
	AdvLiar AdversaryKind = "liar"
	// AdvSpammer floods junk pushes and junk pull-responses at Rate.
	AdvSpammer AdversaryKind = "spammer"
	// AdvEclipse silently drops all traffic between the corrupted node and
	// the Victims set.
	AdvEclipse AdversaryKind = "eclipse"
	// AdvStale answers with the holdings frozen at corruption time (mute
	// when the node held nothing).
	AdvStale AdversaryKind = "stale"
)

// AdversaryKinds lists the library in presentation order.
func AdversaryKinds() []AdversaryKind {
	return []AdversaryKind{AdvLiar, AdvSpammer, AdvEclipse, AdvStale}
}

// AdversarySpec configures one misbehavior.
type AdversarySpec struct {
	// Kind selects the misbehavior.
	Kind AdversaryKind
	// Rate is the spammer's per-round spam probability in [0,1]; 0 defaults
	// to 1 (always spam). Ignored by the other kinds.
	Rate float64
	// Seed drives the liar's and spammer's hash streams.
	Seed uint64
	// Victims is the eclipse dropper's target set. Ignored by the other
	// kinds.
	Victims []int
}

// Validate checks the spec against the network size.
func (s AdversarySpec) Validate(n int) error {
	switch s.Kind {
	case AdvLiar, AdvSpammer, AdvEclipse, AdvStale:
	default:
		return fmt.Errorf("%w: unknown adversary kind %q (have liar, spammer, eclipse, stale)", ErrSpec, s.Kind)
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("%w: adversary rate %v outside [0,1]", ErrSpec, s.Rate)
	}
	if err := checkNodes(n, s.Victims); err != nil {
		return fmt.Errorf("%w: adversary victim %v", ErrSpec, err)
	}
	return nil
}

// CorruptAt installs the configured misbehavior on the listed nodes at the
// start of round At. Corrupted nodes keep running — they initiate, respond
// and receive — but their outgoing traffic is rewritten by the behavior.
// Corrupting an already-corrupted node replaces its behavior.
type CorruptAt struct {
	At        int
	Nodes     []int
	Adversary AdversarySpec
}

// EventRound implements Event.
func (e CorruptAt) EventRound() int { return e.At }

// Describe implements Event.
func (e CorruptAt) Describe() string {
	return fmt.Sprintf("corrupt %d nodes (%s)", len(e.Nodes), e.Adversary.Kind)
}

// Apply implements Event. Works with or without a tracker: closed algorithms
// (tr == nil) have no holdings, so the stale adversary freezes to the empty
// mask (mute) and the liar forges nothing.
func (e CorruptAt) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	var held func(int) uint64
	var registered func() uint64
	if tr != nil {
		held = tr.Held
		registered = tr.Registered
	}
	for _, i := range e.Nodes {
		b, err := e.BehaviorFor(i, held, registered)
		if err != nil {
			return fmt.Errorf("scenario: corrupt at round %d: %w", e.At, err)
		}
		net.SetBehavior(i, b)
	}
	return nil
}

// BehaviorFor builds the phonecall behavior this event installs on one node.
// held and registered supply the rumor state the adversary snapshots at
// corruption time; either may be nil when no tracker exists (closed
// algorithms, or reference drivers that carry their own state). Exported so
// the oracle's reference driver and the free-running runtime construct the
// exact same behavior from the same event.
func (e CorruptAt) BehaviorFor(node int, held func(int) uint64, registered func() uint64) (phonecall.Behavior, error) {
	switch e.Adversary.Kind {
	case AdvLiar:
		return phonecall.Liar{Seed: e.Adversary.Seed, Registered: registered}, nil
	case AdvSpammer:
		return phonecall.Spammer{Rate: e.Adversary.Rate, Seed: e.Adversary.Seed}, nil
	case AdvEclipse:
		return phonecall.NewEclipse(e.Adversary.Victims), nil
	case AdvStale:
		var frozen uint64
		if held != nil {
			frozen = held(node)
		}
		return phonecall.Stale{Frozen: frozen}, nil
	default:
		return nil, fmt.Errorf("%w: unknown adversary kind %q", ErrSpec, e.Adversary.Kind)
	}
}

// Infiltrate emits escalating corruption waves: wave k (k = 0, 1, …)
// corrupts count fresh random nodes at start + k·gap with the given
// misbehavior. The adversarial sibling of Waves: where Waves probes the o(F)
// crash-tolerance claim, Infiltrate probes graceful degradation as the
// Byzantine fraction grows mid-broadcast.
func Infiltrate(n, start, gap, waves, count int, adv AdversarySpec, seed uint64) []Event {
	if gap < 1 {
		gap = 1
	}
	var out []Event
	for k := 0; k < waves; k++ {
		batch := pick(n, count, rng.Mix(seed, 0xbadf00d, uint64(k)))
		if len(batch) == 0 {
			break
		}
		out = append(out, CorruptAt{At: start + k*gap, Nodes: batch, Adversary: adv})
	}
	return out
}
