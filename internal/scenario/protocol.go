package scenario

import (
	"fmt"
	"math/bits"

	"repro/internal/phonecall"
)

// The steppable protocols: multi-rumor generalizations of the classical
// uniform gossip protocols, expressed directly through the engine's per-node
// callback contract so the scenario driver can interleave timeline events
// between rounds. A node's holdings are a single uint64 bitmask (one bit per
// rumor, see phonecall.RumorTracker); a message carries the sender's whole
// holdings and is charged one payload per carried rumor.
//
// The paper's clustering algorithms are phase-structured, closed drivers and
// are not steppable; they run under scenarios through Timeline.Attach
// instead (churn and loss, single implicit rumor).

// Algorithm selects a steppable scenario protocol.
type Algorithm string

// The steppable protocols.
const (
	// AlgoPush: every node holding at least one rumor pushes its holdings to
	// a uniformly random node; empty nodes stay silent.
	AlgoPush Algorithm = "push"
	// AlgoPull: every node missing at least one injected rumor pulls from a
	// uniformly random node (anti-entropy); the responder answers with its
	// holdings.
	AlgoPull Algorithm = "pull"
	// AlgoPushPull: every node exchanges with a uniformly random node,
	// sending its holdings (if any) and receiving the callee's.
	AlgoPushPull Algorithm = "push-pull"
)

// Algorithms lists the steppable protocols in comparison order.
func Algorithms() []Algorithm { return []Algorithm{AlgoPush, AlgoPull, AlgoPushPull} }

// orDefault resolves the empty algorithm to the default and rejects unknown
// names.
func (a Algorithm) orDefault() (Algorithm, error) {
	switch a {
	case "":
		return AlgoPushPull, nil
	case AlgoPush, AlgoPull, AlgoPushPull:
		return a, nil
	default:
		return "", fmt.Errorf("scenario: unknown algorithm %q (have push, pull, push-pull)", a)
	}
}

// tagRumorSet marks messages whose Value is a holdings bitmask.
const tagRumorSet uint8 = 111

// protocol binds one steppable protocol to a network and tracker.
type protocol struct {
	algo     Algorithm
	net      *phonecall.Network
	tr       *phonecall.RumorTracker
	overhead int // bits charged for the non-payload part of a holdings message
}

func newProtocol(algo Algorithm, net *phonecall.Network, tr *phonecall.RumorTracker) *protocol {
	return &protocol{
		algo: algo,
		net:  net,
		tr:   tr,
		// Tag and counter bits, as the engine would charge a payload-free
		// message; each carried rumor then adds one b-bit payload.
		overhead: net.MessageSize(phonecall.Message{Tag: tagRumorSet}),
	}
}

// message encodes a holdings bitmask, charged one payload per carried rumor.
func (p *protocol) message(held uint64) phonecall.Message {
	return phonecall.Message{
		Tag:   tagRumorSet,
		Value: held,
		Rumor: true,
		Bits:  p.overhead + bits.OnesCount64(held)*p.net.PayloadBits(),
	}
}

// intent implements the per-node initiation of the selected protocol. Reads
// only node i's own holdings word plus the coordinator-written registered
// mask, per the engine's callback contract.
func (p *protocol) intent(i int) phonecall.Intent {
	held := p.tr.Held(i)
	switch p.algo {
	case AlgoPush:
		if held == 0 {
			return phonecall.Silent()
		}
		return phonecall.PushIntent(phonecall.RandomTarget(), p.message(held))
	case AlgoPull:
		if held == p.tr.Registered() {
			// Holds every rumor injected so far: nothing left to ask for.
			return phonecall.Silent()
		}
		return phonecall.PullIntent(phonecall.RandomTarget())
	default: // AlgoPushPull
		if held == 0 {
			return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
		}
		return phonecall.ExchangeIntent(phonecall.RandomTarget(), p.message(held))
	}
}

// response answers pulls with the responder's holdings (address-oblivious:
// one response per round, handed to every puller).
func (p *protocol) response(j int) (phonecall.Message, bool) {
	if p.algo == AlgoPush {
		return phonecall.Message{}, false
	}
	held := p.tr.Held(j)
	if held == 0 {
		return phonecall.Message{}, false
	}
	return p.message(held), true
}

// deliver merges every received holdings mask into the receiver's own.
func (p *protocol) deliver(i int, inbox []phonecall.Message) {
	var mask uint64
	for _, m := range inbox {
		if m.Tag == tagRumorSet {
			mask |= m.Value
		}
	}
	if mask != 0 {
		p.tr.MarkSet(i, mask)
	}
}
