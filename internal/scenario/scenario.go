// Package scenario implements deterministic, timeline-driven dynamic-network
// scenarios on top of the phone-call simulator: timed crash waves and
// rejoins (churn), oblivious per-call message loss, and multi-rumor
// workloads. The paper's model (and the repository's E1–E7 experiments) is
// static — an oblivious adversary picks its victims before round 0 — whereas
// real gossip deployments live under continuous membership churn and loss;
// this package is what lets the reproduction measure how the paper's
// algorithms and the baselines behave under exactly those dynamics.
//
// A Scenario is a typed event timeline (CrashAt, JoinAt, Loss, InjectRumor,
// CorruptAt) over a fixed round budget. It can be executed two ways:
//
//   - Run drives one of the round-steppable multi-rumor gossip protocols
//     (push, pull, push-pull) and returns a per-phase trace — the full
//     dynamic workload, including rejoin-as-uninformed and several rumors
//     spreading concurrently.
//   - Timeline.Attach layers the same churn and loss events under ANY
//     existing protocol (the paper's clustering algorithms, the baselines)
//     through the engine's OnRoundStart hook, without changing the per-node
//     callback contract. InjectRumor events need a tracker and are the one
//     event kind a closed algorithm cannot honor.
//
// Determinism contract: everything is a pure function of (scenario, seed).
// Events fire on the coordinator goroutine between rounds; random targets
// and loss drops are stateless hashes; the steppable protocols keep no
// shared mutable state beyond the engine's contract. Results are therefore
// bit-identical for any Workers value (locked in by the package tests), and
// scenarios compose with `-race` cleanly.
package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/failure"
	"repro/internal/phonecall"
	"repro/internal/policy"
)

// Event is one timeline entry. An event with EventRound() == r is applied at
// the start of engine round r (1-based, before any intent of that round is
// evaluated); values <= 1 apply before any communication at all.
type Event interface {
	// EventRound is the 1-based engine round at whose start the event fires.
	EventRound() int
	// Describe renders the event for per-phase traces.
	Describe() string
	// Apply executes the event against the network. tr may be nil when the
	// timeline runs under a closed (non-scenario-aware) protocol; events
	// that need per-rumor state return an error in that case.
	Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error
}

// CrashAt fails the listed nodes at the start of round At. Crashed nodes
// stop initiating, stop responding and drop everything addressed to them;
// per the live-participant rule they are charged nothing from then on.
type CrashAt struct {
	At    int
	Nodes []int
}

// EventRound implements Event.
func (e CrashAt) EventRound() int { return e.At }

// Describe implements Event.
func (e CrashAt) Describe() string { return fmt.Sprintf("crash %d nodes", len(e.Nodes)) }

// Apply implements Event.
func (e CrashAt) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	if tr != nil {
		tr.Fail(e.Nodes...)
	} else {
		net.Fail(e.Nodes...)
	}
	return nil
}

// JoinAt revives (or late-starts) the listed nodes at the start of round At.
// Under the scenario driver a joining node starts uninformed — it forgets
// every rumor it held before crashing. Under a closed protocol (Timeline
// without tracker) the node rejoins with whatever protocol state it had,
// which models a process that was partitioned away rather than restarted.
type JoinAt struct {
	At    int
	Nodes []int
}

// EventRound implements Event.
func (e JoinAt) EventRound() int { return e.At }

// Describe implements Event.
func (e JoinAt) Describe() string { return fmt.Sprintf("join %d nodes", len(e.Nodes)) }

// Apply implements Event.
func (e JoinAt) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	if tr != nil {
		tr.Revive(e.Nodes...)
	} else {
		net.Revive(e.Nodes...)
	}
	return nil
}

// Loss sets the oblivious per-call drop probability from round At on. Drops
// are charged per the live-participant rule (DESIGN.md §2): the initiator
// pays for its attempt, the target never participates. Rate 0 switches loss
// off again.
type Loss struct {
	At   int
	Rate float64
	Seed uint64
}

// EventRound implements Event.
func (e Loss) EventRound() int { return e.At }

// Describe implements Event.
func (e Loss) Describe() string { return fmt.Sprintf("loss rate %.2f", e.Rate) }

// Apply implements Event.
func (e Loss) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	net.SetLoss(e.Rate, e.Seed)
	return nil
}

// InjectRumor hands rumor Rumor to node Node at the start of round At —
// multi-rumor workloads inject different rumors at different nodes and
// times. Requires the scenario driver (a closed algorithm has no per-rumor
// state to inject into).
type InjectRumor struct {
	At    int
	Node  int
	Rumor phonecall.RumorID
}

// EventRound implements Event.
func (e InjectRumor) EventRound() int { return e.At }

// Describe implements Event.
func (e InjectRumor) Describe() string {
	return fmt.Sprintf("inject rumor %d at node %d", e.Rumor, e.Node)
}

// Apply implements Event.
func (e InjectRumor) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	if tr == nil {
		return fmt.Errorf("scenario: InjectRumor needs the scenario driver (closed protocols have no rumor tracker)")
	}
	return tr.Inject(e.Node, e.Rumor)
}

// FromTimed converts a timed oblivious adversary (internal/failure) into a
// CrashAt event, so every existing start-time adversary becomes a timed
// crash wave on a scenario timeline.
func FromTimed(t failure.Timed, n int) CrashAt {
	return CrashAt{At: t.Round, Nodes: t.Adversary.Select(n)}
}

// sortEvents returns a copy of events stably sorted by round, preserving the
// declaration order of same-round events (so Loss-then-Inject at round 1
// applies in that order).
func sortEvents(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].EventRound() < out[j].EventRound() })
	return out
}

// Timeline applies a sorted event sequence to a network as rounds execute,
// through the engine's OnRoundStart hook. It is the adapter that layers
// churn and loss under closed protocols (the paper's algorithms, the
// baselines) without touching their code.
type Timeline struct {
	events  []Event
	next    int
	tracker *phonecall.RumorTracker
	err     error
}

// NewTimeline builds a timeline from the events (stably sorted by round).
func NewTimeline(events ...Event) *Timeline {
	return &Timeline{events: sortEvents(events)}
}

// WithTracker routes crash/join/inject events through a rumor tracker so the
// per-rumor live counters stay consistent. Returns the timeline.
func (tl *Timeline) WithTracker(tr *phonecall.RumorTracker) *Timeline {
	tl.tracker = tr
	return tl
}

// Attach registers the timeline on the network. Subsequent ExecRound calls
// fire due events before evaluating intents. Check Err after the run: event
// application errors (for example InjectRumor without a tracker) stop the
// timeline but, running inside the engine, cannot abort the protocol.
func (tl *Timeline) Attach(net *phonecall.Network) {
	net.OnRoundStart(func(round int) { tl.advance(net, round) })
}

// advance applies every event due at or before round.
func (tl *Timeline) advance(net *phonecall.Network, round int) {
	for tl.err == nil && tl.next < len(tl.events) && tl.events[tl.next].EventRound() <= round {
		tl.err = tl.events[tl.next].Apply(net, tl.tracker)
		tl.next++
	}
}

// Err returns the first event-application error, if any.
func (tl *Timeline) Err() error { return tl.err }

// Remaining returns the number of events that have not fired yet (events
// scheduled past the rounds actually executed).
func (tl *Timeline) Remaining() int { return len(tl.events) - tl.next }

// Scenario is a deterministic dynamic-network workload: a network size, a
// round budget, a steppable protocol, and a typed event timeline.
type Scenario struct {
	// Name labels the scenario in traces and tables.
	Name string
	// N is the network size (required, >= 2).
	N int
	// Rounds is the round budget (required, >= 1). Dynamic workloads have no
	// global termination — rumors can keep re-spreading to joiners — so the
	// budget is explicit rather than derived.
	Rounds int
	// Algorithm selects the steppable protocol; defaults to AlgoPushPull.
	Algorithm Algorithm
	// Events is the timeline. It must inject at least one rumor (a scenario
	// without rumors measures nothing). Order among same-round events is
	// preserved.
	Events []Event
	// MaxInFlight bounds the rumor-set window on the wide (>64-rumor) path; 0
	// sizes the window to hold every distinct injected rumor. Setting it also
	// forces the wide path for small workloads (conformance testing against
	// the bitmask path). An injection that finds the window full — GC has not
	// reclaimed enough converged rumors — aborts the run with
	// rumorset.ErrFull; preplanned timelines have no one to backpressure.
	MaxInFlight int
}

// Wide reports whether the scenario needs the scalable rumor-set path: a
// rumor ID beyond the bitmask range, or an explicit MaxInFlight window.
func (sc Scenario) Wide() bool {
	if sc.MaxInFlight > 0 {
		return true
	}
	for _, ev := range sc.Events {
		if inj, ok := ev.(InjectRumor); ok && inj.Rumor >= phonecall.MaxRumors {
			return true
		}
	}
	return false
}

// distinctRumors counts the distinct rumor IDs the timeline injects.
func distinctRumors(events []Event) int {
	seen := map[phonecall.RumorID]bool{}
	for _, ev := range events {
		if inj, ok := ev.(InjectRumor); ok {
			seen[inj.Rumor] = true
		}
	}
	return len(seen)
}

// ValidateEvents bounds-checks a timeline against an n-node network: node
// indexes, loss rates, rumor IDs, and adversary specs. It is the single
// validation authority shared by the scenario driver, the run layer, and the
// live engines, so every engine rejects an invalid event identically —
// up-front, with an ErrSpec-typed error — instead of one engine erroring and
// another silently ignoring the event. wide lifts the bitmask rumor-ID bound
// (the rumor-set path accepts the full uint32 space) but rejects CorruptAt:
// the byzantine behaviors rewrite uint64 holdings masks and have no wide
// equivalent.
func ValidateEvents(n int, wide bool, events []Event) error {
	for _, ev := range events {
		switch e := ev.(type) {
		case CrashAt:
			if err := checkNodes(n, e.Nodes); err != nil {
				return fmt.Errorf("%w: crash at round %d: %w", ErrSpec, e.At, err)
			}
		case JoinAt:
			if err := checkNodes(n, e.Nodes); err != nil {
				return fmt.Errorf("%w: join at round %d: %w", ErrSpec, e.At, err)
			}
		case Loss:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("%w: loss rate %v outside [0,1]", ErrSpec, e.Rate)
			}
		case InjectRumor:
			if e.Node < 0 || e.Node >= n {
				return fmt.Errorf("%w: inject node %d outside [0,%d)", ErrSpec, e.Node, n)
			}
			if !wide && e.Rumor >= phonecall.MaxRumors {
				return fmt.Errorf("%w: rumor id %d outside the bitmask range [0,%d) (wide rumor-set runs lift the cap)", ErrSpec, e.Rumor, phonecall.MaxRumors)
			}
		case ZoneOutage:
			if e.Zone < 0 {
				return fmt.Errorf("%w: zone outage at round %d: negative zone %d", ErrSpec, e.At, e.Zone)
			}
		case ZoneHeal:
			if e.Zone < 0 {
				return fmt.Errorf("%w: zone heal at round %d: negative zone %d", ErrSpec, e.At, e.Zone)
			}
		case CorruptAt:
			if wide {
				return fmt.Errorf("%w: corrupt at round %d: byzantine behaviors need the ≤%d-rumor bitmask path", ErrSpec, e.At, phonecall.MaxRumors)
			}
			if err := checkNodes(n, e.Nodes); err != nil {
				return fmt.Errorf("%w: corrupt at round %d: %w", ErrSpec, e.At, err)
			}
			if err := e.Adversary.Validate(n); err != nil {
				return fmt.Errorf("corrupt at round %d: %w", e.At, err)
			}
		}
	}
	return nil
}

// Validate checks the scenario against the network size and protocol
// constraints.
func (sc Scenario) Validate() error {
	if sc.N < 2 {
		return fmt.Errorf("scenario: need N >= 2 (got %d)", sc.N)
	}
	if sc.Rounds < 1 {
		return fmt.Errorf("scenario: need Rounds >= 1 (got %d)", sc.Rounds)
	}
	if _, err := sc.Algorithm.orDefault(); err != nil {
		return err
	}
	if err := ValidateEvents(sc.N, sc.Wide(), sc.Events); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	injects := 0
	crashedAt := map[int]map[int]bool{} // round -> crashed node set
	var corrupts []CorruptAt
	for _, ev := range sc.Events {
		switch e := ev.(type) {
		case CrashAt:
			set := crashedAt[e.At]
			if set == nil {
				set = make(map[int]bool, len(e.Nodes))
				crashedAt[e.At] = set
			}
			for _, i := range e.Nodes {
				set[i] = true
			}
		case InjectRumor:
			injects++
		case CorruptAt:
			corrupts = append(corrupts, e)
		}
	}
	// Corrupting and crashing the same node in the same round is ambiguous
	// (does the behavior ever act?) and always a spec mistake.
	for _, e := range corrupts {
		set := crashedAt[e.At]
		if set == nil {
			continue
		}
		for _, i := range e.Nodes {
			if set[i] {
				return fmt.Errorf("%w: node %d is both corrupted and crashed at round %d", ErrSpec, i, e.At)
			}
		}
	}
	if injects == 0 {
		return fmt.Errorf("%w: timeline injects no rumor", ErrSpec)
	}
	if sc.MaxInFlight < 0 {
		return fmt.Errorf("%w: negative MaxInFlight %d", ErrSpec, sc.MaxInFlight)
	}
	return nil
}

func checkNodes(n int, nodes []int) error {
	for _, i := range nodes {
		if i < 0 || i >= n {
			return fmt.Errorf("node %d outside [0,%d)", i, n)
		}
	}
	return nil
}

// Config carries the execution parameters that are not part of the scenario
// itself.
type Config struct {
	// Seed drives the execution (node IDs, random targets). Independent of
	// any event seeds, which stay oblivious to it.
	Seed uint64
	// PayloadBits is the per-rumor payload size b (default 256).
	PayloadBits int
	// Workers is the engine shard count; <= 0 defaults to GOMAXPROCS.
	// Results are bit-identical for any value.
	Workers int
	// Observer, when non-nil, taps every executed round through the engine's
	// observer seam (phonecall.Observe) — per-round streaming stats without
	// changing results.
	Observer phonecall.RoundObserver
	// Topology, when non-nil, attributes the nodes (zones, latency classes,
	// capacity, reputation) and enables zone/partition events. Its length
	// must equal the scenario's N.
	Topology *policy.Table
	// Policy, when non-nil, biases random contacts over the topology (hard
	// constraints + weighted scoring). Requires Topology. Nil with a
	// topology keeps selection uniform, bit-identical to no topology at all.
	Policy *policy.Policy
}

// RumorCount is a per-rumor live-informed count inside a phase report.
type RumorCount struct {
	Rumor        phonecall.RumorID
	LiveInformed int
}

// PhaseReport summarizes the rounds between two timeline events: the
// traffic, the live population, and how far every rumor had spread when the
// phase ended.
type PhaseReport struct {
	// FromRound..ToRound is the inclusive round span of the phase.
	FromRound, ToRound int
	// Events describes the timeline events that opened the phase.
	Events []string
	// Live is the live node count during the phase (constant: membership
	// only changes at phase boundaries).
	Live int
	// Messages counts payload and control messages sent within the phase;
	// Bits is their total size; MaxComms is the phase's Δ.
	Messages int64
	Bits     int64
	MaxComms int
	// Informed holds, per registered rumor, the live informed count at the
	// end of the phase.
	Informed []RumorCount
}

// RumorOutcome is the final state of one rumor.
type RumorOutcome struct {
	Rumor phonecall.RumorID
	// InjectRound is the round at which the rumor was first injected.
	InjectRound int
	// LiveInformed and LiveFraction report how many live nodes held the
	// rumor when the budget ran out.
	LiveInformed int
	LiveFraction float64
	// CompletionRound is the first round at whose end every live node held
	// the rumor (0 if that never happened within the budget).
	CompletionRound int
}

// Result reports one scenario execution.
type Result struct {
	Scenario  string
	Algorithm Algorithm
	N         int
	Seed      uint64
	// Rounds is the executed round budget; Live the final live population.
	Rounds int
	Live   int
	// Totals across the execution.
	Messages         int64
	ControlMessages  int64
	Bits             int64
	MessagesPerNode  float64
	MaxCommsPerRound int
	// LostInjects counts InjectRumor events that landed on a currently-failed
	// node: the rumor is held until the node restarts, at which point the
	// rejoin-uninformed semantics erase it — without this counter such an
	// event would be a silent no-op.
	LostInjects int64
	// RumorsExpired counts rumors the wide path's GC reclaimed after
	// convergence (0 on the bitmask path, which never expires).
	RumorsExpired int64
	// Rumors holds the final per-rumor outcomes, ordered by rumor ID; Phases
	// the per-phase trace.
	Rumors []RumorOutcome
	Phases []PhaseReport
}

// MinLiveFraction returns the smallest final live-informed fraction across
// all rumors (1 for a rumor-free result).
func (r Result) MinLiveFraction() float64 {
	minFrac := 1.0
	for _, ro := range r.Rumors {
		if ro.LiveFraction < minFrac {
			minFrac = ro.LiveFraction
		}
	}
	return minFrac
}

// Run executes the scenario with one of the steppable multi-rumor protocols
// and returns the per-phase trace. The execution is bit-identical for any
// cfg.Workers value. A done ctx aborts between rounds with the context's
// error.
func Run(ctx context.Context, sc Scenario, cfg Config) (res Result, err error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	algo, err := sc.Algorithm.orDefault()
	if err != nil {
		return Result{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sc.Wide() {
		return runWide(ctx, sc, cfg, algo, workers)
	}
	net, err := phonecall.New(phonecall.Config{
		N:           sc.N,
		Seed:        cfg.Seed,
		PayloadBits: cfg.PayloadBits,
		Workers:     workers,
	})
	if err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	if _, err := policy.Install(net, cfg.Topology, cfg.Policy); err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	if ctx != nil {
		net.SetContext(ctx)
		defer phonecall.RecoverAbort(&err)
	}
	if cfg.Observer != nil {
		if b, ok := cfg.Observer.(phonecall.NetworkBinder); ok {
			b.BindNetwork(net)
		}
		net.Observe(cfg.Observer)
	}
	tr := phonecall.NewRumorTracker(net)
	if cfg.Observer != nil {
		// Tracker-aware observers (the oracle's honest-node invariants) see
		// the rumor state the protocols act on.
		if b, ok := cfg.Observer.(phonecall.TrackerBinder); ok {
			b.BindTracker(tr)
		}
	}
	proto := newProtocol(algo, net, tr)
	events := sortEvents(sc.Events)

	res = Result{Scenario: sc.Name, Algorithm: algo, N: sc.N, Seed: cfg.Seed, Rounds: sc.Rounds}
	var injectRound, completionRound [phonecall.MaxRumors]int

	next := 0
	cur := PhaseReport{FromRound: 1}
	closePhase := func(to int) {
		cur.ToRound = to
		cur.Live = net.LiveCount()
		cur.Informed = informedCounts(tr)
		res.Phases = append(res.Phases, cur)
	}

	for r := 1; r <= sc.Rounds; r++ {
		// Close the running phase before this round's events mutate the
		// network, so phase snapshots (live count, informed counts) describe
		// the state the phase actually ended in.
		if next < len(events) && events[next].EventRound() <= r && r > cur.FromRound {
			closePhase(r - 1)
			cur = PhaseReport{FromRound: r}
		}
		for next < len(events) && events[next].EventRound() <= r {
			ev := events[next]
			if err := ev.Apply(net, tr); err != nil {
				return Result{}, err
			}
			if inj, ok := ev.(InjectRumor); ok && injectRound[inj.Rumor] == 0 {
				injectRound[inj.Rumor] = r
			}
			cur.Events = append(cur.Events, ev.Describe())
			next++
		}

		rep := net.ExecRound(proto.intent, proto.response, proto.deliver)
		cur.Messages += rep.Messages
		cur.Bits += rep.Bits
		if rep.MaxComms > cur.MaxComms {
			cur.MaxComms = rep.MaxComms
		}

		// Completion: the first round at whose end every live node held the
		// rumor. Later churn (a joiner arriving uninformed) does not clear
		// an already-recorded completion.
		if live := net.LiveCount(); live > 0 {
			reg := tr.Registered()
			for id := 0; reg != 0; id, reg = id+1, reg>>1 {
				if reg&1 != 0 && completionRound[id] == 0 && tr.LiveInformed(phonecall.RumorID(id)) >= live {
					completionRound[id] = r
				}
			}
		}
	}
	closePhase(sc.Rounds)

	m := net.Metrics()
	res.Live = net.LiveCount()
	res.LostInjects = tr.LostInjects()
	res.Messages = m.Messages
	res.ControlMessages = m.ControlMessages
	res.Bits = m.Bits
	res.MessagesPerNode = m.MessagesPerNode()
	res.MaxCommsPerRound = m.MaxCommsPerRound
	for _, rc := range informedCounts(tr) {
		out := RumorOutcome{
			Rumor:           rc.Rumor,
			InjectRound:     injectRound[rc.Rumor],
			LiveInformed:    rc.LiveInformed,
			CompletionRound: completionRound[rc.Rumor],
		}
		if res.Live > 0 {
			out.LiveFraction = float64(rc.LiveInformed) / float64(res.Live)
		}
		res.Rumors = append(res.Rumors, out)
	}
	return res, nil
}

// informedCounts snapshots the live-informed count of every registered
// rumor, ordered by rumor ID.
func informedCounts(tr *phonecall.RumorTracker) []RumorCount {
	var out []RumorCount
	reg := tr.Registered()
	for id := 0; reg != 0; id, reg = id+1, reg>>1 {
		if reg&1 != 0 {
			r := phonecall.RumorID(id)
			out = append(out, RumorCount{Rumor: r, LiveInformed: tr.LiveInformed(r)})
		}
	}
	return out
}
