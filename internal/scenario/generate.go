package scenario

import (
	"repro/internal/rng"
)

// Timeline generators: helpers that produce common churn shapes as event
// slices. All selections are oblivious — driven by their own seeds,
// independent of the execution seed — and deterministic, so generated
// scenarios inherit the package's reproducibility contract. Generators
// compose: concatenate their outputs (plus Loss and InjectRumor events) and
// hand the lot to Scenario.Events; the driver stably sorts by round.

// pick selects count distinct random node indexes (oblivious, from its own
// seed stream).
func pick(n, count int, seed uint64) []int {
	if count <= 0 || n <= 0 {
		return nil
	}
	if count > n {
		count = n
	}
	perm := rng.New(seed).Perm(n)
	return append([]int(nil), perm[:count]...)
}

// PeriodicChurn emits steady membership churn: every period rounds starting
// at start, a fresh batch of count random nodes crashes, and each batch
// rejoins (uninformed) downFor rounds after it crashed. Batches are drawn
// independently, so they may overlap — crashing a dead node and joining a
// live one are no-ops, which keeps overlaps harmless. Events past horizon
// are not emitted.
func PeriodicChurn(n, start, period, count, downFor, horizon int, seed uint64) []Event {
	if period < 1 {
		period = 1
	}
	var out []Event
	for k, at := 0, start; at <= horizon; k, at = k+1, at+period {
		batch := pick(n, count, rng.Mix(seed, 0xc4a12, uint64(k)))
		if len(batch) == 0 {
			break
		}
		out = append(out, CrashAt{At: at, Nodes: batch})
		if rejoin := at + downFor; downFor > 0 && rejoin <= horizon {
			out = append(out, JoinAt{At: rejoin, Nodes: batch})
		}
	}
	return out
}

// Flap makes one node set oscillate between dead and alive: down at start,
// back up downFor rounds later, down again after a further upFor rounds, and
// so on until horizon. Flapping members model the restart loops and
// partition flapping that membership layers (Serf-style) must survive.
func Flap(nodes []int, start, downFor, upFor, horizon int) []Event {
	if downFor < 1 {
		downFor = 1
	}
	if upFor < 1 {
		upFor = 1
	}
	var out []Event
	for at := start; at <= horizon; at += downFor + upFor {
		out = append(out, CrashAt{At: at, Nodes: nodes})
		if rejoin := at + downFor; rejoin <= horizon {
			out = append(out, JoinAt{At: rejoin, Nodes: nodes})
		}
	}
	return out
}

// Waves emits escalating crash waves with no rejoin: wave k (k = 0, 1, …)
// fails round(count·growth^k) random nodes at start + k·gap. It is the
// timed generalization of the paper's Section 8 one-shot adversary and the
// shape used to probe the o(F) fault-tolerance claim under increasing
// pressure.
func Waves(n, start, gap, waves, count int, growth float64, seed uint64) []Event {
	if gap < 1 {
		gap = 1
	}
	var out []Event
	size := float64(count)
	for k := 0; k < waves; k++ {
		batch := pick(n, int(size+0.5), rng.Mix(seed, 0x3a7e5, uint64(k)))
		if len(batch) == 0 {
			break
		}
		out = append(out, CrashAt{At: start + k*gap, Nodes: batch})
		size *= growth
	}
	return out
}
