package scenario

import (
	"fmt"

	"repro/internal/phonecall"
)

// Zone and partition events: the timeline vocabulary of heterogeneous
// topologies (internal/policy). They act through the network's installed
// peer selector — the same object that biases random contacts — so "fail
// zone 2" and "partition the zones" mean the same node sets the policy
// selects over. On a network without a topology they fail loudly at apply
// time instead of silently doing nothing.

// topologyView is what the zone events need from the installed peer
// selector; internal/policy's Selector implements it. Declared here (not
// imported) so the event vocabulary stays decoupled from the policy
// compiler.
type topologyView interface {
	ZoneMembers(zone int) []int
	Zones() int
	SetPartitioned(part bool)
}

// topology extracts the topology view from the network's peer selector.
func topology(net *phonecall.Network, what string) (topologyView, error) {
	if tv, ok := net.PeerSelector().(topologyView); ok {
		return tv, nil
	}
	return nil, fmt.Errorf("scenario: %s needs a topology (configure one with WithTopology)", what)
}

// ZoneOutage fails every node of a topology zone at the start of round At —
// a whole failure domain (rack, datacenter) going dark at once.
type ZoneOutage struct {
	At   int
	Zone int
}

// EventRound implements Event.
func (e ZoneOutage) EventRound() int { return e.At }

// Describe implements Event.
func (e ZoneOutage) Describe() string { return fmt.Sprintf("zone %d outage", e.Zone) }

// Apply implements Event.
func (e ZoneOutage) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	tv, err := topology(net, "zone outage")
	if err != nil {
		return err
	}
	if e.Zone < 0 || e.Zone >= tv.Zones() {
		return fmt.Errorf("scenario: zone %d outside the topology's [0,%d)", e.Zone, tv.Zones())
	}
	members := tv.ZoneMembers(e.Zone)
	if tr != nil {
		tr.Fail(members...)
	} else {
		net.Fail(members...)
	}
	return nil
}

// ZoneHeal revives every failed node of a zone at the start of round At.
// Under the scenario driver the zone rejoins uninformed (RumorTracker
// semantics, like JoinAt).
type ZoneHeal struct {
	At   int
	Zone int
}

// EventRound implements Event.
func (e ZoneHeal) EventRound() int { return e.At }

// Describe implements Event.
func (e ZoneHeal) Describe() string { return fmt.Sprintf("zone %d heals", e.Zone) }

// Apply implements Event.
func (e ZoneHeal) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	tv, err := topology(net, "zone heal")
	if err != nil {
		return err
	}
	if e.Zone < 0 || e.Zone >= tv.Zones() {
		return fmt.Errorf("scenario: zone %d outside the topology's [0,%d)", e.Zone, tv.Zones())
	}
	members := tv.ZoneMembers(e.Zone)
	if tr != nil {
		tr.Revive(members...)
	} else {
		net.Revive(members...)
	}
	return nil
}

// Partition splits the network along zone boundaries from round At on:
// random contacts resolve only within the initiator's own zone until a
// HealPartition event reconnects them. Nodes stay live — the partition is a
// connectivity event, not a failure.
type Partition struct {
	At int
}

// EventRound implements Event.
func (e Partition) EventRound() int { return e.At }

// Describe implements Event.
func (e Partition) Describe() string { return "partition zones" }

// Apply implements Event.
func (e Partition) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	tv, err := topology(net, "partition")
	if err != nil {
		return err
	}
	tv.SetPartitioned(true)
	return nil
}

// HealPartition reconnects the zones at the start of round At.
type HealPartition struct {
	At int
}

// EventRound implements Event.
func (e HealPartition) EventRound() int { return e.At }

// Describe implements Event.
func (e HealPartition) Describe() string { return "heal partition" }

// Apply implements Event.
func (e HealPartition) Apply(net *phonecall.Network, tr *phonecall.RumorTracker) error {
	tv, err := topology(net, "heal partition")
	if err != nil {
		return err
	}
	tv.SetPartitioned(false)
	return nil
}
