package scenario

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

const exampleSpec = `{
  "name": "crash wave under loss",
  "n": 2000,
  "rounds": 30,
  "algorithm": "push-pull",
  "seed": 1,
  "events": [
    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
    {"type": "loss", "round": 1, "rate": 0.05, "seed": 7},
    {"type": "crash", "round": 8, "count": 200, "pick_seed": 11},
    {"type": "join", "round": 20, "nodes": [3, 4]}
  ],
  "generators": [
    {"type": "periodic-churn", "start": 5, "period": 10, "count": 20, "down_for": 5, "seed": 13}
  ]
}`

func TestSpecBuildAndRun(t *testing.T) {
	spec, err := ParseSpec([]byte(exampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	sc, cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.N != 2000 || sc.Rounds != 30 || sc.Algorithm != AlgoPushPull || cfg.Seed != 1 {
		t.Fatalf("spec fields lost: %+v %+v", sc, cfg)
	}
	// 4 explicit events + 3 crash + 3 join from the generator.
	if len(sc.Events) != 10 {
		t.Fatalf("got %d events, want 10", len(sc.Events))
	}
	res, err := Run(context.Background(), sc, Config{Seed: cfg.Seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rumors[0].LiveInformed == 0 {
		t.Fatal("spec run informed nobody")
	}
	// Spec runs are reproducible.
	again, err := Run(context.Background(), sc, Config{Seed: cfg.Seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("same spec, same seed, different result")
	}
}

func TestLoadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(exampleSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "crash wave under loss" {
		t.Fatalf("Name = %q", spec.Name)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"n": 10, "rounds": 5, "evnets": []}`)); err == nil {
		t.Fatal("typoed field should be rejected")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestSpecEventErrors(t *testing.T) {
	for name, body := range map[string]string{
		"unknown event type":   `{"n":10,"rounds":5,"events":[{"type":"meteor","round":1}]}`,
		"crash without pick":   `{"n":10,"rounds":5,"events":[{"type":"crash","round":1}]}`,
		"bad rumor id":         `{"n":10,"rounds":5,"events":[{"type":"inject","round":1,"node":0,"rumor":-1}]}`,
		"rumor id past uint32": `{"n":10,"rounds":5,"events":[{"type":"inject","round":1,"node":0,"rumor":4294967296}]}`,
		"wide with corrupt": `{"n":10,"rounds":5,"events":[
			{"type":"inject","round":1,"node":0,"rumor":100},
			{"type":"corrupt","round":2,"nodes":[1],"behavior":"liar"}]}`,
		"unknown generator":    `{"n":10,"rounds":5,"generators":[{"type":"quake","start":1}]}`,
		"flap without nodes":   `{"n":10,"rounds":5,"generators":[{"type":"flap","start":1}]}`,
		"negative round":       `{"n":10,"rounds":5,"events":[{"type":"crash","round":-3,"nodes":[1]}]}`,
		"round past budget":    `{"n":10,"rounds":5,"events":[{"type":"crash","round":9,"nodes":[1]}]}`,
		"unknown adversary":    `{"n":10,"rounds":5,"events":[{"type":"corrupt","round":1,"nodes":[1],"behavior":"gremlin"}]}`,
		"corrupt without pick": `{"n":10,"rounds":5,"events":[{"type":"corrupt","round":1,"behavior":"liar"}]}`,
		"spam rate out of range": `{"n":10,"rounds":5,"events":[
			{"type":"inject","round":1,"node":0,"rumor":0},
			{"type":"corrupt","round":1,"nodes":[1],"behavior":"spammer","rate":1.5}]}`,
		"eclipse victim out of range": `{"n":10,"rounds":5,"events":[
			{"type":"inject","round":1,"node":0,"rumor":0},
			{"type":"corrupt","round":1,"nodes":[1],"behavior":"eclipse","victims":[99]}]}`,
		"infiltrate unknown behavior": `{"n":10,"rounds":5,"generators":[{"type":"infiltrate","start":1,"waves":1,"count":2}]}`,
		"corrupted and crashed same round": `{"n":10,"rounds":5,"events":[
			{"type":"inject","round":1,"node":0,"rumor":0},
			{"type":"corrupt","round":3,"nodes":[4],"behavior":"liar"},
			{"type":"crash","round":3,"nodes":[4]}]}`,
	} {
		spec, err := ParseSpec([]byte(body))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		_, _, err = spec.Build()
		if err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: error %v is not ErrSpec-typed", name, err)
		}
	}
}

// TestSpecCorruptBuilds pins the happy path of the adversarial vocabulary:
// corrupt events and the infiltrate generator expand, validate and run.
func TestSpecCorruptBuilds(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "byzantine mix", "n": 300, "rounds": 20, "algorithm": "push-pull", "seed": 3,
		"events": [
			{"type": "inject", "round": 1, "node": 0, "rumor": 0},
			{"type": "corrupt", "round": 2, "count": 10, "pick_seed": 7, "behavior": "liar", "seed": 9},
			{"type": "corrupt", "round": 4, "nodes": [5, 6], "behavior": "eclipse", "victims": [1, 2]},
			{"type": "corrupt", "round": 5, "nodes": [7], "behavior": "stale"},
			{"type": "crash", "round": 6, "nodes": [7]}
		],
		"generators": [
			{"type": "infiltrate", "start": 8, "gap": 3, "waves": 2, "count": 5,
			 "behavior": "spammer", "rate": 0.5, "seed": 11}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	corrupts := 0
	for _, ev := range sc.Events {
		if _, ok := ev.(CorruptAt); ok {
			corrupts++
		}
	}
	if corrupts != 5 { // 3 explicit + 2 infiltrate waves
		t.Fatalf("got %d corrupt events, want 5", corrupts)
	}
	res, err := Run(context.Background(), sc, Config{Seed: cfg.Seed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rumors[0].LiveInformed == 0 {
		t.Fatal("adversarial spec run informed nobody")
	}
}
