package scenario

import (
	"context"
	"errors"
	"testing"

	"repro/internal/phonecall"
	"repro/internal/rumorset"
)

// TestWideMatchesBitmaskPath is the conformance check for the rumor-set
// path: the same small, churn-free scenario run once on the legacy bitmask
// path and once forced wide (MaxInFlight set) must reach identical per-rumor
// fates — same completion rounds, same informed counts. (Traffic totals
// legitimately differ: the wide path retires converged rumors and stops
// re-advertising them.)
func TestWideMatchesBitmaskPath(t *testing.T) {
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			events := []Event{
				InjectRumor{At: 1, Node: 0, Rumor: 0},
				InjectRumor{At: 3, Node: 5, Rumor: 7},
				InjectRumor{At: 6, Node: 9, Rumor: 13},
				Loss{At: 4, Rate: 0.05, Seed: 11},
			}
			base := Scenario{N: 48, Rounds: 60, Algorithm: algo, Events: events}
			wide := base
			wide.MaxInFlight = 8
			if base.Wide() || !wide.Wide() {
				t.Fatal("wideness detection broken")
			}
			cfg := Config{Seed: 42}
			rb, err := Run(context.Background(), base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rw, err := Run(context.Background(), wide, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rb.Rumors) != len(rw.Rumors) {
				t.Fatalf("rumor counts differ: bitmask %d, wide %d", len(rb.Rumors), len(rw.Rumors))
			}
			for i := range rb.Rumors {
				b, w := rb.Rumors[i], rw.Rumors[i]
				if b.Rumor != w.Rumor || b.InjectRound != w.InjectRound {
					t.Fatalf("rumor %d identity differs: %+v vs %+v", i, b, w)
				}
				if b.CompletionRound != w.CompletionRound {
					t.Errorf("rumor %d completion: bitmask %d, wide %d", b.Rumor, b.CompletionRound, w.CompletionRound)
				}
				if b.CompletionRound == 0 && b.LiveInformed != w.LiveInformed {
					t.Errorf("rumor %d informed: bitmask %d, wide %d", b.Rumor, b.LiveInformed, w.LiveInformed)
				}
			}
		})
	}
}

// TestWideBeyondBitmask runs a workload the bitmask path cannot express —
// rumor IDs far past 64, more distinct rumors than 64 — to convergence with
// GC active, checking the fate ledger and the expiry counters.
func TestWideBeyondBitmask(t *testing.T) {
	const n, stream = 32, 96
	var events []Event
	for k := 0; k < stream; k++ {
		// Sparse IDs: every 1000th, starting at 100. Injected in waves so the
		// 48-slot window never overflows before GC frees slots.
		events = append(events, InjectRumor{
			At:    1 + (k/16)*8,
			Node:  k % n,
			Rumor: phonecall.RumorID(100 + 1000*k),
		})
	}
	sc := Scenario{N: n, Rounds: 120, Algorithm: AlgoPushPull, Events: events, MaxInFlight: 48}
	res, err := Run(context.Background(), sc, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rumors) != stream {
		t.Fatalf("fate ledger has %d rumors, want %d", len(res.Rumors), stream)
	}
	for _, ro := range res.Rumors {
		if ro.CompletionRound == 0 {
			t.Errorf("rumor %d never converged (informed %d/%d)", ro.Rumor, ro.LiveInformed, res.Live)
		}
		if ro.LiveFraction != 1 {
			t.Errorf("rumor %d fraction %v, want 1", ro.Rumor, ro.LiveFraction)
		}
	}
	if res.RumorsExpired != stream {
		t.Errorf("expired %d rumors, want %d (GC inactive?)", res.RumorsExpired, stream)
	}
}

// TestWideWindowOverflow pins the backpressure contract on preplanned
// timelines: injecting more concurrent rumors than the window holds aborts
// with an errors.Is-able rumorset.ErrFull.
func TestWideWindowOverflow(t *testing.T) {
	events := []Event{
		InjectRumor{At: 1, Node: 0, Rumor: 1},
		InjectRumor{At: 1, Node: 1, Rumor: 2},
		InjectRumor{At: 1, Node: 2, Rumor: 3},
	}
	sc := Scenario{N: 8, Rounds: 10, Events: events, MaxInFlight: 2}
	_, err := Run(context.Background(), sc, Config{Seed: 1})
	if !errors.Is(err, rumorset.ErrFull) {
		t.Fatalf("3 concurrent rumors in a 2-slot window: got %v, want ErrFull", err)
	}
}

// TestWideLostInjects pins the dead-node inject accounting on both paths: an
// InjectRumor aimed at a node that is down at that round is counted, and the
// revived node rejoins without the rumor.
func TestWideLostInjects(t *testing.T) {
	events := []Event{
		InjectRumor{At: 1, Node: 0, Rumor: 0},
		CrashAt{At: 2, Nodes: []int{3}},
		InjectRumor{At: 3, Node: 3, Rumor: 1}, // lands on the crashed node
		JoinAt{At: 5, Nodes: []int{3}},
	}
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"bitmask", Scenario{N: 8, Rounds: 30, Events: events}},
		{"wide", Scenario{N: 8, Rounds: 30, Events: events, MaxInFlight: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), tc.sc, Config{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.LostInjects != 1 {
				t.Fatalf("LostInjects = %d, want 1", res.LostInjects)
			}
		})
	}
}

// TestWideReinjection pins epoch semantics end to end: a rumor retired by GC
// can be injected again later and spreads again as a fresh epoch.
func TestWideReinjection(t *testing.T) {
	events := []Event{
		InjectRumor{At: 1, Node: 0, Rumor: 500},
		InjectRumor{At: 40, Node: 3, Rumor: 500}, // long after first convergence
	}
	sc := Scenario{N: 16, Rounds: 80, Events: events, MaxInFlight: 4}
	res, err := Run(context.Background(), sc, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rumors) != 1 {
		t.Fatalf("ledger entries = %d, want 1", len(res.Rumors))
	}
	ro := res.Rumors[0]
	if ro.CompletionRound < 40 {
		t.Fatalf("completion %d predates the re-injection epoch", ro.CompletionRound)
	}
	if res.RumorsExpired != 2 {
		t.Fatalf("expired %d, want 2 (one per epoch)", res.RumorsExpired)
	}
}

// TestWideWorkerInvariance extends the engine's bit-identical-across-shards
// guarantee to the wide path.
func TestWideWorkerInvariance(t *testing.T) {
	var events []Event
	for k := 0; k < 80; k++ {
		events = append(events, InjectRumor{At: 1 + k/20, Node: k % 24, Rumor: phonecall.RumorID(k * 3)})
	}
	events = append(events, CrashAt{At: 10, Nodes: []int{1, 2}}, JoinAt{At: 20, Nodes: []int{1}})
	sc := Scenario{N: 24, Rounds: 60, Algorithm: AlgoPush, Events: events, MaxInFlight: 128}
	var first Result
	for i, workers := range []int{1, 3, 8} {
		res, err := Run(context.Background(), sc, Config{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Messages != first.Messages || res.Bits != first.Bits {
			t.Fatalf("workers=%d traffic (%d msgs, %d bits) differs from workers=1 (%d, %d)",
				workers, res.Messages, res.Bits, first.Messages, first.Bits)
		}
		for j := range first.Rumors {
			if res.Rumors[j] != first.Rumors[j] {
				t.Fatalf("workers=%d rumor %d fate %+v differs from %+v",
					workers, first.Rumors[j].Rumor, res.Rumors[j], first.Rumors[j])
			}
		}
	}
}
