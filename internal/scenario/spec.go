package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/failure"
	"repro/internal/phonecall"
)

// JSON scenario specs: the on-disk form of a Scenario plus its execution
// config, runnable with `go run ./cmd/scenario -spec file.json`. A spec
// lists explicit events and/or generator invocations; both expand into the
// same typed timeline. Example:
//
//	{
//	  "name": "crash wave under loss",
//	  "n": 20000,
//	  "rounds": 40,
//	  "algorithm": "push-pull",
//	  "seed": 1,
//	  "events": [
//	    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
//	    {"type": "loss", "round": 1, "rate": 0.05, "seed": 7},
//	    {"type": "crash", "round": 8, "count": 2000, "pick_seed": 11},
//	    {"type": "join", "round": 20, "count": 1000, "pick_seed": 11}
//	  ],
//	  "generators": [
//	    {"type": "periodic-churn", "start": 5, "period": 6, "count": 200,
//	     "down_for": 6, "seed": 13}
//	  ]
//	}

// Spec is the JSON form of a scenario.
type Spec struct {
	Name        string          `json:"name"`
	N           int             `json:"n"`
	Rounds      int             `json:"rounds"`
	Algorithm   string          `json:"algorithm,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	PayloadBits int             `json:"payload_bits,omitempty"`
	Workers     int             `json:"workers,omitempty"`
	MaxInFlight int             `json:"max_in_flight,omitempty"`
	Events      []EventSpec     `json:"events,omitempty"`
	Generators  []GeneratorSpec `json:"generators,omitempty"`
}

// EventSpec is one JSON timeline entry. Type selects the event; the other
// fields are type-specific:
//
//	crash / join  — nodes (explicit list), or count + pick_seed (oblivious
//	                random selection)
//	loss          — rate, seed
//	inject        — node, rumor
//	corrupt       — nodes or count + pick_seed, behavior (liar, spammer,
//	                eclipse, stale), plus rate + seed (spammer/liar) and
//	                victims (eclipse)
//	zone-outage / zone-heal — zone (needs a topology)
//	partition / heal        — no extra fields (needs a topology)
type EventSpec struct {
	Type     string  `json:"type"`
	Round    int     `json:"round"`
	Nodes    []int   `json:"nodes,omitempty"`
	Count    int     `json:"count,omitempty"`
	PickSeed uint64  `json:"pick_seed,omitempty"`
	Node     int     `json:"node,omitempty"`
	Rumor    int     `json:"rumor,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Behavior string  `json:"behavior,omitempty"`
	Victims  []int   `json:"victims,omitempty"`
	Zone     int     `json:"zone,omitempty"`
}

// GeneratorSpec is one JSON generator invocation, expanded into events when
// the spec is built. Type is one of periodic-churn, flap, waves, infiltrate.
type GeneratorSpec struct {
	Type     string  `json:"type"`
	Start    int     `json:"start"`
	Period   int     `json:"period,omitempty"`   // periodic-churn
	Count    int     `json:"count,omitempty"`    // periodic-churn, waves, infiltrate
	DownFor  int     `json:"down_for,omitempty"` // periodic-churn, flap
	UpFor    int     `json:"up_for,omitempty"`   // flap
	Nodes    []int   `json:"nodes,omitempty"`    // flap
	Gap      int     `json:"gap,omitempty"`      // waves, infiltrate
	Waves    int     `json:"waves,omitempty"`    // waves, infiltrate
	Growth   float64 `json:"growth,omitempty"`   // waves
	Behavior string  `json:"behavior,omitempty"` // infiltrate
	Rate     float64 `json:"rate,omitempty"`     // infiltrate (spammer)
	Seed     uint64  `json:"seed,omitempty"`
}

// LoadSpec reads and parses a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return ParseSpec(data)
}

// ParseSpec parses a JSON spec. Unknown fields are rejected so that typos in
// hand-written specs fail loudly instead of silently doing nothing.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return s, nil
}

// Build expands the spec into a validated Scenario and its execution Config.
func (s Spec) Build() (Scenario, Config, error) {
	sc := Scenario{
		Name:        s.Name,
		N:           s.N,
		Rounds:      s.Rounds,
		Algorithm:   Algorithm(s.Algorithm),
		MaxInFlight: s.MaxInFlight,
	}
	for i, es := range s.Events {
		if es.Round < 0 {
			return Scenario{}, Config{}, fmt.Errorf("scenario: event %d: %w: negative round %d", i, ErrSpec, es.Round)
		}
		if s.Rounds > 0 && es.Round > s.Rounds {
			return Scenario{}, Config{}, fmt.Errorf("scenario: event %d: %w: round %d past the %d-round budget (the event would never fire)", i, ErrSpec, es.Round, s.Rounds)
		}
		ev, err := es.event(s.N)
		if err != nil {
			return Scenario{}, Config{}, fmt.Errorf("scenario: event %d: %w", i, err)
		}
		sc.Events = append(sc.Events, ev)
	}
	for i, gs := range s.Generators {
		evs, err := gs.expand(s.N, s.Rounds)
		if err != nil {
			return Scenario{}, Config{}, fmt.Errorf("scenario: generator %d: %w", i, err)
		}
		sc.Events = append(sc.Events, evs...)
	}
	cfg := Config{Seed: s.Seed, PayloadBits: s.PayloadBits, Workers: s.Workers}
	if err := sc.Validate(); err != nil {
		return Scenario{}, Config{}, err
	}
	return sc, cfg, nil
}

// event converts one JSON entry into a typed event.
func (es EventSpec) event(n int) (Event, error) {
	switch es.Type {
	case "crash", "join", "corrupt":
		nodes := es.Nodes
		if len(nodes) == 0 {
			if es.Count <= 0 {
				return nil, fmt.Errorf("%w: %s event needs nodes or a positive count", ErrSpec, es.Type)
			}
			// Oblivious random selection, reusing the Section 8 adversary.
			nodes = failure.Random{Count: es.Count, Seed: es.PickSeed}.Select(n)
		}
		switch es.Type {
		case "crash":
			return CrashAt{At: es.Round, Nodes: nodes}, nil
		case "join":
			return JoinAt{At: es.Round, Nodes: nodes}, nil
		default:
			return CorruptAt{
				At:    es.Round,
				Nodes: nodes,
				Adversary: AdversarySpec{
					Kind:    AdversaryKind(es.Behavior),
					Rate:    es.Rate,
					Seed:    es.Seed,
					Victims: es.Victims,
				},
			}, nil
		}
	case "loss":
		return Loss{At: es.Round, Rate: es.Rate, Seed: es.Seed}, nil
	case "inject":
		if es.Rumor < 0 || int64(es.Rumor) > (1<<32-1) {
			return nil, fmt.Errorf("%w: rumor id %d outside the uint32 id space", ErrSpec, es.Rumor)
		}
		return InjectRumor{At: es.Round, Node: es.Node, Rumor: phonecall.RumorID(es.Rumor)}, nil
	case "zone-outage":
		return ZoneOutage{At: es.Round, Zone: es.Zone}, nil
	case "zone-heal":
		return ZoneHeal{At: es.Round, Zone: es.Zone}, nil
	case "partition":
		return Partition{At: es.Round}, nil
	case "heal":
		return HealPartition{At: es.Round}, nil
	default:
		return nil, fmt.Errorf("%w: unknown event type %q (have crash, join, loss, inject, corrupt, zone-outage, zone-heal, partition, heal)", ErrSpec, es.Type)
	}
}

// expand runs one JSON generator invocation.
func (gs GeneratorSpec) expand(n, horizon int) ([]Event, error) {
	switch gs.Type {
	case "periodic-churn":
		return PeriodicChurn(n, gs.Start, gs.Period, gs.Count, gs.DownFor, horizon, gs.Seed), nil
	case "flap":
		if len(gs.Nodes) == 0 {
			return nil, fmt.Errorf("%w: flap generator needs nodes", ErrSpec)
		}
		return Flap(gs.Nodes, gs.Start, gs.DownFor, gs.UpFor, horizon), nil
	case "waves":
		growth := gs.Growth
		if growth <= 0 {
			growth = 1
		}
		return Waves(n, gs.Start, gs.Gap, gs.Waves, gs.Count, growth, gs.Seed), nil
	case "infiltrate":
		adv := AdversarySpec{Kind: AdversaryKind(gs.Behavior), Rate: gs.Rate, Seed: gs.Seed}
		if err := adv.Validate(n); err != nil {
			return nil, err
		}
		return Infiltrate(n, gs.Start, gs.Gap, gs.Waves, gs.Count, adv, gs.Seed), nil
	default:
		return nil, fmt.Errorf("%w: unknown generator type %q (have periodic-churn, flap, waves, infiltrate)", ErrSpec, gs.Type)
	}
}
