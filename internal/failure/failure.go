// Package failure implements the oblivious node-failure adversaries of
// Section 8 of the paper: an adversary chooses F nodes to fail before the
// execution starts, independently of the algorithm's randomness. The paper's
// guarantee (Theorem 19) is that all but o(F) surviving nodes are still
// informed.
package failure

import (
	"fmt"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// Adversary selects which node indexes fail at the start of an execution.
type Adversary interface {
	// Select returns the indexes of the nodes to fail in a network of n nodes.
	Select(n int) []int
	// Name identifies the adversary in experiment tables.
	Name() string
}

// Random fails Count nodes chosen uniformly at random using a seed that is
// independent of the algorithm's execution seed (the oblivious-adversary
// requirement).
type Random struct {
	Count int
	Seed  uint64
}

// Name implements Adversary.
func (r Random) Name() string { return "random" }

// Select implements Adversary.
func (r Random) Select(n int) []int {
	if r.Count <= 0 || n <= 0 {
		return nil
	}
	count := r.Count
	if count > n {
		count = n
	}
	perm := rng.New(rng.Mix(r.Seed, 0xfa11)).Perm(n)
	return append([]int(nil), perm[:count]...)
}

// Block fails the Count nodes with the lowest indexes. Because node indexes
// are assigned independently of node IDs and of the algorithm's randomness,
// this is also an oblivious adversary.
type Block struct {
	Count int
}

// Name implements Adversary.
func (b Block) Name() string { return "block" }

// Select implements Adversary.
func (b Block) Select(n int) []int {
	count := b.Count
	if count <= 0 || n <= 0 {
		return nil
	}
	if count > n {
		count = n
	}
	out := make([]int, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, i)
	}
	return out
}

// Strided fails every Stride-th node until Count nodes are chosen.
type Strided struct {
	Count  int
	Stride int
}

// Name implements Adversary.
func (s Strided) Name() string { return "strided" }

// Select implements Adversary.
func (s Strided) Select(n int) []int {
	if n <= 0 || s.Count <= 0 {
		return nil
	}
	stride := s.Stride
	if stride < 1 {
		stride = 1
	}
	count := s.Count
	if count > n {
		count = n
	}
	seen := make(map[int]bool, count)
	out := make([]int, 0, count)
	for i := 0; i < n && len(out) < count; i++ {
		idx := (i * stride) % n
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	// When stride and n share a factor the stride orbit covers only n/gcd
	// indexes; fill the remainder with the lowest unused indexes.
	for i := 0; i < n && len(out) < count; i++ {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Timed pairs an oblivious adversary with the round at which it strikes,
// turning any start-time adversary into a timed crash wave: the selection is
// still made obliviously (before the execution, independent of the
// algorithm's randomness), only its injection is deferred. The scenario
// subsystem converts it into a CrashAt timeline event (scenario.FromTimed).
//
// Timed deliberately does NOT implement Adversary: a timed wave handed to a
// start-time seam (failure.Apply, harness.Options.Adversary) would strike
// before round 0 and silently ignore Round — making that mistake a compile
// error is the guard.
type Timed struct {
	// Round is the 1-based engine round at the start of which the selected
	// nodes crash; values <= 1 strike before any communication.
	Round     int
	Adversary Adversary
}

// Name identifies the timed wave in experiment tables.
func (t Timed) Name() string { return fmt.Sprintf("%s@r%d", t.Adversary.Name(), t.Round) }

// Apply fails the adversary's selection on the network and returns the failed
// indexes.
func Apply(net *phonecall.Network, adv Adversary) []int {
	selected := adv.Select(net.N())
	net.Fail(selected...)
	return selected
}

// SurvivingSource returns a live source index, preferring preferred if it
// survived; ok is false when every node failed.
func SurvivingSource(net *phonecall.Network, preferred int) (int, bool) {
	if preferred >= 0 && preferred < net.N() && !net.IsFailed(preferred) {
		return preferred, true
	}
	for i := 0; i < net.N(); i++ {
		if !net.IsFailed(i) {
			return i, true
		}
	}
	return 0, false
}
