package failure

import (
	"testing"
	"testing/quick"

	"repro/internal/phonecall"
)

func newNet(t *testing.T, n int) *phonecall.Network {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRandomAdversary(t *testing.T) {
	adv := Random{Count: 100, Seed: 3}
	sel := adv.Select(1000)
	if len(sel) != 100 {
		t.Fatalf("selected %d nodes, want 100", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 1000 || seen[i] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[i] = true
	}
	// Deterministic for a fixed seed.
	again := Random{Count: 100, Seed: 3}.Select(1000)
	for i := range sel {
		if sel[i] != again[i] {
			t.Fatal("random adversary is not deterministic for a fixed seed")
		}
	}
	if adv.Name() != "random" {
		t.Fatal("name wrong")
	}
}

func TestRandomAdversaryDegenerate(t *testing.T) {
	if sel := (Random{Count: 0, Seed: 1}).Select(10); len(sel) != 0 {
		t.Fatal("count 0 should select nothing")
	}
	if sel := (Random{Count: -3, Seed: 1}).Select(10); len(sel) != 0 {
		t.Fatal("negative count should select nothing")
	}
	if sel := (Random{Count: 50, Seed: 1}).Select(10); len(sel) != 10 {
		t.Fatalf("count beyond n should clamp to n, got %d", len(sel))
	}
	if sel := (Random{Count: 5, Seed: 1}).Select(0); len(sel) != 0 {
		t.Fatal("empty network should select nothing")
	}
}

func TestBlockAdversaryDegenerate(t *testing.T) {
	if sel := (Block{Count: 0}).Select(10); len(sel) != 0 {
		t.Fatal("count 0 should select nothing")
	}
	// Regression: Count < 0 used to panic in make([]int, 0, count).
	if sel := (Block{Count: -1}).Select(10); len(sel) != 0 {
		t.Fatal("negative count should select nothing")
	}
	if sel := (Block{Count: 3}).Select(0); len(sel) != 0 {
		t.Fatal("empty network should select nothing")
	}
}

// TestFailDuplicateIndexes pins that duplicate (and repeated) Fail calls
// decrement the live count exactly once per distinct node, and that LiveCount
// stays consistent across interleaved Fail/Revive sequences.
func TestFailDuplicateIndexes(t *testing.T) {
	net := newNet(t, 20)
	net.Fail(4, 4, 4, 7, 7)
	if got := net.LiveCount(); got != 18 {
		t.Fatalf("LiveCount after duplicate Fail = %d, want 18", got)
	}
	net.Fail(4, 7) // repeated call, same nodes
	if got := net.LiveCount(); got != 18 {
		t.Fatalf("LiveCount after repeated Fail = %d, want 18", got)
	}
	net.Fail(-1, 20, 100) // out of range: ignored
	if got := net.LiveCount(); got != 18 {
		t.Fatalf("LiveCount after out-of-range Fail = %d, want 18", got)
	}
	for i := 0; i < 5; i++ {
		net.Fail(i)
	}
	if got := net.LiveCount(); got != 14 {
		t.Fatalf("LiveCount after repeated single Fails = %d, want 14 (nodes 0..4,7)", got)
	}
	net.Revive(4)
	net.Fail(4)
	if got := net.LiveCount(); got != 14 {
		t.Fatalf("LiveCount after revive+refail = %d, want 14", got)
	}
}

func TestTimedAdversary(t *testing.T) {
	adv := Timed{Round: 5, Adversary: Random{Count: 10, Seed: 3}}
	if adv.Name() != "random@r5" {
		t.Fatalf("Name = %q", adv.Name())
	}
	// Timed must NOT satisfy Adversary: handing a timed wave to a start-time
	// seam would silently strike at round 0.
	if _, ok := any(adv).(Adversary); ok {
		t.Fatal("Timed implements Adversary; timed waves must not be usable as start-time adversaries")
	}
}

func TestBlockAdversary(t *testing.T) {
	sel := Block{Count: 5}.Select(10)
	want := []int{0, 1, 2, 3, 4}
	if len(sel) != len(want) {
		t.Fatalf("got %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("got %v, want %v", sel, want)
		}
	}
	if got := (Block{Count: 20}).Select(10); len(got) != 10 {
		t.Fatalf("block should clamp to n, got %d", len(got))
	}
}

func TestStridedAdversary(t *testing.T) {
	sel := Strided{Count: 4, Stride: 3}.Select(10)
	if len(sel) != 4 {
		t.Fatalf("got %v", sel)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad strided selection %v", sel)
		}
		seen[i] = true
	}
	if got := (Strided{Count: 3, Stride: 0}).Select(5); len(got) != 3 {
		t.Fatalf("stride 0 should default to 1, got %v", got)
	}
}

func TestStridedNeverLoopsForever(t *testing.T) {
	f := func(count, stride, size uint8) bool {
		n := int(size)%64 + 1
		sel := Strided{Count: int(count) % 200, Stride: int(stride)}.Select(n)
		return len(sel) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFailsNodes(t *testing.T) {
	net := newNet(t, 100)
	failed := Apply(net, Block{Count: 10})
	if len(failed) != 10 || net.LiveCount() != 90 {
		t.Fatalf("apply failed %d nodes, live %d", len(failed), net.LiveCount())
	}
	for _, i := range failed {
		if !net.IsFailed(i) {
			t.Fatalf("node %d should be failed", i)
		}
	}
}

func TestSurvivingSource(t *testing.T) {
	net := newNet(t, 10)
	net.Fail(0, 1, 2)
	if s, ok := SurvivingSource(net, 5); !ok || s != 5 {
		t.Fatalf("preferred live source not returned: %d %v", s, ok)
	}
	if s, ok := SurvivingSource(net, 1); !ok || net.IsFailed(s) {
		t.Fatalf("should fall back to a live node, got %d %v", s, ok)
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	net.Fail(all...)
	if _, ok := SurvivingSource(net, 0); ok {
		t.Fatal("no survivors should report ok=false")
	}
}
