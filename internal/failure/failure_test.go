package failure

import (
	"testing"
	"testing/quick"

	"repro/internal/phonecall"
)

func newNet(t *testing.T, n int) *phonecall.Network {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRandomAdversary(t *testing.T) {
	adv := Random{Count: 100, Seed: 3}
	sel := adv.Select(1000)
	if len(sel) != 100 {
		t.Fatalf("selected %d nodes, want 100", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 1000 || seen[i] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[i] = true
	}
	// Deterministic for a fixed seed.
	again := Random{Count: 100, Seed: 3}.Select(1000)
	for i := range sel {
		if sel[i] != again[i] {
			t.Fatal("random adversary is not deterministic for a fixed seed")
		}
	}
	if adv.Name() != "random" {
		t.Fatal("name wrong")
	}
}

func TestRandomAdversaryDegenerate(t *testing.T) {
	if sel := (Random{Count: 0, Seed: 1}).Select(10); len(sel) != 0 {
		t.Fatal("count 0 should select nothing")
	}
	if sel := (Random{Count: 50, Seed: 1}).Select(10); len(sel) != 10 {
		t.Fatalf("count beyond n should clamp to n, got %d", len(sel))
	}
}

func TestBlockAdversary(t *testing.T) {
	sel := Block{Count: 5}.Select(10)
	want := []int{0, 1, 2, 3, 4}
	if len(sel) != len(want) {
		t.Fatalf("got %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("got %v, want %v", sel, want)
		}
	}
	if got := (Block{Count: 20}).Select(10); len(got) != 10 {
		t.Fatalf("block should clamp to n, got %d", len(got))
	}
}

func TestStridedAdversary(t *testing.T) {
	sel := Strided{Count: 4, Stride: 3}.Select(10)
	if len(sel) != 4 {
		t.Fatalf("got %v", sel)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad strided selection %v", sel)
		}
		seen[i] = true
	}
	if got := (Strided{Count: 3, Stride: 0}).Select(5); len(got) != 3 {
		t.Fatalf("stride 0 should default to 1, got %v", got)
	}
}

func TestStridedNeverLoopsForever(t *testing.T) {
	f := func(count, stride, size uint8) bool {
		n := int(size)%64 + 1
		sel := Strided{Count: int(count) % 200, Stride: int(stride)}.Select(n)
		return len(sel) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFailsNodes(t *testing.T) {
	net := newNet(t, 100)
	failed := Apply(net, Block{Count: 10})
	if len(failed) != 10 || net.LiveCount() != 90 {
		t.Fatalf("apply failed %d nodes, live %d", len(failed), net.LiveCount())
	}
	for _, i := range failed {
		if !net.IsFailed(i) {
			t.Fatalf("node %d should be failed", i)
		}
	}
}

func TestSurvivingSource(t *testing.T) {
	net := newNet(t, 10)
	net.Fail(0, 1, 2)
	if s, ok := SurvivingSource(net, 5); !ok || s != 5 {
		t.Fatalf("preferred live source not returned: %d %v", s, ok)
	}
	if s, ok := SurvivingSource(net, 1); !ok || net.IsFailed(s) {
		t.Fatalf("should fall back to a live node, got %d %v", s, ok)
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	net.Fail(all...)
	if _, ok := SurvivingSource(net, 0); ok {
		t.Fatal("no survivors should report ok=false")
	}
}
