package run

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/live"
	"repro/internal/phonecall"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// This file is the run layer's observability tap: the one place that composes
// the optional per-run consumers — the user's Observer, the telemetry
// registry, and the JSONL trace writer — onto the engines' existing seams
// (phonecall.Observe for the barriered engines, OnFrontier plus the send-path
// counters for free-running). A spec with none of the three builds no tap at
// all, so the telemetry-off path installs no observer and stays on the
// engines' zero-allocation round loop.

// tap composes the per-run consumers for one execution.
type tap struct {
	engine Engine
	algo   string

	userObs *roundTap                // Spec.Observer, nil when unset
	tel     *harness.EngineTelemetry // barriered engines only
	reg     *telemetry.Registry
	tw      *traceWriter
}

// newTap builds the tap for a validated spec, or nil when the spec opts into
// nothing.
func newTap(s Spec) *tap {
	if s.Observer == nil && s.Telemetry == nil && s.TraceWriter == nil {
		return nil
	}
	t := &tap{engine: s.Engine, algo: s.workloadAlgo(), reg: s.Telemetry}
	if s.Observer != nil {
		t.userObs = &roundTap{fn: s.Observer}
	}
	if s.TraceWriter != nil {
		t.tw = newTraceWriter(s.TraceWriter)
	}
	if s.Telemetry != nil && s.Engine != EngineFreeRunning {
		t.tel = harness.NewEngineTelemetry(s.Telemetry, t.algo, s.Engine.String())
	}
	return t
}

// workloadAlgo resolves the algorithm name the run will actually execute,
// defaults included — the label telemetry and traces carry.
func (s Spec) workloadAlgo() string {
	if s.Engine == EngineFreeRunning || s.multiRumor() {
		if s.Algorithm == "" {
			return string(scenario.AlgoPushPull)
		}
		return s.Algorithm
	}
	return string(s.closedAlgo())
}

// engineObserver returns the composed RoundObserver for the barriered engines
// (nil when no consumer needs one).
func (t *tap) engineObserver() phonecall.RoundObserver {
	if t == nil {
		return nil
	}
	var parts []phonecall.RoundObserver
	if t.userObs != nil {
		parts = append(parts, t.userObs)
	}
	if t.tel != nil {
		parts = append(parts, t.tel)
	}
	if t.tw != nil {
		parts = append(parts, &traceObserver{tw: t.tw})
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	default:
		return &multiObserver{parts: parts}
	}
}

// onFrontier returns the free-running frontier callback feeding every
// consumer, or nil when none listens.
func (t *tap) onFrontier() func(live.FrontierInfo) {
	if t == nil {
		return nil
	}
	var frontier, skew, liveNodes, informed *telemetry.Gauge
	if t.reg != nil {
		frontier = t.reg.Gauge("repro_frontier_round")
		skew = t.reg.Gauge("repro_frontier_skew")
		liveNodes = t.reg.Gauge("repro_live_nodes")
		informed = t.reg.Gauge("repro_informed_nodes")
	}
	if t.userObs == nil && t.reg == nil && t.tw == nil {
		return nil
	}
	return func(fi live.FrontierInfo) {
		if t.userObs != nil {
			t.userObs.fn(RoundStats{Round: fi.Frontier, Live: fi.Live})
		}
		if frontier != nil {
			frontier.Set(int64(fi.Frontier))
			skew.Set(int64(fi.MaxRound - fi.Frontier))
			liveNodes.Set(int64(fi.Live))
			informed.Set(int64(fi.Informed))
		}
		if t.tw != nil {
			t.tw.write(traceFrontierRecord{
				Type:     "frontier",
				Frontier: fi.Frontier,
				MaxRound: fi.MaxRound,
				Live:     fi.Live,
				Informed: fi.Informed,
			})
		}
	}
}

// recordSendFailures folds the free-running transport's per-node OS send
// failures into the registry as repro_udp_send_failures_total{node}.
func recordSendFailures(reg *telemetry.Registry, nodeFails map[int]int64) {
	if reg == nil {
		return
	}
	for node, c := range nodeFails {
		reg.Counter("repro_udp_send_failures_total",
			telemetry.Label{Key: "node", Value: fmt.Sprintf("%d", node)}).Add(c)
	}
}

// multiObserver fans one engine observer stream out to several consumers,
// forwarding the optional binder interfaces too.
type multiObserver struct {
	parts []phonecall.RoundObserver
}

func (m *multiObserver) BindNetwork(net *phonecall.Network) {
	for _, p := range m.parts {
		if b, ok := p.(phonecall.NetworkBinder); ok {
			b.BindNetwork(net)
		}
	}
}

func (m *multiObserver) BindTracker(tr *phonecall.RumorTracker) {
	for _, p := range m.parts {
		if b, ok := p.(phonecall.TrackerBinder); ok {
			b.BindTracker(tr)
		}
	}
}

func (m *multiObserver) BeginRound(round int, info phonecall.RoundInfo) {
	for _, p := range m.parts {
		p.BeginRound(round, info)
	}
}

func (m *multiObserver) ObserveIntent(i int, it phonecall.Intent) {
	for _, p := range m.parts {
		p.ObserveIntent(i, it)
	}
}

func (m *multiObserver) ObserveResponse(i int, msg phonecall.Message, ok bool) {
	for _, p := range m.parts {
		p.ObserveResponse(i, msg, ok)
	}
}

func (m *multiObserver) ObserveDeliver(i int, inbox []phonecall.Message) {
	for _, p := range m.parts {
		p.ObserveDeliver(i, inbox)
	}
}

func (m *multiObserver) EndRound(rep phonecall.RoundReport) {
	for _, p := range m.parts {
		p.EndRound(rep)
	}
}

// traceWriter serializes JSONL records onto the spec's TraceWriter. The
// mutex covers the free-running engine, where the monitor goroutine streams
// frontier records while Execute's goroutine owns the header and footer. The
// first write error sticks; Execute surfaces it after the run.
type traceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

func newTraceWriter(w io.Writer) *traceWriter {
	return &traceWriter{enc: json.NewEncoder(w)}
}

func (tw *traceWriter) write(rec any) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	tw.err = tw.enc.Encode(rec)
}

func (tw *traceWriter) Err() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}

// The JSONL trace schema (DESIGN.md §11): one "run" header, a stream of
// "round" (barriered engines) or "frontier" (free-running) records, then the
// "phase" breakdown and one final "result". The public repro.TraceRecord is
// the decode superset of all five.

type traceRunRecord struct {
	Type        string `json:"type"`
	Engine      string `json:"engine"`
	Algorithm   string `json:"algorithm"`
	N           int    `json:"n"`
	Seed        uint64 `json:"seed"`
	PayloadBits int    `json:"payload_bits"`
	Workers     int    `json:"workers,omitempty"`
	Rounds      int    `json:"rounds,omitempty"` // explicit budget, 0 = self-terminating
}

type traceRoundRecord struct {
	Type       string `json:"type"`
	Round      int    `json:"round"`
	Live       int    `json:"live"`
	Messages   int64  `json:"messages"`
	Bits       int64  `json:"bits"`
	MaxComms   int    `json:"max_comms"`
	Informed   int    `json:"informed"` // -1 when the run tracks no rumor
	Corrupted  int    `json:"corrupted"`
	DurationNs int64  `json:"duration_ns"`
}

type traceFrontierRecord struct {
	Type     string `json:"type"`
	Frontier int    `json:"frontier"`
	MaxRound int    `json:"max_round"`
	Live     int    `json:"live"`
	Informed int    `json:"informed"`
}

type tracePhaseRecord struct {
	Type      string   `json:"type"`
	Name      string   `json:"name,omitempty"`
	FromRound int      `json:"from_round,omitempty"`
	ToRound   int      `json:"to_round,omitempty"`
	Events    []string `json:"events,omitempty"`
	Rounds    int      `json:"rounds,omitempty"`
	Live      int      `json:"live,omitempty"`
	Messages  int64    `json:"messages"`
	Bits      int64    `json:"bits"`
	MaxComms  int      `json:"max_comms,omitempty"`
}

type traceResultRecord struct {
	Type            string `json:"type"`
	Algorithm       string `json:"algorithm"`
	Engine          string `json:"engine"`
	N               int    `json:"n"`
	Rounds          int    `json:"rounds"`
	CompletionRound int    `json:"completion_round"`
	Messages        int64  `json:"messages"`
	ControlMessages int64  `json:"control_messages"`
	Bits            int64  `json:"bits"`
	MaxComms        int    `json:"max_comms"`
	Live            int    `json:"live"`
	Informed        int    `json:"informed"`
	AllInformed     bool   `json:"all_informed"`
	Drops           int64  `json:"drops,omitempty"`
	SendFailures    int64  `json:"send_failures,omitempty"`
}

// traceObserver streams one "round" record per engine round. It binds the
// network (live and corrupted populations) and, on rumor-tracking runs, the
// tracker (worst-spread informed count; -1 without one).
type traceObserver struct {
	tw      *traceWriter
	net     *phonecall.Network
	tracker *phonecall.RumorTracker
	begin   time.Time
}

func (t *traceObserver) BindNetwork(net *phonecall.Network)                  { t.net = net }
func (t *traceObserver) BindTracker(tr *phonecall.RumorTracker)              { t.tracker = tr }
func (t *traceObserver) BeginRound(round int, info phonecall.RoundInfo)      { t.begin = time.Now() }
func (t *traceObserver) ObserveIntent(i int, it phonecall.Intent)            {}
func (t *traceObserver) ObserveResponse(i int, m phonecall.Message, ok bool) {}
func (t *traceObserver) ObserveDeliver(i int, inbox []phonecall.Message)     {}

func (t *traceObserver) EndRound(rep phonecall.RoundReport) {
	rec := traceRoundRecord{
		Type:       "round",
		Round:      rep.Round,
		Messages:   rep.Messages,
		Bits:       rep.Bits,
		MaxComms:   rep.MaxComms,
		Informed:   -1,
		DurationNs: time.Since(t.begin).Nanoseconds(),
	}
	if t.net != nil {
		rec.Live = t.net.LiveCount()
		rec.Corrupted = t.net.CorruptedCount()
	}
	if t.tracker != nil {
		rec.Informed = harness.WorstSpread(t.tracker)
	}
	t.tw.write(rec)
}

// writeHeader emits the JSONL "run" record before the engines start.
func (t *tap) writeHeader(s Spec) {
	if t == nil || t.tw == nil {
		return
	}
	payload := s.PayloadBits
	if payload == 0 {
		payload = phonecall.DefaultPayloadBits
	}
	t.tw.write(traceRunRecord{
		Type:        "run",
		Engine:      s.Engine.String(),
		Algorithm:   t.algo,
		N:           s.N,
		Seed:        s.Seed,
		PayloadBits: payload,
		Workers:     s.Workers,
		Rounds:      s.Rounds,
	})
}

// writeSummary emits the phase breakdown and the final "result" record once
// the run finished.
func (t *tap) writeSummary(out Outcome) {
	if t == nil || t.tw == nil {
		return
	}
	for _, p := range out.Phases {
		t.tw.write(tracePhaseRecord{
			Type:     "phase",
			Name:     p.Name,
			Rounds:   p.Rounds,
			Messages: p.Messages,
			Bits:     p.Bits,
		})
	}
	for _, p := range out.ScenarioPhases {
		t.tw.write(tracePhaseRecord{
			Type:      "phase",
			FromRound: p.FromRound,
			ToRound:   p.ToRound,
			Events:    p.Events,
			Live:      p.Live,
			Messages:  p.Messages,
			Bits:      p.Bits,
			MaxComms:  p.MaxComms,
		})
	}
	t.tw.write(traceResultRecord{
		Type:            "result",
		Algorithm:       out.Algorithm,
		Engine:          out.Engine.String(),
		N:               out.N,
		Rounds:          out.Rounds,
		CompletionRound: out.CompletionRound,
		Messages:        out.Messages,
		ControlMessages: out.ControlMessages,
		Bits:            out.Bits,
		MaxComms:        out.MaxCommsPerRound,
		Live:            out.Live,
		Informed:        out.Informed,
		AllInformed:     out.AllInformed,
		Drops:           out.Drops,
		SendFailures:    out.SendFailures,
	})
}
