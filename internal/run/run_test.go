package run

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/scenario"
)

// inject is a valid round-1 rumor injection for validation tables.
var inject = scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"n too small", Spec{N: 1}},
		{"n at engine limit", Spec{N: 1 << 30}},
		{"negative payload", Spec{N: 100, PayloadBits: -1}},
		{"delta below minimum", Spec{N: 100, Delta: 4}},
		{"negative delta", Spec{N: 100, Delta: -64}},
		{"negative failures", Spec{N: 100, Failures: -5}},
		{"all nodes failed", Spec{N: 100, Failures: 100}},
		{"negative failure round", Spec{N: 100, FailureRound: -1}},
		{"negative loss", Spec{N: 100, LossRate: -0.1}},
		{"loss above one", Spec{N: 100, LossRate: 1.5}},
		{"negative rounds", Spec{N: 100, Rounds: -1}},
		{"unknown closed algorithm", Spec{N: 100, Algorithm: "bogus"}},
		{"crash node out of range", Spec{N: 100,
			Events: []scenario.Event{scenario.CrashAt{At: 2, Nodes: []int{100}}}}},
		{"join node negative", Spec{N: 100,
			Events: []scenario.Event{scenario.JoinAt{At: 2, Nodes: []int{-1}}}}},
		{"event loss out of range", Spec{N: 100,
			Events: []scenario.Event{scenario.Loss{At: 2, Rate: 2}}}},
		{"inject node out of range", Spec{N: 100, Algorithm: "push", Rounds: 5,
			Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 100}}}},
		{"inject rumor past bitmask free-running", Spec{N: 100, Algorithm: "push", Rounds: 5,
			Engine: EngineFreeRunning,
			Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 64}}}},
		{"negative stream total", Spec{N: 100, Engine: EngineFreeRunning, StreamTotal: -1}},
		{"negative stream rate", Spec{N: 100, Engine: EngineFreeRunning, StreamRate: -1}},
		{"stream rate without total", Spec{N: 100, Engine: EngineFreeRunning, StreamRate: 2}},
		{"negative window", Spec{N: 100, MaxInFlight: -1}},
		{"stream on simulator", Spec{N: 100, StreamTotal: 16}},
		{"stream on lock-step", Spec{N: 100, Engine: EngineLockStep, StreamTotal: 16}},
		{"window without wide workload", Spec{N: 100, MaxInFlight: 8}},
		{"window on lock-step", Spec{N: 100, Engine: EngineLockStep, MaxInFlight: 8}},
		{"window without stream free-running", Spec{N: 100, Engine: EngineFreeRunning, MaxInFlight: 8}},
		{"stream alongside inject events", Spec{N: 100, Engine: EngineFreeRunning,
			StreamTotal: 16, Rounds: 50, Events: []scenario.Event{inject}}},
		{"byzantine event on wide path", Spec{N: 100, Algorithm: "push", Rounds: 5, MaxInFlight: 8,
			Events: []scenario.Event{inject, scenario.CorruptAt{At: 2, Nodes: []int{1},
				Adversary: scenario.AdversarySpec{Kind: scenario.AdvLiar}}}}},
		{"nil event", Spec{N: 100, Events: []scenario.Event{nil}}},
		{"multi-rumor without budget", Spec{N: 100, Algorithm: "push",
			Events: []scenario.Event{inject}}},
		{"multi-rumor with closed algorithm", Spec{N: 100, Algorithm: "cluster2", Rounds: 5,
			Events: []scenario.Event{inject}}},
		{"multi-rumor on lock-step", Spec{N: 100, Algorithm: "push", Rounds: 5,
			Engine: EngineLockStep, Events: []scenario.Event{inject}}},
		{"transport on simulator", Spec{N: 100, Transport: "chan"}},
		{"frame drop on simulator", Spec{N: 100, Drop: 0.5}},
		{"drop above one", Spec{N: 100, Engine: EngineFreeRunning, Drop: 1.5}},
		{"latency on lock-step", Spec{N: 100, Engine: EngineLockStep, Latency: time.Millisecond}},
		{"udp on lock-step", Spec{N: 100, Engine: EngineLockStep, Transport: "udp"}},
		{"closed algorithm free-running", Spec{N: 100, Engine: EngineFreeRunning, Algorithm: "cluster2"}},
		{"unknown transport free-running", Spec{N: 100, Engine: EngineFreeRunning, Transport: "bogus"}},
		{"shaped udp free-running", Spec{N: 100, Engine: EngineFreeRunning, Transport: "udp", Drop: 0.5}},
		{"negative skew", Spec{N: 100, Engine: EngineFreeRunning, MaxSkew: -1}},
		{"unknown engine", Spec{N: 100, Engine: Engine(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Execute(context.Background(), tc.spec)
			if err == nil {
				t.Fatalf("spec %+v accepted", tc.spec)
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error not ErrInvalidConfig: %v", err)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"zero-value defaults", Spec{N: 100}},
		{"closed with timeline", Spec{N: 100,
			Events: []scenario.Event{scenario.CrashAt{At: 2, Nodes: []int{1}}}}},
		{"multi-rumor", Spec{N: 100, Algorithm: "push-pull", Rounds: 10,
			Events: []scenario.Event{inject}}},
		{"lock-step", Spec{N: 100, Engine: EngineLockStep, Transport: "chan"}},
		{"free-running", Spec{N: 100, Engine: EngineFreeRunning, Drop: 0.2, Rounds: 40}},
		{"free-running with spec workers", Spec{N: 100, Engine: EngineFreeRunning, Workers: 4, Rounds: 40}},
		{"wide inject auto-selects rumor set", Spec{N: 100, Algorithm: "push", Rounds: 10,
			Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 1 << 20}}}},
		{"wide window on simulator", Spec{N: 100, Algorithm: "push", Rounds: 10, MaxInFlight: 8,
			Events: []scenario.Event{inject}}},
		{"free-running stream", Spec{N: 100, Engine: EngineFreeRunning,
			StreamTotal: 256, StreamRate: 4, MaxInFlight: 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err != nil {
				t.Fatalf("valid spec rejected: %v", err)
			}
		})
	}
}

// TestInjectValidationAcrossEngines pins the cross-engine bugfix: a bad
// InjectRumor is rejected identically on all three engines, before anything
// runs, with an error satisfying both errors.Is(ErrInvalidConfig) (the run
// boundary) and errors.Is(scenario.ErrSpec) (the shared per-event authority)
// — never a silent IgnoredEvents bump at fire time.
func TestInjectValidationAcrossEngines(t *testing.T) {
	engines := []Engine{EngineSimulator, EngineLockStep, EngineFreeRunning}
	bad := map[string]scenario.Event{
		"node past network":  scenario.InjectRumor{At: 1, Node: 100, Rumor: 0},
		"node negative":      scenario.InjectRumor{At: 1, Node: -1, Rumor: 0},
		"rumor past bitmask": scenario.InjectRumor{At: 1, Node: 0, Rumor: 64},
	}
	for _, engine := range engines {
		for name, ev := range bad {
			t.Run(engine.String()+"/"+name, func(t *testing.T) {
				spec := Spec{
					N: 100, Algorithm: "push", Rounds: 5,
					Engine: engine,
					Events: []scenario.Event{ev},
				}
				if engine == EngineSimulator && name == "rumor past bitmask" {
					// Rumor 64 legitimately selects the wide rumor-set path on
					// the simulator; the bitmask bound applies to the others.
					return
				}
				_, err := Execute(context.Background(), spec)
				if err == nil {
					t.Fatalf("%s accepted %s", engine, name)
				}
				if !errors.Is(err, ErrInvalidConfig) {
					t.Fatalf("%s: error not ErrInvalidConfig: %v", engine, err)
				}
				// A wide inject on lock-step is rejected for the engine (no
				// multi-rumor at all) rather than the event, so the ErrSpec
				// layer only applies elsewhere.
				if !(engine == EngineLockStep && name == "rumor past bitmask") &&
					!errors.Is(err, scenario.ErrSpec) {
					t.Fatalf("%s: event error not scenario.ErrSpec: %v", engine, err)
				}
			})
		}
	}
}

// TestCancelSimulator cancels mid-run from the observer (which runs on the
// coordinator between rounds) and expects the context error promptly.
func TestCancelSimulator(t *testing.T) {
	testCancelSynchronous(t, EngineSimulator)
}

func TestCancelLockStep(t *testing.T) {
	testCancelSynchronous(t, EngineLockStep)
}

func testCancelSynchronous(t *testing.T, engine Engine) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	spec := Spec{
		N:         2000,
		Algorithm: "cluster2",
		Seed:      1,
		Engine:    engine,
		Observer: func(st RoundStats) {
			rounds = st.Round
			if st.Round == 3 {
				cancel()
			}
		},
	}
	if engine == EngineSimulator {
		spec.Workers = 1
	}
	_, err := Execute(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The abort happens before the round after the cancellation does any
	// work: the observer must not have seen more than one further round.
	if rounds > 4 {
		t.Fatalf("run kept executing after cancel: saw round %d", rounds)
	}
}

// TestCancelFreeRunning cancels a free-running execution that would
// otherwise spin through a huge budget (100% frame loss: it can never
// converge) and expects a prompt stop.
func TestCancelFreeRunning(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Execute(ctx, Spec{
		N:        64,
		Seed:     1,
		Engine:   EngineFreeRunning,
		Rounds:   1 << 30,
		Drop:     1.0,
		DropSeed: 7,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("free-running cancel not prompt: took %v", elapsed)
	}
}

// TestDeadlineSimulator exercises the deadline path: an already-expired
// context must abort before the first round.
func TestDeadlineSimulator(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := Execute(ctx, Spec{N: 500, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestScenarioCancel cancels the multi-rumor driver mid-run.
func TestScenarioCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := Spec{
		N:         2000,
		Algorithm: "push-pull",
		Seed:      1,
		Rounds:    200,
		Events:    []scenario.Event{inject},
		Observer: func(st RoundStats) {
			if st.Round == 2 {
				cancel()
			}
		},
	}
	_, err := Execute(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEngineAgreement pins the lock-step conformance guarantee through the
// unified layer: identical Outcome.Result on both synchronous engines.
func TestEngineAgreement(t *testing.T) {
	base := Spec{N: 600, Algorithm: "cluster2", Seed: 5, Workers: 1}
	sim, err := Execute(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	lockSpec := base
	lockSpec.Workers = 0
	lockSpec.Engine = EngineLockStep
	lock, err := Execute(context.Background(), lockSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Engine != EngineSimulator || lock.Engine != EngineLockStep {
		t.Fatalf("engines mislabeled: %v vs %v", sim.Engine, lock.Engine)
	}
	sim.Engine = lock.Engine
	a, b := sim.Result, lock.Result
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits ||
		a.Informed != b.Informed || a.MaxCommsPerRound != b.MaxCommsPerRound {
		t.Fatalf("sim and lock-step diverge:\n%+v\n%+v", a, b)
	}
}

// TestObserverStreamsEveryRound checks the observer sees every executed
// round in order with the live population attached.
func TestObserverStreamsEveryRound(t *testing.T) {
	var seen []RoundStats
	out, err := Execute(context.Background(), Spec{
		N:         500,
		Algorithm: "push-pull",
		Seed:      2,
		Workers:   1,
		Observer:  func(st RoundStats) { seen = append(seen, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != out.Rounds {
		t.Fatalf("observer saw %d rounds, result has %d", len(seen), out.Rounds)
	}
	for i, st := range seen {
		if st.Round != i+1 {
			t.Fatalf("round %d streamed out of order: %+v", i+1, st)
		}
		if st.Live != 500 {
			t.Fatalf("round %d live = %d, want 500", st.Round, st.Live)
		}
	}
}

// TestFreeRunnerOutcome smoke-tests the free-running mapping: convergence,
// engine label, frontier observer ticks.
func TestFreeRunnerOutcome(t *testing.T) {
	ticks := 0
	out, err := Execute(context.Background(), Spec{
		N:        300,
		Seed:     4,
		Engine:   EngineFreeRunning,
		Observer: func(st RoundStats) { ticks++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Engine != EngineFreeRunning {
		t.Fatalf("engine = %v", out.Engine)
	}
	if !out.AllInformed {
		t.Fatalf("free run did not converge: %+v", out.Result)
	}
	if ticks == 0 {
		t.Fatal("frontier observer never ticked")
	}
}

// TestScenarioOutcomeMapping checks the multi-rumor mapping: rumors, phases,
// worst-rumor informedness and completion.
func TestScenarioOutcomeMapping(t *testing.T) {
	out, err := Execute(context.Background(), Spec{
		N:         800,
		Algorithm: "push-pull",
		Seed:      3,
		Rounds:    40,
		Workers:   1,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.InjectRumor{At: 5, Node: 7, Rumor: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rumors) != 2 {
		t.Fatalf("want 2 rumor outcomes, got %+v", out.Rumors)
	}
	if len(out.ScenarioPhases) == 0 {
		t.Fatal("no scenario phases recorded")
	}
	if !out.AllInformed || out.CompletionRound == 0 {
		t.Fatalf("both rumors should complete at n=800 within 40 rounds: %+v", out)
	}
	if out.Informed != out.Live {
		t.Fatalf("informed %d want live %d", out.Informed, out.Live)
	}
}

// TestNoTapWithoutConsumers locks the telemetry-off path: a spec that opts
// into no observability builds no tap and installs no engine observer, so
// un-instrumented runs stay on the engines' zero-allocation round loop
// (phonecall's TestZeroSteadyStateAllocs covers the loop itself).
func TestNoTapWithoutConsumers(t *testing.T) {
	s := Spec{N: 100}
	if tp := newTap(s); tp != nil {
		t.Fatalf("bare spec built a tap: %+v", tp)
	}
	if obs := s.harnessOptions().Observer; obs != nil {
		t.Fatalf("bare spec installed an engine observer: %T", obs)
	}
	s.Observer = func(RoundStats) {}
	s.tap = newTap(s)
	if s.tap == nil || s.harnessOptions().Observer == nil {
		t.Fatal("observer spec did not compose a tap")
	}
}
