// Package run is the unified execution layer behind the public repro facade:
// one validated Spec describing a gossip execution, one Runner interface over
// the repository's engines, one Outcome shape coming back.
//
// Before this layer existed every frontend re-plumbed the engines by hand:
// the facade called harness.Run, the scenario CLI called scenario.Run, the
// live CLI called harness.RunLockStep / RunFreeRunning, and each re-parsed
// algorithms, seeds and timelines its own way. The run layer folds those
// four entry points behind a single contract:
//
//	spec := run.Spec{N: 100000, Algorithm: "cluster2", Seed: 7}
//	out, err := run.Execute(ctx, spec)
//
// The engine is selected by Spec.Engine (simulator, lock-step, free-running)
// and the workload by the spec's shape: a timeline that injects rumors runs
// the steppable multi-rumor scenario driver, everything else runs the closed
// broadcast algorithms. Validation happens here, at the boundary, with every
// violation wrapped in ErrInvalidConfig — internals may assume a valid spec.
// Cancellation and deadlines flow from ctx through the engine round loop
// (phonecall.SetContext) and the live runtime on every path.
package run

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/harness"
	"repro/internal/live"
	"repro/internal/phonecall"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrInvalidConfig is wrapped by every validation error the run layer
// returns, so callers can test errors.Is(err, ErrInvalidConfig) regardless
// of which constraint was violated.
var ErrInvalidConfig = errors.New("invalid configuration")

// invalidf builds an ErrInvalidConfig-wrapped validation error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// Engine selects the execution substrate.
type Engine uint8

// The engines. Simulator is the sharded in-process round engine; LockStep
// runs every node as a goroutine over a synchronous transport with results
// bit-identical to the simulator; FreeRunning drops the global barrier and
// runs local round clocks with bounded skew.
const (
	EngineSimulator Engine = iota
	EngineLockStep
	EngineFreeRunning
)

// String names the engine for errors and reports.
func (e Engine) String() string {
	switch e {
	case EngineSimulator:
		return "simulator"
	case EngineLockStep:
		return "lock-step"
	case EngineFreeRunning:
		return "free-running"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// RoundStats is one executed round as streamed to a Spec.Observer: the
// engine's own per-round report plus the live population when the round
// ended. On the free-running engine there is no global round; frontier
// advances are streamed instead, with the traffic fields zero.
type RoundStats struct {
	Round    int
	Live     int
	Messages int64
	Bits     int64
	MaxComms int
}

// Observer streams per-round statistics while an execution runs. It is
// invoked from the engine's coordinator goroutine (or the free-running
// monitor); it must not call back into the execution.
type Observer func(RoundStats)

// Spec describes one gossip execution, independent of the engine that will
// run it. The zero value of every field means "default".
type Spec struct {
	// N is the network size (required, >= 2).
	N int
	// Algorithm names the protocol. Closed broadcast algorithms (cluster2,
	// clusterpushpull, push-pull, ...) run on the simulator and lock-step
	// engines; the steppable multi-rumor protocols (push, pull, push-pull)
	// run under rumor-injecting timelines and on the free-running engine.
	// Empty selects cluster2 (closed) or push-pull (steppable).
	Algorithm string
	// Seed drives the execution; identical specs with identical seeds give
	// identical results on the simulator and lock-step engines.
	Seed uint64
	// PayloadBits is the rumor size b in bits (default 256).
	PayloadBits int
	// Workers is the simulator shard count (<= 0: GOMAXPROCS); results are
	// identical for any value.
	Workers int
	// Delta bounds per-round communications for clusterpushpull (default
	// 1024, minimum core.MinDelta).
	Delta int

	// Failures fails this many nodes, chosen by the oblivious random
	// adversary driven by FailureSeed — before round 1, or at the start of
	// FailureRound when it is > 1.
	Failures     int
	FailureSeed  uint64
	FailureRound int
	// LossRate drops every call independently with this probability from
	// round 1 on; LossSeed drives the decisions obliviously.
	LossRate float64
	LossSeed uint64

	// Topology attributes the nodes with zones, latency classes, capacities
	// and reputations (policy.ZoneTable, policy.WanLanTable or a JSON spec);
	// Policy biases every random contact over those attributes through a
	// compiled policy selector, identically on every engine. A topology
	// without a policy changes nothing — the uniform contract stays
	// bit-identical — but enables zone/partition timeline events and per-zone
	// telemetry. A policy without a topology is a configuration error.
	Topology *policy.Table
	Policy   *policy.Policy

	// Events is a scenario timeline (crash, join, loss, inject, corrupt,
	// zone-outage, zone-heal, partition, heal) applied as the rounds execute.
	// A timeline that injects at least one rumor selects the steppable
	// multi-rumor driver; Rounds is its budget.
	Events []scenario.Event
	// Rounds is the explicit round budget for multi-rumor and free-running
	// workloads (closed algorithms terminate on their own).
	Rounds int
	// ScenarioName labels multi-rumor results.
	ScenarioName string

	// StreamTotal > 0 switches a free-running run to the scalable rumor-set
	// layer: the monitor continuously injects StreamTotal rumors (IDs
	// 0..StreamTotal-1) at StreamRate rumors per frontier round (default 1)
	// through a bounded in-flight window, with injection stalling while the
	// window is full. Free-running engine only; a stream replaces InjectRumor
	// events.
	StreamTotal int
	StreamRate  float64
	// MaxInFlight bounds the concurrently active rumors of the rumor-set
	// layer. On the simulator it forces a rumor-injecting timeline onto the
	// wide rumor-set path (0 still selects wide when the timeline injects IDs
	// >= 64, sizing the window to the distinct rumor count); on the
	// free-running engine it is the stream's window (default
	// min(StreamTotal, 1024)).
	MaxInFlight int

	// Engine selects the substrate; the remaining fields tune the live
	// engines only.
	Engine Engine
	// Transport is "chan" (default) or "udp" (free-running only).
	Transport string
	// MaxSkew bounds free-running round clocks (default 3).
	MaxSkew int
	// Drop is the free-running transport's frame-loss probability, driven by
	// DropSeed; Latency and Jitter delay channel-mesh deliveries.
	Drop     float64
	DropSeed uint64
	Latency  time.Duration
	Jitter   time.Duration

	// Observer, when non-nil, streams per-round statistics.
	Observer Observer
	// Telemetry, when non-nil, collects the run's metric series (DESIGN.md
	// §11) into the registry: round/traffic counters, population gauges, the
	// round-duration histogram, and — free-running only — live send-path
	// counters and frontier gauges. A nil registry installs no observer at
	// all, keeping the engines on their zero-allocation round loop.
	Telemetry *telemetry.Registry
	// TraceWriter, when non-nil, streams the execution as JSONL records: one
	// "run" header, per-round "round" (or free-running "frontier") records,
	// the "phase" breakdown and a final "result". Write errors surface from
	// Execute after the run completes.
	TraceWriter io.Writer

	// tap is the composed observability fan-out Execute builds from the three
	// fields above; runners read it, frontends never set it.
	tap *tap
}

// Outcome is the unified result of one execution: the repository's common
// trace.Result plus the workload-specific extras that engine produced.
type Outcome struct {
	trace.Result

	// Scenario, Rumors and ScenarioPhases are filled by multi-rumor scenario
	// runs: the scenario's name, the per-rumor outcomes and the per-phase
	// trace.
	Scenario       string
	Rumors         []scenario.RumorOutcome
	ScenarioPhases []scenario.PhaseReport

	// Free-running extras: transport-level frame drops, timeline events that
	// never fired or could not be honored, and the wall-clock time.
	Drops         int64
	UnfiredEvents int
	IgnoredEvents int
	Wall          time.Duration

	// SendFailures counts sends the OS refused (free-running UDP transport
	// only); NodeSendFailures breaks them down per sending node and is nil
	// when nothing failed.
	SendFailures     int64
	NodeSendFailures map[int]int64

	// Rumor-set extras (wide simulator runs and free-running streams).
	// LostInjects counts injections at failed nodes whose rumor never reached
	// a live node; RumorsExpired counts converged rumors the GC retired.
	// The remaining fields are stream-only: totals over the stream's life,
	// the rumors still active when the run stopped (0 on a drained stream),
	// and how many monitor ticks injection spent stalled on a full window.
	LostInjects     int64
	RumorsInjected  int64
	RumorsConverged int64
	RumorsExpired   int64
	RumorsActive    int
	InjectionStalls int64

	// Telemetry is the registry snapshot taken when the run finished, for
	// specs that set Spec.Telemetry; nil otherwise.
	Telemetry []telemetry.Sample

	// Engine records which substrate executed the run.
	Engine Engine
}

// Runner executes one validated Spec on one engine.
type Runner interface {
	Run(ctx context.Context, spec Spec) (Outcome, error)
}

// Execute validates the spec, picks the runner its engine and workload
// select, and runs it. This is the single entry point every frontend (the
// public facade, the CLIs, the examples) goes through.
func Execute(ctx context.Context, spec Spec) (Outcome, error) {
	if err := spec.Validate(); err != nil {
		return Outcome{}, err
	}
	spec.tap = newTap(spec)
	spec.tap.writeHeader(spec)
	out, err := spec.runner().Run(ctx, spec)
	if err != nil {
		return Outcome{}, err
	}
	spec.tap.writeSummary(out)
	if t := spec.tap; t != nil && t.tw != nil {
		if werr := t.tw.Err(); werr != nil {
			return Outcome{}, fmt.Errorf("run: trace export: %w", werr)
		}
	}
	if spec.Telemetry != nil {
		out.Telemetry = spec.Telemetry.Snapshot()
	}
	return out, nil
}

// multiRumor reports whether the timeline selects the steppable multi-rumor
// driver (it injects at least one rumor).
func (s Spec) multiRumor() bool {
	for _, ev := range s.Events {
		if _, ok := ev.(scenario.InjectRumor); ok {
			return true
		}
	}
	return false
}

// runner picks the Runner for a validated spec.
func (s Spec) runner() Runner {
	switch {
	case s.Engine == EngineFreeRunning:
		return freeRunner{}
	case s.Engine == EngineLockStep:
		return lockStepRunner{}
	case s.multiRumor():
		return scenarioRunner{}
	default:
		return simRunner{}
	}
}

// closedAlgorithms is the closed-algorithm name set, derived from the
// harness registry once.
func closedAlgorithms() map[string]bool {
	out := make(map[string]bool)
	for _, a := range harness.Algorithms() {
		out[string(a)] = true
	}
	return out
}

// steppable reports whether name is one of the steppable multi-rumor
// protocols (empty selects the default).
func steppable(name string) bool {
	switch scenario.Algorithm(name) {
	case "", scenario.AlgoPush, scenario.AlgoPull, scenario.AlgoPushPull:
		return true
	default:
		return false
	}
}

// Validate checks every boundary constraint and returns an
// ErrInvalidConfig-wrapped error for the first violation. Internals behind
// the run layer may assume a validated spec.
func (s Spec) Validate() error {
	if s.N < 2 {
		return invalidf("need N >= 2 (got %d)", s.N)
	}
	if s.N >= 1<<30 {
		return invalidf("N %d exceeds the engine's 2^30 node limit", s.N)
	}
	if s.PayloadBits < 0 {
		return invalidf("negative PayloadBits %d", s.PayloadBits)
	}
	if s.Delta != 0 && s.Delta < core.MinDelta {
		return invalidf("Delta %d below the minimum %d", s.Delta, core.MinDelta)
	}
	if s.Failures < 0 {
		return invalidf("negative Failures %d", s.Failures)
	}
	if s.Failures >= s.N {
		return invalidf("Failures %d leaves no live node out of %d", s.Failures, s.N)
	}
	if s.FailureRound < 0 {
		return invalidf("negative FailureRound %d", s.FailureRound)
	}
	if s.LossRate < 0 || s.LossRate > 1 {
		return invalidf("LossRate %v outside [0,1]", s.LossRate)
	}
	if s.Drop < 0 || s.Drop > 1 {
		return invalidf("transport drop rate %v outside [0,1]", s.Drop)
	}
	if s.MaxSkew < 0 {
		return invalidf("negative MaxSkew %d", s.MaxSkew)
	}
	if s.Rounds < 0 {
		return invalidf("negative Rounds %d", s.Rounds)
	}
	if s.StreamTotal < 0 {
		return invalidf("negative StreamTotal %d", s.StreamTotal)
	}
	if s.StreamRate < 0 {
		return invalidf("negative StreamRate %v", s.StreamRate)
	}
	if s.StreamRate > 0 && s.StreamTotal == 0 {
		return invalidf("StreamRate %v without a stream (set StreamTotal)", s.StreamRate)
	}
	if s.MaxInFlight < 0 {
		return invalidf("negative MaxInFlight %d", s.MaxInFlight)
	}
	if err := s.validatePolicy(); err != nil {
		return err
	}
	if err := s.validateEvents(); err != nil {
		return err
	}
	return s.validateEngine()
}

// validatePolicy checks the topology/policy pair and the zone-event
// prerequisites at the boundary, so misconfigurations surface as
// ErrInvalidConfig here instead of ErrSpec deep inside an engine.
func (s Spec) validatePolicy() error {
	if s.Policy != nil {
		if s.Topology == nil {
			return invalidf("a Policy needs a Topology")
		}
		p := *s.Policy // Validate normalizes the mode; don't mutate the caller's policy
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
	}
	if s.Topology != nil && s.Topology.Len() != s.N {
		return invalidf("Topology describes %d nodes for N=%d", s.Topology.Len(), s.N)
	}
	checkZone := func(ev scenario.Event, zone int) error {
		if s.Topology == nil {
			return invalidf("%s needs a Topology", ev.Describe())
		}
		if zone < 0 || zone >= s.Topology.Zones() {
			return invalidf("%s outside the topology's %d zones", ev.Describe(), s.Topology.Zones())
		}
		return nil
	}
	for _, ev := range s.Events {
		var err error
		switch e := ev.(type) {
		case scenario.ZoneOutage:
			err = checkZone(e, e.Zone)
		case scenario.ZoneHeal:
			err = checkZone(e, e.Zone)
		case scenario.Partition, scenario.HealPartition:
			if s.Topology == nil {
				err = invalidf("%s needs a Topology", ev.Describe())
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// validateEvents checks every timeline event against the network size and
// the model's ranges — the checks the engines would otherwise only hit (or
// silently miss) deep inside a run. The per-event authority is
// scenario.ValidateEvents, shared with every engine constructor, so a bad
// event yields the same ErrSpec-typed diagnosis no matter which layer sees it
// first; here it is additionally wrapped in ErrInvalidConfig so both
// errors.Is tests hold at the boundary.
func (s Spec) validateEvents() error {
	for _, ev := range s.Events {
		if ev == nil {
			return invalidf("nil timeline event")
		}
	}
	if err := scenario.ValidateEvents(s.N, s.wide(), s.Events); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return nil
}

// wide reports whether the spec selects the scalable rumor-set layer, which
// lifts the per-event rumor-ID bound from the 64-rumor bitmask to the uint32
// ID space. The free-running engine goes wide only through a stream (its
// timeline injects stay in the bitmask range); the simulator goes wide on an
// explicit window or any timeline inject past the bitmask.
func (s Spec) wide() bool {
	if s.Engine == EngineFreeRunning {
		return s.StreamTotal > 0
	}
	if s.MaxInFlight > 0 || s.StreamTotal > 0 {
		return true
	}
	for _, ev := range s.Events {
		if inj, ok := ev.(scenario.InjectRumor); ok && inj.Rumor >= phonecall.MaxRumors {
			return true
		}
	}
	return false
}

// validateEngine checks the engine-specific constraints: which algorithms,
// timelines and transport shaping each substrate supports.
func (s Spec) validateEngine() error {
	switch s.Engine {
	case EngineSimulator, EngineLockStep:
		if s.StreamTotal > 0 {
			return invalidf("rumor streams (StreamTotal/StreamRate) run on the free-running engine only")
		}
		if s.MaxInFlight > 0 && !s.multiRumor() {
			return invalidf("MaxInFlight needs a rumor-injecting timeline (wide simulator runs) or a free-running stream")
		}
		if s.multiRumor() {
			if s.Engine == EngineLockStep {
				return invalidf("multi-rumor timelines run on the simulator or free-running engines, not lock-step")
			}
			if !steppable(s.Algorithm) {
				return invalidf("algorithm %q cannot run a multi-rumor timeline (have push, pull, push-pull)", s.Algorithm)
			}
			if s.Rounds < 1 {
				return invalidf("a multi-rumor timeline needs an explicit round budget (Rounds >= 1)")
			}
		} else if s.Algorithm != "" && !closedAlgorithms()[s.Algorithm] {
			return invalidf("unknown algorithm %q", s.Algorithm)
		}
		if s.Drop != 0 || s.Latency != 0 || s.Jitter != 0 {
			return invalidf("transport frame loss and link delay apply to the free-running engine only")
		}
		if s.Engine == EngineSimulator && s.Transport != "" {
			return invalidf("transport selection applies to the live engines only")
		}
		if s.Engine == EngineLockStep && s.Transport != "" && s.Transport != "chan" {
			return invalidf("lock-step needs the synchronous channel transport (got %q)", s.Transport)
		}
	case EngineFreeRunning:
		if !steppable(s.Algorithm) {
			return invalidf("the free-running engine runs the steppable protocols (push, pull, push-pull), not %q", s.Algorithm)
		}
		if s.StreamTotal > 0 && s.multiRumor() {
			return invalidf("a rumor stream is the sole injector; drop the InjectRumor events")
		}
		if s.MaxInFlight > 0 && s.StreamTotal == 0 {
			return invalidf("MaxInFlight on the free-running engine is the stream window; set StreamTotal")
		}
		if s.Transport != "" && s.Transport != "chan" && s.Transport != "udp" {
			return invalidf("unknown transport %q (have chan, udp)", s.Transport)
		}
		if s.Transport == "udp" && (s.Drop != 0 || s.Latency != 0 || s.Jitter != 0) {
			return invalidf("frame loss and link delay are injected by the channel transport, not udp")
		}
		// Workers is a simulator tuning knob; like on lock-step (which is
		// goroutine-per-node too) it is ignored here, so shared scenario
		// specs that set it stay runnable on every engine.
	default:
		return invalidf("unknown engine %v", s.Engine)
	}
	return nil
}

// failureEvents maps the Failures/FailureRound fields onto the adversary and
// timeline shapes the harness consumes: a start-time adversary, or a timed
// crash wave appended to the events.
func (s Spec) failureEvents(events []scenario.Event) (failure.Adversary, []scenario.Event) {
	if s.Failures <= 0 {
		return nil, events
	}
	adv := failure.Random{Count: s.Failures, Seed: s.FailureSeed}
	if s.FailureRound > 1 {
		wave := failure.Timed{Round: s.FailureRound, Adversary: adv}
		return nil, append(events, scenario.FromTimed(wave, s.N))
	}
	return adv, events
}

// roundTap adapts a run Observer to the engine's RoundObserver seam. The
// network reference arrives through BindNetwork (phonecall.NetworkBinder)
// from whichever driver constructs the network.
type roundTap struct {
	fn  Observer
	net *phonecall.Network
}

func (t *roundTap) BindNetwork(net *phonecall.Network)                  { t.net = net }
func (t *roundTap) BeginRound(round int, info phonecall.RoundInfo)      {}
func (t *roundTap) ObserveIntent(i int, it phonecall.Intent)            {}
func (t *roundTap) ObserveResponse(i int, m phonecall.Message, ok bool) {}
func (t *roundTap) ObserveDeliver(i int, inbox []phonecall.Message)     {}

func (t *roundTap) EndRound(rep phonecall.RoundReport) {
	st := RoundStats{
		Round:    rep.Round,
		Messages: rep.Messages,
		Bits:     rep.Bits,
		MaxComms: rep.MaxComms,
	}
	if t.net != nil {
		st.Live = t.net.LiveCount()
	}
	t.fn(st)
}

// harnessOptions maps the spec onto the closed-algorithm harness options.
func (s Spec) harnessOptions() harness.Options {
	adv, events := s.failureEvents(append([]scenario.Event(nil), s.Events...))
	opts := harness.Options{
		PayloadBits: s.PayloadBits,
		Workers:     s.Workers,
		Delta:       s.Delta,
		Adversary:   adv,
		Events:      events,
		LossRate:    s.LossRate,
		LossSeed:    s.LossSeed,
		Observer:    s.tap.engineObserver(),
		Topology:    s.Topology,
		Policy:      s.Policy,
	}
	return opts
}

// closedAlgo resolves the closed-algorithm default.
func (s Spec) closedAlgo() harness.Algorithm {
	if s.Algorithm == "" {
		return harness.AlgoCluster2
	}
	return harness.Algorithm(s.Algorithm)
}

// simRunner executes closed algorithms on the sharded simulator engine.
type simRunner struct{}

func (simRunner) Run(ctx context.Context, spec Spec) (Outcome, error) {
	res, err := harness.Run(ctx, spec.closedAlgo(), spec.N, spec.Seed, spec.harnessOptions())
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Engine: EngineSimulator}, nil
}

// lockStepRunner executes closed algorithms on the goroutine-per-node
// lock-step runtime — bit-identical to the simulator.
type lockStepRunner struct{}

func (lockStepRunner) Run(ctx context.Context, spec Spec) (Outcome, error) {
	lo := harness.LiveOptions{Transport: spec.Transport}
	res, err := harness.RunLockStep(ctx, spec.closedAlgo(), spec.N, spec.Seed, spec.harnessOptions(), lo)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Engine: EngineLockStep}, nil
}

// scenarioRunner executes multi-rumor timelines with the steppable protocols
// on the simulator.
type scenarioRunner struct{}

func (scenarioRunner) Run(ctx context.Context, spec Spec) (Outcome, error) {
	adv, events := spec.failureEvents(append([]scenario.Event(nil), spec.Events...))
	if adv != nil {
		// The scenario driver has no start-time adversary; round-1 crash
		// events are its equivalent shape.
		events = append(events, scenario.CrashAt{At: 1, Nodes: adv.Select(spec.N)})
	}
	if spec.LossRate > 0 {
		events = append(events, scenario.Loss{At: 1, Rate: spec.LossRate, Seed: spec.LossSeed})
	}
	sc := scenario.Scenario{
		Name:        spec.ScenarioName,
		N:           spec.N,
		Rounds:      spec.Rounds,
		Algorithm:   scenario.Algorithm(spec.Algorithm),
		Events:      events,
		MaxInFlight: spec.MaxInFlight,
	}
	cfg := scenario.Config{
		Seed:        spec.Seed,
		PayloadBits: spec.PayloadBits,
		Workers:     spec.Workers,
		Observer:    spec.tap.engineObserver(),
		Topology:    spec.Topology,
		Policy:      spec.Policy,
	}
	res, err := scenario.Run(ctx, sc, cfg)
	if err != nil {
		return Outcome{}, err
	}
	return scenarioOutcome(res), nil
}

// scenarioOutcome maps a scenario result onto the unified Outcome. Informed
// counts live nodes holding the worst-spread rumor; AllInformed means every
// rumor reached every live node; CompletionRound is the last rumor's
// completion round when all completed, 0 otherwise.
func scenarioOutcome(res scenario.Result) Outcome {
	out := Outcome{
		Result: trace.Result{
			Algorithm:        string(res.Algorithm),
			N:                res.N,
			Seed:             res.Seed,
			Rounds:           res.Rounds,
			Messages:         res.Messages,
			ControlMessages:  res.ControlMessages,
			Bits:             res.Bits,
			MessagesPerNode:  res.MessagesPerNode,
			MaxCommsPerRound: res.MaxCommsPerRound,
			Live:             res.Live,
		},
		Scenario:       res.Scenario,
		Rumors:         res.Rumors,
		ScenarioPhases: res.Phases,
		LostInjects:    res.LostInjects,
		RumorsExpired:  res.RumorsExpired,
		Engine:         EngineSimulator,
	}
	worst := -1
	completion := 0
	allComplete := len(res.Rumors) > 0
	for _, ro := range res.Rumors {
		if worst < 0 || ro.LiveInformed < worst {
			worst = ro.LiveInformed
		}
		if ro.CompletionRound == 0 {
			allComplete = false
		} else if ro.CompletionRound > completion {
			completion = ro.CompletionRound
		}
	}
	if worst >= 0 {
		out.Informed = worst
	}
	out.AllInformed = allComplete || (len(res.Rumors) > 0 && out.Informed == res.Live)
	if allComplete {
		out.CompletionRound = completion
	}
	return out
}

// freeRunner executes steppable protocols on the free-running live runtime.
type freeRunner struct{}

func (freeRunner) Run(ctx context.Context, spec Spec) (Outcome, error) {
	adv, events := spec.failureEvents(append([]scenario.Event(nil), spec.Events...))
	if adv != nil {
		events = append(events, scenario.CrashAt{At: 1, Nodes: adv.Select(spec.N)})
	}
	if spec.LossRate > 0 {
		events = append(events, scenario.Loss{At: 1, Rate: spec.LossRate, Seed: spec.LossSeed})
	}
	lo := harness.LiveOptions{
		Transport:   spec.Transport,
		Drop:        spec.Drop,
		DropSeed:    spec.DropSeed,
		Latency:     spec.Latency,
		Jitter:      spec.Jitter,
		MaxSkew:     spec.MaxSkew,
		Rounds:      spec.Rounds,
		PayloadBits: spec.PayloadBits,
		OnFrontier:  spec.tap.onFrontier(),
		Telemetry:   spec.Telemetry,
		Topology:    spec.Topology,
		Policy:      spec.Policy,
	}
	if spec.StreamTotal > 0 {
		lo.Stream = &live.StreamConfig{
			Total:       spec.StreamTotal,
			Rate:        spec.StreamRate,
			MaxInFlight: spec.MaxInFlight,
		}
	}
	algo := scenario.Algorithm(spec.Algorithm)
	if algo == "" {
		algo = scenario.AlgoPushPull
	}
	rep, err := harness.RunFreeRunning(ctx, spec.N, spec.Seed, algo, events, lo)
	if err != nil {
		return Outcome{}, err
	}
	recordSendFailures(spec.Telemetry, rep.NodeSendFailures)
	out := Outcome{
		Result:           rep.Trace(string(algo), spec.Seed),
		Drops:            rep.Drops,
		UnfiredEvents:    rep.UnfiredEvents,
		IgnoredEvents:    rep.IgnoredEvents,
		Wall:             rep.Wall,
		SendFailures:     rep.SendFailures,
		NodeSendFailures: rep.NodeSendFailures,
		LostInjects:      rep.LostInjects,
		RumorsInjected:   rep.RumorsInjected,
		RumorsConverged:  rep.RumorsConverged,
		RumorsExpired:    rep.RumorsExpired,
		RumorsActive:     rep.RumorsActive,
		InjectionStalls:  rep.InjectionStalls,
		Engine:           EngineFreeRunning,
	}
	return out, nil
}
