package check_test

// The paper's theorems as statistical tests: each claim is measured across
// the standing seed policy and asserted against calibrated finite-size
// bounds (constants chosen with ~50% headroom over the observed worst case
// at the tested sizes, so genuine regressions trip the assertions while
// seed-to-seed noise does not). See EXPERIMENTS.md, "Statistical
// methodology".

import (
	"context"
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/internal/trace"
)

// replications is the standing replication count for theorem checks.
const replications = 8

// runSample measures one harness execution, requiring full dissemination.
func runSample(t *testing.T, algo harness.Algorithm, n int, measure func(res trace.Result) float64) check.Sample {
	t.Helper()
	return func(seed uint64) (float64, error) {
		res, err := harness.Run(context.Background(), algo, n, seed, harness.Options{Workers: 1})
		if err != nil {
			return 0, err
		}
		if !res.AllInformed {
			t.Errorf("%s n=%d seed=%d informed only %d/%d", algo, n, seed, res.Informed, res.Live)
		}
		return measure(res), nil
	}
}

// totalMessages is the payload-plus-control message count of a result.
func totalMessages(res trace.Result) float64 {
	return float64(res.Messages + res.ControlMessages)
}

// TestCluster2RoundsLogarithmicWHP: Theorem 2 gives O(log log n) rounds
// w.h.p.; the check asserts the (weaker, implied) O(log n) form named in the
// verification plan — every replication completes within C·log2 n rounds —
// plus the sharper scaling signal that rounds-per-log2 n does not grow
// with n (it shrinks under the true log log behavior).
func TestCluster2RoundsLogarithmicWHP(t *testing.T) {
	const c = 8 // observed max ratio ≈ 5.5 at n=1000
	perLog := make(map[int]float64)
	for _, n := range []int{1000, 10000} {
		r, err := check.Replicate("cluster2 completion rounds", check.Seeds(replications),
			runSample(t, harness.AlgoCluster2, n, func(res trace.Result) float64 {
				return float64(res.CompletionRound)
			}))
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		logN := math.Log2(float64(n))
		r.AssertMaxBelow(t, c*logN)
		perLog[n] = r.Summary.Mean / logN
	}
	if perLog[10000] > perLog[1000]*1.15 {
		t.Errorf("rounds per log2 n grew with n (%.2f -> %.2f): not O(log n)",
			perLog[1000], perLog[10000])
	}
}

// TestClusterPushPullMessageComplexity: Theorem 18 bounds ClusterPUSH-PULL's
// traffic by O(n·(log log n + log n / log Δ)) messages; with the default
// Δ = 1024 the in-expectation check asserts the confidence interval stays
// below the calibrated curve (observed ratio ≈ 13 at the tested sizes).
func TestClusterPushPullMessageComplexity(t *testing.T) {
	const c = 30
	for _, n := range []int{1000, 10000} {
		r, err := check.Replicate("clusterpushpull total messages", check.Seeds(replications),
			runSample(t, harness.AlgoClusterPushPull, n, totalMessages))
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		logN := math.Log2(float64(n))
		curve := float64(n) * (math.Log2(logN) + logN/math.Log2(1024))
		r.AssertCIBelow(t, c*curve)
		r.AssertMaxBelow(t, 1.5*c*curve)
	}
}

// TestCluster2ConstantMessagesPerNode: the second half of Theorem 2 — O(1)
// messages per node on average. Across a decade of n the per-node message
// count must not grow (observed ≈ 25.8 at both sizes).
func TestCluster2ConstantMessagesPerNode(t *testing.T) {
	perNode := make(map[int]float64)
	for _, n := range []int{1000, 10000} {
		r, err := check.Replicate("cluster2 messages per node", check.Seeds(replications),
			runSample(t, harness.AlgoCluster2, n, totalMessages))
		if err != nil {
			t.Fatal(err)
		}
		perNode[n] = r.Summary.Mean / float64(n)
	}
	t.Logf("messages per node: n=1000: %.2f, n=10000: %.2f", perNode[1000], perNode[10000])
	if perNode[10000] > perNode[1000]*1.15 {
		t.Errorf("messages per node grew with n (%.2f -> %.2f): not O(1) per node",
			perNode[1000], perNode[10000])
	}
	if perNode[10000] > 40 {
		t.Errorf("messages per node %.2f exceeds the calibrated constant 40", perNode[10000])
	}
}

// TestPushNeedsLogRounds: the Ω(log n) lower bound for uniform PUSH. The
// informed population can at most double per round, so completion before
// round log2 n is impossible — the bound holds for the minimum over any
// seeds, with no slack constant.
func TestPushNeedsLogRounds(t *testing.T) {
	for _, n := range []int{1000, 10000} {
		r, err := check.Replicate("push completion rounds", check.Seeds(replications),
			runSample(t, harness.AlgoPush, n, func(res trace.Result) float64 {
				return float64(res.CompletionRound)
			}))
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		r.AssertMinAbove(t, math.Log2(float64(n)))
		// And in expectation PUSH pays the known ~log2 n + ln n rounds;
		// assert the mean keeps growing logarithmically (CI above 1.5·log2 n,
		// observed mean ratio ≈ 2.0).
		r.AssertCIAbove(t, 1.5*math.Log2(float64(n)))
	}
}

// TestReplicationMethodology exercises the layer itself: the interval
// narrows with more replications and the assertions fire on a planted
// violation (so a silently vacuous assertion cannot survive).
func TestReplicationMethodology(t *testing.T) {
	sample := func(seed uint64) (float64, error) { return float64(10 + seed%5), nil }
	small, err := check.Replicate("methodology", check.Seeds(5), sample)
	if err != nil {
		t.Fatal(err)
	}
	large, err := check.Replicate("methodology", check.Seeds(20), sample)
	if err != nil {
		t.Fatal(err)
	}
	if large.CI.HalfWidth() >= small.CI.HalfWidth() {
		t.Errorf("interval did not narrow: k=5 ±%.3f vs k=20 ±%.3f",
			small.CI.HalfWidth(), large.CI.HalfWidth())
	}
	probe := &testing.T{}
	large.AssertMaxBelow(probe, large.Summary.Max-1)
	if !probe.Failed() {
		t.Error("AssertMaxBelow did not fire on a planted violation")
	}
	probe = &testing.T{}
	large.AssertCIAbove(probe, large.CI.Lo+1)
	if !probe.Failed() {
		t.Error("AssertCIAbove did not fire on a planted violation")
	}
}
