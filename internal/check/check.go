// Package check is the statistical assertion layer of the verification
// subsystem: it turns the paper's asymptotic theorems into `go test`
// assertions over seeded replications.
//
// A randomized claim ("Cluster2 finishes in O(log n) rounds w.h.p.") cannot
// be tested by a single execution — one lucky or unlucky seed proves
// nothing. The layer's shape: run a measurement across a fixed, documented
// set of seeds (Replicate), summarize it with internal/stats (mean, extremes
// and a normal-approximation confidence interval), and assert calibrated
// finite-size bounds against the sample (w.h.p. upper bounds against the
// sample maximum, lower bounds against the minimum, expectation bounds
// against the confidence interval). The seed policy, replication counts and
// interval methodology are documented in EXPERIMENTS.md ("Statistical
// methodology").
//
// The theorem checks themselves live in this package's tests
// (theorems_test.go) and run in plain `go test ./...`, so every PR exercises
// them in CI.
package check

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

// Level is the confidence level every replication's interval is computed at.
const Level = 0.95

// Seeds returns the standing seed policy for k replications: the fixed
// consecutive seeds 1..k. Fixed seeds make every replication reproducible
// and every failure replayable; independence across replications comes from
// the seed-derived generator streams (internal/rng), not from seed choice.
func Seeds(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// Sample measures one replication of a randomized quantity.
type Sample func(seed uint64) (float64, error)

// Replication is a measured sample across seeds, with its summary statistics
// and confidence interval.
type Replication struct {
	Name    string
	Values  []float64
	Summary stats.Summary
	CI      stats.Interval
}

// Replicate runs the sample once per seed and summarizes the measurements.
func Replicate(name string, seeds []uint64, sample Sample) (Replication, error) {
	r := Replication{Name: name, Values: make([]float64, 0, len(seeds))}
	for _, seed := range seeds {
		v, err := sample(seed)
		if err != nil {
			return Replication{}, fmt.Errorf("check: %s seed %d: %w", name, seed, err)
		}
		r.Values = append(r.Values, v)
	}
	r.Summary = stats.Summarize(r.Values)
	r.CI = stats.ConfidenceInterval(r.Values, Level)
	return r, nil
}

// String renders the replication for failure messages and -v logs.
func (r Replication) String() string {
	return fmt.Sprintf("%s: k=%d mean=%.2f ci=[%.2f, %.2f] min=%.0f max=%.0f",
		r.Name, r.Summary.Count, r.Summary.Mean, r.CI.Lo, r.CI.Hi, r.Summary.Min, r.Summary.Max)
}

// AssertMaxBelow asserts the w.h.p. form of an upper bound: every
// replication stayed below the bound.
func (r Replication) AssertMaxBelow(t testing.TB, bound float64) {
	t.Helper()
	if r.Summary.Max > bound {
		t.Errorf("%v exceeds the bound %.2f", r, bound)
	}
}

// AssertMinAbove asserts the w.h.p. form of a lower bound: every replication
// stayed above the bound.
func (r Replication) AssertMinAbove(t testing.TB, bound float64) {
	t.Helper()
	if r.Summary.Min < bound {
		t.Errorf("%v falls below the bound %.2f", r, bound)
	}
}

// AssertCIBelow asserts an in-expectation upper bound: the confidence
// interval for the mean lies entirely below the bound.
func (r Replication) AssertCIBelow(t testing.TB, bound float64) {
	t.Helper()
	if r.CI.Hi > bound {
		t.Errorf("%v: CI upper end exceeds the bound %.2f", r, bound)
	}
}

// AssertCIAbove asserts an in-expectation lower bound: the confidence
// interval for the mean lies entirely above the bound.
func (r Replication) AssertCIAbove(t testing.TB, bound float64) {
	t.Helper()
	if r.CI.Lo < bound {
		t.Errorf("%v: CI lower end falls below the bound %.2f", r, bound)
	}
}
