package harness

import (
	"context"
	"fmt"

	"repro/internal/failure"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// RunScenario executes a steppable dynamic-network scenario (see
// internal/scenario) once per seed and returns the per-seed results. The
// scenario's event seeds stay fixed across trials — the timeline is the
// workload — while the execution seed varies.
func RunScenario(ctx context.Context, sc scenario.Scenario, seeds []uint64, cfg scenario.Config) ([]scenario.Result, error) {
	out := make([]scenario.Result, 0, len(seeds))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := scenario.Run(ctx, sc, c)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %q seed %d: %w", sc.Name, seed, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ScenarioRow aggregates repeated trials of one scenario.
type ScenarioRow struct {
	Scenario  string
	Algorithm scenario.Algorithm
	N         int
	Trials    int

	// InformedFraction summarizes the worst per-rumor live-informed
	// fraction at the end of each trial; CompletionRounds the first rumor's
	// completion round (trials in which it never completed are excluded).
	InformedFraction stats.Summary
	CompletionRounds stats.Summary
	MessagesPerNode  stats.Summary
	MaxComms         stats.Summary
}

// AggregateScenario runs the scenario for every seed and summarizes.
func AggregateScenario(ctx context.Context, sc scenario.Scenario, seeds []uint64, cfg scenario.Config) (ScenarioRow, error) {
	results, err := RunScenario(ctx, sc, seeds, cfg)
	if err != nil {
		return ScenarioRow{}, err
	}
	row := ScenarioRow{Scenario: sc.Name, N: sc.N, Trials: len(results)}
	var informed, completion, msgs, comms []float64
	for _, res := range results {
		row.Algorithm = res.Algorithm
		informed = append(informed, res.MinLiveFraction())
		if len(res.Rumors) > 0 && res.Rumors[0].CompletionRound > 0 {
			completion = append(completion, float64(res.Rumors[0].CompletionRound))
		}
		msgs = append(msgs, res.MessagesPerNode)
		comms = append(comms, float64(res.MaxCommsPerRound))
	}
	row.InformedFraction = stats.Summarize(informed)
	row.CompletionRounds = stats.Summarize(completion)
	row.MessagesPerNode = stats.Summarize(msgs)
	row.MaxComms = stats.Summarize(comms)
	return row, nil
}

// e8CrashRound is the engine round at whose start E8's crash wave strikes:
// late enough that every algorithm is mid-execution (the clustering
// algorithms are still building their clustering, the baselines are still
// spreading), so the wave hits live in-flight state rather than the start
// configuration.
const e8CrashRound = 4

// E8Churn reproduces the "gossip under churn" comparison: a timed oblivious
// crash wave (failure.Timed via scenario.FromTimed) plus per-call loss,
// swept over crash fraction × loss rate × algorithm, all mid-execution.
// Unlike E6 — where the adversary strikes before round 0 and Theorem 19
// bounds the damage — the wave here removes informed nodes and in-flight
// calls, which is exactly the regime where the paper's sparse O(1)-message
// algorithms and the address-book baseline diverge from robust flooding.
func E8Churn(cfg SweepConfig) (Table, error) {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	crashFracs := []float64{0, 0.10, 0.25}
	lossRates := []float64{0, 0.05, 0.20}
	algos := []Algorithm{AlgoPushPull, AlgoAddressBook, AlgoCluster2}

	t := Table{
		ID: "E8",
		Title: fmt.Sprintf("gossip under churn at n=%d (crash wave at round %d × per-call loss)",
			n, e8CrashRound),
		Header: []string{
			"crash F/n", "loss", "algorithm", "informed min", "uninformed mean",
			"rounds", "msgs/node",
		},
	}
	for _, frac := range crashFracs {
		f := int(frac * float64(n))
		for _, loss := range lossRates {
			for _, algo := range algos {
				var informed, uninformed, rounds, msgs []float64
				for _, seed := range cfg.Seeds {
					opts := cfg.Opts
					opts.LossRate = loss
					opts.LossSeed = seed + 3000
					if f > 0 {
						wave := failure.Timed{
							Round:     e8CrashRound,
							Adversary: failure.Random{Count: f, Seed: seed + 2000},
						}
						opts.Events = []scenario.Event{scenario.FromTimed(wave, n)}
					}
					res, err := Run(context.Background(), algo, n, seed, opts)
					if err != nil {
						return Table{}, fmt.Errorf("E8 %s crash=%.2f loss=%.2f: %w", algo, frac, loss, err)
					}
					if res.Live > 0 {
						informed = append(informed, float64(res.Informed)/float64(res.Live))
					}
					uninformed = append(uninformed, float64(res.UninformedSurvivors()))
					rounds = append(rounds, float64(res.Rounds))
					msgs = append(msgs, res.MessagesPerNode)
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.2f", frac),
					fmt.Sprintf("%.2f", loss),
					string(algo),
					fmt.Sprintf("%.3f", stats.Summarize(informed).Min),
					fmt.Sprintf("%.1f", stats.Summarize(uninformed).Mean),
					fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean),
					fmt.Sprintf("%.1f", stats.Summarize(msgs).Mean),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the crash wave fires at the start of round %d — mid-execution, after spreading has begun — and loss applies from round 1", e8CrashRound),
		"informed min is the worst live-informed fraction over seeds; uninformed mean counts live survivors without the rumor",
		"expected shape: push-pull degrades gracefully under loss; the sparse algorithms lose more coverage per crashed node, and loss stretches every round count",
	)
	return t, nil
}
