package harness

import (
	"context"
	"fmt"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// E12 — non-uniform gossip over heterogeneous topologies: the push/pull
// baselines and the paper's cluster algorithm under policy-driven peer
// selection, across a uniform network, flat zones and a WAN-asymmetric
// topology, plus zone-outage convergence on all three engines. Every
// policy-driven row asserts the simulator and the lock-step runtime stay
// bit-identical — the conformance guarantee extends to the policy selector.
// See EXPERIMENTS.md E12.

// e12Policy is the selection policy of the non-uniform rows: prefer same-zone
// peers 3:1 and lean toward high-capacity nodes, no hard constraints, so
// progress never stalls while the bias stays visible in the round counts.
func e12Policy() *policy.Policy {
	return &policy.Policy{
		Weights: policy.Weights{SameZone: 3, Capacity: 1},
	}
}

// E12Topologies builds the E12 table.
func E12Topologies(cfg SweepConfig) (Table, error) {
	// Policy-driven lock-step rows run every node as a goroutine: cap the
	// size like E9 so the default sweep stays cheap.
	n := cfg.Sizes[len(cfg.Sizes)-1]
	if n > 2000 {
		n = 2000
	}
	const zones = 3
	t := Table{
		ID:    "E12",
		Title: fmt.Sprintf("policy-driven gossip over heterogeneous topologies at n=%d", n),
		Header: []string{
			"topology", "algorithm", "rounds", "msgs/node", "informed", "identical to sim",
		},
	}

	topos := []struct {
		name  string
		table *policy.Table
		pol   *policy.Policy
	}{
		{"uniform", nil, nil},
	}
	zoned, err := policy.ZoneTable(n, zones)
	if err != nil {
		return Table{}, fmt.Errorf("E12: %w", err)
	}
	wan, err := policy.WanLanTable(n, zones)
	if err != nil {
		return Table{}, fmt.Errorf("E12: %w", err)
	}
	topos = append(topos,
		struct {
			name  string
			table *policy.Table
			pol   *policy.Policy
		}{"zoned", zoned, e12Policy()},
		struct {
			name  string
			table *policy.Table
			pol   *policy.Policy
		}{"wan-asym", wan, e12Policy()},
	)

	for _, topo := range topos {
		for _, algo := range []Algorithm{AlgoPush, AlgoPull, AlgoPushPull, AlgoCluster2} {
			opts := cfg.Opts
			opts.Topology = topo.table
			opts.Policy = topo.pol
			var rounds, msgs, informed []float64
			identical := true
			for _, seed := range cfg.Seeds {
				sim, err := Run(context.Background(), algo, n, seed, opts)
				if err != nil {
					return Table{}, fmt.Errorf("E12 sim %s/%s: %w", topo.name, algo, err)
				}
				liveRes, err := RunLockStep(context.Background(), algo, n, seed, opts, LiveOptions{})
				if err != nil {
					return Table{}, fmt.Errorf("E12 lock-step %s/%s: %w", topo.name, algo, err)
				}
				if !resultsEqual(sim, liveRes) {
					identical = false
				}
				rounds = append(rounds, float64(sim.CompletionRound))
				msgs = append(msgs, sim.MessagesPerNode)
				if sim.Live > 0 {
					informed = append(informed, float64(sim.Informed)/float64(sim.Live))
				}
			}
			t.Rows = append(t.Rows, []string{
				topo.name, string(algo),
				fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean),
				fmt.Sprintf("%.2f", stats.Summarize(msgs).Mean),
				fmt.Sprintf("%.3f", stats.Summarize(informed).Mean),
				fmt.Sprintf("%v", identical),
			})
		}
	}

	// Zone-outage convergence: zone 2 goes dark at round 3 and heals at round
	// 8 while a zoned policy biases the spread — all three engines must still
	// inform every live node.
	events := []scenario.Event{
		scenario.ZoneOutage{At: 3, Zone: zones - 1},
		scenario.ZoneHeal{At: 8, Zone: zones - 1},
	}
	outageOpts := cfg.Opts
	outageOpts.Topology = zoned
	outageOpts.Policy = e12Policy()
	outageOpts.Events = events
	var simRounds, simInformed, lsInformed []float64
	identical := true
	for _, seed := range cfg.Seeds {
		sim, err := Run(context.Background(), AlgoCluster2, n, seed, outageOpts)
		if err != nil {
			return Table{}, fmt.Errorf("E12 outage sim: %w", err)
		}
		liveRes, err := RunLockStep(context.Background(), AlgoCluster2, n, seed, outageOpts, LiveOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("E12 outage lock-step: %w", err)
		}
		if !resultsEqual(sim, liveRes) {
			identical = false
		}
		simRounds = append(simRounds, float64(sim.Rounds))
		if sim.Live > 0 {
			simInformed = append(simInformed, float64(sim.Informed)/float64(sim.Live))
		}
		if liveRes.Live > 0 {
			lsInformed = append(lsInformed, float64(liveRes.Informed)/float64(liveRes.Live))
		}
	}
	t.Rows = append(t.Rows, []string{
		"zoned + outage", "cluster2 (sim & lock-step)",
		fmt.Sprintf("%.1f", stats.Summarize(simRounds).Mean),
		"-",
		fmt.Sprintf("%.3f", stats.Summarize(simInformed).Mean),
		fmt.Sprintf("%v", identical),
	})

	var frRounds, frInformed []float64
	for _, seed := range cfg.Seeds {
		rep, err := RunFreeRunning(context.Background(), n, seed, scenario.AlgoPushPull, events,
			LiveOptions{PayloadBits: cfg.Opts.PayloadBits, Topology: zoned, Policy: e12Policy()})
		if err != nil {
			return Table{}, fmt.Errorf("E12 outage free-run: %w", err)
		}
		frRounds = append(frRounds, float64(rep.CompletionFrontier))
		if rep.Live > 0 {
			frInformed = append(frInformed, float64(rep.Informed)/float64(rep.Live))
		}
	}
	t.Rows = append(t.Rows, []string{
		"zoned + outage", "push-pull (free-running)",
		fmt.Sprintf("%.1f", stats.Summarize(frRounds).Mean),
		"-",
		fmt.Sprintf("%.3f", stats.Summarize(frInformed).Mean),
		"n/a (async)",
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("non-uniform rows select peers under a same-zone 3:1 capacity-weighted policy over %d zones; 'identical to sim' asserts bit-equal sim and lock-step traces", zones),
		"the uniform rows run the unchanged contract (no topology installed) — the baseline the policy rows are read against",
		fmt.Sprintf("outage rows crash zone %d at round 3 and heal it at round 8; informed counts live nodes holding the rumor at the end", zones-1),
	)
	return t, nil
}
