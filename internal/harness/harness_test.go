package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/scenario"
)

func smallSweep() SweepConfig {
	return SweepConfig{Sizes: []int{500, 2000}, Seeds: []uint64{1, 2}}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		res, err := Run(context.Background(), a, 2000, 1, Options{Delta: 64})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !res.AllInformed {
			t.Fatalf("%s informed only %d/%d", a, res.Informed, res.Live)
		}
		if res.CompletionRound <= 0 || res.CompletionRound > res.Rounds {
			t.Fatalf("%s completion round %d out of range (total %d)", a, res.CompletionRound, res.Rounds)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(context.Background(), Algorithm("nope"), 100, 1, Options{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestRunWithAdversary(t *testing.T) {
	res, err := Run(context.Background(), AlgoCluster2, 5000, 3, Options{Adversary: failure.Random{Count: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 4500 {
		t.Fatalf("live = %d, want 4500", res.Live)
	}
	if res.Informed < 4400 {
		t.Fatalf("informed = %d, too many uninformed survivors", res.Informed)
	}
}

func TestRunAllFailed(t *testing.T) {
	if _, err := Run(context.Background(), AlgoPush, 100, 1, Options{Adversary: failure.Block{Count: 100}}); err == nil {
		t.Fatal("all-failed network should error")
	}
}

func TestAggregateSummaries(t *testing.T) {
	row, err := Aggregate(AlgoPushPull, 1000, []uint64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Trials != 3 || row.CompletionRounds.Count != 3 {
		t.Fatalf("row = %+v", row)
	}
	if row.InformedFraction.Min < 1 {
		t.Fatalf("push-pull should always inform everyone, got %v", row.InformedFraction)
	}
	if row.TotalRounds.Mean < row.CompletionRounds.Mean {
		t.Fatal("total rounds cannot be below completion rounds")
	}
}

func TestSweepSkipsLargeNameDropper(t *testing.T) {
	rows, err := Sweep([]Algorithm{AlgoNameDropper}, SweepConfig{Sizes: []int{500, 100000}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].N != 500 {
		t.Fatalf("sweep rows = %+v", rows)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tbl.Render()
	for _, want := range []string{"EX — demo", "a    bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("E99", smallSweep()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestExperimentE4SmallSweep(t *testing.T) {
	tbl, err := RunExperiment("e4", smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected one row per size, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("lower bound violated in row %v", row)
		}
	}
}

func TestExperimentE6SmallSweep(t *testing.T) {
	cfg := SweepConfig{Sizes: []int{4000}, Seeds: []uint64{1, 2}}
	tbl, err := RunExperiment("E6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestRunWithTimedCrashWave(t *testing.T) {
	// A mid-execution crash wave under a closed algorithm: the wave fires at
	// round 4 while cluster2 is building its clustering. Live count must
	// reflect the wave and the informed count must stay consistent
	// (0 <= informed <= live).
	wave := failure.Timed{Round: 4, Adversary: failure.Random{Count: 500, Seed: 9}}
	res, err := Run(context.Background(), AlgoCluster2, 5000, 3, Options{
		Events: []scenario.Event{scenario.FromTimed(wave, 5000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 4500 {
		t.Fatalf("live = %d, want 4500 after the wave", res.Live)
	}
	if res.Informed < 0 || res.Informed > res.Live {
		t.Fatalf("informed = %d out of range [0,%d]", res.Informed, res.Live)
	}
	if res.UninformedSurvivors() < 0 {
		t.Fatalf("negative uninformed survivors: %d", res.UninformedSurvivors())
	}
}

func TestRunWithLoss(t *testing.T) {
	clean, err := Run(context.Background(), AlgoPushPull, 2000, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(context.Background(), AlgoPushPull, 2000, 1, Options{LossRate: 0.3, LossSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.CompletionRound <= clean.CompletionRound {
		t.Fatalf("30%% loss did not slow push-pull: %d vs %d rounds",
			lossy.CompletionRound, clean.CompletionRound)
	}
}

func TestRunRejectsNeverFiredEvents(t *testing.T) {
	// Push-pull at n=500 finishes its fixed budget well before round 500; an
	// event scheduled there can never fire, and silently skipping the
	// requested dynamics must not look like surviving them.
	wave := failure.Timed{Round: 500, Adversary: failure.Random{Count: 50, Seed: 9}}
	_, err := Run(context.Background(), AlgoPushPull, 500, 1, Options{
		Events: []scenario.Event{scenario.FromTimed(wave, 500)},
	})
	if err == nil {
		t.Fatal("a timeline event scheduled past the final round should error, not be dropped")
	}
}

func TestRunRejectsInjectUnderClosedAlgorithm(t *testing.T) {
	_, err := Run(context.Background(), AlgoPushPull, 500, 1, Options{
		Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}},
	})
	if err == nil {
		t.Fatal("InjectRumor under a closed algorithm should error")
	}
}

func TestRunScenarioAndAggregate(t *testing.T) {
	sc := scenario.Scenario{
		Name:   "test churn",
		N:      1000,
		Rounds: 30,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.CrashAt{At: 6, Nodes: failure.Random{Count: 100, Seed: 5}.Select(1000)},
		},
	}
	results, err := RunScenario(context.Background(), sc, []uint64{1, 2}, scenario.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Seed != 1 || results[1].Seed != 2 {
		t.Fatalf("per-seed results wrong: %+v", results)
	}
	row, err := AggregateScenario(context.Background(), sc, []uint64{1, 2}, scenario.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Trials != 2 || row.Algorithm != scenario.AlgoPushPull {
		t.Fatalf("row = %+v", row)
	}
	if row.InformedFraction.Min < 0.9 {
		t.Fatalf("push-pull under a single wave informed only %v", row.InformedFraction)
	}
}

func TestExperimentE8SmallSweep(t *testing.T) {
	cfg := SweepConfig{Sizes: []int{2000}, Seeds: []uint64{1}}
	tbl, err := RunExperiment("E8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 crash fractions × 3 loss rates × 3 algorithms.
	if len(tbl.Rows) != 27 {
		t.Fatalf("E8 rows = %d, want 27", len(tbl.Rows))
	}
	// The lossless, crash-free push-pull row must report full coverage.
	first := tbl.Rows[0]
	if first[0] != "0.00" || first[1] != "0.00" || first[3] != "1.000" {
		t.Fatalf("baseline E8 row unexpected: %v", first)
	}
}

func TestExperimentIDsDispatch(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 11 {
		t.Fatalf("want 11 experiments, got %v", ids)
	}
}

// TestRunLockStepMatchesRun pins the harness-level conformance guarantee:
// RunLockStep returns exactly what Run returns for the same arguments, with
// adversary and timeline options applied on the live runtime.
func TestRunLockStepMatchesRun(t *testing.T) {
	opts := Options{Workers: 1, LossRate: 0.05, LossSeed: 3}
	sim, err := Run(context.Background(), AlgoPushPull, 600, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := RunLockStep(context.Background(), AlgoPushPull, 600, 2, opts, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(sim, liveRes) {
		t.Fatalf("live lock-step diverges from sim:\n sim:  %+v\n live: %+v", sim, liveRes)
	}
	if _, err := RunLockStep(context.Background(), AlgoPushPull, 100, 1, Options{}, LiveOptions{Transport: "udp"}); err == nil {
		t.Fatal("lock-step over UDP accepted")
	}
	if _, err := RunLockStep(context.Background(), AlgoPushPull, 100, 1, Options{}, LiveOptions{Drop: 0.5}); err == nil {
		t.Fatal("lock-step over a lossy mesh accepted")
	}
}

// TestRunFreeRunningConverges smoke-tests the harness free-running path.
func TestRunFreeRunningConverges(t *testing.T) {
	rep, err := RunFreeRunning(context.Background(), 300, 4, "", nil, LiveOptions{Drop: 0.05, DropSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("free-running run did not converge: %+v", rep)
	}
	if _, err := RunFreeRunning(context.Background(), 300, 4, "", nil, LiveOptions{Transport: "bogus"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
