package harness

import (
	"strings"
	"testing"

	"repro/internal/failure"
)

func smallSweep() SweepConfig {
	return SweepConfig{Sizes: []int{500, 2000}, Seeds: []uint64{1, 2}}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		res, err := Run(a, 2000, 1, Options{Delta: 64})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !res.AllInformed {
			t.Fatalf("%s informed only %d/%d", a, res.Informed, res.Live)
		}
		if res.CompletionRound <= 0 || res.CompletionRound > res.Rounds {
			t.Fatalf("%s completion round %d out of range (total %d)", a, res.CompletionRound, res.Rounds)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm("nope"), 100, 1, Options{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestRunWithAdversary(t *testing.T) {
	res, err := Run(AlgoCluster2, 5000, 3, Options{Adversary: failure.Random{Count: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 4500 {
		t.Fatalf("live = %d, want 4500", res.Live)
	}
	if res.Informed < 4400 {
		t.Fatalf("informed = %d, too many uninformed survivors", res.Informed)
	}
}

func TestRunAllFailed(t *testing.T) {
	if _, err := Run(AlgoPush, 100, 1, Options{Adversary: failure.Block{Count: 100}}); err == nil {
		t.Fatal("all-failed network should error")
	}
}

func TestAggregateSummaries(t *testing.T) {
	row, err := Aggregate(AlgoPushPull, 1000, []uint64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Trials != 3 || row.CompletionRounds.Count != 3 {
		t.Fatalf("row = %+v", row)
	}
	if row.InformedFraction.Min < 1 {
		t.Fatalf("push-pull should always inform everyone, got %v", row.InformedFraction)
	}
	if row.TotalRounds.Mean < row.CompletionRounds.Mean {
		t.Fatal("total rounds cannot be below completion rounds")
	}
}

func TestSweepSkipsLargeNameDropper(t *testing.T) {
	rows, err := Sweep([]Algorithm{AlgoNameDropper}, SweepConfig{Sizes: []int{500, 100000}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].N != 500 {
		t.Fatalf("sweep rows = %+v", rows)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tbl.Render()
	for _, want := range []string{"EX — demo", "a    bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("E99", smallSweep()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestExperimentE4SmallSweep(t *testing.T) {
	tbl, err := RunExperiment("e4", smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected one row per size, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("lower bound violated in row %v", row)
		}
	}
}

func TestExperimentE6SmallSweep(t *testing.T) {
	cfg := SweepConfig{Sizes: []int{4000}, Seeds: []uint64{1, 2}}
	tbl, err := RunExperiment("E6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestExperimentIDsDispatch(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 7 {
		t.Fatalf("want 7 experiments, got %v", ids)
	}
}
