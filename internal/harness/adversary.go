package harness

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/failure"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// E10: gossip under Byzantine adversaries. Where E6 and E8 remove nodes
// (crash faults), E10 keeps them in the network misbehaving: liars advertise
// wrong holdings, spammers replace their traffic with junk, stale nodes
// answer with frozen state, and eclipse droppers cut a victim set off. The
// table sweeps adversary fraction × behavior × algorithm and reports how
// convergence degrades — the empirical counterpart of the observation that
// the paper's guarantees assume honest (if failing) participants.

// e10Victims is the eclipse rows' victim-set size: a handful of nodes, so
// the residual uninformed fraction directly exposes how many of them the
// droppers managed to isolate.
const e10Victims = 3

// e10Budget is the steppable rows' round budget: generous against the
// honest-run completion (Θ(log n) for push and push-pull) so a slowdown is
// measured, not clipped, while keeping the sweep bounded.
func e10Budget(n int) int {
	return 4*bits.Len(uint(n)) + 30
}

// e10Corrupt builds the round-1 corruption event: count nodes chosen by the
// oblivious random selection, never the source (node 0 stays honest so every
// row measures degraded spreading rather than a muted injection point).
func e10Corrupt(n, count int, adv scenario.AdversarySpec, pickSeed uint64) scenario.Event {
	nodes := failure.Random{Count: count + 1, Seed: pickSeed}.Select(n)
	picked := make([]int, 0, count)
	for _, i := range nodes {
		if i != 0 && len(picked) < count {
			picked = append(picked, i)
		}
	}
	return scenario.CorruptAt{At: 1, Nodes: picked, Adversary: adv}
}

// e10Steppable runs one steppable-protocol trial: rumor 0 injected at the
// honest node 0, count adversaries installed at round 1.
func e10Steppable(cfg SweepConfig, algo scenario.Algorithm, n, count int, adv scenario.AdversarySpec, seed uint64) (scenario.Result, error) {
	events := []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}}
	if count > 0 {
		events = append(events, e10Corrupt(n, count, adv, seed+4000))
	}
	sc := scenario.Scenario{
		Name:      "e10",
		N:         n,
		Rounds:    e10Budget(n),
		Algorithm: algo,
		Events:    events,
	}
	c := scenario.Config{
		Seed:        seed,
		PayloadBits: cfg.Opts.PayloadBits,
		Workers:     cfg.Opts.Workers,
	}
	return scenario.Run(context.Background(), sc, c)
}

// E10Byzantine sweeps adversary fraction × behavior × algorithm and reports
// rounds-to-convergence and the residual uninformed fraction. Steppable rows
// (push, push-pull) run the multi-rumor scenario driver; the cluster2 rows
// run the closed direct-addressing algorithm with the same CorruptAt timeline
// through the harness, under the spammer (the one library behavior that
// attacks closed-protocol traffic — the holdings-directed liar and stale
// speak the rumor-set vocabulary and pass closed messages through).
func E10Byzantine(cfg SweepConfig) (Table, error) {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	fractions := []float64{0, 0.05, 0.10, 0.25}
	steppables := []scenario.Algorithm{scenario.AlgoPush, scenario.AlgoPushPull}

	t := Table{
		ID:    "E10",
		Title: fmt.Sprintf("gossip under Byzantine behaviors at n=%d (adversaries installed at round 1)", n),
		Header: []string{
			"behavior", "algorithm", "fraction", "completion rounds", "completed",
			"residual uninformed", "msgs/node",
		},
	}

	type rowKey struct {
		behavior scenario.AdversaryKind
		algo     string
	}
	addRow := func(key rowKey, frac float64, completion stats.Summary, completed, trials int, residual, msgs stats.Summary) {
		comp := "-"
		if completed > 0 {
			comp = fmt.Sprintf("%.1f", completion.Mean)
		}
		t.Rows = append(t.Rows, []string{
			string(key.behavior),
			key.algo,
			fmt.Sprintf("%.2f", frac),
			comp,
			fmt.Sprintf("%d/%d", completed, trials),
			fmt.Sprintf("%.4f", residual.Mean),
			fmt.Sprintf("%.1f", msgs.Mean),
		})
	}

	victims := failure.Random{Count: e10Victims, Seed: 0xec1}.Select(n)
	specs := []struct {
		kind scenario.AdversarySpec
	}{
		{scenario.AdversarySpec{Kind: scenario.AdvLiar}},
		{scenario.AdversarySpec{Kind: scenario.AdvSpammer}},
		{scenario.AdversarySpec{Kind: scenario.AdvStale}},
		{scenario.AdversarySpec{Kind: scenario.AdvEclipse, Victims: victims}},
	}

	for _, spec := range specs {
		algos := steppables
		if spec.kind.Kind == scenario.AdvEclipse {
			// Eclipse is targeted: one algorithm suffices to show the victim
			// set going dark as the dropper fraction grows.
			algos = []scenario.Algorithm{scenario.AlgoPushPull}
		}
		for _, algo := range algos {
			for _, frac := range fractions {
				count := int(frac * float64(n))
				var completion, residual, msgs []float64
				completed := 0
				for _, seed := range cfg.Seeds {
					adv := spec.kind
					adv.Seed = seed + 5000
					res, err := e10Steppable(cfg, algo, n, count, adv, seed)
					if err != nil {
						return Table{}, fmt.Errorf("E10 %s %s frac=%.2f: %w", spec.kind.Kind, algo, frac, err)
					}
					ro := res.Rumors[0]
					if ro.CompletionRound > 0 {
						completion = append(completion, float64(ro.CompletionRound))
						completed++
					}
					residual = append(residual, 1-ro.LiveFraction)
					msgs = append(msgs, res.MessagesPerNode)
				}
				addRow(rowKey{spec.kind.Kind, string(algo)}, frac,
					stats.Summarize(completion), completed, len(cfg.Seeds),
					stats.Summarize(residual), stats.Summarize(msgs))
			}
		}
	}

	// Closed direct-addressing rows: cluster2 under the spammer, through the
	// harness timeline (CorruptAt works without a rumor tracker).
	for _, frac := range fractions {
		count := int(frac * float64(n))
		var completion, residual, msgs []float64
		completed := 0
		for _, seed := range cfg.Seeds {
			opts := cfg.Opts
			if count > 0 {
				adv := scenario.AdversarySpec{Kind: scenario.AdvSpammer, Seed: seed + 5000}
				opts.Events = append(append([]scenario.Event(nil), opts.Events...),
					e10Corrupt(n, count, adv, seed+4000))
			}
			res, err := Run(context.Background(), AlgoCluster2, n, seed, opts)
			if err != nil {
				return Table{}, fmt.Errorf("E10 spammer cluster2 frac=%.2f: %w", frac, err)
			}
			if res.AllInformed {
				completion = append(completion, float64(res.CompletionRound))
				completed++
			}
			if res.Live > 0 {
				residual = append(residual, 1-float64(res.Informed)/float64(res.Live))
			}
			msgs = append(msgs, res.MessagesPerNode)
		}
		addRow(rowKey{scenario.AdvSpammer, string(AlgoCluster2)}, frac,
			stats.Summarize(completion), completed, len(cfg.Seeds),
			stats.Summarize(residual), stats.Summarize(msgs))
	}

	t.Notes = append(t.Notes,
		"adversaries are installed at round 1 on random nodes (never the source); they keep running — the damage is misinformation, not absence",
		fmt.Sprintf("eclipse rows target a fixed victim set of %d nodes; residual uninformed ≈ victims/n once the droppers surround them", e10Victims),
		"completion rounds averages only the trials that converged within the budget ('-' when none did); residual uninformed is the mean live fraction still missing the rumor",
		"expected shape: residual grows monotonically with the adversary fraction for every behavior × algorithm, and push-pull degrades more slowly than push",
	)
	return t, nil
}
