package harness

import (
	"math/bits"
	"time"

	"repro/internal/phonecall"
	"repro/internal/telemetry"
)

// EngineTelemetry feeds a telemetry.Registry from the engine's observer seam
// (phonecall.Observe): per-round traffic counters, population gauges and the
// round-duration histogram, labeled by algorithm and engine. It rides the
// same RoundObserver contract as every other observer, so registering it
// cannot change results or metrics — only runs that opt in pay the observer
// overhead at all.
//
// The exported series (see DESIGN.md §11):
//
//	repro_rounds_total{algo,engine}      executed rounds
//	repro_messages_total{algo,engine}    messages sent (payload + control)
//	repro_bits_total{algo,engine}        bits sent
//	repro_live_nodes                     live population after the last round
//	repro_corrupted_nodes                Byzantine-corrupted population
//	repro_max_comms_per_round            high-water mark of the engine's Δ
//	repro_informed_nodes                 live nodes holding the worst-spread
//	                                     rumor (rumor-tracking runs only)
//	repro_round_duration_seconds         histogram of wall time per round
type EngineTelemetry struct {
	reg *telemetry.Registry

	rounds, msgs, bitsSent *telemetry.Counter
	liveNodes, corrupted   *telemetry.Gauge
	maxComms               *telemetry.Gauge
	informed               *telemetry.Gauge // created lazily on BindTracker
	duration               *telemetry.Histogram

	net     *phonecall.Network
	tracker *phonecall.RumorTracker
	begin   time.Time
}

// NewEngineTelemetry resolves the instruments for one (algorithm, engine)
// pair up front, so the per-round updates never touch the registry map.
func NewEngineTelemetry(reg *telemetry.Registry, algo, engine string) *EngineTelemetry {
	by := []telemetry.Label{{Key: "algo", Value: algo}, {Key: "engine", Value: engine}}
	return &EngineTelemetry{
		reg:       reg,
		rounds:    reg.Counter("repro_rounds_total", by...),
		msgs:      reg.Counter("repro_messages_total", by...),
		bitsSent:  reg.Counter("repro_bits_total", by...),
		liveNodes: reg.Gauge("repro_live_nodes"),
		corrupted: reg.Gauge("repro_corrupted_nodes"),
		maxComms:  reg.Gauge("repro_max_comms_per_round"),
		duration:  reg.Histogram("repro_round_duration_seconds", nil),
	}
}

// BindNetwork implements phonecall.NetworkBinder.
func (e *EngineTelemetry) BindNetwork(net *phonecall.Network) { e.net = net }

// BindTracker implements phonecall.TrackerBinder. Rumor-tracking drivers
// (the scenario driver) bind their tracker, which turns on the
// repro_informed_nodes gauge; closed algorithms have no tracker and the
// gauge is never registered, instead of exporting a misleading zero.
func (e *EngineTelemetry) BindTracker(tr *phonecall.RumorTracker) {
	e.tracker = tr
	e.informed = e.reg.Gauge("repro_informed_nodes")
}

// BeginRound implements phonecall.RoundObserver (coordinator goroutine).
func (e *EngineTelemetry) BeginRound(round int, info phonecall.RoundInfo) {
	e.begin = time.Now()
}

// ObserveIntent implements phonecall.RoundObserver (no-op; shard goroutine).
func (e *EngineTelemetry) ObserveIntent(i int, it phonecall.Intent) {}

// ObserveResponse implements phonecall.RoundObserver (no-op).
func (e *EngineTelemetry) ObserveResponse(i int, m phonecall.Message, ok bool) {}

// ObserveDeliver implements phonecall.RoundObserver (no-op).
func (e *EngineTelemetry) ObserveDeliver(i int, inbox []phonecall.Message) {}

// EndRound implements phonecall.RoundObserver: fold the engine's own round
// report into the registry. Coordinator goroutine, allocation-free.
func (e *EngineTelemetry) EndRound(rep phonecall.RoundReport) {
	e.rounds.Add(1)
	e.msgs.Add(rep.Messages)
	e.bitsSent.Add(rep.Bits)
	e.maxComms.Max(int64(rep.MaxComms))
	e.duration.Observe(time.Since(e.begin).Seconds())
	if e.net != nil {
		e.liveNodes.Set(int64(e.net.LiveCount()))
		e.corrupted.Set(int64(e.net.CorruptedCount()))
	}
	if e.tracker != nil {
		e.informed.Set(int64(WorstSpread(e.tracker)))
	}
}

// WorstSpread returns the live-informed count of the worst-spread registered
// rumor — the same "informed" the scenario result reports — or 0 when no
// rumor is registered yet.
func WorstSpread(tr *phonecall.RumorTracker) int {
	reg := tr.Registered()
	if reg == 0 {
		return 0
	}
	worst := -1
	for reg != 0 {
		r := bits.TrailingZeros64(reg)
		reg &^= 1 << r
		if c := tr.LiveInformed(phonecall.RumorID(r)); worst < 0 || c < worst {
			worst = c
		}
	}
	return worst
}
