package harness

import (
	"math/bits"
	"strconv"
	"time"

	"repro/internal/phonecall"
	"repro/internal/telemetry"
)

// EngineTelemetry feeds a telemetry.Registry from the engine's observer seam
// (phonecall.Observe): per-round traffic counters, population gauges and the
// round-duration histogram, labeled by algorithm and engine. It rides the
// same RoundObserver contract as every other observer, so registering it
// cannot change results or metrics — only runs that opt in pay the observer
// overhead at all.
//
// The exported series (see DESIGN.md §11):
//
//	repro_rounds_total{algo,engine}      executed rounds
//	repro_messages_total{algo,engine}    messages sent (payload + control)
//	repro_bits_total{algo,engine}        bits sent
//	repro_live_nodes                     live population after the last round
//	repro_corrupted_nodes                Byzantine-corrupted population
//	repro_max_comms_per_round            high-water mark of the engine's Δ
//	repro_informed_nodes                 live nodes holding the worst-spread
//	                                     rumor (rumor-tracking runs only)
//	repro_round_duration_seconds         histogram of wall time per round
//
// Policy-driven runs (a peer selector installed on the network) add:
//
//	repro_policy_evaluations_total{algo,engine}  selector decisions
//	repro_policy_violations_total{algo,engine}   decisions with no admissible
//	                                             peer (failed call in enforce
//	                                             mode, uniform fallback in
//	                                             permissive)
//	repro_zone_informed_nodes{zone}              live nodes per topology zone
//	                                             holding every registered
//	                                             rumor (rumor-tracking runs)
type EngineTelemetry struct {
	reg *telemetry.Registry

	rounds, msgs, bitsSent *telemetry.Counter
	liveNodes, corrupted   *telemetry.Gauge
	maxComms               *telemetry.Gauge
	informed               *telemetry.Gauge // created lazily on BindTracker
	duration               *telemetry.Histogram
	algo, engine           string

	// Policy instrumentation, created lazily when the bound network carries a
	// policy view. The selector's counters are cumulative, so EndRound feeds
	// deltas against the last-seen values.
	policySel             policyView
	policyEvals           *telemetry.Counter
	policyViolations      *telemetry.Counter
	lastEvals, lastViolns int64
	zoneInformed          []*telemetry.Gauge
	zoneCounts            []int64

	net     *phonecall.Network
	tracker *phonecall.RumorTracker
	begin   time.Time
}

// policyView is what the telemetry observer needs from an installed peer
// selector; internal/policy.Selector implements it.
type policyView interface {
	Stats() (evaluations, violations int64)
	Zones() int
	Zone(i int) int
}

// NewEngineTelemetry resolves the instruments for one (algorithm, engine)
// pair up front, so the per-round updates never touch the registry map.
func NewEngineTelemetry(reg *telemetry.Registry, algo, engine string) *EngineTelemetry {
	by := []telemetry.Label{{Key: "algo", Value: algo}, {Key: "engine", Value: engine}}
	return &EngineTelemetry{
		reg:       reg,
		rounds:    reg.Counter("repro_rounds_total", by...),
		msgs:      reg.Counter("repro_messages_total", by...),
		bitsSent:  reg.Counter("repro_bits_total", by...),
		liveNodes: reg.Gauge("repro_live_nodes"),
		corrupted: reg.Gauge("repro_corrupted_nodes"),
		maxComms:  reg.Gauge("repro_max_comms_per_round"),
		duration:  reg.Histogram("repro_round_duration_seconds", nil),
		algo:      algo,
		engine:    engine,
	}
}

// BindNetwork implements phonecall.NetworkBinder. A policy-carrying peer
// selector installed on the network (before observers are registered — the
// order every driver follows) switches the policy series on.
func (e *EngineTelemetry) BindNetwork(net *phonecall.Network) {
	e.net = net
	if pv, ok := net.PeerSelector().(policyView); ok {
		e.policySel = pv
		by := []telemetry.Label{{Key: "algo", Value: e.algo}, {Key: "engine", Value: e.engine}}
		e.policyEvals = e.reg.Counter("repro_policy_evaluations_total", by...)
		e.policyViolations = e.reg.Counter("repro_policy_violations_total", by...)
		e.lastEvals, e.lastViolns = pv.Stats()
	}
	e.bindZones()
}

// BindTracker implements phonecall.TrackerBinder. Rumor-tracking drivers
// (the scenario driver) bind their tracker, which turns on the
// repro_informed_nodes gauge; closed algorithms have no tracker and the
// gauge is never registered, instead of exporting a misleading zero.
func (e *EngineTelemetry) BindTracker(tr *phonecall.RumorTracker) {
	e.tracker = tr
	e.informed = e.reg.Gauge("repro_informed_nodes")
	e.bindZones()
}

// bindZones registers the per-zone informed gauges once both a tracker and a
// topology are bound (binder order is driver-dependent).
func (e *EngineTelemetry) bindZones() {
	if e.tracker == nil || e.policySel == nil || e.zoneInformed != nil {
		return
	}
	zones := e.policySel.Zones()
	e.zoneInformed = make([]*telemetry.Gauge, zones)
	e.zoneCounts = make([]int64, zones)
	for z := range e.zoneInformed {
		e.zoneInformed[z] = e.reg.Gauge("repro_zone_informed_nodes",
			telemetry.Label{Key: "zone", Value: strconv.Itoa(z)})
	}
}

// BeginRound implements phonecall.RoundObserver (coordinator goroutine).
func (e *EngineTelemetry) BeginRound(round int, info phonecall.RoundInfo) {
	e.begin = time.Now()
}

// ObserveIntent implements phonecall.RoundObserver (no-op; shard goroutine).
func (e *EngineTelemetry) ObserveIntent(i int, it phonecall.Intent) {}

// ObserveResponse implements phonecall.RoundObserver (no-op).
func (e *EngineTelemetry) ObserveResponse(i int, m phonecall.Message, ok bool) {}

// ObserveDeliver implements phonecall.RoundObserver (no-op).
func (e *EngineTelemetry) ObserveDeliver(i int, inbox []phonecall.Message) {}

// EndRound implements phonecall.RoundObserver: fold the engine's own round
// report into the registry. Coordinator goroutine, allocation-free.
func (e *EngineTelemetry) EndRound(rep phonecall.RoundReport) {
	e.rounds.Add(1)
	e.msgs.Add(rep.Messages)
	e.bitsSent.Add(rep.Bits)
	e.maxComms.Max(int64(rep.MaxComms))
	e.duration.Observe(time.Since(e.begin).Seconds())
	if e.net != nil {
		e.liveNodes.Set(int64(e.net.LiveCount()))
		e.corrupted.Set(int64(e.net.CorruptedCount()))
	}
	if e.tracker != nil {
		e.informed.Set(int64(WorstSpread(e.tracker)))
	}
	if e.policySel != nil {
		evals, violns := e.policySel.Stats()
		e.policyEvals.Add(evals - e.lastEvals)
		e.policyViolations.Add(violns - e.lastViolns)
		e.lastEvals, e.lastViolns = evals, violns
	}
	if e.zoneInformed != nil && e.net != nil {
		reg := e.tracker.Registered()
		for z := range e.zoneCounts {
			e.zoneCounts[z] = 0
		}
		if reg != 0 {
			for i, n := 0, e.net.N(); i < n; i++ {
				if !e.net.IsFailed(i) && e.tracker.Held(i)&reg == reg {
					e.zoneCounts[e.policySel.Zone(i)]++
				}
			}
		}
		for z, g := range e.zoneInformed {
			g.Set(e.zoneCounts[z])
		}
	}
}

// WorstSpread returns the live-informed count of the worst-spread registered
// rumor — the same "informed" the scenario result reports — or 0 when no
// rumor is registered yet.
func WorstSpread(tr *phonecall.RumorTracker) int {
	reg := tr.Registered()
	if reg == 0 {
		return 0
	}
	worst := -1
	for reg != 0 {
		r := bits.TrailingZeros64(reg)
		reg &^= 1 << r
		if c := tr.LiveInformed(phonecall.RumorID(r)); worst < 0 || c < worst {
			worst = c
		}
	}
	return worst
}
