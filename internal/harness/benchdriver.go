package harness

import (
	"repro/internal/phonecall"
)

// EngineRoundDriver builds the canonical round-engine benchmark workload —
// every node pushes a rumor-sized message to a uniformly random target — and
// returns a step function that executes one round, plus the engine's
// effective shard count (which can be lower than requested: small networks
// run single-shard and very large ones are clamped by the shard memory
// budget). Both the Go benchmark (BenchmarkEngineRound in bench_test.go) and
// `benchtab -json` time this same driver, so their numbers stay comparable.
// The first EngineWarmupRounds steps warm the engine's arena and worker
// pool; time the steps after them.
func EngineRoundDriver(n, workers int) (step func(), effectiveWorkers int, err error) {
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 1, Workers: workers})
	if err != nil {
		return nil, 0, err
	}
	msg := phonecall.Message{Tag: 1, Rumor: true}
	intent := func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), msg)
	}
	return func() { net.ExecRound(intent, nil, nil) }, net.Workers(), nil
}

// EngineWarmupRounds is the number of untimed rounds needed to reach the
// engine's allocation-free steady state (arena growth, pool start-up).
const EngineWarmupRounds = 2
