package harness

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// EngineRoundDriver builds the canonical round-engine benchmark workload —
// every node pushes a rumor-sized message to a uniformly random target — and
// returns a step function that executes one round, plus the engine's
// effective shard count (which can be lower than requested: small networks
// run single-shard and very large ones are clamped by the shard memory
// budget). Both the Go benchmark (BenchmarkEngineRound in bench_test.go) and
// `benchtab -json` time this same driver, so their numbers stay comparable.
// The first EngineWarmupRounds steps warm the engine's arena and worker
// pool; time the steps after them.
func EngineRoundDriver(n, workers int) (step func(), effectiveWorkers int, err error) {
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 1, Workers: workers})
	if err != nil {
		return nil, 0, err
	}
	msg := phonecall.Message{Tag: 1, Rumor: true}
	intent := func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), msg)
	}
	return func() { net.ExecRound(intent, nil, nil) }, net.Workers(), nil
}

// EngineWarmupRounds is the number of untimed rounds needed to reach the
// engine's allocation-free steady state (arena growth, pool start-up).
const EngineWarmupRounds = 2

// ScenarioChurnDriver builds the canonical dynamic-path benchmark: a
// push-pull broadcast under periodic churn (2% of the network crashing every
// 6 rounds, rejoining 4 rounds later) and 5% per-call loss, for 2·log₂ n +
// 16 rounds. Both BenchmarkScenarioChurn (bench_test.go) and `benchtab
// -json` time this same driver, so the dynamic path's perf trajectory stays
// comparable across tools. The returned run function executes the whole
// scenario once and verifies the rumor actually spread. A non-nil obs is
// installed on each execution (benchtab's untimed telemetry pass); timed
// passes keep it nil so the benchmark measures the raw engine.
func ScenarioChurnDriver(n, workers int, obs phonecall.RoundObserver) (run func() error, rounds int) {
	rounds = 2*bits.Len(uint(n)) + 16
	events := append(
		scenario.PeriodicChurn(n, 4, 6, n/50, 4, rounds, 21),
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
		scenario.Loss{At: 1, Rate: 0.05, Seed: 7},
	)
	sc := scenario.Scenario{
		Name:      "bench churn",
		N:         n,
		Rounds:    rounds,
		Algorithm: scenario.AlgoPushPull,
		Events:    events,
	}
	return func() error {
		res, err := scenario.Run(context.Background(), sc, scenario.Config{Seed: 1, Workers: workers, Observer: obs})
		if err != nil {
			return err
		}
		if frac := res.MinLiveFraction(); frac < 0.5 {
			return fmt.Errorf("scenario churn benchmark informed only %.2f of live nodes", frac)
		}
		return nil
	}, rounds
}
