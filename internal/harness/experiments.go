package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/lowerbound"
	"repro/internal/phonecall"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text (the format recorded in
// EXPERIMENTS.md).
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// ExperimentIDs lists the experiments in order.
func ExperimentIDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12"}
}

// RunExperiment dispatches an experiment by ID using the given sweep.
func RunExperiment(id string, cfg SweepConfig) (Table, error) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1Rounds(cfg)
	case "E2":
		return E2Messages(cfg)
	case "E3":
		return E3Bits(cfg)
	case "E4":
		return E4LowerBound(cfg)
	case "E5":
		return E5DeltaTradeoff(cfg)
	case "E6":
		return E6FaultTolerance(cfg)
	case "E7":
		return E7Comparison(cfg)
	case "E8":
		return E8Churn(cfg)
	case "E9":
		return E9SimVsLive(cfg)
	case "E10":
		return E10Byzantine(cfg)
	case "E12":
		return E12Topologies(cfg)
	default:
		return Table{}, fmt.Errorf("harness: unknown experiment %q", id)
	}
}

// comparisonAlgos are the algorithms swept in E1–E3.
func comparisonAlgos() []Algorithm {
	return []Algorithm{AlgoPushPull, AlgoKarp, AlgoAddressBook, AlgoCluster1, AlgoCluster2}
}

// E1Rounds reproduces the round-complexity comparison (Theorems 1, 2, 9 vs
// the classical Θ(log n) bound): completion rounds per algorithm across the
// size sweep, with the analytic reference curves.
func E1Rounds(cfg SweepConfig) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "round complexity vs n (mean completion round over seeds)",
		Header: []string{"n", "log2 n", "sqrt(log2 n)", "log2 log2 n"},
	}
	algos := comparisonAlgos()
	for _, a := range algos {
		t.Header = append(t.Header, string(a))
	}
	perAlgo := make(map[Algorithm][]float64, len(algos))
	sizes := make([]float64, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		logN := math.Log2(float64(n))
		row := []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", logN),
			fmt.Sprintf("%.1f", math.Sqrt(logN)),
			fmt.Sprintf("%.1f", math.Log2(logN)),
		}
		for _, a := range algos {
			agg, err := Aggregate(a, n, cfg.Seeds, cfg.Opts)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.1f", agg.CompletionRounds.Mean))
			perAlgo[a] = append(perAlgo[a], agg.CompletionRounds.Mean)
		}
		sizes = append(sizes, float64(n))
		t.Rows = append(t.Rows, row)
	}
	for _, a := range algos {
		if len(sizes) >= 3 {
			best, _ := stats.BestModel(sizes, perAlgo[a])
			t.Notes = append(t.Notes, fmt.Sprintf("%s: growth %.2fx across sweep, best-fit curve %s",
				a, stats.GrowthRatio(perAlgo[a]), best))
		}
	}
	t.Notes = append(t.Notes, "expected shape: cluster1/cluster2 stay nearly flat (log log n); push-pull and karp grow with log n")
	return t, nil
}

// E2Messages reproduces the message-complexity comparison (Theorem 2's O(1)
// messages per node vs O(log log n) for Karp et al. and O(√log n) for
// Avin–Elsässer).
func E2Messages(cfg SweepConfig) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "messages per node vs n (mean over seeds)",
		Header: []string{"n"},
	}
	algos := comparisonAlgos()
	for _, a := range algos {
		t.Header = append(t.Header, string(a))
	}
	perAlgo := make(map[Algorithm][]float64, len(algos))
	for _, n := range cfg.Sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, a := range algos {
			agg, err := Aggregate(a, n, cfg.Seeds, cfg.Opts)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.1f", agg.MessagesPerNode.Mean))
			perAlgo[a] = append(perAlgo[a], agg.MessagesPerNode.Mean)
		}
		t.Rows = append(t.Rows, row)
	}
	for _, a := range algos {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: growth %.2fx across sweep", a, stats.GrowthRatio(perAlgo[a])))
	}
	t.Notes = append(t.Notes, "expected shape: cluster2 stays constant; push-pull grows with log n; karp grows with log log n")
	return t, nil
}

// E3Bits reproduces the bit-complexity comparison (Theorem 2's O(nb) vs the
// O(n log^{3/2} n + nb log log n) of Theorem 1): bits per node divided by the
// payload size b, across payload sizes.
func E3Bits(cfg SweepConfig) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "total bits / (n·b) for payload sizes b",
		Header: []string{"n", "b", "push-pull", "karp", "addressbook", "cluster2"},
	}
	payloads := []int{256, 1024, 4096}
	algos := []Algorithm{AlgoPushPull, AlgoKarp, AlgoAddressBook, AlgoCluster2}
	for _, n := range cfg.Sizes {
		for _, b := range payloads {
			opts := cfg.Opts
			opts.PayloadBits = b
			row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", b)}
			for _, a := range algos {
				agg, err := Aggregate(a, n, cfg.Seeds, opts)
				if err != nil {
					return Table{}, err
				}
				row = append(row, fmt.Sprintf("%.2f", agg.BitsPerNode.Mean/float64(b)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"cells are total bits divided by n·b; an O(nb) algorithm stays constant as b grows and as n grows",
		"expected shape: cluster2 approaches a small constant as b grows; push-pull grows with log n")
	return t, nil
}

// E4LowerBound reproduces Theorem 3: the knowledge-graph feasibility bound
// (smallest T such that broadcast is possible at all) compared with the
// analytic 0.99·log log n bound and with Cluster2's measured rounds.
func E4LowerBound(cfg SweepConfig) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "round-complexity lower bound (Theorem 3)",
		Header: []string{"n", "0.99*log2 log2 n", "knowledge-graph min T", "cluster2 rounds", "lower bound respected"},
	}
	for _, n := range cfg.Sizes {
		var minTs []float64
		for _, seed := range cfg.Seeds {
			minT, _ := lowerbound.MinRounds(n, seed)
			minTs = append(minTs, float64(minT))
		}
		agg, err := Aggregate(AlgoCluster2, n, cfg.Seeds, cfg.Opts)
		if err != nil {
			return Table{}, err
		}
		theory := lowerbound.TheoreticalMinRounds(n)
		minT := stats.Summarize(minTs).Mean
		respected := agg.CompletionRounds.Min >= math.Floor(theory)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", theory),
			fmt.Sprintf("%.1f", minT),
			fmt.Sprintf("%.1f", agg.CompletionRounds.Mean),
			fmt.Sprintf("%v", respected),
		})
	}
	t.Notes = append(t.Notes,
		"knowledge-graph min T: smallest T for which every node is within distance 2^T of the source in the union of T random contact graphs (Lemma 14)",
		"every algorithm's measured rounds must be at least the analytic bound; the bound grows like log log n")
	return t, nil
}

// E5DeltaTradeoff reproduces Theorem 4 and Lemma 16: broadcast on a
// Δ-clustering takes Θ(log n / log Δ) rounds while no node exceeds O(Δ)
// communications per round.
func E5DeltaTradeoff(cfg SweepConfig) (Table, error) {
	// Δ values below ~polylog(n) are outside the paper's Δ = log^ω(1) n regime
	// (Theorem 4) and are not swept.
	n := cfg.Sizes[len(cfg.Sizes)-1]
	deltas := []int{64, 256, 1024, 4096}
	t := Table{
		ID:    "E5",
		Title: fmt.Sprintf("Δ trade-off at n=%d (Theorem 4, Lemma 16)", n),
		Header: []string{
			"Δ", "lemma16 bound", "broadcast rounds", "total rounds", "msgs/node", "observed maxΔ", "maxΔ/Δ", "all informed",
		},
	}
	for _, delta := range deltas {
		if delta < core.MinDelta || delta > n {
			continue
		}
		var bRounds, tRounds, msgs, maxComms, informed []float64
		for _, seed := range cfg.Seeds {
			opts := cfg.Opts
			opts.Delta = delta
			res, err := Run(context.Background(), AlgoClusterPushPull, n, seed, opts)
			if err != nil {
				return Table{}, err
			}
			bRounds = append(bRounds, float64(broadcastPhaseRounds(res)))
			tRounds = append(tRounds, float64(res.Rounds))
			msgs = append(msgs, res.MessagesPerNode)
			maxComms = append(maxComms, float64(res.MaxCommsPerRound))
			informed = append(informed, float64(res.Informed)/float64(res.Live))
		}
		maxD := stats.Summarize(maxComms).Max
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%.1f", lowerbound.DeltaBound(n, delta)),
			fmt.Sprintf("%.1f", stats.Summarize(bRounds).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(tRounds).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(msgs).Mean),
			fmt.Sprintf("%.0f", maxD),
			fmt.Sprintf("%.2f", maxD/float64(delta)),
			fmt.Sprintf("%.3f", stats.Summarize(informed).Min),
		})
	}
	t.Notes = append(t.Notes,
		"broadcast rounds counts only the ClusterPUSH-PULL phase that runs on top of the Δ-clustering (Algorithm 3); total rounds includes building the clustering",
		"expected shape: broadcast rounds fall as 1/log Δ and stay above the Lemma 16 bound; observed maxΔ stays within a small constant of Δ")
	return t, nil
}

// E6FaultTolerance reproduces Theorem 19: after failing F nodes obliviously,
// the number of uninformed survivors is o(F).
func E6FaultTolerance(cfg SweepConfig) (Table, error) {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	fractions := []float64{0.01, 0.05, 0.10, 0.20}
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("fault tolerance at n=%d (Theorem 19), algorithm cluster2", n),
		Header: []string{"F", "F/n", "uninformed survivors (mean)", "uninformed/F", "rounds", "msgs/node"},
	}
	for _, frac := range fractions {
		f := int(frac * float64(n))
		var uninformed, rounds, msgs []float64
		for _, seed := range cfg.Seeds {
			opts := cfg.Opts
			opts.Adversary = failure.Random{Count: f, Seed: seed + 1000}
			res, err := Run(context.Background(), AlgoCluster2, n, seed, opts)
			if err != nil {
				return Table{}, err
			}
			uninformed = append(uninformed, float64(res.UninformedSurvivors()))
			rounds = append(rounds, float64(res.Rounds))
			msgs = append(msgs, res.MessagesPerNode)
		}
		meanUninformed := stats.Summarize(uninformed).Mean
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%.1f", meanUninformed),
			fmt.Sprintf("%.4f", meanUninformed/float64(f)),
			fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(msgs).Mean),
		})
	}
	t.Notes = append(t.Notes, "expected shape: uninformed/F stays far below 1 and does not grow with F (all but o(F) survivors informed)")
	return t, nil
}

// E7Comparison reproduces the paper's Section 1 comparison table at a single
// network size: rounds, messages, bits and maximum per-round communications
// for every implemented algorithm.
func E7Comparison(cfg SweepConfig) (Table, error) {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("head-to-head comparison at n=%d", n),
		Header: []string{"algorithm", "completion rounds", "total rounds", "msgs/node", "bits/(n*b)", "observed maxΔ", "all informed"},
	}
	for _, a := range Algorithms() {
		size := n
		if a == AlgoNameDropper {
			size = 1000 // knowledge sets are Θ(n) per node
		}
		agg, err := Aggregate(a, size, cfg.Seeds, cfg.Opts)
		if err != nil {
			return Table{}, err
		}
		payload := cfg.Opts.PayloadBits
		if payload <= 0 {
			payload = phonecall.DefaultPayloadBits
		}
		name := string(a)
		if a == AlgoNameDropper {
			name = fmt.Sprintf("%s (n=%d)", a, size)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", agg.CompletionRounds.Mean),
			fmt.Sprintf("%.1f", agg.TotalRounds.Mean),
			fmt.Sprintf("%.1f", agg.MessagesPerNode.Mean),
			fmt.Sprintf("%.2f", agg.BitsPerNode.Mean/float64(payload)),
			fmt.Sprintf("%.0f", agg.MaxComms.Mean),
			fmt.Sprintf("%.3f", agg.InformedFraction.Min),
		})
	}
	t.Notes = append(t.Notes,
		"clusterpushpull uses Δ=1024 unless overridden",
		"cluster1/cluster2 trade absolute round counts at small n for the flat log log n growth shown in E1")
	return t, nil
}

// broadcastPhaseRounds extracts the rounds of the final ClusterPUSH-PULL
// phase from a clusterpushpull result.
func broadcastPhaseRounds(res trace.Result) int {
	for _, p := range res.Phases {
		if p.Name == "ClusterPUSH-PULL" {
			return p.Rounds
		}
	}
	return res.Rounds
}
