package harness

import (
	"context"
	"fmt"
	"math/bits"
	"reflect"
	"time"

	"repro/internal/live"
	"repro/internal/phonecall"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Live execution: the same algorithms and reporting, but the rounds run on
// the goroutine-per-node message-passing runtime (internal/live) instead of
// the sharded simulator engine.

// LiveOptions selects and tunes the live runtime's transport and clocks.
type LiveOptions struct {
	// Transport is "chan" (in-process mailbox mesh, default) or "udp"
	// (loopback sockets; free-running only).
	Transport string
	// Drop is the transport-level per-frame loss probability (free-running
	// only; lock-step loss comes from the model's SetLoss state so it stays
	// bit-identical to the engine). DropSeed drives the decisions.
	Drop     float64
	DropSeed uint64
	// Latency and Jitter delay channel-mesh deliveries (free-running only).
	Latency time.Duration
	Jitter  time.Duration
	// MaxSkew bounds free-running round clocks (default 3).
	MaxSkew int
	// Rounds is the free-running per-node budget; <= 0 derives a generous
	// Θ(log n) budget.
	Rounds int
	// PayloadBits is the free-running per-rumor payload size b (default
	// 256); lock-step takes it from Options.PayloadBits like Run.
	PayloadBits int
	// OnFrontier, when non-nil, streams free-running frontier advances
	// (live.FreeRunConfig.OnFrontier) — the async analogue of Options.Observer.
	OnFrontier func(live.FrontierInfo)
	// Telemetry, when non-nil, is handed to the free-running runtime so its
	// node send paths feed live traffic counters (live.FreeRunConfig.Telemetry).
	Telemetry *telemetry.Registry
	// Stream, when non-nil, puts the free-running runtime in continuous
	// rumor-stream mode (live.FreeRunConfig.Stream): the monitor injects
	// Stream.Total rumors through the bounded in-flight window instead of the
	// timeline seeding rumor 0.
	Stream *live.StreamConfig
	// Topology and Policy configure free-running policy-driven peer selection
	// (the free-running twin of Options.Topology/Options.Policy, which the
	// lock-step path inherits through runOnNetwork). The compiled selector is
	// installed as live.FreeRunConfig.PeerSelector.
	Topology *policy.Table
	Policy   *policy.Policy
}

// transport builds the configured transport.
func (lo LiveOptions) transport(n int, lockStep bool) (live.Transport, error) {
	switch lo.Transport {
	case "", "chan":
		cfg := live.ChannelConfig{
			Drop: lo.Drop, DropSeed: lo.DropSeed,
			Latency: lo.Latency, Jitter: lo.Jitter, JitterSeed: lo.DropSeed ^ 0x717e4,
		}
		if lockStep && (cfg.Drop > 0 || cfg.Latency > 0 || cfg.Jitter > 0) {
			return nil, fmt.Errorf("harness: lock-step needs the plain synchronous mesh; model churn and loss go through Options.Events/LossRate")
		}
		return live.NewChannelTransport(n, cfg)
	case "udp":
		if lockStep {
			return nil, fmt.Errorf("harness: lock-step needs a synchronous transport; UDP is free-running only")
		}
		return live.NewUDPTransport(n)
	default:
		return nil, fmt.Errorf("harness: unknown transport %q (have chan, udp)", lo.Transport)
	}
}

// freeBudget derives the default free-running round budget. A rumor stream
// needs frontier rounds proportional to Total/Rate just to finish injecting,
// so its default budget adds that on top of the Θ(log n) spread allowance.
func (lo LiveOptions) freeBudget(n int) int {
	if lo.Rounds > 0 {
		return lo.Rounds
	}
	budget := 60 + 8*bits.Len(uint(n))
	if lo.Stream != nil {
		rate := lo.Stream.Rate
		if rate <= 0 {
			rate = 1
		}
		budget += int(float64(lo.Stream.Total)/rate) + 1
	}
	return budget
}

// RunLockStep executes one closed algorithm with every node running as its
// own goroutine over the live transport, in barrier-synchronized lock-step.
// The result is bit-identical to Run with the same arguments (the conformance
// guarantee of internal/live); adversaries, timelines and model loss from
// opts apply unchanged. A done ctx aborts between rounds; the runtime's node
// goroutines are torn down before the error returns.
func RunLockStep(ctx context.Context, algo Algorithm, n int, seed uint64, opts Options, lo LiveOptions) (trace.Result, error) {
	net, err := phonecall.New(phonecall.Config{
		N:           n,
		Seed:        seed,
		PayloadBits: opts.PayloadBits,
	})
	if err != nil {
		return trace.Result{}, fmt.Errorf("harness: %w", err)
	}
	tr, err := lo.transport(n, true)
	if err != nil {
		return trace.Result{}, err
	}
	ls, err := live.NewLockStep(net, tr)
	if err != nil {
		tr.Close()
		return trace.Result{}, err
	}
	defer func() {
		ls.Close()
		tr.Close()
	}()
	res, err := runOnNetwork(ctx, net, algo, opts)
	if err != nil {
		return trace.Result{}, err
	}
	if err := ls.Err(); err != nil {
		return trace.Result{}, fmt.Errorf("harness: live runtime: %w", err)
	}
	return res, nil
}

// RunFreeRunning executes a free-running live workload: one of the steppable
// gossip protocols, local round clocks with bounded skew, convergence
// detected by the completion monitor, scenario events fired as the round
// frontier passes them. A done ctx stops every node goroutine promptly and
// returns the partial report with the context's error.
func RunFreeRunning(ctx context.Context, n int, seed uint64, algo scenario.Algorithm, events []scenario.Event, lo LiveOptions) (live.Report, error) {
	sel, err := policy.Compile(n, seed, lo.Topology, lo.Policy)
	if err != nil {
		return live.Report{}, fmt.Errorf("harness: %w", err)
	}
	tr, err := lo.transport(n, false)
	if err != nil {
		return live.Report{}, err
	}
	defer tr.Close()
	cfg := live.FreeRunConfig{
		N:           n,
		Seed:        seed,
		Rounds:      lo.freeBudget(n),
		MaxSkew:     lo.MaxSkew,
		Algorithm:   algo,
		PayloadBits: lo.PayloadBits,
		Events:      events,
		Transport:   tr,
		OnFrontier:  lo.OnFrontier,
		Telemetry:   lo.Telemetry,
		Stream:      lo.Stream,
	}
	if sel != nil { // a typed-nil *Selector must not shadow the uniform path
		cfg.PeerSelector = sel
	}
	fr, err := live.NewFreeRun(cfg)
	if err != nil {
		return live.Report{}, err
	}
	return fr.Run(ctx)
}

// E9SimVsLive is the sim-vs-live comparison table: the closed algorithms on
// the engine and on the lock-step runtime (asserted bit-identical), plus
// free-running convergence with and without transport loss. See
// EXPERIMENTS.md E9.
func E9SimVsLive(cfg SweepConfig) (Table, error) {
	// Goroutine-per-node execution: cap the size so the default sweep stays
	// cheap; the CLI runs larger live networks on demand.
	n := cfg.Sizes[len(cfg.Sizes)-1]
	if n > 2000 {
		n = 2000
	}
	t := Table{
		ID:    "E9",
		Title: fmt.Sprintf("simulated vs live execution at n=%d", n),
		Header: []string{
			"mode", "algorithm", "rounds", "msgs/node", "informed", "identical to sim",
		},
	}

	for _, algo := range []Algorithm{AlgoPushPull, AlgoCluster2} {
		var rounds, msgs, informed []float64
		identical := true
		for _, seed := range cfg.Seeds {
			sim, err := Run(context.Background(), algo, n, seed, cfg.Opts)
			if err != nil {
				return Table{}, fmt.Errorf("E9 sim %s: %w", algo, err)
			}
			liveRes, err := RunLockStep(context.Background(), algo, n, seed, cfg.Opts, LiveOptions{})
			if err != nil {
				return Table{}, fmt.Errorf("E9 live %s: %w", algo, err)
			}
			if !resultsEqual(sim, liveRes) {
				identical = false
			}
			rounds = append(rounds, float64(liveRes.Rounds))
			msgs = append(msgs, liveRes.MessagesPerNode)
			if liveRes.Live > 0 {
				informed = append(informed, float64(liveRes.Informed)/float64(liveRes.Live))
			}
		}
		t.Rows = append(t.Rows, []string{
			"live lock-step", string(algo),
			fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean),
			fmt.Sprintf("%.2f", stats.Summarize(msgs).Mean),
			fmt.Sprintf("%.3f", stats.Summarize(informed).Mean),
			fmt.Sprintf("%v", identical),
		})
	}

	for _, drop := range []float64{0, 0.05} {
		var rounds, msgs, informed []float64
		for _, seed := range cfg.Seeds {
			rep, err := RunFreeRunning(context.Background(), n, seed, scenario.AlgoPushPull, nil,
				LiveOptions{Drop: drop, DropSeed: seed + 900, PayloadBits: cfg.Opts.PayloadBits})
			if err != nil {
				return Table{}, fmt.Errorf("E9 free drop=%.2f: %w", drop, err)
			}
			rounds = append(rounds, float64(rep.CompletionFrontier))
			res := rep.Trace("free", seed)
			msgs = append(msgs, res.MessagesPerNode)
			if rep.Live > 0 {
				informed = append(informed, float64(rep.Informed)/float64(rep.Live))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("live free-run %.0f%% drop", drop*100), string(AlgoPushPull),
			fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean),
			fmt.Sprintf("%.2f", stats.Summarize(msgs).Mean),
			fmt.Sprintf("%.3f", stats.Summarize(informed).Mean),
			"n/a (async)",
		})
	}

	t.Notes = append(t.Notes,
		"lock-step rows execute every node as a goroutine exchanging wire frames; 'identical to sim' asserts bit-equal traces (the internal/live conformance guarantee)",
		"free-run rows report the completion frontier (the first frontier round at which every live node held the rumor) under transport-level frame loss",
	)
	return t, nil
}

// resultsEqual compares two trace results field by field (phases included).
func resultsEqual(a, b trace.Result) bool {
	return reflect.DeepEqual(a, b)
}
