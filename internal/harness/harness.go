// Package harness runs the reproduction experiments E1–E8 defined in
// DESIGN.md: it executes the paper's algorithms and the baselines across
// sweeps of network sizes, seeds, Δ values, failure counts and dynamic churn
// scenarios, aggregates the round-, message- and bit-complexities, and
// renders the tables recorded in EXPERIMENTS.md.
package harness

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/phonecall"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Algorithm identifies one of the implemented gossip algorithms.
type Algorithm string

// The implemented algorithms.
const (
	AlgoPush            Algorithm = "push"
	AlgoPull            Algorithm = "pull"
	AlgoPushPull        Algorithm = "push-pull"
	AlgoKarp            Algorithm = "karp-median-counter"
	AlgoAddressBook     Algorithm = "addressbook"
	AlgoNameDropper     Algorithm = "name-dropper"
	AlgoCluster1        Algorithm = "cluster1"
	AlgoCluster2        Algorithm = "cluster2"
	AlgoClusterPushPull Algorithm = "clusterpushpull"
)

// Algorithms returns every broadcast algorithm in comparison order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoPush, AlgoPull, AlgoPushPull, AlgoKarp, AlgoAddressBook,
		AlgoNameDropper, AlgoCluster1, AlgoCluster2, AlgoClusterPushPull,
	}
}

// Options configures a single algorithm execution.
type Options struct {
	// PayloadBits is the rumor size b (default phonecall.DefaultPayloadBits).
	PayloadBits int
	// Workers is the number of engine shards the simulator uses per round;
	// values <= 0 default to runtime.GOMAXPROCS(0). Results are identical for
	// any worker count.
	Workers int
	// Delta is the per-round communication bound for AlgoClusterPushPull.
	Delta int
	// Adversary, when non-nil, fails nodes before the execution starts.
	Adversary failure.Adversary
	// Events, when non-empty, is a scenario timeline (crash waves, rejoins,
	// loss changes) applied between rounds while the algorithm executes —
	// mid-run dynamics for any algorithm, closed or not. InjectRumor events
	// are not supported here (closed algorithms have no rumor tracker).
	Events []scenario.Event
	// LossRate, when positive, drops every call independently with this
	// probability from round 1 on (oblivious per-call loss, charged per the
	// live-participant rule). LossSeed drives the drop decisions.
	LossRate float64
	LossSeed uint64
	// Observer, when non-nil, taps every executed round through the engine's
	// observer seam (phonecall.Observe) — per-round streaming stats without
	// changing results or metrics.
	Observer phonecall.RoundObserver
	// Topology attributes the nodes (zones, latency classes, capacities,
	// reputations); Policy biases every random contact over those attributes
	// through an installed policy.Selector. A topology without a policy
	// changes nothing — the uniform contract stays bit-identical — but
	// enables zone events and per-zone telemetry. A policy without a
	// topology is a configuration error.
	Topology *policy.Table
	Policy   *policy.Policy
	// Params tunes the paper's algorithms.
	Params core.Params
}

func (o Options) delta() int {
	if o.Delta <= 0 {
		return 1024
	}
	return o.Delta
}

// Run executes one algorithm on a fresh network of n nodes. A done ctx
// aborts the execution between rounds with the context's error.
func Run(ctx context.Context, algo Algorithm, n int, seed uint64, opts Options) (trace.Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	net, err := phonecall.New(phonecall.Config{
		N:           n,
		Seed:        seed,
		PayloadBits: opts.PayloadBits,
		Workers:     workers,
	})
	if err != nil {
		return trace.Result{}, fmt.Errorf("harness: %w", err)
	}
	return runOnNetwork(ctx, net, algo, opts)
}

// runOnNetwork applies the options' adversary, loss and timeline to a
// prepared network and dispatches the algorithm. Shared between Run (the
// simulator engine) and RunLockStep (the live runtime installed as the
// network's executor — see live.go). The ctx abort (phonecall.SetContext)
// unwinds the algorithm's round loop between rounds and is converted back
// into the context's error here.
func runOnNetwork(ctx context.Context, net *phonecall.Network, algo Algorithm, opts Options) (res trace.Result, err error) {
	if ctx != nil {
		net.SetContext(ctx)
		defer phonecall.RecoverAbort(&err)
	}
	if _, err := policy.Install(net, opts.Topology, opts.Policy); err != nil {
		return trace.Result{}, fmt.Errorf("harness: %w", err)
	}
	if opts.Observer != nil {
		if b, ok := opts.Observer.(phonecall.NetworkBinder); ok {
			b.BindNetwork(net)
		}
		net.Observe(opts.Observer)
	}
	if opts.Adversary != nil {
		failure.Apply(net, opts.Adversary)
	}
	if opts.LossRate > 0 {
		net.SetLoss(opts.LossRate, opts.LossSeed)
	}
	var tl *scenario.Timeline
	if len(opts.Events) > 0 {
		tl = scenario.NewTimeline(opts.Events...)
		tl.Attach(net)
	}
	source, ok := failure.SurvivingSource(net, 0)
	if !ok {
		return trace.Result{}, fmt.Errorf("harness: all nodes failed")
	}
	sources := []int{source}

	res, err = dispatch(algo, net, sources, opts)
	if err != nil {
		return trace.Result{}, err
	}
	if tl != nil {
		if tl.Err() != nil {
			return trace.Result{}, fmt.Errorf("harness: timeline: %w", tl.Err())
		}
		// An event scheduled past the algorithm's last round never fired; a
		// "clean" result that silently skipped the requested dynamics would
		// be indistinguishable from surviving them.
		if rem := tl.Remaining(); rem > 0 {
			return trace.Result{}, fmt.Errorf(
				"harness: %d timeline event(s) scheduled after the algorithm's final round (%d) never fired",
				rem, res.Rounds)
		}
	}
	return res, nil
}

// dispatch runs the selected algorithm on the prepared network.
func dispatch(algo Algorithm, net *phonecall.Network, sources []int, opts Options) (trace.Result, error) {
	switch algo {
	case AlgoPush:
		return baseline.Push(net, sources)
	case AlgoPull:
		return baseline.Pull(net, sources)
	case AlgoPushPull:
		return baseline.PushPull(net, sources)
	case AlgoKarp:
		return baseline.MedianCounter(net, sources)
	case AlgoAddressBook:
		return baseline.AddressBook(net, sources)
	case AlgoNameDropper:
		res, err := baseline.NameDropper(net, sources)
		return res.Result, err
	case AlgoCluster1:
		return core.Cluster1(net, sources, opts.Params)
	case AlgoCluster2:
		return core.Cluster2(net, sources, opts.Params)
	case AlgoClusterPushPull:
		return core.ClusterPushPull(net, sources, opts.delta(), opts.Params)
	default:
		return trace.Result{}, fmt.Errorf("harness: unknown algorithm %q", algo)
	}
}

// Row aggregates repeated trials of one algorithm at one network size.
type Row struct {
	Algorithm Algorithm
	N         int
	Trials    int

	CompletionRounds stats.Summary
	TotalRounds      stats.Summary
	MessagesPerNode  stats.Summary
	BitsPerNode      stats.Summary
	MaxComms         stats.Summary
	InformedFraction stats.Summary
}

// Aggregate runs the algorithm for every seed and summarizes the results.
func Aggregate(algo Algorithm, n int, seeds []uint64, opts Options) (Row, error) {
	row := Row{Algorithm: algo, N: n, Trials: len(seeds)}
	var rounds, totals, msgs, bits, comms, informed []float64
	for _, seed := range seeds {
		res, err := Run(context.Background(), algo, n, seed, opts)
		if err != nil {
			return Row{}, err
		}
		rounds = append(rounds, float64(res.CompletionRound))
		totals = append(totals, float64(res.Rounds))
		msgs = append(msgs, res.MessagesPerNode)
		bits = append(bits, float64(res.Bits)/float64(res.N))
		comms = append(comms, float64(res.MaxCommsPerRound))
		if res.Live > 0 {
			informed = append(informed, float64(res.Informed)/float64(res.Live))
		}
	}
	row.CompletionRounds = stats.Summarize(rounds)
	row.TotalRounds = stats.Summarize(totals)
	row.MessagesPerNode = stats.Summarize(msgs)
	row.BitsPerNode = stats.Summarize(bits)
	row.MaxComms = stats.Summarize(comms)
	row.InformedFraction = stats.Summarize(informed)
	return row, nil
}

// SweepConfig describes a size/seed sweep.
type SweepConfig struct {
	Sizes []int
	Seeds []uint64
	Opts  Options
}

// DefaultSweep returns the sweep used by the checked-in experiment tables:
// three orders of magnitude of n and three seeds. Larger sweeps (up to 10⁶
// nodes) are available through cmd/benchtab flags.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Sizes: []int{1000, 10000, 100000},
		Seeds: []uint64{1, 2, 3},
	}
}

// Sweep aggregates every algorithm across the sweep sizes.
func Sweep(algos []Algorithm, cfg SweepConfig) ([]Row, error) {
	rows := make([]Row, 0, len(algos)*len(cfg.Sizes))
	for _, algo := range algos {
		for _, n := range cfg.Sizes {
			if algo == AlgoNameDropper && n > 2000 {
				continue // knowledge sets are Θ(n) per node; keep this baseline small
			}
			row, err := Aggregate(algo, n, cfg.Seeds, cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("sweep %s n=%d: %w", algo, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
