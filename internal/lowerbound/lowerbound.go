// Package lowerbound implements the round-complexity lower bounds of the
// paper: the Ω(log log n) bound of Theorem 3 / Section 6 (via the
// knowledge-graph argument) and the log n / log Δ bound of Lemma 16 for
// bounded per-round communication.
package lowerbound

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TheoreticalMinRounds returns the paper's analytic lower bound of Theorem 3:
// 0.99·log₂ log₂ n rounds (any algorithm using fewer fails with high
// probability).
func TheoreticalMinRounds(n int) float64 {
	if n < 4 {
		return 0
	}
	return 0.99 * math.Log2(math.Log2(float64(n)))
}

// DeltaBound returns the analytic bound of Lemma 16: with no node
// participating in more than delta communications per round, at least
// log n / log delta rounds are required to inform all nodes.
func DeltaBound(n, delta int) float64 {
	if n < 2 || delta < 2 {
		return 0
	}
	return math.Log2(float64(n)) / math.Log2(float64(delta))
}

// Feasibility describes the outcome of the knowledge-graph simulation for one
// value of T.
type Feasibility struct {
	// T is the number of rounds allowed.
	T int
	// Eccentricity is the source's eccentricity in the union graph G₁ ∪ … ∪ G_T
	// (the largest hop distance to any node, or -1 if some node is unreachable).
	Eccentricity int
	// Reach is 2^T, the largest distance information can travel in T rounds
	// (Lemma 14: K_T ⊆ (∪ G_i)^(2^T)).
	Reach int
	// Possible reports whether spreading to all nodes in T rounds is possible
	// at all, i.e. whether Eccentricity ≤ Reach and every node is reachable.
	Possible bool
}

// MinRounds simulates the knowledge-graph argument of Section 6 for a network
// of n nodes: the random contacts of every round are drawn in advance, and
// broadcast within T rounds is possible only if every node is within distance
// 2^T of the source in the union of the first T contact graphs (Lemma 14).
// It returns the smallest feasible T together with the per-T feasibility
// trace. Every algorithm in this repository (and any algorithm in the model)
// needs at least the returned number of rounds on the corresponding random
// contacts.
func MinRounds(n int, seed uint64) (int, []Feasibility) {
	if n < 2 {
		return 0, nil
	}
	g := graph.New(n)
	source := 0
	var trace []Feasibility
	maxT := int(math.Ceil(math.Log2(math.Log2(float64(n)+4)))) + 8
	for t := 1; t <= maxT; t++ {
		// G_t: every node samples one uniformly random contact.
		for v := 0; v < n; v++ {
			u := int(rng.BoundedUint64(uint64(n), seed, 0x10b, uint64(t), uint64(v)))
			if u == v {
				u = (u + 1) % n
			}
			g.AddEdge(v, u)
		}
		ecc, all := g.Eccentricity(source)
		reach := 1 << uint(t)
		f := Feasibility{T: t, Eccentricity: ecc, Reach: reach, Possible: all && ecc <= reach}
		if !all {
			f.Eccentricity = -1
		}
		trace = append(trace, f)
		if f.Possible {
			return t, trace
		}
	}
	return maxT, trace
}

// DeltaSimulation computes, for a fan-in/fan-out bound delta, the minimum
// number of rounds needed to inform n nodes when the informed set can grow by
// at most a factor delta per round (the counting argument behind Lemma 16).
func DeltaSimulation(n, delta int) int {
	if n <= 1 || delta < 2 {
		return 0
	}
	informed := 1
	rounds := 0
	for informed < n {
		informed *= delta
		rounds++
	}
	return rounds
}
