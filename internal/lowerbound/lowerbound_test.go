package lowerbound

import (
	"math"
	"testing"
)

func TestTheoreticalMinRounds(t *testing.T) {
	if TheoreticalMinRounds(2) != 0 {
		t.Fatal("tiny n should give 0")
	}
	v := TheoreticalMinRounds(1 << 16)
	if math.Abs(v-0.99*4) > 1e-9 {
		t.Fatalf("TheoreticalMinRounds(2^16) = %v, want 3.96", v)
	}
	if TheoreticalMinRounds(1000000) <= TheoreticalMinRounds(1000) {
		t.Fatal("bound must grow with n")
	}
}

func TestDeltaBound(t *testing.T) {
	if DeltaBound(1024, 2) != 10 {
		t.Fatalf("DeltaBound(1024,2) = %v, want 10", DeltaBound(1024, 2))
	}
	if DeltaBound(1024, 32) != 2 {
		t.Fatalf("DeltaBound(1024,32) = %v, want 2", DeltaBound(1024, 32))
	}
	if DeltaBound(1, 2) != 0 || DeltaBound(100, 1) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestDeltaSimulationMatchesBound(t *testing.T) {
	for _, tc := range []struct{ n, delta, want int }{
		{1024, 2, 10},
		{1000, 10, 3},
		{1, 5, 0},
		{100, 1, 0},
	} {
		if got := DeltaSimulation(tc.n, tc.delta); got != tc.want {
			t.Fatalf("DeltaSimulation(%d,%d) = %d, want %d", tc.n, tc.delta, got, tc.want)
		}
	}
	// The simulation can never beat the analytic bound.
	for _, n := range []int{100, 10000, 1000000} {
		for _, d := range []int{2, 16, 256} {
			if float64(DeltaSimulation(n, d)) < DeltaBound(n, d)-1e-9 {
				t.Fatalf("simulation beats Lemma 16 for n=%d delta=%d", n, d)
			}
		}
	}
}

func TestMinRoundsIsAtLeastTheoreticalBound(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000} {
		for seed := uint64(1); seed <= 3; seed++ {
			minT, trace := MinRounds(n, seed)
			if len(trace) == 0 || trace[len(trace)-1].T != minT {
				t.Fatalf("trace should end at the returned T, got %d / %+v", minT, trace)
			}
			if float64(minT) < math.Floor(TheoreticalMinRounds(n)) {
				t.Fatalf("knowledge-graph feasibility %d below the analytic bound %.2f at n=%d",
					minT, TheoreticalMinRounds(n), n)
			}
			// All T before the returned one must be infeasible, the last feasible.
			for i, f := range trace {
				last := i == len(trace)-1
				if f.Possible != last {
					t.Fatalf("feasibility trace inconsistent at T=%d: %+v", f.T, trace)
				}
			}
		}
	}
}

func TestMinRoundsGrowsSlowly(t *testing.T) {
	small, _ := MinRounds(1000, 7)
	large, _ := MinRounds(1000000, 7)
	if large < small {
		t.Fatalf("feasibility bound should not shrink with n: %d vs %d", small, large)
	}
	if large > small+3 {
		t.Fatalf("feasibility bound should grow like log log n: %d (1k) vs %d (1M)", small, large)
	}
}

func TestMinRoundsDegenerate(t *testing.T) {
	if r, trace := MinRounds(1, 1); r != 0 || trace != nil {
		t.Fatal("n=1 should be trivially 0 rounds")
	}
}
