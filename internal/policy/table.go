// Package policy implements policy-driven peer selection over heterogeneous
// topologies: a compact per-node attribute table (zone, latency class,
// capacity, reputation), JSON policy specs with hard constraints and weighted
// scoring, and a deterministic selector that layers under the engines'
// random-contact seam (phonecall.PeerSelector).
//
// Everything at runtime is a pure integer function of (seed, round,
// initiator) plus compiled tables, so selection is bit-identical across
// worker counts, engines and platforms — the same property the uniform
// contract phonecall.RandomPeer has. Floating point appears only at compile
// time (NewSelector / SetPolicy), where scores are quantized to integer slot
// multiplicities once. DESIGN.md §13 documents the contract; the naive
// re-implementation ReferenceSelect and FuzzPolicyVsOracle pin it.
package policy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// Attribute defaults applied by the generators and by JSON node specs that
// omit a field.
const (
	// DefaultCapacity is the middle of the uint8 capacity scale.
	DefaultCapacity = 128
	// DefaultReputation is a "good standing" baseline below the maximum, so
	// specs can model both better and worse nodes.
	DefaultReputation = 200
)

// Attrs is one node's attribute tuple.
type Attrs struct {
	// Zone is the failure/locality domain (rack, datacenter, region).
	Zone int
	// Latency is the node's latency class: 0 = closest tier, 255 = farthest.
	// Distance between two nodes is |a.Latency - b.Latency|.
	Latency uint8
	// Capacity is the node's relative serving capacity in [0, 255].
	Capacity uint8
	// Reputation is the node's standing in [0, 255]; policies can exclude or
	// down-weight low-reputation peers.
	Reputation uint8
}

// Table is the immutable node-attribute table, stored as parallel columns
// (struct of arrays) keyed by node index — the engines address nodes by
// index, and NodeIDs are seed-derived, so a topology is specified positionally.
type Table struct {
	n          int
	zone       []uint16
	latency    []uint8
	capacity   []uint8
	reputation []uint8
	zones      int // number of zones (max zone + 1)
}

// MaxZones bounds the zone id space; zones are failure domains, not node
// names, so a small dense space keeps per-zone aggregation cheap.
const MaxZones = 1 << 16

// NewTable builds a table from explicit per-node attributes.
func NewTable(attrs []Attrs) (*Table, error) {
	t := &Table{
		n:          len(attrs),
		zone:       make([]uint16, len(attrs)),
		latency:    make([]uint8, len(attrs)),
		capacity:   make([]uint8, len(attrs)),
		reputation: make([]uint8, len(attrs)),
	}
	for i, a := range attrs {
		if a.Zone < 0 || a.Zone >= MaxZones {
			return nil, fmt.Errorf("policy: node %d: zone %d outside [0,%d)", i, a.Zone, MaxZones)
		}
		t.zone[i] = uint16(a.Zone)
		t.latency[i] = a.Latency
		t.capacity[i] = a.Capacity
		t.reputation[i] = a.Reputation
		if a.Zone+1 > t.zones {
			t.zones = a.Zone + 1
		}
	}
	return t, nil
}

// Len returns the number of nodes the table describes.
func (t *Table) Len() int { return t.n }

// Zones returns the number of zones (max zone id + 1).
func (t *Table) Zones() int { return t.zones }

// Attrs returns node i's attribute tuple.
func (t *Table) Attrs(i int) Attrs {
	return Attrs{
		Zone:       int(t.zone[i]),
		Latency:    t.latency[i],
		Capacity:   t.capacity[i],
		Reputation: t.reputation[i],
	}
}

// Zone returns node i's zone.
func (t *Table) Zone(i int) int { return int(t.zone[i]) }

// ZoneMembers returns the node indexes in a zone, ascending. The slice is
// freshly allocated; zone events are rare, so this is not a hot path.
func (t *Table) ZoneMembers(zone int) []int {
	var out []int
	for i := 0; i < t.n; i++ {
		if int(t.zone[i]) == zone {
			out = append(out, i)
		}
	}
	return out
}

// ZoneTable builds a flat zone table: zone = i mod k, identical latency,
// default capacity and reputation — the minimal heterogeneous topology
// (failure domains without link asymmetry).
func ZoneTable(n, k int) (*Table, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("policy: zones %d outside [1,%d]", k, n)
	}
	attrs := make([]Attrs, n)
	for i := range attrs {
		attrs[i] = Attrs{Zone: i % k, Capacity: DefaultCapacity, Reputation: DefaultReputation}
	}
	return NewTable(attrs)
}

// WanLanTable builds a WAN-asymmetric topology: k zones (zone = i mod k),
// zone z at latency class 16·z, zone 0 at full capacity (a LAN of fast
// nodes) and every other zone at a quarter — the shape where same-zone
// preference and capacity weighting visibly change spreading behavior.
func WanLanTable(n, k int) (*Table, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("policy: zones %d outside [1,%d]", k, n)
	}
	attrs := make([]Attrs, n)
	for i := range attrs {
		z := i % k
		lat := 16 * z
		if lat > 255 {
			lat = 255
		}
		cap8 := uint8(64)
		if z == 0 {
			cap8 = 255
		}
		attrs[i] = Attrs{Zone: z, Latency: uint8(lat), Capacity: cap8, Reputation: DefaultReputation}
	}
	return NewTable(attrs)
}

// TopologySpec is the JSON surface describing a topology: either a named
// generator sized at build time, or an explicit per-node attribute list.
type TopologySpec struct {
	// Generator names a built-in topology: "zones" (flat zones) or "wanlan"
	// (WAN-asymmetric zones). Mutually exclusive with Nodes.
	Generator string `json:"generator,omitempty"`
	// Zones parameterizes the generator (number of zones k).
	Zones int `json:"zones,omitempty"`
	// Nodes lists explicit per-node attributes; its length must equal the
	// network size.
	Nodes []NodeSpec `json:"nodes,omitempty"`
}

// NodeSpec is one node's attributes in a JSON topology. Omitted capacity and
// reputation take the package defaults.
type NodeSpec struct {
	Zone       int  `json:"zone"`
	Latency    int  `json:"latency,omitempty"`
	Capacity   *int `json:"capacity,omitempty"`
	Reputation *int `json:"reputation,omitempty"`
}

// ErrSpec marks malformed topology and policy specs.
var ErrSpec = errors.New("policy: invalid spec")

// ParseTopology decodes a JSON topology spec, rejecting unknown fields.
func ParseTopology(data []byte) (*TopologySpec, error) {
	var spec TopologySpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: topology: %v", ErrSpec, err)
	}
	return &spec, nil
}

// LoadTopology reads and parses a JSON topology spec file.
func LoadTopology(path string) (*TopologySpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := ParseTopology(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Build materializes the spec into an n-node attribute table.
func (s *TopologySpec) Build(n int) (*Table, error) {
	if len(s.Nodes) > 0 {
		if s.Generator != "" {
			return nil, fmt.Errorf("%w: topology has both a generator and explicit nodes", ErrSpec)
		}
		if len(s.Nodes) != n {
			return nil, fmt.Errorf("%w: topology lists %d nodes for an n=%d network", ErrSpec, len(s.Nodes), n)
		}
		attrs := make([]Attrs, n)
		for i, ns := range s.Nodes {
			a, err := ns.attrs(i)
			if err != nil {
				return nil, err
			}
			attrs[i] = a
		}
		t, err := NewTable(attrs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return t, nil
	}
	k := s.Zones
	if k == 0 {
		k = 1
	}
	var t *Table
	var err error
	switch s.Generator {
	case "zones":
		t, err = ZoneTable(n, k)
	case "wanlan":
		t, err = WanLanTable(n, k)
	case "":
		return nil, fmt.Errorf("%w: topology needs a generator or explicit nodes", ErrSpec)
	default:
		return nil, fmt.Errorf("%w: unknown topology generator %q", ErrSpec, s.Generator)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return t, nil
}

func (ns NodeSpec) attrs(i int) (Attrs, error) {
	byteRange := func(field string, v int) (uint8, error) {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("%w: node %d: %s %d outside [0,255]", ErrSpec, i, field, v)
		}
		return uint8(v), nil
	}
	if ns.Zone < 0 || ns.Zone >= MaxZones {
		return Attrs{}, fmt.Errorf("%w: node %d: zone %d outside [0,%d)", ErrSpec, i, ns.Zone, MaxZones)
	}
	lat, err := byteRange("latency", ns.Latency)
	if err != nil {
		return Attrs{}, err
	}
	capv, repv := DefaultCapacity, DefaultReputation
	if ns.Capacity != nil {
		capv = *ns.Capacity
	}
	if ns.Reputation != nil {
		repv = *ns.Reputation
	}
	cap8, err := byteRange("capacity", capv)
	if err != nil {
		return Attrs{}, err
	}
	rep8, err := byteRange("reputation", repv)
	if err != nil {
		return Attrs{}, err
	}
	return Attrs{Zone: ns.Zone, Latency: lat, Capacity: cap8, Reputation: rep8}, nil
}

// groupKey orders attribute tuples lexicographically; the group order is part
// of the selection contract, so it is defined here once and reused by the
// compiler and the reference implementation.
func groupLess(a, b Attrs) bool {
	if a.Zone != b.Zone {
		return a.Zone < b.Zone
	}
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	if a.Capacity != b.Capacity {
		return a.Capacity < b.Capacity
	}
	return a.Reputation < b.Reputation
}

// groupTable computes the table's distinct attribute groups in contract
// order, each with its member node indexes ascending, plus each node's group
// and position within it.
func groupTable(t *Table) (groups []Attrs, members [][]int, groupOf, posInGroup []int) {
	seen := map[Attrs]int{}
	for i := 0; i < t.n; i++ {
		a := t.Attrs(i)
		if _, ok := seen[a]; !ok {
			seen[a] = 0
			groups = append(groups, a)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groupLess(groups[i], groups[j]) })
	for g, a := range groups {
		seen[a] = g
	}
	members = make([][]int, len(groups))
	groupOf = make([]int, t.n)
	posInGroup = make([]int, t.n)
	for i := 0; i < t.n; i++ {
		g := seen[t.Attrs(i)]
		groupOf[i] = g
		posInGroup[i] = len(members[g])
		members[g] = append(members[g], i)
	}
	return groups, members, groupOf, posInGroup
}
