package policy

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// selectorTag separates the policy-selection hash stream from the model's
// other stateless streams (0xc0ffee random targets, 0x70ca1 loss).
const selectorTag = 0x9013c9

// maxGroups caps the number of distinct attribute tuples a table may compile
// to: the weight tables are O(groups²), and a topology is a handful of
// classes, not a per-node namespace.
const maxGroups = 4096

// groupPlan is one initiator group's sampling plan against one admissibility
// view: per target group the slot multiplicity q (0 when the hard
// constraints reject the group), the cumulative slot offset, and the total
// slot count with the initiator's own group fully included.
type groupPlan struct {
	q     []int64
	start []int64
	total int64
}

// compiled is an immutable compilation of (table, policy): swapped atomically
// by SetPolicy, read without locks on the selection hot path.
type compiled struct {
	groups     []Attrs
	members    [][]int
	groupOf    []int32
	posInGroup []int32
	// plans[0] is the configured-policy view; plans[1] is the partitioned
	// view (the same policy with cross-zone admissibility masked off),
	// toggled by SetPartitioned.
	plans     [2][]groupPlan
	mode      Mode
	hasPolicy bool
}

// Selector implements phonecall.PeerSelector over an attribute table and a
// policy. Selection is a pure integer function of (seed, round, initiator)
// and the compiled tables — bit-identical across worker counts and engines.
// With no policy configured and no partition active it delegates verbatim to
// the uniform contract phonecall.RandomPeer, so installing a topology alone
// does not change any execution.
//
// SetPolicy and SetPartitioned are safe to call concurrently with selection
// (atomic swaps), but deterministic runs must only call them between rounds,
// like Fail/Revive/SetLoss.
type Selector struct {
	table *Table
	n     int
	seed  uint64

	state       atomic.Pointer[compiled]
	partitioned atomic.Bool
	evaluations atomic.Int64
	violations  atomic.Int64
}

// NewSelector compiles a policy over a table. pol may be nil: the selector
// then passes random contacts through to the uniform contract, while still
// answering zone queries and honoring partitions (with uniform same-zone
// selection). The seed must be the execution seed of the network the
// selector will be installed on.
func NewSelector(table *Table, pol *Policy, seed uint64) (*Selector, error) {
	if table == nil {
		return nil, fmt.Errorf("%w: selector needs a topology table", ErrSpec)
	}
	c, err := compile(table, pol)
	if err != nil {
		return nil, err
	}
	s := &Selector{table: table, n: table.Len(), seed: seed}
	s.state.Store(c)
	return s, nil
}

// compile builds the immutable selection tables for one (table, policy)
// pair. All floating point happens here; the result is integer-only.
func compile(table *Table, pol *Policy) (*compiled, error) {
	eff := uniformPolicy
	if pol != nil {
		eff = *pol
	}
	if err := eff.Validate(); err != nil {
		return nil, err
	}
	groups, members, groupOf, posInGroup := groupTable(table)
	if len(groups) > maxGroups {
		return nil, fmt.Errorf("%w: topology compiles to %d attribute groups (max %d)", ErrSpec, len(groups), maxGroups)
	}
	c := &compiled{
		groups:     groups,
		members:    members,
		groupOf:    make([]int32, table.Len()),
		posInGroup: make([]int32, table.Len()),
		mode:       eff.Mode,
		hasPolicy:  pol != nil,
	}
	for i := range groupOf {
		c.groupOf[i] = int32(groupOf[i])
		c.posInGroup[i] = int32(posInGroup[i])
	}
	for view := 0; view < 2; view++ {
		plans := make([]groupPlan, len(groups))
		for g, a := range groups {
			p := groupPlan{q: make([]int64, len(groups)), start: make([]int64, len(groups))}
			for h, b := range groups {
				q := eff.slots(a, b)
				if view == 1 && a.Zone != b.Zone {
					q = 0 // partition: only same-zone peers are reachable
				}
				p.start[h] = p.total
				p.q[h] = q
				p.total += q * int64(len(members[h]))
			}
			plans[g] = p
		}
		c.plans[view] = plans
	}
	return c, nil
}

// SelectPeer implements phonecall.PeerSelector: initiator's policy-weighted
// random contact for the round, or (0, false) in enforce mode when no peer
// is admissible (the call is then charged but undelivered, exactly like an
// unresolvable direct target).
//
// The contract (DESIGN.md §13): the admissible peers, grouped by attribute
// tuple in lexicographic (zone, latency, capacity, reputation) order with
// members ascending by index, lay out a virtual slot array in which each
// member of group h owns q(g→h) consecutive slots. One draw
// r = Bounded(Mix(seed, 0x9013c9, round, initiator), W) over the W slots not
// owned by the initiator picks the peer owning slot r (the initiator's own
// block is skipped by shifting). Exact weighted sampling — no rejection
// loop, no floats.
func (s *Selector) SelectPeer(round, initiator int) (int, bool) {
	s.evaluations.Add(1)
	part := s.partitioned.Load()
	c := s.state.Load()
	if !c.hasPolicy && !part {
		return phonecall.RandomPeer(s.n, s.seed, round, initiator), true
	}
	g := int(c.groupOf[initiator])
	plan := &c.plans[b2i(part)][g]
	qSelf := plan.q[g]
	w := plan.total - qSelf
	if w <= 0 {
		s.violations.Add(1)
		if c.mode == ModePermissive {
			return phonecall.RandomPeer(s.n, s.seed, round, initiator), true
		}
		return 0, false
	}
	r := int64(rng.Bounded(rng.Mix(s.seed, selectorTag, uint64(round), uint64(initiator)), uint64(w)))
	if qSelf > 0 {
		selfStart := plan.start[g] + int64(c.posInGroup[initiator])*qSelf
		if r >= selfStart {
			r += qSelf
		}
	}
	h := sort.Search(len(plan.start), func(k int) bool { return plan.start[k] > r }) - 1
	off := r - plan.start[h]
	return c.members[h][off/plan.q[h]], true
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SetPolicy recompiles the selector for a new policy (nil restores the
// uniform pass-through) and swaps it in atomically.
func (s *Selector) SetPolicy(pol *Policy) error {
	c, err := compile(s.table, pol)
	if err != nil {
		return err
	}
	s.state.Store(c)
	return nil
}

// SetPartitioned toggles the network partition view: while partitioned, only
// same-zone peers are reachable (under the configured policy's weights).
func (s *Selector) SetPartitioned(part bool) { s.partitioned.Store(part) }

// Partitioned reports whether the partition view is active.
func (s *Selector) Partitioned() bool { return s.partitioned.Load() }

// Table returns the attribute table the selector was compiled over.
func (s *Selector) Table() *Table { return s.table }

// ZoneMembers returns the node indexes in a zone (for zone outage/heal
// events).
func (s *Selector) ZoneMembers(zone int) []int { return s.table.ZoneMembers(zone) }

// Zones returns the number of zones in the topology.
func (s *Selector) Zones() int { return s.table.Zones() }

// Zone returns node i's zone.
func (s *Selector) Zone(i int) int { return s.table.Zone(i) }

// Stats returns the cumulative evaluation and violation counts (violations:
// enforce-mode failed calls plus permissive-mode uniform fallbacks).
func (s *Selector) Stats() (evaluations, violations int64) {
	return s.evaluations.Load(), s.violations.Load()
}

// Compile validates the (table, policy) pair for an n-node execution and
// compiles the selector — the nil-combination rules and the size check every
// engine layer shares. Both nil returns (nil, nil): the execution keeps the
// uniform contract. Callers installing the result behind an interface must
// guard the nil (a typed-nil *Selector in a non-nil interface would shadow
// the uniform path).
func Compile(n int, seed uint64, table *Table, pol *Policy) (*Selector, error) {
	if table == nil {
		if pol != nil {
			return nil, fmt.Errorf("%w: a policy needs a topology", ErrSpec)
		}
		return nil, nil
	}
	if table.Len() != n {
		return nil, fmt.Errorf("%w: topology describes %d nodes for an n=%d network", ErrSpec, table.Len(), n)
	}
	return NewSelector(table, pol, seed)
}

// Install compiles the (table, policy) pair against a network and installs
// the selector on it — the one code path the barriered engine layers
// (harness, scenario driver) funnel through; the free-running runtime goes
// through Compile and live.FreeRunConfig.PeerSelector. Both nil is a no-op
// returning (nil, nil): the network keeps the uniform contract.
func Install(net *phonecall.Network, table *Table, pol *Policy) (*Selector, error) {
	sel, err := Compile(net.N(), net.Seed(), table, pol)
	if err != nil || sel == nil {
		return nil, err
	}
	net.SetPeerSelector(sel)
	return sel, nil
}
