package policy

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/phonecall"
)

// randomTable builds a table with attributes drawn from small value sets, so
// group collisions (several nodes per attribute tuple) actually happen.
func randomTable(t *testing.T, r *rand.Rand, n, zones int) *Table {
	t.Helper()
	attrs := make([]Attrs, n)
	lats := []uint8{0, 16, 64}
	caps := []uint8{40, 128, 255}
	reps := []uint8{90, 180, 230}
	for i := range attrs {
		attrs[i] = Attrs{
			Zone:       r.Intn(zones),
			Latency:    lats[r.Intn(len(lats))],
			Capacity:   caps[r.Intn(len(caps))],
			Reputation: reps[r.Intn(len(reps))],
		}
	}
	tab, err := NewTable(attrs)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGenerators(t *testing.T) {
	tab, err := ZoneTable(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 10 || tab.Zones() != 3 {
		t.Fatalf("ZoneTable(10,3): len=%d zones=%d", tab.Len(), tab.Zones())
	}
	if got := tab.ZoneMembers(1); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Fatalf("zone 1 members = %v", got)
	}
	wan, err := WanLanTable(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a := wan.Attrs(2); a.Zone != 2 || a.Latency != 32 || a.Capacity != 64 {
		t.Fatalf("wanlan node 2 attrs = %+v", a)
	}
	if a := wan.Attrs(0); a.Capacity != 255 || a.Latency != 0 {
		t.Fatalf("wanlan node 0 attrs = %+v", a)
	}
	for _, bad := range [][2]int{{10, 0}, {10, 11}, {5, -1}} {
		if _, err := ZoneTable(bad[0], bad[1]); err == nil {
			t.Errorf("ZoneTable%v accepted", bad)
		}
		if _, err := WanLanTable(bad[0], bad[1]); err == nil {
			t.Errorf("WanLanTable%v accepted", bad)
		}
	}
}

func TestTopologySpecErrors(t *testing.T) {
	cases := []struct {
		name, spec string
		n          int
	}{
		{"unknown field", `{"generatr":"zones"}`, 10},
		{"unknown generator", `{"generator":"ring","zones":2}`, 10},
		{"generator and nodes", `{"generator":"zones","nodes":[{"zone":0}]}`, 1},
		{"empty", `{}`, 10},
		{"wrong node count", `{"nodes":[{"zone":0},{"zone":1}]}`, 3},
		{"zone out of range", `{"nodes":[{"zone":-1}]}`, 1},
		{"latency out of range", `{"nodes":[{"zone":0,"latency":300}]}`, 1},
		{"capacity out of range", `{"nodes":[{"zone":0,"capacity":-2}]}`, 1},
		{"reputation out of range", `{"nodes":[{"zone":0,"reputation":256}]}`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseTopology([]byte(tc.spec))
			if err == nil {
				_, err = spec.Build(tc.n)
			}
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("error not ErrSpec: %v", err)
			}
		})
	}
}

func TestTopologySpecNodes(t *testing.T) {
	spec, err := ParseTopology([]byte(
		`{"nodes":[{"zone":1,"latency":8},{"zone":0,"capacity":10,"reputation":20}]}`))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if a := tab.Attrs(0); a != (Attrs{Zone: 1, Latency: 8, Capacity: DefaultCapacity, Reputation: DefaultReputation}) {
		t.Fatalf("node 0 attrs = %+v", a)
	}
	if a := tab.Attrs(1); a != (Attrs{Zone: 0, Capacity: 10, Reputation: 20}) {
		t.Fatalf("node 1 attrs = %+v", a)
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []string{
		`{"mode":"strict"}`,
		`{"weights":{"same_zone":-1}}`,
		`{"weights":{"latency":2097153}}`,
		`{"rules":{"max_latency_distance":300}}`,
		`{"rules":{"min_reputation":-1}}`,
		`{"rules":{"min_capacity":999}}`,
		`{"rules":{"deny_zones":[-3]}}`,
		`{"mode":"enforce","bogus":1}`,
	}
	for _, spec := range cases {
		if _, err := ParsePolicy([]byte(spec)); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", spec, err)
		}
	}
	p, err := ParsePolicy([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeEnforce {
		t.Fatalf("zero mode normalized to %q, want enforce", p.Mode)
	}
}

// TestPassthroughUniform pins the no-policy guarantee: a selector compiled
// from a topology alone delegates verbatim to phonecall.RandomPeer, so
// installing a topology cannot change any execution.
func TestPassthroughUniform(t *testing.T) {
	const n, seed = 257, 0xfeed
	tab, err := WanLanTable(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(tab, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 40; round++ {
		for i := 0; i < n; i++ {
			j, ok := sel.SelectPeer(round, i)
			if want := phonecall.RandomPeer(n, seed, round, i); !ok || j != want {
				t.Fatalf("round %d initiator %d: (%d,%v), uniform contract says %d", round, i, j, ok, want)
			}
		}
	}
}

// TestSelectorMatchesReference cross-checks the compiled slot-array selector
// against the naive per-call reference over random tables, policies and both
// partition views.
func TestSelectorMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	pols := []*Policy{
		nil,
		{},
		{Mode: ModePermissive, Rules: Rules{SameZoneOnly: true}},
		{Rules: Rules{MaxLatencyDistance: 20, MinReputation: 100}, Weights: Weights{SameZone: 4}},
		{Rules: Rules{DenyZones: []int{0}, MinCapacity: 100}, Weights: Weights{Capacity: 2, Latency: 1.5}},
		{Mode: ModePermissive, Rules: Rules{MinReputation: 250}, Weights: Weights{Reputation: 8}},
	}
	for trial := 0; trial < 6; trial++ {
		n := 20 + r.Intn(120)
		tab := randomTable(t, r, n, 1+r.Intn(4))
		pol := pols[trial%len(pols)]
		seed := r.Uint64()
		sel, err := NewSelector(tab, pol, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range []bool{false, true} {
			sel.SetPartitioned(part)
			for round := 1; round <= 8; round++ {
				for i := 0; i < n; i++ {
					gotJ, gotOK := sel.SelectPeer(round, i)
					wantJ, wantOK := ReferenceSelect(tab, pol, part, seed, round, i)
					if gotOK != wantOK || (gotOK && gotJ != wantJ) {
						t.Fatalf("trial %d part=%v round %d initiator %d: selector (%d,%v), reference (%d,%v)",
							trial, part, round, i, gotJ, gotOK, wantJ, wantOK)
					}
				}
			}
		}
	}
}

// TestPartitionMasking pins the partition view: only same-zone peers resolve,
// and a node alone in its zone becomes a violation (enforce: failed call;
// permissive: uniform fallback).
func TestPartitionMasking(t *testing.T) {
	attrs := make([]Attrs, 9)
	for i := range attrs {
		attrs[i] = Attrs{Zone: i % 2} // zones 0 and 1...
	}
	attrs[8] = Attrs{Zone: 2} // ...plus node 8 alone in zone 2
	tab, err := NewTable(attrs)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(tab, &Policy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sel.SetPartitioned(true)
	if !sel.Partitioned() {
		t.Fatal("partition flag not set")
	}
	for round := 1; round <= 30; round++ {
		for i := 0; i < 8; i++ {
			j, ok := sel.SelectPeer(round, i)
			if !ok || tab.Zone(j) != tab.Zone(i) || j == i {
				t.Fatalf("round %d: partitioned contact %d -> %d (ok=%v) crossed zones", round, i, j, ok)
			}
		}
		if _, ok := sel.SelectPeer(round, 8); ok {
			t.Fatalf("round %d: lone node resolved a partitioned peer", round)
		}
	}
	if _, violations := sel.Stats(); violations != 30 {
		t.Fatalf("violations = %d, want 30", violations)
	}
	sel.SetPartitioned(false)
	if j, ok := sel.SelectPeer(1, 8); !ok || j == 8 {
		t.Fatalf("healed lone node got (%d,%v)", j, ok)
	}
}

// TestPermissiveFallback pins the permissive mode: an empty candidate set
// falls back to the uniform contract and counts a violation.
func TestPermissiveFallback(t *testing.T) {
	const n, seed = 31, 3
	tab, err := ZoneTable(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	pol := &Policy{Mode: ModePermissive, Rules: Rules{MinReputation: 255}} // nobody passes
	sel, err := NewSelector(tab, pol, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j, ok := sel.SelectPeer(4, i)
		if want := phonecall.RandomPeer(n, seed, 4, i); !ok || j != want {
			t.Fatalf("initiator %d: fallback (%d,%v), uniform says %d", i, j, ok, want)
		}
	}
	evals, violations := sel.Stats()
	if evals != n || violations != n {
		t.Fatalf("stats = (%d,%d), want (%d,%d)", evals, violations, n, n)
	}
}

// TestSetPolicySwap pins the between-rounds policy swap: selection follows
// the new policy, and nil restores the uniform pass-through.
func TestSetPolicySwap(t *testing.T) {
	const n, seed = 40, 11
	tab, err := ZoneTable(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(tab, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sel.SetPolicy(&Policy{Rules: Rules{SameZoneOnly: true}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if j, ok := sel.SelectPeer(2, i); !ok || tab.Zone(j) != tab.Zone(i) {
			t.Fatalf("constrained contact %d -> %d (ok=%v) left the zone", i, j, ok)
		}
	}
	if err := sel.SetPolicy(&Policy{Mode: "bogus"}); err == nil {
		t.Fatal("invalid policy swap accepted")
	}
	if err := sel.SetPolicy(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if j, ok := sel.SelectPeer(3, i); !ok || j != phonecall.RandomPeer(n, seed, 3, i) {
			t.Fatalf("nil swap did not restore the uniform contract at %d", i)
		}
	}
}

func TestCompileInstall(t *testing.T) {
	if sel, err := Compile(10, 1, nil, nil); sel != nil || err != nil {
		t.Fatalf("Compile(nil,nil) = (%v,%v), want (nil,nil)", sel, err)
	}
	if _, err := Compile(10, 1, nil, &Policy{}); !errors.Is(err, ErrSpec) {
		t.Fatalf("policy without topology: %v", err)
	}
	tab, err := ZoneTable(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(10, 1, tab, nil); !errors.Is(err, ErrSpec) ||
		!strings.Contains(err.Error(), "8") {
		t.Fatalf("size mismatch: %v", err)
	}
	net, err := phonecall.New(phonecall.Config{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Install(net, tab, &Policy{})
	if err != nil || sel == nil {
		t.Fatalf("Install: (%v,%v)", sel, err)
	}
	if net.PeerSelector() != phonecall.PeerSelector(sel) {
		t.Fatal("selector not installed on the network")
	}
	net2, err := phonecall.New(phonecall.Config{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sel, err := Install(net2, nil, nil); sel != nil || err != nil || net2.PeerSelector() != nil {
		t.Fatal("nil Install touched the network")
	}
}

// TestSelectPeerZeroAlloc locks the hot path allocation-free: selection under
// a real policy must not allocate (the compiled tables are immutable).
func TestSelectPeerZeroAlloc(t *testing.T) {
	sel := benchSelector(t)
	allocs := testing.AllocsPerRun(200, func() {
		sel.SelectPeer(3, 17)
	})
	if allocs != 0 {
		t.Fatalf("SelectPeer allocates %.1f per call, want 0", allocs)
	}
}

func benchSelector(tb testing.TB) *Selector {
	tab, err := WanLanTable(4096, 8)
	if err != nil {
		tb.Fatal(err)
	}
	pol := &Policy{
		Rules:   Rules{MaxLatencyDistance: 64, MinCapacity: 32},
		Weights: Weights{SameZone: 2, Capacity: 1, Latency: 0.5},
	}
	sel, err := NewSelector(tab, pol, 0xabcde)
	if err != nil {
		tb.Fatal(err)
	}
	return sel
}

// BenchmarkPolicySelect measures one policy-weighted peer selection on a
// 4096-node, 8-zone WAN topology (registered in cmd/benchtab -json).
func BenchmarkPolicySelect(b *testing.B) {
	sel := benchSelector(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel.SelectPeer(i>>12+1, i&4095)
	}
}
