package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Mode decides what happens when a policy leaves an initiator with no
// admissible peer.
type Mode string

const (
	// ModeEnforce treats an empty candidate set as a failed call: the
	// initiator is charged for the attempt (exactly like a call to an
	// unresolvable direct target) and nothing is delivered.
	ModeEnforce Mode = "enforce"
	// ModePermissive falls back to the uniform contract
	// (phonecall.RandomPeer) when no peer is admissible, prioritizing
	// liveness over constraints. The fallback is counted as a violation.
	ModePermissive Mode = "permissive"
)

// Rules are the hard constraints: a candidate failing any rule gets slot
// multiplicity zero, regardless of weights.
type Rules struct {
	// SameZoneOnly admits only peers in the initiator's zone.
	SameZoneOnly bool `json:"same_zone_only,omitempty"`
	// MaxLatencyDistance caps |initiator.Latency - peer.Latency|; 0 means
	// unlimited.
	MaxLatencyDistance int `json:"max_latency_distance,omitempty"`
	// MinReputation excludes peers below the threshold.
	MinReputation int `json:"min_reputation,omitempty"`
	// MinCapacity excludes peers below the threshold.
	MinCapacity int `json:"min_capacity,omitempty"`
	// DenyZones excludes peers in the listed zones.
	DenyZones []int `json:"deny_zones,omitempty"`
}

// Weights are the soft preferences. Every admissible peer scores
//
//	1 + SameZone·[same zone] + Latency·(255-dist)/255
//	  + Capacity·cap/255 + Reputation·rep/255
//
// and is selected with probability proportional to its score. All weights
// zero (with no rules) reproduces the uniform distribution.
type Weights struct {
	SameZone   float64 `json:"same_zone,omitempty"`
	Latency    float64 `json:"latency,omitempty"`
	Capacity   float64 `json:"capacity,omitempty"`
	Reputation float64 `json:"reputation,omitempty"`
}

// Policy is a complete peer-selection policy: hard constraints, soft
// weights, and the empty-candidate mode.
type Policy struct {
	Mode    Mode    `json:"mode,omitempty"` // defaults to enforce
	Rules   Rules   `json:"rules,omitempty"`
	Weights Weights `json:"weights,omitempty"`
}

// MaxWeight bounds each soft weight; together with the scoreScale quantum it
// keeps every compiled slot count far below overflow for any network size
// the engines accept.
const MaxWeight = 1 << 20

// Validate checks ranges and normalizes the zero mode to enforce.
func (p *Policy) Validate() error {
	switch p.Mode {
	case "":
		p.Mode = ModeEnforce
	case ModeEnforce, ModePermissive:
	default:
		return fmt.Errorf("%w: mode %q (want %q or %q)", ErrSpec, p.Mode, ModeEnforce, ModePermissive)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{
		{"same_zone", p.Weights.SameZone},
		{"latency", p.Weights.Latency},
		{"capacity", p.Weights.Capacity},
		{"reputation", p.Weights.Reputation},
	} {
		if math.IsNaN(w.v) || w.v < 0 || w.v > MaxWeight {
			return fmt.Errorf("%w: weight %s = %v outside [0,%d]", ErrSpec, w.name, w.v, MaxWeight)
		}
	}
	if p.Rules.MaxLatencyDistance < 0 || p.Rules.MaxLatencyDistance > 255 {
		return fmt.Errorf("%w: max_latency_distance %d outside [0,255]", ErrSpec, p.Rules.MaxLatencyDistance)
	}
	if p.Rules.MinReputation < 0 || p.Rules.MinReputation > 255 {
		return fmt.Errorf("%w: min_reputation %d outside [0,255]", ErrSpec, p.Rules.MinReputation)
	}
	if p.Rules.MinCapacity < 0 || p.Rules.MinCapacity > 255 {
		return fmt.Errorf("%w: min_capacity %d outside [0,255]", ErrSpec, p.Rules.MinCapacity)
	}
	for _, z := range p.Rules.DenyZones {
		if z < 0 || z >= MaxZones {
			return fmt.Errorf("%w: deny zone %d outside [0,%d)", ErrSpec, z, MaxZones)
		}
	}
	return nil
}

// ParsePolicy decodes and validates a JSON policy, rejecting unknown fields.
func ParsePolicy(data []byte) (*Policy, error) {
	var p Policy
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: policy: %v", ErrSpec, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPolicy reads, parses and validates a JSON policy file.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePolicy(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// admits reports whether the hard constraints admit a peer with attributes b
// for an initiator with attributes a.
func (r Rules) admits(a, b Attrs) bool {
	if r.SameZoneOnly && a.Zone != b.Zone {
		return false
	}
	if r.MaxLatencyDistance > 0 && latencyDist(a, b) > r.MaxLatencyDistance {
		return false
	}
	if int(b.Reputation) < r.MinReputation {
		return false
	}
	if int(b.Capacity) < r.MinCapacity {
		return false
	}
	for _, z := range r.DenyZones {
		if b.Zone == z {
			return false
		}
	}
	return true
}

func latencyDist(a, b Attrs) int {
	d := int(a.Latency) - int(b.Latency)
	if d < 0 {
		d = -d
	}
	return d
}

// scoreScale quantizes scores into integer slot multiplicities: one score
// unit is 1024 slots, so a passing peer always owns at least 1024 slots and
// relative weights survive rounding to better than 0.1%.
const scoreScale = 1024

// slots returns the compiled slot multiplicity of a peer with attributes b
// for an initiator with attributes a: 0 when the hard constraints reject it,
// round(score·1024) otherwise. Float arithmetic happens only here, at
// compile time; the selection hot path is all-integer.
func (p *Policy) slots(a, b Attrs) int64 {
	if !p.Rules.admits(a, b) {
		return 0
	}
	score := 1.0
	if p.Weights.SameZone > 0 && a.Zone == b.Zone {
		score += p.Weights.SameZone
	}
	if p.Weights.Latency > 0 {
		score += p.Weights.Latency * float64(255-min(255, latencyDist(a, b))) / 255
	}
	if p.Weights.Capacity > 0 {
		score += p.Weights.Capacity * float64(b.Capacity) / 255
	}
	if p.Weights.Reputation > 0 {
		score += p.Weights.Reputation * float64(b.Reputation) / 255
	}
	return int64(math.Round(score * scoreScale))
}

// uniformPolicy is the implicit policy of a topology configured without one:
// no constraints, no weights — every peer at the base multiplicity. It makes
// the partitioned plan well-defined even when no explicit policy is set.
var uniformPolicy = Policy{Mode: ModeEnforce}
