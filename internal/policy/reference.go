package policy

import (
	"math"
	"sort"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// ReferenceSelect is the naive re-implementation of the selection contract,
// deliberately sharing no compiled state or scoring code with Selector: it
// re-sorts the candidate list and re-derives every slot count on every call,
// walking the virtual slot array linearly instead of via grouped prefix
// sums. The oracle's differential harness (FuzzPolicyVsOracle) runs the
// engines with a Selector and the reference with this function and demands
// bit-identical executions, so the two implementations pin each other.
func ReferenceSelect(t *Table, pol *Policy, partitioned bool, seed uint64, round, initiator int) (int, bool) {
	if pol == nil && !partitioned {
		return phonecall.RandomPeer(t.Len(), seed, round, initiator), true
	}
	eff := uniformPolicy
	if pol != nil {
		eff = *pol
	}
	if eff.Mode == "" {
		eff.Mode = ModeEnforce
	}

	// The contract's slot order, flattened: every node sorted by its
	// attribute tuple (lexicographic) with index as tiebreaker — exactly
	// "groups in order, members ascending".
	order := make([]int, t.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := t.Attrs(order[x]), t.Attrs(order[y])
		if a != b {
			return groupLess(a, b)
		}
		return order[x] < order[y]
	})

	a := t.Attrs(initiator)
	slotsOf := func(j int) int64 {
		b := t.Attrs(j)
		if partitioned && a.Zone != b.Zone {
			return 0
		}
		if eff.Rules.SameZoneOnly && a.Zone != b.Zone {
			return 0
		}
		dist := int(a.Latency) - int(b.Latency)
		if dist < 0 {
			dist = -dist
		}
		if eff.Rules.MaxLatencyDistance > 0 && dist > eff.Rules.MaxLatencyDistance {
			return 0
		}
		if int(b.Reputation) < eff.Rules.MinReputation || int(b.Capacity) < eff.Rules.MinCapacity {
			return 0
		}
		for _, z := range eff.Rules.DenyZones {
			if b.Zone == z {
				return 0
			}
		}
		score := 1.0
		if eff.Weights.SameZone > 0 && a.Zone == b.Zone {
			score += eff.Weights.SameZone
		}
		if eff.Weights.Latency > 0 {
			if dist > 255 {
				dist = 255
			}
			score += eff.Weights.Latency * float64(255-dist) / 255
		}
		if eff.Weights.Capacity > 0 {
			score += eff.Weights.Capacity * float64(b.Capacity) / 255
		}
		if eff.Weights.Reputation > 0 {
			score += eff.Weights.Reputation * float64(b.Reputation) / 255
		}
		return int64(math.Round(score * 1024))
	}

	var w int64
	for _, j := range order {
		if j != initiator {
			w += slotsOf(j)
		}
	}
	if w <= 0 {
		if eff.Mode == ModePermissive {
			return phonecall.RandomPeer(t.Len(), seed, round, initiator), true
		}
		return 0, false
	}
	r := int64(rng.Bounded(rng.Mix(seed, selectorTag, uint64(round), uint64(initiator)), uint64(w)))
	for _, j := range order {
		if j == initiator {
			continue
		}
		q := slotsOf(j)
		if r < q {
			return j, true
		}
		r -= q
	}
	// Unreachable: r < w and the slot counts above sum to w.
	return 0, false
}
