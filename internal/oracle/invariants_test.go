package oracle_test

// External test package: the Checker must validate the engine under the
// paper's full closed algorithms, which internal/oracle itself cannot import
// without a cycle through core → cluster → phonecall.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/oracle"
	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// TestCheckerCleanOnClosedAlgorithms wraps the engine with the invariant
// checker and runs the paper's algorithms end to end — including failures
// and several shards — requiring zero contract violations.
func TestCheckerCleanOnClosedAlgorithms(t *testing.T) {
	const n = 5000
	run := func(t *testing.T, name string, fail []int, workers int) {
		net, err := phonecall.New(phonecall.Config{N: n, Seed: 31, Workers: workers, PoisonInbox: true})
		if err != nil {
			t.Fatal(err)
		}
		net.Fail(fail...)
		checker := oracle.NewChecker(net)
		net.Observe(checker)
		var informed int
		switch name {
		case "cluster2":
			res, err := core.Cluster2(net, []int{0}, core.Params{})
			if err != nil {
				t.Fatal(err)
			}
			informed = res.Informed
		case "clusterpushpull":
			res, err := core.ClusterPushPull(net, []int{0}, 256, core.Params{})
			if err != nil {
				t.Fatal(err)
			}
			informed = res.Informed
		}
		if informed == 0 {
			t.Fatal("algorithm informed nobody")
		}
		for _, v := range checker.Violations() {
			t.Error(v)
		}
	}
	t.Run("cluster2", func(t *testing.T) { run(t, "cluster2", nil, 4) })
	t.Run("cluster2-failures", func(t *testing.T) {
		run(t, "cluster2", failure.Random{Count: n / 10, Seed: 7}.Select(n), 4)
	})
	t.Run("clusterpushpull", func(t *testing.T) { run(t, "clusterpushpull", nil, 1) })
}

// TestCheckerCleanUnderScenarioTimeline layers a churn/loss timeline under
// a closed protocol with the checker attached: events fire inside ExecRound
// via OnRoundStart, so the checker must see the post-event membership.
func TestCheckerCleanUnderScenarioTimeline(t *testing.T) {
	const n = 600
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 13, PoisonInbox: true})
	if err != nil {
		t.Fatal(err)
	}
	checker := oracle.NewChecker(net)
	net.Observe(checker)
	tl := scenario.NewTimeline(
		scenario.CrashAt{At: 3, Nodes: []int{0, 1, 2, 50}},
		scenario.Loss{At: 5, Rate: 0.25, Seed: 9},
		scenario.JoinAt{At: 8, Nodes: []int{0, 1}},
	)
	tl.Attach(net)
	if _, err := core.Cluster2(net, []int{5}, core.Params{}); err != nil {
		t.Fatal(err)
	}
	if err := tl.Err(); err != nil {
		t.Fatal(err)
	}
	for _, v := range checker.Violations() {
		t.Error(v)
	}
}

// badObservation drives the checker's methods the way a buggy engine would
// and asserts the specific contract violation is reported.
func TestCheckerCatchesViolations(t *testing.T) {
	const n = 8
	newNetAndChecker := func(t *testing.T) (*phonecall.Network, *oracle.Checker) {
		net, err := phonecall.New(phonecall.Config{N: n, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net, oracle.NewChecker(net)
	}
	info := phonecall.RoundInfo{HasIntent: true, HasDeliver: true}

	t.Run("double-intent", func(t *testing.T) {
		_, c := newNetAndChecker(t)
		c.BeginRound(1, info)
		c.ObserveIntent(3, phonecall.Silent())
		c.ObserveIntent(3, phonecall.Silent())
		if err := c.Err(); err == nil || !strings.Contains(err.Error(), "more than once") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("dead-node-acts", func(t *testing.T) {
		net, c := newNetAndChecker(t)
		net.Fail(2)
		c.BeginRound(1, info)
		c.ObserveIntent(2, phonecall.Silent())
		if err := c.Err(); err == nil || !strings.Contains(err.Error(), "dead node") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("uncharged-report", func(t *testing.T) {
		net, c := newNetAndChecker(t)
		c.BeginRound(1, info)
		for i := 0; i < n; i++ {
			// A round of pushes the engine supposedly charged nothing for.
			c.ObserveIntent(i, phonecall.PushIntent(phonecall.DirectTarget(net.ID((i+1)%n)), phonecall.Message{Tag: 1}))
		}
		c.EndRound(phonecall.RoundReport{Round: 1})
		if err := c.Err(); err == nil || !strings.Contains(err.Error(), "does not match the model") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("phantom-response", func(t *testing.T) {
		net, c := newNetAndChecker(t)
		c.BeginRound(1, phonecall.RoundInfo{HasIntent: true, HasResponse: true})
		for i := 0; i < net.N(); i++ {
			c.ObserveIntent(i, phonecall.Silent())
		}
		c.ObserveResponse(4, phonecall.Message{Tag: 2}, true)
		c.EndRound(phonecall.RoundReport{Round: 1})
		found := false
		for _, v := range c.Violations() {
			if strings.Contains(v.Error(), "without a live pull") {
				found = true
			}
		}
		if !found {
			t.Fatalf("phantom response not flagged; violations: %v", c.Violations())
		}
	})
}

// TestCheckerCatchesEngineTampering runs a full scripted round through the
// real engine, but hands the checker a corrupted report — the cross-check
// against the model replay must flag it.
func TestCheckerCatchesEngineTampering(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 64, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	checker := oracle.NewChecker(net)
	net.Observe(checker)
	rep := net.ExecRound(
		func(i int) phonecall.Intent {
			return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1, Rumor: true})
		},
		nil, func(i int, inbox []phonecall.Message) {},
	)
	if err := checker.Err(); err != nil {
		t.Fatalf("clean round flagged: %v", err)
	}
	// Now replay the same observations but close the round with a Δ the
	// engine never produced.
	checker.BeginRound(net.Round()+1, phonecall.RoundInfo{HasIntent: true})
	checker.EndRound(phonecall.RoundReport{Round: net.Round() + 1, Messages: rep.Messages})
	if err := checker.Err(); err == nil {
		t.Fatal("tampered report not flagged")
	}
}
