package oracle

import (
	"repro/internal/phonecall"
	"repro/internal/rng"
)

// This file is the model definition of one synchronous round, transcribed
// from DESIGN.md §2 (the random phone call model with direct addressing,
// Section 2 of the paper, plus the Section 8 live-participant failure rule
// and the oblivious per-call loss extension). It deliberately shares no code
// with the sharded engine: everything is naive — one pass over the nodes in
// index order, plain slices and appends, no arenas, no shards.
//
// Two consumers build on it: the Oracle (a complete reference engine) and
// the invariant Checker (which replays the intents it observed the real
// engine evaluate and demands the same charges and inboxes). Keeping the
// model in one place means the two verifiers cannot drift apart.
//
// The spec's randomness contracts (documented with the engine and locked in
// by the differential tests):
//
//   - a random target of initiator i in round r is
//     rng.BoundedUint64(n, seed, 0xc0ffee, r, i, attempt), retrying
//     attempt = 0, 1, ... until the result differs from i;
//   - with loss rate p, initiator i's call in round r is dropped iff
//     float64(rng.Mix(lossSeed, 0x70ca1, r, i) >> 11) / 2^53 < p.
const (
	randomTargetTag = 0xc0ffee
	lossTag         = 0x70ca1
)

// roundEnv is what the model needs to know about the network to evaluate one
// round: sizes, membership, the ID directory and the bit-accounting rules.
type roundEnv struct {
	N        int
	Round    int
	Seed     uint64
	LossRate float64
	LossSeed uint64
	IsFailed func(i int) bool
	ID       func(i int) phonecall.NodeID
	IndexOf  func(id phonecall.NodeID) (int, bool)
	// MessageBits is the size of a payload message; ControlBits the size of
	// a pull request.
	MessageBits func(m phonecall.Message) int
	ControlBits int
	// SelectPeer, when non-nil, replaces the uniform random-target contract
	// with a policy-driven one — the model twin of an installed
	// phonecall.PeerSelector. ok=false means no admissible peer: the call is
	// charged to the initiator but reaches nobody, exactly like an
	// unresolvable direct target.
	SelectPeer func(round, i int) (int, bool)
}

// specCall is one node's evaluated communication for the round.
type specCall struct {
	kind phonecall.Kind
	// target is the live node the call reached, or -1 when the call went
	// nowhere (silent node, unresolved or dead target, lost in transit).
	target int
	// payload is the pushed message with From stamped; hasPayload marks that
	// one is transmitted (Push always, Exchange only with content).
	payload    phonecall.Message
	hasPayload bool
}

// specRound accumulates the model's view of one round. Feed every live
// node's intent with addIntent (ascending node order is not required — the
// model is order-free — but inbox assembly is by initiator index), then
// answer pulled() with addResponse, then read the outcome.
type specRound struct {
	env   roundEnv
	calls []specCall
	acted []bool
	comms []int
	pulls []int
	resp  []phonecall.Message
	ok    []bool

	msgs    int64
	control int64
	bits    int64
	sent    []int64
}

func newSpecRound(env roundEnv) *specRound {
	return &specRound{
		env:   env,
		calls: make([]specCall, env.N),
		acted: make([]bool, env.N),
		comms: make([]int, env.N),
		pulls: make([]int, env.N),
		resp:  make([]phonecall.Message, env.N),
		ok:    make([]bool, env.N),
		sent:  make([]int64, env.N),
	}
}

// randomTarget resolves initiator i's uniformly random contact.
func (s *specRound) randomTarget(i int) int {
	for attempt := uint64(0); ; attempt++ {
		j := int(rng.BoundedUint64(uint64(s.env.N),
			s.env.Seed, randomTargetTag, uint64(s.env.Round), uint64(i), attempt))
		if j != i {
			return j
		}
	}
}

// resolve maps a target to (index, ok). Self-calls, the NoNode sentinel and
// IDs absent from the directory do not resolve.
func (s *specRound) resolve(i int, t phonecall.Target) (int, bool) {
	if t.Random {
		if s.env.SelectPeer != nil {
			return s.env.SelectPeer(s.env.Round, i)
		}
		return s.randomTarget(i), true
	}
	if t.ID == phonecall.NoNode {
		return 0, false
	}
	j, ok := s.env.IndexOf(t.ID)
	if !ok || j == i {
		return j, false
	}
	return j, true
}

// dropped reports whether initiator i's call is lost in transit this round.
func (s *specRound) dropped(i int) bool {
	h := rng.Mix(s.env.LossSeed, lossTag, uint64(s.env.Round), uint64(i))
	return float64(h>>11)/float64(1<<53) < s.env.LossRate
}

// addIntent evaluates node i's intent: target resolution, the
// live-participant communication charges, sender-side message accounting and
// the pull bookkeeping. Kinds outside the model still count as an attempted
// communication for both live participants but transmit nothing.
func (s *specRound) addIntent(i int, it phonecall.Intent) {
	if it.Kind == phonecall.None {
		return
	}
	s.acted[i] = true
	j, ok := s.resolve(i, it.Target)
	s.comms[i]++
	// The live-participant rule: only a live, reachable target takes part in
	// the communication. A call to a dead node and a call lost in transit
	// charge the initiator (it attempted) but never the target.
	live := ok && !s.env.IsFailed(j)
	if live && s.env.LossRate > 0 && s.dropped(i) {
		live = false
	}
	target := -1
	if live {
		s.comms[j]++
		target = j
	}
	c := specCall{kind: it.Kind, target: target}
	switch it.Kind {
	case phonecall.Push:
		m := it.Payload
		m.From = s.env.ID(i)
		s.msgs++
		s.bits += int64(s.env.MessageBits(m))
		s.sent[i]++
		c.payload, c.hasPayload = m, true
	case phonecall.Pull, phonecall.Exchange:
		if it.Kind == phonecall.Exchange && it.Payload.HasContent() {
			m := it.Payload
			m.From = s.env.ID(i)
			s.msgs++
			s.bits += int64(s.env.MessageBits(m))
			s.sent[i]++
			c.payload, c.hasPayload = m, true
		} else {
			s.control++
			s.bits += int64(s.env.ControlBits)
			s.sent[i]++
		}
		if live {
			s.pulls[j]++
		}
	}
	s.calls[i] = c
}

// pulled returns, in ascending order, the nodes at least one live pull
// reached this round — exactly the nodes whose response the model evaluates
// (once each).
func (s *specRound) pulled() []int {
	var out []int
	for d := 0; d < s.env.N; d++ {
		if s.pulls[d] > 0 {
			out = append(out, d)
		}
	}
	return out
}

// addResponse records node d's address-oblivious response. The single
// response is handed to every puller and each copy is charged.
func (s *specRound) addResponse(d int, m phonecall.Message, ok bool) {
	if !ok || s.pulls[d] == 0 {
		return
	}
	m.From = s.env.ID(d)
	k := int64(s.pulls[d])
	s.msgs += k
	s.bits += int64(s.env.MessageBits(m)) * k
	s.sent[d] += k
	s.resp[d] = m
	s.ok[d] = true
}

// inboxes assembles every node's inbox in the model's defined order: by
// initiator index, a puller's own incoming response sitting at its initiator
// position. Index d holds node d's inbox (nil when empty).
func (s *specRound) inboxes() [][]phonecall.Message {
	out := make([][]phonecall.Message, s.env.N)
	for i := 0; i < s.env.N; i++ {
		c := &s.calls[i]
		if c.target < 0 {
			continue
		}
		if c.hasPayload {
			out[c.target] = append(out[c.target], c.payload)
		}
		if (c.kind == phonecall.Pull || c.kind == phonecall.Exchange) && s.ok[c.target] {
			out[i] = append(out[i], s.resp[c.target])
		}
	}
	return out
}

// maxComms returns the round's Δ: the most communications any single node
// participated in.
func (s *specRound) maxComms() int {
	m := 0
	for _, c := range s.comms {
		if c > m {
			m = c
		}
	}
	return m
}

// report summarizes the round like the engine's RoundReport.
func (s *specRound) report() phonecall.RoundReport {
	return phonecall.RoundReport{
		Round:    s.env.Round,
		Messages: s.msgs + s.control,
		Bits:     s.bits,
		MaxComms: s.maxComms(),
	}
}
