package oracle

import (
	"context"
	"testing"

	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// runDiffScript builds the pair for a script (poison on, Checker attached)
// and requires a clean differential run plus a clean invariant log — the
// same composition the fuzz target drives.
func runDiffScript(t *testing.T, sc Script) {
	t.Helper()
	net, orc, err := NewPair(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	checker := NewChecker(net)
	net.Observe(checker)
	if err := Compare(net, orc, sc); err != nil {
		t.Fatal(err)
	}
	if err := checker.Err(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

// TestEngineMatchesOracle runs the differential harness over deterministic
// scripts covering the static regime, loss, churn and the sharded engine
// (n above the 4096-node sharding threshold with several workers).
func TestEngineMatchesOracle(t *testing.T) {
	scripts := map[string]Script{
		"small-static": {N: 40, Rounds: 10, NetSeed: 1, ProtoSeed: 2, Workers: 1},
		"loss":         {N: 64, Rounds: 10, NetSeed: 3, ProtoSeed: 4, LossRate: 0.3, LossSeed: 9},
		"churn":        {N: 100, Rounds: 12, NetSeed: 5, ProtoSeed: 6, Churn: true, ChurnSeed: 7},
		"sharded":      {N: 5000, Rounds: 6, NetSeed: 8, ProtoSeed: 9, Workers: 8, Churn: true, ChurnSeed: 10, LossRate: 0.05, LossSeed: 11},
		"two-nodes":    {N: 2, Rounds: 8, NetSeed: 12, ProtoSeed: 13, Churn: true, ChurnSeed: 14},
		"high-loss":    {N: 30, Rounds: 8, NetSeed: 15, ProtoSeed: 16, LossRate: 0.95, LossSeed: 17},
	}
	for name, sc := range scripts {
		t.Run(name, func(t *testing.T) { runDiffScript(t, sc) })
	}
}

// brokenEngine wraps the real engine and injects one of the classic bugs the
// differential harness exists to catch. Mode "truncate" simulates an
// off-by-one in the inbox prefix pass (the last message of every inbox is
// lost); mode "delta" under-reports the round's Δ; mode "order" delivers the
// first inbox reversed.
type brokenEngine struct {
	*phonecall.Network
	mode string
}

func (b *brokenEngine) ExecRound(
	intentOf func(i int) phonecall.Intent,
	responseOf func(i int) (phonecall.Message, bool),
	deliver func(i int, inbox []phonecall.Message),
) phonecall.RoundReport {
	wrapped := deliver
	if deliver != nil {
		switch b.mode {
		case "truncate":
			wrapped = func(i int, inbox []phonecall.Message) {
				deliver(i, inbox[:len(inbox)-1])
			}
		case "order":
			wrapped = func(i int, inbox []phonecall.Message) {
				rev := make([]phonecall.Message, len(inbox))
				for k, m := range inbox {
					rev[len(inbox)-1-k] = m
				}
				deliver(i, rev)
			}
		}
	}
	rep := b.Network.ExecRound(intentOf, responseOf, wrapped)
	if b.mode == "delta" && rep.MaxComms > 0 {
		rep.MaxComms--
	}
	return rep
}

// TestDiffCatchesSeededBugs proves the oracle is genuinely independent: an
// engine with a deliberately seeded bug — inbox off-by-one, wrong Δ, wrong
// delivery order — must diverge from the oracle under the same script that
// runs clean on the real engine.
func TestDiffCatchesSeededBugs(t *testing.T) {
	sc := Script{N: 120, Rounds: 6, NetSeed: 21, ProtoSeed: 22}
	for _, mode := range []string{"truncate", "delta", "order"} {
		t.Run(mode, func(t *testing.T) {
			net, orc, err := NewPair(sc, false)
			if err != nil {
				t.Fatal(err)
			}
			err = Compare(&brokenEngine{Network: net, mode: mode}, orc, sc)
			if err == nil {
				t.Fatalf("differential harness missed the seeded %q bug", mode)
			}
			t.Logf("caught: %v", err)
		})
	}
}

// TestScenarioDiffTimelines runs full scenario timelines — churn waves,
// loss changes, multi-rumor injection, all three steppable protocols —
// through scenario.Run and the oracle-side reference run.
func TestScenarioDiffTimelines(t *testing.T) {
	base := []scenario.Event{
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
		scenario.InjectRumor{At: 4, Node: 5, Rumor: 3},
		scenario.Loss{At: 3, Rate: 0.1, Seed: 5},
		scenario.CrashAt{At: 6, Nodes: []int{1, 2, 3, 17}},
		scenario.JoinAt{At: 12, Nodes: []int{1, 2}},
		scenario.Loss{At: 14, Rate: 0, Seed: 0},
	}
	for _, algo := range scenario.Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			sc := scenario.Scenario{
				Name:      "diff-" + string(algo),
				N:         300,
				Rounds:    20,
				Algorithm: algo,
				Events:    base,
			}
			if err := ScenarioDiff(sc, scenario.Config{Seed: 77, Workers: 3}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScenarioDiffShardedEngine crosses the scenario path with the sharded
// engine: n above the sharding threshold, several workers.
func TestScenarioDiffShardedEngine(t *testing.T) {
	sc := scenario.Scenario{
		Name:   "diff-sharded",
		N:      5000,
		Rounds: 10,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.CrashAt{At: 4, Nodes: []int{0, 10, 20, 30, 40}},
			scenario.JoinAt{At: 7, Nodes: []int{0, 10}},
			scenario.Loss{At: 2, Rate: 0.2, Seed: 3},
		},
	}
	if err := ScenarioDiff(sc, scenario.Config{Seed: 5, Workers: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioDiffCatchesTampering sanity-checks the comparator itself: two
// different seeds must NOT compare equal (the deep comparison is not
// vacuously true).
func TestScenarioDiffCatchesTampering(t *testing.T) {
	sc := scenario.Scenario{
		Name:   "tamper",
		N:      200,
		Rounds: 12,
		Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}},
	}
	a, err := scenario.Run(context.Background(), sc, scenario.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := referenceScenarioRun(sc, scenario.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages == b.Messages && a.Bits == b.Bits {
		t.Fatal("different seeds produced identical traffic — comparator would be vacuous")
	}
	if err := ScenarioDiff(sc, scenario.Config{Seed: 1}); err != nil {
		t.Fatalf("clean scenario reported divergence: %v", err)
	}
}
