package oracle

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/phonecall"
)

// Checker is the invariant-checking engine wrapper: registered on a live
// Network through the RoundObserver seam (net.Observe(checker)), it watches
// every intent, response and delivery the engine evaluates and validates the
// per-round model contracts of DESIGN.md §2 under ANY protocol — the
// paper's closed clustering algorithms as much as the steppable scenario
// protocols:
//
//   - each live node's intent is evaluated exactly once per round; dead
//     nodes never act (no intent, no response, no delivery);
//   - responses are evaluated at most once per node, and only for nodes a
//     live pull actually reached;
//   - the communication, message, bit and pull charges match the
//     live-participant rule, including the round's Δ and the cumulative
//     metrics deltas;
//   - every inbox matches the model's content and order (by initiator
//     index, a puller's own response at its initiator position), and the
//     delivered spans of the arena are pairwise disjoint.
//
// Expected charges and inboxes are recomputed from the observed intents with
// the same spec evaluator the reference Oracle runs on — the model
// definition, not the engine's code.
//
// The checks split into two classes with different scopes:
//
//   - MODEL invariants (everything above): properties of the execution
//     machinery — exactly-once evaluation, the live-participant charges,
//     inbox order, arena discipline. These hold no matter what the nodes
//     send, so they are asserted unconditionally, Byzantine behaviors
//     included: the engine wraps behaviors before the observer taps the
//     callbacks, so the Checker always sees (and re-charges) the traffic
//     that was actually sent.
//
//   - HONEST-NODE invariants: properties of a node following the protocol —
//     a holdings message advertises only rumors the sender actually holds
//     and only rumors that exist (no forged bits). These are meaningless for
//     a corrupted node, so they are asserted exactly for the nodes without
//     an installed behavior (phonecall.Network.Corrupted), and only when the
//     Checker has been handed the run's rumor tracker (BindTracker; the
//     scenario driver does this for tracker-aware observers). Without a
//     tracker, holdings are unknowable and the honest checks stay off.
//
// Violations are collected (capped) rather than panicking; check Err after
// the run. The Checker is safe for the engine's concurrent shards.
type Checker struct {
	net     *phonecall.Network
	tracker *phonecall.RumorTracker
	info    phonecall.RoundInfo

	round       int
	prevMetrics phonecall.Metrics

	intentSeen  []atomic.Int32
	intents     []phonecall.Intent
	respSeen    []atomic.Int32
	resps       []phonecall.Message
	respOK      []bool
	deliverSeen []atomic.Int32
	inboxes     [][]phonecall.Message
	spans       [][2]uintptr

	mu   sync.Mutex
	errs []error
}

// maxViolations caps how many violations a Checker records; everything past
// the cap is dropped (the first violation is what matters).
const maxViolations = 16

// NewChecker builds a Checker for the network. Register it with
// net.Observe(c); it validates every subsequent round until unregistered.
func NewChecker(net *phonecall.Network) *Checker {
	c := &Checker{}
	c.BindNetwork(net)
	return c
}

// NewDeferredChecker builds a Checker with no network yet, for drivers that
// construct their network internally and bind observers through the
// phonecall.NetworkBinder seam (the scenario driver). The Checker sizes its
// state at BindNetwork time.
func NewDeferredChecker() *Checker { return &Checker{} }

// BindNetwork implements phonecall.NetworkBinder. The first bound network
// wins; rebinding is ignored.
func (c *Checker) BindNetwork(net *phonecall.Network) {
	if c.net != nil {
		return
	}
	n := net.N()
	c.net = net
	c.intentSeen = make([]atomic.Int32, n)
	c.intents = make([]phonecall.Intent, n)
	c.respSeen = make([]atomic.Int32, n)
	c.resps = make([]phonecall.Message, n)
	c.respOK = make([]bool, n)
	c.deliverSeen = make([]atomic.Int32, n)
	c.inboxes = make([][]phonecall.Message, n)
	c.spans = make([][2]uintptr, 0, n)
}

// BindTracker implements phonecall.TrackerBinder: handing the Checker the
// run's rumor tracker switches the honest-node invariants on (for
// uncorrupted nodes). The scenario driver binds it automatically.
func (c *Checker) BindTracker(tr *phonecall.RumorTracker) { c.tracker = tr }

// violate records one contract violation.
func (c *Checker) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) < maxViolations {
		c.errs = append(c.errs, fmt.Errorf("round %d: "+format, append([]any{c.round}, args...)...))
	}
}

// Err returns the first recorded violation, or nil.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

// Violations returns every recorded violation (capped at maxViolations).
func (c *Checker) Violations() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// BeginRound implements phonecall.RoundObserver.
func (c *Checker) BeginRound(round int, info phonecall.RoundInfo) {
	c.round = round
	c.info = info
	c.prevMetrics = c.net.Metrics()
	for i := range c.intents {
		c.intentSeen[i].Store(0)
		c.respSeen[i].Store(0)
		c.deliverSeen[i].Store(0)
		c.inboxes[i] = nil
	}
	c.spans = c.spans[:0]
}

// ObserveIntent implements phonecall.RoundObserver. Shard goroutine; writes
// are index-owned, counters atomic.
func (c *Checker) ObserveIntent(i int, it phonecall.Intent) {
	if c.intentSeen[i].Add(1) == 1 {
		c.intents[i] = it
	} else {
		c.violate("node %d: intent evaluated more than once", i)
	}
	if c.net.IsFailed(i) {
		c.violate("node %d: dead node initiated a call", i)
	}
	if it.Kind == phonecall.Push || it.Kind == phonecall.Exchange {
		c.checkHonest(i, it.Payload, "payload")
	}
}

// checkHonest asserts the honest-node contract on one outgoing holdings
// message: an uncorrupted node advertises only rumors it actually holds and
// only rumors that exist. Skipped exactly for corrupted nodes, and entirely
// when no tracker is bound (holdings unknowable). Safe from shard
// goroutines: holdings only change in the deliver pass, which runs after
// every intent and response evaluation of the round.
func (c *Checker) checkHonest(i int, m phonecall.Message, what string) {
	if c.tracker == nil || m.Tag != phonecall.TagHoldings || c.net.Corrupted(i) {
		return
	}
	if forged := m.Value &^ c.tracker.Registered(); forged != 0 {
		c.violate("node %d: honest node's %s carries forged rumor bits %#x (no such rumors)", i, what, forged)
	}
	if over := m.Value &^ c.tracker.Held(i); over != 0 {
		c.violate("node %d: honest node's %s advertises rumors %#x it does not hold", i, what, over)
	}
}

// ObserveResponse implements phonecall.RoundObserver.
func (c *Checker) ObserveResponse(i int, m phonecall.Message, ok bool) {
	if c.respSeen[i].Add(1) == 1 {
		c.resps[i] = m
		c.respOK[i] = ok
	} else {
		c.violate("node %d: responseOf evaluated more than once", i)
	}
	if c.net.IsFailed(i) {
		c.violate("node %d: dead node was asked to respond", i)
	}
	if ok {
		c.checkHonest(i, m, "response")
	}
}

// ObserveDeliver implements phonecall.RoundObserver. Copies the inbox (the
// slice aliases the arena) and records its physical span for the
// disjointness check.
func (c *Checker) ObserveDeliver(i int, inbox []phonecall.Message) {
	if c.deliverSeen[i].Add(1) == 1 {
		cp := make([]phonecall.Message, len(inbox))
		copy(cp, inbox)
		c.inboxes[i] = cp
	} else {
		c.violate("node %d: inbox delivered more than once", i)
	}
	if c.net.IsFailed(i) {
		c.violate("node %d: delivery to a dead node", i)
	}
	if len(inbox) == 0 {
		c.violate("node %d: delivery of an empty inbox", i)
	} else {
		start := uintptr(unsafe.Pointer(unsafe.SliceData(inbox)))
		end := start + uintptr(len(inbox))*unsafe.Sizeof(phonecall.Message{})
		c.mu.Lock()
		c.spans = append(c.spans, [2]uintptr{start, end})
		c.mu.Unlock()
	}
}

// EndRound implements phonecall.RoundObserver: replays the observed intents
// through the model spec and validates every charge and every inbox.
// Coordinator goroutine, after all passes.
func (c *Checker) EndRound(rep phonecall.RoundReport) {
	if rep.Round != c.round {
		c.violate("report carries round %d", rep.Round)
	}
	n := c.net.N()
	if !c.info.HasIntent {
		// Empty round: nothing may have been evaluated or delivered.
		for i := 0; i < n; i++ {
			if c.intentSeen[i].Load() != 0 || c.respSeen[i].Load() != 0 || c.deliverSeen[i].Load() != 0 {
				c.violate("node %d: activity in an empty round", i)
			}
		}
		if rep.Messages != 0 || rep.Bits != 0 || rep.MaxComms != 0 {
			c.violate("charges in an empty round: %+v", rep)
		}
		return
	}

	// Exactly-once intent evaluation for the live population.
	for i := 0; i < n; i++ {
		seen := c.intentSeen[i].Load()
		if c.net.IsFailed(i) {
			continue // dead-node activity was flagged at observation time
		}
		if seen != 1 {
			c.violate("node %d: live node's intent evaluated %d times", i, seen)
		}
	}

	// Replay the observed intents through the model definition. An installed
	// peer selector is part of the network's contract, so the replay resolves
	// random targets through it too (the selector is a pure function of
	// (round, initiator) during the round — re-asking it is safe).
	env := roundEnv{
		N:           n,
		Round:       c.round,
		Seed:        c.net.Seed(),
		LossRate:    c.net.LossRate(),
		LossSeed:    c.net.LossSeed(),
		IsFailed:    c.net.IsFailed,
		ID:          c.net.ID,
		IndexOf:     c.net.IndexOf,
		MessageBits: c.net.MessageSize,
		ControlBits: c.net.ControlBits(),
	}
	if sel := c.net.PeerSelector(); sel != nil {
		env.SelectPeer = sel.SelectPeer
	}
	s := newSpecRound(env)
	for i := 0; i < n; i++ {
		if !c.net.IsFailed(i) && c.intentSeen[i].Load() > 0 {
			s.addIntent(i, c.intents[i])
		}
	}
	pulledSet := make(map[int]bool)
	for _, d := range s.pulled() {
		pulledSet[d] = true
		if c.info.HasResponse {
			if c.respSeen[d].Load() != 1 {
				c.violate("node %d: pulled node's response evaluated %d times", d, c.respSeen[d].Load())
			} else {
				s.addResponse(d, c.resps[d], c.respOK[d])
			}
		}
	}
	for d := 0; d < n; d++ {
		if c.respSeen[d].Load() > 0 && !pulledSet[d] {
			c.violate("node %d: responded without a live pull reaching it", d)
		}
	}

	// Charges: the round report and the cumulative metrics must match the
	// live-participant rule applied to the observed intents.
	want := s.report()
	if rep != want {
		c.violate("report %+v does not match the model's %+v", rep, want)
	}
	cur := c.net.Metrics()
	if d := cur.Messages - c.prevMetrics.Messages; d != s.msgs {
		c.violate("payload message delta %d, model says %d", d, s.msgs)
	}
	if d := cur.ControlMessages - c.prevMetrics.ControlMessages; d != s.control {
		c.violate("control message delta %d, model says %d", d, s.control)
	}
	if d := cur.Bits - c.prevMetrics.Bits; d != s.bits {
		c.violate("bit delta %d, model says %d", d, s.bits)
	}
	wantMax := c.prevMetrics.MaxCommsPerRound
	if mc := s.maxComms(); mc > wantMax {
		wantMax = mc
	}
	if cur.MaxCommsPerRound != wantMax {
		c.violate("cumulative Δ %d, model says %d", cur.MaxCommsPerRound, wantMax)
	}
	for i := 0; i < n; i++ {
		if d := cur.MessagesSent[i] - c.prevMetrics.MessagesSent[i]; d != s.sent[i] {
			c.violate("node %d: sent-counter delta %d, model says %d", i, d, s.sent[i])
		}
	}

	// Inboxes: exact content and order, delivered iff non-empty.
	expected := s.inboxes()
	for i := 0; i < n; i++ {
		delivered := c.deliverSeen[i].Load() > 0
		if want := len(expected[i]) > 0; delivered != want {
			c.violate("node %d: delivered=%v but the model's inbox has %d messages",
				i, delivered, len(expected[i]))
			continue
		}
		if delivered && !reflect.DeepEqual(c.inboxes[i], expected[i]) {
			c.violate("node %d: inbox diverges from the model:\n  engine: %+v\n  model:  %+v",
				i, c.inboxes[i], expected[i])
		}
	}

	// Arena spans: every delivered inbox must occupy its own slice of the
	// arena; overlapping spans would mean one node's inbox aliases another's.
	sort.Slice(c.spans, func(a, b int) bool { return c.spans[a][0] < c.spans[b][0] })
	for k := 1; k < len(c.spans); k++ {
		if c.spans[k][0] < c.spans[k-1][1] {
			c.violate("inbox arena spans overlap: [%x,%x) and [%x,%x)",
				c.spans[k-1][0], c.spans[k-1][1], c.spans[k][0], c.spans[k][1])
		}
	}
}
