package oracle

// Native fuzz targets for the differential harness. Both run in normal
// `go test` mode over the checked-in seed corpus (testdata/fuzz/...), and CI
// additionally runs each with -fuzz for a short budget so fresh inputs keep
// probing the engine after every change.
//
//	go test ./internal/oracle -run=NONE -fuzz=FuzzEngineVsOracle -fuzztime=30s
//	go test ./internal/oracle -run=NONE -fuzz=FuzzScenarioVsOracle -fuzztime=30s
//	go test ./internal/oracle -run=NONE -fuzz=FuzzAdversaryVsOracle -fuzztime=30s

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// FuzzEngineVsOracle fuzzes network size, seeds, round budget, worker count,
// loss rate and the churn script through Compare, with the engine running
// under inbox poisoning and the invariant Checker. Any divergence between
// the sharded engine and the naive reference — one message, one bit, one Δ —
// fails the target.
func FuzzEngineVsOracle(f *testing.F) {
	f.Add(uint16(40), uint64(1), uint64(2), uint64(3), uint8(8), uint8(1), uint8(0))
	f.Add(uint16(300), uint64(4), uint64(5), uint64(6), uint8(10), uint8(3), uint8(30))
	f.Add(uint16(4500), uint64(7), uint64(8), uint64(9), uint8(4), uint8(8), uint8(5))
	f.Add(uint16(2), uint64(10), uint64(11), uint64(12), uint8(6), uint8(2), uint8(95))
	f.Add(uint16(1000), uint64(13), uint64(14), uint64(15), uint8(12), uint8(4), uint8(50))
	f.Fuzz(func(t *testing.T, n uint16, netSeed, protoSeed, churnSeed uint64, rounds, workers, lossPct uint8) {
		sc := Script{
			N:         2 + int(n)%5999,
			Rounds:    1 + int(rounds)%12,
			NetSeed:   netSeed,
			Workers:   1 + int(workers)%8,
			ProtoSeed: protoSeed,
			LossRate:  float64(lossPct%101) / 100,
			LossSeed:  netSeed ^ 0x10c0,
			Churn:     true,
			ChurnSeed: churnSeed,
		}
		net, orc, err := NewPair(sc, true)
		if err != nil {
			t.Fatal(err)
		}
		checker := NewChecker(net)
		net.Observe(checker)
		if err := Compare(net, orc, sc); err != nil {
			t.Fatal(err)
		}
		if err := checker.Err(); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
	})
}

// decodeEvents turns fuzz bytes into a bounded scenario timeline: five bytes
// per event select the kind, round and parameters. Node selections reuse the
// oblivious Section 8 adversary so they stay valid for any n.
func decodeEvents(raw []byte, n, rounds int) []scenario.Event {
	events := []scenario.Event{
		// Every scenario must inject at least one rumor to be valid.
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
	}
	for off := 0; off+5 <= len(raw) && len(events) < 13; off += 5 {
		b := raw[off : off+5]
		at := 1 + int(b[1])%rounds
		pick := uint64(b[3])<<8 | uint64(b[4])
		switch b[0] % 5 {
		case 0:
			events = append(events, scenario.InjectRumor{
				At: at, Node: int(pick) % n, Rumor: phonecall.RumorID(b[2] % 8),
			})
		case 1:
			count := 1 + int(b[2])%(n/2+1)
			events = append(events, scenario.CrashAt{
				At: at, Nodes: failure.Random{Count: count, Seed: pick}.Select(n),
			})
		case 2:
			count := 1 + int(b[2])%(n/2+1)
			events = append(events, scenario.JoinAt{
				At: at, Nodes: failure.Random{Count: count, Seed: pick}.Select(n),
			})
		case 3:
			events = append(events, scenario.Loss{
				At: at, Rate: float64(b[2]%101) / 100, Seed: pick,
			})
		case 4:
			events = append(events, scenario.Loss{At: at})
		}
	}
	return events
}

// decodeAdversaryEvents is decodeEvents with the Byzantine library in the
// mix: six bytes per event select inject/crash/join/loss or one of the four
// corrupt kinds, so adversaries combine freely with churn and loss.
func decodeAdversaryEvents(raw []byte, n, rounds int) []scenario.Event {
	events := []scenario.Event{
		scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
	}
	for off := 0; off+6 <= len(raw) && len(events) < 13; off += 6 {
		b := raw[off : off+6]
		at := 1 + int(b[1])%rounds
		pick := uint64(b[3])<<8 | uint64(b[4])
		count := 1 + int(b[2])%(n/4+1)
		nodes := failure.Random{Count: count, Seed: pick}.Select(n)
		corrupt := func(spec scenario.AdversarySpec) scenario.Event {
			return scenario.CorruptAt{At: at, Nodes: nodes, Adversary: spec}
		}
		switch b[0] % 8 {
		case 0:
			events = append(events, scenario.InjectRumor{
				At: at, Node: int(pick) % n, Rumor: phonecall.RumorID(b[2] % 8),
			})
		case 1:
			events = append(events, scenario.CrashAt{At: at, Nodes: nodes})
		case 2:
			events = append(events, scenario.JoinAt{At: at, Nodes: nodes})
		case 3:
			events = append(events, scenario.Loss{
				At: at, Rate: float64(b[5]%101) / 100, Seed: pick,
			})
		case 4:
			events = append(events, corrupt(scenario.AdversarySpec{Kind: scenario.AdvLiar, Seed: pick}))
		case 5:
			events = append(events, corrupt(scenario.AdversarySpec{
				Kind: scenario.AdvSpammer, Rate: float64(b[5]%101) / 100, Seed: pick,
			}))
		case 6:
			victims := failure.Random{Count: 1 + int(b[5])%3, Seed: pick ^ 0xec1}.Select(n)
			events = append(events, corrupt(scenario.AdversarySpec{Kind: scenario.AdvEclipse, Victims: victims}))
		case 7:
			events = append(events, corrupt(scenario.AdversarySpec{Kind: scenario.AdvStale}))
		}
	}
	return events
}

// FuzzAdversaryVsOracle fuzzes adversarial scripts — Byzantine behaviors
// scheduled, targeted and combined with churn and loss — through the
// scenario differential AND the invariant Checker riding the driver's
// observer seam. It locks three properties at once: the engine's behavior
// wrap matches the reference's, the model invariants hold under every
// adversary, and the honest-node invariants are skipped exactly for the
// corrupted nodes (a violation for an honest node fails the target).
func FuzzAdversaryVsOracle(f *testing.F) {
	f.Add(uint16(100), uint64(1), uint8(1), uint8(2), uint8(12), []byte{4, 2, 10, 0, 9, 0})
	f.Add(uint16(300), uint64(2), uint8(3), uint8(2), uint8(16), []byte{5, 3, 20, 0, 7, 50})
	f.Add(uint16(200), uint64(3), uint8(2), uint8(0), uint8(10), []byte{6, 1, 5, 0, 3, 2})
	f.Add(uint16(150), uint64(4), uint8(4), uint8(1), uint8(14), []byte{7, 9, 8, 0, 4, 0})
	f.Add(uint16(400), uint64(5), uint8(2), uint8(2), uint8(20),
		[]byte{4, 2, 10, 0, 9, 0, 1, 5, 8, 0, 3, 0, 3, 4, 10, 0, 6, 30})
	f.Fuzz(func(t *testing.T, n uint16, seed uint64, workers, algoRaw, rounds uint8, raw []byte) {
		size := 2 + int(n)%4999
		budget := 1 + int(rounds)%40
		sc := scenario.Scenario{
			Name:      "adversary-fuzz",
			N:         size,
			Rounds:    budget,
			Algorithm: scenario.Algorithms()[int(algoRaw)%3],
			Events:    decodeAdversaryEvents(raw, size, budget),
		}
		if err := sc.Validate(); err != nil {
			t.Skip(err)
		}
		checker := NewDeferredChecker()
		cfg := scenario.Config{Seed: seed, Workers: 1 + int(workers)%8, Observer: checker}
		if err := ScenarioDiff(sc, cfg); err != nil {
			t.Fatal(err)
		}
		if err := checker.Err(); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
	})
}

// FuzzScenarioVsOracle fuzzes whole dynamic-network scenarios — protocol,
// timeline, worker count — through scenario.Run and the oracle-side
// reference run, requiring identical Results down to every phase report and
// rumor outcome.
func FuzzScenarioVsOracle(f *testing.F) {
	f.Add(uint16(100), uint64(1), uint8(1), uint8(0), uint8(10), []byte{})
	f.Add(uint16(300), uint64(2), uint8(3), uint8(1), uint8(20), []byte{1, 4, 50, 0, 9, 3, 2, 10, 0, 5})
	f.Add(uint16(4500), uint64(3), uint8(8), uint8(2), uint8(8), []byte{0, 3, 2, 0, 77, 1, 5, 120, 1, 1})
	f.Add(uint16(50), uint64(4), uint8(2), uint8(0), uint8(30), []byte{2, 8, 10, 0, 3, 4, 12, 0, 0, 0, 0, 2, 40, 1, 2})
	f.Fuzz(func(t *testing.T, n uint16, seed uint64, workers, algoRaw, rounds uint8, raw []byte) {
		size := 2 + int(n)%4999
		budget := 1 + int(rounds)%40
		sc := scenario.Scenario{
			Name:      "fuzz",
			N:         size,
			Rounds:    budget,
			Algorithm: scenario.Algorithms()[int(algoRaw)%3],
			Events:    decodeEvents(raw, size, budget),
		}
		if err := sc.Validate(); err != nil {
			t.Skip(err)
		}
		cfg := scenario.Config{Seed: seed, Workers: 1 + int(workers)%8}
		if err := ScenarioDiff(sc, cfg); err != nil {
			t.Fatal(err)
		}
	})
}
