// Package oracle is the verification subsystem of the reproduction: an
// independent re-implementation of the phone-call model that the optimized,
// sharded engine (internal/phonecall) is checked against.
//
// Three layers build on each other:
//
//   - Oracle is a deliberately naive, single-threaded reference engine
//     written straight from the model definition in DESIGN.md §2 — plain
//     maps and slices, one pass in node order, no arenas, no shards. It
//     reproduces ExecRound, Fail/Revive, and oblivious per-call loss
//     bit-for-bit, so any divergence between it and the real engine is a
//     bug in one of them.
//   - The differential harness (diff.go, scenariodiff.go) runs randomized
//     protocols, churn scripts and scenario timelines through both engines
//     and asserts bit-identical traces, metrics and Δ accounting. It backs
//     the native fuzz targets FuzzEngineVsOracle and FuzzScenarioVsOracle.
//   - Checker (invariants.go) wraps a live Network through the engine's
//     RoundObserver seam and validates the per-round model contracts under
//     any protocol, closed or steppable.
//
// The package is the standing conformance gate for engine changes: perf work
// on internal/phonecall must keep `go test ./internal/oracle` and the fuzz
// corpus green.
package oracle

import (
	"fmt"
	"math/bits"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// Oracle is the naive reference engine. It accepts the same Config and
// exposes the same execution surface as phonecall.Network (ExecRound, Fail,
// Revive, SetLoss, OnRoundStart, Metrics), and is documented to produce
// bit-identical results; Workers and PoisonInbox are ignored — the oracle is
// always single-threaded and callers always receive freshly built inboxes.
type Oracle struct {
	n           int
	seed        uint64
	payloadBits int
	idBits      int
	counterBits int
	tagBits     int

	ids    []phonecall.NodeID
	index  map[phonecall.NodeID]int
	failed map[int]bool

	round      int
	lossRate   float64
	lossSeed   uint64
	hook       func(round int)
	selectPeer func(round, i int) (int, bool)

	messages int64
	control  int64
	bits     int64
	maxComms int
	sent     []int64
}

// New builds a reference network from the same Config the engine takes.
// Node IDs follow the documented assignment procedure — successive draws
// from the SplitMix-seeded stream rng.New(rng.Mix(seed, 0x1d5)), each
// shifted into the non-zero 63-bit space and retried on collision — so an
// Oracle and a Network with the same Config have identical ID directories.
func New(cfg phonecall.Config) (*Oracle, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("oracle: network needs at least 2 nodes (got %d)", cfg.N)
	}
	if cfg.PayloadBits <= 0 {
		cfg.PayloadBits = phonecall.DefaultPayloadBits
	}
	logN := bits.Len(uint(cfg.N))
	o := &Oracle{
		n:           cfg.N,
		seed:        cfg.Seed,
		payloadBits: cfg.PayloadBits,
		idBits:      max(16, 2*logN),
		counterBits: logN + 1,
		tagBits:     8,
		ids:         make([]phonecall.NodeID, cfg.N),
		index:       make(map[phonecall.NodeID]int, cfg.N),
		failed:      make(map[int]bool),
		sent:        make([]int64, cfg.N),
	}
	idSource := rng.New(rng.Mix(cfg.Seed, 0x1d5))
	for i := 0; i < cfg.N; i++ {
		for {
			id := phonecall.NodeID(idSource.Uint64()>>1) + 1
			if _, taken := o.index[id]; !taken {
				o.ids[i] = id
				o.index[id] = i
				break
			}
		}
	}
	return o, nil
}

// N returns the number of nodes (including failed ones).
func (o *Oracle) N() int { return o.n }

// LiveCount returns the number of non-failed nodes.
func (o *Oracle) LiveCount() int { return o.n - len(o.failed) }

// Seed returns the execution seed.
func (o *Oracle) Seed() uint64 { return o.seed }

// PayloadBits returns b, the rumor size in bits.
func (o *Oracle) PayloadBits() int { return o.payloadBits }

// ID returns the ID of the node with the given index.
func (o *Oracle) ID(i int) phonecall.NodeID { return o.ids[i] }

// IndexOf returns the index of a node ID.
func (o *Oracle) IndexOf(id phonecall.NodeID) (int, bool) {
	i, ok := o.index[id]
	return i, ok
}

// IsFailed reports whether node i is failed.
func (o *Oracle) IsFailed(i int) bool { return o.failed[i] }

// Round returns the number of rounds executed so far.
func (o *Oracle) Round() int { return o.round }

// Fail marks nodes as failed; out-of-range and already-failed indexes are
// ignored. Between rounds only, like the engine.
func (o *Oracle) Fail(indexes ...int) {
	for _, i := range indexes {
		if i >= 0 && i < o.n {
			o.failed[i] = true
		}
	}
}

// Revive marks failed nodes as live again; out-of-range and live indexes are
// ignored.
func (o *Oracle) Revive(indexes ...int) {
	for _, i := range indexes {
		if i >= 0 && i < o.n {
			delete(o.failed, i)
		}
	}
}

// SetLoss configures oblivious per-call loss from the next round on; rate is
// clamped to [0, 1].
func (o *Oracle) SetLoss(rate float64, seed uint64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	o.lossRate = rate
	o.lossSeed = seed
}

// LossRate returns the per-call drop probability currently in effect.
func (o *Oracle) LossRate() float64 { return o.lossRate }

// OnRoundStart registers a hook invoked after the round counter advances and
// before any intent is evaluated. A nil hook unregisters.
func (o *Oracle) OnRoundStart(hook func(round int)) { o.hook = hook }

// SetSelectPeer installs a policy-driven random-contact resolver, the
// reference twin of phonecall.Network.SetPeerSelector: every random target
// from the next round on is sel's answer for (round, initiator), and ok=false
// charges the initiator without reaching anybody. A nil sel restores the
// uniform contract. Like Fail and SetLoss, only call between rounds.
func (o *Oracle) SetSelectPeer(sel func(round, i int) (int, bool)) { o.selectPeer = sel }

// MessageSize returns the size in bits of a message under the paper's
// accounting rules.
func (o *Oracle) MessageSize(m phonecall.Message) int {
	if m.Bits > 0 {
		return m.Bits
	}
	size := o.tagBits + o.counterBits + len(m.IDs)*o.idBits
	if m.Rumor {
		size += o.payloadBits
	}
	return size
}

// ControlBits returns the size in bits of a pull request.
func (o *Oracle) ControlBits() int { return o.tagBits + o.idBits }

// Metrics returns a copy of the accumulated metrics.
func (o *Oracle) Metrics() phonecall.Metrics {
	return phonecall.Metrics{
		Rounds:           o.round,
		Messages:         o.messages,
		ControlMessages:  o.control,
		Bits:             o.bits,
		MaxCommsPerRound: o.maxComms,
		MessagesSent:     append([]int64(nil), o.sent...),
	}
}

// env binds the spec evaluator to the oracle's current state.
func (o *Oracle) env() roundEnv {
	return roundEnv{
		N:        o.n,
		Round:    o.round,
		Seed:     o.seed,
		LossRate: o.lossRate,
		LossSeed: o.lossSeed,
		IsFailed: o.IsFailed,
		ID:       o.ID,
		IndexOf:  o.IndexOf,
		MessageBits: func(m phonecall.Message) int {
			return o.MessageSize(m)
		},
		ControlBits: o.ControlBits(),
		SelectPeer:  o.selectPeer,
	}
}

// ExecRound executes one synchronous round under the same callback contract
// as the engine: intentOf once per live node, responseOf at most once per
// pulled node, deliver once per node that received messages, inboxes ordered
// by initiator index. A nil intentOf is an empty round.
func (o *Oracle) ExecRound(
	intentOf func(i int) phonecall.Intent,
	responseOf func(i int) (phonecall.Message, bool),
	deliver func(i int, inbox []phonecall.Message),
) phonecall.RoundReport {
	o.round++
	if o.hook != nil {
		o.hook(o.round)
	}
	if intentOf == nil {
		return phonecall.RoundReport{Round: o.round}
	}

	s := newSpecRound(o.env())
	for i := 0; i < o.n; i++ {
		if o.failed[i] {
			continue
		}
		s.addIntent(i, intentOf(i))
	}
	if responseOf != nil {
		for _, d := range s.pulled() {
			m, ok := responseOf(d)
			s.addResponse(d, m, ok)
		}
	}
	if deliver != nil {
		for d, inbox := range s.inboxes() {
			if len(inbox) > 0 {
				deliver(d, inbox)
			}
		}
	}

	o.messages += s.msgs
	o.control += s.control
	o.bits += s.bits
	if mc := s.maxComms(); mc > o.maxComms {
		o.maxComms = mc
	}
	for i, d := range s.sent {
		o.sent[i] += d
	}
	return s.report()
}
