package oracle

import (
	"context"
	"fmt"
	"math/bits"
	"reflect"
	"sort"

	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// Scenario differential: run a dynamic-network scenario through the real
// driver (scenario.Run — steppable protocols, RumorTracker, the sharded
// engine) and through a naive re-implementation on the reference Oracle —
// holdings as plain bitmask slices, live-informed counts recomputed by
// scanning, events applied by type switch — and demand identical Results:
// every phase report, every rumor outcome, every metric.

// ScenarioDiff executes the scenario both ways and returns a description of
// the first divergence (nil when the two executions agree). The scenario
// must be valid; validation errors are returned as-is.
func ScenarioDiff(sc scenario.Scenario, cfg scenario.Config) error {
	want, err := scenario.Run(context.Background(), sc, cfg)
	if err != nil {
		return err
	}
	got, err := referenceScenarioRun(sc, cfg)
	if err != nil {
		return fmt.Errorf("oracle: reference scenario run: %w", err)
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("oracle: scenario %q diverges:\n  driver:    %+v\n  reference: %+v", sc.Name, want, got)
	}
	return nil
}

// refTracker is the naive rumor bookkeeping: one holdings bitmask per node,
// live-informed counts recomputed by scanning every node on demand. behav
// holds the per-node Byzantine behaviors installed by CorruptAt events
// (nil = honest), applied around the reference protocol exactly like the
// engine's own behavior wrap.
type refTracker struct {
	o     *Oracle
	held  []uint64
	used  uint64
	behav []phonecall.Behavior
}

func (t *refTracker) liveInformed(r phonecall.RumorID) int {
	count := 0
	for i, h := range t.held {
		if h&(1<<r) != 0 && !t.o.IsFailed(i) {
			count++
		}
	}
	return count
}

// informedCounts mirrors the driver's per-phase snapshot: every registered
// rumor in ascending ID order with its live-informed count.
func (t *refTracker) informedCounts() []scenario.RumorCount {
	var out []scenario.RumorCount
	for id := 0; id < phonecall.MaxRumors; id++ {
		if t.used&(1<<id) != 0 {
			r := phonecall.RumorID(id)
			out = append(out, scenario.RumorCount{Rumor: r, LiveInformed: t.liveInformed(r)})
		}
	}
	return out
}

// applyEvent applies one timeline event to the reference state, mirroring
// the semantics of Event.Apply under the scenario driver (crash keeps
// holdings, join clears them, inject registers and marks).
func applyEvent(o *Oracle, t *refTracker, ev scenario.Event) error {
	switch e := ev.(type) {
	case scenario.CrashAt:
		o.Fail(e.Nodes...)
	case scenario.JoinAt:
		for _, i := range e.Nodes {
			if i >= 0 && i < o.N() && o.IsFailed(i) {
				o.Revive(i)
				t.held[i] = 0 // rejoiners start uninformed
			}
		}
	case scenario.Loss:
		o.SetLoss(e.Rate, e.Seed)
	case scenario.InjectRumor:
		if e.Node < 0 || e.Node >= o.N() {
			return fmt.Errorf("inject node %d outside [0,%d)", e.Node, o.N())
		}
		if e.Rumor >= phonecall.MaxRumors {
			return fmt.Errorf("rumor id %d outside [0,%d)", e.Rumor, phonecall.MaxRumors)
		}
		t.used |= 1 << e.Rumor
		t.held[e.Node] |= 1 << e.Rumor
	case scenario.CorruptAt:
		// Mirror CorruptAt.Apply: the same behavior construction, wired to
		// the reference state (stale freezes the node's current reference
		// holdings, the liar forges outside the reference registered mask).
		held := func(i int) uint64 { return t.held[i] }
		registered := func() uint64 { return t.used }
		for _, i := range e.Nodes {
			if i < 0 || i >= o.N() {
				return fmt.Errorf("corrupt node %d outside [0,%d)", i, o.N())
			}
			b, err := e.BehaviorFor(i, held, registered)
			if err != nil {
				return err
			}
			t.behav[i] = b
		}
	default:
		return fmt.Errorf("unknown event type %T", ev)
	}
	return nil
}

// tagRumorSet is the steppable protocols' message discriminator (the
// holdings bitmask travels in Message.Value), fixed by internal/scenario.
const tagRumorSet uint8 = 111

// refProtocol re-implements the steppable multi-rumor protocols against the
// reference state.
type refProtocol struct {
	algo     scenario.Algorithm
	o        *Oracle
	t        *refTracker
	overhead int
}

func (p *refProtocol) message(held uint64) phonecall.Message {
	return phonecall.Message{
		Tag:   tagRumorSet,
		Value: held,
		Rumor: true,
		Bits:  p.overhead + bits.OnesCount64(held)*p.o.PayloadBits(),
	}
}

func (p *refProtocol) intent(i int) phonecall.Intent {
	held := p.t.held[i]
	switch p.algo {
	case scenario.AlgoPush:
		if held == 0 {
			return phonecall.Silent()
		}
		return phonecall.PushIntent(phonecall.RandomTarget(), p.message(held))
	case scenario.AlgoPull:
		if held == p.t.used {
			return phonecall.Silent()
		}
		return phonecall.PullIntent(phonecall.RandomTarget())
	default: // push-pull
		if held == 0 {
			return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
		}
		return phonecall.ExchangeIntent(phonecall.RandomTarget(), p.message(held))
	}
}

func (p *refProtocol) response(j int) (phonecall.Message, bool) {
	if p.algo == scenario.AlgoPush {
		return phonecall.Message{}, false
	}
	held := p.t.held[j]
	if held == 0 {
		return phonecall.Message{}, false
	}
	return p.message(held), true
}

// wrapIntent applies the installed behaviors around the reference protocol's
// intents for one round, mirroring the engine's behavior wrap: the target is
// pre-resolved through the model's documented contracts (RandomPeer for
// random targets, the ID directory for direct ones) before the behavior sees
// the intent.
func (t *refTracker) wrapIntent(round int, intent func(int) phonecall.Intent) func(int) phonecall.Intent {
	return func(i int) phonecall.Intent {
		it := intent(i)
		b := t.behav[i]
		if b == nil {
			return it
		}
		target := -1
		if it.Kind != phonecall.None {
			if it.Target.Random {
				target = phonecall.RandomPeer(t.o.N(), t.o.Seed(), round, i)
			} else if j, ok := t.o.IndexOf(it.Target.ID); ok && j != i {
				target = j
			}
		}
		return b.RewriteIntent(round, i, target, it)
	}
}

// wrapResponse is wrapIntent's response-side twin.
func (t *refTracker) wrapResponse(round int, response func(int) (phonecall.Message, bool)) func(int) (phonecall.Message, bool) {
	return func(j int) (phonecall.Message, bool) {
		m, ok := response(j)
		b := t.behav[j]
		if b == nil {
			return m, ok
		}
		return b.RewriteResponse(round, j, m, ok)
	}
}

func (p *refProtocol) deliver(i int, inbox []phonecall.Message) {
	var mask uint64
	for _, m := range inbox {
		if m.Tag == tagRumorSet {
			mask |= m.Value
		}
	}
	// Merge only registered rumors, like RumorTracker.MarkSet.
	p.t.held[i] |= mask & p.t.used
}

// referenceScenarioRun replays the scenario driver's execution loop — phase
// windows, event application, completion detection, final outcome assembly —
// on the reference engine and tracker.
func referenceScenarioRun(sc scenario.Scenario, cfg scenario.Config) (scenario.Result, error) {
	algo := sc.Algorithm
	if algo == "" {
		algo = scenario.AlgoPushPull
	}
	o, err := New(phonecall.Config{N: sc.N, Seed: cfg.Seed, PayloadBits: cfg.PayloadBits})
	if err != nil {
		return scenario.Result{}, err
	}
	tr := &refTracker{o: o, held: make([]uint64, sc.N), behav: make([]phonecall.Behavior, sc.N)}
	proto := &refProtocol{
		algo:     algo,
		o:        o,
		t:        tr,
		overhead: o.MessageSize(phonecall.Message{Tag: tagRumorSet}),
	}
	events := append([]scenario.Event(nil), sc.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].EventRound() < events[j].EventRound() })

	res := scenario.Result{Scenario: sc.Name, Algorithm: algo, N: sc.N, Seed: cfg.Seed, Rounds: sc.Rounds}
	var injectRound, completionRound [phonecall.MaxRumors]int

	next := 0
	cur := scenario.PhaseReport{FromRound: 1}
	closePhase := func(to int) {
		cur.ToRound = to
		cur.Live = o.LiveCount()
		cur.Informed = tr.informedCounts()
		res.Phases = append(res.Phases, cur)
	}

	for r := 1; r <= sc.Rounds; r++ {
		if next < len(events) && events[next].EventRound() <= r && r > cur.FromRound {
			closePhase(r - 1)
			cur = scenario.PhaseReport{FromRound: r}
		}
		for next < len(events) && events[next].EventRound() <= r {
			ev := events[next]
			if err := applyEvent(o, tr, ev); err != nil {
				return scenario.Result{}, err
			}
			if inj, ok := ev.(scenario.InjectRumor); ok && injectRound[inj.Rumor] == 0 {
				injectRound[inj.Rumor] = r
			}
			cur.Events = append(cur.Events, ev.Describe())
			next++
		}

		rep := o.ExecRound(tr.wrapIntent(r, proto.intent), tr.wrapResponse(r, proto.response), proto.deliver)
		cur.Messages += rep.Messages
		cur.Bits += rep.Bits
		if rep.MaxComms > cur.MaxComms {
			cur.MaxComms = rep.MaxComms
		}

		if live := o.LiveCount(); live > 0 {
			for id := 0; id < phonecall.MaxRumors; id++ {
				if tr.used&(1<<id) != 0 && completionRound[id] == 0 &&
					tr.liveInformed(phonecall.RumorID(id)) >= live {
					completionRound[id] = r
				}
			}
		}
	}
	closePhase(sc.Rounds)

	m := o.Metrics()
	res.Live = o.LiveCount()
	res.Messages = m.Messages
	res.ControlMessages = m.ControlMessages
	res.Bits = m.Bits
	res.MessagesPerNode = m.MessagesPerNode()
	res.MaxCommsPerRound = m.MaxCommsPerRound
	for _, rc := range tr.informedCounts() {
		out := scenario.RumorOutcome{
			Rumor:           rc.Rumor,
			InjectRound:     injectRound[rc.Rumor],
			LiveInformed:    rc.LiveInformed,
			CompletionRound: completionRound[rc.Rumor],
		}
		if res.Live > 0 {
			out.LiveFraction = float64(rc.LiveInformed) / float64(res.Live)
		}
		res.Rumors = append(res.Rumors, out)
	}
	return res, nil
}
