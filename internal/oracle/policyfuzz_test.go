package oracle

// FuzzPolicyVsOracle: the differential lock on the policy selection contract.
// The engine under test runs with a compiled policy.Selector installed on its
// network; the reference oracle resolves random targets through
// policy.ReferenceSelect — a naive reimplementation sharing no compiled state
// or scoring code. Any divergence in a single peer choice cascades into a
// report or inbox mismatch and fails the target.
//
//	go test ./internal/oracle -run=NONE -fuzz=FuzzPolicyVsOracle -fuzztime=30s

import (
	"testing"

	"repro/internal/policy"
)

// decodePolicyWorld derives a bounded (topology, policy, partitioned) triple
// from fuzz integers. Every decoded combination is valid for any n >= 2: zone
// counts are clamped to n, weights to a small range, thresholds to values the
// generated tables can both pass and fail.
func decodePolicyWorld(n int, zonesRaw, genRaw, modeRaw, rulesRaw uint8, weightsRaw uint32) (*policy.Table, *policy.Policy, bool) {
	k := 1 + int(zonesRaw)%6
	if k > n {
		k = n
	}
	var table *policy.Table
	var err error
	if genRaw%2 == 0 {
		table, err = policy.ZoneTable(n, k)
	} else {
		table, err = policy.WanLanTable(n, k)
	}
	if err != nil {
		panic(err) // k is clamped to [1,n]; the generators accept that range
	}
	partitioned := rulesRaw&0x20 != 0
	if rulesRaw&0x40 != 0 {
		return table, nil, partitioned // topology without a policy
	}
	pol := &policy.Policy{
		Weights: policy.Weights{
			SameZone:   float64(weightsRaw&0xff) / 8,
			Latency:    float64((weightsRaw>>8)&0xff) / 8,
			Capacity:   float64((weightsRaw>>16)&0xff) / 8,
			Reputation: float64((weightsRaw>>24)&0xff) / 8,
		},
	}
	if modeRaw%2 == 1 {
		pol.Mode = policy.ModePermissive
	}
	if rulesRaw&0x01 != 0 {
		pol.Rules.SameZoneOnly = true
	}
	if rulesRaw&0x02 != 0 {
		pol.Rules.MaxLatencyDistance = 40 // splits the wanlan latency ladder
	}
	if rulesRaw&0x04 != 0 {
		pol.Rules.MinReputation = 150
	}
	if rulesRaw&0x08 != 0 {
		pol.Rules.MinCapacity = 100 // excludes wanlan's capacity-64 zones
	}
	if rulesRaw&0x10 != 0 {
		pol.Rules.DenyZones = []int{k - 1}
	}
	return table, pol, partitioned
}

// FuzzPolicyVsOracle fuzzes topologies (generator, zone count), policies
// (mode, rules, weights), the static partition flag, worker counts and loss
// through Compare, with the engine additionally running under inbox poisoning
// and the invariant Checker (which replays random targets through the
// installed selector).
func FuzzPolicyVsOracle(f *testing.F) {
	f.Add(uint16(60), uint64(1), uint64(2), uint8(6), uint8(2), uint8(3), uint8(0), uint8(0), uint8(0), uint32(0x10203040), uint8(0))
	f.Add(uint16(300), uint64(3), uint64(4), uint8(8), uint8(4), uint8(2), uint8(1), uint8(1), uint8(0x01), uint32(0), uint8(10))
	f.Add(uint16(150), uint64(5), uint64(6), uint8(5), uint8(1), uint8(4), uint8(0), uint8(0), uint8(0x0e), uint32(0xffffffff), uint8(0))
	f.Add(uint16(80), uint64(7), uint64(8), uint8(4), uint8(8), uint8(1), uint8(1), uint8(1), uint8(0x30), uint32(0x00ff0000), uint8(50))
	f.Add(uint16(500), uint64(9), uint64(10), uint8(10), uint8(3), uint8(5), uint8(0), uint8(0), uint8(0x40), uint32(0), uint8(0))
	f.Fuzz(func(t *testing.T, n uint16, netSeed, protoSeed uint64,
		rounds, workers, zonesRaw, genRaw, modeRaw, rulesRaw uint8, weightsRaw uint32, lossPct uint8) {
		sc := Script{
			N:         2 + int(n)%2999,
			Rounds:    1 + int(rounds)%10,
			NetSeed:   netSeed,
			Workers:   1 + int(workers)%8,
			ProtoSeed: protoSeed,
			LossRate:  float64(lossPct%101) / 100,
			LossSeed:  netSeed ^ 0x10c0,
		}
		net, orc, err := NewPair(sc, true)
		if err != nil {
			t.Fatal(err)
		}
		table, pol, part := decodePolicyWorld(sc.N, zonesRaw, genRaw, modeRaw, rulesRaw, weightsRaw)
		sel, err := policy.Install(net, table, pol)
		if err != nil {
			t.Fatal(err)
		}
		sel.SetPartitioned(part)
		orc.SetSelectPeer(func(round, i int) (int, bool) {
			return policy.ReferenceSelect(table, pol, part, sc.NetSeed, round, i)
		})
		checker := NewChecker(net)
		net.Observe(checker)
		if err := Compare(net, orc, sc); err != nil {
			t.Fatal(err)
		}
		if err := checker.Err(); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
	})
}
