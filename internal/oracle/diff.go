package oracle

import (
	"fmt"
	"reflect"
	"sync/atomic"

	"repro/internal/phonecall"
	"repro/internal/rng"
)

// The differential harness: run the same scripted, randomized workload
// through the optimized engine and the reference Oracle and demand that
// every observable — per-round reports, response evaluations, the exact
// per-node delivery traces, and the final metrics including the per-node
// MessagesSent vector — is bit-identical. The script is a pure function of
// its seeds, so any reported divergence replays deterministically.

// Engine is the execution surface shared by phonecall.Network and Oracle —
// the contract the differential harness drives both sides through.
type Engine interface {
	N() int
	ID(i int) phonecall.NodeID
	IsFailed(i int) bool
	LiveCount() int
	Fail(indexes ...int)
	Revive(indexes ...int)
	SetLoss(rate float64, seed uint64)
	ExecRound(
		intentOf func(i int) phonecall.Intent,
		responseOf func(i int) (phonecall.Message, bool),
		deliver func(i int, inbox []phonecall.Message),
	) phonecall.RoundReport
	Metrics() phonecall.Metrics
}

var (
	_ Engine = (*phonecall.Network)(nil)
	_ Engine = (*Oracle)(nil)
)

// Script describes one differential workload: a network, a round budget and
// the seeds that deterministically derive every intent, response, churn
// event and loss decision.
type Script struct {
	// N is the network size; Rounds the number of rounds driven.
	N      int
	Rounds int
	// NetSeed seeds both engines; Workers shards the real engine (the
	// oracle ignores it).
	NetSeed uint64
	Workers int
	// ProtoSeed derives the scripted intents and responses.
	ProtoSeed uint64
	// LossRate, when positive, switches on per-call loss from round 1.
	LossRate float64
	LossSeed uint64
	// Churn, when set, applies a scripted sequence of Fail/Revive/SetLoss
	// events (derived from ChurnSeed) identically to both engines between
	// rounds.
	Churn     bool
	ChurnSeed uint64
}

// normalized clamps the script to the ranges both engines accept.
func (sc Script) normalized() Script {
	if sc.N < 2 {
		sc.N = 2
	}
	if sc.Rounds < 1 {
		sc.Rounds = 1
	}
	if sc.Workers < 1 {
		sc.Workers = 1
	}
	if sc.LossRate < 0 {
		sc.LossRate = 0
	}
	if sc.LossRate > 1 {
		sc.LossRate = 1
	}
	return sc
}

// NewPair builds the engine-under-test and the reference oracle for a
// script. poison switches the engine's inbox-poison debug mode on, so the
// differential run simultaneously proves the harness honors the copy-out
// contract.
func NewPair(sc Script, poison bool) (*phonecall.Network, *Oracle, error) {
	sc = sc.normalized()
	cfg := phonecall.Config{N: sc.N, Seed: sc.NetSeed, Workers: sc.Workers, PoisonInbox: poison}
	net, err := phonecall.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: engine: %w", err)
	}
	orc, err := New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: reference: %w", err)
	}
	return net, orc, nil
}

// roundTrace is everything one engine exposed during one scripted round.
type roundTrace struct {
	report    phonecall.RoundReport
	inboxes   [][]phonecall.Message
	delivered []int32
	respSeen  []int32
	respMsg   []phonecall.Message
	respOK    []bool
}

// scriptTags separate the independent derivation streams of one ProtoSeed.
const (
	tagIntent = 0xd1f1
	tagResp   = 0xe5b0
	tagChurn  = 0xc4c4
)

// intentFor derives node i's intent for round r: a mix of pushes, pulls and
// exchanges over random and direct targets, including the edge cases the
// model must handle — self-addressed calls, the NoNode sentinel, unknown
// IDs, contentless exchanges and out-of-model kinds.
func intentFor(e Engine, sc Script, r, i int) phonecall.Intent {
	h := rng.Mix(sc.ProtoSeed, tagIntent, uint64(r), uint64(i))
	payload := func() phonecall.Message {
		m := phonecall.Message{Value: h >> 16, Tag: uint8(h >> 8), Rumor: h&1 == 0}
		if h%16 == 5 {
			m = phonecall.Message{} // contentless: exchange degrades to a pull
		}
		if h%32 == 7 {
			m.Bits = int(h%509) + 1 // explicit bit-size override
		}
		if h%8 == 3 {
			m.IDs = []phonecall.NodeID{e.ID(int((h >> 24) % uint64(e.N())))}
		}
		return m
	}
	direct := func() phonecall.Target {
		x := (h >> 8) % uint64(e.N()+2)
		switch {
		case int(x) < e.N():
			return phonecall.DirectTarget(e.ID(int(x))) // sometimes self, sometimes dead
		case int(x) == e.N():
			return phonecall.DirectTarget(phonecall.NoNode)
		default:
			// An ID outside the directory: both engines must fail to resolve
			// it the same way.
			return phonecall.DirectTarget(phonecall.NodeID(1<<62 + h>>32))
		}
	}
	switch h % 9 {
	case 0:
		return phonecall.Silent()
	case 1:
		return phonecall.PushIntent(phonecall.RandomTarget(), payload())
	case 2:
		return phonecall.PushIntent(direct(), payload())
	case 3:
		return phonecall.PullIntent(phonecall.RandomTarget())
	case 4:
		return phonecall.PullIntent(direct())
	case 5:
		return phonecall.ExchangeIntent(phonecall.RandomTarget(), payload())
	case 6:
		return phonecall.ExchangeIntent(direct(), payload())
	case 7:
		// Out of model: charged as an attempted communication, transmits
		// nothing.
		return phonecall.Intent{Kind: phonecall.Kind(200), Target: phonecall.RandomTarget()}
	default:
		return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
	}
}

// responseFor derives node j's address-oblivious response for round r.
func responseFor(sc Script, r, j int) (phonecall.Message, bool) {
	h := rng.Mix(sc.ProtoSeed, tagResp, uint64(r), uint64(j))
	if h%4 == 0 {
		return phonecall.Message{}, false
	}
	return phonecall.Message{Value: h, Tag: uint8(h>>3) | 1, Rumor: h&2 == 0}, true
}

// applyChurn derives and applies round r's churn events to an engine. Called
// with the same arguments for both engines, so their membership and loss
// state evolve identically.
func applyChurn(e Engine, sc Script, r int) {
	h := rng.Mix(sc.ChurnSeed, tagChurn, uint64(r))
	pick := func(k int, salt uint64) []int {
		out := make([]int, 0, k)
		for t := 0; t < k; t++ {
			out = append(out, int(rng.BoundedUint64(uint64(e.N()), sc.ChurnSeed, salt, uint64(r), uint64(t))))
		}
		return out
	}
	switch h % 5 {
	case 1:
		e.Fail(pick(1+int(h>>8)%(e.N()/4+1), 0xfa)...)
	case 2:
		e.Revive(pick(1+int(h>>8)%(e.N()/4+1), 0x4e)...)
	case 3:
		e.SetLoss(float64((h>>8)%100)/100, h>>32)
	case 4:
		e.SetLoss(0, 0)
	}
}

// runScripted drives one scripted round on an engine and captures its full
// observable trace. Recording uses per-node slots (index-owned writes plus
// atomic counters), so it is race-free even when the engine invokes the
// callbacks from concurrent shards.
func runScripted(e Engine, sc Script, r int) *roundTrace {
	n := e.N()
	tr := &roundTrace{
		inboxes:   make([][]phonecall.Message, n),
		delivered: make([]int32, n),
		respSeen:  make([]int32, n),
		respMsg:   make([]phonecall.Message, n),
		respOK:    make([]bool, n),
	}
	tr.report = e.ExecRound(
		func(i int) phonecall.Intent { return intentFor(e, sc, r, i) },
		func(j int) (phonecall.Message, bool) {
			m, ok := responseFor(sc, r, j)
			if atomic.AddInt32(&tr.respSeen[j], 1) == 1 {
				tr.respMsg[j] = m
				tr.respOK[j] = ok
			}
			return m, ok
		},
		func(i int, inbox []phonecall.Message) {
			if atomic.AddInt32(&tr.delivered[i], 1) == 1 {
				// Copy out: the engine's inboxes alias its arena (and are
				// poisoned after return when the debug mode is on).
				cp := make([]phonecall.Message, len(inbox))
				copy(cp, inbox)
				tr.inboxes[i] = cp
			}
		},
	)
	return tr
}

// Compare runs the script through both engines in lockstep and returns a
// description of the first divergence (nil when the engines agree on every
// observable).
func Compare(a, b Engine, sc Script) error {
	sc = sc.normalized()
	if a.N() != b.N() {
		return fmt.Errorf("oracle: size mismatch: %d vs %d", a.N(), b.N())
	}
	for i := 0; i < a.N(); i++ {
		if a.ID(i) != b.ID(i) {
			return fmt.Errorf("oracle: ID directory mismatch at node %d: %d vs %d", i, a.ID(i), b.ID(i))
		}
	}
	if sc.LossRate > 0 {
		a.SetLoss(sc.LossRate, sc.LossSeed)
		b.SetLoss(sc.LossRate, sc.LossSeed)
	}
	for r := 1; r <= sc.Rounds; r++ {
		if sc.Churn {
			applyChurn(a, sc, r)
			applyChurn(b, sc, r)
		}
		ta := runScripted(a, sc, r)
		tb := runScripted(b, sc, r)
		if err := compareRound(r, ta, tb); err != nil {
			return err
		}
		if la, lb := a.LiveCount(), b.LiveCount(); la != lb {
			return fmt.Errorf("oracle: round %d: live count %d vs %d", r, la, lb)
		}
	}
	ma, mb := a.Metrics(), b.Metrics()
	if !reflect.DeepEqual(ma, mb) {
		return fmt.Errorf("oracle: final metrics diverge:\n  engine: %+v\n  oracle: %+v", ma, mb)
	}
	return nil
}

// compareRound diffs the traces of one round; a is the engine under test, b
// the reference.
func compareRound(r int, a, b *roundTrace) error {
	if a.report != b.report {
		return fmt.Errorf("oracle: round %d: report %+v vs %+v", r, a.report, b.report)
	}
	for i := range a.delivered {
		if a.delivered[i] != b.delivered[i] {
			return fmt.Errorf("oracle: round %d node %d: delivered %d times vs %d",
				r, i, a.delivered[i], b.delivered[i])
		}
		if !reflect.DeepEqual(a.inboxes[i], b.inboxes[i]) {
			return fmt.Errorf("oracle: round %d node %d: inbox diverges:\n  engine: %+v\n  oracle: %+v",
				r, i, a.inboxes[i], b.inboxes[i])
		}
		if a.respSeen[i] != b.respSeen[i] {
			return fmt.Errorf("oracle: round %d node %d: responseOf invoked %d times vs %d",
				r, i, a.respSeen[i], b.respSeen[i])
		}
		if a.respSeen[i] > 0 && (a.respOK[i] != b.respOK[i] || !reflect.DeepEqual(a.respMsg[i], b.respMsg[i])) {
			return fmt.Errorf("oracle: round %d node %d: response evaluation diverges", r, i)
		}
	}
	return nil
}
