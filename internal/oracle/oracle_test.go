package oracle

import (
	"testing"

	"repro/internal/phonecall"
)

// TestOracleMatchesEngineIDs pins the documented ID-assignment procedure:
// an Oracle and a Network built from the same Config must agree on the whole
// ID directory (the oracle re-derives it from the spec, map-based).
func TestOracleMatchesEngineIDs(t *testing.T) {
	cfg := phonecall.Config{N: 500, Seed: 123}
	net, err := phonecall.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i++ {
		if net.ID(i) != orc.ID(i) {
			t.Fatalf("node %d: engine ID %d, oracle ID %d", i, net.ID(i), orc.ID(i))
		}
		if j, ok := orc.IndexOf(net.ID(i)); !ok || j != i {
			t.Fatalf("oracle IndexOf(%d) = %d,%v", net.ID(i), j, ok)
		}
	}
}

// TestOracleAccountingByHand checks the oracle's charges on a fully
// hand-computable round: every node pushes directly to node 0 (which stays
// silent), so n-1 payload messages land in one inbox and Δ must be n-1+0 —
// node 0 participates in n-1 incoming communications, each initiator in its
// own single attempt.
func TestOracleAccountingByHand(t *testing.T) {
	const n = 8
	orc, err := New(phonecall.Config{N: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var inbox []phonecall.Message
	rep := orc.ExecRound(
		func(i int) phonecall.Intent {
			if i == 0 {
				return phonecall.Silent()
			}
			return phonecall.PushIntent(phonecall.DirectTarget(orc.ID(0)), phonecall.Message{Tag: 9, Value: uint64(i)})
		},
		nil,
		func(i int, in []phonecall.Message) {
			if i != 0 {
				t.Errorf("delivery to node %d", i)
			}
			inbox = append(inbox, in...)
		},
	)
	if rep.Messages != n-1 {
		t.Errorf("messages = %d, want %d", rep.Messages, n-1)
	}
	if rep.MaxComms != n-1 {
		t.Errorf("maxComms = %d, want %d", rep.MaxComms, n-1)
	}
	if len(inbox) != n-1 {
		t.Fatalf("inbox has %d messages, want %d", len(inbox), n-1)
	}
	for k, m := range inbox {
		// Defined order: ascending initiator index (initiators 1..n-1).
		if want := orc.ID(k + 1); m.From != want {
			t.Errorf("inbox[%d].From = %d, want %d", k, m.From, want)
		}
		if m.Value != uint64(k+1) {
			t.Errorf("inbox[%d].Value = %d, want %d", k, m.Value, k+1)
		}
	}
	m := orc.Metrics()
	if m.Messages != n-1 || m.ControlMessages != 0 || m.MaxCommsPerRound != n-1 {
		t.Errorf("metrics %+v", m)
	}
	if m.MessagesSent[0] != 0 || m.MessagesSent[1] != 1 {
		t.Errorf("sent counters %v", m.MessagesSent)
	}
}

// TestOraclePullFanOut checks the address-oblivious response rule: several
// pullers contact one node, which exposes a single response that every
// puller receives (and is charged for) individually.
func TestOraclePullFanOut(t *testing.T) {
	const n = 6
	orc, err := New(phonecall.Config{N: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	responses := 0
	got := make(map[int][]phonecall.Message)
	rep := orc.ExecRound(
		func(i int) phonecall.Intent {
			if i == 0 {
				return phonecall.Silent()
			}
			return phonecall.PullIntent(phonecall.DirectTarget(orc.ID(0)))
		},
		func(j int) (phonecall.Message, bool) {
			responses++
			if j != 0 {
				t.Errorf("responseOf(%d)", j)
			}
			return phonecall.Message{Tag: 5, Rumor: true}, true
		},
		func(i int, in []phonecall.Message) {
			got[i] = append([]phonecall.Message(nil), in...)
		},
	)
	if responses != 1 {
		t.Errorf("responseOf evaluated %d times, want once", responses)
	}
	// n-1 pull requests plus n-1 response copies.
	if rep.Messages != 2*(n-1) {
		t.Errorf("report messages = %d, want %d", rep.Messages, 2*(n-1))
	}
	for i := 1; i < n; i++ {
		in := got[i]
		if len(in) != 1 || in[0].Tag != 5 || in[0].From != orc.ID(0) {
			t.Errorf("puller %d inbox %+v", i, in)
		}
	}
	m := orc.Metrics()
	if m.ControlMessages != n-1 || m.Messages != n-1 {
		t.Errorf("metrics %+v", m)
	}
	if m.MessagesSent[0] != n-1 {
		t.Errorf("responder sent %d, want %d", m.MessagesSent[0], n-1)
	}
}

// TestOracleFailureAndLossRules checks the live-participant rule: a call to
// a dead node charges only the initiator; total loss (rate 1) behaves the
// same for every call; revived nodes act again.
func TestOracleFailureAndLossRules(t *testing.T) {
	const n = 4
	orc, err := New(phonecall.Config{N: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	orc.Fail(1)
	if orc.LiveCount() != n-1 {
		t.Fatalf("live count %d", orc.LiveCount())
	}
	intents := 0
	rep := orc.ExecRound(
		func(i int) phonecall.Intent {
			intents++
			if i == 1 {
				t.Error("dead node's intent evaluated")
			}
			return phonecall.PushIntent(phonecall.DirectTarget(orc.ID(1)), phonecall.Message{Tag: 1})
		},
		nil,
		func(i int, in []phonecall.Message) { t.Errorf("delivery to %d despite dead target", i) },
	)
	if intents != n-1 {
		t.Errorf("intents evaluated %d times", intents)
	}
	// Initiators are charged their attempt; the dead target participates in
	// nothing.
	if rep.Messages != n-1 || rep.MaxComms != 1 {
		t.Errorf("report %+v", rep)
	}

	orc.Revive(1)
	orc.SetLoss(1, 99) // every call lost in transit
	rep = orc.ExecRound(
		func(i int) phonecall.Intent {
			return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 2})
		},
		nil,
		func(i int, in []phonecall.Message) { t.Errorf("delivery to %d despite total loss", i) },
	)
	if rep.Messages != n || rep.MaxComms != 1 {
		t.Errorf("report under total loss %+v", rep)
	}
}
