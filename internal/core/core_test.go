package core

import (
	"math"
	"testing"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

func newNet(t testing.TB, n int, seed uint64) *phonecall.Network {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("phonecall.New: %v", err)
	}
	return net
}

func requireAllInformed(t *testing.T, r trace.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("broadcast failed: %v", err)
	}
	if !r.AllInformed {
		t.Fatalf("not all nodes informed: %d/%d (%s)", r.Informed, r.Live, r.Algorithm)
	}
}

func TestCluster1InformsAllNodes(t *testing.T) {
	for _, n := range []int{500, 1000, 5000} {
		for seed := uint64(1); seed <= 3; seed++ {
			net := newNet(t, n, seed)
			r, err := Cluster1(net, []int{0}, Params{})
			requireAllInformed(t, r, err)
		}
	}
}

func TestCluster2InformsAllNodes(t *testing.T) {
	for _, n := range []int{1000, 5000, 20000} {
		for seed := uint64(1); seed <= 3; seed++ {
			net := newNet(t, n, seed)
			r, err := Cluster2(net, []int{0}, Params{})
			requireAllInformed(t, r, err)
		}
	}
}

func TestCluster1RoundsScaleDoublyLogarithmically(t *testing.T) {
	// Rounds at n=100k should be within a small constant factor of rounds at
	// n=1k, i.e. far below the log n growth a single-scale algorithm shows.
	small := newNet(t, 1000, 7)
	rSmall, err := Cluster1(small, []int{0}, Params{})
	requireAllInformed(t, rSmall, err)
	large := newNet(t, 100000, 7)
	rLarge, err := Cluster1(large, []int{0}, Params{})
	requireAllInformed(t, rLarge, err)
	if float64(rLarge.Rounds) > 2.5*float64(rSmall.Rounds) {
		t.Fatalf("rounds grew from %d (n=1k) to %d (n=100k); expected log log n scaling", rSmall.Rounds, rLarge.Rounds)
	}
}

func TestCluster2MessageComplexityIsLinear(t *testing.T) {
	net := newNet(t, 50000, 3)
	r, err := Cluster2(net, []int{42}, Params{})
	requireAllInformed(t, r, err)
	// "O(1) messages per node": the constant measured at laptop scale is
	// around 20; the important property (tested below and in the benchmarks)
	// is that it does not grow with n.
	if r.MessagesPerNode > 30 {
		t.Fatalf("messages per node = %.2f, want a constant around 20", r.MessagesPerNode)
	}
	// Bit complexity O(nb): allow a generous constant.
	bitsPerNode := float64(r.Bits) / float64(r.N)
	bound := 40 * float64(net.PayloadBits())
	if bitsPerNode > bound {
		t.Fatalf("bits per node = %.0f, want O(b) = about %d", bitsPerNode, net.PayloadBits())
	}
}

func TestCluster2MessagesPerNodeDoNotGrowWithN(t *testing.T) {
	run := func(n int) float64 {
		net := newNet(t, n, 9)
		r, err := Cluster2(net, []int{0}, Params{})
		requireAllInformed(t, r, err)
		return r.MessagesPerNode
	}
	small, large := run(10000), run(100000)
	if large > small*1.25 {
		t.Fatalf("messages per node grew from %.2f (n=10k) to %.2f (n=100k); want O(1)", small, large)
	}
}

func TestCluster2RoundsScaleDoublyLogarithmically(t *testing.T) {
	run := func(n int) int {
		net := newNet(t, n, 5)
		r, err := Cluster2(net, []int{0}, Params{})
		requireAllInformed(t, r, err)
		return r.Rounds
	}
	small, large := run(1000), run(100000)
	// log n doubles between these sizes while log log n grows by ~20%; the
	// measured rounds must follow the latter.
	if float64(large) > 1.8*float64(small) {
		t.Fatalf("rounds grew from %d (n=1k) to %d (n=100k); expected log log n scaling", small, large)
	}
	logLog := math.Log2(math.Log2(100000))
	if float64(large) > 25*logLog+30 {
		t.Fatalf("rounds = %d at n=100k, unreasonably large for O(log log n)", large)
	}
}

func TestCluster3ProducesDeltaClustering(t *testing.T) {
	const n = 20000
	const delta = 128
	net := newNet(t, n, 11)
	cl, res, err := Cluster3(net, delta, Params{})
	if err != nil {
		t.Fatalf("Cluster3: %v", err)
	}
	stats := ClusteringStats(cl)
	if stats.Unclusterd > 0 {
		t.Fatalf("%d nodes left unclustered", stats.Unclusterd)
	}
	if stats.MaxSize >= 2*delta {
		t.Fatalf("max cluster size %d >= 2Δ = %d", stats.MaxSize, 2*delta)
	}
	if stats.MinSize < delta/8 {
		t.Fatalf("min cluster size %d < Δ/8 = %d", stats.MinSize, delta/8)
	}
	if res.MaxCommsPerRound > 4*delta {
		t.Fatalf("observed per-round communications %d exceed 4Δ = %d", res.MaxCommsPerRound, 4*delta)
	}
}

func TestCluster3RejectsTinyDelta(t *testing.T) {
	net := newNet(t, 1000, 1)
	if _, _, err := Cluster3(net, 2, Params{}); err == nil {
		t.Fatal("Cluster3 should reject Δ below MinDelta")
	}
}

func TestClusterPushPullInformsAllNodes(t *testing.T) {
	net := newNet(t, 20000, 13)
	r, err := ClusterPushPull(net, []int{7}, 256, Params{})
	requireAllInformed(t, r, err)
	if r.MaxCommsPerRound > 4*256 {
		t.Fatalf("observed Δ = %d exceeds 4·256", r.MaxCommsPerRound)
	}
}

func TestBroadcastRejectsBadSources(t *testing.T) {
	net := newNet(t, 100, 1)
	if _, err := Cluster1(net, nil, Params{}); err == nil {
		t.Fatal("want error for empty source list")
	}
	if _, err := Cluster2(net, []int{-1}, Params{}); err == nil {
		t.Fatal("want error for out-of-range source")
	}
	net.Fail(3)
	if _, err := Cluster2(net, []int{3}, Params{}); err == nil {
		t.Fatal("want error when all sources failed")
	}
}

func TestCluster2DeterministicAcrossRuns(t *testing.T) {
	runOnce := func() trace.Result {
		net := newNet(t, 5000, 99)
		r, err := Cluster2(net, []int{0}, Params{})
		requireAllInformed(t, r, err)
		return r
	}
	a, b := runOnce(), runOnce()
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits {
		t.Fatalf("same seed produced different executions: %+v vs %+v", a, b)
	}
}

func TestCluster2FaultTolerance(t *testing.T) {
	const n = 20000
	const failures = 2000 // 10%
	net := newNet(t, n, 21)
	// Oblivious adversary: fail a fixed block of indexes (independent of the
	// algorithm's randomness).
	failed := make([]int, 0, failures)
	for i := 0; i < failures; i++ {
		failed = append(failed, 2*i) // every other node in the low range
	}
	net.Fail(failed...)
	r, err := Cluster2(net, []int{1}, Params{})
	if err != nil {
		t.Fatalf("Cluster2: %v", err)
	}
	uninformed := r.UninformedSurvivors()
	if float64(uninformed) > 0.05*float64(failures) {
		t.Fatalf("uninformed survivors = %d, want o(F) with F=%d", uninformed, failures)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	if p != d {
		t.Fatalf("withDefaults() = %+v, want %+v", p, d)
	}
	custom := Params{SeedC: 2, MaxPhaseIterations: 5}.withDefaults()
	if custom.SeedC != 2 || custom.MaxPhaseIterations != 5 {
		t.Fatal("withDefaults must keep explicit values")
	}
	if custom.InitSizeC != d.InitSizeC {
		t.Fatal("withDefaults must fill missing values")
	}
}

func TestPhaseAccountingCoversAllRounds(t *testing.T) {
	net := newNet(t, 5000, 17)
	r, err := Cluster2(net, []int{0}, Params{})
	requireAllInformed(t, r, err)
	sum := 0
	for _, ph := range r.Phases {
		sum += ph.Rounds
	}
	if sum != r.Rounds {
		t.Fatalf("phase rounds sum to %d, total is %d", sum, r.Rounds)
	}
}
