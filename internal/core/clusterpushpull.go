package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// ClusterPushPull runs Algorithm 3 of the paper on top of a Θ(Δ)-clustering
// computed by Cluster3: it broadcasts the rumor held by the source nodes in
// O(log n / log Δ) additional rounds using O(n) additional messages, while no
// node participates in more than O(Δ) communications per round (Lemma 17 and
// Theorem 4).
func ClusterPushPull(net *phonecall.Network, sources []int, delta int, params Params) (trace.Result, error) {
	p := params.withDefaults()
	if err := checkSources(net, sources); err != nil {
		return trace.Result{}, err
	}
	cl, _, err := Cluster3(net, delta, p)
	if err != nil {
		return trace.Result{}, err
	}
	phases := clusteringPhases(net)
	rec := trace.NewRecorder(net)

	for _, s := range sources {
		cl.SetRumor(s)
	}
	broadcastOnClustering(cl, p, delta)
	rec.Mark("ClusterPUSH-PULL")

	result := trace.Summarize("clusterpushpull", net, cl.InformedCount(), append(phases, rec.Phases()...))
	return result, nil
}

// BroadcastOnClustering runs only the dissemination part of Algorithm 3 on an
// existing Θ(Δ)-clustering. The clustering is reused as-is; only the rumor
// spread is charged. It returns the number of rounds used.
func BroadcastOnClustering(cl *cluster.Clustering, sources []int, delta int, params Params) (trace.Result, error) {
	p := params.withDefaults()
	net := cl.Network()
	if err := checkSources(net, sources); err != nil {
		return trace.Result{}, err
	}
	for _, s := range sources {
		cl.SetRumor(s)
	}
	rec := trace.NewRecorder(net)
	broadcastOnClustering(cl, p, delta)
	rec.Mark("ClusterPUSH-PULL")
	return trace.Summarize("clusterpushpull-broadcast", net, cl.InformedCount(), rec.Phases()), nil
}

// broadcastOnClustering is the main loop of Algorithm 3.
func broadcastOnClustering(cl *cluster.Clustering, p Params, delta int) {
	net := cl.Network()
	n := net.N()

	// ClusterShare(message): the source's cluster learns the rumor.
	cl.ShareRumor()

	// Each node pushes the rumor at most once, right after its cluster became
	// informed ("newly informed clusters: ClusterPUSH"), which keeps the total
	// number of messages linear in n.
	pushed := make([]bool, n)
	maxIters := pushPullIterations(n, delta)
	for iter := 0; iter < maxIters; iter++ {
		if cl.InformedCount() >= net.LiveCount() {
			break
		}
		// Newly informed clusters PUSH the rumor to random nodes.
		cl.RandomPush(
			func(i int) bool { return cl.HasRumor(i) && !pushed[i] },
			func(i int) phonecall.Message {
				pushed[i] = true
				return phonecall.Message{Tag: cluster.TagRumor, Rumor: true}
			},
			func(j int, m phonecall.Message) {
				if m.Rumor {
					cl.SetRumor(j)
				}
			},
		)
		// ClusterShare: clusters hit by a push inform all their members.
		cl.ShareRumor()
		// Uninformed nodes PULL from a random node.
		uninformedPull(cl)
		cl.ShareRumor()
	}
	cl.ShareRumor()
}

// uninformedPull runs one round in which every uninformed node pulls from a
// uniformly random node and learns the rumor if the responder has it.
func uninformedPull(cl *cluster.Clustering) {
	net := cl.Network()
	net.ExecRound(
		func(i int) phonecall.Intent {
			if cl.HasRumor(i) {
				return phonecall.Silent()
			}
			return phonecall.PullIntent(phonecall.RandomTarget())
		},
		func(j int) (phonecall.Message, bool) {
			if !cl.HasRumor(j) {
				return phonecall.Message{}, false
			}
			return phonecall.Message{Tag: cluster.TagRumor, Rumor: true}, true
		},
		func(i int, inbox []phonecall.Message) {
			for _, m := range inbox {
				if m.Rumor {
					cl.SetRumor(i)
				}
			}
		},
	)
}

// pushPullIterations returns the iteration cap Θ(log n / log Δ) for the main
// loop of Algorithm 3.
func pushPullIterations(n, delta int) int {
	logDelta := math.Log2(float64(delta))
	if logDelta < 1 {
		logDelta = 1
	}
	return int(math.Ceil(2*math.Log2(float64(n))/logDelta)) + 6
}

// clusteringPhases summarizes the cost accumulated so far (the Δ-clustering
// construction) as a single phase, so the combined result shows the
// clustering cost followed by the broadcast cost.
func clusteringPhases(net *phonecall.Network) []trace.Phase {
	m := net.Metrics()
	return []trace.Phase{{
		Name:     "Cluster3(Δ) total",
		Rounds:   m.Rounds,
		Messages: m.TotalMessages(),
		Bits:     m.Bits,
	}}
}
