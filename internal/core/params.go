// Package core implements the gossip algorithms of Haeupler & Malkhi,
// "Optimal Gossip with Direct Addressing" (PODC 2014): Cluster1 (Algorithm 1,
// Theorem 9), Cluster2 (Algorithm 2, Theorem 2), Cluster3(Δ) (Algorithm 4,
// Theorem 18) and ClusterPUSH-PULL(Δ) (Algorithm 3, Lemma 17), together with
// the broadcast drivers that run them end to end on the random phone call
// substrate.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/phonecall"
)

// Params holds the tunable constants of the algorithms. The paper states all
// constants asymptotically (C, C', C”); the defaults here are chosen so that
// the algorithms succeed with high probability at laptop-scale n (10^3–10^6)
// while preserving the asymptotic behaviour. All fields have sensible zero
// value handling: a zero field means "use the default".
type Params struct {
	// SeedC is the paper's C: Cluster1 seeds singleton clusters with
	// probability 1/(SeedC·ln n), so that after the initial PUSH growth the
	// average cluster size is about SeedC·ln n. Default 8.
	SeedC float64

	// DissolveSizeC is the paper's C' for Cluster1 (with C' ≪ C): clusters
	// smaller than DissolveSizeC·ln n are dissolved before the squaring phase,
	// which also starts at that size. Default 1.
	DissolveSizeC float64

	// InitSizeC scales the initial cluster size target C'·ln n used by the
	// sparse GrowInitialClusters of Cluster2/Cluster3 and as the starting size
	// of their SquareClusters phase. Default 3.
	InitSizeC float64

	// GrowTargetFraction is the fraction of nodes Cluster1 aims to cluster in
	// GrowInitialClusters (the paper's 90%). Default 0.9.
	GrowTargetFraction float64

	// SparseFractionC controls how many nodes Cluster2/Cluster3 cluster during
	// their initial phase: roughly n/(SparseFractionC·ln n). Default 1.
	SparseFractionC float64

	// BoundedGrowthFactor is the growth factor below which BoundedClusterPush
	// deactivates a cluster (the paper's 1.1). Default 1.1.
	BoundedGrowthFactor float64

	// MaxPhaseIterations caps every Θ(log log n) loop. Zero means an automatic
	// cap derived from n (a small multiple of log₂ log₂ n).
	MaxPhaseIterations int

	// MergeAllIterations caps the MergeAllClusters loop. Default 8.
	MergeAllIterations int
}

// DefaultParams returns the default constants.
func DefaultParams() Params {
	return Params{
		SeedC:               8,
		DissolveSizeC:       1,
		InitSizeC:           3,
		GrowTargetFraction:  0.9,
		SparseFractionC:     1,
		BoundedGrowthFactor: 1.1,
		MergeAllIterations:  8,
	}
}

// withDefaults fills zero fields with their defaults.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.SeedC <= 0 {
		p.SeedC = d.SeedC
	}
	if p.DissolveSizeC <= 0 {
		p.DissolveSizeC = d.DissolveSizeC
	}
	if p.InitSizeC <= 0 {
		p.InitSizeC = d.InitSizeC
	}
	if p.GrowTargetFraction <= 0 || p.GrowTargetFraction >= 1 {
		p.GrowTargetFraction = d.GrowTargetFraction
	}
	if p.SparseFractionC <= 0 {
		p.SparseFractionC = d.SparseFractionC
	}
	if p.BoundedGrowthFactor <= 1 {
		p.BoundedGrowthFactor = d.BoundedGrowthFactor
	}
	if p.MergeAllIterations <= 0 {
		p.MergeAllIterations = d.MergeAllIterations
	}
	return p
}

// Errors returned by the drivers.
var (
	ErrNoSource = errors.New("core: broadcast needs at least one live source node")
)

// lnN returns ln n, at least 1.
func lnN(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		return 1
	}
	return v
}

// logLogN returns log₂ log₂ n, at least 1.
func logLogN(n int) float64 {
	v := math.Log2(math.Log2(float64(n) + 2))
	if v < 1 {
		return 1
	}
	return v
}

// phaseCap returns the iteration cap for a Θ(log log n) loop.
func (p Params) phaseCap(n int) int {
	if p.MaxPhaseIterations > 0 {
		return p.MaxPhaseIterations
	}
	return int(math.Ceil(4*logLogN(n))) + 8
}

// initialClusterSize returns C'·ln n (at least 2), the sparse-variant target.
func (p Params) initialClusterSize(n int) int {
	s := int(math.Ceil(p.InitSizeC * lnN(n)))
	if s < 2 {
		s = 2
	}
	return s
}

// cluster1StartSize returns the Cluster1 dissolve threshold and squaring
// start size, DissolveSizeC·ln n (at least 2).
func (p Params) cluster1StartSize(n int) int {
	s := int(math.Ceil(p.DissolveSizeC * lnN(n)))
	if s < 2 {
		s = 2
	}
	return s
}

// squareStopSize returns the cluster size at which SquareClusters stops,
// √(n / ln n) as in Algorithm 1 (Algorithm 2 uses the same order).
func squareStopSize(n int) int {
	s := int(math.Sqrt(float64(n) / lnN(n)))
	if s < 2 {
		s = 2
	}
	return s
}

// checkSources validates the source node list against the network.
func checkSources(net *phonecall.Network, sources []int) error {
	live := 0
	for _, s := range sources {
		if s < 0 || s >= net.N() {
			return fmt.Errorf("core: source index %d out of range [0,%d)", s, net.N())
		}
		if !net.IsFailed(s) {
			live++
		}
	}
	if live == 0 {
		return ErrNoSource
	}
	return nil
}

// countActiveLeaders returns the number of live leaders whose cluster is
// activated (local; drivers use it for the activation safeguard).
func countActiveLeaders(cl *cluster.Clustering) int {
	count := 0
	net := cl.Network()
	for i := 0; i < net.N(); i++ {
		if !net.IsFailed(i) && cl.IsLeader(i) && cl.IsActive(i) {
			count++
		}
	}
	return count
}

// largestClusterSize returns the size of the largest cluster (local).
func largestClusterSize(cl *cluster.Clustering) int {
	largest := 0
	for _, s := range cl.ClusterSizes() {
		if s > largest {
			largest = s
		}
	}
	return largest
}

// clusterSizePercentile returns the given percentile (0..1) of the cluster
// size distribution, at least fallback (local).
func clusterSizePercentile(cl *cluster.Clustering, pct float64, fallback int) int {
	sizes := cl.ClusterSizes()
	if len(sizes) == 0 {
		return fallback
	}
	values := make([]int, 0, len(sizes))
	for _, s := range sizes {
		values = append(values, s)
	}
	// insertion sort; the number of clusters is small once sizes grow
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j-1] > values[j]; j-- {
			values[j-1], values[j] = values[j], values[j-1]
		}
	}
	idx := int(pct * float64(len(values)-1))
	v := values[idx]
	if v < fallback {
		return fallback
	}
	return v
}
