package core

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// MinDelta is the smallest per-round communication bound supported by
// Cluster3. The paper assumes Δ = log^ω(1) n; below this value the clustering
// machinery degenerates.
const MinDelta = 8

// Cluster3 runs Algorithm 4 of the paper: it computes a Θ(Δ)-clustering — a
// clustering in which every node is clustered and all cluster sizes are
// within a constant factor of Δ — in O(log log n) rounds using O(n) messages,
// while no node has to answer more than O(Δ) requests in any round
// (Theorem 18). The returned clustering can then be used by ClusterPushPull
// to broadcast with bounded per-node communication.
func Cluster3(net *phonecall.Network, delta int, params Params) (*cluster.Clustering, trace.Result, error) {
	p := params.withDefaults()
	if delta < MinDelta {
		return nil, trace.Result{}, fmt.Errorf("core: delta %d below minimum %d", delta, MinDelta)
	}
	if delta > net.N() {
		delta = net.N()
	}
	cl := cluster.New(net)
	rec := trace.NewRecorder(net)

	half := delta / 2
	if half < 2 {
		half = 2
	}

	// GrowInitialClusters, as in Algorithm 2, but never above Δ.
	targetSize := p.initialClusterSize(net.N())
	if targetSize > half/2 && half/2 >= 2 {
		targetSize = half / 2
	}
	growInitialClustersSparse(cl, p, targetSize)
	rec.Mark("GrowInitialClusters")

	// SquareClusters until sizes reach about √(Δ·ln n), capped at Δ/2.
	stop := int(math.Sqrt(float64(delta) * lnN(net.N())))
	if stop > half {
		stop = half
	}
	if stop < targetSize {
		stop = targetSize
	}
	squareClusters(cl, p, targetSize, stop, pickFirst)
	rec.Mark("SquareClusters")

	// MergeClusters: activate a ≈10·s/(Δ/2) fraction of clusters; the rest
	// merge into a uniformly random activated cluster that reached them.
	s := clusterSizePercentile(cl, 0.25, targetSize)
	prob := 10 * float64(s) / float64(half)
	if prob > 1 {
		prob = 1
	}
	activateClusters(cl, prob)
	recruitAndMerge(cl, pickFirst, func(i int) bool { return cl.IsActive(i) }, mergeInactiveOnly)
	cl.Compress(1)
	rec.Mark("MergeClusters")

	// BoundedClusterPush with continuous resizing keeps every cluster (and
	// hence every leader's per-round fan-in) at Θ(Δ) while recruiting the
	// unclustered nodes.
	boundedClusterPush(cl, p, half)
	rec.Mark("BoundedClusterPush")

	cl.PullJoin(pullJoinRounds(p, net.N()))
	rec.Mark("UnclusteredNodesPull")

	// Final normalization: split oversized clusters, dissolve undersized ones
	// and let their members re-join, then cap sizes again.
	cl.Resize(half)
	if delta/4 >= 2 {
		cl.Dissolve(delta / 4)
		cl.PullJoin(pullJoinRounds(p, net.N()))
		cl.Resize(half)
	}
	rec.Mark("FinalResize")

	result := trace.Summarize("cluster3", net, cl.ClusteredCount(), rec.Phases())
	result.AllInformed = cl.ClusteredCount() == net.LiveCount()
	return cl, result, nil
}

// DeltaClusteringStats summarizes a Θ(Δ)-clustering for verification: the
// number of clusters and the minimum, median and maximum cluster size.
type DeltaClusteringStats struct {
	Clusters   int
	MinSize    int
	MedianSize int
	MaxSize    int
	Unclusterd int
}

// ClusteringStats computes DeltaClusteringStats for a clustering (local).
func ClusteringStats(cl *cluster.Clustering) DeltaClusteringStats {
	sizes := cl.ClusterSizes()
	stats := DeltaClusteringStats{Clusters: len(sizes)}
	net := cl.Network()
	for i := 0; i < net.N(); i++ {
		if !net.IsFailed(i) && !cl.IsClustered(i) {
			stats.Unclusterd++
		}
	}
	if len(sizes) == 0 {
		return stats
	}
	values := make([]int, 0, len(sizes))
	for _, s := range sizes {
		values = append(values, s)
	}
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j-1] > values[j]; j-- {
			values[j-1], values[j] = values[j], values[j-1]
		}
	}
	stats.MinSize = values[0]
	stats.MaxSize = values[len(values)-1]
	stats.MedianSize = values[len(values)/2]
	return stats
}
