package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/phonecall"
)

// candidatePolicy selects how a node that received several recruiting pushes
// chooses the cluster it reports to its leader.
type candidatePolicy int

const (
	// pickSmallest keeps the smallest received cluster ID (Cluster1,
	// MergeAllClusters).
	pickSmallest candidatePolicy = iota + 1
	// pickFirst keeps the first received cluster ID, which is a uniformly
	// random one among the pushes that reached the node (Cluster2/Cluster3).
	pickFirst
)

// recordCandidate applies the candidate policy at a receiving node.
func recordCandidate(cl *cluster.Clustering, policy candidatePolicy, i int, id phonecall.NodeID) {
	if id == phonecall.NoNode {
		return
	}
	current := cl.Pending(i)
	switch policy {
	case pickSmallest:
		if current == phonecall.NoNode || id < current {
			cl.SetPending(i, id)
		}
	default:
		if current == phonecall.NoNode {
			cl.SetPending(i, id)
		}
	}
}

// growInitialClustersDense implements Procedure GrowInitialClusters of
// Algorithm 1: singleton seed clusters recruit unclustered nodes by random
// PUSH gossip until a GrowTargetFraction of the nodes is clustered (a
// Θ(log log n)-round process).
func growInitialClustersDense(cl *cluster.Clustering, p Params) {
	net := cl.Network()
	n := net.N()
	seedProb := 1 / (p.SeedC * lnN(n))
	if cl.SeedSingletons(seedProb) == 0 {
		// Degenerate only for tiny n: deterministically promote the first live
		// node so that the protocol can proceed.
		for i := 0; i < n; i++ {
			if !net.IsFailed(i) {
				cl.SetFollow(i, net.ID(i))
				cl.SetActive(i, true)
				break
			}
		}
	}
	iterCap := p.phaseCap(n)
	for iter := 0; iter < iterCap; iter++ {
		if float64(cl.ClusteredCount()) >= p.GrowTargetFraction*float64(net.LiveCount()) {
			break
		}
		cl.RandomPush(
			nil, // every clustered node pushes its cluster ID
			func(i int) phonecall.Message {
				return phonecall.Message{Tag: cluster.TagRecruit, IDs: []phonecall.NodeID{cl.Follow(i)}}
			},
			func(j int, m phonecall.Message) {
				if m.Tag != cluster.TagRecruit || len(m.IDs) != 1 {
					return
				}
				if !cl.IsClustered(j) {
					cl.SetFollow(j, m.IDs[0])
				}
			},
		)
	}
}

// growInitialClustersSparse implements Procedure GrowInitialClusters of
// Algorithm 2: a much sparser set of seed clusters recruits until roughly
// n/ln n nodes are clustered. Clusters measure their own growth; once a large
// cluster grows by less than a factor 2−1/ln n it deactivates, and large
// clusters are resized so that no cluster exceeds the target size by much.
func growInitialClustersSparse(cl *cluster.Clustering, p Params, targetSize int) {
	net := cl.Network()
	n := net.N()
	// Seed so that (#seeds)·targetSize ≈ n/(SparseFractionC·ln n).
	seedProb := 1 / (p.SparseFractionC * lnN(n) * float64(targetSize))
	if cl.SeedSingletons(seedProb) == 0 {
		for i := 0; i < n; i++ {
			if !net.IsFailed(i) {
				cl.SetFollow(i, net.ID(i))
				cl.SetActive(i, true)
				break
			}
		}
	}
	growthFactor := 2 - 1/lnN(n)
	clusteredTarget := float64(net.LiveCount()) / lnN(n) * 2
	// A cluster can at most double per push round, so no cluster can reach
	// targetSize before round log₂(targetSize); the size-control rounds
	// (ClusterSize, growth check, ClusterResize) are skipped until then.
	sizeControlFrom := int(math.Floor(math.Log2(float64(targetSize)))) - 1
	if sizeControlFrom < 0 {
		sizeControlFrom = 0
	}
	iterCap := p.phaseCap(n)
	for iter := 0; iter < iterCap; iter++ {
		if countActiveLeaders(cl) == 0 {
			break
		}
		if float64(cl.ClusteredCount()) >= clusteredTarget {
			break
		}
		cl.RandomPush(
			func(i int) bool { return cl.IsActive(i) },
			func(i int) phonecall.Message {
				return phonecall.Message{Tag: cluster.TagRecruit, IDs: []phonecall.NodeID{cl.Follow(i)}}
			},
			func(j int, m phonecall.Message) {
				if m.Tag != cluster.TagRecruit || len(m.IDs) != 1 {
					return
				}
				if !cl.IsClustered(j) {
					cl.SetFollow(j, m.IDs[0])
					// The recruiting cluster is active by construction.
					cl.SetActive(j, true)
				}
			},
		)
		if iter < sizeControlFrom {
			continue
		}
		cl.MeasureSizes()
		cl.SetActivation(func(leader int) bool {
			if !cl.IsActive(leader) {
				return false
			}
			size, prev := cl.Size(leader), cl.PrevSize(leader)
			if size >= targetSize && prev > 0 && float64(size) < growthFactor*float64(prev) {
				return false
			}
			return true
		})
		if largestClusterSize(cl) >= 2*targetSize {
			cl.Resize(targetSize)
		}
	}
}

// squareClusters implements Procedure SquareClusters (Algorithms 1 and 2):
// clusters of size s are repeatedly merged into clusters of size Θ(s²)
// (Θ(s²/log n) in the sparse variant) until the cluster size reaches
// stopSize. Each iteration costs a constant number of rounds, and the size
// squaring bounds the number of iterations by O(log log n).
func squareClusters(cl *cluster.Clustering, p Params, startSize, stopSize int, policy candidatePolicy) {
	net := cl.Network()
	n := net.N()
	s := startSize
	// Safeguard against over-aggressive constants at small n: never dissolve
	// more than half of the existing clusters.
	if median := clusterSizePercentile(cl, 0.5, 2); s > median {
		s = median
	}
	cl.Dissolve(s)
	iterCap := p.phaseCap(n)
	for iter := 0; iter < iterCap; iter++ {
		if s >= stopSize || largestClusterSize(cl) >= stopSize {
			break
		}
		if cl.ClusteredCount() == 0 {
			break
		}
		cl.Resize(s)
		activateClusters(cl, 1/float64(s))
		for rep := 0; rep < 2; rep++ {
			recruitAndMerge(cl, policy, func(i int) bool { return cl.IsActive(i) }, mergeInactiveOnly)
		}
		cl.Compress(1)
		// The paper sets s ← Θ(s²); measure the realized sizes so the next
		// resize/activation matches the clusters actually produced.
		next := clusterSizePercentile(cl, 0.25, s+1)
		if next > stopSize {
			next = stopSize
		}
		if next <= s {
			next = s + 1
		}
		s = next
	}
}

// mergeScope selects which clusters are allowed to merge in recruitAndMerge.
type mergeScope int

const (
	mergeInactiveOnly mergeScope = iota + 1
	mergeAnySmallerID
)

// recruitAndMerge runs one ClusterPUSH / relay / ClusterMerge iteration:
// participating cluster members push their cluster ID to random nodes,
// receivers relay one candidate to their leader, and leaders of eligible
// clusters merge into a candidate.
func recruitAndMerge(cl *cluster.Clustering, policy candidatePolicy, participate func(i int) bool, scope mergeScope) {
	net := cl.Network()
	cl.RandomPush(
		participate,
		func(i int) phonecall.Message {
			return phonecall.Message{Tag: cluster.TagRecruit, IDs: []phonecall.NodeID{cl.Follow(i)}}
		},
		func(j int, m phonecall.Message) {
			if m.Tag != cluster.TagRecruit || len(m.IDs) != 1 {
				return
			}
			if !cl.IsClustered(j) {
				return
			}
			if scope == mergeInactiveOnly && cl.IsActive(j) {
				return
			}
			if m.IDs[0] == cl.Follow(j) {
				return // a push from the node's own cluster
			}
			recordCandidate(cl, policy, j, m.IDs[0])
		},
	)
	cl.RelayCandidates()
	cl.Merge(func(leader int) (phonecall.NodeID, bool) {
		if scope == mergeInactiveOnly && cl.IsActive(leader) {
			return phonecall.NoNode, false
		}
		candidates := cl.Candidates(leader)
		if len(candidates) == 0 {
			return phonecall.NoNode, false
		}
		own := net.ID(leader)
		switch policy {
		case pickSmallest:
			best := candidates[0]
			for _, c := range candidates[1:] {
				if c < best {
					best = c
				}
			}
			if scope == mergeAnySmallerID && best >= own {
				return phonecall.NoNode, false
			}
			return best, true
		default:
			pick := candidates[net.NodeRNG(leader).Intn(len(candidates))]
			return pick, true
		}
	})
	cl.ClearCandidates()
}

// activateClusters runs ClusterActivate(prob) with a driver-side safeguard:
// if by bad luck no cluster activates (only relevant at small n), activation
// is retried a bounded number of times and finally forced for the
// smallest-ID leader.
func activateClusters(cl *cluster.Clustering, prob float64) {
	for attempt := 0; attempt < 5; attempt++ {
		cl.Activate(prob)
		if countActiveLeaders(cl) > 0 {
			return
		}
	}
	cl.SetActivation(func(leader int) bool {
		return cl.Network().ID(leader) == smallestLeaderID(cl)
	})
}

// smallestLeaderID returns the smallest live leader ID (local).
func smallestLeaderID(cl *cluster.Clustering) phonecall.NodeID {
	net := cl.Network()
	best := phonecall.NoNode
	for i := 0; i < net.N(); i++ {
		if net.IsFailed(i) || !cl.IsLeader(i) {
			continue
		}
		if best == phonecall.NoNode || net.ID(i) < best {
			best = net.ID(i)
		}
	}
	return best
}

// mergeAllClusters implements Procedure MergeAllClusters: every cluster
// pushes its ID, and every cluster merges towards the smallest ID it
// received. The paper uses two repetitions; the driver repeats until a single
// cluster remains (bounded by MergeAllIterations), which at practical n takes
// two or three repetitions.
func mergeAllClusters(cl *cluster.Clustering, p Params) {
	for iter := 0; iter < p.MergeAllIterations; iter++ {
		if cl.ClusteredCount() == 0 || cl.LeaderCount() <= 1 {
			break
		}
		recruitAndMerge(cl, pickSmallest, nil, mergeAnySmallerID)
		cl.Compress(1)
	}
	cl.Compress(1)
}

// boundedClusterPush implements Procedure BoundedClusterPush (Algorithm 2,
// and with resizeTarget > 0 the Algorithm 4 variant with continuous
// ClusterResize): the clusters recruit unclustered nodes by random pushes and
// measure their own growth, deactivating once growth falls below
// BoundedGrowthFactor. This expands the clustered set to Θ(n) while sending
// only O(n) messages: the per-iteration cost is proportional to the current
// cluster sizes, which grow geometrically, so the total telescopes to O(n).
//
// Cluster growth is measured by having each newly recruited node report to
// its leader once (a join report), which is cheaper than re-running
// ClusterSize over the whole cluster every iteration but gives the leader the
// same information.
func boundedClusterPush(cl *cluster.Clustering, p Params, resizeTarget int) {
	net := cl.Network()
	n := net.N()
	cl.SetActivation(func(int) bool { return true })

	// Leaders learn their current size once at the start of the phase.
	cl.MeasureSizes()
	sizeEst := make([]int, n)
	for i := 0; i < n; i++ {
		if cl.IsLeader(i) && !net.IsFailed(i) {
			sizeEst[i] = cl.Size(i)
			if sizeEst[i] < 1 {
				sizeEst[i] = 1
			}
		}
	}
	mustReport := make([]bool, n)

	iterCap := p.phaseCap(n)
	for iter := 0; iter < iterCap; iter++ {
		if countActiveLeaders(cl) == 0 {
			break
		}
		if cl.ClusteredCount() >= net.LiveCount() {
			break
		}
		// The Algorithm 4 variant keeps clusters at Θ(Δ) by resizing, but only
		// when some cluster actually outgrew the bound — resizing every
		// iteration would charge Θ(n) messages per iteration for nothing.
		if resizeTarget > 0 && largestClusterSize(cl) >= 2*resizeTarget {
			cl.Resize(resizeTarget)
			cl.MeasureSizes()
			for i := 0; i < n; i++ {
				if cl.IsLeader(i) && !net.IsFailed(i) {
					sizeEst[i] = cl.Size(i)
				}
			}
			cl.SetActivation(func(int) bool { return true })
		}
		// ClusterPUSH(follow): unclustered receivers join the pushing cluster.
		cl.RandomPush(
			func(i int) bool { return cl.IsActive(i) },
			func(i int) phonecall.Message {
				return phonecall.Message{Tag: cluster.TagRecruit, IDs: []phonecall.NodeID{cl.Follow(i)}}
			},
			func(j int, m phonecall.Message) {
				if m.Tag != cluster.TagRecruit || len(m.IDs) != 1 {
					return
				}
				if !cl.IsClustered(j) {
					cl.SetFollow(j, m.IDs[0])
					cl.SetActive(j, true)
					mustReport[j] = true
				}
			},
		)
		// Join reports: each new recruit tells its leader it arrived.
		joins := make([]int, n)
		net.ExecRound(
			func(i int) phonecall.Intent {
				if !mustReport[i] {
					return phonecall.Silent()
				}
				mustReport[i] = false
				return phonecall.PushIntent(phonecall.DirectTarget(cl.Follow(i)), phonecall.Message{Tag: cluster.TagSizeReport})
			},
			nil,
			func(j int, inbox []phonecall.Message) {
				if !cl.IsLeader(j) {
					return
				}
				for _, m := range inbox {
					if m.Tag == cluster.TagSizeReport {
						joins[j]++
					}
				}
			},
		)
		// Growth check: clusters that grew by less than the threshold stop.
		cl.SetActivation(func(leader int) bool {
			if !cl.IsActive(leader) {
				return false
			}
			prev := sizeEst[leader]
			sizeEst[leader] += joins[leader]
			if prev > 0 && float64(sizeEst[leader]) < p.BoundedGrowthFactor*float64(prev) {
				return false
			}
			return true
		})
	}
}

// pullJoinRounds returns the round cap for UnclusteredNodesPull.
func pullJoinRounds(p Params, n int) int { return p.phaseCap(n) }
