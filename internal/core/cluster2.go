package core

import (
	"repro/internal/cluster"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// Cluster2 runs Algorithm 2 of the paper: the main result (Theorem 2). It
// broadcasts the rumor held by the source nodes in O(log log n) rounds using
// O(1) messages per node on average and O(nb) bits in total.
//
// The difference to Cluster1 is the tight control of how many nodes
// communicate: the initial and squaring phases operate on only Θ(n/log n)
// clustered nodes, a BoundedClusterPush phase then informs a constant
// fraction of the network, and only the final PULL phase involves everyone —
// each node pulling an expected constant number of times.
func Cluster2(net *phonecall.Network, sources []int, params Params) (trace.Result, error) {
	p := params.withDefaults()
	if err := checkSources(net, sources); err != nil {
		return trace.Result{}, err
	}
	cl := cluster.New(net)
	for _, s := range sources {
		cl.SetRumor(s)
	}
	rec := trace.NewRecorder(net)

	targetSize := p.initialClusterSize(net.N())
	growInitialClustersSparse(cl, p, targetSize)
	rec.Mark("GrowInitialClusters")

	squareClusters(cl, p, targetSize, squareStopSize(net.N()), pickFirst)
	rec.Mark("SquareClusters")

	mergeAllClusters(cl, p)
	rec.Mark("MergeAllClusters")

	boundedClusterPush(cl, p, 0)
	rec.Mark("BoundedClusterPush")

	cl.PullJoin(pullJoinRounds(p, net.N()))
	rec.Mark("UnclusteredNodesPull")

	cl.ShareRumor()
	rec.Mark("ClusterShare")

	return trace.Summarize("cluster2", net, cl.InformedCount(), rec.Phases()), nil
}

// Cluster2Clustering runs only the clustering part of Algorithm 2 and returns
// the resulting clustering (a single cluster containing all nodes with high
// probability).
func Cluster2Clustering(net *phonecall.Network, params Params) *cluster.Clustering {
	p := params.withDefaults()
	cl := cluster.New(net)
	targetSize := p.initialClusterSize(net.N())
	growInitialClustersSparse(cl, p, targetSize)
	squareClusters(cl, p, targetSize, squareStopSize(net.N()), pickFirst)
	mergeAllClusters(cl, p)
	boundedClusterPush(cl, p, 0)
	cl.PullJoin(pullJoinRounds(p, net.N()))
	return cl
}
