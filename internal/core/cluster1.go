package core

import (
	"repro/internal/cluster"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// Cluster1 runs Algorithm 1 of the paper and broadcasts the rumor held by the
// source nodes to the whole network. It demonstrates the ideas behind the
// optimal Θ(log log n) round complexity (Theorem 9) without tuning message or
// bit complexity.
//
// Phases (see Algorithm 1):
//  1. GrowInitialClusters — a 1/(C·ln n) fraction of nodes seed singleton
//     clusters and recruit by random PUSH gossip until ≈90% of nodes are
//     clustered in clusters of size Ω(ln n).
//  2. SquareClusters — repeatedly square the cluster size by activating a
//     1/s fraction of clusters and merging the rest into them.
//  3. MergeAllClusters — merge every cluster into the cluster with the
//     smallest ID.
//  4. UnclusteredNodesPull — remaining unclustered nodes PULL until they join.
//  5. ClusterShare — the rumor is shared within the single cluster.
func Cluster1(net *phonecall.Network, sources []int, params Params) (trace.Result, error) {
	p := params.withDefaults()
	if err := checkSources(net, sources); err != nil {
		return trace.Result{}, err
	}
	cl := cluster.New(net)
	for _, s := range sources {
		cl.SetRumor(s)
	}
	rec := trace.NewRecorder(net)

	growInitialClustersDense(cl, p)
	rec.Mark("GrowInitialClusters")

	startSize := p.cluster1StartSize(net.N())
	squareClusters(cl, p, startSize, squareStopSize(net.N()), pickSmallest)
	rec.Mark("SquareClusters")

	mergeAllClusters(cl, p)
	rec.Mark("MergeAllClusters")

	cl.PullJoin(pullJoinRounds(p, net.N()))
	rec.Mark("UnclusteredNodesPull")

	cl.ShareRumor()
	rec.Mark("ClusterShare")

	return trace.Summarize("cluster1", net, cl.InformedCount(), rec.Phases()), nil
}

// Cluster1Clustering runs only the clustering part of Algorithm 1 (no rumor)
// and returns the resulting clustering. It is exposed for tests and for
// applications that want to reuse the single cluster for coordination tasks
// other than broadcast.
func Cluster1Clustering(net *phonecall.Network, params Params) *cluster.Clustering {
	p := params.withDefaults()
	cl := cluster.New(net)
	growInitialClustersDense(cl, p)
	squareClusters(cl, p, p.cluster1StartSize(net.N()), squareStopSize(net.N()), pickSmallest)
	mergeAllClusters(cl, p)
	cl.PullJoin(pullJoinRounds(p, net.N()))
	return cl
}
