package baseline

import (
	"math"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

// karpState enumerates the node states of the median-counter algorithm.
type karpState uint8

const (
	karpUninformed karpState = iota + 1
	karpCounting             // state B: transmits, increments its counter by the median rule
	karpCoolDown             // state C: transmits for O(log log n) more rounds
	karpDone                 // state D: informed but no longer transmits
)

// MedianCounter runs the median-counter rumor spreading algorithm of Karp,
// Schindelhauer, Shenker and Vöcking [FOCS 2000, reference 10 of the paper].
// Every node calls a uniformly random node each round and the rumor (with the
// sender's counter attached) travels in both directions over the call. A node
// stops transmitting O(log log n) rounds after its counter saturates, which
// bounds the number of rumor transmissions by O(n log log n) while the round
// complexity stays Θ(log n).
func MedianCounter(net *phonecall.Network, sources []int) (trace.Result, error) {
	st, err := newRumorState(net, sources)
	if err != nil {
		return trace.Result{}, err
	}
	n := net.N()
	ctrMax := int(math.Ceil(math.Log2(math.Log2(float64(n)+2)))) + 2
	coolRounds := ctrMax

	state := make([]karpState, n)
	counter := make([]int, n)
	cool := make([]int, n)
	for i := range state {
		state[i] = karpUninformed
	}
	for _, s := range sources {
		state[s] = karpCounting
		counter[s] = 1
	}

	transmitting := func(i int) bool { return state[i] == karpCounting || state[i] == karpCoolDown }
	anyTransmitting := func() bool {
		for i := 0; i < n; i++ {
			if !net.IsFailed(i) && transmitting(i) {
				return true
			}
		}
		return false
	}

	rec := trace.NewRecorder(net)
	maxRounds := maxUniformRounds(n)
	completion := 0
	for round := 0; round < maxRounds && (!st.allInformed() || anyTransmitting()); round++ {
		// Fallback for finite-n robustness: if every informed node already
		// stopped transmitting but uninformed nodes remain, done nodes answer
		// pulls again (this never triggers at the calibrated constants for the
		// sizes used in the experiments, but guarantees termination).
		reviveDone := !anyTransmitting()

		net.ExecRound(
			func(i int) phonecall.Intent {
				switch {
				case transmitting(i):
					return phonecall.ExchangeIntent(phonecall.RandomTarget(),
						phonecall.Message{Tag: tagRumor, Rumor: true, Value: uint64(counter[i])})
				case state[i] == karpUninformed:
					return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
				default:
					return phonecall.Silent()
				}
			},
			func(j int) (phonecall.Message, bool) {
				if transmitting(j) || (reviveDone && state[j] == karpDone) {
					return phonecall.Message{Tag: tagRumor, Rumor: true, Value: uint64(counter[j])}, true
				}
				if state[j] == karpDone {
					// Done nodes no longer transmit the rumor but still reveal
					// their (saturated) counter so partners can advance theirs.
					return phonecall.Message{Tag: tagStatus, Value: uint64(ctrMax)}, true
				}
				return phonecall.Message{}, false
			},
			func(i int, inbox []phonecall.Message) {
				// Collect the counters of informed communication partners.
				received := make([]int, 0, len(inbox))
				gotRumor := false
				for _, m := range inbox {
					if m.Rumor || m.Tag == tagStatus {
						received = append(received, int(m.Value))
					}
					if m.Rumor {
						gotRumor = true
					}
				}
				if len(received) == 0 {
					return
				}
				switch state[i] {
				case karpUninformed:
					if !gotRumor {
						return
					}
					st.mark(i)
					state[i] = karpCounting
					counter[i] = 1
				case karpCounting:
					// Median rule: if at least half of the informed partners
					// report a counter at least as large as ours, increment.
					atLeast := 0
					for _, c := range received {
						if c >= counter[i] {
							atLeast++
						}
					}
					if 2*atLeast >= len(received) {
						counter[i]++
					}
					if counter[i] >= ctrMax {
						state[i] = karpCoolDown
						cool[i] = coolRounds
					}
				case karpCoolDown, karpDone:
					// Cool-down progression is handled uniformly after the round.
				}
			},
		)
		// Cool-down also elapses for nodes that received nothing this round.
		for i := 0; i < n; i++ {
			if state[i] == karpCoolDown {
				cool[i]--
				if cool[i] <= 0 {
					state[i] = karpDone
				}
			}
		}
		if completion == 0 && st.allInformed() {
			completion = net.Metrics().Rounds
		}
	}
	rec.Mark("median-counter")
	res := trace.Summarize("karp-median-counter", net, st.liveInformed(), rec.Phases())
	if completion > 0 {
		res.CompletionRound = completion
	}
	return res, nil
}
