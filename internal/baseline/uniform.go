package baseline

import (
	"math"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

// Message tags shared by the baseline protocols.
const (
	// tagRumor marks messages that carry the rumor.
	tagRumor uint8 = 101
	// tagStatus marks rumor-free status messages (used by the median-counter
	// algorithm's retired nodes).
	tagStatus uint8 = 102
)

// fixedBudget is the number of rounds the classical protocols run: in the
// random phone call model nodes cannot detect global completion, so the
// protocols execute a fixed Θ(log n) budget. The round at which every node
// was actually informed is reported as CompletionRound.
func fixedBudget(n int) int { return int(math.Ceil(math.Log2(float64(n)))) + 15 }

// Push runs the classical uniform PUSH protocol: in every round every
// informed node pushes the rumor to a uniformly random node. It informs all
// nodes in Θ(log n) rounds using Θ(log n) messages per node [Pittel 1987].
func Push(net *phonecall.Network, sources []int) (trace.Result, error) {
	return runUniform(net, sources, "push", func(st *rumorState) {
		net.ExecRound(
			func(i int) phonecall.Intent {
				if !st.has(i) {
					return phonecall.Silent()
				}
				return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: tagRumor, Rumor: true})
			},
			nil,
			markRumors(st),
		)
	})
}

// Pull runs the classical uniform PULL protocol: in every round every
// uninformed node pulls from a uniformly random node and learns the rumor if
// the responder holds it.
func Pull(net *phonecall.Network, sources []int) (trace.Result, error) {
	return runUniform(net, sources, "pull", func(st *rumorState) {
		net.ExecRound(
			func(i int) phonecall.Intent {
				if st.has(i) {
					return phonecall.Silent()
				}
				return phonecall.PullIntent(phonecall.RandomTarget())
			},
			respondRumor(st),
			markRumors(st),
		)
	})
}

// PushPull runs the classical PUSH-PULL protocol in the random phone call
// model: in every round every node calls a uniformly random node; the rumor
// is transmitted in both directions over the call. This is the Θ(log n)-round
// baseline whose "log n barrier" the paper breaks.
func PushPull(net *phonecall.Network, sources []int) (trace.Result, error) {
	return runUniform(net, sources, "push-pull", func(st *rumorState) {
		net.ExecRound(
			func(i int) phonecall.Intent {
				if st.has(i) {
					return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{Tag: tagRumor, Rumor: true})
				}
				return phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
			},
			respondRumor(st),
			markRumors(st),
		)
	})
}

// runUniform drives one of the classical protocols for its fixed budget.
func runUniform(net *phonecall.Network, sources []int, name string, round func(st *rumorState)) (trace.Result, error) {
	st, err := newRumorState(net, sources)
	if err != nil {
		return trace.Result{}, err
	}
	rec := trace.NewRecorder(net)
	completion := 0
	budget := fixedBudget(net.N())
	for r := 0; r < budget; r++ {
		// PULL-only spreading is the one classical protocol that cannot finish
		// its Θ(log n) budget early but also sends no messages once everyone is
		// informed; skipping the idle tail keeps the run short without changing
		// any reported quantity. PUSH and PUSH-PULL keep transmitting for the
		// full budget, exactly as the model prescribes.
		if name == "pull" && st.allInformed() {
			break
		}
		round(st)
		if completion == 0 && st.allInformed() {
			completion = net.Metrics().Rounds
		}
	}
	rec.Mark(name)
	res := trace.Summarize(name, net, st.liveInformed(), rec.Phases())
	if completion > 0 {
		res.CompletionRound = completion
	}
	return res, nil
}

// markRumors returns a delivery callback that marks receivers of the rumor.
func markRumors(st *rumorState) func(i int, inbox []phonecall.Message) {
	return func(i int, inbox []phonecall.Message) {
		for _, m := range inbox {
			if m.Rumor {
				st.mark(i)
			}
		}
	}
}

// respondRumor returns an address-oblivious responder that hands out the
// rumor when the responder holds it.
func respondRumor(st *rumorState) func(j int) (phonecall.Message, bool) {
	return func(j int) (phonecall.Message, bool) {
		if !st.has(j) {
			return phonecall.Message{}, false
		}
		return phonecall.Message{Tag: tagRumor, Rumor: true}, true
	}
}
