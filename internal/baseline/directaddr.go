package baseline

import (
	"math"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

// Message tags used by the direct-addressing baselines.
const (
	tagHarvest uint8 = 110 + iota
	tagKnowledge
)

// AddressBook is the direct-addressing gossip baseline standing in for the
// Avin–Elsässer algorithm [DISC 2013, reference 1 of the paper], whose exact
// construction is published in a separate paper that is not part of this
// reproduction (see DESIGN.md, substitution table). The stand-in reproduces
// the resource profile of their Theorem 1 — Θ(√log n) messages per node of
// Θ(√log n · log n) bits spent on learning addresses, followed by a
// direct-addressing spread — so the paper's comparison of message- and
// bit-complexity against Cluster2 is exercised; its measured round count
// falls between PUSH-PULL and Cluster2 rather than meeting their O(√log n)
// bound, which requires the original construction.
//
// Phase 1 (address harvesting): for ⌈√log₂ n⌉ rounds every node pushes a
// sample of ⌈√log₂ n⌉ known IDs to a random node; everyone accumulates an
// address book of Θ(log n) random node IDs.
// Phase 2 (spreading): informed nodes push the rumor to unattempted address
// book entries (direct addressing), uninformed nodes pull from address book
// entries; both fall back to uniformly random targets when the book is
// exhausted.
func AddressBook(net *phonecall.Network, sources []int) (trace.Result, error) {
	st, err := newRumorState(net, sources)
	if err != nil {
		return trace.Result{}, err
	}
	n := net.N()
	k := int(math.Ceil(math.Sqrt(math.Log2(float64(n) + 2))))
	if k < 1 {
		k = 1
	}
	bookCap := k * k * 2

	book := make([][]phonecall.NodeID, n) // learned addresses, in arrival order
	attempted := make([]int, n)           // next unattempted index in book
	seen := make([]map[phonecall.NodeID]bool, n)
	for i := range seen {
		seen[i] = make(map[phonecall.NodeID]bool, bookCap)
	}
	addToBook := func(i int, id phonecall.NodeID) {
		if id == phonecall.NoNode || id == net.ID(i) || len(book[i]) >= bookCap || seen[i][id] {
			return
		}
		seen[i][id] = true
		book[i] = append(book[i], id)
	}

	rec := trace.NewRecorder(net)

	// Phase 1: harvest addresses.
	for round := 0; round < k; round++ {
		net.ExecRound(
			func(i int) phonecall.Intent {
				ids := make([]phonecall.NodeID, 0, k)
				ids = append(ids, net.ID(i))
				rng := net.NodeRNG(i)
				for len(ids) < k && len(book[i]) > 0 {
					ids = append(ids, book[i][rng.Intn(len(book[i]))])
				}
				return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: tagHarvest, IDs: ids})
			},
			nil,
			func(i int, inbox []phonecall.Message) {
				for _, m := range inbox {
					if m.Tag != tagHarvest {
						continue
					}
					for _, id := range m.IDs {
						addToBook(i, id)
					}
					addToBook(i, m.From)
				}
			},
		)
	}
	rec.Mark("harvest")

	// Phase 2: spread the rumor using direct addressing.
	nextTarget := func(i int) phonecall.Target {
		if attempted[i] < len(book[i]) {
			t := phonecall.DirectTarget(book[i][attempted[i]])
			attempted[i]++
			return t
		}
		return phonecall.RandomTarget()
	}
	for round := 0; round < maxUniformRounds(n) && !st.allInformed(); round++ {
		net.ExecRound(
			func(i int) phonecall.Intent {
				if st.has(i) {
					return phonecall.PushIntent(nextTarget(i), phonecall.Message{Tag: tagRumor, Rumor: true})
				}
				return phonecall.PullIntent(nextTarget(i))
			},
			func(j int) (phonecall.Message, bool) {
				if !st.has(j) {
					return phonecall.Message{}, false
				}
				return phonecall.Message{Tag: tagRumor, Rumor: true}, true
			},
			func(i int, inbox []phonecall.Message) {
				for _, m := range inbox {
					if m.Rumor {
						st.mark(i)
					}
					addToBook(i, m.From)
				}
			},
		)
	}
	rec.Mark("spread")
	return trace.Summarize("addressbook", net, st.liveInformed(), rec.Phases()), nil
}
