package baseline

import (
	"math"
	"testing"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

func newNet(t testing.TB, n int, seed uint64) *phonecall.Network {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("phonecall.New: %v", err)
	}
	return net
}

func requireAll(t *testing.T, r trace.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("broadcast failed: %v", err)
	}
	if !r.AllInformed {
		t.Fatalf("%s informed only %d/%d nodes", r.Algorithm, r.Informed, r.Live)
	}
}

func TestPushInformsAll(t *testing.T) {
	for _, n := range []int{100, 2000, 20000} {
		net := newNet(t, n, 1)
		r, err := Push(net, []int{0})
		requireAll(t, r, err)
		if float64(r.CompletionRound) > 3*math.Log2(float64(n))+10 {
			t.Fatalf("push completed in %d rounds at n=%d, want O(log n)", r.CompletionRound, n)
		}
	}
}

func TestPullInformsAll(t *testing.T) {
	net := newNet(t, 5000, 2)
	r, err := Pull(net, []int{0})
	requireAll(t, r, err)
}

func TestPushPullInformsAll(t *testing.T) {
	for _, n := range []int{1000, 20000} {
		net := newNet(t, n, 3)
		r, err := PushPull(net, []int{0})
		requireAll(t, r, err)
		if float64(r.CompletionRound) > 2.5*math.Log2(float64(n)) {
			t.Fatalf("push-pull completed in %d rounds at n=%d, want about log n + log log n", r.CompletionRound, n)
		}
	}
}

func TestPushPullRoundsGrowLogarithmically(t *testing.T) {
	run := func(n int) int {
		net := newNet(t, n, 7)
		r, err := PushPull(net, []int{0})
		requireAll(t, r, err)
		return r.CompletionRound
	}
	small, large := run(1000), run(100000)
	if large <= small {
		t.Fatalf("push-pull rounds should grow with n: %d (1k) vs %d (100k)", small, large)
	}
}

func TestMedianCounterInformsAll(t *testing.T) {
	for _, n := range []int{1000, 20000} {
		for seed := uint64(1); seed <= 3; seed++ {
			net := newNet(t, n, seed)
			r, err := MedianCounter(net, []int{0})
			requireAll(t, r, err)
		}
	}
}

func TestMedianCounterMessageComplexity(t *testing.T) {
	// The median-counter algorithm retires informed nodes after O(log log n)
	// rounds, so its rumor transmissions per node must stay clearly below
	// those of plain PUSH-PULL, whose nodes transmit for the whole Θ(log n)
	// budget.
	net := newNet(t, 50000, 5)
	r, err := MedianCounter(net, []int{0})
	requireAll(t, r, err)
	perNode := float64(r.Messages) / float64(r.N)
	if perNode > 2*math.Log2(float64(r.N)) {
		t.Fatalf("median-counter rumor transmissions per node = %.2f, unexpectedly large", perNode)
	}

	netPP := newNet(t, 50000, 5)
	pp, err := PushPull(netPP, []int{0})
	requireAll(t, pp, err)
	ppPerNode := float64(pp.Messages) / float64(pp.N)
	if perNode >= 0.8*ppPerNode {
		t.Fatalf("median-counter should transmit fewer rumors per node (%.2f) than push-pull (%.2f)", perNode, ppPerNode)
	}
}

func TestAddressBookInformsAll(t *testing.T) {
	for _, n := range []int{1000, 20000} {
		net := newNet(t, n, 4)
		r, err := AddressBook(net, []int{0})
		requireAll(t, r, err)
	}
}

func TestAddressBookUsesDirectAddressing(t *testing.T) {
	// The harvest phase must cost about √log n messages per node.
	net := newNet(t, 20000, 6)
	r, err := AddressBook(net, []int{0})
	requireAll(t, r, err)
	if len(r.Phases) < 2 || r.Phases[0].Name != "harvest" {
		t.Fatalf("expected a harvest phase, got %+v", r.Phases)
	}
	harvestPerNode := float64(r.Phases[0].Messages) / float64(r.N)
	k := math.Ceil(math.Sqrt(math.Log2(float64(r.N))))
	if harvestPerNode < k-1 || harvestPerNode > k+1 {
		t.Fatalf("harvest messages per node = %.2f, want about √log n = %.0f", harvestPerNode, k)
	}
}

func TestNameDropperDiscoversSource(t *testing.T) {
	net := newNet(t, 500, 8)
	r, err := NameDropper(net, []int{0})
	if err != nil {
		t.Fatalf("NameDropper: %v", err)
	}
	if !r.EveryoneKnowsSource || !r.AllInformed {
		t.Fatalf("name-dropper did not discover the source at every node: %+v", r.Result)
	}
	logN := math.Log2(float64(r.N))
	if float64(r.Rounds) > 2*logN*logN {
		t.Fatalf("name-dropper rounds = %d, want O(log² n)", r.Rounds)
	}
	if r.AverageKnown < 2 {
		t.Fatalf("average known IDs = %.1f, expected knowledge to spread", r.AverageKnown)
	}
}

func TestBaselinesRejectMissingSource(t *testing.T) {
	net := newNet(t, 100, 9)
	if _, err := Push(net, nil); err == nil {
		t.Fatal("Push without sources should fail")
	}
	if _, err := PushPull(net, []int{1000}); err == nil {
		t.Fatal("PushPull with out-of-range source should fail")
	}
	net.Fail(5)
	if _, err := MedianCounter(net, []int{5}); err == nil {
		t.Fatal("MedianCounter with failed source should fail")
	}
}

func TestPushFaultTolerance(t *testing.T) {
	net := newNet(t, 10000, 10)
	for i := 0; i < 1000; i++ {
		net.Fail(i * 3 % 10000)
	}
	r, err := PushPull(net, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Informed < r.Live {
		t.Fatalf("push-pull with failures informed %d/%d live nodes", r.Informed, r.Live)
	}
}

func TestRumorStateCountsLiveOnly(t *testing.T) {
	net := newNet(t, 10, 11)
	net.Fail(2)
	st, err := newRumorState(net, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	st.mark(2) // failed node should not count
	st.mark(3)
	if st.liveInformed() != 2 {
		t.Fatalf("liveInformed = %d, want 2", st.liveInformed())
	}
	if st.allInformed() {
		t.Fatal("allInformed should be false")
	}
}
