package baseline

import (
	"math"

	"repro/internal/phonecall"
	"repro/internal/trace"
)

// NameDropperResult extends the broadcast result with resource-discovery
// specific outcomes.
type NameDropperResult struct {
	trace.Result
	// EveryoneKnowsSource reports whether every live node learned the source's ID.
	EveryoneKnowsSource bool
	// AverageKnown is the average number of IDs known per live node at the end.
	AverageKnown float64
}

// NameDropper runs the Name-Dropper resource-discovery protocol of
// Harchol-Balter, Leighton and Lewin [PODC 1999, reference 9 of the paper]:
// starting from a weakly connected initial knowledge graph (here a directed
// ring), every node repeatedly forwards all IDs it knows to a random node it
// knows. The protocol completes (every node knows every other) in O(log² n)
// rounds; here we run it until every node knows the ID of sources[0], which
// is the broadcast-equivalent termination condition, or until the round cap.
//
// Knowledge sets are Θ(n) per node, so this baseline is only exercised at
// small n (it is a rounds-comparison baseline, not a message-efficiency one).
func NameDropper(net *phonecall.Network, sources []int) (NameDropperResult, error) {
	st, err := newRumorState(net, sources)
	if err != nil {
		return NameDropperResult{}, err
	}
	n := net.N()
	sourceID := net.ID(sources[0])

	known := make([]map[phonecall.NodeID]bool, n)
	list := make([][]phonecall.NodeID, n)
	add := func(i int, id phonecall.NodeID) {
		if id == phonecall.NoNode || id == net.ID(i) || known[i][id] {
			return
		}
		known[i][id] = true
		list[i] = append(list[i], id)
	}
	for i := 0; i < n; i++ {
		known[i] = make(map[phonecall.NodeID]bool)
		add(i, net.ID((i+1)%n)) // initial topology: directed ring
	}

	knowsSource := func(i int) bool { return i == sources[0] || known[i][sourceID] }
	allKnow := func() bool {
		for i := 0; i < n; i++ {
			if !net.IsFailed(i) && !knowsSource(i) {
				return false
			}
		}
		return true
	}

	rec := trace.NewRecorder(net)
	maxRounds := int(2*math.Pow(math.Log2(float64(n)), 2)) + 20
	for round := 0; round < maxRounds && !allKnow(); round++ {
		net.ExecRound(
			func(i int) phonecall.Intent {
				if len(list[i]) == 0 {
					return phonecall.Silent()
				}
				target := list[i][net.NodeRNG(i).Intn(len(list[i]))]
				ids := append([]phonecall.NodeID{net.ID(i)}, list[i]...)
				return phonecall.PushIntent(phonecall.DirectTarget(target), phonecall.Message{Tag: tagKnowledge, IDs: ids})
			},
			nil,
			func(i int, inbox []phonecall.Message) {
				for _, m := range inbox {
					if m.Tag != tagKnowledge {
						continue
					}
					for _, id := range m.IDs {
						add(i, id)
					}
					add(i, m.From)
				}
			},
		)
		for i := 0; i < n; i++ {
			if !net.IsFailed(i) && knowsSource(i) {
				st.mark(i)
			}
		}
	}
	rec.Mark("name-dropper")

	totalKnown := 0
	live := 0
	for i := 0; i < n; i++ {
		if net.IsFailed(i) {
			continue
		}
		live++
		totalKnown += len(list[i])
	}
	res := NameDropperResult{Result: trace.Summarize("name-dropper", net, st.liveInformed(), rec.Phases())}
	res.EveryoneKnowsSource = allKnow()
	if live > 0 {
		res.AverageKnown = float64(totalKnown) / float64(live)
	}
	return res, nil
}
