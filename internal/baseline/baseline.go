// Package baseline implements the prior-work gossip algorithms the paper
// compares against: the classical uniform PUSH, PULL and PUSH-PULL protocols
// [Pittel 1987], the median-counter algorithm of Karp, Schindelhauer, Shenker
// and Vöcking [FOCS 2000], a direct-addressing address-book gossip standing
// in for Avin–Elsässer [DISC 2013], and the Name-Dropper resource-discovery
// protocol of Harchol-Balter, Leighton and Lewin [PODC 1999].
//
// All algorithms run on the same phone-call substrate as the paper's
// algorithms, so their round-, message- and bit-complexities are directly
// comparable.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/phonecall"
)

// ErrNoSource is returned when a broadcast is started without a live source.
var ErrNoSource = errors.New("baseline: broadcast needs at least one live source node")

// rumorState tracks which nodes hold the rumor. mark is invoked from the
// engine's delivery callbacks, which run on concurrent shards when the
// network uses multiple workers; informed[i] is only ever written by node i's
// own callback, but the live count is shared and therefore atomic.
type rumorState struct {
	net      *phonecall.Network
	informed []bool
	count    atomic.Int64
}

func newRumorState(net *phonecall.Network, sources []int) (*rumorState, error) {
	st := &rumorState{net: net, informed: make([]bool, net.N())}
	live := 0
	for _, s := range sources {
		if s < 0 || s >= net.N() {
			return nil, fmt.Errorf("baseline: source index %d out of range [0,%d)", s, net.N())
		}
		if !net.IsFailed(s) {
			live++
		}
		st.mark(s)
	}
	if live == 0 {
		return nil, ErrNoSource
	}
	return st, nil
}

func (s *rumorState) mark(i int) {
	if !s.informed[i] {
		s.informed[i] = true
		if !s.net.IsFailed(i) {
			s.count.Add(1)
		}
	}
}

func (s *rumorState) has(i int) bool { return s.informed[i] }

// liveInformed returns the number of live informed nodes.
func (s *rumorState) liveInformed() int { return int(s.count.Load()) }

func (s *rumorState) allInformed() bool { return int(s.count.Load()) >= s.net.LiveCount() }

// maxUniformRounds caps the self-terminating baselines at a small multiple of
// log n.
func maxUniformRounds(n int) int { return int(4*math.Log2(float64(n))) + 30 }
