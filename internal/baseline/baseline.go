// Package baseline implements the prior-work gossip algorithms the paper
// compares against: the classical uniform PUSH, PULL and PUSH-PULL protocols
// [Pittel 1987], the median-counter algorithm of Karp, Schindelhauer, Shenker
// and Vöcking [FOCS 2000], a direct-addressing address-book gossip standing
// in for Avin–Elsässer [DISC 2013], and the Name-Dropper resource-discovery
// protocol of Harchol-Balter, Leighton and Lewin [PODC 1999].
//
// All algorithms run on the same phone-call substrate as the paper's
// algorithms, so their round-, message- and bit-complexities are directly
// comparable.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/phonecall"
)

// ErrNoSource is returned when a broadcast is started without a live source.
var ErrNoSource = errors.New("baseline: broadcast needs at least one live source node")

// rumorState tracks which nodes hold the rumor. mark is invoked from the
// engine's delivery callbacks, which run on concurrent shards when the
// network uses multiple workers; informed[i] is only ever written by node i's
// own callback, so the state is race-free without shared counters. The live
// counts are computed by scanning between rounds (coordinator side), which
// keeps them correct when a scenario timeline crashes or revives nodes
// mid-execution — an incrementally maintained count would go stale the
// moment an informed node dies.
type rumorState struct {
	net      *phonecall.Network
	informed []bool
}

func newRumorState(net *phonecall.Network, sources []int) (*rumorState, error) {
	st := &rumorState{net: net, informed: make([]bool, net.N())}
	live := 0
	for _, s := range sources {
		if s < 0 || s >= net.N() {
			return nil, fmt.Errorf("baseline: source index %d out of range [0,%d)", s, net.N())
		}
		if !net.IsFailed(s) {
			live++
		}
		st.mark(s)
	}
	if live == 0 {
		return nil, ErrNoSource
	}
	return st, nil
}

func (s *rumorState) mark(i int) { s.informed[i] = true }

func (s *rumorState) has(i int) bool { return s.informed[i] }

// liveInformed returns the number of live informed nodes. Coordinator-only:
// it scans the informed set and must not race with delivery callbacks.
func (s *rumorState) liveInformed() int {
	count := 0
	for i, informed := range s.informed {
		if informed && !s.net.IsFailed(i) {
			count++
		}
	}
	return count
}

func (s *rumorState) allInformed() bool { return s.liveInformed() >= s.net.LiveCount() }

// maxUniformRounds caps the self-terminating baselines at a small multiple of
// log n.
func maxUniformRounds(n int) int { return int(4*math.Log2(float64(n))) + 30 }
