package rumorset

import (
	"encoding/binary"
	"fmt"
)

// Summary codec: the compact wire form of "the rumor IDs I hold". IDs are
// encoded sorted ascending as delta varints — a count prefix, the first ID,
// then (delta-1) for each successor, exploiting that sorted unique IDs have
// deltas ≥ 1. Dense streams (sequential injection IDs) collapse to one byte
// per rumor; the encoding stays valid for arbitrarily sparse uint32 IDs.
//
// The summary deliberately carries rumor IDs, not slots: slots are a local
// reuse pool, so a frame that lingered in flight across an expiry would
// otherwise alias whatever rumor reused the slot. Decoded IDs that no longer
// resolve (expired mid-flight) are dropped by MarkIDs.

// MaxSummaryIDs bounds the decoded summary length, protecting the decoder
// against hostile count prefixes. It is far above any real in-flight window.
const MaxSummaryIDs = 1 << 20

// AppendSummary appends the encoded summary of ids to dst and returns the
// extended slice. ids must be sorted ascending and duplicate-free (as
// produced by AppendHeld); it may be empty.
func AppendSummary(dst []byte, ids []ID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(id))
		} else {
			dst = binary.AppendUvarint(dst, uint64(id)-prev-1)
		}
		prev = uint64(id)
	}
	return dst
}

// DecodeSummary decodes one summary from the front of b, appending the IDs to
// dst. It returns the extended slice and the number of bytes consumed.
// Rejects truncated input, non-monotone deltas (impossible by construction —
// indicates corruption), and IDs overflowing the uint32 space.
func DecodeSummary(dst []ID, b []byte) ([]ID, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return dst, 0, fmt.Errorf("rumorset: truncated summary count")
	}
	if count > MaxSummaryIDs {
		return dst, 0, fmt.Errorf("rumorset: summary claims %d ids (max %d)", count, MaxSummaryIDs)
	}
	off := n
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return dst, 0, fmt.Errorf("rumorset: truncated summary id %d/%d", i, count)
		}
		off += n
		id := d
		if i > 0 {
			id = prev + 1 + d
		}
		if id > 1<<32-1 {
			return dst, 0, fmt.Errorf("rumorset: summary id %d overflows uint32", id)
		}
		dst = append(dst, ID(id))
		prev = id
	}
	return dst, off, nil
}

// SummarySize returns the encoded byte length of a summary over ids without
// encoding it (for bit-accounting). ids must be sorted ascending.
func SummarySize(ids []ID) int {
	size := uvarintLen(uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		if i == 0 {
			size += uvarintLen(uint64(id))
		} else {
			size += uvarintLen(uint64(id) - prev - 1)
		}
		prev = uint64(id)
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
