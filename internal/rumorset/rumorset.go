// Package rumorset tracks an unbounded stream of rumors through a bounded
// in-flight window, lifting the 64-rumor ceiling of the phonecall bitmask
// tracker (which remains the small-set specialization for ≤64 dense IDs).
//
// Rumor IDs come from an unbounded uint32 space; at any moment at most
// MaxInFlight of them are active. Each active rumor owns a slot in a flat
// per-node bit arena, so mark/query stay O(1) and a node's holdings stay one
// cache-friendly bit row. When a rumor converges (every live node holds it)
// it is expired: its slot is reclaimed for the next injection. On the wire,
// summaries carry rumor IDs — never slots — so a stale frame advertising an
// expired rumor fails the ID→slot lookup and is ignored instead of
// mis-marking whatever rumor reused the slot.
//
// Concurrency contract: Mark/MarkIDs/Has/AppendHeld take the table read lock
// and may run concurrently; marks for node i must come from i's owner (its
// goroutine or engine shard), mirroring the engines' callback contract — a
// node's holdings row has exactly one concurrent writer. Everything that changes the
// table shape — Register, Inject, Expire, ExpireConverged, Fail, Revive —
// takes the write lock and is coordinator/monitor-only. Holdings bits are set
// with atomic Or under the read lock and cleared only under the write lock,
// so setters never race the clearing scan.
package rumorset

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
)

// ID identifies one rumor in the unbounded stream. The zero value is a valid
// rumor ID; the phonecall bitmask tracker's RumorID is the dense [0,64)
// prefix of this space.
type ID uint32

// ErrFull reports that the in-flight window is exhausted: every slot holds an
// unconverged rumor, so injection must stall until GC reclaims one. Callers
// test for it with errors.Is to implement backpressure.
var ErrFull = errors.New("rumorset: in-flight rumor window full")

// Set is the scalable rumor ledger: registered in-flight rumors, per-node
// holdings, per-rumor live-informed counts, and expiry/GC of converged
// rumors.
type Set struct {
	n     int // nodes
	cap   int // max in-flight rumors (slots)
	words int // ceil(cap/64): bit words per node row

	mu     sync.RWMutex
	slotOf map[ID]int // active rumors only
	idOf   []ID       // slot → ID, valid while the slot is active
	freeSl []int      // free slot stack
	failed []bool     // per node; written under mu, read by Mark under RLock
	liveN  int        // nodes not currently failed

	// held is the flat holdings arena: node i's row is
	// held[i*words : (i+1)*words], bit s of the row = slot s. Bits are set
	// atomically under RLock (any goroutine) and cleared under Lock
	// (expiry, revive).
	held []atomic.Uint64

	// live counts live-informed nodes per slot. It is the convergence
	// authority for the coordinator-driven engines (sim, lock-step), where
	// churn and expiry happen between rounds; the free-running monitor uses
	// ScanConverged instead and treats these as advisory.
	live []atomic.Int64

	acc []uint64 // ScanConverged scratch accumulator (monitor-only)

	injected  atomic.Int64
	converged atomic.Int64
	expired   atomic.Int64
	lost      atomic.Int64 // injects landing on currently-failed nodes
}

// Stats is a counter snapshot for reporting and telemetry.
type Stats struct {
	Active    int   // rumors currently in flight
	Injected  int64 // total registrations (stream injections)
	Converged int64 // rumors expired because every live node held them
	Expired   int64 // total slot reclamations (converged + forced)
	Lost      int64 // injects that landed on a failed node (revive erases them)
}

// New returns an empty set for n nodes with at most maxInFlight concurrently
// active rumors.
func New(n, maxInFlight int) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rumorset: need at least one node, got %d", n)
	}
	if maxInFlight <= 0 {
		return nil, fmt.Errorf("rumorset: need a positive in-flight window, got %d", maxInFlight)
	}
	words := (maxInFlight + 63) / 64
	s := &Set{
		n:      n,
		cap:    maxInFlight,
		words:  words,
		slotOf: make(map[ID]int, maxInFlight),
		idOf:   make([]ID, maxInFlight),
		freeSl: make([]int, 0, maxInFlight),
		failed: make([]bool, n),
		liveN:  n,
		held:   make([]atomic.Uint64, n*words),
		live:   make([]atomic.Int64, maxInFlight),
		acc:    make([]uint64, words),
	}
	for sl := maxInFlight - 1; sl >= 0; sl-- {
		s.freeSl = append(s.freeSl, sl)
	}
	return s, nil
}

// Cap returns the in-flight window size.
func (s *Set) Cap() int { return s.cap }

// Nodes returns the node count.
func (s *Set) Nodes() int { return s.n }

// Register makes the rumor active, assigning it a slot. Registering an
// already-active ID is a no-op. A previously-expired ID may be re-registered:
// it gets a fresh slot with fresh counts (re-injection of a converged rumor
// is a new epoch of that rumor). Returns ErrFull when the window is
// exhausted. Coordinator-only.
func (s *Set) Register(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.register(id)
}

func (s *Set) register(id ID) error {
	if _, ok := s.slotOf[id]; ok {
		return nil
	}
	if len(s.freeSl) == 0 {
		return fmt.Errorf("%w (cap %d)", ErrFull, s.cap)
	}
	sl := s.freeSl[len(s.freeSl)-1]
	s.freeSl = s.freeSl[:len(s.freeSl)-1]
	s.slotOf[id] = sl
	s.idOf[sl] = id
	s.live[sl].Store(0)
	s.injected.Add(1)
	return nil
}

// Inject registers the rumor and marks node as holding it. Injecting at a
// currently-failed node still sets the bit (mirroring the bitmask tracker)
// but counts as lost, because Revive erases it again. Coordinator-only.
func (s *Set) Inject(node int, id ID) error {
	if node < 0 || node >= s.n {
		return fmt.Errorf("rumorset: inject node %d outside [0,%d)", node, s.n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.register(id); err != nil {
		return err
	}
	if s.failed[node] {
		s.lost.Add(1)
	}
	s.markLocked(node, s.slotOf[id])
	return nil
}

// markLocked sets the holdings bit for (node, slot) and bumps the live count
// on a fresh mark of a live node. Caller holds mu (either mode).
func (s *Set) markLocked(node, sl int) {
	word := &s.held[node*s.words+sl>>6]
	mask := uint64(1) << (sl & 63)
	// Load-then-Or instead of testing Or's return value: per the ownership
	// contract, node i's row is written either by i's owner goroutine (under
	// RLock) or under the exclusive write lock, so the check-then-set pair
	// cannot interleave with another setter of the same row.
	if word.Load()&mask != 0 {
		return
	}
	word.Or(mask)
	if !s.failed[node] {
		s.live[sl].Add(1)
	}
}

// Mark records that node holds the rumor. Unknown (never-registered or
// already-expired) IDs are ignored — this is the ABA guard for stale wire
// summaries. Callable from node's owner goroutine only.
func (s *Set) Mark(node int, id ID) {
	s.mu.RLock()
	if sl, ok := s.slotOf[id]; ok {
		s.markLocked(node, sl)
	}
	s.mu.RUnlock()
}

// MarkIDs merges a decoded summary into node's holdings: every known ID is
// marked, unknown IDs are skipped, and the number of fresh marks is returned.
// Callable from node's owner goroutine only.
func (s *Set) MarkIDs(node int, ids []ID) int {
	fresh := 0
	s.mu.RLock()
	for _, id := range ids {
		sl, ok := s.slotOf[id]
		if !ok {
			continue
		}
		word := &s.held[node*s.words+sl>>6]
		mask := uint64(1) << (sl & 63)
		if word.Load()&mask != 0 {
			continue
		}
		word.Or(mask)
		fresh++
		if !s.failed[node] {
			s.live[sl].Add(1)
		}
	}
	s.mu.RUnlock()
	return fresh
}

// Has reports whether node currently holds the (active) rumor.
func (s *Set) Has(node int, id ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sl, ok := s.slotOf[id]
	if !ok {
		return false
	}
	return s.held[node*s.words+sl>>6].Load()&(1<<(sl&63)) != 0
}

// LiveInformed returns the number of live nodes holding the rumor, or 0 for
// inactive IDs.
func (s *Set) LiveInformed(id ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sl, ok := s.slotOf[id]
	if !ok {
		return 0
	}
	return int(s.live[sl].Load())
}

// AppendHeld appends the sorted IDs of every active rumor node holds to dst
// and returns the extended slice. Sorted ascending so the result feeds
// AppendSummary directly. Callable from any node goroutine.
func (s *Set) AppendHeld(dst []ID, node int) []ID {
	start := len(dst)
	s.mu.RLock()
	row := s.held[node*s.words : (node+1)*s.words]
	for w := range row {
		word := row[w].Load()
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, s.idOf[w<<6+b])
		}
	}
	s.mu.RUnlock()
	slices.Sort(dst[start:])
	return dst
}

// HeldCount returns how many active rumors node holds.
func (s *Set) HeldCount(node int) int {
	c := 0
	s.mu.RLock()
	row := s.held[node*s.words : (node+1)*s.words]
	for w := range row {
		c += bits.OnesCount64(row[w].Load())
	}
	s.mu.RUnlock()
	return c
}

// ActiveIDs appends the sorted IDs of all in-flight rumors to dst.
// Coordinator/monitor-only.
func (s *Set) ActiveIDs(dst []ID) []ID {
	start := len(dst)
	s.mu.RLock()
	for id := range s.slotOf {
		dst = append(dst, id)
	}
	s.mu.RUnlock()
	slices.Sort(dst[start:])
	return dst
}

// Active returns the number of in-flight rumors.
func (s *Set) Active() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.slotOf)
}

// Snapshot returns the current counters.
func (s *Set) Snapshot() Stats {
	s.mu.RLock()
	active := len(s.slotOf)
	s.mu.RUnlock()
	return Stats{
		Active:    active,
		Injected:  s.injected.Load(),
		Converged: s.converged.Load(),
		Expired:   s.expired.Load(),
		Lost:      s.lost.Load(),
	}
}

// Expire reclaims the rumors' slots without requiring convergence (forced
// GC). Inactive IDs are ignored. Coordinator/monitor-only.
func (s *Set) Expire(ids ...ID) {
	s.mu.Lock()
	for _, id := range ids {
		s.expireLocked(id, false)
	}
	s.mu.Unlock()
}

// Retire expires the rumors, counting them as converged — for callers that
// detected convergence themselves (the scenario driver's completion scan, the
// free-running monitor's ScanConverged). Inactive IDs are ignored.
// Coordinator/monitor-only.
func (s *Set) Retire(ids ...ID) {
	s.mu.Lock()
	for _, id := range ids {
		s.expireLocked(id, true)
	}
	s.mu.Unlock()
}

// ExpireConverged scans the in-flight set and expires every rumor held by all
// live nodes (per the live counters), returning how many it reclaimed. This
// is the GC step for the coordinator-driven engines, run between rounds.
func (s *Set) ExpireConverged() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := 0
	for id, sl := range s.slotOf {
		if int(s.live[sl].Load()) >= s.liveN && s.liveN > 0 {
			s.expireLocked(id, true)
			freed++
		}
	}
	return freed
}

// expireLocked frees the rumor's slot and clears its bit column across all
// node rows. Caller holds the write lock.
func (s *Set) expireLocked(id ID, wasConverged bool) {
	sl, ok := s.slotOf[id]
	if !ok {
		return
	}
	delete(s.slotOf, id)
	s.freeSl = append(s.freeSl, sl)
	w, mask := sl>>6, uint64(1)<<(sl&63)
	for node := 0; node < s.n; node++ {
		s.held[node*s.words+w].And(^mask)
	}
	s.live[sl].Store(0)
	s.expired.Add(1)
	if wasConverged {
		s.converged.Add(1)
	}
}

// ScanConverged returns the IDs of in-flight rumors held by every node for
// which isLive reports true. It is the race-free convergence authority for
// the free-running engine: rather than trusting the advisory live counters
// (which churn can skew while nodes run), it ANDs the holdings rows of the
// live nodes word-wise. Rumors with zero live nodes are not reported. The
// caller expires the returned IDs with Expire. Monitor-only (the scratch
// accumulator is not reentrant).
func (s *Set) ScanConverged(dst []ID, isLive func(node int) bool) []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for w := range s.acc {
		s.acc[w] = ^uint64(0)
	}
	liveNodes := 0
	for node := 0; node < s.n; node++ {
		if !isLive(node) {
			continue
		}
		liveNodes++
		row := s.held[node*s.words : (node+1)*s.words]
		for w := range row {
			s.acc[w] &= row[w].Load()
		}
	}
	if liveNodes == 0 {
		return dst
	}
	for w, word := range s.acc {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			sl := w<<6 + b
			if sl < s.cap {
				if id := s.idOf[sl]; s.isActiveSlot(sl, id) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

func (s *Set) isActiveSlot(sl int, id ID) bool {
	got, ok := s.slotOf[id]
	return ok && got == sl
}

// Fail marks nodes failed, decrementing the live counters for every rumor
// they hold (mirroring phonecall.RumorTracker.Fail). Already-failed and
// out-of-range indexes are ignored. Coordinator/monitor-only.
func (s *Set) Fail(nodes ...int) {
	s.mu.Lock()
	for _, node := range nodes {
		if node < 0 || node >= s.n || s.failed[node] {
			continue
		}
		s.failed[node] = true
		s.liveN--
		row := s.held[node*s.words : (node+1)*s.words]
		for w := range row {
			word := row[w].Load()
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				s.live[w<<6+b].Add(-1)
			}
		}
	}
	s.mu.Unlock()
}

// Revive rejoins failed nodes in the uninformed state: their holdings are
// cleared (rejoin-uninformed, like the bitmask tracker). Live and
// out-of-range indexes are ignored. Coordinator/monitor-only.
func (s *Set) Revive(nodes ...int) {
	s.mu.Lock()
	for _, node := range nodes {
		if node < 0 || node >= s.n || !s.failed[node] {
			continue
		}
		s.failed[node] = false
		s.liveN++
		row := s.held[node*s.words : (node+1)*s.words]
		for w := range row {
			row[w].Store(0)
		}
	}
	s.mu.Unlock()
}

// LiveNodes returns the number of nodes not currently failed.
func (s *Set) LiveNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveN
}
