package rumorset

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newSet(t *testing.T, n, inflight int) *Set {
	t.Helper()
	s, err := New(n, inflight)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetRejectsBadShape(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("zero in-flight window accepted")
	}
}

// TestSetWindowBackpressure pins the ErrFull contract: the (cap+1)th distinct
// rumor is rejected with an errors.Is-able ErrFull, a re-registration of an
// active ID is not, and expiry frees exactly one slot.
func TestSetWindowBackpressure(t *testing.T) {
	s := newSet(t, 4, 3)
	for id := ID(10); id < 13; id++ {
		if err := s.Register(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Register(10); err != nil {
		t.Fatalf("re-registering an active id: %v", err)
	}
	err := s.Register(13)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("4th rumor in a 3-slot window: got %v, want ErrFull", err)
	}
	if err := s.Inject(0, 13); !errors.Is(err, ErrFull) {
		t.Fatalf("Inject past the window: got %v, want ErrFull", err)
	}
	s.Expire(11)
	if err := s.Register(13); err != nil {
		t.Fatalf("register after expiry freed a slot: %v", err)
	}
	if got := s.Active(); got != 3 {
		t.Fatalf("active = %d, want 3", got)
	}
}

// TestSetMarkAndConvergence drives one rumor to convergence through Mark and
// checks LiveInformed, ExpireConverged GC, and the counters.
func TestSetMarkAndConvergence(t *testing.T) {
	s := newSet(t, 5, 8)
	if err := s.Inject(2, 1000); err != nil {
		t.Fatal(err)
	}
	if !s.Has(2, 1000) || s.Has(3, 1000) {
		t.Fatal("inject didn't mark exactly the target node")
	}
	for node := 0; node < 5; node++ {
		s.Mark(node, 1000)
		s.Mark(node, 1000) // idempotent
	}
	if got := s.LiveInformed(1000); got != 5 {
		t.Fatalf("live-informed = %d, want 5", got)
	}
	if freed := s.ExpireConverged(); freed != 1 {
		t.Fatalf("GC freed %d rumors, want 1", freed)
	}
	st := s.Snapshot()
	if st.Active != 0 || st.Injected != 1 || st.Converged != 1 || st.Expired != 1 {
		t.Fatalf("counters after convergence: %+v", st)
	}
	// After expiry the rumor is unknown again: queries are zero, marks inert.
	if s.Has(0, 1000) || s.LiveInformed(1000) != 0 {
		t.Fatal("expired rumor still queryable")
	}
	s.Mark(0, 1000)
	if s.Has(0, 1000) {
		t.Fatal("mark of an expired rumor recorded")
	}
}

// TestSetStaleIDAfterSlotReuse pins the ABA guard: a "stale frame" carrying
// an expired rumor's ID must not mark the rumor that reused its slot.
func TestSetStaleIDAfterSlotReuse(t *testing.T) {
	s := newSet(t, 3, 1) // single slot: guaranteed reuse
	if err := s.Inject(0, 7); err != nil {
		t.Fatal(err)
	}
	s.Mark(1, 7)
	s.Mark(2, 7)
	if s.ExpireConverged() != 1 {
		t.Fatal("rumor 7 should have converged")
	}
	if err := s.Inject(0, 8); err != nil {
		t.Fatal(err) // rumor 8 now occupies rumor 7's old slot
	}
	if fresh := s.MarkIDs(1, []ID{7}); fresh != 0 {
		t.Fatalf("stale summary for expired rumor 7 produced %d fresh marks", fresh)
	}
	if s.Has(1, 8) {
		t.Fatal("stale rumor-7 frame marked rumor 8 through the reused slot")
	}
}

// TestSetReinjectionOfConvergedID pins the re-injection epoch semantics: a
// converged-and-expired ID may be injected again and starts from scratch.
func TestSetReinjectionOfConvergedID(t *testing.T) {
	s := newSet(t, 3, 4)
	if err := s.Inject(0, 42); err != nil {
		t.Fatal(err)
	}
	s.Mark(1, 42)
	s.Mark(2, 42)
	if s.ExpireConverged() != 1 {
		t.Fatal("first epoch should converge")
	}
	if err := s.Inject(1, 42); err != nil {
		t.Fatalf("re-injecting a converged id: %v", err)
	}
	if got := s.LiveInformed(42); got != 1 {
		t.Fatalf("second epoch starts with live-informed %d, want 1", got)
	}
	if s.Has(0, 42) || s.Has(2, 42) {
		t.Fatal("second epoch inherited first-epoch holdings")
	}
	st := s.Snapshot()
	if st.Injected != 2 || st.Converged != 1 {
		t.Fatalf("counters across epochs: %+v", st)
	}
}

// TestSetChurn pins Fail/Revive semantics against the bitmask tracker's:
// failed nodes stop counting, revived nodes rejoin uninformed, and a lost
// inject (on a failed node) is counted.
func TestSetChurn(t *testing.T) {
	s := newSet(t, 4, 8)
	if err := s.Inject(0, 5); err != nil {
		t.Fatal(err)
	}
	s.Mark(1, 5)
	s.Fail(1)
	if got := s.LiveInformed(5); got != 1 {
		t.Fatalf("failed informed node still counted: %d", got)
	}
	s.Fail(1) // duplicate: no double-decrement
	if got := s.LiveInformed(5); got != 1 {
		t.Fatalf("duplicate Fail drifted the count: %d", got)
	}
	if err := s.Inject(1, 5); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Lost; got != 1 {
		t.Fatalf("inject on failed node not counted lost: %d", got)
	}
	s.Revive(1)
	if s.Has(1, 5) {
		t.Fatal("revived node kept its holdings")
	}
	if got := s.LiveNodes(); got != 4 {
		t.Fatalf("live nodes = %d, want 4", got)
	}
	// Convergence now requires all four nodes again (node 1 forgot).
	if s.ExpireConverged() != 0 {
		t.Fatal("converged with an uninformed node")
	}
	s.Fail(-1)
	s.Revive(99) // out-of-range churn ignored
}

// TestSetScanConverged pins the monitor-side AND-scan: it must agree with
// the per-slot counters on the coordinator path and respect the isLive mask.
func TestSetScanConverged(t *testing.T) {
	s := newSet(t, 4, 130) // >2 words: exercise the word loop
	for id := ID(0); id < 100; id++ {
		if err := s.Inject(int(id)%4, id); err != nil {
			t.Fatal(err)
		}
	}
	// Converge every 3rd rumor.
	for id := ID(0); id < 100; id += 3 {
		for node := 0; node < 4; node++ {
			s.Mark(node, id)
		}
	}
	alive := func(int) bool { return true }
	got := s.ScanConverged(nil, alive)
	want := 0
	for id := ID(0); id < 100; id += 3 {
		want++
	}
	if len(got) != want {
		t.Fatalf("scan found %d converged, want %d", len(got), want)
	}
	for _, id := range got {
		if id%3 != 0 {
			t.Fatalf("scan reported unconverged rumor %d", id)
		}
	}
	// A node going dark shrinks the quorum: rumors held by the remaining
	// three now converge even though node 3 never held them.
	if err := s.Inject(0, 500); err != nil {
		t.Fatal(err)
	}
	s.Mark(1, 500)
	s.Mark(2, 500)
	isLive := func(n int) bool { return n != 3 }
	found := false
	for _, id := range s.ScanConverged(nil, isLive) {
		if id == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("scan missed a rumor converged across the live quorum")
	}
	// No live nodes → nothing converges (not everything).
	if got := s.ScanConverged(nil, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("dead network reported %d converged rumors", len(got))
	}
}

// TestSetConcurrentMarks is the -race exercise for the locking contract:
// node goroutines mark under RLock while a monitor goroutine scans, expires,
// and injects replacements under Lock.
func TestSetConcurrentMarks(t *testing.T) {
	const n, inflight, stream = 8, 64, 512
	s := newSet(t, n, inflight)
	next := ID(0)
	for ; next < inflight; next++ {
		if err := s.Inject(int(next)%n, next); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for node := 0; node < n; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)))
			buf := make([]ID, 0, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = s.ActiveIDs(buf[:0])
				if len(buf) > 0 {
					s.Mark(node, buf[rng.Intn(len(buf))])
					s.MarkIDs(node, buf)
				}
				s.AppendHeld(buf[:0], node)
				s.HeldCount(node)
			}
		}(node)
	}
	// Monitor: GC converged rumors and refill the window until the stream
	// is exhausted.
	alive := func(int) bool { return true }
	var scan []ID
	for next < stream {
		scan = s.ScanConverged(scan[:0], alive)
		s.Expire(scan...)
		for range scan {
			if next < stream {
				if err := s.Inject(int(next)%n, next); err != nil {
					t.Fatal(err)
				}
				next++
			}
		}
	}
	close(stop)
	wg.Wait()
	st := s.Snapshot()
	if st.Injected != stream {
		t.Fatalf("injected %d, want %d", st.Injected, stream)
	}
	if st.Active > inflight {
		t.Fatalf("active %d exceeds window %d", st.Active, inflight)
	}
}

// TestSummaryRoundTrip pins the codec: encode/decode round-trips dense and
// sparse sorted ID sets, SummarySize matches, and corrupt input is rejected.
func TestSummaryRoundTrip(t *testing.T) {
	cases := [][]ID{
		nil,
		{0},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{3, 70, 71, 4096, 1 << 20, 1<<32 - 2, 1<<32 - 1},
	}
	for _, ids := range cases {
		t.Run(fmt.Sprint(ids), func(t *testing.T) {
			enc := AppendSummary(nil, ids)
			if got := SummarySize(ids); got != len(enc) {
				t.Fatalf("SummarySize = %d, encoded %d bytes", got, len(enc))
			}
			enc = append(enc, 0xAA, 0xBB) // trailing bytes must be left alone
			dec, used, err := DecodeSummary(nil, enc)
			if err != nil {
				t.Fatal(err)
			}
			if used != len(enc)-2 {
				t.Fatalf("consumed %d bytes, want %d", used, len(enc)-2)
			}
			if len(dec) != len(ids) {
				t.Fatalf("decoded %d ids, want %d", len(dec), len(ids))
			}
			for i := range ids {
				if dec[i] != ids[i] {
					t.Fatalf("id %d: got %d, want %d", i, dec[i], ids[i])
				}
			}
		})
	}
	// A dense run of k sequential IDs costs ~1 byte per ID.
	dense := make([]ID, 1000)
	for i := range dense {
		dense[i] = ID(i) + 5000
	}
	if size := SummarySize(dense); size > 1005 {
		t.Fatalf("dense 1000-id summary took %d bytes", size)
	}
}

func TestSummaryRejectsCorruption(t *testing.T) {
	// Truncated count.
	if _, _, err := DecodeSummary(nil, []byte{0x80}); err == nil {
		t.Fatal("truncated count accepted")
	}
	// Count says 3, only 1 id present.
	b := AppendSummary(nil, []ID{9})
	b[0] = 3
	if _, _, err := DecodeSummary(nil, b); err == nil {
		t.Fatal("truncated id list accepted")
	}
	// Hostile count prefix.
	huge := make([]byte, 0, 16)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, _, err := DecodeSummary(nil, huge); err == nil {
		t.Fatal("hostile count accepted")
	}
	// Delta pushing past uint32.
	over := AppendSummary(nil, []ID{1<<32 - 1})
	over = over[:1] // keep count=1
	over = appendUvarint(over, 1<<33)
	if _, _, err := DecodeSummary(nil, over); err == nil {
		t.Fatal("uint32 overflow accepted")
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
