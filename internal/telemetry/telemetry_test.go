package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterShardMerge exercises the shard-merge contract: writes from any
// shard index land in the same logical counter, mask into the fixed cell
// range, and merge at read time.
func TestCounterShardMerge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.AddShard(0, 1)
	c.AddShard(1, 2)
	c.AddShard(shardCount, 4) // masks back onto cell 0
	c.AddShard(12345678, 5)   // arbitrary node index
	if got := c.Value(); got != 15 {
		t.Fatalf("Value() = %d, want 15", got)
	}
}

// TestCounterConcurrentShards hammers distinct shards concurrently; the
// merged value must be exact (atomic cells, no lost updates).
func TestCounterConcurrentShards(t *testing.T) {
	var c Counter
	const writers, perWriter = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("Value() = %d, want %d", got, writers*perWriter)
	}
}

func TestGaugeSetAddMax(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
	g.Max(5) // below: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("Max(5) lowered the gauge to %d", got)
	}
	g.Max(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("Max(42) gave %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("repro_test_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-9 {
		t.Fatalf("Sum() = %v, want 5.555", h.Sum())
	}
	// Cumulative bucket counts: <=0.01: 1, <=0.1: 2, <=1: 3, +Inf: 4.
	samples := r.Snapshot()
	want := map[string]float64{
		`repro_test_seconds_bucket{le="0.01"}`: 1,
		`repro_test_seconds_bucket{le="0.1"}`:  2,
		`repro_test_seconds_bucket{le="1"}`:    3,
		`repro_test_seconds_bucket{le="+Inf"}`: 4,
		`repro_test_seconds_sum`:               5.555,
		`repro_test_seconds_count`:             4,
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.ID()] = s.Value
	}
	for id, v := range want {
		if math.Abs(got[id]-v) > 1e-9 {
			t.Errorf("sample %s = %v, want %v", id, got[id], v)
		}
	}
}

// TestRegistryIdempotentCreation pins that re-creating an instrument returns
// the same handle (so multiple runs can share one registry) and that kind
// conflicts panic.
func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("repro_x_total", Label{Key: "algo", Value: "cluster2"})
	b := r.Counter("repro_x_total", Label{Key: "algo", Value: "cluster2"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("repro_x_total", Label{Key: "algo", Value: "push"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering repro_x_total as a gauge did not panic")
			}
		}()
		r.Gauge("repro_x_total")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("0bad name")
	}()
}

// TestRegistryLabelOrderCanonical pins that label order does not matter:
// permuted label sets resolve to one series, not duplicate permuted output.
func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("repro_perm_total", Label{Key: "algo", Value: "push"}, Label{Key: "engine", Value: "sim"})
	b := r.Counter("repro_perm_total", Label{Key: "engine", Value: "sim"}, Label{Key: "algo", Value: "push"})
	if a != b {
		t.Fatal("permuted label order returned distinct counters")
	}
	a.Add(2)
	if n := len(r.Snapshot()); n != 1 {
		t.Fatalf("Snapshot has %d series, want 1: %v", n, r.Snapshot())
	}
}

// TestRegistryHistogramBoundsConflict pins that re-registering a histogram
// with a different bucket layout panics instead of silently handing the
// second caller someone else's buckets.
func TestRegistryHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	r.Histogram("repro_conflict_seconds", []float64{1, 2, 3})
	if h := r.Histogram("repro_conflict_seconds", []float64{1, 2, 3}); h == nil {
		t.Fatal("identical bounds should return the existing histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("different bounds for an existing histogram did not panic")
		}
	}()
	r.Histogram("repro_conflict_seconds", []float64{1, 2})
}

// TestRegistryConcurrentCreateAndScrape races instrument creation against
// Snapshot/WritePrometheus scrapes — the livegossip /metrics pattern, where
// a scrape can overlap a run binding its instruments. Under -race this pins
// that a metric visible to readers always has its instrument populated and
// that concurrent creators of one series share a single handle (no lost
// updates).
func TestRegistryConcurrentCreateAndScrape(t *testing.T) {
	r := NewRegistry()
	const creators, perCreator = 8, 200
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var sb strings.Builder
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			sb.Reset()
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < creators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perCreator; i++ {
				r.Counter("repro_race_total", Label{Key: "algo", Value: "push"}).AddShard(w, 1)
				r.Gauge("repro_race_nodes").Set(int64(i))
				r.Histogram("repro_race_seconds", nil).Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := r.Counter("repro_race_total", Label{Key: "algo", Value: "push"}).Value(); got != creators*perCreator {
		t.Fatalf("repro_race_total = %d, want %d (a concurrent creator lost a handle)", got, creators*perCreator)
	}
}

// TestWritePrometheus pins the exposition format: TYPE lines once per
// family, deterministic order, label escaping, integer-clean values.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_messages_total", Label{Key: "algo", Value: "cluster2"}, Label{Key: "engine", Value: "simulator"}).Add(12)
	r.Counter("repro_messages_total", Label{Key: "algo", Value: "push"}, Label{Key: "engine", Value: "simulator"}).Add(3)
	r.Gauge("repro_informed_nodes").Set(990)
	r.Counter("repro_weird_total", Label{Key: "path", Value: `a"b\c`}).Add(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# TYPE repro_informed_nodes gauge
repro_informed_nodes 990
# TYPE repro_messages_total counter
repro_messages_total{algo="cluster2",engine="simulator"} 12
repro_messages_total{algo="push",engine="simulator"} 3
# TYPE repro_weird_total counter
repro_weird_total{path="a\"b\\c"} 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHotPathZeroAlloc locks the zero-allocation contract of every hot-path
// operation: instrument updates must be free to sprinkle through the
// engines' round loops.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_alloc_total")
	g := r.Gauge("repro_alloc_nodes")
	h := r.Histogram("repro_alloc_seconds", nil)
	cases := map[string]func(){
		"Counter.Add":       func() { c.Add(1) },
		"Counter.AddShard":  func() { c.AddShard(7, 1) },
		"Gauge.Set":         func() { g.Set(5) },
		"Gauge.Max":         func() { g.Max(9) },
		"Histogram.Observe": func() { h.Observe(0.0123) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}
