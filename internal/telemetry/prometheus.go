package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE comment per metric family followed by
// its series, families and series in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		for _, s := range m.samples() {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.ID(), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value: integers without a decimal point,
// everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram bucket bound for its "le" label.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
