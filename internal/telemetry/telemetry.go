// Package telemetry is the repository's metrics registry: counters, gauges
// and fixed-bucket histograms with a stable Prometheus-compatible naming
// scheme, designed so the engines can update instruments from their hot
// paths without allocating.
//
// The design mirrors the phone-call engine's metric-shard pattern: a Counter
// is a fixed array of cache-line-padded atomic cells, writers pick a cell by
// shard index (worker or node), and the cells are merged only when a reader
// asks (Snapshot, WritePrometheus). Instrument lookup — the only map access
// and the only allocation — happens once at instrument-creation time;
// Add/AddShard/Set/Observe on the returned handles are allocation-free
// (locked by TestHotPathZeroAlloc).
//
// The package depends on the standard library only.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// shardCount is the fixed number of counter cells. A power of two so
// AddShard can mask instead of mod; 64 covers every worker count the engine
// accepts and the padding keeps concurrent writers off each other's lines.
const shardCount = 64

// Label is one name=value metric dimension, resolved when the instrument is
// created — never on the hot path.
type Label struct {
	Key, Value string
}

// cell is one padded counter shard: the atomic plus enough padding to keep
// two adjacent cells out of one cache line.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	cells [shardCount]cell
}

// Add increments the counter from a single-writer context (a coordinator
// goroutine). Concurrent writers should use AddShard to avoid contending on
// one cell.
func (c *Counter) Add(v int64) { c.cells[0].v.Add(v) }

// AddShard increments the counter from shard (a worker or node index; any
// value is masked into range). Distinct shards write distinct cache lines.
func (c *Counter) AddShard(shard int, v int64) {
	c.cells[shard&(shardCount-1)].v.Add(v)
}

// Value merges the shards — the read-time cost the write path never pays.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v is larger (a running high-water mark).
func (g *Gauge) Max(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DurationBuckets is the default histogram layout for round durations:
// 10µs to 10s, one decade per bucket.
var DurationBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: bucket i counts observations <= bounds[i], the implicit last
// bucket counts everything (+Inf).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one observation. Allocation-free; safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// kind discriminates the instrument types inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// id renders the metric's identity — the registry key and the deterministic
// sort key for output. Labels are canonicalized (sorted by key) by lookup
// before the metric is built, so permuted label orders share one id.
func (m *metric) id() string { return instrumentID(m.name, m.labels) }

// instrumentID renders name{key="value",...} with the labels in the order
// given; callers that need a canonical id sort the labels first.

func instrumentID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds a set of named instruments. Creation (Counter, Gauge,
// Histogram) takes a mutex and may allocate; the returned handles never
// touch the registry again, so updating them is lock- and allocation-free.
// A Registry must not be copied after first use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter registered under name and labels, creating it
// on first use. Reusing a name with a different instrument kind panics —
// that is a programming error, not an input.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, kindCounter, nil).counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, kindGauge, nil).gauge
}

// Histogram returns the histogram registered under name and labels, creating
// it with the given bucket upper bounds (nil: DurationBuckets) on first use.
// Bounds must be sorted ascending; they are fixed by the first creation, and
// asking for the same series again with different bounds panics — a shared
// handle with someone else's bucket layout is a programming error.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.lookup(name, labels, kindHistogram, bounds).hist
}

// lookup finds or creates the metric entry, enforcing name validity, kind
// consistency and (for histograms) bound consistency. The typed instrument
// is allocated here, while r.mu is held, so a metric visible in the map is
// always fully populated — readers (Snapshot, WritePrometheus) that race an
// instrument's first creation never see a nil handle, and two concurrent
// creators of one series always get the same handle.
func (r *Registry) lookup(name string, labels []Label, k kind, bounds []float64) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q on %q", l.Key, name))
		}
	}
	// Canonicalize the label order so permutations of the same label set
	// resolve to one series.
	labels = append([]Label(nil), labels...)
	sort.SliceStable(labels, func(a, b int) bool { return labels[a].Key < labels[b].Key })
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, m.kind))
		}
		if k == kindHistogram && !equalBounds(m.hist.bounds, bounds) {
			panic(fmt.Sprintf("telemetry: histogram %q already registered with different bounds", name))
		}
		return m
	}
	// One family, one kind: the same name with other labels must agree too,
	// or the exposition format would emit contradictory TYPE lines.
	for _, m := range r.metrics {
		if m.name == name && m.kind != k {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, m.kind))
		}
	}
	m := &metric{name: name, labels: labels, kind: k}
	switch k {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	default:
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly ascending", name))
			}
		}
		m.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}
	r.metrics[id] = m
	return m
}

// equalBounds reports whether two bucket layouts are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName checks the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Sample is one exported time-series value. Histograms expand into their
// cumulative _bucket series (with an "le" label) plus _sum and _count.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ID renders the sample's identity as name{label="value",...} — the same
// string the Prometheus exposition line starts with.
func (s Sample) ID() string { return instrumentID(s.Name, s.Labels) }

// sorted returns the registry's metrics in deterministic (id) order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].name != ms[b].name {
			return ms[a].name < ms[b].name
		}
		return ms[a].id() < ms[b].id()
	})
	return ms
}

// Snapshot merges every instrument's shards and returns the samples in
// deterministic order. The snapshot is a point-in-time copy; taking it does
// not disturb writers.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, m := range r.sorted() {
		out = append(out, m.samples()...)
	}
	return out
}

// samples expands one metric into its exported series.
func (m *metric) samples() []Sample {
	switch m.kind {
	case kindCounter:
		return []Sample{{Name: m.name, Labels: m.labels, Value: float64(m.counter.Value())}}
	case kindGauge:
		return []Sample{{Name: m.name, Labels: m.labels, Value: float64(m.gauge.Value())}}
	default:
		h := m.hist
		out := make([]Sample, 0, len(h.bounds)+3)
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			out = append(out, Sample{
				Name:   m.name + "_bucket",
				Labels: append(append([]Label(nil), m.labels...), Label{Key: "le", Value: formatBound(b)}),
				Value:  float64(cum),
			})
		}
		cum += h.buckets[len(h.bounds)].Load()
		out = append(out, Sample{
			Name:   m.name + "_bucket",
			Labels: append(append([]Label(nil), m.labels...), Label{Key: "le", Value: "+Inf"}),
			Value:  float64(cum),
		})
		out = append(out,
			Sample{Name: m.name + "_sum", Labels: m.labels, Value: h.Sum()},
			Sample{Name: m.name + "_count", Labels: m.labels, Value: float64(h.Count())},
		)
		return out
	}
}
