package live

import (
	"context"
	"testing"

	"repro/internal/phonecall"
)

// TestUDPFreeRun runs the free-running push-pull workload over real UDP
// loopback sockets: the same frames, across the kernel's network stack.
// Loopback delivery is reliable enough in practice, and the protocol
// tolerates drops by design, so full convergence within a generous budget is
// a stable assertion.
func TestUDPFreeRun(t *testing.T) {
	tr, err := NewUDPTransport(32)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	fr, err := NewFreeRun(FreeRunConfig{N: 32, Seed: 9, Rounds: 400, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("UDP run did not converge: %+v", rep)
	}
}

// TestUDPTransportLimits pins the datagram-size drop and the node cap.
func TestUDPTransportLimits(t *testing.T) {
	tr, err := NewUDPTransport(2)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	huge := phonecall.Message{IDs: make([]phonecall.NodeID, 10000)}
	tr.Send(0, 1, appendCallFrame(nil, 1, 0, true, false, &huge))
	if tr.Oversize() != 1 {
		t.Fatalf("oversize frame not counted (got %d)", tr.Oversize())
	}
	if _, err := NewUDPTransport(maxUDPNodes + 1); err == nil {
		t.Error("over-cap mesh accepted")
	}
}
