package live

import (
	"context"
	"sync"
	"testing"

	"repro/internal/phonecall"
)

// TestUDPFreeRun runs the free-running push-pull workload over real UDP
// loopback sockets: the same frames, across the kernel's network stack.
// Loopback delivery is reliable enough in practice, and the protocol
// tolerates drops by design, so full convergence within a generous budget is
// a stable assertion.
func TestUDPFreeRun(t *testing.T) {
	tr, err := NewUDPTransport(32)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	fr, err := NewFreeRun(FreeRunConfig{N: 32, Seed: 9, Rounds: 400, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("UDP run did not converge: %+v", rep)
	}
}

// TestUDPTransportLimits pins the datagram-size drop and the node cap.
func TestUDPTransportLimits(t *testing.T) {
	tr, err := NewUDPTransport(2)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	huge := phonecall.Message{IDs: make([]phonecall.NodeID, 10000)}
	tr.Send(0, 1, appendCallFrame(nil, 1, 0, true, false, &huge))
	if tr.Oversize() != 1 {
		t.Fatalf("oversize frame not counted (got %d)", tr.Oversize())
	}
	if _, err := NewUDPTransport(maxUDPNodes + 1); err == nil {
		t.Error("over-cap mesh accepted")
	}
}

// TestUDPSendFailureCounted forces a kernel-level write error (the sender's
// socket is closed underneath the transport) and checks the failure is
// counted instead of silently discarded.
func TestUDPSendFailureCounted(t *testing.T) {
	tr, err := NewUDPTransport(2)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	tr.conns[0].Close() // yank node 0's socket; the transport still thinks it is open
	frame := appendCallFrame(nil, 1, 0, false, true, nil)
	tr.Send(0, 1, frame)
	if got := tr.NodeSendFailures(0); got != 1 {
		t.Errorf("node 0 write failure not counted (got %d)", got)
	}
	if got := tr.SendFailures(); got != 1 {
		t.Errorf("total write failures = %d, want 1", got)
	}
	// The healthy sender is unaffected.
	tr.Send(1, 0, frame)
	if got := tr.NodeSendFailures(1); got != 0 {
		t.Errorf("healthy sender charged %d failures", got)
	}
	// Out-of-range queries are safe.
	if got := tr.NodeSendFailures(-1); got != 0 {
		t.Errorf("NodeSendFailures(-1) = %d", got)
	}
}

// TestUDPSendFailuresSurfacedInReport runs a free-running workload whose
// source node has a dead socket underneath the transport: every one of its
// kernel writes fails, and the report must surface the count (total and
// per-node) instead of letting real loss pass as silence.
func TestUDPSendFailuresSurfacedInReport(t *testing.T) {
	tr, err := NewUDPTransport(3)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	tr.conns[0].Close() // node 0 (the rumor source) loses its socket
	fr, err := NewFreeRun(FreeRunConfig{N: 3, Seed: 2, Rounds: 30, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SendFailures == 0 {
		t.Fatalf("dead socket produced no counted send failures: %+v", rep)
	}
	if rep.NodeSendFailures[0] != rep.SendFailures {
		t.Errorf("per-node breakdown %v does not attribute all %d failures to node 0",
			rep.NodeSendFailures, rep.SendFailures)
	}
}

// BenchmarkUDPReceive measures the read loop's steady state: one datagram
// sent, received and drained per iteration. The receive path copies each
// frame out of a shared arena chunk (no per-packet allocation) and reads via
// ReadFromUDPAddrPort (no per-packet *UDPAddr) — allocs/op stays well below 1
// because the only allocations left are the amortized arena chunks.
func BenchmarkUDPReceive(b *testing.B) {
	tr, err := NewUDPTransport(2)
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	defer tr.Close()
	msg := phonecall.Message{Tag: 111, Value: 0xff, Bits: 256}
	frame := appendCallFrame(nil, 1, 0, true, true, &msg)
	var drain [][]byte
	box := tr.Mailbox(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, frame)
		for box.Len() == 0 {
			<-box.Notify()
		}
		drain = box.TryDrain(drain[:0])
	}
}

// TestUDPSendAfterClose pins the teardown contract: Sends racing or following
// Close neither panic nor write to a torn-down socket, and they are not
// counted as kernel write failures (the transport was closed, not failing).
func TestUDPSendAfterClose(t *testing.T) {
	tr, err := NewUDPTransport(4)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	frame := appendCallFrame(nil, 1, 0, false, true, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				tr.Send(g, (g+1)%4, frame)
			}
		}(g)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	tr.Send(0, 1, frame) // after Close: must be a silent no-op
	if got := tr.SendFailures(); got != 0 {
		t.Errorf("close race charged %d write failures", got)
	}
	if err := tr.Close(); err != nil { // double Close stays idempotent
		t.Fatal(err)
	}
}
