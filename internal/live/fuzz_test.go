package live

// Native fuzz target extending the PR 3 differential harness to the live
// runtime: the lock-step executor must stay bit-identical to the reference
// oracle for fuzzer-chosen sizes, seeds, loss rates and churn scripts.
//
//	go test ./internal/live -run=NONE -fuzz=FuzzLockStepVsOracle -fuzztime=30s

import (
	"testing"

	"repro/internal/oracle"
	"repro/internal/phonecall"
)

func FuzzLockStepVsOracle(f *testing.F) {
	f.Add(uint16(24), uint64(1), uint64(2), uint64(3), uint8(6), uint8(0))
	f.Add(uint16(200), uint64(4), uint64(5), uint64(6), uint8(8), uint8(30))
	f.Add(uint16(2), uint64(7), uint64(8), uint64(9), uint8(4), uint8(95))
	f.Add(uint16(333), uint64(10), uint64(11), uint64(12), uint8(10), uint8(50))
	f.Fuzz(func(t *testing.T, n uint16, netSeed, protoSeed, churnSeed uint64, rounds, lossPct uint8) {
		sc := oracle.Script{
			// Bounded sizes: every execution spins up a goroutine per node.
			N:         2 + int(n)%499,
			Rounds:    1 + int(rounds)%10,
			NetSeed:   netSeed,
			ProtoSeed: protoSeed,
			LossRate:  float64(lossPct%101) / 100,
			LossSeed:  netSeed ^ 0x10c0,
			Churn:     true,
			ChurnSeed: churnSeed,
		}
		liveNet, err := phonecall.New(phonecall.Config{N: sc.N, Seed: sc.NetSeed, PoisonInbox: true})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := NewLockStep(liveNet, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer ls.Close()
		orc, err := oracle.New(phonecall.Config{N: sc.N, Seed: sc.NetSeed})
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Compare(liveNet, orc, sc); err != nil {
			t.Fatal(err)
		}
		if err := ls.Err(); err != nil {
			t.Fatalf("runtime: %v", err)
		}
	})
}
