package live

import "sync"

// Transport moves encoded frames (codec.go) between the runtime's nodes.
// Nodes are addressed by their dense index in [0, N). Send may be called
// concurrently, but only ever by the goroutine owning the `from` node — the
// per-sender serialization every implementation relies on for deterministic
// per-link packet sequencing. A transport may drop frames (loss injection,
// full sockets) but must never duplicate, corrupt or misroute them.
type Transport interface {
	// N is the number of endpoints.
	N() int
	// Send enqueues frame for node to. The transport owns the slice after the
	// call; the sender must not reuse it. Frames to out-of-range targets and
	// frames sent after Close are dropped.
	Send(from, to int, frame []byte)
	// Mailbox returns node i's inbound queue.
	Mailbox(i int) *Mailbox
	// Synchronous reports whether a frame is guaranteed to sit in the
	// destination mailbox (or be dropped for good) by the time Send returns.
	// Lock-step barriers require a synchronous transport; free-running mode
	// works with any.
	Synchronous() bool
	// Close releases the transport's resources.
	Close() error
}

// LossSetter is the optional transport capability of changing the loss
// injection mid-run; free-running scenarios use it to honor Loss events.
type LossSetter interface {
	SetLoss(rate float64, seed uint64)
}

// SendFailureCounter is the optional transport capability of counting sends
// the OS refused (the UDP transport's WriteToUDP errors). The free-running
// report surfaces the counts so real loss is never silent.
type SendFailureCounter interface {
	SendFailures() int64
	NodeSendFailures(i int) int64
}

// Mailbox is a node's inbound frame queue: an unbounded, mutex-guarded slice
// with an edge-triggered notification channel. Receivers either poll with
// TryDrain (lock-step phases, free-running round loops) or block on Notify
// until something arrives.
type Mailbox struct {
	mu    sync.Mutex
	queue [][]byte

	notify chan struct{}
}

// newMailbox returns an empty mailbox.
func newMailbox() *Mailbox {
	return &Mailbox{notify: make(chan struct{}, 1)}
}

// Put appends a frame and signals the notification channel.
func (mb *Mailbox) Put(frame []byte) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, frame)
	mb.mu.Unlock()
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

// TryDrain appends every queued frame to into and returns the result; it
// never blocks. Passing a reused into[:0] keeps the receive path
// allocation-light.
func (mb *Mailbox) TryDrain(into [][]byte) [][]byte {
	mb.mu.Lock()
	into = append(into, mb.queue...)
	for i := range mb.queue {
		mb.queue[i] = nil
	}
	mb.queue = mb.queue[:0]
	mb.mu.Unlock()
	return into
}

// Len returns the number of queued frames.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// Notify returns the edge-triggered arrival channel: a receive succeeds at
// least once after any Put that found the queue being watched. Receivers must
// re-check TryDrain after a wakeup.
func (mb *Mailbox) Notify() <-chan struct{} { return mb.notify }
