package live

import (
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// ChannelConfig configures the in-process mailbox mesh.
type ChannelConfig struct {
	// Drop is the per-frame loss probability, decided by a deterministic hash
	// of (DropSeed, from, to, per-sender sequence number): the drop pattern is
	// a pure function of the seed and each link's send history, so single-run
	// loss behavior replays exactly. DropSeed defaults to nothing special —
	// zero is a valid seed.
	Drop     float64
	DropSeed uint64
	// Latency and Jitter delay delivery in real time: each frame arrives
	// after Latency plus a deterministically sampled fraction of Jitter
	// (hash of (JitterSeed, from, to, sequence)). A mesh with any delay is
	// not Synchronous and therefore free-running only.
	Latency    time.Duration
	Jitter     time.Duration
	JitterSeed uint64
}

// lossParams is the atomically swappable drop configuration.
type lossParams struct {
	rate float64
	seed uint64
}

// ChannelTransport is the in-process transport: per-node mailboxes, direct
// synchronous delivery when no latency is configured, and seeded
// deterministic drop/latency/jitter injection per link.
type ChannelTransport struct {
	n      int
	cfg    ChannelConfig
	boxes  []*Mailbox
	seq    []uint64 // per-sender frame counter; each slot owned by its sender goroutine
	loss   atomic.Pointer[lossParams]
	drops  atomic.Int64
	closed atomic.Bool
}

// NewChannelTransport builds a mesh of n mailboxes.
func NewChannelTransport(n int, cfg ChannelConfig) (*ChannelTransport, error) {
	if err := validateN(n); err != nil {
		return nil, err
	}
	tr := &ChannelTransport{
		n:     n,
		cfg:   cfg,
		boxes: make([]*Mailbox, n),
		seq:   make([]uint64, n),
	}
	for i := range tr.boxes {
		tr.boxes[i] = newMailbox()
	}
	tr.loss.Store(&lossParams{rate: cfg.Drop, seed: cfg.DropSeed})
	return tr, nil
}

// N implements Transport.
func (tr *ChannelTransport) N() int { return tr.n }

// Mailbox implements Transport.
func (tr *ChannelTransport) Mailbox(i int) *Mailbox { return tr.boxes[i] }

// Synchronous implements Transport: the mesh is synchronous exactly when no
// artificial delay is configured.
func (tr *ChannelTransport) Synchronous() bool {
	return tr.cfg.Latency == 0 && tr.cfg.Jitter == 0
}

// SetLoss implements LossSetter: from the next frame on, every frame is
// independently dropped with probability rate. Safe to call while senders
// run.
func (tr *ChannelTransport) SetLoss(rate float64, seed uint64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	tr.loss.Store(&lossParams{rate: rate, seed: seed})
}

// Drops returns the number of frames dropped by loss injection so far.
func (tr *ChannelTransport) Drops() int64 { return tr.drops.Load() }

// Send implements Transport. The caller must be the goroutine owning from.
func (tr *ChannelTransport) Send(from, to int, frame []byte) {
	if tr.closed.Load() || to < 0 || to >= tr.n || from < 0 || from >= tr.n {
		return
	}
	seq := tr.seq[from]
	tr.seq[from] = seq + 1
	if lp := tr.loss.Load(); lp.rate > 0 {
		h := rng.Mix(lp.seed, 0xd207, uint64(from), uint64(to), seq)
		if rng.Unit(h) < lp.rate {
			tr.drops.Add(1)
			return
		}
	}
	delay := tr.cfg.Latency
	if tr.cfg.Jitter > 0 {
		h := rng.Mix(tr.cfg.JitterSeed, 0x717e4, uint64(from), uint64(to), seq)
		delay += time.Duration(float64(tr.cfg.Jitter) * rng.Unit(h))
	}
	if delay <= 0 {
		tr.boxes[to].Put(frame)
		return
	}
	box := tr.boxes[to]
	time.AfterFunc(delay, func() {
		if !tr.closed.Load() {
			box.Put(frame)
		}
	})
}

// Close implements Transport. Frames still in flight on delay timers are
// discarded.
func (tr *ChannelTransport) Close() error {
	tr.closed.Store(true)
	return nil
}
