// Package live is the message-passing gossip runtime: every node is a
// goroutine running an event loop, and nodes communicate by exchanging
// encoded phone-call frames over a pluggable Transport instead of through the
// simulator's shared-memory round engine. It is the bridge from the paper
// reproduction to a deployable system — the same protocols, running as real
// concurrent processes.
//
// Two execution modes are provided:
//
//   - LockStep executes barrier-synchronized rounds over a synchronous
//     transport and plugs into phonecall.Network through the RoundExecutor
//     seam, so every closed algorithm in the repository (Cluster2,
//     ClusterPUSH-PULL, the baselines) runs on the live runtime unchanged.
//     Lock-step execution is bit-identical to the sharded engine — same round
//     reports, same inboxes, same metrics — and is conformance-gated against
//     the internal/oracle reference (TestLockStepMatchesOracle,
//     FuzzLockStepVsOracle).
//
//   - FreeRun drops the global barrier: each node advances its own round
//     clock, bounded-skew flow control keeps clocks within MaxSkew rounds of
//     the slowest live node, and a completion monitor detects convergence
//     (every live node holding every injected rumor) while scenario events
//     (churn, loss, rumor injection) fire as the round frontier passes them.
//
// Transports: NewChannelTransport builds an in-process mailbox mesh with
// deterministic, seeded per-link latency, jitter and drop injection;
// NewUDPTransport exchanges the same compact wire frames (codec.go) over UDP
// loopback sockets. See DESIGN.md §8 for the transport contract and the
// lock-step conformance argument.
package live

import "fmt"

// validateN bounds the node count for a transport mesh.
func validateN(n int) error {
	if n < 2 {
		return fmt.Errorf("live: need at least 2 nodes (got %d)", n)
	}
	return nil
}
