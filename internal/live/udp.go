package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// maxUDPFrame bounds one frame to a single loopback datagram. Frames above
// it (a protocol pushing thousands of IDs in one message) are dropped and
// counted, mirroring what a real datagram network would do to them.
const maxUDPFrame = 60 * 1024

// maxUDPNodes caps the mesh size: every node owns one socket, and a mesh
// near the default file-descriptor limit helps nobody.
const maxUDPNodes = 512

// udpArenaChunk sizes the read loop's scratch arena. One chunk serves many
// received frames (frames are small relative to the chunk), so the per-
// receive allocation cost is amortized to near zero.
const udpArenaChunk = 64 * 1024

// UDPTransport exchanges wire frames over per-node UDP sockets on the
// loopback interface. It is the "real wire" transport: frames are serialized
// through the same codec as the channel mesh but cross the kernel's network
// stack, so delivery is asynchronous and — under socket-buffer pressure —
// lossy. Free-running mode only (Synchronous returns false); the gossip
// protocols tolerate both properties by design.
//
// Destination addresses go through the Directory seam: the in-process mesh
// resolves against its own static bind table (complete by construction), but
// the same send path serves a directory that can miss — a miss drops the
// frame and counts it, the datagram analogue of "host unknown".
type UDPTransport struct {
	n         int
	conns     []*net.UDPConn
	addrs     []*net.UDPAddr
	dir       Directory
	boxes     []*Mailbox
	oversize  atomic.Int64
	misses    atomic.Int64
	sendFails []atomic.Int64 // per-sender write failures
	failTotal atomic.Int64
	closed    atomic.Bool
	mu        sync.RWMutex // guards Send against Close pulling sockets away
	wg        sync.WaitGroup
}

// NewUDPTransport binds n loopback sockets (ephemeral ports) and starts one
// reader goroutine per node. The transport directs frames through a static
// directory of its own bound addresses.
func NewUDPTransport(n int) (*UDPTransport, error) {
	if err := validateN(n); err != nil {
		return nil, err
	}
	if n > maxUDPNodes {
		return nil, fmt.Errorf("live: UDP mesh capped at %d nodes (got %d); use the channel transport for larger runs", maxUDPNodes, n)
	}
	tr := &UDPTransport{
		n:         n,
		conns:     make([]*net.UDPConn, n),
		addrs:     make([]*net.UDPAddr, n),
		boxes:     make([]*Mailbox, n),
		sendFails: make([]atomic.Int64, n),
	}
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("live: bind node %d: %w", i, err)
		}
		tr.conns[i] = conn
		tr.addrs[i] = conn.LocalAddr().(*net.UDPAddr)
		tr.boxes[i] = newMailbox()
	}
	tr.dir = NewStaticDirectory(tr.addrs)
	for i := 0; i < n; i++ {
		tr.wg.Add(1)
		go tr.read(i)
	}
	return tr, nil
}

// read pumps node i's socket into its mailbox until the socket closes. Each
// received frame is copied out of a shared arena chunk rather than freshly
// allocated: ReadFromUDPAddrPort keeps the kernel round trip allocation-free
// (no *net.UDPAddr per packet) and the arena amortizes the frame copies, so
// the steady-state receive path performs ~zero allocations per datagram
// (BenchmarkUDPReceive locks this in).
func (tr *UDPTransport) read(i int) {
	defer tr.wg.Done()
	buf := make([]byte, maxUDPFrame+1)
	var arena []byte
	for {
		k, _, err := tr.conns[i].ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		if k > maxUDPFrame {
			continue // cannot be one of ours; Send never emits above the bound
		}
		if len(arena) < k {
			arena = make([]byte, udpArenaChunk)
		}
		frame := arena[:k:k]
		arena = arena[k:]
		copy(frame, buf[:k])
		tr.boxes[i].Put(frame)
	}
}

// N implements Transport.
func (tr *UDPTransport) N() int { return tr.n }

// Mailbox implements Transport.
func (tr *UDPTransport) Mailbox(i int) *Mailbox { return tr.boxes[i] }

// Synchronous implements Transport: datagrams are in flight after Send
// returns, so UDP cannot back lock-step barriers.
func (tr *UDPTransport) Synchronous() bool { return false }

// Oversize returns the number of frames dropped for exceeding one datagram.
func (tr *UDPTransport) Oversize() int64 { return tr.oversize.Load() }

// Misses returns the number of frames dropped because the directory had no
// address for the destination. Always zero on the static in-process mesh.
func (tr *UDPTransport) Misses() int64 { return tr.misses.Load() }

// SendFailures returns the total number of frames the kernel refused to
// accept (WriteToUDP errors) across all senders. A nonzero count under
// normal operation points at socket-buffer pressure or teardown races —
// the loss is real and no longer silent.
func (tr *UDPTransport) SendFailures() int64 { return tr.failTotal.Load() }

// NodeSendFailures returns sender i's write-failure count.
func (tr *UDPTransport) NodeSendFailures(i int) int64 {
	if i < 0 || i >= tr.n {
		return 0
	}
	return tr.sendFails[i].Load()
}

// Addr returns node i's bound loopback address (for diagnostics).
func (tr *UDPTransport) Addr(i int) *net.UDPAddr { return tr.addrs[i] }

// Directory returns the transport's directory.
func (tr *UDPTransport) Directory() Directory { return tr.dir }

// Send implements Transport: one frame, one datagram. Write errors drop the
// frame, exactly like the wire would — but they are counted per sender, not
// silently discarded. The destination address comes from the directory; a
// resolution miss drops and counts too. The read lock keeps Close from
// pulling the socket away mid-write: a Send racing Close either completes
// against an open socket or observes closed and returns.
func (tr *UDPTransport) Send(from, to int, frame []byte) {
	if from < 0 || from >= tr.n || to < 0 || to >= tr.n {
		return
	}
	if len(frame) > maxUDPFrame {
		tr.oversize.Add(1)
		return
	}
	addr, ok := tr.dir.Resolve(to)
	if !ok {
		tr.misses.Add(1)
		return
	}
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	if tr.closed.Load() {
		return
	}
	if _, err := tr.conns[from].WriteToUDP(frame, addr); err != nil {
		tr.sendFails[from].Add(1)
		tr.failTotal.Add(1)
	}
}

// Close implements Transport: closes every socket and waits for the readers.
// The write lock excludes in-flight Sends, so no datagram is written to a
// socket that Close has already torn down.
func (tr *UDPTransport) Close() error {
	tr.mu.Lock()
	if tr.closed.Swap(true) {
		tr.mu.Unlock()
		return nil
	}
	for _, conn := range tr.conns {
		if conn != nil {
			conn.Close()
		}
	}
	tr.mu.Unlock()
	tr.wg.Wait()
	return nil
}
