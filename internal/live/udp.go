package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// maxUDPFrame bounds one frame to a single loopback datagram. Frames above
// it (a protocol pushing thousands of IDs in one message) are dropped and
// counted, mirroring what a real datagram network would do to them.
const maxUDPFrame = 60 * 1024

// maxUDPNodes caps the mesh size: every node owns one socket, and a mesh
// near the default file-descriptor limit helps nobody.
const maxUDPNodes = 512

// UDPTransport exchanges wire frames over per-node UDP sockets on the
// loopback interface. It is the "real wire" transport: frames are serialized
// through the same codec as the channel mesh but cross the kernel's network
// stack, so delivery is asynchronous and — under socket-buffer pressure —
// lossy. Free-running mode only (Synchronous returns false); the gossip
// protocols tolerate both properties by design.
type UDPTransport struct {
	n         int
	conns     []*net.UDPConn
	addrs     []*net.UDPAddr
	boxes     []*Mailbox
	oversize  atomic.Int64
	sendFails []atomic.Int64 // per-sender write failures
	failTotal atomic.Int64
	closed    atomic.Bool
	mu        sync.RWMutex // guards Send against Close pulling sockets away
	wg        sync.WaitGroup
}

// NewUDPTransport binds n loopback sockets (ephemeral ports) and starts one
// reader goroutine per node.
func NewUDPTransport(n int) (*UDPTransport, error) {
	if err := validateN(n); err != nil {
		return nil, err
	}
	if n > maxUDPNodes {
		return nil, fmt.Errorf("live: UDP mesh capped at %d nodes (got %d); use the channel transport for larger runs", maxUDPNodes, n)
	}
	tr := &UDPTransport{
		n:         n,
		conns:     make([]*net.UDPConn, n),
		addrs:     make([]*net.UDPAddr, n),
		boxes:     make([]*Mailbox, n),
		sendFails: make([]atomic.Int64, n),
	}
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("live: bind node %d: %w", i, err)
		}
		tr.conns[i] = conn
		tr.addrs[i] = conn.LocalAddr().(*net.UDPAddr)
		tr.boxes[i] = newMailbox()
	}
	for i := 0; i < n; i++ {
		tr.wg.Add(1)
		go tr.read(i)
	}
	return tr, nil
}

// read pumps node i's socket into its mailbox until the socket closes.
func (tr *UDPTransport) read(i int) {
	defer tr.wg.Done()
	buf := make([]byte, maxUDPFrame+1)
	for {
		k, _, err := tr.conns[i].ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		frame := make([]byte, k)
		copy(frame, buf[:k])
		tr.boxes[i].Put(frame)
	}
}

// N implements Transport.
func (tr *UDPTransport) N() int { return tr.n }

// Mailbox implements Transport.
func (tr *UDPTransport) Mailbox(i int) *Mailbox { return tr.boxes[i] }

// Synchronous implements Transport: datagrams are in flight after Send
// returns, so UDP cannot back lock-step barriers.
func (tr *UDPTransport) Synchronous() bool { return false }

// Oversize returns the number of frames dropped for exceeding one datagram.
func (tr *UDPTransport) Oversize() int64 { return tr.oversize.Load() }

// SendFailures returns the total number of frames the kernel refused to
// accept (WriteToUDP errors) across all senders. A nonzero count under
// normal operation points at socket-buffer pressure or teardown races —
// the loss is real and no longer silent.
func (tr *UDPTransport) SendFailures() int64 { return tr.failTotal.Load() }

// NodeSendFailures returns sender i's write-failure count.
func (tr *UDPTransport) NodeSendFailures(i int) int64 {
	if i < 0 || i >= tr.n {
		return 0
	}
	return tr.sendFails[i].Load()
}

// Addr returns node i's bound loopback address (for diagnostics).
func (tr *UDPTransport) Addr(i int) *net.UDPAddr { return tr.addrs[i] }

// Send implements Transport: one frame, one datagram. Write errors drop the
// frame, exactly like the wire would — but they are counted per sender, not
// silently discarded. The read lock keeps Close from pulling the socket away
// mid-write: a Send racing Close either completes against an open socket or
// observes closed and returns.
func (tr *UDPTransport) Send(from, to int, frame []byte) {
	if from < 0 || from >= tr.n || to < 0 || to >= tr.n {
		return
	}
	if len(frame) > maxUDPFrame {
		tr.oversize.Add(1)
		return
	}
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	if tr.closed.Load() {
		return
	}
	if _, err := tr.conns[from].WriteToUDP(frame, tr.addrs[to]); err != nil {
		tr.sendFails[from].Add(1)
		tr.failTotal.Add(1)
	}
}

// Close implements Transport: closes every socket and waits for the readers.
// The write lock excludes in-flight Sends, so no datagram is written to a
// socket that Close has already torn down.
func (tr *UDPTransport) Close() error {
	tr.mu.Lock()
	if tr.closed.Swap(true) {
		tr.mu.Unlock()
		return nil
	}
	for _, conn := range tr.conns {
		if conn != nil {
			conn.Close()
		}
	}
	tr.mu.Unlock()
	tr.wg.Wait()
	return nil
}
