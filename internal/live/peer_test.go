package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/phonecall"
)

// TestPeerMeshConverges is the multi-process deployment in miniature: five
// independent peer stacks — each with its own socket, routing table and round
// loop, sharing nothing but the (n, seed) pair and one bootstrap address —
// must all converge a rumor injected at node 0. No static directory exists
// anywhere on this path: every gossip frame's destination is resolved through
// the sender's routing table.
func TestPeerMeshConverges(t *testing.T) {
	const (
		n    = 5
		seed = 42
	)
	net, err := phonecall.New(phonecall.Config{N: n, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := PeerIDs(net)

	trs := make([]*PeerTransport, n)
	for i := 0; i < n; i++ {
		trs[i], err = NewPeerTransport(PeerTransportConfig{
			N: n, Self: i, IDs: ids,
			Membership: membership.Config{
				Bind:       "127.0.0.1:0",
				RPCTimeout: 200 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("peer %d transport: %v", i, err)
		}
		defer trs[i].Close()
	}

	// Everyone except the seed bootstraps off the seed's announce address —
	// the only address any process is ever given.
	seedAddr := trs[0].Membership().Self().Addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i < n; i++ {
		if err := trs[i].Membership().Bootstrap(ctx, seedAddr); err != nil {
			t.Fatalf("peer %d bootstrap: %v", i, err)
		}
	}

	reports := make([]PeerReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pn, err := NewPeerNode(PeerConfig{
			N: n, Index: i, Seed: seed,
			Rounds:    600,
			Interval:  2 * time.Millisecond,
			Linger:    20,
			Inject:    map[bool]uint64{true: 1, false: 0}[i == 0],
			Expect:    1,
			Transport: trs[i],
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = pn.Run(ctx)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("peer %d: %v (report %+v)", i, errs[i], reports[i])
			continue
		}
		if !reports[i].Converged {
			t.Errorf("peer %d did not converge: %+v", i, reports[i])
		}
		if reports[i].Held != 1 {
			t.Errorf("peer %d holds %#x, want 0x1", i, reports[i].Held)
		}
		// The routing table, not a shared directory, is what carried this:
		// every peer discovered at least the contacts it gossiped with.
		if reports[i].TableContacts == 0 {
			t.Errorf("peer %d converged with an empty routing table", i)
		}
	}
}

// TestPeerTransportMissTriggersDiscovery pins the on-miss contract: a send to
// a peer the routing table does not know is dropped and counted, and the
// lookup it triggers makes a later send succeed once the target is
// discoverable.
func TestPeerTransportMissTriggersDiscovery(t *testing.T) {
	const n = 3
	net, err := phonecall.New(phonecall.Config{N: n, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := PeerIDs(net)
	mk := func(i int) *PeerTransport {
		tr, err := NewPeerTransport(PeerTransportConfig{
			N: n, Self: i, IDs: ids,
			Membership: membership.Config{RPCTimeout: 200 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	a, b, c := mk(0), mk(1), mk(2)

	// b and c know a (the seed); a does not know c yet, b does not know c.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	seedAddr := a.Membership().Self().Addr
	if err := c.Membership().Bootstrap(ctx, seedAddr); err != nil {
		t.Fatal(err)
	}

	frame := appendCallFrame(nil, 1, 1, false, true, nil)
	// b has never spoken to anyone: its first send to c must miss, count, and
	// kick off discovery — which cannot succeed yet (b's table is empty).
	b.Send(1, 2, frame)
	if got := b.Misses(); got == 0 {
		t.Fatal("send into an empty routing table was not counted as a miss")
	}
	if err := b.Membership().Bootstrap(ctx, seedAddr); err != nil {
		t.Fatal(err)
	}
	// Bootstrap's self-lookup walked the seed's table; c is now resolvable and
	// the same send goes through to c's mailbox.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.Send(1, 2, append([]byte{}, frame...))
		time.Sleep(10 * time.Millisecond)
		if c.Mailbox(2).Len() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never reached peer c after discovery")
		}
	}
	// Self and remote mailbox addressing stay strict.
	if c.Mailbox(0) != nil || c.Mailbox(1) != nil {
		t.Fatal("remote indexes must have no local mailbox")
	}
}
