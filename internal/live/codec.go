package live

import (
	"encoding/binary"
	"fmt"

	"repro/internal/phonecall"
	"repro/internal/rumorset"
)

// The compact wire codec shared by every transport. One frame is one
// phone-call event:
//
//	[type:1][flags:1][round:uvarint][src:uvarint][message?]
//
// where type is frameCall (a call: an optional pushed payload plus an
// optional pull request — a bare call with neither still charges the model's
// Δ communication at the receiver) or frameResp (the src node's
// address-oblivious pull response), and src is the dense node index of the
// initiator (calls) or responder (responses). The message block is present
// iff flagPayload is set:
//
//	[value:8 LE][bits:zigzag uvarint][tag:1][idCount+1:uvarint][ids:8 LE each]
//
// Message.From is NOT on the wire: the engine stamps From with the sender's
// ID on every message, so the receiver reconstructs it from src through the
// shared ID directory — one fewer full-entropy word per frame. Value and IDs
// are fixed 64-bit (they carry full-entropy node IDs or bitmasks); round,
// src, bits and the ID count are varints (small in practice). The id count
// is offset by one so a nil IDs slice (0) and an empty non-nil slice (1)
// round-trip distinguishably — delivered inboxes must be bit-identical to
// the engine's.
//
// flagSummary selects the variable-length rumor-summary block instead of the
// message block: the frame body after src is exactly one rumorset summary
// (count + sorted delta varints, see rumorset.AppendSummary). Summary frames
// carry rumor IDs, never window slots, so a frame that lingered in a mailbox
// across an expiry/reuse cycle is harmlessly ignored by the receiver's
// MarkIDs lookup rather than mis-marking the slot's new tenant.
const (
	frameCall byte = 1
	frameResp byte = 2

	flagPayload byte = 1 << 0
	flagPull    byte = 1 << 1
	flagRumor   byte = 1 << 2
	flagSummary byte = 1 << 3
)

// frame is a decoded wire frame. msg.From is zero; the receiver stamps it
// from src. Summary frames fill sum instead of msg.
type frame struct {
	typ        byte
	round, src int
	hasPayload bool
	hasSummary bool
	wantsPull  bool
	msg        phonecall.Message
	sum        []rumorset.ID
}

// appendMessage encodes the message block.
func appendMessage(dst []byte, m *phonecall.Message) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Value)
	dst = binary.AppendUvarint(dst, zigzag(m.Bits))
	dst = append(dst, m.Tag)
	if m.IDs == nil {
		dst = binary.AppendUvarint(dst, 0)
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(m.IDs))+1)
		for _, id := range m.IDs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(id))
		}
	}
	return dst
}

// appendCallFrame encodes a call from initiator src. The payload is included
// iff hasPayload; wantsPull marks the call as (also) a pull request. The
// rumor flag of the payload travels in the frame flags byte.
func appendCallFrame(dst []byte, round, src int, hasPayload, wantsPull bool, m *phonecall.Message) []byte {
	var flags byte
	if hasPayload {
		flags |= flagPayload
		if m.Rumor {
			flags |= flagRumor
		}
	}
	if wantsPull {
		flags |= flagPull
	}
	dst = append(dst, frameCall, flags)
	dst = binary.AppendUvarint(dst, uint64(round))
	dst = binary.AppendUvarint(dst, uint64(src))
	if hasPayload {
		dst = appendMessage(dst, m)
	}
	return dst
}

// appendRespFrame encodes responder src's pull response.
func appendRespFrame(dst []byte, round, src int, m *phonecall.Message) []byte {
	flags := flagPayload
	if m.Rumor {
		flags |= flagRumor
	}
	dst = append(dst, frameResp, flags)
	dst = binary.AppendUvarint(dst, uint64(round))
	dst = binary.AppendUvarint(dst, uint64(src))
	return appendMessage(dst, m)
}

// appendSummaryCallFrame encodes a call from initiator src whose payload is a
// rumor-ID summary (ids must be sorted ascending and non-empty).
func appendSummaryCallFrame(dst []byte, round, src int, wantsPull bool, ids []rumorset.ID) []byte {
	flags := flagPayload | flagSummary | flagRumor
	if wantsPull {
		flags |= flagPull
	}
	dst = append(dst, frameCall, flags)
	dst = binary.AppendUvarint(dst, uint64(round))
	dst = binary.AppendUvarint(dst, uint64(src))
	return rumorset.AppendSummary(dst, ids)
}

// appendSummaryRespFrame encodes responder src's pull response carrying a
// rumor-ID summary.
func appendSummaryRespFrame(dst []byte, round, src int, ids []rumorset.ID) []byte {
	dst = append(dst, frameResp, flagPayload|flagSummary|flagRumor)
	dst = binary.AppendUvarint(dst, uint64(round))
	dst = binary.AppendUvarint(dst, uint64(src))
	return rumorset.AppendSummary(dst, ids)
}

// parseFrame decodes one frame.
func parseFrame(data []byte) (frame, error) {
	return parseFrameBuf(data, nil)
}

// parseFrameBuf decodes one frame, appending a summary block's IDs to sum
// (pass a reused scratch slice to keep the drain loop allocation-free).
func parseFrameBuf(data []byte, sum []rumorset.ID) (frame, error) {
	var fr frame
	if len(data) < 2 {
		return fr, fmt.Errorf("live: frame too short (%d bytes)", len(data))
	}
	fr.typ = data[0]
	flags := data[1]
	if fr.typ != frameCall && fr.typ != frameResp {
		return fr, fmt.Errorf("live: unknown frame type %d", fr.typ)
	}
	fr.hasPayload = flags&flagPayload != 0 || fr.typ == frameResp
	fr.wantsPull = flags&flagPull != 0
	rest := data[2:]
	round, k := binary.Uvarint(rest)
	if k <= 0 {
		return fr, fmt.Errorf("live: bad round varint")
	}
	rest = rest[k:]
	src, k := binary.Uvarint(rest)
	if k <= 0 {
		return fr, fmt.Errorf("live: bad src varint")
	}
	rest = rest[k:]
	fr.round, fr.src = int(round), int(src)
	if flags&flagSummary != 0 {
		ids, n, err := rumorset.DecodeSummary(sum, rest)
		if err != nil {
			return fr, fmt.Errorf("live: summary block: %w", err)
		}
		if n != len(rest) {
			return fr, fmt.Errorf("live: %d trailing bytes after summary", len(rest)-n)
		}
		fr.hasPayload = false
		fr.hasSummary = true
		fr.sum = ids
		return fr, nil
	}
	if !fr.hasPayload {
		if len(rest) != 0 {
			return fr, fmt.Errorf("live: %d trailing bytes on payload-free frame", len(rest))
		}
		return fr, nil
	}
	if len(rest) < 8 {
		return fr, fmt.Errorf("live: truncated message value")
	}
	fr.msg.Value = binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	zbits, k := binary.Uvarint(rest)
	if k <= 0 {
		return fr, fmt.Errorf("live: bad bits varint")
	}
	rest = rest[k:]
	fr.msg.Bits = unzigzag(zbits)
	if len(rest) < 1 {
		return fr, fmt.Errorf("live: truncated message tag")
	}
	fr.msg.Tag = rest[0]
	rest = rest[1:]
	idc, k := binary.Uvarint(rest)
	if k <= 0 {
		return fr, fmt.Errorf("live: bad id count varint")
	}
	rest = rest[k:]
	if idc > 0 {
		count := int(idc - 1)
		if len(rest) != count*8 {
			return fr, fmt.Errorf("live: id block is %d bytes, want %d", len(rest), count*8)
		}
		fr.msg.IDs = make([]phonecall.NodeID, count)
		for i := 0; i < count; i++ {
			fr.msg.IDs[i] = phonecall.NodeID(binary.LittleEndian.Uint64(rest[i*8:]))
		}
	} else if len(rest) != 0 {
		return fr, fmt.Errorf("live: %d trailing bytes after message", len(rest))
	}
	fr.msg.Rumor = flags&flagRumor != 0
	return fr, nil
}

// zigzag maps a signed int onto the unsigned varint space (small magnitudes
// stay small; Bits can legitimately be negative in protocol edge cases and
// must round-trip exactly).
func zigzag(v int) uint64 { return uint64((int64(v) << 1) ^ (int64(v) >> 63)) }

func unzigzag(u uint64) int { return int(int64(u>>1) ^ -int64(u&1)) }
