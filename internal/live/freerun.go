package live

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phonecall"
	"repro/internal/rumorset"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// tagHoldings marks messages whose Value is a rumor-holdings bitmask (the
// live twin of the scenario protocols' encoding: one uint64, charged one
// b-bit payload per carried rumor). It aliases the canonical constant so the
// holdings-directed behaviors (Liar, Stale) rewrite live traffic too.
const tagHoldings = phonecall.TagHoldings

// FreeRunConfig configures a free-running execution.
type FreeRunConfig struct {
	// N is the number of nodes (required, >= 2).
	N int
	// Seed drives the deterministic parts: node IDs, and each node's random
	// contact for its local round r (the model's stateless hash, so a node's
	// contact sequence is reproducible even though timing is not).
	Seed uint64
	// Rounds is the per-node local round budget (required, >= 1).
	Rounds int
	// MaxSkew bounds how many rounds a node may run ahead of the slowest
	// live node (default 3). This is the flow control that replaces the
	// global barrier.
	MaxSkew int
	// Algorithm is the steppable gossip protocol (push, pull, push-pull;
	// default push-pull).
	Algorithm scenario.Algorithm
	// PayloadBits is the per-rumor payload size b (default 256).
	PayloadBits int
	// Events is a scenario timeline. Events fire when the round frontier
	// (the minimum local round among live nodes) reaches them: CrashAt kills
	// nodes, JoinAt revives them uninformed at the frontier, InjectRumor
	// seeds holdings, Loss retunes the transport's drop injection (when the
	// transport supports it), CorruptAt installs Byzantine behaviors that
	// rewrite the node's outgoing calls and pull answers from its next local
	// round on. Without an InjectRumor event node 0 starts holding rumor 0.
	Events []scenario.Event
	// Transport carries the frames; nil gets a private zero-delay channel
	// mesh. Lossy and delaying transports are the point of this mode.
	Transport Transport
	// PeerSelector, when non-nil, replaces the uniform random-contact hash
	// with a policy-driven one (internal/policy.Selector) — each node's
	// random contact for its local round r is then the selector's answer for
	// (r, node). A selector that declines (no admissible peer) makes the
	// node sit the round out silently: the free-running engine only charges
	// calls it actually sends. Zone and partition timeline events require a
	// selector that carries a topology.
	PeerSelector phonecall.PeerSelector
	// OnFrontier, when non-nil, is invoked from the monitor goroutine every
	// time the round frontier advances, with the monitor's population view —
	// the free-running analogue of a per-round observer. There is no global
	// round, so no per-round traffic figures accompany it.
	OnFrontier func(FrontierInfo)
	// Telemetry, when non-nil, receives live traffic counters from the node
	// send paths (repro_messages_total, repro_bits_total labeled
	// engine="free-running"), sharded per node and merged at read time — the
	// counters a /metrics scrape sees move while the run executes. Nil keeps
	// the send path branch-identical to a run without telemetry. With a
	// Stream it additionally carries the rumor-set series
	// (repro_rumors_active, repro_rumors_injected_total,
	// repro_rumors_converged_total, repro_rumors_expired_total and the
	// repro_rumor_injection_stalled gauge), updated by the monitor.
	Telemetry *telemetry.Registry
	// Stream, when non-nil, switches the run to the scalable rumor-set layer:
	// the monitor continuously injects rumors at the configured rate through a
	// bounded in-flight window, nodes gossip variable-length rumor-ID
	// summaries instead of a 64-bit holdings mask, and converged rumors are
	// garbage-collected so their window slots recycle. Nil keeps the legacy
	// bitmask mode, bit-for-bit.
	Stream *StreamConfig
}

// StreamConfig configures continuous rumor injection for a free-running run.
// Rumor IDs are the dense sequence 0..Total-1; rumor k is seeded at the first
// live node at or after index k mod N when the injection schedule reaches it.
type StreamConfig struct {
	// Total is the number of rumors the stream injects over the whole run
	// (required, >= 1).
	Total int
	// Rate is the injection rate in rumors per frontier round (default 1):
	// when the round frontier is at f, up to ceil(Rate*(f+1)) rumors have been
	// injected. Injection additionally stalls whenever the in-flight window is
	// full — the backpressure that keeps memory bounded when GC lags.
	Rate float64
	// MaxInFlight bounds the concurrently active rumors (the rumor-set window;
	// default min(Total, 1024)).
	MaxInFlight int
}

// FrontierInfo is the monitor's view of one frontier advance.
type FrontierInfo struct {
	// Frontier is the new round frontier (the minimum local round among live
	// nodes); MaxRound is the furthest local clock among live nodes — dead
	// nodes' frozen clocks are excluded, like the frontier itself — so
	// MaxRound-Frontier is the current skew.
	Frontier int
	MaxRound int
	// Live counts live nodes; Informed counts live nodes holding every
	// registered rumor.
	Live     int
	Informed int
}

// frStats is one node's cumulative accounting, cache-line padded; written by
// the owner goroutine, read after the run joins.
type frStats struct {
	msgs     int64
	control  int64
	bits     int64
	sent     int64
	maxComms int32
	_        [28]byte // pad to 64 bytes so adjacent nodes do not false-share
}

// FreeRun executes gossip without a global barrier: every node advances its
// own round clock, sending and draining frames as it goes, while a monitor
// goroutine maintains the round frontier, enforces the skew bound, fires
// timeline events and detects convergence.
type FreeRun struct {
	cfg  FreeRunConfig
	algo scenario.Algorithm
	net  *phonecall.Network // ID directory and message sizing only; its engine never runs
	tr   Transport
	own  bool

	liveFlag   []atomic.Bool
	held       []atomic.Uint64
	registered atomic.Uint64
	roundOf    []atomic.Int64 // last completed local round
	resume     []atomic.Int64 // frontier to rejoin at after a revive
	behav      []atomic.Pointer[frBehavior]

	minRound     atomic.Int64
	stopped      atomic.Bool
	completionAt atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond

	events  []scenario.Event
	nextEv  int
	ignored int // events the runtime could not honor

	// Rumor-stream state (nil/zero in legacy bitmask mode). set is the shared
	// ground truth: nodes mark their own rows from their goroutines, the
	// monitor owns injection, GC and the convergence scan. injectNext, stalls
	// and telLast are monitor-only; Run reads them after the monitor joins.
	stream     *StreamConfig
	set        *rumorset.Set
	wide       []frWideBuf
	scanBuf    []rumorset.ID
	injectNext int
	stalls     int64
	telLast    rumorset.Stats

	stats    []frStats
	overhead int
	wg       sync.WaitGroup

	// tel holds the pre-resolved telemetry counters (nil without a registry):
	// instrument lookup happens once in NewFreeRun, the node send paths only
	// pay a nil check and two sharded atomic adds.
	tel *frTelemetry
}

// frTelemetry is the free-running send-path instrument set.
type frTelemetry struct {
	msgs     *telemetry.Counter // payload + control, like the engine's report
	bitsSent *telemetry.Counter
	// Stream series, resolved only with a StreamConfig; updated by the
	// monitor, so the node send paths stay as cheap as legacy mode.
	rumorsActive   *telemetry.Gauge
	injectedTotal  *telemetry.Counter
	convergedTotal *telemetry.Counter
	expiredTotal   *telemetry.Counter
	stalled        *telemetry.Gauge
}

// frWideBuf is one node's reusable rumor-stream scratch, touched only by the
// owner goroutine: sorted holdings for outgoing summaries, a decode buffer
// for incoming ones, and the round's pending pull requesters.
type frWideBuf struct {
	ids   []rumorset.ID
	sum   []rumorset.ID
	pulls []int
}

// frBehavior boxes a node's installed Byzantine behavior so the monitor can
// publish it atomically while the node goroutine keeps running. A nil pointer
// (never installed) and a boxed nil behavior both mean honest.
type frBehavior struct {
	b phonecall.Behavior
}

// Report is the outcome of a free-running execution.
type Report struct {
	N        int
	Live     int
	Informed int // live nodes holding every injected rumor
	// AllInformed reports convergence: every live node held every rumor.
	AllInformed bool
	// Rounds is the configured budget; MaxRound the furthest local clock.
	Rounds   int
	MaxRound int
	// CompletionFrontier is the round frontier at the moment the monitor
	// first detected convergence (0 = never converged within the budget) —
	// the free-running analogue of a completion round. Like the scenario
	// driver's CompletionRound, the first completion is what is recorded:
	// later churn (a joiner arriving uninformed) does not clear it.
	CompletionFrontier int
	// Traffic totals, charged with the simulator's bit accounting.
	Messages        int64
	ControlMessages int64
	Bits            int64
	// MaxComms is the most communications any node participated in during
	// one of its local rounds.
	MaxComms int
	// Drops counts transport-level loss injections (channel transport).
	Drops int64
	// SendFailures counts frames the transport's sender could not hand to
	// the OS (UDP write errors); NodeSendFailures maps the failing sender
	// indexes to their counts (nil when nothing failed). Zero on transports
	// that cannot fail a send (the channel mesh).
	SendFailures     int64
	NodeSendFailures map[int]int64
	// UnfiredEvents counts timeline events past the final frontier;
	// IgnoredEvents counts events the runtime could not honor (for example a
	// Loss event on a transport without loss injection).
	UnfiredEvents int
	IgnoredEvents int
	// Rumor-stream accounting (all zero without a StreamConfig).
	// RumorsInjected counts stream registrations; RumorsConverged the rumors
	// GC retired because every live node held them; RumorsExpired all window
	// reclamations; RumorsActive the rumors still in flight at the end (0 on
	// a fully converged stream). InjectionStalls counts monitor passes where
	// a full window stalled the injection schedule; LostInjects the
	// injections that landed on a currently-failed node.
	RumorsInjected  int64
	RumorsConverged int64
	RumorsExpired   int64
	RumorsActive    int
	InjectionStalls int64
	LostInjects     int64
	// Wall is the end-to-end execution time.
	Wall time.Duration
}

// Trace maps the report onto the repository's common result type so live
// runs flow through the same tables and comparisons as simulated ones.
func (rep Report) Trace(algorithm string, seed uint64) trace.Result {
	res := trace.Result{
		Algorithm:        algorithm,
		N:                rep.N,
		Seed:             seed,
		Rounds:           rep.MaxRound,
		CompletionRound:  rep.CompletionFrontier,
		Messages:         rep.Messages,
		ControlMessages:  rep.ControlMessages,
		Bits:             rep.Bits,
		MaxCommsPerRound: rep.MaxComms,
		Live:             rep.Live,
		Informed:         rep.Informed,
		AllInformed:      rep.AllInformed,
	}
	if rep.N > 0 {
		res.MessagesPerNode = float64(rep.Messages+rep.ControlMessages) / float64(rep.N)
	}
	return res
}

// NewFreeRun validates the configuration and prepares a run.
func NewFreeRun(cfg FreeRunConfig) (*FreeRun, error) {
	if err := validateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("live: free-running needs a round budget >= 1 (got %d)", cfg.Rounds)
	}
	if cfg.MaxSkew < 1 {
		cfg.MaxSkew = 3
	}
	switch cfg.Algorithm {
	case "":
		cfg.Algorithm = scenario.AlgoPushPull
	case scenario.AlgoPush, scenario.AlgoPull, scenario.AlgoPushPull:
	default:
		return nil, fmt.Errorf("live: unknown algorithm %q (have push, pull, push-pull)", cfg.Algorithm)
	}
	// Validate the timeline up-front with the shared authority, so an invalid
	// event is a typed construction error here exactly as it is on the
	// simulator and lock-step engines — not a silent IgnoredEvents bump at
	// fire time.
	if err := scenario.ValidateEvents(cfg.N, cfg.Stream != nil, cfg.Events); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if _, ok := cfg.PeerSelector.(frTopology); !ok {
		for _, ev := range cfg.Events {
			switch ev.(type) {
			case scenario.ZoneOutage, scenario.ZoneHeal, scenario.Partition, scenario.HealPartition:
				return nil, fmt.Errorf("live: %w: %s needs a topology-carrying peer selector", scenario.ErrSpec, ev.Describe())
			}
		}
	}
	stream := cfg.Stream
	if stream != nil {
		for _, ev := range cfg.Events {
			if _, ok := ev.(scenario.InjectRumor); ok {
				return nil, fmt.Errorf("live: %w: a rumor stream is the sole injector; drop the InjectRumor events", scenario.ErrSpec)
			}
		}
		s := *stream // defaulting must not mutate the caller's struct
		if s.Total < 1 {
			return nil, fmt.Errorf("live: %w: rumor stream needs Total >= 1 (got %d)", scenario.ErrSpec, s.Total)
		}
		if s.Rate <= 0 {
			s.Rate = 1
		}
		if s.MaxInFlight <= 0 {
			s.MaxInFlight = min(s.Total, 1024)
		}
		stream = &s
	}
	net, err := phonecall.New(phonecall.Config{N: cfg.N, Seed: cfg.Seed, PayloadBits: cfg.PayloadBits, Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if cfg.PeerSelector != nil {
		net.SetPeerSelector(cfg.PeerSelector)
	}
	tr := cfg.Transport
	own := false
	if tr == nil {
		if tr, err = NewChannelTransport(cfg.N, ChannelConfig{}); err != nil {
			return nil, err
		}
		own = true
	}
	if tr.N() != cfg.N {
		return nil, fmt.Errorf("live: transport has %d endpoints for %d nodes", tr.N(), cfg.N)
	}
	fr := &FreeRun{
		cfg:      cfg,
		algo:     cfg.Algorithm,
		net:      net,
		tr:       tr,
		own:      own,
		stream:   stream,
		liveFlag: make([]atomic.Bool, cfg.N),
		held:     make([]atomic.Uint64, cfg.N),
		roundOf:  make([]atomic.Int64, cfg.N),
		resume:   make([]atomic.Int64, cfg.N),
		behav:    make([]atomic.Pointer[frBehavior], cfg.N),
		stats:    make([]frStats, cfg.N),
		overhead: net.MessageSize(phonecall.Message{Tag: tagHoldings}),
	}
	if stream != nil {
		if fr.set, err = rumorset.New(cfg.N, stream.MaxInFlight); err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		fr.wide = make([]frWideBuf, cfg.N)
	}
	if cfg.Telemetry != nil {
		by := []telemetry.Label{
			{Key: "algo", Value: string(cfg.Algorithm)},
			{Key: "engine", Value: "free-running"},
		}
		fr.tel = &frTelemetry{
			msgs:     cfg.Telemetry.Counter("repro_messages_total", by...),
			bitsSent: cfg.Telemetry.Counter("repro_bits_total", by...),
		}
		if stream != nil {
			fr.tel.rumorsActive = cfg.Telemetry.Gauge("repro_rumors_active", by...)
			fr.tel.injectedTotal = cfg.Telemetry.Counter("repro_rumors_injected_total", by...)
			fr.tel.convergedTotal = cfg.Telemetry.Counter("repro_rumors_converged_total", by...)
			fr.tel.expiredTotal = cfg.Telemetry.Counter("repro_rumors_expired_total", by...)
			fr.tel.stalled = cfg.Telemetry.Gauge("repro_rumor_injection_stalled", by...)
		}
	}
	fr.cond = sync.NewCond(&fr.mu)
	for i := range fr.liveFlag {
		fr.liveFlag[i].Store(true)
	}
	fr.events = append(fr.events, cfg.Events...)
	sort.SliceStable(fr.events, func(a, b int) bool {
		return fr.events[a].EventRound() < fr.events[b].EventRound()
	})
	hasInject := false
	for _, ev := range fr.events {
		if _, ok := ev.(scenario.InjectRumor); ok {
			hasInject = true
		}
	}
	if !hasInject && fr.stream == nil {
		fr.events = append([]scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}}, fr.events...)
	}
	return fr, nil
}

// Run executes the workload to convergence, budget exhaustion or timeline
// end, and returns the report. A done ctx stops every node and the monitor
// promptly; the partial report is returned together with the context's
// error. Run may be called once.
func (fr *FreeRun) Run(ctx context.Context) (Report, error) {
	start := time.Now()
	if ctx != nil {
		stopWatch := context.AfterFunc(ctx, fr.stop)
		defer stopWatch()
	}
	for i := 0; i < fr.cfg.N; i++ {
		fr.wg.Add(1)
		go fr.nodeLoop(i)
	}
	monitorDone := make(chan struct{})
	go fr.monitor(monitorDone)
	fr.wg.Wait()
	// All nodes exited; make sure the monitor observes the stop.
	fr.stop()
	<-monitorDone
	if fr.own {
		fr.tr.Close()
	}

	rep := Report{N: fr.cfg.N, Rounds: fr.cfg.Rounds, Wall: time.Since(start)}
	reg := fr.registered.Load()
	for i := 0; i < fr.cfg.N; i++ {
		st := &fr.stats[i]
		rep.Messages += st.msgs
		rep.ControlMessages += st.control
		rep.Bits += st.bits
		if int(st.maxComms) > rep.MaxComms {
			rep.MaxComms = int(st.maxComms)
		}
		if r := int(fr.roundOf[i].Load()); r > rep.MaxRound {
			rep.MaxRound = r
		}
		if fr.liveFlag[i].Load() {
			rep.Live++
			if fr.held[i].Load()&reg == reg {
				rep.Informed++
			}
		}
	}
	rep.AllInformed = reg != 0 && rep.Live > 0 && rep.Informed == rep.Live
	if fr.set != nil {
		snap := fr.set.Snapshot()
		rep.RumorsInjected = snap.Injected
		rep.RumorsConverged = snap.Converged
		rep.RumorsExpired = snap.Expired
		rep.RumorsActive = snap.Active
		rep.LostInjects = snap.Lost
		rep.InjectionStalls = fr.stalls
		// Informed means "holds every still-active rumor"; with the whole
		// stream injected and GC'd, every live node is trivially informed and
		// the stream converged.
		rep.Informed = 0
		for i := 0; i < fr.cfg.N; i++ {
			if fr.liveFlag[i].Load() && fr.set.HeldCount(i) == snap.Active {
				rep.Informed++
			}
		}
		rep.AllInformed = rep.Live > 0 && fr.injectNext == fr.stream.Total && snap.Active == 0
	}
	rep.CompletionFrontier = int(fr.completionAt.Load())
	rep.UnfiredEvents = len(fr.events) - fr.nextEv
	rep.IgnoredEvents = fr.ignored
	if ct, ok := fr.tr.(*ChannelTransport); ok {
		rep.Drops = ct.Drops()
	}
	if sf, ok := fr.tr.(SendFailureCounter); ok {
		rep.SendFailures = sf.SendFailures()
		for i := 0; i < fr.cfg.N; i++ {
			if c := sf.NodeSendFailures(i); c > 0 {
				if rep.NodeSendFailures == nil {
					rep.NodeSendFailures = make(map[int]int64)
				}
				rep.NodeSendFailures[i] = c
			}
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// stop halts every node and wakes all waiters.
func (fr *FreeRun) stop() {
	fr.mu.Lock()
	fr.stopped.Store(true)
	fr.cond.Broadcast()
	fr.mu.Unlock()
}

// monitor maintains the frontier, fires timeline events, and detects
// convergence and natural termination. It is the only writer of minRound,
// membership and registration.
func (fr *FreeRun) monitor(done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(500 * time.Microsecond)
	defer ticker.Stop()
	for !fr.stopped.Load() {
		<-ticker.C
		fr.tick()
	}
}

// tick runs one monitor pass.
func (fr *FreeRun) tick() {
	frontier := fr.frontier()

	// Fire every event the frontier has reached: an event at round r fires
	// once no live node is still below round r-1 — the closest free-running
	// analogue of "at the start of round r".
	for fr.nextEv < len(fr.events) && int64(fr.events[fr.nextEv].EventRound()) <= frontier+1 {
		fr.apply(fr.events[fr.nextEv], frontier)
		fr.nextEv++
		frontier = fr.frontier()
	}

	// Publish the frontier and wake skew waiters.
	advanced := frontier != fr.minRound.Load()
	if advanced {
		fr.mu.Lock()
		fr.minRound.Store(frontier)
		fr.cond.Broadcast()
		fr.mu.Unlock()
	}

	if fr.set != nil {
		fr.tickStream(frontier, advanced)
		return
	}

	// Convergence: every live node holds every injected rumor.
	reg := fr.registered.Load()
	liveCount, informed, allDone := 0, 0, true
	maxRound := int64(0)
	for i := 0; i < fr.cfg.N; i++ {
		if !fr.liveFlag[i].Load() {
			continue
		}
		if r := fr.roundOf[i].Load(); r > maxRound {
			maxRound = r
		}
		liveCount++
		if fr.held[i].Load()&reg == reg {
			informed++
		}
		if fr.roundOf[i].Load() < int64(fr.cfg.Rounds) {
			allDone = false
		}
	}
	if advanced && fr.cfg.OnFrontier != nil {
		fr.cfg.OnFrontier(FrontierInfo{
			Frontier: int(frontier),
			MaxRound: int(maxRound),
			Live:     liveCount,
			Informed: informed,
		})
	}
	if reg != 0 && liveCount > 0 && informed == liveCount {
		fr.completionAt.CompareAndSwap(0, max(frontier, 1))
		if fr.nextEv >= len(fr.events) {
			fr.stop()
			return
		}
	}
	// Natural end: every live node exhausted its budget (or nobody is left).
	// The frontier can no longer advance, so any event still pending is
	// beyond frontier+1 and can never fire — stopping here (instead of
	// waiting for the full timeline) is what keeps a timeline scheduled past
	// the budget from hanging the run; the leftovers are reported as
	// UnfiredEvents, the free-running analogue of the sim harness's
	// "event(s) never fired" error.
	if (allDone || liveCount == 0) &&
		(fr.nextEv >= len(fr.events) || int64(fr.events[fr.nextEv].EventRound()) > frontier+1) {
		fr.stop()
	}
}

// tickStream is the monitor pass for rumor-stream mode: garbage-collect
// converged rumors, advance the injection schedule under window backpressure,
// and detect stream completion.
func (fr *FreeRun) tickStream(frontier int64, advanced bool) {
	// GC first: the AND-scan over live holdings rows is the race-free
	// convergence authority here (the advisory per-slot live counters can be
	// skewed by churn while nodes run). Retiring before injecting is what
	// lets a full window drain within the same pass.
	scan := fr.set.ScanConverged(fr.scanBuf[:0], func(i int) bool { return fr.liveFlag[i].Load() })
	fr.scanBuf = scan[:0]
	if len(scan) > 0 {
		fr.set.Retire(scan...)
	}

	// Inject up to the frontier-proportional target. A full window stalls the
	// schedule — bounded memory beats punctual injection — and the stall is
	// observable (report counter + telemetry gauge).
	target := int(fr.stream.Rate * float64(frontier+1))
	if target < 1 {
		target = 1
	}
	if target > fr.stream.Total {
		target = fr.stream.Total
	}
	stalled := false
	for fr.injectNext < target {
		node := fr.pickInjectNode(fr.injectNext)
		if node < 0 {
			break // nobody alive to seed; retry next pass
		}
		if err := fr.set.Inject(node, rumorset.ID(fr.injectNext)); err != nil {
			stalled = true
			fr.stalls++
			break
		}
		fr.injectNext++
	}
	if fr.tel != nil && fr.tel.rumorsActive != nil {
		snap := fr.set.Snapshot()
		fr.tel.rumorsActive.Set(int64(snap.Active))
		fr.tel.injectedTotal.Add(snap.Injected - fr.telLast.Injected)
		fr.tel.convergedTotal.Add(snap.Converged - fr.telLast.Converged)
		fr.tel.expiredTotal.Add(snap.Expired - fr.telLast.Expired)
		if stalled {
			fr.tel.stalled.Set(1)
		} else {
			fr.tel.stalled.Set(0)
		}
		fr.telLast = snap
	}

	active := fr.set.Active()
	liveCount, informed, allDone := 0, 0, true
	maxRound := int64(0)
	for i := 0; i < fr.cfg.N; i++ {
		if !fr.liveFlag[i].Load() {
			continue
		}
		if r := fr.roundOf[i].Load(); r > maxRound {
			maxRound = r
		}
		liveCount++
		if fr.set.HeldCount(i) == active {
			informed++
		}
		if fr.roundOf[i].Load() < int64(fr.cfg.Rounds) {
			allDone = false
		}
	}
	if advanced && fr.cfg.OnFrontier != nil {
		fr.cfg.OnFrontier(FrontierInfo{
			Frontier: int(frontier),
			MaxRound: int(maxRound),
			Live:     liveCount,
			Informed: informed,
		})
	}
	// Stream completion: everything injected and everything reclaimed.
	if fr.injectNext == fr.stream.Total && active == 0 && liveCount > 0 {
		fr.completionAt.CompareAndSwap(0, max(frontier, 1))
		if fr.nextEv >= len(fr.events) {
			fr.stop()
			return
		}
	}
	// Natural end mirrors the legacy tick: budgets exhausted (or nobody
	// left) and no event can ever fire again.
	if (allDone || liveCount == 0) &&
		(fr.nextEv >= len(fr.events) || int64(fr.events[fr.nextEv].EventRound()) > frontier+1) {
		fr.stop()
	}
}

// pickInjectNode picks the injection site for stream rumor k: the first live
// node at or after k mod N, or -1 when nobody is alive. Seeding only live
// nodes keeps a crash-heavy timeline from wedging the window with rumors
// whose sole holder is dead.
func (fr *FreeRun) pickInjectNode(k int) int {
	start := k % fr.cfg.N
	for off := 0; off < fr.cfg.N; off++ {
		if i := (start + off) % fr.cfg.N; fr.liveFlag[i].Load() {
			return i
		}
	}
	return -1
}

// frontier computes the minimum local round among live nodes; with nobody
// alive it parks at the budget so remaining events still fire.
func (fr *FreeRun) frontier() int64 {
	min := int64(fr.cfg.Rounds)
	for i := 0; i < fr.cfg.N; i++ {
		if !fr.liveFlag[i].Load() {
			continue
		}
		if r := fr.roundOf[i].Load(); r < min {
			min = r
		}
	}
	return min
}

// apply fires one timeline event at the given frontier.
func (fr *FreeRun) apply(ev scenario.Event, frontier int64) {
	switch e := ev.(type) {
	case scenario.CrashAt:
		fr.mu.Lock()
		for _, i := range e.Nodes {
			if i >= 0 && i < fr.cfg.N {
				fr.liveFlag[i].Store(false)
				if fr.set != nil {
					fr.set.Fail(i)
				}
			}
		}
		fr.cond.Broadcast() // membership changed; skew waiters re-evaluate
		fr.mu.Unlock()
	case scenario.JoinAt:
		fr.mu.Lock()
		for _, i := range e.Nodes {
			if i >= 0 && i < fr.cfg.N && !fr.liveFlag[i].Load() {
				if fr.set != nil {
					fr.set.Revive(i) // clears the holdings row before the node wakes
				}
				fr.held[i].Store(0) // rejoin uninformed, then go live
				fr.resume[i].Store(frontier)
				fr.roundOf[i].Store(frontier)
				fr.liveFlag[i].Store(true)
			}
		}
		fr.cond.Broadcast()
		fr.mu.Unlock()
	case scenario.Loss:
		if ls, ok := fr.tr.(LossSetter); ok {
			ls.SetLoss(e.Rate, e.Seed)
		} else {
			fr.ignored++
		}
	case scenario.InjectRumor:
		// NewFreeRun validates the timeline (and stream mode rejects inject
		// events outright), so this guard is pure defense in depth.
		if fr.set != nil || e.Node < 0 || e.Node >= fr.cfg.N || e.Rumor >= phonecall.MaxRumors {
			fr.ignored++
			return
		}
		fr.registered.Or(1 << e.Rumor)
		fr.mergeHeld(e.Node, 1<<e.Rumor)
	case scenario.CorruptAt:
		// Same behavior construction as the scenario driver, wired to the
		// free-running state: the stale snapshot freezes the node's current
		// holdings, the liar forges outside whatever is registered when it
		// speaks. The node goroutine picks the behavior up at its next round.
		held := func(i int) uint64 { return fr.held[i].Load() }
		registered := func() uint64 { return fr.registered.Load() }
		for _, i := range e.Nodes {
			if i < 0 || i >= fr.cfg.N {
				fr.ignored++
				continue
			}
			b, err := e.BehaviorFor(i, held, registered)
			if err != nil {
				fr.ignored++
				continue
			}
			fr.behav[i].Store(&frBehavior{b: b})
		}
	case scenario.ZoneOutage:
		if tv, ok := fr.net.PeerSelector().(frTopology); ok && e.Zone >= 0 && e.Zone < tv.Zones() {
			fr.apply(scenario.CrashAt{At: e.At, Nodes: tv.ZoneMembers(e.Zone)}, frontier)
		} else {
			fr.ignored++ // NewFreeRun rejects zone events without a topology
		}
	case scenario.ZoneHeal:
		if tv, ok := fr.net.PeerSelector().(frTopology); ok && e.Zone >= 0 && e.Zone < tv.Zones() {
			fr.apply(scenario.JoinAt{At: e.At, Nodes: tv.ZoneMembers(e.Zone)}, frontier)
		} else {
			fr.ignored++
		}
	case scenario.Partition:
		if tv, ok := fr.net.PeerSelector().(frTopology); ok {
			tv.SetPartitioned(true)
		} else {
			fr.ignored++
		}
	case scenario.HealPartition:
		if tv, ok := fr.net.PeerSelector().(frTopology); ok {
			tv.SetPartitioned(false)
		} else {
			fr.ignored++
		}
	default:
		fr.ignored++
	}
}

// frTopology is what zone and partition events need from the installed peer
// selector (internal/policy.Selector implements it); declared locally so the
// live engine stays decoupled from the policy compiler.
type frTopology interface {
	ZoneMembers(zone int) []int
	Zones() int
	SetPartitioned(part bool)
}

// mergeHeld ORs mask into node i's holdings.
func (fr *FreeRun) mergeHeld(i int, mask uint64) {
	fr.held[i].Or(mask)
}

// waitSkew blocks while local round r is more than MaxSkew ahead of the
// frontier; returns false when the run stopped.
func (fr *FreeRun) waitSkew(r int) bool {
	if fr.stopped.Load() {
		return false
	}
	if int64(r)-fr.minRound.Load() <= int64(fr.cfg.MaxSkew) {
		return true
	}
	fr.mu.Lock()
	for !fr.stopped.Load() && int64(r)-fr.minRound.Load() > int64(fr.cfg.MaxSkew) {
		fr.cond.Wait()
	}
	fr.mu.Unlock()
	return !fr.stopped.Load()
}

// waitAlive parks a crashed node until it is revived; returns false when the
// run stopped first.
func (fr *FreeRun) waitAlive(i int) bool {
	fr.mu.Lock()
	for !fr.stopped.Load() && !fr.liveFlag[i].Load() {
		fr.cond.Wait()
	}
	fr.mu.Unlock()
	return !fr.stopped.Load()
}

// nodeLoop is one node's free-running event loop.
func (fr *FreeRun) nodeLoop(i int) {
	defer fr.wg.Done()
	var drain [][]byte
	r := 1
	for r <= fr.cfg.Rounds && !fr.stopped.Load() {
		if !fr.liveFlag[i].Load() {
			// A crashed process receives nothing: discard whatever is queued,
			// park until revived, and discard again what accumulated while
			// dead — otherwise a JoinAt-revived node would drain its dead-
			// period backlog, re-learning rumors it rejoined without and
			// charging the stale frames as communications.
			drain = discard(fr.tr.Mailbox(i).TryDrain(drain[:0]))
			if !fr.waitAlive(i) {
				return
			}
			drain = discard(fr.tr.Mailbox(i).TryDrain(drain[:0]))
			if res := int(fr.resume[i].Load()); res+1 > r {
				r = res + 1
			}
			continue
		}
		if !fr.waitSkew(r) {
			return
		}
		if fr.set != nil {
			drain = fr.doRoundStream(i, r, drain)
		} else {
			drain = fr.doRound(i, r, drain)
		}
		fr.roundOf[i].Store(int64(r))
		r++
	}
}

// discard drops drained frames, keeping the reusable buffer.
func discard(frames [][]byte) [][]byte { return frames[:0] }

// holdingsMsg encodes a holdings bitmask, charged one payload per rumor.
func (fr *FreeRun) holdingsMsg(held uint64) phonecall.Message {
	return phonecall.Message{
		Tag:   tagHoldings,
		Value: held,
		Rumor: true,
		Bits:  fr.overhead + bits.OnesCount64(held)*fr.net.PayloadBits(),
	}
}

// doRound runs node i's local round r: initiate one call per the protocol
// (filtered through the node's installed behavior, if any), drain whatever
// arrived, answer pulls, merge received holdings.
func (fr *FreeRun) doRound(i, r int, drain [][]byte) [][]byte {
	st := &fr.stats[i]
	reg := fr.registered.Load()
	held := fr.held[i].Load() & reg
	comms := int32(0)

	var b phonecall.Behavior
	if cell := fr.behav[i].Load(); cell != nil {
		b = cell.b
	}

	sendPayload := func(j int, m phonecall.Message, wantsPull bool) {
		m.From = fr.net.ID(i)
		size := int64(fr.net.MessageSize(m))
		st.msgs++
		st.bits += size
		st.sent++
		if fr.tel != nil {
			fr.tel.msgs.AddShard(i, 1)
			fr.tel.bitsSent.AddShard(i, size)
		}
		fr.tr.Send(i, j, appendCallFrame(nil, r, i, true, wantsPull, &m))
	}
	sendPull := func(j int) {
		size := int64(fr.net.ControlBits())
		st.control++
		st.bits += size
		st.sent++
		if fr.tel != nil {
			fr.tel.msgs.AddShard(i, 1)
			fr.tel.bitsSent.AddShard(i, size)
		}
		fr.tr.Send(i, j, appendCallFrame(nil, r, i, false, true, nil))
	}

	// Build the round's intent exactly like the steppable protocols, then let
	// the behavior rewrite it — the same seam the barriered engines apply, so
	// a timeline's adversaries act identically here.
	var it phonecall.Intent
	switch fr.algo {
	case scenario.AlgoPush:
		if held != 0 {
			it = phonecall.PushIntent(phonecall.RandomTarget(), fr.holdingsMsg(held))
		}
	case scenario.AlgoPull:
		if held != reg || reg == 0 {
			it = phonecall.PullIntent(phonecall.RandomTarget())
		}
	default: // push-pull
		if held != 0 {
			it = phonecall.ExchangeIntent(phonecall.RandomTarget(), fr.holdingsMsg(held))
		} else {
			it = phonecall.ExchangeIntent(phonecall.RandomTarget(), phonecall.Message{})
		}
	}
	j, jok := fr.net.RandomContact(r, i)
	resolve := func(t phonecall.Target) int {
		if t.Random {
			if !jok {
				return -1 // policy admits no peer: the node sits this round out
			}
			return j
		}
		if idx, ok := fr.net.IndexOf(t.ID); ok && idx != i {
			return idx
		}
		return -1
	}
	if b != nil {
		target := -1
		if it.Kind != phonecall.None {
			target = resolve(it.Target)
		}
		it = b.RewriteIntent(r, i, target, it)
	}
	if it.Kind != phonecall.None {
		if dst := resolve(it.Target); dst >= 0 {
			switch it.Kind {
			case phonecall.Push:
				sendPayload(dst, it.Payload, false)
			case phonecall.Pull:
				sendPull(dst)
			case phonecall.Exchange:
				if it.Payload.HasContent() {
					sendPayload(dst, it.Payload, true)
				} else {
					sendPull(dst)
				}
			}
			comms++
		}
	}

	drain = fr.tr.Mailbox(i).TryDrain(drain[:0])
	var gained uint64
	for _, raw := range drain {
		f, err := parseFrame(raw)
		if err != nil {
			continue
		}
		if f.hasPayload && f.msg.Tag == tagHoldings {
			gained |= f.msg.Value
		}
		if f.typ != frameCall {
			continue
		}
		comms++
		if f.wantsPull {
			// Respond immediately with current holdings (plus whatever this
			// drain just taught us — a real process would answer with its
			// freshest state), filtered through the behavior like the
			// engine's response wrap.
			h := (fr.held[i].Load() | gained) & fr.registered.Load()
			var m phonecall.Message
			ok := false
			if h != 0 && fr.algo != scenario.AlgoPush {
				m, ok = fr.holdingsMsg(h), true
			}
			if b != nil {
				m, ok = b.RewriteResponse(r, i, m, ok)
			}
			if ok {
				m.From = fr.net.ID(i)
				size := int64(fr.net.MessageSize(m))
				st.msgs++
				st.bits += size
				st.sent++
				if fr.tel != nil {
					fr.tel.msgs.AddShard(i, 1)
					fr.tel.bitsSent.AddShard(i, size)
				}
				fr.tr.Send(i, f.src, appendRespFrame(nil, r, i, &m))
			}
		}
	}
	if gained != 0 {
		fr.mergeHeld(i, gained&fr.registered.Load())
	}
	if comms > st.maxComms {
		st.maxComms = comms
	}
	return drain
}

// summaryBits charges a rumor-ID summary with the simulator's wide-path
// accounting: frame overhead, the summary encoding itself, and one b-bit
// payload per carried rumor.
func (fr *FreeRun) summaryBits(ids []rumorset.ID) int64 {
	return int64(fr.overhead + rumorset.SummarySize(ids)*8 + len(ids)*fr.net.PayloadBits())
}

// doRoundStream is doRound for rumor-stream mode: the node advertises the
// sorted IDs of the active rumors it holds as a variable-length summary
// frame, merges the summaries it drained into the shared rumor set (its own
// row — the set's ownership contract), and answers pulls with its freshest
// holdings. The stream path has no Byzantine seam: ValidateEvents rejects
// CorruptAt on wide runs.
func (fr *FreeRun) doRoundStream(i, r int, drain [][]byte) [][]byte {
	st := &fr.stats[i]
	wb := &fr.wide[i]
	comms := int32(0)

	wb.ids = fr.set.AppendHeld(wb.ids[:0], i)
	held := wb.ids
	active := fr.set.Active()

	sendSummary := func(j int, ids []rumorset.ID, wantsPull bool) {
		size := fr.summaryBits(ids)
		st.msgs++
		st.bits += size
		st.sent++
		if fr.tel != nil {
			fr.tel.msgs.AddShard(i, 1)
			fr.tel.bitsSent.AddShard(i, size)
		}
		fr.tr.Send(i, j, appendSummaryCallFrame(nil, r, i, wantsPull, ids))
	}
	sendPull := func(j int) {
		size := int64(fr.net.ControlBits())
		st.control++
		st.bits += size
		st.sent++
		if fr.tel != nil {
			fr.tel.msgs.AddShard(i, 1)
			fr.tel.bitsSent.AddShard(i, size)
		}
		fr.tr.Send(i, j, appendCallFrame(nil, r, i, false, true, nil))
	}

	// The same intent shape as the steppable protocols' wide path: push stays
	// silent with nothing to offer, pull stays silent while the node already
	// holds everything active, push-pull always makes its call.
	j, jok := fr.net.RandomContact(r, i)
	switch {
	case !jok:
		// Policy admits no peer: the node sits this round out silently (the
		// free-running engine charges only calls it actually sends).
	case fr.algo == scenario.AlgoPush:
		if len(held) > 0 {
			sendSummary(j, held, false)
			comms++
		}
	case fr.algo == scenario.AlgoPull:
		if len(held) != active || active == 0 {
			sendPull(j)
			comms++
		}
	default: // push-pull
		if len(held) > 0 {
			sendSummary(j, held, true)
		} else {
			sendPull(j)
		}
		comms++
	}

	drain = fr.tr.Mailbox(i).TryDrain(drain[:0])
	pulls := wb.pulls[:0]
	for _, raw := range drain {
		f, err := parseFrameBuf(raw, wb.sum[:0])
		if err != nil {
			continue
		}
		if f.hasSummary {
			if len(f.sum) > 0 {
				fr.set.MarkIDs(i, f.sum) // stale/expired IDs are skipped inside
			}
			wb.sum = f.sum[:0]
		}
		if f.typ != frameCall {
			continue
		}
		comms++
		if f.wantsPull {
			pulls = append(pulls, f.src)
		}
	}
	wb.pulls = pulls
	if len(pulls) > 0 && fr.algo != scenario.AlgoPush {
		// Answer with the freshest state: everything held going in plus
		// whatever this drain just merged.
		resp := fr.set.AppendHeld(wb.ids[:0], i)
		wb.ids = resp
		if len(resp) > 0 {
			size := fr.summaryBits(resp)
			for _, src := range pulls {
				st.msgs++
				st.bits += size
				st.sent++
				if fr.tel != nil {
					fr.tel.msgs.AddShard(i, 1)
					fr.tel.bitsSent.AddShard(i, size)
				}
				fr.tr.Send(i, src, appendSummaryRespFrame(nil, r, i, resp))
			}
		}
	}
	if comms > st.maxComms {
		st.maxComms = comms
	}
	return drain
}
