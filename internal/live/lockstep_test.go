package live

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/phonecall"
	"repro/internal/trace"
)

// newConformancePair builds two identically seeded networks: one on the
// built-in sharded engine, one running its rounds on the lock-step live
// runtime over a zero-delay channel mesh.
func newConformancePair(t *testing.T, n int, seed uint64, workers int) (*phonecall.Network, *phonecall.Network, *LockStep) {
	t.Helper()
	engineNet, err := phonecall.New(phonecall.Config{N: n, Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	liveNet, err := phonecall.New(phonecall.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLockStep(liveNet, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	return engineNet, liveNet, ls
}

// TestLockStepMatchesEngine is the acceptance gate of the live runtime: the
// closed algorithms — driven unchanged through the RoundExecutor seam — must
// produce bit-identical traces (rounds, messages, bits, Δ, per-phase
// breakdowns, informed counts) on the goroutine-per-node runtime and on the
// sharded engine, at n = 64 and n = 1000.
func TestLockStepMatchesEngine(t *testing.T) {
	algos := map[string]func(net *phonecall.Network) (trace.Result, error){
		"push-pull": func(net *phonecall.Network) (trace.Result, error) {
			return baseline.PushPull(net, []int{0})
		},
		"cluster2": func(net *phonecall.Network) (trace.Result, error) {
			return core.Cluster2(net, []int{0}, core.Params{})
		},
		"clusterpushpull": func(net *phonecall.Network) (trace.Result, error) {
			return core.ClusterPushPull(net, []int{0}, 64, core.Params{})
		},
	}
	for _, n := range []int{64, 1000} {
		for name, run := range algos {
			t.Run(name, func(t *testing.T) {
				engineNet, liveNet, ls := newConformancePair(t, n, 7, 4)
				want, err := run(engineNet)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				got, err := run(liveNet)
				if err != nil {
					t.Fatalf("live: %v", err)
				}
				if err := ls.Err(); err != nil {
					t.Fatalf("runtime: %v", err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("n=%d %s traces diverge:\n engine: %+v\n live:   %+v", n, name, want, got)
				}
				if !reflect.DeepEqual(engineNet.Metrics(), liveNet.Metrics()) {
					t.Fatalf("n=%d %s metrics diverge:\n engine: %+v\n live:   %+v",
						n, name, engineNet.Metrics(), liveNet.Metrics())
				}
			})
		}
	}
}

// TestLockStepMatchesOracle conformance-gates the live runtime through the
// PR 3 differential harness: scripted randomized workloads — every intent
// kind and target shape, contentless exchanges, out-of-model kinds, scripted
// churn and per-call loss — must be bit-identical between the lock-step
// runtime and the naive reference oracle on every observable (round reports,
// response evaluations, per-node delivery traces, final metrics). Inbox
// poisoning stays on, so the runtime's copy-out contract is proved in the
// same run.
func TestLockStepMatchesOracle(t *testing.T) {
	scripts := []oracle.Script{
		{N: 48, Rounds: 10, NetSeed: 1, ProtoSeed: 2},
		{N: 300, Rounds: 8, NetSeed: 3, ProtoSeed: 4, LossRate: 0.3, LossSeed: 9},
		{N: 640, Rounds: 6, NetSeed: 5, ProtoSeed: 6, Churn: true, ChurnSeed: 11},
		{N: 97, Rounds: 12, NetSeed: 7, ProtoSeed: 8, LossRate: 0.9, LossSeed: 13, Churn: true, ChurnSeed: 17},
	}
	for _, sc := range scripts {
		liveNet, err := phonecall.New(phonecall.Config{N: sc.N, Seed: sc.NetSeed, PoisonInbox: true})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := NewLockStep(liveNet, nil)
		if err != nil {
			t.Fatal(err)
		}
		orc, err := oracle.New(phonecall.Config{N: sc.N, Seed: sc.NetSeed})
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Compare(liveNet, orc, sc); err != nil {
			t.Errorf("script %+v: %v", sc, err)
		}
		if err := ls.Err(); err != nil {
			t.Errorf("script %+v: runtime: %v", sc, err)
		}
		ls.Close()
	}
}

// TestLockStepCloseRestoresEngine checks that closing the runtime hands the
// network back to the built-in engine mid-execution.
func TestLockStepCloseRestoresEngine(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLockStep(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	push := func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1})
	}
	liveRep := net.ExecRound(push, nil, nil)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if net.Executor() != nil {
		t.Fatal("executor still installed after Close")
	}
	engineRep := net.ExecRound(push, nil, nil)
	if engineRep.Messages != liveRep.Messages {
		t.Fatalf("engine round after Close sent %d messages, live round sent %d",
			engineRep.Messages, liveRep.Messages)
	}
	if ls.Close() != nil {
		t.Fatal("second Close not idempotent")
	}
}

// TestNewLockStepRejects pins the constructor's validation.
func TestNewLockStepRejects(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewChannelTransport(4, ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLockStep(net, small); err == nil {
		t.Error("size-mismatched transport accepted")
	}
	delayed, err := NewChannelTransport(8, ChannelConfig{Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLockStep(net, delayed); err == nil {
		t.Error("asynchronous transport accepted for lock-step")
	}
}
