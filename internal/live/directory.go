package live

import (
	"fmt"
	"net"
)

// Directory maps a dense node index onto a transport address. It is the seam
// between "who do I want to reach" (the engines speak indexes) and "where do
// they live" (sockets speak addresses). The in-process UDP mesh keeps a
// trivial static directory — every address is known at construction, exactly
// the old behavior — while a multi-process deployment plugs in a routing
// table that discovers addresses at runtime.
//
// Resolve may be called concurrently with itself and with directory updates.
// A miss is not an error: datagram transports drop the frame (gossip
// tolerates loss by design) and the directory's owner is expected to kick off
// discovery so a later round hits.
type Directory interface {
	// Resolve returns node i's current transport address, or false while it is
	// unknown.
	Resolve(i int) (*net.UDPAddr, bool)
}

// StaticDirectory is the complete-knowledge Directory: a fixed index→address
// table. It never misses inside its range. This is the in-process mesh's
// directory — and the contrast that defines the decentralized one: a
// StaticDirectory is exactly the shared global node table a real deployment
// cannot have.
type StaticDirectory struct {
	addrs []*net.UDPAddr
}

// NewStaticDirectory builds a directory over a fixed address table. The slice
// is retained; the caller must not mutate it afterwards.
func NewStaticDirectory(addrs []*net.UDPAddr) *StaticDirectory {
	return &StaticDirectory{addrs: addrs}
}

// Resolve implements Directory.
func (d *StaticDirectory) Resolve(i int) (*net.UDPAddr, bool) {
	if i < 0 || i >= len(d.addrs) {
		return nil, false
	}
	return d.addrs[i], true
}

// Len returns the table size.
func (d *StaticDirectory) Len() int { return len(d.addrs) }

var _ Directory = (*StaticDirectory)(nil)

// validateDirectory checks a directory covers indexes [0, n) at construction
// time where completeness is required (the in-process mesh).
func validateDirectory(d Directory, n int) error {
	for i := 0; i < n; i++ {
		if _, ok := d.Resolve(i); !ok {
			return fmt.Errorf("live: directory has no address for node %d", i)
		}
	}
	return nil
}
