package live

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/membership"
	"repro/internal/phonecall"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// PeerTransportConfig configures a PeerTransport — the Transport of a
// multi-process deployment, where this process owns exactly one of the mesh's
// N nodes and every other index lives in some other process.
type PeerTransportConfig struct {
	// N is the logical mesh size; Self is this process's dense node index.
	N    int
	Self int
	// IDs maps every dense index onto its membership ID. All processes derive
	// the identical table from the shared (n, seed) pair — see PeerIDs — which
	// is what lets them agree on who index j is without any shared directory.
	IDs []membership.ID
	// Membership configures this process's discovery endpoint. Self and
	// OnGossip are owned by the transport (Self becomes IDs[Self]; OnGossip
	// feeds the gossip mailbox); everything else — bind and announce
	// addresses, k, alpha, RPC timeouts, telemetry — passes through.
	Membership membership.Config
}

// PeerTransport implements Transport for one node of a multi-process mesh.
// Gossip frames and membership RPCs share the endpoint's single UDP socket
// (demultiplexed by frame type byte); destinations are resolved through the
// routing table. A resolution miss drops the frame — gossip tolerates loss —
// and starts an asynchronous FIND_NODE lookup so a later round hits: the
// retry loop every gossip protocol already is doubles as the discovery
// driver.
type PeerTransport struct {
	n    int
	self int
	ids  []membership.ID
	nd   *membership.Node
	box  *Mailbox

	misses    atomic.Int64
	sendFails atomic.Int64
}

// PeerIDs derives the shared index→membership-ID table of an (n, seed) mesh.
// Every process of a deployment calls this with the same arguments and gets
// the same table; it is the only "global" knowledge a peer needs besides one
// bootstrap address.
func PeerIDs(net *phonecall.Network) []membership.ID {
	ids := make([]membership.ID, net.N())
	for i := range ids {
		ids[i] = membership.DeriveID(uint64(net.ID(i)))
	}
	return ids
}

// NewPeerTransport binds the membership endpoint and wires its socket's
// gossip side into this node's mailbox.
func NewPeerTransport(cfg PeerTransportConfig) (*PeerTransport, error) {
	if err := validateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Self < 0 || cfg.Self >= cfg.N {
		return nil, fmt.Errorf("live: peer index %d out of range [0,%d)", cfg.Self, cfg.N)
	}
	if len(cfg.IDs) != cfg.N {
		return nil, fmt.Errorf("live: peer ID table has %d entries for %d nodes", len(cfg.IDs), cfg.N)
	}
	pt := &PeerTransport{
		n:    cfg.N,
		self: cfg.Self,
		ids:  cfg.IDs,
		box:  newMailbox(),
	}
	mcfg := cfg.Membership
	mcfg.Self = cfg.IDs[cfg.Self]
	mcfg.OnGossip = pt.box.Put
	nd, err := membership.New(mcfg)
	if err != nil {
		return nil, err
	}
	pt.nd = nd
	return pt, nil
}

// Membership returns the underlying discovery endpoint (for Bootstrap and
// diagnostics).
func (pt *PeerTransport) Membership() *membership.Node { return pt.nd }

// N implements Transport.
func (pt *PeerTransport) N() int { return pt.n }

// Mailbox implements Transport. Only this process's own node has a mailbox
// here; remote indexes return nil (their frames arrive in their processes).
func (pt *PeerTransport) Mailbox(i int) *Mailbox {
	if i != pt.self {
		return nil
	}
	return pt.box
}

// Synchronous implements Transport.
func (pt *PeerTransport) Synchronous() bool { return false }

// Send implements Transport. Only the local node may send (per-sender
// ownership holds trivially in one process); the destination's address comes
// from the routing table, and a miss both drops the frame and kicks off the
// background lookup that will make the next send hit.
func (pt *PeerTransport) Send(from, to int, frame []byte) {
	if from != pt.self || to < 0 || to >= pt.n || to == pt.self {
		return
	}
	if len(frame) > maxUDPFrame {
		return
	}
	addr, ok := pt.nd.Resolve(pt.ids[to])
	if !ok {
		pt.misses.Add(1)
		pt.nd.LookupAsync(pt.ids[to])
		return
	}
	if err := pt.nd.SendRaw(addr, frame); err != nil {
		pt.sendFails.Add(1)
	}
}

// Misses returns the number of frames dropped on routing-table misses.
func (pt *PeerTransport) Misses() int64 { return pt.misses.Load() }

// SendFailures implements SendFailureCounter.
func (pt *PeerTransport) SendFailures() int64 { return pt.sendFails.Load() }

// NodeSendFailures implements SendFailureCounter.
func (pt *PeerTransport) NodeSendFailures(i int) int64 {
	if i != pt.self {
		return 0
	}
	return pt.sendFails.Load()
}

// Close implements Transport: tears down the shared socket (membership RPCs
// included).
func (pt *PeerTransport) Close() error { return pt.nd.Close() }

var (
	_ Transport          = (*PeerTransport)(nil)
	_ SendFailureCounter = (*PeerTransport)(nil)
)

// PeerConfig configures one free-running gossip node of a multi-process
// deployment.
type PeerConfig struct {
	// N is the mesh size, Index this process's node, Seed the shared seed.
	// (N, Seed) must agree across every process — they define the ID
	// directory and the per-round contact hash.
	N     int
	Index int
	Seed  uint64
	// Rounds is the local round budget (required).
	Rounds int
	// Interval paces the local rounds (default 20ms). There is no skew bound
	// across processes — real deployments have no frontier — so the pace is
	// wall-clock.
	Interval time.Duration
	// Linger keeps the node gossiping this many QUIET rounds after it
	// converged (default 10): a multi-process run has no global convergence
	// detector, so lingering stands in for "the monitor stops everyone". The
	// countdown is evidence-based — it restarts every round the node sees a
	// peer that still needs rumors (a bare pull request, or a holdings mask
	// missing part of Expect), and on a PeerTransport it does not start at
	// all while the routing table is empty (a converged seed waits for its
	// deployment to arrive rather than exiting into the void).
	Linger int
	// Algorithm is the gossip protocol (default push-pull).
	Algorithm scenario.Algorithm
	// PayloadBits is the per-rumor payload size b (default 256).
	PayloadBits int
	// Inject seeds this node's holdings (a rumor bitmask; usually nonzero on
	// exactly one process). Expect is the full rumor mask the deployment
	// spreads — the node counts itself converged when it holds all of Expect
	// (required nonzero; all processes must agree on it).
	Inject uint64
	Expect uint64
	// Transport carries the frames (required; usually a PeerTransport).
	Transport Transport
	// Telemetry, when non-nil, receives repro_messages_total and
	// repro_bits_total labeled engine="peer".
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// PeerReport is the outcome of one process's run.
type PeerReport struct {
	N     int
	Index int
	// Converged reports this node held every Expect rumor within the budget;
	// InformedAt is the local round it first did (0 = never).
	Converged  bool
	InformedAt int
	// RoundsRun counts executed local rounds; Rounds echoes the budget.
	RoundsRun int
	Rounds    int
	// Held is the final holdings mask.
	Held uint64
	// Traffic totals, charged with the simulator's bit accounting.
	Messages        int64
	ControlMessages int64
	Bits            int64
	MaxComms        int
	// SendMisses counts frames dropped on routing-table misses (discovery in
	// progress); SendFailures counts kernel-refused writes.
	SendMisses   int64
	SendFailures int64
	// TableContacts is the final routing-table size (0 on non-peer
	// transports).
	TableContacts int
	// Wall is the end-to-end execution time.
	Wall time.Duration
}

// PeerNode drives one node's free-running gossip loop against a Transport
// whose other endpoints live in other processes. It is FreeRun's doRound
// distilled to a single node: no monitor, no frontier, no timeline — local
// rounds paced by wall clock, convergence judged against the Expect mask.
type PeerNode struct {
	cfg  PeerConfig
	algo scenario.Algorithm
	net  *phonecall.Network
	tr   Transport

	held     uint64
	overhead int
	sawNeedy bool // this round drained evidence of an uninformed peer

	msgs, control, bitsSent int64
	maxComms                int32

	telMsgs *telemetry.Counter
	telBits *telemetry.Counter
}

// NewPeerNode validates the configuration and prepares the node.
func NewPeerNode(cfg PeerConfig) (*PeerNode, error) {
	if err := validateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.N {
		return nil, fmt.Errorf("live: peer index %d out of range [0,%d)", cfg.Index, cfg.N)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("live: peer node needs a round budget >= 1 (got %d)", cfg.Rounds)
	}
	if cfg.Expect == 0 {
		return nil, fmt.Errorf("live: peer node needs a nonzero Expect rumor mask")
	}
	if cfg.Inject&^cfg.Expect != 0 {
		return nil, fmt.Errorf("live: injected rumors %#x outside the expected mask %#x", cfg.Inject, cfg.Expect)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("live: peer node needs a transport")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 10
	}
	switch cfg.Algorithm {
	case "":
		cfg.Algorithm = scenario.AlgoPushPull
	case scenario.AlgoPush, scenario.AlgoPull, scenario.AlgoPushPull:
	default:
		return nil, fmt.Errorf("live: unknown algorithm %q (have push, pull, push-pull)", cfg.Algorithm)
	}
	net, err := phonecall.New(phonecall.Config{N: cfg.N, Seed: cfg.Seed, PayloadBits: cfg.PayloadBits, Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	pn := &PeerNode{
		cfg:      cfg,
		algo:     cfg.Algorithm,
		net:      net,
		tr:       cfg.Transport,
		held:     cfg.Inject,
		overhead: net.MessageSize(phonecall.Message{Tag: tagHoldings}),
	}
	if cfg.Telemetry != nil {
		by := []telemetry.Label{
			{Key: "algo", Value: string(cfg.Algorithm)},
			{Key: "engine", Value: "peer"},
		}
		pn.telMsgs = cfg.Telemetry.Counter("repro_messages_total", by...)
		pn.telBits = cfg.Telemetry.Counter("repro_bits_total", by...)
	}
	return pn, nil
}

// Net returns the shared ID directory (for deriving the peer ID table).
func (pn *PeerNode) Net() *phonecall.Network { return pn.net }

func (pn *PeerNode) logf(format string, args ...any) {
	if pn.cfg.Logf != nil {
		pn.cfg.Logf(format, args...)
	}
}

// Run executes local rounds until convergence-plus-linger, budget exhaustion
// or ctx cancellation, and returns the report. The report is returned even on
// a non-converged or canceled run — callers print it before deciding the exit
// code.
func (pn *PeerNode) Run(ctx context.Context) (PeerReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	informedAt := 0
	if pn.held&pn.cfg.Expect == pn.cfg.Expect {
		informedAt = 1 // seeded with everything; lingering starts immediately
	}
	pt, isPeer := pn.tr.(*PeerTransport)
	ticker := time.NewTicker(pn.cfg.Interval)
	defer ticker.Stop()

	var drain [][]byte
	r := 1
	quietFrom := 0 // first round of the current quiet streak (0 = not counting)
	var runErr error
loop:
	for ; r <= pn.cfg.Rounds; r++ {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		case <-ticker.C:
		}
		drain = pn.doRound(r, drain)
		if informedAt == 0 && pn.held&pn.cfg.Expect == pn.cfg.Expect {
			informedAt = r
			pn.logf("peer %d: informed at local round %d", pn.cfg.Index, r)
		}
		// The linger countdown runs only through quiet rounds: evidence of an
		// uninformed peer restarts it, and a still-empty routing table keeps
		// it from starting (nobody has arrived to be served yet).
		switch {
		case informedAt == 0 || pn.sawNeedy || (isPeer && pt.Membership().Table().Len() == 0):
			quietFrom = 0
		case quietFrom == 0:
			quietFrom = r
		}
		if quietFrom > 0 && r-quietFrom+1 >= pn.cfg.Linger {
			r++
			break
		}
	}

	rep := PeerReport{
		N:               pn.cfg.N,
		Index:           pn.cfg.Index,
		Converged:       informedAt > 0,
		InformedAt:      informedAt,
		RoundsRun:       r - 1,
		Rounds:          pn.cfg.Rounds,
		Held:            pn.held,
		Messages:        pn.msgs,
		ControlMessages: pn.control,
		Bits:            pn.bitsSent,
		MaxComms:        int(pn.maxComms),
		Wall:            time.Since(start),
	}
	if pt, ok := pn.tr.(*PeerTransport); ok {
		rep.SendMisses = pt.Misses()
		rep.TableContacts = pt.Membership().Table().Len()
	}
	if sf, ok := pn.tr.(SendFailureCounter); ok {
		rep.SendFailures = sf.SendFailures()
	}
	return rep, runErr
}

// doRound runs one local round: initiate per the protocol, drain, merge,
// answer pulls — FreeRun.doRound without the behavior seam or shared state.
func (pn *PeerNode) doRound(r int, drain [][]byte) [][]byte {
	i := pn.cfg.Index
	reg := pn.cfg.Expect
	held := pn.held & reg
	comms := int32(0)

	sendPayload := func(j int, m phonecall.Message, wantsPull bool) {
		m.From = pn.net.ID(i)
		size := int64(pn.net.MessageSize(m))
		pn.msgs++
		pn.bitsSent += size
		if pn.telMsgs != nil {
			pn.telMsgs.Add(1)
			pn.telBits.Add(size)
		}
		pn.tr.Send(i, j, appendCallFrame(nil, r, i, true, wantsPull, &m))
	}
	sendPull := func(j int) {
		size := int64(pn.net.ControlBits())
		pn.control++
		pn.bitsSent += size
		if pn.telMsgs != nil {
			pn.telMsgs.Add(1)
			pn.telBits.Add(size)
		}
		pn.tr.Send(i, j, appendCallFrame(nil, r, i, false, true, nil))
	}

	j, jok := pn.net.RandomContact(r, i)
	switch {
	case !jok || j == i:
		// No admissible peer this round.
	case pn.algo == scenario.AlgoPush:
		if held != 0 {
			sendPayload(j, pn.holdingsMsg(held), false)
			comms++
		}
	case pn.algo == scenario.AlgoPull:
		if held != reg {
			sendPull(j)
			comms++
		}
	default: // push-pull
		if held != 0 {
			sendPayload(j, pn.holdingsMsg(held), true)
		} else {
			sendPull(j)
		}
		comms++
	}

	drain = pn.tr.Mailbox(i).TryDrain(drain[:0])
	pn.sawNeedy = false
	var gained uint64
	for _, raw := range drain {
		f, err := parseFrame(raw)
		if err != nil {
			continue
		}
		if f.hasPayload && f.msg.Tag == tagHoldings {
			gained |= f.msg.Value
			if f.msg.Value&reg != reg {
				pn.sawNeedy = true // partial holdings: the sender still lacks rumors
			}
		}
		if f.typ != frameCall {
			continue
		}
		if !f.hasPayload && f.wantsPull {
			pn.sawNeedy = true // a bare pull only comes from an uninformed node
		}
		comms++
		if f.wantsPull {
			h := (pn.held | gained) & reg
			if h != 0 && pn.algo != scenario.AlgoPush {
				m := pn.holdingsMsg(h)
				m.From = pn.net.ID(i)
				size := int64(pn.net.MessageSize(m))
				pn.msgs++
				pn.bitsSent += size
				if pn.telMsgs != nil {
					pn.telMsgs.Add(1)
					pn.telBits.Add(size)
				}
				pn.tr.Send(i, f.src, appendRespFrame(nil, r, i, &m))
			}
		}
	}
	if gained != 0 {
		pn.held |= gained & reg
	}
	if comms > pn.maxComms {
		pn.maxComms = comms
	}
	return drain
}

// holdingsMsg encodes a holdings bitmask, charged one payload per rumor.
func (pn *PeerNode) holdingsMsg(held uint64) phonecall.Message {
	return phonecall.Message{
		Tag:   tagHoldings,
		Value: held,
		Rumor: true,
		Bits:  pn.overhead + bits.OnesCount64(held)*pn.net.PayloadBits(),
	}
}
