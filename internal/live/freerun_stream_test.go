package live

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rumorset"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// TestStreamConverges is the rumor-stream smoke test: a modest stream on the
// channel mesh must inject everything, converge everything, GC everything,
// and report a completion frontier.
func TestStreamConverges(t *testing.T) {
	fr, err := NewFreeRun(FreeRunConfig{
		N:      32,
		Seed:   7,
		Rounds: 400,
		Stream: &StreamConfig{Total: 64, Rate: 4, MaxInFlight: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RumorsInjected != 64 {
		t.Fatalf("injected %d rumors, want 64: %+v", rep.RumorsInjected, rep)
	}
	if rep.RumorsConverged != 64 || rep.RumorsExpired != 64 {
		t.Fatalf("converged/expired %d/%d, want 64/64: %+v", rep.RumorsConverged, rep.RumorsExpired, rep)
	}
	if rep.RumorsActive != 0 {
		t.Fatalf("%d rumors still active at the end: %+v", rep.RumorsActive, rep)
	}
	if !rep.AllInformed || rep.CompletionFrontier == 0 {
		t.Fatalf("stream did not complete: %+v", rep)
	}
	if rep.Messages == 0 || rep.Bits == 0 {
		t.Fatalf("no traffic accounted: %+v", rep)
	}
}

// TestStreamAlgorithms runs a small stream through each protocol variant —
// push relies on summary calls alone, pull on the request/response path.
func TestStreamAlgorithms(t *testing.T) {
	for _, algo := range scenario.Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			fr, err := NewFreeRun(FreeRunConfig{
				N:         24,
				Seed:      11,
				Rounds:    500,
				Algorithm: algo,
				Stream:    &StreamConfig{Total: 20, Rate: 2, MaxInFlight: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fr.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.AllInformed {
				t.Fatalf("%s stream did not complete: %+v", algo, rep)
			}
		})
	}
}

// TestStreamSoak is the scalability gate (S4): a free-running stream under 2%
// frame loss whose injection rate outpaces convergence, so the in-flight
// window fills (proving >= MaxInFlight concurrent rumors were sustained —
// that is what InjectionStalls > 0 certifies), GC recycles slots, injection
// backs off instead of deadlocking, and every rumor still converges. The full
// profile drives 1024 concurrent rumors; -short runs the reduced CI profile
// (256 concurrent) under -race.
func TestStreamSoak(t *testing.T) {
	total, window := 2048, 1024
	if testing.Short() {
		total, window = 512, 256
	}
	// Injection wants 2x the window per frontier round, so the window is
	// pinned full (>= `window` concurrent rumors) until GC drains the tail.
	rate := float64(2 * window)
	tr, err := NewChannelTransport(16, ChannelConfig{Drop: 0.02, DropSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := telemetry.NewRegistry()
	fr, err := NewFreeRun(FreeRunConfig{
		N:         16,
		Seed:      3,
		Rounds:    4000,
		Transport: tr,
		Telemetry: reg,
		Stream:    &StreamConfig{Total: total, Rate: rate, MaxInFlight: window},
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := fr.Run(context.Background())
		done <- outcome{rep, err}
	}()
	var rep Report
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		rep = o.rep
	case <-time.After(120 * time.Second):
		t.Fatal("stream soak deadlocked")
	}
	if rep.RumorsInjected != int64(total) {
		t.Fatalf("injected %d/%d rumors (injection wedged?): %+v", rep.RumorsInjected, total, rep)
	}
	if rep.RumorsConverged != int64(total) || rep.RumorsActive != 0 {
		t.Fatalf("converged %d/%d with %d still active: %+v", rep.RumorsConverged, total, rep.RumorsActive, rep)
	}
	if rep.InjectionStalls == 0 {
		t.Fatalf("window never filled — the soak did not sustain %d concurrent rumors: %+v", window, rep)
	}
	if !rep.AllInformed || rep.CompletionFrontier == 0 {
		t.Fatalf("soak did not complete: %+v", rep)
	}
	if rep.Drops == 0 {
		t.Fatalf("2%% loss dropped nothing: %+v", rep)
	}
	samples := map[string]float64{}
	for _, s := range reg.Snapshot() {
		samples[s.ID()] = s.Value
	}
	if got := samples[`repro_rumors_converged_total{algo="push-pull",engine="free-running"}`]; got != float64(total) {
		t.Errorf("repro_rumors_converged_total = %v, want %d", got, total)
	}
	if got := samples[`repro_rumors_active{algo="push-pull",engine="free-running"}`]; got != 0 {
		t.Errorf("repro_rumors_active = %v at the end, want 0", got)
	}
	if got := samples[`repro_rumors_injected_total{algo="push-pull",engine="free-running"}`]; got != float64(total) {
		t.Errorf("repro_rumors_injected_total = %v, want %d", got, total)
	}
}

// TestStreamChurn drives crashes and uninformed rejoins through a stream:
// the revived nodes must re-learn the active window and the stream must still
// drain completely.
func TestStreamChurn(t *testing.T) {
	fr, err := NewFreeRun(FreeRunConfig{
		N:      24,
		Seed:   17,
		Rounds: 600,
		Events: []scenario.Event{
			scenario.CrashAt{At: 5, Nodes: []int{1, 2, 3}},
			scenario.JoinAt{At: 20, Nodes: []int{1, 2, 3}},
		},
		Stream: &StreamConfig{Total: 48, Rate: 2, MaxInFlight: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live != 24 {
		t.Fatalf("rejoin did not restore the population: %+v", rep)
	}
	if !rep.AllInformed {
		t.Fatalf("churned stream did not drain: %+v", rep)
	}
	if rep.UnfiredEvents != 0 {
		t.Fatalf("%d timeline events never fired: %+v", rep.UnfiredEvents, rep)
	}
}

// TestStreamValidation pins the stream constructor contract: typed ErrSpec
// errors for a bad stream shape, inject events alongside a stream, and
// byzantine events on the wide path.
func TestStreamValidation(t *testing.T) {
	if _, err := NewFreeRun(FreeRunConfig{N: 8, Rounds: 10, Stream: &StreamConfig{Total: 0}}); !errors.Is(err, scenario.ErrSpec) {
		t.Errorf("Total=0 not rejected with ErrSpec: %v", err)
	}
	_, err := NewFreeRun(FreeRunConfig{
		N: 8, Rounds: 10,
		Stream: &StreamConfig{Total: 4},
		Events: []scenario.Event{scenario.InjectRumor{At: 1, Node: 0, Rumor: 0}},
	})
	if !errors.Is(err, scenario.ErrSpec) {
		t.Errorf("inject event alongside a stream not rejected with ErrSpec: %v", err)
	}
	_, err = NewFreeRun(FreeRunConfig{
		N: 8, Rounds: 10,
		Stream: &StreamConfig{Total: 4},
		Events: []scenario.Event{scenario.CorruptAt{At: 1, Nodes: []int{1}, Adversary: scenario.AdversarySpec{Kind: scenario.AdvLiar}}},
	})
	if !errors.Is(err, scenario.ErrSpec) {
		t.Errorf("corrupt event on the wide path not rejected with ErrSpec: %v", err)
	}
	// Defaults: rate and window fill in, the caller's struct is untouched.
	cfg := StreamConfig{Total: 4}
	fr, err := NewFreeRun(FreeRunConfig{N: 8, Rounds: 10, Stream: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if fr.stream.Rate != 1 || fr.stream.MaxInFlight != 4 {
		t.Errorf("defaults not applied: %+v", fr.stream)
	}
	if cfg.Rate != 0 || cfg.MaxInFlight != 0 {
		t.Errorf("caller's StreamConfig mutated: %+v", cfg)
	}
}

// TestFreeRunRejectsInvalidEvents pins the S-layer bugfix on this engine: an
// out-of-range inject is a typed construction error, not a silent
// IgnoredEvents bump at fire time.
func TestFreeRunRejectsInvalidEvents(t *testing.T) {
	for name, events := range map[string][]scenario.Event{
		"inject node out of range":  {scenario.InjectRumor{At: 1, Node: 99, Rumor: 0}},
		"inject rumor past bitmask": {scenario.InjectRumor{At: 1, Node: 0, Rumor: 64}},
		"crash node out of range":   {scenario.CrashAt{At: 1, Nodes: []int{-2}}},
		"loss rate out of range":    {scenario.Loss{At: 1, Rate: 1.5}},
	} {
		_, err := NewFreeRun(FreeRunConfig{N: 8, Rounds: 10, Events: events})
		if !errors.Is(err, scenario.ErrSpec) {
			t.Errorf("%s: got %v, want an ErrSpec-typed error", name, err)
		}
	}
}

// TestSummaryFrameRoundTrip pins the new wire block: call and response frames
// carrying rumor-ID summaries decode to the same IDs, and a frame whose
// summary block is truncated or trailing-padded is rejected.
func TestSummaryFrameRoundTrip(t *testing.T) {
	ids := []rumorset.ID{3, 70, 71, 4096, 1 << 20, 1<<32 - 1}
	raw := appendSummaryCallFrame(nil, 9, 4, true, ids)
	f, err := parseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != frameCall || f.round != 9 || f.src != 4 || !f.wantsPull || !f.hasSummary {
		t.Fatalf("call frame header mangled: %+v", f)
	}
	if len(f.sum) != len(ids) {
		t.Fatalf("summary round-trip lost IDs: %v vs %v", f.sum, ids)
	}
	for i := range ids {
		if f.sum[i] != ids[i] {
			t.Fatalf("summary round-trip changed IDs: %v vs %v", f.sum, ids)
		}
	}

	raw = appendSummaryRespFrame(nil, 12, 7, ids[:2])
	f, err = parseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != frameResp || f.src != 7 || !f.hasSummary || len(f.sum) != 2 {
		t.Fatalf("resp frame mangled: %+v", f)
	}
	// A reused scratch buffer decodes without allocating a fresh slice.
	scratch := make([]rumorset.ID, 0, 8)
	f, err = parseFrameBuf(raw, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &f.sum[0] != &scratch[:1][0] {
		t.Error("parseFrameBuf did not reuse the caller's scratch")
	}

	full := appendSummaryCallFrame(nil, 1, 0, false, ids)
	if _, err := parseFrame(full[:len(full)-1]); err == nil {
		t.Error("truncated summary accepted")
	}
	if _, err := parseFrame(append(full, 0)); err == nil {
		t.Error("trailing bytes after summary accepted")
	}
}
