package live

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/phonecall"
)

// LockStep runs a phonecall.Network's rounds as goroutine-per-node message
// passing over a synchronous transport, through the Network's RoundExecutor
// seam. Each round is three barrier-separated phases:
//
//	calls    every live node evaluates its intent on its own goroutine,
//	         resolves its target (random contacts and loss drops through the
//	         model's stateless hashes, phonecall.RandomPeer / CallLost; direct
//	         addresses through the shared read-only ID directory) and sends
//	         one call frame; it charges everything the engine charges on the
//	         initiator side.
//	process  every node drains its mailbox: dead nodes discard (a crashed
//	         process receives nothing — the live-participant rule falls out
//	         of the runtime instead of being simulated), live nodes charge
//	         one communication per arriving call, collect pushed payloads,
//	         and answer pulls by evaluating responseOf once and sending the
//	         single address-oblivious response frame to every puller.
//	deliver  every node drains the response frames, orders its inbox by
//	         initiator index (its own pulled response at its own position —
//	         the engine's documented order), and invokes deliver.
//
// The coordinator (the algorithm driver's goroutine, inside ExecRound) merges
// the per-node stats into a RoundDelta, so metrics, trace phases and round
// reports are bit-identical to the sharded engine's. That equivalence is the
// conformance gate: the lock-step runtime is diffed against the
// internal/oracle reference with the PR 3 harness.
type LockStep struct {
	net *phonecall.Network
	tr  Transport
	n   int
	own bool // runtime owns (and closes) the transport

	curIntent   func(i int) phonecall.Intent
	curResponse func(i int) (phonecall.Message, bool)
	curDeliver  func(i int, inbox []phonecall.Message)

	cmd  []chan lsCmd
	ack  chan lsAck
	sent []int64
	wg   *sync.WaitGroup

	errMu  sync.Mutex
	errVal error

	closed bool
}

// Lock-step phases.
const (
	phaseCalls uint8 = iota + 1
	phaseProcess
	phaseDeliver
	phaseStop
)

// lsCmd is one phase of work handed to a node goroutine. Like the engine's
// passReq, it carries the runtime pointer with every request so the node
// goroutines themselves never retain it: an abandoned Network (and with it
// the LockStep) becomes collectible, and a runtime cleanup closes the
// command channels to release the goroutines.
type lsCmd struct {
	ls    *LockStep
	phase uint8
	round int
}

// lsStats is one node's per-round accounting, mirroring the engine's
// workerStats plus the per-node sent counter.
type lsStats struct {
	msgs    int64
	control int64
	bits    int64
	sent    int64
	comms   int32
}

type lsAck struct {
	node  int
	stats lsStats
}

// lsNode is the state owned by one node goroutine.
type lsNode struct {
	idx      int
	inbox    []lsEntry // this round's collected inbox, keyed by initiator index
	pullers  []int     // initiators whose pulls reached this node
	heldResp []frame   // response frames that arrived during the process phase
	drain    [][]byte
	delivery []phonecall.Message
	stats    lsStats
}

// lsEntry is one inbox slot before ordering.
type lsEntry struct {
	key int // initiator index; a pulled response uses the receiver's own index
	msg phonecall.Message
}

// NewLockStep starts n node goroutines over the transport and installs the
// runtime as net's round executor. A nil transport gets a private zero-delay
// channel mesh (loss injection comes from the Network's own SetLoss state, so
// scenario timelines keep working). Close the runtime to restore the built-in
// engine.
func NewLockStep(net *phonecall.Network, tr Transport) (*LockStep, error) {
	own := false
	if tr == nil {
		var err error
		if tr, err = NewChannelTransport(net.N(), ChannelConfig{}); err != nil {
			return nil, err
		}
		own = true
	}
	if tr.N() != net.N() {
		return nil, fmt.Errorf("live: transport has %d endpoints for %d nodes", tr.N(), net.N())
	}
	if !tr.Synchronous() {
		return nil, fmt.Errorf("live: lock-step needs a synchronous transport (zero-delay channel mesh)")
	}
	ls := &LockStep{
		net:  net,
		tr:   tr,
		n:    net.N(),
		own:  own,
		cmd:  make([]chan lsCmd, net.N()),
		ack:  make(chan lsAck, net.N()),
		sent: make([]int64, net.N()),
		wg:   new(sync.WaitGroup),
	}
	for i := range ls.cmd {
		ls.cmd[i] = make(chan lsCmd, 1)
	}
	for i := 0; i < ls.n; i++ {
		ls.wg.Add(1)
		go lockStepNode(i, ls.cmd[i], ls.ack, ls.wg)
	}
	// Nodes hold only their channels, never the runtime: once the LockStep
	// (and the Network referencing it) is dropped without Close, the cleanup
	// releases the goroutines.
	runtime.AddCleanup(ls, func(chs []chan lsCmd) {
		for _, ch := range chs {
			close(ch)
		}
	}, ls.cmd)
	net.SetExecutor(ls)
	return ls, nil
}

// Transport returns the transport the runtime exchanges frames over.
func (ls *LockStep) Transport() Transport { return ls.tr }

// Err returns the first node-side failure (a frame that failed to decode —
// impossible under the in-tree transports unless a transport corrupts data).
func (ls *LockStep) Err() error {
	ls.errMu.Lock()
	defer ls.errMu.Unlock()
	return ls.errVal
}

func (ls *LockStep) fail(err error) {
	ls.errMu.Lock()
	if ls.errVal == nil {
		ls.errVal = err
	}
	ls.errMu.Unlock()
}

// Close stops the node goroutines and uninstalls the executor; the Network
// falls back to the built-in engine. Idempotent.
func (ls *LockStep) Close() error {
	if ls.closed {
		return nil
	}
	ls.closed = true
	for i := range ls.cmd {
		ls.cmd[i] <- lsCmd{phase: phaseStop}
	}
	ls.wg.Wait()
	if ls.net.Executor() == phonecall.RoundExecutor(ls) {
		ls.net.SetExecutor(nil)
	}
	if ls.own {
		return ls.tr.Close()
	}
	return nil
}

// ExecNetworkRound implements phonecall.RoundExecutor: one barrier-phased
// round across all node goroutines.
func (ls *LockStep) ExecNetworkRound(
	net *phonecall.Network,
	round int,
	intentOf func(i int) phonecall.Intent,
	responseOf func(i int) (phonecall.Message, bool),
	deliver func(i int, inbox []phonecall.Message),
) phonecall.RoundDelta {
	// Published to the node goroutines through the cmd channels'
	// happens-before edges, like the engine's pass channel.
	ls.curIntent = intentOf
	ls.curResponse = responseOf
	ls.curDeliver = deliver

	clear(ls.sent)
	delta := phonecall.RoundDelta{Sent: ls.sent}
	for _, phase := range []uint8{phaseCalls, phaseProcess, phaseDeliver} {
		for i := range ls.cmd {
			ls.cmd[i] <- lsCmd{ls: ls, phase: phase, round: round}
		}
		for range ls.cmd {
			a := <-ls.ack
			if phase == phaseDeliver {
				st := a.stats
				delta.Messages += st.msgs
				delta.Control += st.control
				delta.Bits += st.bits
				if int(st.comms) > delta.MaxComms {
					delta.MaxComms = int(st.comms)
				}
				ls.sent[a.node] = st.sent
			}
		}
	}
	return delta
}

// lockStepNode is one node's event loop. Deliberately not a LockStep method:
// it receives the runtime with each command and drops it afterwards, so the
// goroutines never keep an abandoned runtime alive (see lsCmd).
func lockStepNode(i int, cmds <-chan lsCmd, ack chan<- lsAck, wg *sync.WaitGroup) {
	defer wg.Done()
	nd := &lsNode{idx: i}
	for cmd := range cmds {
		switch cmd.phase {
		case phaseCalls:
			nd.reset()
			cmd.ls.doCalls(nd, cmd.round)
		case phaseProcess:
			cmd.ls.doProcess(nd, cmd.round)
		case phaseDeliver:
			cmd.ls.doDeliver(nd)
		case phaseStop:
			return
		}
		ack <- lsAck{node: i, stats: nd.stats}
	}
}

func (nd *lsNode) reset() {
	nd.inbox = nd.inbox[:0]
	nd.pullers = nd.pullers[:0]
	nd.heldResp = nd.heldResp[:0]
	nd.stats = lsStats{}
}

// doCalls evaluates node i's intent, charges the initiator side and sends
// the call frame. It mirrors the engine's passIntents exactly (including the
// charges for unresolved, dead-target and lost calls, which the initiator
// cannot distinguish).
func (ls *LockStep) doCalls(nd *lsNode, round int) {
	i := nd.idx
	net := ls.net
	if net.IsFailed(i) {
		return
	}
	it := ls.curIntent(i)
	if it.Kind == phonecall.None {
		return
	}
	// Resolve the target. The initiator cannot know whether the target is
	// alive — a call to a dead node is simply never received — but calls to
	// itself, to the NoNode sentinel or to an ID outside the directory go
	// nowhere by the model's rules.
	j, resolved := -1, false
	if it.Target.Random {
		j, resolved = net.RandomContact(round, i)
		if !resolved {
			j = -1 // policy admits no peer: charged below, never sent
		}
	} else if it.Target.ID != phonecall.NoNode {
		if jj, ok := net.IndexOf(it.Target.ID); ok && jj != i {
			j, resolved = jj, true
		}
	}
	nd.stats.comms++
	lost := false
	if rate := net.LossRate(); rate > 0 && phonecall.CallLost(rate, net.LossSeed(), round, i) {
		lost = true
	}
	send := resolved && !lost

	switch it.Kind {
	case phonecall.Push:
		m := it.Payload
		m.From = net.ID(i)
		nd.stats.msgs++
		nd.stats.bits += int64(net.MessageSize(m))
		nd.stats.sent++
		if send {
			ls.tr.Send(i, j, appendCallFrame(nil, round, i, true, false, &m))
		}
	case phonecall.Pull, phonecall.Exchange:
		if it.Kind == phonecall.Exchange && it.Payload.HasContent() {
			m := it.Payload
			m.From = net.ID(i)
			nd.stats.msgs++
			nd.stats.bits += int64(net.MessageSize(m))
			nd.stats.sent++
			if send {
				ls.tr.Send(i, j, appendCallFrame(nil, round, i, true, true, &m))
			}
		} else {
			nd.stats.control++
			nd.stats.bits += int64(net.ControlBits())
			nd.stats.sent++
			if send {
				ls.tr.Send(i, j, appendCallFrame(nil, round, i, false, true, nil))
			}
		}
	default:
		// Out-of-model kinds transmit nothing but still occupy the target's
		// round (the engine charges the live target one communication), so a
		// bare contact frame crosses the wire.
		if send {
			ls.tr.Send(i, j, appendCallFrame(nil, round, i, false, false, nil))
		}
	}
}

// doProcess drains the calls that reached node i. Dead nodes discard
// everything unread. Live nodes charge the Δ communications, stage pushed
// payloads, and answer the round's pulls with one responseOf evaluation.
func (ls *LockStep) doProcess(nd *lsNode, round int) {
	i := nd.idx
	net := ls.net
	nd.drain = ls.tr.Mailbox(i).TryDrain(nd.drain[:0])
	if net.IsFailed(i) {
		return
	}
	for _, raw := range nd.drain {
		fr, err := parseFrame(raw)
		if err != nil {
			ls.fail(fmt.Errorf("node %d round %d: %w", i, round, err))
			continue
		}
		if fr.typ == frameResp {
			// A response can overtake this node's own drain when the
			// responder processed its mailbox first; it belongs to the
			// deliver phase.
			nd.heldResp = append(nd.heldResp, fr)
			continue
		}
		nd.stats.comms++
		if fr.hasPayload {
			m := fr.msg
			m.From = net.ID(fr.src)
			nd.inbox = append(nd.inbox, lsEntry{key: fr.src, msg: m})
		}
		if fr.wantsPull {
			nd.pullers = append(nd.pullers, fr.src)
		}
	}
	if len(nd.pullers) > 0 && ls.curResponse != nil {
		m, ok := ls.curResponse(i)
		if ok {
			m.From = net.ID(i)
			size := int64(net.MessageSize(m))
			k := int64(len(nd.pullers))
			nd.stats.msgs += k
			nd.stats.bits += size * k
			nd.stats.sent += k
			// One address-oblivious response, one frame per puller. The
			// encoded bytes are identical, but each Send hands ownership of
			// its slice to the transport, so encode per puller.
			for _, p := range nd.pullers {
				ls.tr.Send(i, p, appendRespFrame(nil, round, i, &m))
			}
		}
	}
}

// doDeliver collects the response frames, orders the inbox and hands it to
// the delivery callback.
func (ls *LockStep) doDeliver(nd *lsNode) {
	i := nd.idx
	net := ls.net
	nd.drain = ls.tr.Mailbox(i).TryDrain(nd.drain[:0])
	if net.IsFailed(i) {
		return
	}
	resps := nd.heldResp
	for _, raw := range nd.drain {
		fr, err := parseFrame(raw)
		if err != nil || fr.typ != frameResp {
			ls.fail(fmt.Errorf("node %d: stray frame in deliver phase (err=%v type=%d)", i, err, fr.typ))
			continue
		}
		resps = append(resps, fr)
	}
	for _, fr := range resps {
		m := fr.msg
		m.From = net.ID(fr.src)
		// The puller's own response sits at its own initiator position in
		// the engine's inbox order.
		nd.inbox = append(nd.inbox, lsEntry{key: i, msg: m})
	}
	if len(nd.inbox) == 0 {
		return
	}
	sort.Slice(nd.inbox, func(a, b int) bool { return nd.inbox[a].key < nd.inbox[b].key })
	if ls.curDeliver == nil {
		return
	}
	nd.delivery = nd.delivery[:0]
	for _, e := range nd.inbox {
		nd.delivery = append(nd.delivery, e.msg)
	}
	ls.curDeliver(i, nd.delivery)
	if net.PoisonInbox() {
		// Same copy-out contract as the engine arena: the slice is recycled
		// next round, and with poisoning on, a retaining callback reads
		// unmistakable poison instead of stale traffic.
		for k := range nd.delivery {
			nd.delivery[k] = phonecall.PoisonMessage
		}
	}
}
