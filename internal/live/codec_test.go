package live

import (
	"reflect"
	"testing"

	"repro/internal/phonecall"
)

// TestCodecRoundTrip pins the wire codec: every message shape a protocol can
// send must decode bit-identically (the lock-step conformance tests compare
// delivered inboxes against the engine with reflect.DeepEqual, so nil vs
// empty ID slices and negative Bits overrides all matter).
func TestCodecRoundTrip(t *testing.T) {
	msgs := []phonecall.Message{
		{},
		{Value: 0xdeadbeefcafef00d, Tag: 42, Rumor: true},
		{IDs: []phonecall.NodeID{}},
		{IDs: []phonecall.NodeID{1, 1 << 62, 0xffffffffffffffff}},
		{Bits: -1, Tag: 0xEF, Value: 7},
		{Bits: 1 << 30, Rumor: true},
	}
	for _, m := range msgs {
		for _, wantsPull := range []bool{false, true} {
			raw := appendCallFrame(nil, 300, 7, true, wantsPull, &m)
			fr, err := parseFrame(raw)
			if err != nil {
				t.Fatalf("parse %+v: %v", m, err)
			}
			if fr.typ != frameCall || !fr.hasPayload || fr.wantsPull != wantsPull {
				t.Fatalf("header mismatch: %+v", fr)
			}
			if fr.round != 300 || fr.src != 7 {
				t.Fatalf("round/src mismatch: %+v", fr)
			}
			if !reflect.DeepEqual(fr.msg, m) {
				t.Fatalf("message mismatch:\n sent %#v\n got  %#v", m, fr.msg)
			}
		}
		raw := appendRespFrame(nil, 2, 9, &m)
		fr, err := parseFrame(raw)
		if err != nil {
			t.Fatalf("parse resp %+v: %v", m, err)
		}
		if fr.typ != frameResp || !fr.hasPayload {
			t.Fatalf("resp header mismatch: %+v", fr)
		}
		if !reflect.DeepEqual(fr.msg, m) {
			t.Fatalf("resp message mismatch:\n sent %#v\n got  %#v", m, fr.msg)
		}
	}
}

// TestCodecBareFrames covers payload-free calls: pull requests and the
// bare contact frames out-of-model kinds produce.
func TestCodecBareFrames(t *testing.T) {
	for _, wantsPull := range []bool{true, false} {
		raw := appendCallFrame(nil, 1, 0, false, wantsPull, nil)
		fr, err := parseFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if fr.hasPayload || fr.wantsPull != wantsPull {
			t.Fatalf("bare frame mismatch: %+v", fr)
		}
	}
}

// TestCodecRejectsGarbage pins the decode error paths: truncations at every
// boundary and unknown frame types must error, not panic or misparse.
func TestCodecRejectsGarbage(t *testing.T) {
	good := appendCallFrame(nil, 5, 3, true, true, &phonecall.Message{Value: 1, IDs: []phonecall.NodeID{2, 3}})
	for cut := 0; cut < len(good); cut++ {
		if _, err := parseFrame(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := parseFrame([]byte{99, 0, 1, 1}); err == nil {
		t.Error("unknown frame type accepted")
	}
	if _, err := parseFrame(append(append([]byte(nil), good...), 0xAA)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestZigzag pins the signed Bits mapping.
func TestZigzag(t *testing.T) {
	for _, v := range []int{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}
