package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// TestFreeRunInformsAllUnderDrop is the free-running acceptance gate: 1000
// nodes on the channel mesh with 5% deterministic-seeded frame loss must all
// learn the rumor well within the budget, with the completion monitor
// detecting convergence.
func TestFreeRunInformsAllUnderDrop(t *testing.T) {
	tr, err := NewChannelTransport(1000, ChannelConfig{Drop: 0.05, DropSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fr, err := NewFreeRun(FreeRunConfig{
		N:         1000,
		Seed:      7,
		Rounds:    150,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("not all live nodes informed: %+v", rep)
	}
	if rep.CompletionFrontier == 0 {
		t.Fatalf("completion monitor never fired: %+v", rep)
	}
	if rep.Drops == 0 {
		t.Fatalf("5%% loss injection dropped nothing: %+v", rep)
	}
	if rep.Messages == 0 || rep.Bits == 0 {
		t.Fatalf("no traffic accounted: %+v", rep)
	}
	res := rep.Trace("free-push-pull", 7)
	if res.N != 1000 || !res.AllInformed || res.CompletionRound != rep.CompletionFrontier {
		t.Fatalf("trace mapping broken: %+v", res)
	}
}

// TestFreeRunChurnTimeline drives a crash wave and an uninformed rejoin
// through the frontier-triggered event path: the rejoined nodes must still
// converge (the joiners come back empty and have to re-learn the rumor).
func TestFreeRunChurnTimeline(t *testing.T) {
	crash := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fr, err := NewFreeRun(FreeRunConfig{
		N:      300,
		Seed:   11,
		Rounds: 200,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 3},
			scenario.CrashAt{At: 4, Nodes: crash},
			scenario.JoinAt{At: 12, Nodes: crash},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live != 300 {
		t.Fatalf("rejoin did not restore the population: %+v", rep)
	}
	if !rep.AllInformed {
		t.Fatalf("churned run did not converge: %+v", rep)
	}
	if rep.UnfiredEvents != 0 {
		t.Fatalf("%d timeline events never fired: %+v", rep.UnfiredEvents, rep)
	}
}

// TestFreeRunReviveDiscardsDeadBacklog pins the crashed-mailbox contract: a
// node revived long after crashing must not drain the frames that piled up
// while it was dead — neither re-learning the rumor from stale traffic nor
// charging the backlog as one round's communications (which would corrupt Δ).
// With n=2, the lone live peer pushes to the dead node every round, so
// without the discard the revived node would instantly hold the rumor and
// report MaxComms on the order of the dead period.
func TestFreeRunReviveDiscardsDeadBacklog(t *testing.T) {
	fr, err := NewFreeRun(FreeRunConfig{
		N:         2,
		Seed:      1,
		Rounds:    120,
		Algorithm: scenario.AlgoPush,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.CrashAt{At: 3, Nodes: []int{1}},
			scenario.JoinAt{At: 100, Nodes: []int{1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxComms > 10 {
		t.Fatalf("revived node processed its dead-period backlog: Δ=%d (%+v)", rep.MaxComms, rep)
	}
}

// TestFreeRunLossEvent checks that a Loss event retunes the channel mesh
// mid-run through the LossSetter capability.
func TestFreeRunLossEvent(t *testing.T) {
	tr, err := NewChannelTransport(200, ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fr, err := NewFreeRun(FreeRunConfig{
		N:         200,
		Seed:      3,
		Rounds:    150,
		Transport: tr,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.Loss{At: 2, Rate: 0.2, Seed: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drops == 0 {
		t.Fatalf("loss event did not reach the transport: %+v", rep)
	}
	if rep.IgnoredEvents != 0 {
		t.Fatalf("loss event reported as ignored: %+v", rep)
	}
	if !rep.AllInformed {
		t.Fatalf("run under 20%% loss did not converge: %+v", rep)
	}
}

// TestFreeRunPullOnly exercises the anti-entropy variant: only uninformed
// nodes initiate, so convergence relies on the pull/response path.
func TestFreeRunPullOnly(t *testing.T) {
	fr, err := NewFreeRun(FreeRunConfig{N: 200, Seed: 5, Rounds: 200, Algorithm: scenario.AlgoPull})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("pull-only run did not converge: %+v", rep)
	}
	if rep.ControlMessages == 0 {
		t.Fatalf("pull-only run charged no control messages: %+v", rep)
	}
}

// TestFreeRunLateEventsDoNotHang pins the termination contract: a timeline
// event scheduled past the round budget can never fire once every live node
// has exhausted its budget — the run must end and report it as unfired
// (the free-running analogue of the sim harness's "never fired" error),
// not block forever on the parked crashed node.
func TestFreeRunLateEventsDoNotHang(t *testing.T) {
	fr, err := NewFreeRun(FreeRunConfig{
		N:      16,
		Seed:   1,
		Rounds: 20,
		Events: []scenario.Event{
			scenario.InjectRumor{At: 1, Node: 0, Rumor: 0},
			scenario.CrashAt{At: 3, Nodes: []int{1}},
			scenario.JoinAt{At: 50, Nodes: []int{1}}, // past the budget
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := fr.Run(context.Background())
		done <- outcome{rep, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.rep.UnfiredEvents != 1 {
			t.Fatalf("want the past-budget JoinAt reported as 1 unfired event: %+v", o.rep)
		}
		if o.rep.Live != 15 {
			t.Fatalf("crashed node counted live: %+v", o.rep)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("free-running run with a past-budget event hung")
	}
}

// TestFreeRunTelemetryMatchesReport pins the send-path instrumentation: the
// live traffic counters a registry collects during a free-running run must
// agree exactly with the report's own accounting (every send site increments
// both), and the frontier stream must be monotone with MaxRound >= Frontier.
func TestFreeRunTelemetryMatchesReport(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var frontiers []FrontierInfo
	fr, err := NewFreeRun(FreeRunConfig{
		N:         200,
		Seed:      13,
		Rounds:    150,
		Telemetry: reg,
		OnFrontier: func(fi FrontierInfo) {
			mu.Lock()
			frontiers = append(frontiers, fi)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllInformed {
		t.Fatalf("run did not converge: %+v", rep)
	}
	samples := map[string]float64{}
	for _, s := range reg.Snapshot() {
		samples[s.ID()] = s.Value
	}
	msgs := samples[`repro_messages_total{algo="push-pull",engine="free-running"}`]
	if want := float64(rep.Messages + rep.ControlMessages); msgs != want {
		t.Errorf("repro_messages_total = %v, want %v (report: %+v)", msgs, want, rep)
	}
	bits := samples[`repro_bits_total{algo="push-pull",engine="free-running"}`]
	if want := float64(rep.Bits); bits != want {
		t.Errorf("repro_bits_total = %v, want %v", bits, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frontiers) == 0 {
		t.Fatal("OnFrontier never fired")
	}
	prev := 0
	for _, fi := range frontiers {
		if fi.Frontier <= prev {
			t.Fatalf("frontier stream not strictly increasing: %+v", frontiers)
		}
		prev = fi.Frontier
		if fi.MaxRound < fi.Frontier {
			t.Fatalf("MaxRound %d below frontier %d", fi.MaxRound, fi.Frontier)
		}
		if fi.Live <= 0 || fi.Informed < 0 || fi.Informed > fi.Live {
			t.Fatalf("implausible frontier populations: %+v", fi)
		}
	}
	last := frontiers[len(frontiers)-1]
	if last.Live != rep.Live || last.Informed > rep.Informed {
		t.Errorf("final frontier %+v disagrees with report informed=%d live=%d",
			last, rep.Informed, rep.Live)
	}
}

// TestFreeRunValidation pins the constructor error paths.
func TestFreeRunValidation(t *testing.T) {
	if _, err := NewFreeRun(FreeRunConfig{N: 1, Rounds: 10}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewFreeRun(FreeRunConfig{N: 10, Rounds: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewFreeRun(FreeRunConfig{N: 10, Rounds: 5, Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	small, err := NewChannelTransport(4, ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFreeRun(FreeRunConfig{N: 10, Rounds: 5, Transport: small}); err == nil {
		t.Error("size-mismatched transport accepted")
	}
}
