package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/phonecall"
)

func newNet(t testing.TB, n int, seed uint64) *phonecall.Network {
	t.Helper()
	net, err := phonecall.New(phonecall.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("phonecall.New: %v", err)
	}
	return net
}

// checkInvariant verifies the clustering invariant: every clustered node
// either is a leader or follows a node that is a leader (depth-one follow
// graph), and every node's size bookkeeping is non-negative.
func checkInvariant(t *testing.T, c *Clustering, allowStale bool) {
	t.Helper()
	net := c.Network()
	for i := 0; i < net.N(); i++ {
		if net.IsFailed(i) || !c.IsClustered(i) {
			continue
		}
		leaderIdx, ok := net.IndexOf(c.Follow(i))
		if !ok {
			t.Fatalf("node %d follows unknown ID %d", i, c.Follow(i))
		}
		if !allowStale && !c.IsLeader(leaderIdx) {
			t.Fatalf("node %d follows %d which is not a leader", i, leaderIdx)
		}
	}
}

func seedEvenClusters(t *testing.T, net *phonecall.Network, clusterSize int) *Clustering {
	t.Helper()
	c := New(net)
	// Deterministically partition nodes into consecutive groups; the largest
	// ID in each group is the leader (mirrors what Resize produces).
	n := net.N()
	for start := 0; start < n; start += clusterSize {
		end := start + clusterSize
		if end > n {
			end = n
		}
		leader := start
		for i := start; i < end; i++ {
			if net.ID(i) > net.ID(leader) {
				leader = i
			}
		}
		for i := start; i < end; i++ {
			c.SetFollow(i, net.ID(leader))
		}
	}
	checkInvariant(t, c, false)
	return c
}

func TestSeedSingletons(t *testing.T) {
	net := newNet(t, 10000, 1)
	c := New(net)
	leaders := c.SeedSingletons(0.1)
	if leaders < 800 || leaders > 1200 {
		t.Fatalf("seeded %d leaders, want about 1000", leaders)
	}
	if c.ClusteredCount() != leaders || c.LeaderCount() != leaders {
		t.Fatalf("clustered=%d leaders=%d, want both %d", c.ClusteredCount(), c.LeaderCount(), leaders)
	}
	checkInvariant(t, c, false)
	if c.SeedSingletons(0) != 0 {
		t.Fatal("probability 0 should seed nothing")
	}
}

func TestMeasureSizes(t *testing.T) {
	net := newNet(t, 1000, 2)
	c := seedEvenClusters(t, net, 10)
	c.MeasureSizes()
	for i := 0; i < net.N(); i++ {
		if got := c.Size(i); got != 10 {
			t.Fatalf("node %d learned size %d, want 10", i, got)
		}
	}
}

func TestActivateProbabilityExtremes(t *testing.T) {
	net := newNet(t, 2000, 3)
	c := seedEvenClusters(t, net, 20)
	c.Activate(1)
	for i := 0; i < net.N(); i++ {
		if !c.IsActive(i) {
			t.Fatalf("node %d inactive after Activate(1)", i)
		}
	}
	c.Activate(0)
	for i := 0; i < net.N(); i++ {
		if c.IsActive(i) {
			t.Fatalf("node %d active after Activate(0)", i)
		}
	}
}

func TestActivateFraction(t *testing.T) {
	net := newNet(t, 20000, 4)
	c := seedEvenClusters(t, net, 10) // 2000 clusters
	c.Activate(0.25)
	activeLeaders := 0
	for i := 0; i < net.N(); i++ {
		if c.IsLeader(i) && c.IsActive(i) {
			activeLeaders++
		}
	}
	if activeLeaders < 350 || activeLeaders > 650 {
		t.Fatalf("activated %d of 2000 clusters, want about 500", activeLeaders)
	}
	// Followers must agree with their leader.
	for i := 0; i < net.N(); i++ {
		leaderIdx, _ := net.IndexOf(c.Follow(i))
		if c.IsActive(i) != c.IsActive(leaderIdx) {
			t.Fatalf("node %d activation disagrees with its leader", i)
		}
	}
}

func TestDissolve(t *testing.T) {
	net := newNet(t, 1000, 5)
	c := New(net)
	// Clusters of size 5 (indexes 0..499) and size 25 (indexes 500..999).
	for start := 0; start < 500; start += 5 {
		leader := net.ID(start)
		for i := start; i < start+5; i++ {
			if net.ID(i) > leader {
				leader = net.ID(i)
			}
		}
		for i := start; i < start+5; i++ {
			c.SetFollow(i, leader)
		}
	}
	for start := 500; start < 1000; start += 25 {
		leader := net.ID(start)
		for i := start; i < start+25; i++ {
			if net.ID(i) > leader {
				leader = net.ID(i)
			}
		}
		for i := start; i < start+25; i++ {
			c.SetFollow(i, leader)
		}
	}
	c.Dissolve(10)
	for i := 0; i < 500; i++ {
		if c.IsClustered(i) {
			t.Fatalf("node %d of a size-5 cluster should have been dissolved", i)
		}
	}
	for i := 500; i < 1000; i++ {
		if !c.IsClustered(i) {
			t.Fatalf("node %d of a size-25 cluster should have survived", i)
		}
	}
	checkInvariant(t, c, false)
}

func TestResizeCapsClusterSizes(t *testing.T) {
	net := newNet(t, 1000, 6)
	c := seedEvenClusters(t, net, 200) // five clusters of 200
	c.Resize(30)
	sizes := c.ClusterSizes()
	if len(sizes) < 25 {
		t.Fatalf("resize produced only %d clusters", len(sizes))
	}
	for leader, size := range sizes {
		if size >= 2*30 {
			t.Fatalf("cluster %d has size %d, want < 2s = 60", leader, size)
		}
		if size < 10 {
			t.Fatalf("cluster %d has size %d, suspiciously small", leader, size)
		}
	}
	if c.ClusteredCount() != 1000 {
		t.Fatalf("resize must keep every node clustered, got %d", c.ClusteredCount())
	}
	checkInvariant(t, c, false)
}

func TestResizeProperty(t *testing.T) {
	// Property: for any cluster size and any resize target, after Resize every
	// cluster has size < 2*target and no node becomes unclustered.
	f := func(seed uint64, sizeSel, targetSel uint8) bool {
		n := 600
		clusterSize := int(sizeSel)%120 + 2
		target := int(targetSel)%40 + 2
		net, err := phonecall.New(phonecall.Config{N: n, Seed: seed})
		if err != nil {
			return false
		}
		c := New(net)
		for start := 0; start < n; start += clusterSize {
			end := start + clusterSize
			if end > n {
				end = n
			}
			leader := start
			for i := start; i < end; i++ {
				if net.ID(i) > net.ID(leader) {
					leader = i
				}
			}
			for i := start; i < end; i++ {
				c.SetFollow(i, net.ID(leader))
			}
		}
		c.Resize(target)
		if c.ClusteredCount() != n {
			return false
		}
		for _, size := range c.ClusterSizes() {
			if size >= 2*target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAndCompress(t *testing.T) {
	net := newNet(t, 300, 7)
	c := seedEvenClusters(t, net, 30)
	// Merge every cluster into the cluster with the globally smallest leader ID.
	smallest := phonecall.NoNode
	for _, id := range leaderIDs(c) {
		if smallest == phonecall.NoNode || id < smallest {
			smallest = id
		}
	}
	c.Merge(func(leader int) (phonecall.NodeID, bool) {
		if net.ID(leader) == smallest {
			return phonecall.NoNode, false
		}
		return smallest, true
	})
	c.Compress(2)
	checkInvariant(t, c, false)
	if got := c.LeaderCount(); got != 1 {
		t.Fatalf("after merging all into one, leader count = %d", got)
	}
	if frac := c.LargestClusterFraction(); frac != 1 {
		t.Fatalf("largest cluster fraction = %v, want 1", frac)
	}
}

func leaderIDs(c *Clustering) []phonecall.NodeID {
	var ids []phonecall.NodeID
	net := c.Network()
	for i := 0; i < net.N(); i++ {
		if c.IsLeader(i) {
			ids = append(ids, net.ID(i))
		}
	}
	return ids
}

func TestRandomPushAndRelay(t *testing.T) {
	net := newNet(t, 2000, 8)
	c := seedEvenClusters(t, net, 20)
	c.Activate(1)
	received := 0
	c.RandomPush(
		nil,
		func(i int) phonecall.Message {
			return phonecall.Message{Tag: TagRecruit, IDs: []phonecall.NodeID{c.Follow(i)}}
		},
		func(j int, m phonecall.Message) {
			if m.Tag == TagRecruit {
				received++
				c.SetPending(j, m.IDs[0])
			}
		},
	)
	if received < 1000 {
		t.Fatalf("only %d recruit messages received out of 2000 pushes", received)
	}
	c.RelayCandidates()
	withCandidates := 0
	for i := 0; i < net.N(); i++ {
		if c.IsLeader(i) && len(c.Candidates(i)) > 0 {
			withCandidates++
		}
	}
	if withCandidates < 50 {
		t.Fatalf("only %d leaders collected candidates", withCandidates)
	}
	c.ClearCandidates()
	for i := 0; i < net.N(); i++ {
		if len(c.Candidates(i)) != 0 {
			t.Fatal("ClearCandidates left candidates behind")
		}
	}
}

func TestPullJoinClustersEveryone(t *testing.T) {
	net := newNet(t, 5000, 9)
	c := New(net)
	// Cluster 60% of the nodes, leave the rest unclustered.
	for start := 0; start < 3000; start += 30 {
		leader := start
		for i := start; i < start+30; i++ {
			if net.ID(i) > net.ID(leader) {
				leader = i
			}
		}
		for i := start; i < start+30; i++ {
			c.SetFollow(i, net.ID(leader))
		}
	}
	rounds := c.PullJoin(20)
	if c.ClusteredCount() != 5000 {
		t.Fatalf("PullJoin left %d nodes unclustered", 5000-c.ClusteredCount())
	}
	if rounds > 10 {
		t.Fatalf("PullJoin used %d rounds, expected a handful (log log n behaviour)", rounds)
	}
	checkInvariant(t, c, false)
}

func TestShareRumor(t *testing.T) {
	net := newNet(t, 400, 10)
	c := seedEvenClusters(t, net, 400) // one big cluster
	c.SetRumor(3)
	if c.InformedCount() != 1 {
		t.Fatalf("informed = %d, want 1", c.InformedCount())
	}
	c.ShareRumor()
	if c.InformedCount() != 400 {
		t.Fatalf("informed = %d after ShareRumor, want 400", c.InformedCount())
	}
	if !c.HasRumor(0) || !c.HasRumor(399) {
		t.Fatal("rumor flags not set")
	}
}

func TestShareRumorOnlyReachesOwnCluster(t *testing.T) {
	net := newNet(t, 200, 11)
	c := seedEvenClusters(t, net, 100) // two clusters
	c.SetRumor(0)
	c.ShareRumor()
	informed := c.InformedCount()
	if informed != 100 {
		t.Fatalf("informed = %d, want exactly the source's cluster (100)", informed)
	}
}

func TestFailedNodesAreExcludedFromCounts(t *testing.T) {
	net := newNet(t, 100, 12)
	net.Fail(0, 1, 2, 3, 4)
	c := seedEvenClusters(t, net, 10)
	if c.ClusteredCount() != 95 {
		t.Fatalf("clustered = %d, want 95 live nodes", c.ClusteredCount())
	}
	sizes := c.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 95 {
		t.Fatalf("cluster sizes sum to %d, want 95", total)
	}
}

func TestClusterPrimitivesCostConstantRounds(t *testing.T) {
	net := newNet(t, 1000, 13)
	c := seedEvenClusters(t, net, 25)
	type step struct {
		name   string
		fn     func()
		rounds int
	}
	steps := []step{
		{"Activate", func() { c.Activate(0.5) }, 1},
		{"MeasureSizes", func() { c.MeasureSizes() }, 2},
		{"Dissolve", func() { c.Dissolve(2) }, 2},
		{"Resize", func() { c.Resize(25) }, 2},
		{"RandomPush", func() {
			c.RandomPush(nil, func(int) phonecall.Message { return phonecall.Message{Tag: TagRecruit} }, nil)
		}, 1},
		{"RelayCandidates", func() { c.RelayCandidates() }, 1},
		{"Merge", func() { c.Merge(func(int) (phonecall.NodeID, bool) { return phonecall.NoNode, false }) }, 1},
		{"Compress", func() { c.Compress(1) }, 1},
		{"ShareRumor", func() { c.ShareRumor() }, 2},
	}
	for _, s := range steps {
		before := net.Round()
		s.fn()
		if got := net.Round() - before; got != s.rounds {
			t.Fatalf("%s used %d rounds, want %d", s.name, got, s.rounds)
		}
	}
}
