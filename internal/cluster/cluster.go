// Package cluster implements the clustering abstraction of Section 3 of
// Haeupler & Malkhi, "Optimal Gossip with Direct Addressing" (PODC 2014).
//
// A clustering partitions the nodes into disjoint clusters, each with a
// leader known to every member, plus a set of unclustered nodes. It is
// represented exactly as in the paper: every node holds a follow variable
// containing its leader's ID (its own ID if it is the leader, NoNode if it is
// unclustered). All coordination happens through the cluster primitives of
// Section 3.2, each of which costs a constant number of synchronous rounds in
// the random phone call model and is address-oblivious.
package cluster

import (
	"sort"

	"repro/internal/phonecall"
)

// Message tags used by the cluster primitives.
const (
	TagRedirect   uint8 = iota + 1 // responder is not a leader; IDs[0] is its follow value
	TagActivate                    // Value is the activation bit
	TagSizeReport                  // follower reports membership to its leader
	TagSizeValue                   // Value is the cluster size
	TagNewFollow                   // IDs[0] is the new follow value (Value==0 dissolves)
	TagNewLeaders                  // IDs lists the new leaders after a resize
	TagRecruit                     // IDs[0] is the pushing cluster's ID
	TagRelay                       // IDs[0] is a relayed candidate cluster ID
	TagFollowIs                    // IDs[0] is the responder's follow value
	TagRumor                       // message carries the rumor
)

// Clustering is the per-node clustering state plus the coordination
// primitives. All exported methods that exchange information run one or more
// rounds on the underlying network and charge messages accordingly; methods
// documented as "local" inspect simulator state without communication and are
// used only by drivers, tests and metrics.
type Clustering struct {
	net *phonecall.Network

	follow   []phonecall.NodeID
	active   []bool
	size     []int
	prevSize []int
	rumor    []bool

	// recruit state: candidate cluster IDs received via random pushes,
	// relayed to leaders for merge decisions.
	pending    []phonecall.NodeID
	candidates [][]phonecall.NodeID
}

// New returns an empty clustering (every node unclustered) over net.
func New(net *phonecall.Network) *Clustering {
	n := net.N()
	return &Clustering{
		net:        net,
		follow:     make([]phonecall.NodeID, n),
		active:     make([]bool, n),
		size:       make([]int, n),
		prevSize:   make([]int, n),
		rumor:      make([]bool, n),
		pending:    make([]phonecall.NodeID, n),
		candidates: make([][]phonecall.NodeID, n),
	}
}

// Network returns the underlying phone call network.
func (c *Clustering) Network() *phonecall.Network { return c.net }

// Follow returns node i's follow variable (local).
func (c *Clustering) Follow(i int) phonecall.NodeID { return c.follow[i] }

// SetFollow sets node i's follow variable (local; used by drivers to seed the
// source node's own cluster in degenerate cases and by tests).
func (c *Clustering) SetFollow(i int, id phonecall.NodeID) { c.follow[i] = id }

// IsClustered reports whether node i belongs to a cluster (local).
func (c *Clustering) IsClustered(i int) bool { return c.follow[i] != phonecall.NoNode }

// IsLeader reports whether node i is a cluster leader (local).
func (c *Clustering) IsLeader(i int) bool { return c.follow[i] == c.net.ID(i) }

// IsActive reports whether node i believes its cluster is activated (local).
func (c *Clustering) IsActive(i int) bool { return c.active[i] }

// SetActive sets node i's cached activation bit (local; used when a node
// joins a cluster it knows to be active, e.g. because that cluster just
// pushed to it).
func (c *Clustering) SetActive(i int, v bool) { c.active[i] = v }

// Size returns node i's last learned cluster size (local).
func (c *Clustering) Size(i int) int { return c.size[i] }

// PrevSize returns node i's previously learned cluster size (local).
func (c *Clustering) PrevSize(i int) int { return c.prevSize[i] }

// HasRumor reports whether node i holds the rumor (local).
func (c *Clustering) HasRumor(i int) bool { return c.rumor[i] }

// SetRumor marks node i as holding the rumor (local; used to place the
// initial rumor at the source).
func (c *Clustering) SetRumor(i int) { c.rumor[i] = true }

// InformedCount returns the number of live nodes holding the rumor (local).
func (c *Clustering) InformedCount() int {
	count := 0
	for i, r := range c.rumor {
		if r && !c.net.IsFailed(i) {
			count++
		}
	}
	return count
}

// ClusteredCount returns the number of live clustered nodes (local).
func (c *Clustering) ClusteredCount() int {
	count := 0
	for i := range c.follow {
		if c.follow[i] != phonecall.NoNode && !c.net.IsFailed(i) {
			count++
		}
	}
	return count
}

// LeaderCount returns the number of live cluster leaders (local).
func (c *Clustering) LeaderCount() int {
	count := 0
	for i := range c.follow {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			count++
		}
	}
	return count
}

// ClusterSizes returns the size of every cluster keyed by leader ID, counting
// only live nodes and following each node's direct follow pointer (local).
func (c *Clustering) ClusterSizes() map[phonecall.NodeID]int {
	sizes := make(map[phonecall.NodeID]int)
	for i := range c.follow {
		if c.net.IsFailed(i) || c.follow[i] == phonecall.NoNode {
			continue
		}
		sizes[c.follow[i]]++
	}
	return sizes
}

// LargestClusterFraction returns the fraction of live nodes contained in the
// largest cluster (local).
func (c *Clustering) LargestClusterFraction() float64 {
	live := c.net.LiveCount()
	if live == 0 {
		return 0
	}
	largest := 0
	for _, s := range c.ClusterSizes() {
		if s > largest {
			largest = s
		}
	}
	return float64(largest) / float64(live)
}

// SeedSingletons makes every live node a singleton cluster leader
// independently with probability p (line 7 of Algorithm 1, line 8 of
// Algorithm 2). This is a purely local coin flip and costs no rounds.
func (c *Clustering) SeedSingletons(p float64) int {
	leaders := 0
	for i := 0; i < c.net.N(); i++ {
		if c.net.IsFailed(i) {
			continue
		}
		if c.net.NodeRNG(i).Bernoulli(p) {
			c.follow[i] = c.net.ID(i)
			c.active[i] = true
			c.size[i] = 1
			c.prevSize[i] = 1
			leaders++
		} else {
			c.follow[i] = phonecall.NoNode
			c.active[i] = false
		}
	}
	return leaders
}

// leaderPull runs one round in which every clustered non-leader node that
// satisfies participate pulls from its leader. Leaders respond with
// respond(leader); a contacted node that is not (or no longer) a leader
// responds with a redirect carrying its own follow value, which the puller
// adopts (lazy path compression). apply is invoked for every puller that
// received a non-redirect response.
func (c *Clustering) leaderPull(
	participate func(i int) bool,
	respond func(leader int) phonecall.Message,
	apply func(i int, m phonecall.Message),
) {
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if !c.IsClustered(i) || c.IsLeader(i) {
				return phonecall.Silent()
			}
			if participate != nil && !participate(i) {
				return phonecall.Silent()
			}
			return phonecall.PullIntent(phonecall.DirectTarget(c.follow[i]))
		},
		func(j int) (phonecall.Message, bool) {
			if c.IsLeader(j) {
				return respond(j), true
			}
			return phonecall.Message{Tag: TagRedirect, IDs: []phonecall.NodeID{c.follow[j]}}, true
		},
		func(i int, inbox []phonecall.Message) {
			for _, m := range inbox {
				if m.Tag == TagRedirect {
					if len(m.IDs) == 1 && m.IDs[0] != phonecall.NoNode {
						c.follow[i] = m.IDs[0]
					}
					continue
				}
				if apply != nil {
					apply(i, m)
				}
			}
		},
	)
}

// Activate implements ClusterActivate(p): every cluster is independently
// activated with probability p; followers learn the outcome by pulling a
// coin from their leader. Costs one round.
func (c *Clustering) Activate(p float64) {
	for i := 0; i < c.net.N(); i++ {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			c.active[i] = c.net.NodeRNG(i).Bernoulli(p)
		}
	}
	c.broadcastActivation()
}

// SetActivation lets every leader decide its cluster's activation and
// broadcasts the decision to the followers. Costs one round.
func (c *Clustering) SetActivation(decide func(leader int) bool) {
	for i := 0; i < c.net.N(); i++ {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			c.active[i] = decide(i)
		}
	}
	c.broadcastActivation()
}

func (c *Clustering) broadcastActivation() {
	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			v := uint64(0)
			if c.active[leader] {
				v = 1
			}
			return phonecall.Message{Tag: TagActivate, Value: v}
		},
		func(i int, m phonecall.Message) {
			c.active[i] = m.Value == 1
		},
	)
}

// MeasureSizes implements ClusterSize: followers report to their leader, the
// leader counts, and followers pull the count back. Costs two rounds. The
// learned size is available via Size; the previously learned size moves to
// PrevSize.
func (c *Clustering) MeasureSizes() {
	counts := c.collectMemberCounts()
	for i := 0; i < c.net.N(); i++ {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			c.prevSize[i] = c.size[i]
			c.size[i] = counts[i]
		}
	}
	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			return phonecall.Message{Tag: TagSizeValue, Value: uint64(c.size[leader])}
		},
		func(i int, m phonecall.Message) {
			c.prevSize[i] = c.size[i]
			c.size[i] = int(m.Value)
		},
	)
}

// collectMemberCounts runs the follower-report round and returns, per leader
// index, the number of members (including the leader itself).
func (c *Clustering) collectMemberCounts() []int {
	counts := make([]int, c.net.N())
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if !c.IsClustered(i) || c.IsLeader(i) {
				return phonecall.Silent()
			}
			return phonecall.PushIntent(phonecall.DirectTarget(c.follow[i]), phonecall.Message{Tag: TagSizeReport})
		},
		nil,
		func(j int, inbox []phonecall.Message) {
			if !c.IsLeader(j) {
				return
			}
			for _, m := range inbox {
				if m.Tag == TagSizeReport {
					counts[j]++
				}
			}
		},
	)
	for i := 0; i < c.net.N(); i++ {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			counts[i]++ // the leader itself
		}
	}
	return counts
}

// Dissolve implements ClusterDissolve(s): clusters smaller than minSize are
// dissolved (all members, including the leader, become unclustered). Costs
// two rounds.
func (c *Clustering) Dissolve(minSize int) {
	counts := c.collectMemberCounts()
	keep := make([]bool, c.net.N())
	for i := 0; i < c.net.N(); i++ {
		if c.IsLeader(i) && !c.net.IsFailed(i) {
			keep[i] = counts[i] >= minSize
		}
	}
	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			if keep[leader] {
				return phonecall.Message{Tag: TagNewFollow, Value: 1, IDs: []phonecall.NodeID{c.net.ID(leader)}}
			}
			return phonecall.Message{Tag: TagNewFollow, Value: 0}
		},
		func(i int, m phonecall.Message) {
			if m.Value == 1 && len(m.IDs) == 1 {
				c.follow[i] = m.IDs[0]
			} else {
				c.follow[i] = phonecall.NoNode
				c.active[i] = false
			}
		},
	)
	for i := 0; i < c.net.N(); i++ {
		if c.net.IsFailed(i) {
			continue
		}
		if c.IsLeader(i) && !keep[i] {
			c.follow[i] = phonecall.NoNode
			c.active[i] = false
		}
	}
}

// Resize implements ClusterResize(s): every cluster of size s' re-clusters
// itself into ⌊s'/s⌋ groups of (almost) equal size; within each group the
// largest ID becomes the new leader. Costs two rounds. After a resize every
// cluster has size at most 2s−1.
func (c *Clustering) Resize(target int) {
	if target < 1 {
		target = 1
	}
	n := c.net.N()
	members := make([][]phonecall.NodeID, n)
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if !c.IsClustered(i) || c.IsLeader(i) {
				return phonecall.Silent()
			}
			return phonecall.PushIntent(phonecall.DirectTarget(c.follow[i]), phonecall.Message{Tag: TagSizeReport})
		},
		nil,
		func(j int, inbox []phonecall.Message) {
			if !c.IsLeader(j) {
				return
			}
			for _, m := range inbox {
				if m.Tag == TagSizeReport {
					members[j] = append(members[j], m.From)
				}
			}
		},
	)

	newLeaders := make([][]phonecall.NodeID, n)
	for j := 0; j < n; j++ {
		if !c.IsLeader(j) || c.net.IsFailed(j) {
			continue
		}
		ids := append(members[j], c.net.ID(j))
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		groups := len(ids) / target
		if groups < 1 {
			groups = 1
		}
		leaders := make([]phonecall.NodeID, 0, groups)
		per := len(ids) / groups
		extra := len(ids) % groups
		idx := 0
		for g := 0; g < groups; g++ {
			size := per
			if g < extra {
				size++
			}
			idx += size
			leaders = append(leaders, ids[idx-1]) // largest ID in the group
		}
		newLeaders[j] = leaders
	}

	assign := func(own phonecall.NodeID, leaders []phonecall.NodeID) phonecall.NodeID {
		for _, l := range leaders {
			if l >= own {
				return l
			}
		}
		if len(leaders) > 0 {
			return leaders[len(leaders)-1]
		}
		return own
	}

	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			return phonecall.Message{Tag: TagNewLeaders, IDs: newLeaders[leader]}
		},
		func(i int, m phonecall.Message) {
			if len(m.IDs) == 0 {
				return
			}
			c.follow[i] = assign(c.net.ID(i), m.IDs)
			c.size[i] = target
			c.prevSize[i] = target
		},
	)
	for j := 0; j < n; j++ {
		if c.net.IsFailed(j) || newLeaders[j] == nil {
			continue
		}
		if c.IsLeader(j) {
			c.follow[j] = assign(c.net.ID(j), newLeaders[j])
			c.size[j] = target
			c.prevSize[j] = target
		}
	}
}

// RandomPush implements ClusterPUSH: every clustered node for which
// participate returns true pushes payload(i) to a uniformly random node;
// receive is invoked at every live node that received at least one push.
// Costs one round.
func (c *Clustering) RandomPush(
	participate func(i int) bool,
	payload func(i int) phonecall.Message,
	receive func(i int, m phonecall.Message),
) {
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if !c.IsClustered(i) || (participate != nil && !participate(i)) {
				return phonecall.Silent()
			}
			return phonecall.PushIntent(phonecall.RandomTarget(), payload(i))
		},
		nil,
		func(j int, inbox []phonecall.Message) {
			if receive == nil {
				return
			}
			for _, m := range inbox {
				receive(j, m)
			}
		},
	)
}

// SetPending records a candidate cluster ID at node i, to be relayed to the
// node's leader by RelayCandidates (local). Callers decide the tie-breaking
// policy (for example "smallest received" for Cluster1 or "first received"
// for Cluster2) before calling SetPending.
func (c *Clustering) SetPending(i int, id phonecall.NodeID) { c.pending[i] = id }

// Pending returns node i's currently pending candidate cluster ID (local).
func (c *Clustering) Pending(i int) phonecall.NodeID { return c.pending[i] }

// RelayCandidates implements the "relay received messages to the cluster
// leader" step of ClusterPUSH: every node holding a pending candidate pushes
// it to its leader; leaders accumulate the candidates. Costs one round.
func (c *Clustering) RelayCandidates() {
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if c.pending[i] == phonecall.NoNode || !c.IsClustered(i) {
				return phonecall.Silent()
			}
			if c.IsLeader(i) {
				return phonecall.Silent() // the leader keeps its own candidate locally
			}
			return phonecall.PushIntent(
				phonecall.DirectTarget(c.follow[i]),
				phonecall.Message{Tag: TagRelay, IDs: []phonecall.NodeID{c.pending[i]}},
			)
		},
		nil,
		func(j int, inbox []phonecall.Message) {
			if !c.IsLeader(j) {
				return
			}
			for _, m := range inbox {
				if m.Tag == TagRelay && len(m.IDs) == 1 {
					c.candidates[j] = append(c.candidates[j], m.IDs[0])
				}
			}
		},
	)
	for i := 0; i < c.net.N(); i++ {
		if c.net.IsFailed(i) {
			continue
		}
		if c.IsLeader(i) && c.pending[i] != phonecall.NoNode {
			c.candidates[i] = append(c.candidates[i], c.pending[i])
		}
		c.pending[i] = phonecall.NoNode
	}
}

// Candidates returns the candidate cluster IDs relayed to leader i (local).
func (c *Clustering) Candidates(i int) []phonecall.NodeID { return c.candidates[i] }

// ClearCandidates drops all relayed candidates (local).
func (c *Clustering) ClearCandidates() {
	for i := range c.candidates {
		c.candidates[i] = c.candidates[i][:0]
	}
}

// Merge implements ClusterMerge: every leader for which decide returns a new
// leader ID merges its cluster into that cluster; followers learn the new
// leader by pulling from their current leader. Costs one round. Members of a
// merged cluster are deactivated; activation is re-established by the next
// Activate or SetActivation call.
func (c *Clustering) Merge(decide func(leader int) (phonecall.NodeID, bool)) {
	target := make([]phonecall.NodeID, c.net.N())
	for i := 0; i < c.net.N(); i++ {
		if !c.IsLeader(i) || c.net.IsFailed(i) {
			continue
		}
		if id, ok := decide(i); ok && id != phonecall.NoNode && id != c.net.ID(i) {
			target[i] = id
		} else {
			target[i] = c.net.ID(i)
		}
	}
	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			return phonecall.Message{Tag: TagNewFollow, Value: 1, IDs: []phonecall.NodeID{target[leader]}}
		},
		func(i int, m phonecall.Message) {
			if m.Value == 1 && len(m.IDs) == 1 {
				if m.IDs[0] != c.follow[i] {
					c.active[i] = false
				}
				c.follow[i] = m.IDs[0]
			}
		},
	)
	for i := 0; i < c.net.N(); i++ {
		if c.net.IsFailed(i) || target[i] == phonecall.NoNode {
			continue
		}
		if target[i] != c.net.ID(i) && c.follow[i] == c.net.ID(i) {
			c.follow[i] = target[i]
			c.active[i] = false
		}
	}
}

// Compress runs the given number of pointer-jumping rounds: every clustered
// non-leader pulls its leader's follow value and adopts it. After merges the
// follow graph can have depth two; one or two compress rounds restore the
// depth-one invariant.
func (c *Clustering) Compress(rounds int) {
	for r := 0; r < rounds; r++ {
		c.leaderPull(nil,
			func(leader int) phonecall.Message {
				return phonecall.Message{Tag: TagFollowIs, IDs: []phonecall.NodeID{c.follow[leader]}}
			},
			func(i int, m phonecall.Message) {
				if len(m.IDs) == 1 && m.IDs[0] != phonecall.NoNode {
					c.follow[i] = m.IDs[0]
				}
			},
		)
	}
}

// PullJoin implements UnclusteredNodesPull: for up to maxRounds rounds every
// unclustered node pulls from a uniformly random node and joins the
// responder's cluster if the responder is clustered. It stops early when no
// unclustered live node remains and returns the number of rounds used.
func (c *Clustering) PullJoin(maxRounds int) int {
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		if c.ClusteredCount() == c.net.LiveCount() {
			break
		}
		c.net.ExecRound(
			func(i int) phonecall.Intent {
				if c.IsClustered(i) {
					return phonecall.Silent()
				}
				return phonecall.PullIntent(phonecall.RandomTarget())
			},
			func(j int) (phonecall.Message, bool) {
				if !c.IsClustered(j) {
					return phonecall.Message{}, false
				}
				return phonecall.Message{Tag: TagFollowIs, IDs: []phonecall.NodeID{c.follow[j]}}, true
			},
			func(i int, inbox []phonecall.Message) {
				if c.IsClustered(i) {
					return
				}
				for _, m := range inbox {
					if m.Tag == TagFollowIs && len(m.IDs) == 1 && m.IDs[0] != phonecall.NoNode {
						c.follow[i] = m.IDs[0]
						c.active[i] = false
						return
					}
				}
			},
		)
	}
	return rounds
}

// ShareRumor implements ClusterShare(message) for the broadcast task: nodes
// holding the rumor relay it to their leader, then every cluster member pulls
// it from the leader. Costs two rounds.
func (c *Clustering) ShareRumor() {
	c.net.ExecRound(
		func(i int) phonecall.Intent {
			if !c.rumor[i] || !c.IsClustered(i) || c.IsLeader(i) {
				return phonecall.Silent()
			}
			return phonecall.PushIntent(phonecall.DirectTarget(c.follow[i]), phonecall.Message{Tag: TagRumor, Rumor: true})
		},
		nil,
		func(j int, inbox []phonecall.Message) {
			for _, m := range inbox {
				if m.Tag == TagRumor && m.Rumor {
					c.rumor[j] = true
				}
			}
		},
	)
	c.leaderPull(nil,
		func(leader int) phonecall.Message {
			if c.rumor[leader] {
				return phonecall.Message{Tag: TagRumor, Rumor: true}
			}
			return phonecall.Message{Tag: TagRumor}
		},
		func(i int, m phonecall.Message) {
			if m.Rumor {
				c.rumor[i] = true
			}
		},
	)
}
