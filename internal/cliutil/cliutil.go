// Package cliutil holds the flag-parsing and report-rendering plumbing
// shared by the cmd/* binaries, so the CLIs stay thin shells over the public
// repro API instead of each hand-rolling the same helpers.
package cliutil

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro"
)

// ParseSizes parses a comma-separated list of network sizes.
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("parse size %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

// Seeds returns the consecutive seed list {1, ..., count}.
func Seeds(count int) []uint64 {
	out := make([]uint64, 0, count)
	for s := 1; s <= count; s++ {
		out = append(out, uint64(s))
	}
	return out
}

// PolicyOptions translates the -topology/-policy flag pair shared by
// cmd/gossipsim and cmd/scenario into Run options: each non-empty path loads
// the corresponding JSON spec (the topology is sized to the run's network
// once n is known, so it composes with scenario specs that fix their own n).
func PolicyOptions(topologyPath, policyPath string) []repro.Option {
	var opts []repro.Option
	if topologyPath != "" {
		opts = append(opts, repro.WithTopologyFile(topologyPath))
	}
	if policyPath != "" {
		opts = append(opts, repro.WithPolicyFile(policyPath))
	}
	return opts
}

// PrintResult writes the common complexity block every execution report
// shares: population, informedness, rounds, traffic and the paper's Δ.
func PrintResult(w io.Writer, res repro.Result) {
	fmt.Fprintf(w, "nodes              %d (live %d)\n", res.N, res.Live)
	fmt.Fprintf(w, "informed           %d (all informed: %v)\n", res.Informed, res.AllInformed)
	fmt.Fprintf(w, "rounds             %d (completion at round %d)\n", res.Rounds, res.CompletionRound)
	fmt.Fprintf(w, "messages           %d payload + %d control (%.2f per node)\n",
		res.Messages, res.ControlMessages, res.MessagesPerNode)
	fmt.Fprintf(w, "bits               %d\n", res.Bits)
	fmt.Fprintf(w, "max comms/round Δ  %d\n", res.MaxCommsPerRound)
}

// PrintPhases writes the per-phase breakdown of a closed algorithm's
// execution (no-op without phases).
func PrintPhases(w io.Writer, phases []repro.Phase) {
	if len(phases) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-28s %8s %12s %14s\n", "phase", "rounds", "messages", "bits")
	for _, p := range phases {
		fmt.Fprintf(w, "%-28s %8d %12d %14d\n", p.Name, p.Rounds, p.Messages, p.Bits)
	}
}
