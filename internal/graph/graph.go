// Package graph provides the small undirected-graph utilities used by the
// lower-bound machinery of Section 6 of the paper (knowledge graphs, BFS
// eccentricities) and by tests.
package graph

// Graph is a simple undirected graph over vertices 0..n-1 stored as
// adjacency lists. Parallel edges are tolerated (they do not affect
// distances); self-loops are ignored.
type Graph struct {
	n   int
	adj [][]int32
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
}

// Degree returns the degree of vertex u (counting parallel edges).
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Edges returns the number of undirected edges (parallel edges counted).
func (g *Graph) Edges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// Unreachable is the distance reported for vertices not reachable from the
// BFS source.
const Unreachable = int32(-1)

// BFS returns the distance from src to every vertex (Unreachable when there
// is no path).
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n {
		return dist
	}
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src and whether
// every vertex is reachable from src.
func (g *Graph) Eccentricity(src int) (ecc int, allReachable bool) {
	dist := g.BFS(src)
	allReachable = true
	for _, d := range dist {
		if d == Unreachable {
			allReachable = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, allReachable
}

// Connected reports whether the graph is connected (true for the empty and
// single-vertex graph).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	_, all := g.Eccentricity(0)
	return all
}

// DiameterLowerBound returns a lower bound on the diameter obtained by a
// double BFS sweep (exact on trees, a good heuristic in general). The second
// return value is false when the graph is disconnected, in which case the
// diameter is infinite.
func (g *Graph) DiameterLowerBound() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	dist := g.BFS(0)
	far := 0
	for v, d := range dist {
		if d == Unreachable {
			return 0, false
		}
		if d > dist[far] {
			far = v
		}
	}
	ecc, all := g.Eccentricity(far)
	return ecc, all
}
