package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	g := New(0)
	if g.N() != 0 || !g.Connected() {
		t.Fatal("empty graph should be connected with 0 vertices")
	}
	g1 := New(1)
	if !g1.Connected() {
		t.Fatal("single vertex graph should be connected")
	}
	if d, ok := g1.DiameterLowerBound(); d != 0 || !ok {
		t.Fatalf("single vertex diameter = %d, %v", d, ok)
	}
}

func TestAddEdgeIgnoresBadInput(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	g.AddEdge(-1, 2)
	g.AddEdge(0, 7)
	if g.Edges() != 0 {
		t.Fatalf("expected no edges, got %d", g.Edges())
	}
}

func TestPathDistances(t *testing.T) {
	g := pathGraph(6)
	dist := g.BFS(0)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	ecc, all := g.Eccentricity(0)
	if ecc != 5 || !all {
		t.Fatalf("eccentricity = %d, %v", ecc, all)
	}
	if d, ok := g.DiameterLowerBound(); d != 5 || !ok {
		t.Fatalf("diameter = %d, %v, want 5", d, ok)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	if _, ok := g.DiameterLowerBound(); ok {
		t.Fatal("diameter of disconnected graph should report not-ok")
	}
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatal("unreachable vertices must report Unreachable")
	}
}

func TestDegreesAndEdges(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	if g.Degree(0) != 3 || g.Degree(4) != 0 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(0), g.Degree(4))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
	if g.Edges() != 4 {
		t.Fatalf("edges = %d", g.Edges())
	}
	if g.Degree(-1) != 0 || g.Degree(99) != 0 {
		t.Fatal("out of range degree should be 0")
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := pathGraph(3)
	dist := g.BFS(-1)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("BFS from invalid source should reach nothing")
		}
	}
}

func TestStarGraphDiameter(t *testing.T) {
	g := New(10)
	for i := 1; i < 10; i++ {
		g.AddEdge(0, i)
	}
	if d, ok := g.DiameterLowerBound(); d != 2 || !ok {
		t.Fatalf("star diameter = %d, %v, want 2", d, ok)
	}
	if g.MaxDegree() != 9 {
		t.Fatalf("star max degree = %d", g.MaxDegree())
	}
}

func TestRandomGraphConnectivityProperty(t *testing.T) {
	// Property: a ring plus random chords is connected and its diameter lower
	// bound is at most n/2 (the ring diameter).
	f := func(seed uint64, size uint8) bool {
		n := int(size)%50 + 3
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		src := rng.New(seed)
		for i := 0; i < n/2; i++ {
			g.AddEdge(src.Intn(n), src.Intn(n))
		}
		if !g.Connected() {
			return false
		}
		d, ok := g.DiameterLowerBound()
		return ok && d <= n/2+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSMatchesEccentricityDefinition(t *testing.T) {
	// Property: Eccentricity(src) equals the maximum finite BFS distance.
	f := func(seed uint64, size uint8) bool {
		n := int(size)%30 + 2
		g := New(n)
		src := rng.New(seed)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(src.Intn(n), src.Intn(n))
		}
		ecc, _ := g.Eccentricity(0)
		maxFinite := 0
		for _, d := range g.BFS(0) {
			if d != Unreachable && int(d) > maxFinite {
				maxFinite = int(d)
			}
		}
		return ecc == maxFinite
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
