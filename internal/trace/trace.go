// Package trace defines the execution summary shared by all gossip
// algorithms in this repository (the paper's round-, message- and
// bit-complexity figures) and a small helper for recording per-phase costs.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/phonecall"
)

// Phase records the cost of one named phase of an execution.
type Phase struct {
	Name     string
	Rounds   int
	Messages int64
	Bits     int64
}

// Result summarizes one execution of a broadcast (or clustering) algorithm.
type Result struct {
	Algorithm string
	N         int
	Seed      uint64

	// Complexity measures (the quantities of Theorems 1, 2, 9, 18).
	Rounds           int
	Messages         int64
	ControlMessages  int64
	Bits             int64
	MessagesPerNode  float64
	MaxCommsPerRound int

	// CompletionRound is the first round by which every live node was
	// informed. For self-terminating algorithms it equals Rounds; protocols
	// that (faithfully to their model) keep running for their full fixed round
	// budget report the earlier completion time here.
	CompletionRound int

	// Outcome.
	Live        int
	Informed    int
	AllInformed bool

	Phases []Phase
}

// UninformedSurvivors returns the number of live nodes that did not learn the
// rumor (the paper's o(F) fault-tolerance measure).
func (r Result) UninformedSurvivors() int { return r.Live - r.Informed }

// String renders a compact one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s n=%d rounds=%d msgs/node=%.2f bits=%d maxΔ=%d informed=%d/%d",
		r.Algorithm, r.N, r.Rounds, r.MessagesPerNode, r.Bits, r.MaxCommsPerRound, r.Informed, r.Live)
}

// Table renders the per-phase breakdown as an aligned text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %12s %14s\n", "phase", "rounds", "messages", "bits")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-28s %8d %12d %14d\n", p.Name, p.Rounds, p.Messages, p.Bits)
	}
	fmt.Fprintf(&b, "%-28s %8d %12d %14d\n", "total", r.Rounds, r.Messages+r.ControlMessages, r.Bits)
	return b.String()
}

// Recorder captures per-phase deltas of the network metrics.
type Recorder struct {
	net    *phonecall.Network
	phases []Phase

	lastRound    int
	lastMessages int64
	lastBits     int64
}

// NewRecorder returns a Recorder positioned at the network's current metrics.
func NewRecorder(net *phonecall.Network) *Recorder {
	r := &Recorder{net: net}
	m := net.Metrics()
	r.lastRound = m.Rounds
	r.lastMessages = m.TotalMessages()
	r.lastBits = m.Bits
	return r
}

// Mark closes the current phase under the given name.
func (r *Recorder) Mark(name string) {
	m := r.net.Metrics()
	r.phases = append(r.phases, Phase{
		Name:     name,
		Rounds:   m.Rounds - r.lastRound,
		Messages: m.TotalMessages() - r.lastMessages,
		Bits:     m.Bits - r.lastBits,
	})
	r.lastRound = m.Rounds
	r.lastMessages = m.TotalMessages()
	r.lastBits = m.Bits
}

// Phases returns the recorded phases.
func (r *Recorder) Phases() []Phase { return append([]Phase(nil), r.phases...) }

// Summarize assembles a Result from the network's metrics and the outcome
// counters supplied by the algorithm driver.
func Summarize(algorithm string, net *phonecall.Network, informed int, phases []Phase) Result {
	m := net.Metrics()
	return Result{
		Algorithm:        algorithm,
		N:                net.N(),
		Seed:             net.Seed(),
		Rounds:           m.Rounds,
		CompletionRound:  m.Rounds,
		Messages:         m.Messages,
		ControlMessages:  m.ControlMessages,
		Bits:             m.Bits,
		MessagesPerNode:  m.MessagesPerNode(),
		MaxCommsPerRound: m.MaxCommsPerRound,
		Live:             net.LiveCount(),
		Informed:         informed,
		AllInformed:      informed == net.LiveCount(),
		Phases:           phases,
	}
}
