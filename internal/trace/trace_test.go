package trace

import (
	"strings"
	"testing"

	"repro/internal/phonecall"
)

func TestRecorderPhases(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(net)
	net.ExecRound(func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1})
	}, nil, nil)
	rec.Mark("first")
	net.ExecRound(func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1})
	}, nil, nil)
	net.ExecRound(nil, nil, nil)
	rec.Mark("second")

	phases := rec.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0].Name != "first" || phases[0].Rounds != 1 || phases[0].Messages != 100 {
		t.Fatalf("first phase = %+v", phases[0])
	}
	if phases[1].Rounds != 2 || phases[1].Messages != 100 {
		t.Fatalf("second phase = %+v", phases[1])
	}
	// Phases() must return a copy.
	phases[0].Name = "mutated"
	if rec.Phases()[0].Name != "first" {
		t.Fatal("Phases returned internal state")
	}
}

func TestSummarize(t *testing.T) {
	net, err := phonecall.New(phonecall.Config{N: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	net.Fail(0)
	net.ExecRound(func(i int) phonecall.Intent {
		return phonecall.PushIntent(phonecall.RandomTarget(), phonecall.Message{Tag: 1, Rumor: true})
	}, nil, nil)
	res := Summarize("demo", net, 49, []Phase{{Name: "p", Rounds: 1}})
	if res.Algorithm != "demo" || res.N != 50 || res.Live != 49 {
		t.Fatalf("result = %+v", res)
	}
	if !res.AllInformed || res.UninformedSurvivors() != 0 {
		t.Fatal("49 informed of 49 live should be all informed")
	}
	if res.CompletionRound != res.Rounds {
		t.Fatal("default completion round should equal rounds")
	}
	if res.MessagesPerNode <= 0 || res.Bits <= 0 {
		t.Fatalf("complexity measures missing: %+v", res)
	}
	if !strings.Contains(res.String(), "demo") {
		t.Fatal("String() should mention the algorithm")
	}
	table := res.Table()
	if !strings.Contains(table, "total") || !strings.Contains(table, "p") {
		t.Fatalf("Table() missing rows:\n%s", table)
	}
}
