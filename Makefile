GO ?= go

.PHONY: build test race bench smoke-procs smoke-compose compose-down

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Engine + membership hot-path benchmarks -> BENCH_engine.json (the committed
# perf baseline; BENCH_TRAJECTORY.md tracks the history).
bench:
	$(GO) run ./cmd/benchtab -json -benchn 50000

# Five gossipnode processes on loopback: bootstrap through the seed's address
# alone, converge the injected rumor, all exit 0.
smoke-procs:
	sh scripts/smoke_procs.sh

# The same deployment shape across real container boundaries: five containers
# on the compose network, peers reached by announced DNS names, every
# container must exit 0 with a convergence report.
smoke-compose:
	sh scripts/smoke_compose.sh

compose-down:
	docker compose down --remove-orphans
