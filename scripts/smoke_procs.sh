#!/bin/sh
# Five-process bootstrap-and-converge smoke on loopback: the same deployment
# shape as docker-compose.yml without containers. node0 seeds and injects the
# rumor; node1..node4 join through its address alone and must discover every
# peer via FIND_NODE before the rumor can spread. All five processes must
# exit 0 (each prints its own convergence report).
#
# Usage: scripts/smoke_procs.sh [path-to-gossipnode]   (default: go run)
set -eu

BIN="${1:-}"
run_node() {
	if [ -n "$BIN" ]; then
		"$BIN" "$@"
	else
		go run ./cmd/gossipnode "$@"
	fi
}

BASE_PORT="${SMOKE_BASE_PORT:-4101}"
SEED_ADDR="127.0.0.1:$BASE_PORT"
LOGDIR="$(mktemp -d)"
trap 'rm -rf "$LOGDIR"' EXIT

# Short RPC timeout: a joiner's first ping can race the seed's bind and be
# lost, and the retry must land well inside the quiet window. The 500-round
# linger at 2ms pace gives every straggler a 1s window to catch up in.
COMMON="-n 5 -seed 7 -interval 2ms -linger 500 -rounds 5000 -rpc-timeout 50ms"

i=0
PIDS=""
while [ "$i" -lt 5 ]; do
	PORT=$((BASE_PORT + i))
	if [ "$i" -eq 0 ]; then
		EXTRA="-inject 1"
	else
		EXTRA="-bootstrap $SEED_ADDR"
	fi
	# shellcheck disable=SC2086
	run_node $COMMON -index "$i" -bind "127.0.0.1:$PORT" $EXTRA \
		>"$LOGDIR/node$i.log" 2>&1 &
	PIDS="$PIDS $!"
	i=$((i + 1))
done

FAIL=0
i=0
for PID in $PIDS; do
	if ! wait "$PID"; then
		echo "smoke_procs: node $i exited nonzero" >&2
		FAIL=1
	fi
	i=$((i + 1))
done

i=0
while [ "$i" -lt 5 ]; do
	echo "---- node $i ----"
	cat "$LOGDIR/node$i.log"
	if ! grep -q "converged          YES" "$LOGDIR/node$i.log"; then
		echo "smoke_procs: node $i report lacks convergence" >&2
		FAIL=1
	fi
	i=$((i + 1))
done

if [ "$FAIL" -ne 0 ]; then
	echo "smoke_procs: FAIL" >&2
	exit 1
fi
echo "smoke_procs: all 5 processes converged and exited 0"
