#!/bin/sh
# Multi-container bootstrap-and-converge smoke: brings up the five-node
# docker-compose deployment, waits for every container to finish, prints all
# logs, and fails unless every node exited 0 with a convergence report.
# CI's deploy job runs this; locally it is `make smoke-compose`.
set -eu

COMPOSE="${COMPOSE:-docker compose}"
TIMEOUT="${SMOKE_TIMEOUT:-240}"

cleanup() {
	$COMPOSE down --remove-orphans >/dev/null 2>&1 || true
}
trap cleanup EXIT

$COMPOSE build
$COMPOSE up -d

FAIL=0
for NODE in node0 node1 node2 node3 node4; do
	# `docker wait` blocks until the container exits and prints its exit
	# code; the timeout guards CI against a deployment that never quiesces.
	CODE="$(timeout "$TIMEOUT" docker wait "repro-$NODE" || echo timeout)"
	if [ "$CODE" != "0" ]; then
		echo "smoke_compose: $NODE exit code: $CODE" >&2
		FAIL=1
	fi
done

for NODE in node0 node1 node2 node3 node4; do
	echo "---- $NODE ----"
	docker logs "repro-$NODE" 2>&1 || true
	if ! docker logs "repro-$NODE" 2>&1 | grep -q "converged          YES"; then
		echo "smoke_compose: $NODE report lacks convergence" >&2
		FAIL=1
	fi
done

if [ "$FAIL" -ne 0 ]; then
	echo "smoke_compose: FAIL" >&2
	exit 1
fi
echo "smoke_compose: all 5 containers converged and exited 0"
