package repro

import (
	"context"
	"errors"
	"testing"
)

// goldenBroadcasts pins Broadcast results bit-identical to the pre-redesign
// facade (values computed at the flat harness-backed Broadcast before the
// unified run layer was introduced). Any change here means the execution
// semantics — not just the API — changed.
var goldenBroadcasts = []struct {
	cfg       Config
	algorithm string
	rounds    int
	done      int
	messages  int64
	control   int64
	bits      int64
	maxComms  int
	informed  int
}{
	{Config{N: 4000, Algorithm: AlgoCluster2, Seed: 7},
		"cluster2", 56, 56, 60892, 35262, 4025644, 3999, 4000},
	{Config{N: 3000, Algorithm: AlgoClusterPushPull, Seed: 5, Delta: 64},
		"clusterpushpull", 82, 82, 129730, 75726, 9519050, 76, 3000},
	{Config{N: 2000, Algorithm: AlgoPushPull, Seed: 3},
		"push-pull", 26, 10, 76553, 13708, 21539868, 8, 2000},
	{Config{N: 5000, Algorithm: AlgoCluster1, Seed: 9, Failures: 500, FailureSeed: 13},
		"cluster1", 26, 26, 58958, 29792, 4771026, 4499, 4500},
	{Config{N: 4000, Algorithm: AlgoCluster2, Seed: 11, Failures: 400, FailureSeed: 21,
		FailureRound: 5, LossRate: 0.05, LossSeed: 31},
		"cluster2", 66, 66, 30029, 33610, 2052489, 127, 1},
	{Config{N: 2500, Algorithm: AlgoKarp, Seed: 2, PayloadBits: 1024},
		"karp-median-counter", 20, 10, 57007, 18764, 59779547, 8, 2500},
}

func TestBroadcastGolden(t *testing.T) {
	for _, g := range goldenBroadcasts {
		res, err := Broadcast(g.cfg)
		if err != nil {
			t.Fatalf("%+v: %v", g.cfg, err)
		}
		if res.Algorithm != g.algorithm || res.Rounds != g.rounds ||
			res.CompletionRound != g.done || res.Messages != g.messages ||
			res.ControlMessages != g.control || res.Bits != g.bits ||
			res.MaxCommsPerRound != g.maxComms || res.Informed != g.informed {
			t.Errorf("Broadcast(%+v) drifted from the pre-redesign output:\n got  %+v\n want %+v",
				g.cfg, res, g)
		}
	}
}

// TestRunMatchesBroadcast pins the wrapper property: Run with the
// option-translated config returns the same Result as Broadcast.
func TestRunMatchesBroadcast(t *testing.T) {
	cfg := goldenBroadcasts[0].cfg
	fromBroadcast, err := Broadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg.N,
		WithAlgorithm(cfg.Algorithm),
		WithSeed(cfg.Seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "simulator" {
		t.Fatalf("default engine = %q, want simulator", rep.Engine)
	}
	a, b := fromBroadcast, rep.Result
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits ||
		a.Informed != b.Informed || a.MaxCommsPerRound != b.MaxCommsPerRound {
		t.Fatalf("Run and Broadcast diverge:\n%+v\n%+v", a, b)
	}
}

// TestRunOptionValidation exercises the typed-error boundary at the facade:
// every bad option combination surfaces as ErrInvalidConfig before anything
// runs.
func TestRunOptionValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		n    int
		opts []Option
	}{
		{"n too small", 1, nil},
		{"negative loss", 100, []Option{WithLoss(-0.5, 1)}},
		{"delta below minimum", 100, []Option{WithDelta(2)}},
		{"unknown algorithm", 100, []Option{WithAlgorithm("bogus")}},
		{"rumors without budget", 100, []Option{WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0})}},
		{"rumor id past uint32 space", 100, []Option{
			WithRounds(5), WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 1 << 32})}},
		{"negative rumor id", 100, []Option{
			WithRounds(5), WithRumors(InjectRumor{At: 1, Node: 0, Rumor: -1})}},
		{"rumor id past bitmask on lock-step", 100, []Option{
			OnLockStep(TransportChannel), WithRounds(5),
			WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 64})}},
		{"stream on simulator", 100, []Option{WithRumorStream(1, 16, 8)}},
		{"stream rate without total", 100, []Option{
			OnFreeRunning(0, 0), WithRumorStream(2, 0, 0)}},
		{"window without wide workload", 100, []Option{WithMaxInFlight(8)}},
		{"stream alongside inject events", 100, []Option{
			OnFreeRunning(0, 0), WithRumorStream(1, 16, 8), WithRounds(50),
			WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0})}},
		{"rumors on lock-step", 100, []Option{
			OnLockStep(TransportChannel), WithRounds(5),
			WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0})}},
		{"udp lock-step", 100, []Option{OnLockStep(TransportUDP)}},
		{"frame loss on simulator", 100, []Option{WithFrameLoss(0.5, 1)}},
		{"closed algorithm free-running", 100, []Option{
			OnFreeRunning(0, 0), WithAlgorithm(AlgoCluster2)}},
		{"crash outside network", 100, []Option{
			WithTimeline(CrashAt{At: 2, Nodes: []int{500}})}},
		{"bad scenario spec", 0, []Option{WithScenarioSpec([]byte(`{"bogus`))}},
		{"missing scenario file", 0, []Option{WithScenarioFile("/nonexistent/spec.json")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(ctx, tc.n, tc.opts...)
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error not ErrInvalidConfig: %v", err)
			}
		})
	}
}

// TestRunCancellation pins the facade-level contract: cancelling the context
// stops a simulator run with the context's error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, 2000,
		WithAlgorithm(AlgoCluster2),
		WithSeed(1),
		WithObserver(func(r RoundInfo) {
			if r.Round == 2 {
				cancel()
			}
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunScenarioSpecConflict pins the n-vs-spec conflict rule.
func TestRunScenarioSpecConflict(t *testing.T) {
	spec := []byte(`{"name":"t","n":300,"rounds":20,
		"events":[{"type":"inject","round":1,"node":0,"rumor":0}]}`)
	if _, err := Run(context.Background(), 400, WithScenarioSpec(spec)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("conflicting n accepted (err=%v)", err)
	}
	rep, err := Run(context.Background(), 0, WithScenarioSpec(spec), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 300 || rep.Scenario != "t" || len(rep.Rumors) != 1 {
		t.Fatalf("spec not applied: %+v", rep.Result)
	}
}
