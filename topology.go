package repro

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/scenario"
)

// Heterogeneous topologies and peer-selection policies: the public surface of
// internal/policy. A Topology attributes every node (zone, latency class,
// capacity, reputation); a Policy biases each random contact over those
// attributes with hard constraints and weighted scoring. Selection stays a
// pure integer function of (seed, round, initiator), so policy-driven runs
// keep the simulator/lock-step bit-identical guarantee. A topology without a
// policy changes nothing — the uniform contract stays byte-identical — but
// enables the zone events (ZoneOutageAt, PartitionAt, …) and per-zone
// telemetry.

// Topology is an immutable node-attribute table for a network of a fixed
// size. The zero value is no topology; build one with ZonedTopology,
// WanLanTopology, TopologyFromJSON or TopologyFromFile and pass it to Run via
// WithTopology.
type Topology struct {
	table *policy.Table
}

// ZonedTopology builds the minimal heterogeneous topology: n nodes spread
// round-robin over zones failure domains (zone = i mod zones), with identical
// latency, capacity and reputation everywhere.
func ZonedTopology(n, zones int) (Topology, error) {
	t, err := policy.ZoneTable(n, zones)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return Topology{table: t}, nil
}

// WanLanTopology builds a WAN-asymmetric topology: zones failure domains
// (zone = i mod zones) at increasing latency classes, zone 0 a LAN of
// full-capacity nodes and every other zone at a quarter capacity — the shape
// where same-zone preference and capacity weighting visibly change spreading.
func WanLanTopology(n, zones int) (Topology, error) {
	t, err := policy.WanLanTable(n, zones)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return Topology{table: t}, nil
}

// TopologyFromJSON materializes a JSON topology spec (a named generator or an
// explicit per-node attribute list — the format of the cmd/gossipsim and
// cmd/scenario -topology flag) for an n-node network.
func TopologyFromJSON(data []byte, n int) (Topology, error) {
	spec, err := policy.ParseTopology(data)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	t, err := spec.Build(n)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return Topology{table: t}, nil
}

// TopologyFromFile is TopologyFromJSON reading the spec from a file.
func TopologyFromFile(path string, n int) (Topology, error) {
	spec, err := policy.LoadTopology(path)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: topology: %v", ErrInvalidConfig, err)
	}
	t, err := spec.Build(n)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return Topology{table: t}, nil
}

// Len returns the number of nodes the topology describes (0 for the zero
// value).
func (t Topology) Len() int {
	if t.table == nil {
		return 0
	}
	return t.table.Len()
}

// Zones returns the number of zones (0 for the zero value).
func (t Topology) Zones() int {
	if t.table == nil {
		return 0
	}
	return t.table.Zones()
}

// ZoneNodes returns the node indexes in a zone, ascending — useful for
// building CrashAt/JoinAt waves aligned with failure domains by hand.
func (t Topology) ZoneNodes(zone int) []int {
	if t.table == nil {
		return nil
	}
	return t.table.ZoneMembers(zone)
}

// PolicyMode decides what happens when a policy leaves an initiator with no
// admissible peer.
type PolicyMode string

const (
	// PolicyEnforce treats an empty candidate set as a failed call: the
	// initiator is charged for the attempt and nothing is delivered. The
	// default.
	PolicyEnforce PolicyMode = "enforce"
	// PolicyPermissive falls back to the uniform contact when no peer is
	// admissible, prioritizing liveness over constraints; the fallback is
	// counted as a policy violation.
	PolicyPermissive PolicyMode = "permissive"
)

// PolicyRules are a policy's hard constraints: a peer failing any rule is
// never selected, regardless of weights.
type PolicyRules struct {
	// SameZoneOnly admits only peers in the initiator's zone.
	SameZoneOnly bool
	// MaxLatencyDistance caps |initiator latency − peer latency| in [0,255];
	// 0 means unlimited.
	MaxLatencyDistance int
	// MinReputation and MinCapacity exclude peers below the threshold
	// ([0,255]).
	MinReputation int
	MinCapacity   int
	// DenyZones excludes peers in the listed zones.
	DenyZones []int
}

// PolicyWeights are a policy's soft preferences. Every admissible peer scores
//
//	1 + SameZone·[same zone] + Latency·(255−dist)/255
//	  + Capacity·cap/255 + Reputation·rep/255
//
// and is selected with probability proportional to its score; all weights
// zero reproduces the uniform distribution over the admissible peers.
type PolicyWeights struct {
	SameZone   float64
	Latency    float64
	Capacity   float64
	Reputation float64
}

// Policy is a complete peer-selection policy: hard constraints, soft weights,
// and the empty-candidate mode. A Policy needs a Topology (WithTopology);
// configuring one without the other is rejected by Run.
type Policy struct {
	Mode    PolicyMode // zero value: PolicyEnforce
	Rules   PolicyRules
	Weights PolicyWeights
}

// internal converts to the internal representation (validated by Run).
func (p Policy) internal() *policy.Policy {
	return &policy.Policy{
		Mode: policy.Mode(p.Mode),
		Rules: policy.Rules{
			SameZoneOnly:       p.Rules.SameZoneOnly,
			MaxLatencyDistance: p.Rules.MaxLatencyDistance,
			MinReputation:      p.Rules.MinReputation,
			MinCapacity:        p.Rules.MinCapacity,
			DenyZones:          p.Rules.DenyZones,
		},
		Weights: policy.Weights{
			SameZone:   p.Weights.SameZone,
			Latency:    p.Weights.Latency,
			Capacity:   p.Weights.Capacity,
			Reputation: p.Weights.Reputation,
		},
	}
}

// WithTopology attributes the run's nodes with the topology. On its own it
// changes no execution — results stay byte-identical to the uniform runs —
// but it enables zone timeline events, per-zone telemetry, and WithPolicy.
// The topology's size must match the run's n.
func WithTopology(t Topology) Option {
	return Option{func(s *settings) {
		if t.table == nil {
			s.fail(fmt.Errorf("%w: empty topology (build one with ZonedTopology, WanLanTopology or TopologyFromJSON)", ErrInvalidConfig))
			return
		}
		s.spec.Topology = t.table
		s.topoSpec = nil
	}}
}

// WithTopologyFile attributes the run's nodes from a JSON topology spec
// file, sized to the run's network once n is known — unlike TopologyFromFile
// it composes with scenario specs that fix their own n (the cmd/gossipsim and
// cmd/scenario -topology flag). It overrides any earlier WithTopology.
func WithTopologyFile(path string) Option {
	return Option{func(s *settings) {
		spec, err := policy.LoadTopology(path)
		if err != nil {
			s.fail(fmt.Errorf("%w: topology: %v", ErrInvalidConfig, err))
			return
		}
		s.spec.Topology = nil
		s.topoSpec = spec
	}}
}

// WithPolicy biases every random contact by the policy, over the attributes
// of the WithTopology table. Identical policies and seeds give identical
// results on the simulator and lock-step engines, for any worker count.
func WithPolicy(p Policy) Option {
	return Option{func(s *settings) { s.spec.Policy = p.internal() }}
}

// WithPolicyFile is WithPolicy reading a JSON policy (the format of the
// cmd/gossipsim and cmd/scenario -policy flag).
func WithPolicyFile(path string) Option {
	return Option{func(s *settings) {
		p, err := policy.LoadPolicy(path)
		if err != nil {
			s.fail(fmt.Errorf("%w: policy: %v", ErrInvalidConfig, err))
			return
		}
		s.spec.Policy = p
	}}
}

// ZoneOutageAt crashes every node of the topology zone at the start of round
// At — a whole failure domain going dark. Needs WithTopology.
type ZoneOutageAt struct {
	At   int
	Zone int
}

func (e ZoneOutageAt) event() (scenario.Event, error) {
	return scenario.ZoneOutage{At: e.At, Zone: e.Zone}, nil
}

// ZoneHealAt revives every node of the topology zone at the start of round
// At — the failure domain coming back. Needs WithTopology.
type ZoneHealAt struct {
	At   int
	Zone int
}

func (e ZoneHealAt) event() (scenario.Event, error) {
	return scenario.ZoneHeal{At: e.At, Zone: e.Zone}, nil
}

// PartitionAt splits the network along zone boundaries at the start of round
// At: until HealPartitionAt, every contact resolves within the initiator's
// own zone (under the configured policy's weights). Needs WithTopology.
type PartitionAt struct {
	At int
}

func (e PartitionAt) event() (scenario.Event, error) {
	return scenario.Partition{At: e.At}, nil
}

// HealPartitionAt removes the PartitionAt split at the start of round At,
// restoring cross-zone contacts. Needs WithTopology.
type HealPartitionAt struct {
	At int
}

func (e HealPartitionAt) event() (scenario.Event, error) {
	return scenario.HealPartition{At: e.At}, nil
}
