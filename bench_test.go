package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/harness"
	"repro/internal/lowerbound"
	"repro/internal/phonecall"
	"repro/internal/scenario"
)

// The benchmarks below regenerate the measurements behind every experiment
// table (E1–E8, see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark reports
// the relevant figure of merit (rounds, messages per node, bits per payload
// bit, …) via b.ReportMetric so that `go test -bench=.` reproduces the
// numbers, not only the wall-clock cost of the simulation.

func benchSizes() []int { return []int{1000, 10000, 100000} }

func runOnce(b *testing.B, algo harness.Algorithm, n int, opts harness.Options) {
	b.Helper()
	var rounds, msgs, bits float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(context.Background(), algo, n, uint64(i+1), opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatalf("%s informed only %d/%d", algo, res.Informed, res.Live)
		}
		rounds += float64(res.CompletionRound)
		msgs += res.MessagesPerNode
		bits += float64(res.Bits) / float64(res.N) / float64(phonecall.DefaultPayloadBits)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds")
	b.ReportMetric(msgs/float64(b.N), "msgs/node")
	b.ReportMetric(bits/float64(b.N), "bits/(n*b)")
}

// BenchmarkE1Rounds regenerates E1: completion rounds of the paper's
// algorithms and the baselines across the size sweep.
func BenchmarkE1Rounds(b *testing.B) {
	for _, algo := range []harness.Algorithm{harness.AlgoPushPull, harness.AlgoKarp, harness.AlgoAddressBook, harness.AlgoCluster1, harness.AlgoCluster2} {
		for _, n := range benchSizes() {
			b.Run(fmt.Sprintf("%s/n=%d", algo, n), func(b *testing.B) {
				runOnce(b, algo, n, harness.Options{})
			})
		}
	}
}

// BenchmarkE2Messages regenerates E2: messages per node (the same runs as E1;
// the metric of interest is msgs/node).
func BenchmarkE2Messages(b *testing.B) {
	for _, algo := range []harness.Algorithm{harness.AlgoPushPull, harness.AlgoKarp, harness.AlgoCluster2} {
		for _, n := range benchSizes() {
			b.Run(fmt.Sprintf("%s/n=%d", algo, n), func(b *testing.B) {
				runOnce(b, algo, n, harness.Options{})
			})
		}
	}
}

// BenchmarkE3Bits regenerates E3: total bits relative to n·b for growing
// payload sizes.
func BenchmarkE3Bits(b *testing.B) {
	for _, payload := range []int{256, 1024, 4096} {
		for _, algo := range []harness.Algorithm{harness.AlgoPushPull, harness.AlgoCluster2} {
			b.Run(fmt.Sprintf("%s/b=%d", algo, payload), func(b *testing.B) {
				var ratio float64
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(context.Background(), algo, 20000, uint64(i+1), harness.Options{PayloadBits: payload})
					if err != nil {
						b.Fatal(err)
					}
					ratio += float64(res.Bits) / float64(res.N) / float64(payload)
				}
				b.ReportMetric(ratio/float64(b.N), "bits/(n*b)")
			})
		}
	}
}

// BenchmarkE4LowerBound regenerates E4: the knowledge-graph feasibility bound
// of Theorem 3.
func BenchmarkE4LowerBound(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var minT float64
			for i := 0; i < b.N; i++ {
				t, _ := lowerbound.MinRounds(n, uint64(i+1))
				minT += float64(t)
			}
			b.ReportMetric(minT/float64(b.N), "minRounds")
			b.ReportMetric(lowerbound.TheoreticalMinRounds(n), "0.99loglogn")
		})
	}
}

// BenchmarkE5Delta regenerates E5: the Δ trade-off of Theorem 4 / Lemma 16.
func BenchmarkE5Delta(b *testing.B) {
	const n = 50000
	for _, delta := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			var rounds, maxComms float64
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(context.Background(), harness.AlgoClusterPushPull, n, uint64(i+1), harness.Options{Delta: delta})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllInformed {
					b.Fatalf("informed only %d/%d", res.Informed, res.Live)
				}
				rounds += float64(res.Rounds)
				maxComms += float64(res.MaxCommsPerRound)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(maxComms/float64(b.N)/float64(delta), "maxΔ/Δ")
			b.ReportMetric(lowerbound.DeltaBound(n, delta), "lemma16")
		})
	}
}

// BenchmarkE6Faults regenerates E6: uninformed survivors after F oblivious
// failures (Theorem 19).
func BenchmarkE6Faults(b *testing.B) {
	const n = 50000
	for _, frac := range []float64{0.05, 0.20} {
		f := int(frac * n)
		b.Run(fmt.Sprintf("F=%d", f), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := Broadcast(Config{N: n, Seed: uint64(i + 1), Failures: f, FailureSeed: uint64(i + 1000)})
				if err != nil {
					b.Fatal(err)
				}
				ratio += float64(res.UninformedSurvivors()) / float64(f)
			}
			b.ReportMetric(ratio/float64(b.N), "uninformed/F")
		})
	}
}

// BenchmarkE7Comparison regenerates E7: the head-to-head comparison at a
// single size.
func BenchmarkE7Comparison(b *testing.B) {
	const n = 20000
	for _, algo := range harness.Algorithms() {
		size := n
		if algo == harness.AlgoNameDropper {
			size = 1000
		}
		b.Run(string(algo), func(b *testing.B) {
			runOnce(b, algo, size, harness.Options{Delta: 1024})
		})
	}
}

// benchEngineRound measures the raw cost of one simulated round in which
// every node pushes to a random target (the substrate's hot path), at the
// given worker count. The workload is shared with `benchtab -json` through
// harness.EngineRoundDriver so the two stay comparable; the reported
// allocations are the engine's own (zero in steady state).
func benchEngineRound(b *testing.B, n, workers int) {
	b.Helper()
	step, _, err := harness.EngineRoundDriver(n, workers)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < harness.EngineWarmupRounds; r++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.ReportMetric(float64(n), "nodes")
}

// BenchmarkEngineRound benchmarks the sharded round engine. The plain n=...
// cases run single-shard (comparable with historic baselines); the workers=
// cases exercise the sharded pipeline.
func BenchmarkEngineRound(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchEngineRound(b, n, 1)
		})
	}
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=100000/workers=%d", w), func(b *testing.B) {
			benchEngineRound(b, 100000, w)
		})
	}
}

// BenchmarkBroadcastCluster2 measures the end-to-end cost of the main
// algorithm at increasing sizes (useful for profiling the simulator itself).
func BenchmarkBroadcastCluster2(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runOnce(b, harness.AlgoCluster2, n, harness.Options{})
		})
	}
}

// BenchmarkScenarioChurn measures the dynamic path end to end: a push-pull
// broadcast under periodic churn and 5% per-call loss. The workload is
// shared with `benchtab -json` through harness.ScenarioChurnDriver so the
// ScenarioChurn entry in BENCH_engine.json stays comparable with this
// benchmark.
func BenchmarkScenarioChurn(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			run, rounds := harness.ScenarioChurnDriver(n, 0, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkE8Churn regenerates the E8 figures of merit at a reduced size:
// the informed fraction of push-pull and cluster2 under a mid-run crash
// wave plus loss.
func BenchmarkE8Churn(b *testing.B) {
	const n = 20000
	for _, algo := range []harness.Algorithm{harness.AlgoPushPull, harness.AlgoCluster2} {
		b.Run(string(algo), func(b *testing.B) {
			var informed float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i + 1)
				wave := failure.Timed{Round: 4, Adversary: failure.Random{Count: n / 10, Seed: seed + 2000}}
				res, err := harness.Run(context.Background(), algo, n, seed, harness.Options{
					LossRate: 0.05,
					LossSeed: seed + 3000,
					Events:   []scenario.Event{scenario.FromTimed(wave, n)},
				})
				if err != nil {
					b.Fatal(err)
				}
				informed += float64(res.Informed) / float64(res.Live)
			}
			b.ReportMetric(informed/float64(b.N), "informedFrac")
		})
	}
}
